"""Figure 3 — distributed-memory strong scaling (1 to 25 nodes).

Top row: GE2BND GFlop/s of the four trees (square with BIDIAG, tall-skinny
with R-BIDIAG).  Bottom row: GE2VAL against Elemental and ScaLAPACK,
including the single-node BND2BD bound that caps the DPLASMA scaling.
Shape assertions: everything scales with the node count, AUTO ends on top,
and the GE2VAL comparison keeps the paper's ordering.
"""

from benchmarks.conftest import print_table
from repro.experiments.figures import (
    fig3_strong_scaling_ge2bnd,
    fig3_strong_scaling_ge2val,
    format_rows,
)

NODES = (1, 4, 9)


def _series(rows, key, value_key="gflops"):
    out = {}
    for r in rows:
        out.setdefault(r[key], {})[r["nodes"]] = r[value_key]
    return out


def test_fig3_ge2bnd_square_strong_scaling(benchmark):
    rows = benchmark.pedantic(
        lambda: fig3_strong_scaling_ge2bnd(m=6000, n=6000, node_counts=NODES, algorithm="bidiag"),
        rounds=1,
        iterations=1,
    )
    print_table("Figure 3 (top-left): GE2BND strong scaling, square", format_rows(rows))
    series = _series(rows, "tree")
    for tree, vals in series.items():
        assert vals[NODES[-1]] > vals[1], f"{tree} does not scale"
    # AUTO is the best (or tied) configuration on the largest node count.
    best = max(vals[NODES[-1]] for vals in series.values())
    assert series["auto"][NODES[-1]] >= 0.9 * best


def test_fig3_ge2bnd_tall_skinny_rbidiag(benchmark):
    rows = benchmark.pedantic(
        lambda: fig3_strong_scaling_ge2bnd(
            m=48000, n=2000, node_counts=NODES, algorithm="rbidiag"
        ),
        rounds=1,
        iterations=1,
    )
    print_table("Figure 3 (top-middle): R-BIDIAG strong scaling, n=2000", format_rows(rows))
    series = _series(rows, "tree")
    assert series["auto"][NODES[-1]] > series["auto"][1]
    # The flat-tree communication advantage: FlatTT sends fewer messages than Greedy.
    msgs = _series(rows, "tree", value_key="messages")
    assert msgs["flattt"][NODES[-1]] <= msgs["greedy"][NODES[-1]]


def test_fig3_ge2val_vs_competitors(benchmark):
    rows = benchmark.pedantic(
        lambda: fig3_strong_scaling_ge2val(m=6000, n=6000, node_counts=NODES),
        rounds=1,
        iterations=1,
    )
    print_table("Figure 3 (bottom): GE2VAL strong scaling vs competitors", format_rows(rows))
    series = _series(rows, "library")
    last = NODES[-1]
    # DPLASMA stays ahead of both competitors at every node count.
    for nodes in NODES:
        assert series["DPLASMA"][nodes] > series["ScaLAPACK"][nodes]
        assert series["DPLASMA"][nodes] > series["Elemental"][nodes]
    # But its own scaling is capped by the shared-memory BND2BD stage:
    # efficiency at the largest node count is well below perfect.
    assert series["DPLASMA"][last] < last * series["DPLASMA"][1]
