"""Section IV-C — the BIDIAG / R-BIDIAG crossover ratio delta_s.

The paper finds delta_s to be a complicated function of q oscillating
between 5 and 8 (for the tile widths it plots).  This bench regenerates the
measured crossover for a range of widths and checks the flop-count
crossover of Chan (5/3) for reference.
"""

from benchmarks.conftest import print_table
from repro.analysis.crossover import CHAN_FLOP_CROSSOVER, crossover_ratio
from repro.experiments.figures import crossover_study, format_rows
from repro.models.flops import chan_crossover_m


def test_crossover_table(benchmark):
    rows = benchmark.pedantic(
        lambda: crossover_study(q_values=(4, 6, 8, 10, 12)), rounds=1, iterations=1
    )
    print_table("delta_s = p/q crossover (critical path, GREEDY)", format_rows(rows))
    deltas = [r["delta_s"] for r in rows]
    # All finite, in a narrow band, generally increasing towards the paper's
    # [5, 8] range (reached for the larger widths the paper plots).
    assert all(2.0 <= d <= 9.0 for d in deltas)
    assert deltas[-1] >= deltas[0]


def test_flop_crossover_is_five_thirds(benchmark):
    benchmark.pedantic(chan_crossover_m, args=(3000,), rounds=1, iterations=1)
    assert abs(CHAN_FLOP_CROSSOVER - 5.0 / 3.0) < 1e-15
    assert abs(chan_crossover_m(3000) - 5000.0) < 1e-9


def test_bench_crossover_q8(benchmark):
    benchmark(crossover_ratio, 8)
