"""Figure 2 — shared-memory performance on one 24-core miriel node.

Top row: GE2BND GFlop/s for the four trees (square and tall-skinny cases,
BIDIAG vs R-BIDIAG).  Bottom row: GE2VAL against PLASMA, MKL, ScaLAPACK and
Elemental.  Sizes are scaled down by default (REPRO_FULL_SCALE=1 restores
the paper's sweep); the assertions target the *shape* of the figure:

* small square matrices: trees with more parallelism (Greedy/FlatTT) beat
  FlatTS; AUTO is at least as good as both;
* large square matrices: FlatTS catches up; AUTO stays on top;
* tall-skinny: R-BIDIAG overtakes BIDIAG and AUTO gives the best rate;
* GE2VAL: DPLASMA ahead of PLASMA and MKL, ScaLAPACK/Elemental an order of
  magnitude behind on square problems.
"""


from benchmarks.conftest import print_table
from repro.experiments.figures import (
    fig2_ge2bnd_square,
    fig2_ge2bnd_tall_skinny,
    fig2_ge2val_comparison,
    format_rows,
)


def _by(rows, *keys):
    out = {}
    for r in rows:
        out[tuple(r[k] for k in keys)] = r["gflops"]
    return out


def test_fig2_ge2bnd_square(benchmark, miriel_node):
    sizes = (2000, 4000, 8000)
    rows = benchmark.pedantic(
        lambda: fig2_ge2bnd_square(sizes=sizes, machine=miriel_node), rounds=1, iterations=1
    )
    print_table("Figure 2 (top-left): GE2BND, square, 24 cores", format_rows(rows))
    g = _by(rows, "m", "tree")
    small, large = sizes[0], sizes[-1]
    # Small matrices: parallel trees beat FlatTS; AUTO at least as good.
    assert g[(small, "greedy")] > g[(small, "flatts")]
    assert g[(small, "auto")] >= 0.95 * max(g[(small, t)] for t in ("flatts", "flattt", "greedy"))
    # Large matrices: FlatTS catches up with the TT trees, AUTO stays on top.
    assert g[(large, "flatts")] > 0.9 * g[(large, "greedy")]
    assert g[(large, "auto")] >= 0.95 * max(g[(large, t)] for t in ("flatts", "flattt", "greedy"))
    # Rates grow with the problem size for every tree.
    for tree in ("flatts", "flattt", "greedy", "auto"):
        assert g[(large, tree)] > g[(small, tree)]


def test_fig2_ge2bnd_tall_skinny_n2000(benchmark, miriel_node):
    m_values = (4000, 8000, 16000, 32000)
    rows = benchmark.pedantic(
        lambda: fig2_ge2bnd_tall_skinny(n=2000, m_values=m_values, machine=miriel_node),
        rounds=1,
        iterations=1,
    )
    print_table("Figure 2 (top-middle): GE2BND, n=2000", format_rows(rows))
    g = _by(rows, "m", "tree", "algorithm")
    tallest = m_values[-1]
    # R-BIDIAG clearly ahead of BIDIAG on very tall matrices (paper: up to 1.8x).
    assert g[(tallest, "auto", "rbidiag")] > 1.2 * g[(tallest, "auto", "bidiag")]
    # AUTO is the best configuration overall.
    best_other = max(
        g[(tallest, t, "rbidiag")] for t in ("flatts", "flattt", "greedy")
    )
    assert g[(tallest, "auto", "rbidiag")] >= 0.95 * best_other


def test_fig2_ge2val_competitors(benchmark, miriel_node):
    shapes = [(6000, 6000), (24000, 2000)]
    rows = benchmark.pedantic(
        lambda: fig2_ge2val_comparison(shapes=shapes, machine=miriel_node),
        rounds=1,
        iterations=1,
    )
    print_table("Figure 2 (bottom): GE2VAL vs competitors", format_rows(rows))
    g = _by(rows, "m", "library")
    # Square case: DPLASMA ahead of PLASMA and MKL; ScaLAPACK/Elemental far behind.
    assert g[(6000, "DPLASMA")] >= g[(6000, "PLASMA")]
    assert g[(6000, "DPLASMA")] > g[(6000, "ScaLAPACK")] * 3
    assert g[(6000, "DPLASMA")] > g[(6000, "Elemental")] * 3
    # Tall-skinny: Elemental (Chan switch) beats ScaLAPACK, DPLASMA beats both.
    assert g[(24000, "Elemental")] > g[(24000, "ScaLAPACK")]
    assert g[(24000, "DPLASMA")] > g[(24000, "Elemental")]
