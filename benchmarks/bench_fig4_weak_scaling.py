"""Figure 4 — weak scaling on tall-and-skinny matrices.

Matrices of size (rows_per_node x nodes) x n with n = 2,000 and n = 10,000;
the paper reports GE2BND GFlop/s, GE2VAL GFlop/s and GE2VAL efficiency.
Shape assertions: FlatTS saturates first, AUTO scales best, and both
Elemental and ScaLAPACK fall behind the tiled R-BIDIAG.
"""

from benchmarks.conftest import print_table
from repro.experiments.figures import fig4_weak_scaling, format_rows

NODES = (1, 2, 4)


def _series(rows, stage):
    out = {}
    for r in rows:
        if r["stage"] != stage:
            continue
        out.setdefault(r["tree"], {})[r["nodes"]] = r["gflops"]
    return out


def test_fig4_weak_scaling_n2000(benchmark):
    rows = benchmark.pedantic(
        lambda: fig4_weak_scaling(n=2000, rows_per_node=8000, node_counts=NODES),
        rounds=1,
        iterations=1,
    )
    print_table("Figure 4 (row 1): weak scaling, n=2000", format_rows(rows))
    ge2bnd = _series(rows, "ge2bnd")
    last = NODES[-1]
    # Aggregate rate grows with node count for the adaptive tree.
    assert ge2bnd["auto"][last] > ge2bnd["auto"][1]
    assert last >= 4
    # FlatTS saturates: its weak-scaling gain is smaller than AUTO's.
    gain_flatts = ge2bnd["flatts"][last] / ge2bnd["flatts"][1]
    gain_auto = ge2bnd["auto"][last] / ge2bnd["auto"][1]
    assert gain_auto >= 0.9 * gain_flatts
    # DPLASMA's GE2VAL stays ahead of both competitors at scale.
    ge2val = _series(rows, "ge2val")
    assert ge2val["auto"][last] > ge2val["ScaLAPACK"][last]
    assert ge2val["auto"][last] > ge2val["Elemental"][last]


def test_fig4_weak_scaling_n10000(benchmark):
    rows = benchmark.pedantic(
        lambda: fig4_weak_scaling(
            n=10000, rows_per_node=12000, node_counts=(1, 2), trees=("flatts", "auto")
        ),
        rounds=1,
        iterations=1,
    )
    print_table("Figure 4 (row 2): weak scaling, n=10000", format_rows(rows))
    ge2bnd = _series(rows, "ge2bnd")
    assert ge2bnd["auto"][2] > ge2bnd["auto"][1]
    ge2val = _series(rows, "ge2val")
    assert ge2val["auto"][2] > ge2val["ScaLAPACK"][2]
