"""Monte-Carlo scenario replay: vectorized draws vs naive per-draw re-runs.

The PR-9 bench shape — one GE2BND problem under the ``hostile`` scenario
(node heterogeneity + fail-stop re-execution + stragglers + link jitter)
— timed four ways, written to ``BENCH_faults.json``:

1. ``naive-per-draw``  — what collecting a makespan distribution costs
   without ``--draws`` support: one simulator launch per draw (a shell
   loop over ``repro simulate --seed i``), each paying interpreter
   start-up, imports, program compile, engine prep, the nominal replay
   and the draw itself.  Timed as real subprocesses; the nominal
   makespan each one prints is audited bitwise against the in-process
   run;
2. ``hoistless``       — the same process, no shell loop, but no
   hoisting either: every draw builds a fresh engine and
   :class:`ScenarioReplayer` with the engine memo tables cleared first,
   so rank keys, duration/owner vectors and CSR successor lists are
   re-derived each draw.  Replays the exact factor rows the vectorized
   path samples, and its per-draw makespans are audited bitwise against
   the vectorized ``MakespanDistribution``;
3. ``vectorized-cold`` — :func:`repro.runtime.scenario.run_scenario` on
   cold memo tables: factor matrices block-sampled once, the replayer
   hoisted once, each draw one event-loop pass;
4. ``vectorized``      — the same call with the memo tables warm (what
   every later scenario run in the process sees — a robust-makespan
   tuning rung, a scenario sweep).

Each draw re-schedules dynamically (the runtime reacts to realized
durations), so one event-loop pass per draw is the semantic floor; the
vectorized win is everything hoisted out of the loop, and the rows
separate how much of that is process launch vs per-draw re-derivation.

Acceptance bar: per draw, the vectorized path beats the naive per-draw
re-runs by at least **5x** (override the floor with
``REPRO_BENCH_FAULTS_FLOOR`` on noisy CI runners).

Scaled-down by default (CI smoke-runs it in this reduced mode, also
reachable as ``python benchmarks/bench_faults.py --reduced``); set
``REPRO_FULL_SCALE=1`` for the paper's problem sizes.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import time

_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
_SRC = os.path.join(_ROOT, "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)

import numpy as np  # noqa: E402

from repro.experiments.figures import format_rows, full_scale  # noqa: E402
from repro.ir import get_program  # noqa: E402
from repro.runtime import engine as engine_mod  # noqa: E402
from repro.runtime.engine import SimulationEngine  # noqa: E402
from repro.runtime.machine import Machine  # noqa: E402
from repro.runtime.scenario import (  # noqa: E402
    ScenarioReplayer,
    get_scenario,
    run_scenario,
)
from repro.tiles.layout import ceil_div  # noqa: E402
from repro.trees import make_tree  # noqa: E402

ARTIFACT = os.path.join(_ROOT, "BENCH_faults.json")

M = N = 20000 if full_scale() else 1000
NB = 160 if full_scale() else 100
N_NODES = 4 if full_scale() else 2
N_CORES = 24 if full_scale() else 4
DRAWS = 128 if full_scale() else 32
#: Subprocess launches are slow by definition; a few suffice to pin the
#: per-draw cost of the shell-loop baseline.
SUB_DRAWS = 3
SEED = 0
SCENARIO = "hostile"
POLICY = "list"
NETWORK = "alpha-beta"

#: One draw, the way a shell loop gets it: fresh interpreter, fresh
#: imports, fresh compile.  Prints "<nominal-hex> <draw-hex>".
_SUB_SCRIPT = """\
import sys
sys.path.insert(0, {src!r})
from repro.ir import get_program
from repro.runtime.machine import Machine
from repro.runtime.scenario import get_scenario, run_scenario
from repro.trees import make_tree
program = get_program("bidiag", {p}, {q}, make_tree("greedy"),
                      n_cores={cores})
machine = Machine(n_nodes={nodes}, cores_per_node={cores}, tile_size={nb})
run = run_scenario(program, machine, get_scenario({scenario!r}),
                   policy={policy!r}, network={network!r},
                   draws=1, seed={seed})
print(run.schedule.makespan.hex(), run.distribution.makespans[0].hex())
"""


def _clear_engine_memos() -> None:
    """Drop the module-level per-program memo tables (a fresh engine)."""
    engine_mod._DURATION_VECTORS.clear()
    engine_mod._OWNER_VECTORS.clear()
    engine_mod._RANK_KEYS.clear()


def _min_of(repeats, run):
    """Min wall-clock over ``repeats`` runs (identical work; the minimum
    strips scheduler noise) plus the last run's payload."""
    best, payload = None, None
    for _ in range(repeats):
        start = time.perf_counter()
        payload = run()
        seconds = time.perf_counter() - start
        if best is None or seconds < best:
            best = seconds
    return best, payload


def _presampled_rows(scenario, n_ops):
    """The exact factor rows ``run_scenario(..., seed=SEED)`` will replay:
    same generator, same fixed sampling order (faults before noise)."""
    rng = np.random.default_rng(SEED)
    fault_factors, _events = scenario.faults.sample(rng, DRAWS, n_ops)
    noise_factors = scenario.noise.sample(rng, DRAWS, n_ops)
    return fault_factors, noise_factors


def naive_per_draw():
    """The shell-loop baseline: one subprocess per draw.  Returns the
    best per-draw seconds and the nominal makespan hexes printed."""
    p = q = ceil_div(M, NB)
    nominals = []

    def one_draw(seed):
        script = _SUB_SCRIPT.format(
            src=_SRC, p=p, q=q, cores=N_CORES, nodes=N_NODES, nb=NB,
            scenario=SCENARIO, policy=POLICY, network=NETWORK, seed=seed,
        )
        out = subprocess.run(
            [sys.executable, "-c", script],
            check=True, capture_output=True, text=True,
        )
        return out.stdout.split()

    best = None
    for i in range(SUB_DRAWS):
        start = time.perf_counter()
        nominal_hex, _draw_hex = one_draw(1000 + i)
        seconds = time.perf_counter() - start
        nominals.append(nominal_hex)
        if best is None or seconds < best:
            best = seconds
    return best, nominals


def hoistless(program, machine, scenario, fault_factors, noise_factors):
    """One fresh engine + replayer per draw, memo tables cleared each time:
    every draw pays the prep (rank keys, vectors, CSR) the vectorized
    path hoists out of the loop — but not the process launch."""
    eff_machine = scenario.apply_to_machine(machine)

    def run():
        makespans = []
        for i in range(DRAWS):
            _clear_engine_memos()
            engine = SimulationEngine(eff_machine, policy=POLICY,
                                      network=NETWORK)
            replayer = ScenarioReplayer(engine, program)
            sched = replayer.replay(fault_factors[i], noise_factors[i])
            makespans.append(sched.makespan)
        return makespans

    return _min_of(2, run)


def vectorized(program, machine, scenario, warm):
    """The shipped path: block sampling + one hoisted replayer.  With
    ``warm=False`` the memo tables are cleared every repeat (a process's
    first scenario run); with ``warm=True`` they stay hot."""

    def run():
        if not warm:
            _clear_engine_memos()
        return run_scenario(
            program, machine, scenario,
            policy=POLICY, network=NETWORK, draws=DRAWS, seed=SEED,
        )

    if warm:
        run()
    return _min_of(2, run)


def main() -> int:
    p = q = ceil_div(M, NB)
    program = get_program("bidiag", p, q, make_tree("greedy"),
                          n_cores=N_CORES)
    machine = Machine(n_nodes=N_NODES, cores_per_node=N_CORES, tile_size=NB)
    scenario = get_scenario(SCENARIO)
    fault_factors, noise_factors = _presampled_rows(scenario, len(program))

    naive_draw_seconds, naive_nominals = naive_per_draw()
    hoistless_seconds, hoistless_makespans = hoistless(
        program, machine, scenario, fault_factors, noise_factors
    )
    cold_seconds, _ = vectorized(program, machine, scenario, warm=False)
    warm_seconds, mc_run = vectorized(program, machine, scenario, warm=True)
    dist = mc_run.distribution

    # Hard gate 1: every subprocess re-derived the same nominal schedule.
    nominal_hex = mc_run.schedule.makespan.hex()
    for i, got in enumerate(naive_nominals):
        assert got == nominal_hex, (
            f"subprocess draw {i} nominal makespan {got} differs from the "
            f"in-process one {nominal_hex}"
        )

    # Hard gate 2: the hoistless loop replayed the vectorized draws, bit
    # for bit.
    assert dist is not None and dist.n_draws == DRAWS
    assert len(hoistless_makespans) == DRAWS
    for i, (got, ref) in enumerate(zip(hoistless_makespans, dist.makespans)):
        assert got == ref, (
            f"hoistless draw {i} makespan {got.hex()} differs from the "
            f"vectorized replay {ref.hex()}"
        )
    assert min(dist.makespans) >= mc_run.schedule.makespan, (
        "a perturbed draw beat the nominal schedule (factors are >= 1)"
    )
    print(f"bit-identity audit: {SUB_DRAWS} subprocess nominals and "
          f"{DRAWS} hoistless draws equal the vectorized run")

    rows = [
        {
            "mode": mode,
            "seconds": seconds,
            "draws": draws,
            "ms_per_draw": 1000.0 * seconds / draws,
        }
        for mode, seconds, draws in (
            ("naive-per-draw", naive_draw_seconds * SUB_DRAWS, SUB_DRAWS),
            ("hoistless", hoistless_seconds, DRAWS),
            ("vectorized-cold", cold_seconds, DRAWS),
            ("vectorized", warm_seconds, DRAWS),
        )
    ]
    title = (
        f"Scenario '{SCENARIO}', m=n={M}, nb={NB}, "
        f"{N_NODES}x{N_CORES} cores, {DRAWS} draws"
    )
    print(f"\n{'=' * len(title)}\n{title}\n{'=' * len(title)}")
    print(format_rows(rows))

    per_draw = warm_seconds / DRAWS
    speedup = naive_draw_seconds / per_draw
    speedup_hoistless = (hoistless_seconds / DRAWS) / per_draw
    print(f"vectorized vs naive-per-draw (per draw): {speedup:.2f}x")
    print(f"vectorized vs hoistless (per draw, the in-process hoisting "
          f"win): {speedup_hoistless:.2f}x")

    trajectory = {
        "problem": {"m": M, "n": N, "nb": NB, "n_nodes": N_NODES,
                    "n_cores": N_CORES},
        "scenario": SCENARIO,
        "policy": POLICY,
        "network": NETWORK,
        "draws": DRAWS,
        "seed": SEED,
        "rows": rows,
        "speedup_vectorized_vs_naive": speedup,
        "speedup_vectorized_vs_hoistless": speedup_hoistless,
        "distribution": dist.to_row(),
        "nominal_makespan": mc_run.schedule.makespan,
        "draws_audited": DRAWS,
    }
    with open(ARTIFACT, "w", encoding="utf-8") as fh:
        json.dump(trajectory, fh, indent=2)
    print(f"wrote {ARTIFACT}")

    # Acceptance bar: per draw, the vectorized MC loop must beat naive
    # per-draw simulator re-runs by at least 5x.  CI runs on noisy shared
    # runners and lowers the floor via the environment (the bitwise audits
    # above are the hard CI gates; the 5x claim is pinned by the
    # checked-in BENCH_faults.json measured on quiet hardware).
    floor = float(os.environ.get("REPRO_BENCH_FAULTS_FLOOR", "5.0"))
    assert speedup >= floor, (
        f"vectorized Monte-Carlo only {speedup:.2f}x faster per draw than "
        f"naive per-draw re-runs (floor {floor}x)"
    )
    return 0


if __name__ == "__main__":
    if "--reduced" in sys.argv[1:]:
        os.environ.pop("REPRO_FULL_SCALE", None)
    raise SystemExit(main())
