"""Batched candidate simulation: one engine pass over a whole sweep.

The PR-3/PR-5 bench shape — all 32 (tree, inner-block, policy) candidates
of one GE2BND problem — timed four ways, written to ``BENCH_batch.json``:

1. ``sequential-cold``  — the BENCH_scale ``soa-fast-path`` row replica:
   every candidate compiles its DAG fresh and runs the engine alone;
2. ``sequential-warm``  — per-candidate engine runs through the shared
   program cache (what PR 5 already gives a sweep that reuses programs);
3. ``batch-full``       — :class:`repro.runtime.batch.BatchEngine` over
   the same candidates: axes hoisted per unique (machine, grid, network),
   dense rank orders memoized across candidates, schedule dedup on —
   every candidate still simulated, schedules **bit-identical** to the
   per-candidate runs (audited field-by-field as part of the exit
   status);
4. ``batch-pruned``     — the end-to-end plan path
   (:func:`repro.runtime.batch.simulate_resolved_batch` behind
   ``SvdPlan.sweep``): analytic critical-path/area bounds rank the
   candidates and provably-worse ones never touch the event loop.  The
   winning candidate and its score are audited against ``batch-full``.
   Timed twice: ``batch-pruned-cold`` is a first-ever sweep (program
   compiles included), ``batch-pruned`` the amortized steady state every
   later sweep in the process sees (warm program cache and memo tables —
   a tuning rung, a re-run with one axis changed).

Acceptance bar: the pruned batch path beats the cold sequential sweep by
at least **5x** per candidate (the ISSUE-8 headline), with the bit-identity
and winner audits as hard gates.

Scaled-down by default (CI smoke-runs it in this reduced mode, also
reachable as ``python benchmarks/bench_batch.py --reduced``); set
``REPRO_FULL_SCALE=1`` for the paper's problem sizes.
"""

from __future__ import annotations

import json
import os
import sys
import time

_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
_SRC = os.path.join(_ROOT, "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)

from repro.api.plan import SvdPlan  # noqa: E402
from repro.api.resolver import resolve  # noqa: E402
from repro.config import Config  # noqa: E402
from repro.experiments.figures import format_rows, full_scale  # noqa: E402
from repro.ir import clear_program_cache, compile_program, get_program  # noqa: E402
from repro.runtime.batch import (  # noqa: E402
    BatchCandidate,
    BatchEngine,
    simulate_resolved_batch,
)
from repro.runtime.engine import SimulationEngine, engine_memo_stats  # noqa: E402
from repro.runtime.machine import Machine  # noqa: E402
from repro.tiles.layout import ceil_div  # noqa: E402
from repro.trees import make_tree  # noqa: E402

ARTIFACT = os.path.join(_ROOT, "BENCH_batch.json")

#: One miriel node; the candidate axes of the BENCH_scale 32-candidate row.
M = N = 20000 if full_scale() else 1600
NB = 160 if full_scale() else 100
N_CORES = 24
TREES = ("flatts", "flattt", "greedy", "auto")
INNER_BLOCKS = (32, 40)
POLICIES = ("list", "critical-path", "locality", "random")


def _trees():
    return {
        name: make_tree(name) if name != "auto" else make_tree(
            "auto", n_cores=N_CORES
        )
        for name in TREES
    }


def _candidates(trees):
    """(tree_name, tree, p, q, machine, policy), policy varying fastest."""
    p = q = ceil_div(M, NB)
    for tree_name in TREES:
        for ib in INNER_BLOCKS:
            machine = Machine(
                n_nodes=1, cores_per_node=N_CORES, tile_size=NB, inner_block=ib
            )
            for policy in POLICIES:
                yield tree_name, trees[tree_name], p, q, machine, policy


def _plans():
    """The same 32 candidates as plans (same axis nesting = same order)."""
    base = SvdPlan(m=M, n=N, tile_size=NB, stage="ge2bnd", n_cores=N_CORES)
    return base.sweep(
        tree=list(TREES),
        config=[Config(tile_size=NB, inner_block=ib) for ib in INNER_BLOCKS],
        policy=list(POLICIES),
    )


def _min_of(repeats, run):
    """Min wall-clock over ``repeats`` runs (identical work; the minimum
    strips scheduler noise) plus the last run's payload."""
    best, payload = None, None
    for _ in range(repeats):
        start = time.perf_counter()
        payload = run()
        seconds = time.perf_counter() - start
        if best is None or seconds < best:
            best = seconds
    return best, payload


def sequential_cold(trees):
    def run():
        clear_program_cache()
        makespans = []
        for _name, tree, p, q, machine, policy in _candidates(trees):
            program = compile_program("bidiag", p, q, tree)
            schedule = SimulationEngine(machine, policy=policy).run(program)
            makespans.append(schedule.makespan)
        return makespans

    return _min_of(2, run)


def sequential_warm(trees):
    def run():
        return [
            SimulationEngine(machine, policy=policy).run(
                get_program("bidiag", p, q, tree)
            )
            for _name, tree, p, q, machine, policy in _candidates(trees)
        ]

    run()  # warm the program cache: this row times engine runs, not compiles
    return _min_of(2, run)


def batch_full(trees):
    def run():
        schedules = []
        for tree_name in TREES:  # one batch per shared program
            program = get_program(
                "bidiag", ceil_div(M, NB), ceil_div(N, NB), trees[tree_name]
            )
            candidates = [
                BatchCandidate(machine, policy=policy)
                for name, _t, _p, _q, machine, policy in _candidates(trees)
                if name == tree_name
            ]
            schedules.extend(BatchEngine().run_batch(program, candidates))
        return schedules

    return _min_of(2, run)


def batch_pruned(warm):
    """The end-to-end plan path.  ``warm=False`` clears the program cache
    every repeat (a first-ever sweep, compiles included); ``warm=True``
    keeps the program cache and memo tables hot (every later sweep in the
    same process — a tuning rung, a re-run with one axis changed)."""
    plans = _plans()

    def run():
        if not warm:
            clear_program_cache()
        resolved = [resolve(plan) for plan in plans]
        return simulate_resolved_batch(resolved, objective="makespan",
                                       prune=True)

    if warm:
        run()
    return _min_of(2, run)


def _schedules_equal(a, b):
    return (
        a.makespan == b.makespan
        and a.start == b.start
        and a.finish == b.finish
        and a.node_of_task == b.node_of_task
        and a.core_of_task == b.core_of_task
        and a.messages == b.messages
        and a.comm_bytes == b.comm_bytes
        and a.comm_time_per_node == b.comm_time_per_node
        and a.messages_per_node == b.messages_per_node
        and a.busy_time_per_node == b.busy_time_per_node
    )


def main() -> int:
    trees = _trees()
    n_candidates = sum(1 for _ in _candidates(trees))

    cold_seconds, cold_makespans = sequential_cold(trees)
    warm_seconds, reference = sequential_warm(trees)
    full_seconds, batched = batch_full(trees)
    pruned_cold_seconds, _ = batch_pruned(warm=False)
    pruned_seconds, outcomes = batch_pruned(warm=True)

    # Hard gate 1: batched schedules == per-candidate runs, every field.
    assert len(batched) == len(reference) == n_candidates
    for i, (got, ref) in enumerate(zip(batched, reference)):
        assert _schedules_equal(got, ref), (
            f"batched schedule differs from per-candidate run for "
            f"candidate {i}"
        )
    assert [s.makespan for s in reference] == cold_makespans, (
        "warm program-cache replays changed makespans vs cold compiles"
    )
    print(f"bit-identity audit: {n_candidates} batched schedules equal the "
          "per-candidate engine runs on every field")

    # Hard gate 2: pruning never changes the winner or its score.
    best = min(range(n_candidates), key=lambda i: reference[i].makespan)
    scored = [o for o in outcomes if o.score is not None]
    n_pruned = sum(1 for o in outcomes if o.pruned)
    assert scored, "pruned sweep scored no candidates"
    assert outcomes[best].score == reference[best].makespan, (
        "pruned sweep scored the best candidate differently"
    )
    assert min(o.score for o in scored) == reference[best].makespan, (
        "pruned sweep changed the winning score"
    )
    print(f"winner audit: pruned sweep kept the exhaustive winner "
          f"({n_pruned}/{n_candidates} candidates pruned before the engine)")

    rows = [
        {
            "mode": mode,
            "seconds": seconds,
            "candidates": n_candidates,
            "ms_per_candidate": 1000.0 * seconds / n_candidates,
        }
        for mode, seconds in (
            ("sequential-cold", cold_seconds),
            ("sequential-warm", warm_seconds),
            ("batch-full", full_seconds),
            ("batch-pruned-cold", pruned_cold_seconds),
            ("batch-pruned", pruned_seconds),
        )
    ]
    title = (
        f"Candidate sweep, m=n={M}, nb={NB}, {n_candidates} candidates"
    )
    print(f"\n{'=' * len(title)}\n{title}\n{'=' * len(title)}")
    print(format_rows(rows))

    speedup_full = warm_seconds / full_seconds
    speedup_cold = cold_seconds / pruned_cold_seconds
    speedup = cold_seconds / pruned_seconds
    print(f"batch-full vs sequential-warm (same work, shared axes): "
          f"{speedup_full:.2f}x")
    print(f"batch-pruned-cold vs sequential-cold (first-ever sweep, "
          f"compiles included): {speedup_cold:.2f}x")
    print(f"batch-pruned vs sequential-cold (the BENCH_scale sweep row, "
          f"batched): {speedup:.2f}x")

    stats = engine_memo_stats()
    batch_stats = {k: v for k, v in stats.items() if k.startswith("batch_")}

    trajectory = {
        "problem": {"m": M, "n": N, "nb": NB, "n_cores": N_CORES},
        "sweep": {
            "trees": list(TREES),
            "inner_blocks": list(INNER_BLOCKS),
            "policies": list(POLICIES),
            "candidates": n_candidates,
        },
        "rows": rows,
        "speedup_batch_full_vs_warm": speedup_full,
        "speedup_batch_pruned_cold_vs_cold": speedup_cold,
        "speedup_batch_pruned_vs_cold": speedup,
        "pruned_candidates": n_pruned,
        "equivalence_checked": n_candidates,
        "memo_stats": batch_stats,
    }
    with open(ARTIFACT, "w", encoding="utf-8") as fh:
        json.dump(trajectory, fh, indent=2)
    print(f"wrote {ARTIFACT}")

    # Acceptance bar: the batched end-to-end sweep must beat the cold
    # per-candidate sweep by at least 5x per candidate.  CI runs on noisy
    # shared runners and lowers the floor via the environment (the two
    # audits above are the hard CI gates; the 5x claim is pinned by the
    # checked-in BENCH_batch.json measured on quiet hardware).
    floor = float(os.environ.get("REPRO_BENCH_BATCH_FLOOR", "5.0"))
    assert speedup >= floor, (
        f"batched sweep only {speedup:.2f}x faster than the cold "
        f"per-candidate sweep (floor {floor}x)"
    )
    return 0


if __name__ == "__main__":
    if "--reduced" in sys.argv[1:]:
        os.environ.pop("REPRO_FULL_SCALE", None)
    raise SystemExit(main())
