"""Classical one-stage baselines vs the tiled two-stage pipeline.

Numerically, the one-stage Golub–Kahan reduction (GEBD2/GEBRD), Chan's
algorithm and the tiled two-stage pipeline must all produce the same
singular values; performance-wise, the one-stage algorithm is memory bound
(the roofline model places its BLAS-2 half far below the compute roof),
which is the reason the paper's two-stage approach wins.  Both facts are
checked here.
"""

import numpy as np

from benchmarks.conftest import print_table
from repro.algorithms.bd2val import bidiagonal_singular_values
from repro.algorithms.svd import ge2val
from repro.experiments.figures import format_rows
from repro.lapack import chan_bidiagonalization, chan_flops, gebd2, gebd2_flops
from repro.models.competitors import ScalapackModel
from repro.models.roofline import attainable_gflops, gemv_intensity, tile_kernel_intensity
from repro.runtime.machine import Machine
from repro.runtime.simulator import simulate_ge2val
from repro.utils.generators import latms


def test_all_algorithms_agree_numerically(benchmark):
    def run():
        rows = []
        for m, n in ((120, 60), (200, 40)):
            sv = np.linspace(1.0, 100.0, n)[::-1]
            a = latms(m, n, sv, seed=7)
            tiled = ge2val(a, tile_size=max(8, n // 5), tree="greedy")
            one_stage = gebd2(a)
            one_stage_sv = bidiagonal_singular_values(one_stage.d, one_stage.e)
            chan = chan_bidiagonalization(a)
            chan_sv = bidiagonal_singular_values(chan.d, chan.e)
            rows.append(
                {
                    "m": m,
                    "n": n,
                    "tiled_vs_prescribed": float(np.max(np.abs(tiled - sv)) / sv[0]),
                    "gebd2_vs_prescribed": float(np.max(np.abs(one_stage_sv - sv)) / sv[0]),
                    "chan_vs_prescribed": float(np.max(np.abs(chan_sv - sv)) / sv[0]),
                }
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print_table("One-stage vs two-stage: singular-value agreement", format_rows(rows))
    for row in rows:
        assert row["tiled_vs_prescribed"] < 1e-12
        assert row["gebd2_vs_prescribed"] < 1e-12
        assert row["chan_vs_prescribed"] < 1e-12


def test_one_stage_is_memory_bound_two_stage_is_not(benchmark):
    machine = Machine(n_nodes=1, cores_per_node=24, tile_size=160)

    def run():
        rows = []
        blas2_roof = attainable_gflops(gemv_intensity())
        tile_roof = attainable_gflops(tile_kernel_intensity(160))
        for m, n in ((8000, 8000), (24000, 2000)):
            dplasma = simulate_ge2val(m, n, machine, tree="auto")
            scalapack = ScalapackModel().gflops(m, n, machine)
            rows.append(
                {
                    "m": m,
                    "n": n,
                    "dplasma_gflops": dplasma.gflops,
                    "scalapack_gflops": scalapack,
                    "blas2_roof_gflops": blas2_roof,
                    "tile_kernel_roof_gflops": tile_roof,
                }
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print_table("Roofline: one-stage vs two-stage GE2VAL (single node)", format_rows(rows))
    for row in rows:
        # The one-stage model cannot exceed roughly twice the BLAS-2 roof
        # (half its flops are memory bound)...
        assert row["scalapack_gflops"] < 2.5 * row["blas2_roof_gflops"]
        # ...while the two-stage pipeline clears that roof comfortably.
        assert row["dplasma_gflops"] > 2.5 * row["blas2_roof_gflops"]
        assert row["dplasma_gflops"] < row["tile_kernel_roof_gflops"]


def test_flop_counts_cross_at_5n_over_3(benchmark):
    def run():
        rows = []
        n = 2000
        for ratio in (1.0, 1.5, 5.0 / 3.0, 2.0, 4.0):
            m = int(round(ratio * n))
            rows.append(
                {
                    "m/n": ratio,
                    "gebd2_gflop": gebd2_flops(m, n) / 1e9,
                    "chan_gflop": chan_flops(m, n) / 1e9,
                }
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print_table("Flop crossover of Chan's algorithm (n = 2000)", format_rows(rows))
    for row in rows:
        if row["m/n"] < 5.0 / 3.0 - 1e-9:
            assert row["gebd2_gflop"] < row["chan_gflop"]
        elif row["m/n"] > 5.0 / 3.0 + 1e-9:
            assert row["gebd2_gflop"] > row["chan_gflop"]
