"""Autotuner search cost: serial vs parallel, cold vs cached.

Times the :mod:`repro.tuning` grid search over one Section-VI-B-shaped
space four ways — serial, parallel (``concurrent.futures`` process pool),
pruned vs exhaustive, and cache-hit — and writes the measured trajectory to
``BENCH_tuning.json`` at the repo root so successive runs can be compared.

The parallel speedup assertion is deliberately lenient (container CPU
quotas vary); the cache assertion is not — a cache hit must be orders of
magnitude faster than any search.
"""

from __future__ import annotations

import json
import os
import time

from benchmarks.conftest import print_table
from repro.api import SvdPlan
from repro.experiments.figures import format_rows, full_scale
from repro.tuning import GridSearch, PlanCache, SearchSpace, tune

ARTIFACT = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "BENCH_tuning.json"
)

#: One miriel node, square problem, paper-shaped space (Section VI-B).
M = N = 20000 if full_scale() else 1600
SPACE = SearchSpace(
    tile_sizes=(80, 120, 160, 240) if full_scale() else (40, 64, 100, 160),
    trees=("flatts", "flattt", "greedy", "auto"),
    variants=("bidiag",),
)


def _plan() -> SvdPlan:
    return SvdPlan(m=M, n=N, stage="ge2val", n_cores=24)


def _timed(label: str, **kwargs):
    start = time.perf_counter()
    result = tune(_plan(), space=SPACE, **kwargs)
    elapsed = time.perf_counter() - start
    return {
        "mode": label,
        "seconds": elapsed,
        "evaluated": result.n_evaluated,
        "pruned": result.n_pruned,
        "best_nb": result.best_plan.tile_size,
        "best_tree": str(result.best_plan.tree),
        "from_cache": result.from_cache,
    }, result


def test_bench_tuning_trajectory(benchmark, tmp_path):
    cache = PlanCache(tmp_path / "plan_cache.json")
    rows = []

    def run():
        rows.clear()
        for label, kwargs in (
            ("exhaustive-serial", dict(strategy=GridSearch(prune=False), cache=False)),
            ("pruned-serial", dict(cache=False)),
            ("pruned-parallel-4", dict(cache=False, workers=4)),
            ("cold-cache", dict(cache=cache)),
            ("warm-cache", dict(cache=cache)),
            ("halving-serial", dict(strategy="halving", cache=False)),
        ):
            row, _ = _timed(label, **kwargs)
            rows.append(row)
        return rows

    benchmark.pedantic(run, rounds=1, iterations=1)
    print_table(
        f"Autotuner search cost, m=n={M}, {SPACE.size(_plan())} candidates",
        format_rows(rows),
    )

    by_mode = {r["mode"]: r for r in rows}
    # Every search mode agrees on the winner; the cache serves it verbatim.
    winners = {(r["best_nb"], r["best_tree"]) for r in rows if r["mode"] != "halving-serial"}
    assert len(winners) == 1
    # Pruning skips candidates and never loses to exhaustive.
    assert by_mode["pruned-serial"]["pruned"] > 0
    assert by_mode["pruned-serial"]["evaluated"] < by_mode["exhaustive-serial"]["evaluated"]
    # The warm cache answers without evaluating anything, basically for free.
    assert by_mode["warm-cache"]["from_cache"]
    assert by_mode["warm-cache"]["evaluated"] == 0
    assert by_mode["warm-cache"]["seconds"] < 0.25 * by_mode["cold-cache"]["seconds"]
    # Parallel search is measurably faster wherever there is more than one
    # core to use; on a single-core machine all it can cost is pool
    # overhead.  (The artifact records the exact speedup either way.)
    parallel_budget = 1.0 if (os.cpu_count() or 1) >= 4 else 2.5
    assert (
        by_mode["pruned-parallel-4"]["seconds"]
        < parallel_budget * by_mode["pruned-serial"]["seconds"]
    )

    trajectory = {
        "problem": {"m": M, "n": N, "stage": "ge2val", "n_cores": 24},
        "space_size": SPACE.size(_plan()),
        "rows": rows,
        "speedup_parallel_vs_serial": by_mode["pruned-serial"]["seconds"]
        / by_mode["pruned-parallel-4"]["seconds"],
        "speedup_cache_vs_search": by_mode["cold-cache"]["seconds"]
        / max(by_mode["warm-cache"]["seconds"], 1e-9),
    }
    with open(ARTIFACT, "w", encoding="utf-8") as fh:
        json.dump(trajectory, fh, indent=2)
    print(f"wrote {ARTIFACT}")
