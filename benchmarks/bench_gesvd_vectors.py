"""Singular-vector pipeline — accuracy and the cost of accumulating vectors.

The paper computes singular values only and notes that computing the
vectors requires applying every reduction stage in reverse, "adding a
non-negligible overhead" (Section II).  This benchmark runs the numeric
two-stage GESVD on moderate matrices and reports

* the accuracy of the computed factorization (residual, orthogonality,
  singular-value error against NumPy), and
* the overhead of the vector-enabled pipeline relative to the values-only
  pipeline (GE2VAL), per stage.
"""

import numpy as np

from benchmarks.conftest import print_table
from repro.algorithms.gesvd_pipeline import gesvd_two_stage
from repro.algorithms.svd import ge2val
from repro.experiments.figures import format_rows
from repro.utils.generators import graded_singular_values, latms
from repro.utils.validation import orthogonality_error, reconstruction_error


def test_gesvd_vector_accuracy(benchmark):
    shapes = [(120, 60), (160, 40), (96, 96)]

    def run():
        rows = []
        for m, n in shapes:
            sv = graded_singular_values(n, condition=1e8)
            a = latms(m, n, sv, seed=m + n)
            res = gesvd_two_stage(a, tile_size=max(8, n // 6), tree="auto", n_cores=8)
            rows.append(
                {
                    "m": m,
                    "n": n,
                    "residual": reconstruction_error(a, res.u, res.singular_values, res.vt),
                    "orth_u": orthogonality_error(res.u),
                    "orth_v": orthogonality_error(res.vt.T),
                    "sv_error": float(np.max(np.abs(res.singular_values - sv)) / sv[0]),
                }
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print_table("GESVD (two-stage, with vectors): accuracy", format_rows(rows))
    for row in rows:
        assert row["residual"] < 1e-12
        assert row["orth_u"] < 1e-12
        assert row["orth_v"] < 1e-12
        assert row["sv_error"] < 1e-12


def test_vector_accumulation_overhead(benchmark):
    m, n = 160, 80

    def run():
        rng = np.random.default_rng(5)
        a = rng.standard_normal((m, n))
        import time

        t0 = time.perf_counter()
        ge2val(a, tile_size=16, tree="greedy")
        values_only = time.perf_counter() - t0

        res = gesvd_two_stage(a, tile_size=16, tree="greedy")
        with_vectors = sum(res.stage_seconds.values())
        rows = [
            {"pipeline": "GE2VAL (values only)", "seconds": values_only},
            {"pipeline": "GESVD (with vectors)", "seconds": with_vectors},
        ]
        rows.extend(
            {"pipeline": f"  stage {k}", "seconds": v} for k, v in res.stage_seconds.items()
        )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print_table("Vector accumulation overhead (160 x 80, nb=16)", format_rows(rows))
    values_only = rows[0]["seconds"]
    with_vectors = rows[1]["seconds"]
    # Computing vectors is genuinely more expensive than values only.
    assert with_vectors > values_only
