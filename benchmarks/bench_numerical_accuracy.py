"""Numerical accuracy — "computed singular values satisfactory to machine
precision" (Section VI-A).

The paper validates every run against LATMS-generated matrices with
prescribed singular values.  This bench does the same for the full GE2VAL
pipeline (both BIDIAG and R-BIDIAG, several trees) and also times the
numeric pipeline at a small size.
"""

import numpy as np

from benchmarks.conftest import print_table
from repro.algorithms.svd import ge2val
from repro.experiments.figures import format_rows
from repro.utils.generators import graded_singular_values, latms
from repro.utils.validation import max_relative_error


def test_latms_accuracy_table(benchmark):
    rng = np.random.default_rng(42)

    def run():
        rows = []
        cases = [
            ("square/greedy", 48, 48, "greedy", "bidiag"),
            ("square/auto", 48, 48, "auto", "bidiag"),
            ("tall/flatts", 96, 24, "flatts", "bidiag"),
            ("tall/rbidiag", 96, 24, "greedy", "rbidiag"),
            ("graded/auto", 60, 30, "auto", "auto"),
        ]
        for name, m, n, tree, variant in cases:
            if name.startswith("graded"):
                sigma = graded_singular_values(n, condition=1e8)
            else:
                sigma = np.linspace(10.0, 1.0, n)
            a = latms(m, n, sigma, rng=rng)
            sv = ge2val(a, tile_size=8, tree=tree, variant=variant)
            rows.append({"case": name, "max_rel_err": max_relative_error(sv, sigma)})
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print_table("Numerical accuracy vs prescribed singular values", format_rows(rows))
    for r in rows:
        assert r["max_rel_err"] < 1e-8, r


def test_bench_ge2val_numeric(benchmark):
    rng = np.random.default_rng(0)
    a = rng.standard_normal((64, 32))
    sv = benchmark(ge2val, a, tile_size=8, tree="greedy")
    ref = np.linalg.svd(a, compute_uv=False)
    assert np.allclose(sv, ref, atol=1e-9)
