"""Section IV / Theorem 1 — asymptotic critical-path behaviour.

Verifies, with the closed-form GREEDY critical paths, that

* ``BIDIAG(p, q) / ((12 + 6a) q log2 q)`` converges to 1, and
* ``BIDIAG / R-BIDIAG`` converges to ``1 + a/2``

for ``p = q^(1+a)``, and that the measured DAG critical paths match the
closed forms on the sizes where tracing is feasible.
"""

from benchmarks.conftest import print_table
from repro.analysis.asymptotics import asymptotic_sweep, theorem1_limit_ratio
from repro.analysis.formulas import bidiag_greedy_cp
from repro.dag.critical_path import critical_path_length
from repro.dag.tracer import trace_bidiag
from repro.experiments.figures import format_rows
from repro.trees import GreedyTree

Q_VALUES = (64, 256, 1024, 4096)


def test_theorem1_normalization_and_ratio(benchmark):
    def run():
        rows = []
        for alpha in (0.0, 0.25, 0.5, 0.75):
            points = asymptotic_sweep(Q_VALUES, alpha=alpha)
            for point in points:
                rows.append(
                    {
                        "alpha": alpha,
                        "q": point.q,
                        "p": point.p,
                        "normalized_cp": point.normalized_bidiag,
                        "bidiag/rbidiag": point.ratio,
                        "limit": theorem1_limit_ratio(alpha),
                    }
                )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print_table("Theorem 1: normalized CP and BIDIAG/R-BIDIAG ratio", format_rows(rows))
    for alpha in (0.0, 0.25, 0.5, 0.75):
        sub = [r for r in rows if r["alpha"] == alpha]
        # The normalized critical path approaches 1 from above.
        assert sub[-1]["normalized_cp"] < sub[0]["normalized_cp"]
        assert 0.95 < sub[-1]["normalized_cp"] < 1.25
        # The BIDIAG / R-BIDIAG ratio approaches 1 + alpha/2 from below.
        limit = theorem1_limit_ratio(alpha)
        assert sub[-1]["bidiag/rbidiag"] <= limit + 0.05
        assert sub[-1]["bidiag/rbidiag"] >= limit - 0.25


def test_measured_cp_matches_closed_form(benchmark):
    shapes = ((8, 8), (16, 8), (16, 16), (32, 8))

    def run():
        rows = []
        for p, q in shapes:
            measured = critical_path_length(trace_bidiag(p, q, GreedyTree()))
            formula = bidiag_greedy_cp(p, q)
            rows.append({"p": p, "q": q, "measured": measured, "formula": formula})
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print_table("Measured DAG critical path vs closed form (GREEDY)", format_rows(rows))
    for row in rows:
        assert row["measured"] == row["formula"]
