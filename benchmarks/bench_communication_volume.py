"""Section VI-D — communication volume of the distributed reduction trees.

The paper attributes the distributed ranking of the trees partly to their
communication volume: "GREEDY doubles the number of communications on
square cases" compared to the flat top tree.  This benchmark counts the
inter-node messages induced by the traced DAG on a block-cyclic grid and
checks that ordering, for square and tall-and-skinny tile shapes.
"""

from benchmarks.conftest import print_table
from repro.analysis.communication import communication_volume, panel_messages_estimate
from repro.dag.tracer import trace_bidiag
from repro.experiments.figures import format_rows
from repro.tiles.distribution import BlockCyclicDistribution, ProcessGrid
from repro.trees import GreedyTree, HierarchicalTree


def _volume(p, q, top, grid_rows, grid_cols):
    tree = HierarchicalTree(local_tree=GreedyTree(), top=top, grid_rows=grid_rows)
    graph = trace_bidiag(p, q, tree, grid_rows=grid_rows)
    dist = BlockCyclicDistribution(ProcessGrid(grid_rows, grid_cols))
    return communication_volume(graph, dist, tile_size=160)


def test_top_tree_communication_ordering(benchmark):
    cases = [
        ("square 16x16, 2x2 grid", 16, 16, 2, 2),
        ("square 24x24, 4x1 grid", 24, 24, 4, 1),
        ("tall-skinny 32x8, 4x1 grid", 32, 8, 4, 1),
    ]  # the "4x1 grid" label is what the ordering assertion below keys on

    def run():
        rows = []
        for label, p, q, gr, gc in cases:
            flat = _volume(p, q, "flat", gr, gc)
            greedy = _volume(p, q, "greedy", gr, gc)
            rows.append(
                {
                    "case": label,
                    "flat_messages": flat.messages,
                    "greedy_messages": greedy.messages,
                    "ratio": greedy.messages / max(flat.messages, 1),
                    "flat_MB": flat.bytes_moved / 1e6,
                    "greedy_MB": greedy.bytes_moved / 1e6,
                }
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print_table("Communication volume: flat vs greedy top tree", format_rows(rows))
    for row in rows:
        # The flat top tree never sends more than the greedy one.
        assert row["flat_messages"] <= row["greedy_messages"]
    # With more than two grid rows the gap is strict.  (The paper's factor-of-two
    # statement counts every tile movement of the HQR update phase; our
    # deduplicated producer->node accounting is more conservative, so we only
    # assert the ordering and a visible gap here.)
    multi_row = [r for r in rows if "4x1" in r["case"]]
    assert all(r["ratio"] > 1.05 for r in multi_row)


def test_per_panel_estimates_bound_the_measured_volume(benchmark):
    def run():
        rows = []
        for grid_rows in (2, 4, 8):
            stats = _volume(32, 8, "flat", grid_rows, 1)
            per_panel = panel_messages_estimate(grid_rows, "flat")
            rows.append(
                {
                    "grid_rows": grid_rows,
                    "messages": stats.messages,
                    "per_panel_estimate": per_panel,
                    "balanced_send": max(stats.per_node_sent) - min(stats.per_node_sent),
                }
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print_table("Flat top tree: measured volume vs per-panel estimate", format_rows(rows))
    # More grid rows -> more inter-node eliminations -> more messages.
    messages = [r["messages"] for r in rows]
    assert messages == sorted(messages)
