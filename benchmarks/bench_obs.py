"""Observability overhead: traced vs untraced engine replay.

The tracing design records *nothing inside the engine's event loop* —
every task/transfer event is reconstructed after the loop from state the
loop already computes — so turning a tracer on must cost only the
post-loop bookkeeping, and leaving it off must cost one thread-local
read.  This benchmark pins that claim:

* ``off``    — plain replay of a warmed cached Program (the disabled
  path: ``current_tracer()`` returns ``None``);
* ``on``     — the same replay with an active :class:`~repro.obs.Tracer`
  (phase spans + engine-run record + transfer reconstruction);
* ``export`` — rendering the recorded trace to Chrome trace-event JSON
  (informational: export happens once, outside any replay loop).

Writes ``BENCH_obs.json`` at the repo root and asserts the acceptance
bar: traced replay stays within 5% of untraced wall-clock (median over
batches; override the bound with ``REPRO_BENCH_OBS_OVERHEAD`` for noisy
CI runners).  Scaled-down by default; ``REPRO_FULL_SCALE=1`` uses the
paper's problem size.
"""

from __future__ import annotations

import json
import os
import statistics
import sys
import time

_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
_SRC = os.path.join(_ROOT, "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)

from repro.api.resolver import default_grid  # noqa: E402
from repro.experiments.figures import full_scale  # noqa: E402
from repro.ir import get_program  # noqa: E402
from repro.obs import Tracer, validate_chrome_trace  # noqa: E402
from repro.runtime.engine import SimulationEngine  # noqa: E402
from repro.runtime.machine import Machine  # noqa: E402
from repro.tiles.distribution import BlockCyclicDistribution  # noqa: E402
from repro.tiles.layout import ceil_div  # noqa: E402
from repro.trees import make_tree  # noqa: E402

ARTIFACT = os.path.join(_ROOT, "BENCH_obs.json")

M = N = 20000 if full_scale() else 1600
NB = 160 if full_scale() else 100
#: Multi-node + alpha-beta: the tracer's worst case (per-message
#: transfer reconstruction on top of the task events).
N_NODES, CORES = 4, 6
BATCHES = 7
REPS = 3 if full_scale() else 10


def _setup():
    machine = Machine(n_nodes=N_NODES, cores_per_node=CORES, tile_size=NB)
    p, q = ceil_div(M, NB), ceil_div(N, NB)
    grid = default_grid(N_NODES, p, q)
    tree = make_tree("auto", n_cores=CORES)
    program = get_program(
        "bidiag", p, q, tree, n_cores=CORES, grid_rows=grid.rows
    )
    engine = SimulationEngine(
        machine, BlockCyclicDistribution(grid), network="alpha-beta"
    )
    return engine, program


def _batch_seconds(engine, program, tracer):
    """Best wall-clock of BATCHES batches of REPS replays (median kept too)."""
    times = []
    for _ in range(BATCHES):
        t0 = time.perf_counter()
        for _rep in range(REPS):
            if tracer is None:
                schedule = engine.run(program)
            else:
                with tracer.activate():
                    schedule = engine.run(program)
        times.append(time.perf_counter() - t0)
    return min(times), statistics.median(times), schedule


def main() -> int:
    bound_pct = float(os.environ.get("REPRO_BENCH_OBS_OVERHEAD", "5.0"))
    engine, program = _setup()
    engine.run(program)  # warm program + memo tables out of the measurement

    off_best, off_median, plain = _batch_seconds(engine, program, None)
    tracer = Tracer()
    on_best, on_median, traced = _batch_seconds(engine, program, tracer)

    assert traced.makespan == plain.makespan, "tracing perturbed the schedule"
    assert traced.start == plain.start, "tracing perturbed the schedule"
    assert len(tracer.runs) == BATCHES * REPS

    t0 = time.perf_counter()
    payload = tracer.to_chrome_trace()
    export_seconds = time.perf_counter() - t0
    assert validate_chrome_trace(payload) == []

    overhead_pct = (on_best / off_best - 1.0) * 100.0
    per_replay_us = (on_best - off_best) / (BATCHES * REPS) * 1e6

    title = (
        f"Tracing overhead, m=n={M}, nb={NB}, "
        f"{N_NODES}x{CORES} cores, alpha-beta, {len(program)} tasks"
    )
    print(f"\n{'=' * len(title)}\n{title}\n{'=' * len(title)}")
    print(f"off (best of {BATCHES}x{REPS} replays) : {off_best:.4f}s")
    print(f"on  (best of {BATCHES}x{REPS} replays) : {on_best:.4f}s")
    print(f"overhead                   : {overhead_pct:+.2f}%  "
          f"({per_replay_us:+.0f}us per replay)")
    print(f"export ({len(payload['traceEvents'])} events)      : "
          f"{export_seconds:.4f}s (one-off, outside replay)")

    trajectory = {
        "problem": {
            "m": M, "n": N, "nb": NB,
            "n_nodes": N_NODES, "cores_per_node": CORES,
            "network": "alpha-beta", "tasks": len(program),
        },
        "protocol": {
            "batches": BATCHES, "reps_per_batch": REPS,
            "statistic": "best-of-batches",
        },
        "rows": [
            {"mode": "off", "best_seconds": off_best,
             "median_seconds": off_median},
            {"mode": "on", "best_seconds": on_best,
             "median_seconds": on_median},
            {"mode": "export", "best_seconds": export_seconds,
             "events": len(payload["traceEvents"])},
        ],
        "overhead_pct": overhead_pct,
        "overhead_us_per_replay": per_replay_us,
        "bound_pct": bound_pct,
        "schedules_identical": True,
    }
    with open(ARTIFACT, "w", encoding="utf-8") as fh:
        json.dump(trajectory, fh, indent=2)
    print(f"wrote {ARTIFACT}")

    assert overhead_pct < bound_pct, (
        f"tracing overhead {overhead_pct:.2f}% exceeds the {bound_pct:.1f}% bound"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
