"""Section IV — critical-path lengths of BIDIAG and R-BIDIAG.

Regenerates the critical-path comparison (measured DAG vs closed forms) for
the three analysed trees, and the asymptotic statements of Theorem 1.
"""



from benchmarks.conftest import print_table
from repro.analysis.crossover import measured_bidiag_cp, measured_rbidiag_cp
from repro.analysis.formulas import (
    bidiag_flatts_cp,
    bidiag_flattt_cp,
    bidiag_greedy_cp,
    greedy_asymptotic_cp,
)
from repro.experiments.figures import critical_path_table, format_rows


def test_critical_path_table(benchmark):
    rows = benchmark.pedantic(
        lambda: critical_path_table(shapes=((4, 4), (8, 8), (16, 8), (32, 8), (16, 16))),
        rounds=1,
        iterations=1,
    )
    print_table("Section IV: critical paths (measured vs closed form)", format_rows(rows))
    for r in rows:
        if r["algorithm"] == "bidiag":
            assert r["cp_measured"] == r["cp_formula"]
        else:
            assert r["cp_measured"] <= r["cp_formula"]


def test_greedy_is_order_of_magnitude_better(benchmark):
    """Θ(q log2 p) vs Θ(pq): the FlatTS/Greedy ratio grows linearly in p/log p."""
    benchmark.pedantic(lambda: bidiag_greedy_cp(64, 64), rounds=1, iterations=1)
    rows = []
    for q in (8, 16, 32):
        ratio_ts = bidiag_flatts_cp(q, q) / bidiag_greedy_cp(q, q)
        ratio_tt = bidiag_flattt_cp(q, q) / bidiag_greedy_cp(q, q)
        rows.append({"q": q, "flatts/greedy": ratio_ts, "flattt/greedy": ratio_tt})
    print_table("BIDIAG critical-path ratios vs GREEDY (square)", format_rows(rows))
    assert rows[-1]["flatts/greedy"] > rows[0]["flatts/greedy"]
    assert rows[-1]["flatts/greedy"] > 3.0


def test_theorem1_asymptotic_ratio(benchmark):
    """BIDIAG / R-BIDIAG -> 1 + alpha/2 for p = q^(1+alpha)."""
    benchmark.pedantic(lambda: measured_rbidiag_cp(16, 8), rounds=1, iterations=1)
    rows = []
    q = 8
    for alpha in (0.0, 0.5, 0.9):
        p = max(q, int(round(q ** (1.0 + alpha))))
        ratio = measured_bidiag_cp(p, q) / measured_rbidiag_cp(p, q)
        rows.append({"alpha": alpha, "p": p, "q": q, "ratio": ratio, "limit": 1 + alpha / 2})
    print_table("Theorem 1: BIDIAG/R-BIDIAG critical-path ratio", format_rows(rows))
    ratios = [r["ratio"] for r in rows]
    assert ratios[0] < ratios[1] < ratios[2]


def test_greedy_asymptotic_equivalent(benchmark):
    benchmark.pedantic(lambda: bidiag_greedy_cp(256, 256), rounds=1, iterations=1)
    rows = []
    for q in (64, 128, 256):
        rows.append(
            {
                "q": q,
                "cp": bidiag_greedy_cp(q, q),
                "(12)q log2 q": greedy_asymptotic_cp(q),
                "ratio": bidiag_greedy_cp(q, q) / greedy_asymptotic_cp(q),
            }
        )
    print_table("BIDIAG-GREEDY(q,q) vs asymptotic 12 q log2 q", format_rows(rows))
    assert abs(rows[-1]["ratio"] - 1.0) < 0.25


def test_bench_bidiag_greedy_formula(benchmark):
    benchmark(bidiag_greedy_cp, 512, 256)


def test_bench_measured_cp_small(benchmark):
    benchmark(measured_bidiag_cp.__wrapped__, 16, 8)
