"""Shared configuration for the benchmark harness.

Every benchmark module regenerates one table or figure of the paper
(see DESIGN.md for the experiment index) and prints the corresponding
series; run with ``pytest benchmarks/ --benchmark-only -s`` to see them.

Problem sizes are scaled down by default so the whole harness completes in
minutes on a laptop; set ``REPRO_FULL_SCALE=1`` to use the paper's sizes
(slow: the biggest DAGs have millions of tasks).
"""

from __future__ import annotations

import os
import sys

import pytest

_SRC = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)

from repro.runtime.machine import Machine  # noqa: E402


@pytest.fixture(scope="session")
def miriel_node() -> Machine:
    """One 24-core miriel node with the paper's tile size."""
    return Machine(n_nodes=1, cores_per_node=24, tile_size=160)


def print_table(title: str, text: str) -> None:
    """Print a paper-style series under a banner (visible with ``-s``)."""
    banner = "=" * max(len(title), 20)
    print(f"\n{banner}\n{title}\n{banner}\n{text}\n")
