"""Structure-of-arrays fast path: cold compile+simulate cost and scale sweep.

Two experiments, written to ``BENCH_scale.json``:

1. **Cold pipeline cost** at the PR-3 bench shape (the ``bench_engine.py``
   sweep: every (tree, inner-block, policy) candidate of one GE2BND
   problem, DAG compiled fresh per candidate), run two ways:

   * ``legacy-object-path`` — the pre-SoA pipeline, reconstructed
     faithfully: a recorder that eagerly builds one
     :class:`~repro.ir.program.Op` (with frozenset access sets) per kernel
     call, ``Program.from_ops`` (per-op dict-based dependency analysis,
     per-edge Python CSR build), and the engine's retained legacy path
     (``fast=False``: per-op pricing, per-op owner resolution, per-node
     Python rank recursion);
   * ``soa-fast-path`` — the structure-of-arrays pipeline: column
     recording with integer-coded data items, table-based dependency
     analysis, vectorized CSR/level construction, and the array-native
     engine (``fast=True``).

   Acceptance bar: the SoA path is at least **3x** faster cold, with the
   list-policy makespans bitwise identical between the two paths.

2. **Scale sweep** at ``p = q >= 48`` (tens of thousands of ops per DAG —
   ~150k for the greedy tree at p=48): all trees x all policies through
   the shared program cache, a sweep the legacy object path cannot cover
   in smoke time (one legacy candidate is timed for the projection).

A full-schedule equivalence audit (every field of the
:class:`~repro.runtime.scheduler.Schedule`, multi-node and alpha-beta
included) runs first and is part of the benchmark's exit status.

Scaled-down by default (CI smoke-runs it in this reduced mode, also
reachable as ``python benchmarks/bench_scale.py --reduced``); set
``REPRO_FULL_SCALE=1`` for the paper's problem sizes and a million-op
scale sweep (p = q = 96).
"""

from __future__ import annotations

import json
import os
import sys
import time

_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
_SRC = os.path.join(_ROOT, "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)

from repro.algorithms.bidiag import bidiag_ge2bnd  # noqa: E402
from repro.algorithms.executor import KernelExecutor  # noqa: E402
from repro.experiments.figures import format_rows, full_scale  # noqa: E402
from repro.ir import Program, compile_program, get_program  # noqa: E402
from repro.ir.program import Op  # noqa: E402
from repro.kernels.costs import KernelName, kernel_weight  # noqa: E402
from repro.runtime.engine import SimulationEngine  # noqa: E402
from repro.runtime.machine import Machine  # noqa: E402
from repro.tiles.layout import ceil_div  # noqa: E402
from repro.trees import make_tree  # noqa: E402

ARTIFACT = os.path.join(_ROOT, "BENCH_scale.json")

#: One miriel node; the candidate axes of the PR-3 bench_engine sweep.
M = N = 20000 if full_scale() else 1600
NB = 160 if full_scale() else 100
TREES = ("flatts", "flattt", "greedy", "auto")
INNER_BLOCKS = (32, 40)
POLICIES = ("list", "critical-path", "locality", "random")

#: The scale sweep: a tile grid the legacy path cannot sweep in smoke time.
SCALE_P = 96 if full_scale() else 48
SCALE_POLICIES = ("list", "critical-path", "locality", "fifo")


# --------------------------------------------------------------------------- #
# The pre-SoA recorder, reconstructed faithfully as the baseline.
# --------------------------------------------------------------------------- #
def _upper(i, j):
    return ("U", i, j)


def _lower(i, j):
    return ("L", i, j)


def _whole(i, j):
    return (_upper(i, j), _lower(i, j))


class LegacyRecorder(KernelExecutor):
    """Eager object recorder: one ``Op`` with frozenset access sets per call.

    This is the recording strategy the repo used before the
    structure-of-arrays path (PR 3's ``ProgramRecorder``), kept here so the
    benchmark's baseline measures the real pre-SoA cost profile rather
    than a synthetic slowdown.
    """

    def __init__(self, p, q):
        self._p, self._q = p, q
        self.ops = []
        self.current_step = ""

    @property
    def p(self):
        return self._p

    @property
    def q(self):
        return self._q

    def _record(self, kernel, params, reads, writes, owner_tile):
        self.ops.append(
            Op(
                index=len(self.ops),
                kernel=kernel,
                params=params,
                reads=frozenset(reads),
                writes=frozenset(writes),
                weight=kernel_weight(kernel),
                owner_tile=owner_tile,
                step=self.current_step,
            )
        )

    def geqrt(self, i, k):
        self._record(KernelName.GEQRT, (i, k), (), _whole(i, k), (i, k))

    def unmqr(self, i, k, j):
        self._record(KernelName.UNMQR, (i, k, j), (_lower(i, k),), _whole(i, j), (i, j))

    def tsqrt(self, piv, i, k):
        self._record(
            KernelName.TSQRT, (piv, i, k), (), (_upper(piv, k),) + _whole(i, k), (i, k)
        )

    def tsmqr(self, piv, i, k, j):
        self._record(
            KernelName.TSMQR, (piv, i, k, j), _whole(i, k),
            _whole(piv, j) + _whole(i, j), (i, j),
        )

    def ttqrt(self, piv, i, k):
        self._record(
            KernelName.TTQRT, (piv, i, k), (), (_upper(piv, k), _upper(i, k)), (i, k)
        )

    def ttmqr(self, piv, i, k, j):
        self._record(
            KernelName.TTMQR, (piv, i, k, j), (_upper(i, k),),
            _whole(piv, j) + _whole(i, j), (i, j),
        )

    def gelqt(self, k, j):
        self._record(KernelName.GELQT, (k, j), (), _whole(k, j), (k, j))

    def unmlq(self, k, j, i):
        self._record(KernelName.UNMLQ, (k, j, i), (_upper(k, j),), _whole(i, j), (i, j))

    def tslqt(self, piv, j, k):
        self._record(
            KernelName.TSLQT, (piv, j, k), (), (_lower(k, piv),) + _whole(k, j), (k, j)
        )

    def tsmlq(self, piv, j, k, i):
        self._record(
            KernelName.TSMLQ, (piv, j, k, i), _whole(k, j),
            _whole(i, piv) + _whole(i, j), (i, j),
        )

    def ttlqt(self, piv, j, k):
        self._record(
            KernelName.TTLQT, (piv, j, k), (), (_lower(k, piv), _lower(k, j)), (k, j)
        )

    def ttmlq(self, piv, j, k, i):
        self._record(
            KernelName.TTMLQ, (piv, j, k, i), (_lower(k, j),),
            _whole(i, piv) + _whole(i, j), (i, j),
        )


def legacy_compile(p, q, tree):
    """The pre-SoA cold compile: eager ops + dict analyzer + Python CSR."""
    recorder = LegacyRecorder(p, q)
    bidiag_ge2bnd(recorder, tree, None)
    return Program.from_ops(recorder.ops)


# --------------------------------------------------------------------------- #
# Experiment 1: cold compile+simulate at the PR-3 bench shape
# --------------------------------------------------------------------------- #
def _candidates():
    p = q = ceil_div(M, NB)
    for tree_name in TREES:
        tree = make_tree(tree_name) if tree_name != "auto" else make_tree(
            "auto", n_cores=24
        )
        for ib in INNER_BLOCKS:
            machine = Machine(
                n_nodes=1, cores_per_node=24, tile_size=NB, inner_block=ib
            )
            for policy in POLICIES:
                yield tree_name, tree, p, q, machine, policy


def _cold_sweep(mode, repeats=2):
    """Compile fresh + simulate for every candidate; returns (s, makespans).

    The sweep runs ``repeats`` times and the *minimum* wall-clock is
    reported — the standard way to measure code cost under scheduler
    noise (every run does identical work; anything above the minimum is
    interference).
    """
    best = None
    for _ in range(repeats):
        makespans = []
        start = time.perf_counter()
        for _name, tree, p, q, machine, policy in _candidates():
            if mode == "legacy-object-path":
                program = legacy_compile(p, q, tree)
                schedule = SimulationEngine(
                    machine, policy=policy, fast=False
                ).run(program)
            else:  # soa-fast-path
                program = compile_program("bidiag", p, q, tree)
                schedule = SimulationEngine(
                    machine, policy=policy, fast=True
                ).run(program)
            makespans.append(schedule.makespan)
        seconds = time.perf_counter() - start
        if best is None or seconds < best:
            best = seconds
    return best, makespans


# --------------------------------------------------------------------------- #
# Equivalence audit: SoA path == legacy object path, every schedule field
# --------------------------------------------------------------------------- #
def _schedules_equal(a, b):
    return (
        a.makespan == b.makespan
        and a.start == b.start
        and a.finish == b.finish
        and a.node_of_task == b.node_of_task
        and a.core_of_task == b.core_of_task
        and a.messages == b.messages
        and a.comm_bytes == b.comm_bytes
        and a.comm_time_per_node == b.comm_time_per_node
        and a.messages_per_node == b.messages_per_node
        and a.busy_time_per_node == b.busy_time_per_node
    )


def equivalence_audit():
    """Bitwise schedule equality across policies, networks and node counts."""
    configs = [
        ("bidiag", 10, 8, make_tree("greedy"),
         Machine(n_nodes=1, cores_per_node=8, tile_size=160)),
        ("bidiag", 8, 8, make_tree("flattt"),
         Machine(n_nodes=4, cores_per_node=4, tile_size=100)),
        ("rbidiag", 12, 4, make_tree("greedy"),
         Machine(n_nodes=2, cores_per_node=4, tile_size=100)),
    ]
    checked = 0
    for alg, p, q, tree, machine in configs:
        program = get_program(alg, p, q, tree)
        for policy in ("list", "critical-path", "locality", "fifo", "weight",
                       "random"):
            for network in ("uniform", "alpha-beta"):
                fast = SimulationEngine(
                    machine, policy=policy, network=network, fast=True
                ).run(program)
                legacy = SimulationEngine(
                    machine, policy=policy, network=network, fast=False
                ).run(program)
                assert _schedules_equal(fast, legacy), (
                    f"SoA/legacy schedule mismatch: {alg} {p}x{q} "
                    f"policy={policy} network={network}"
                )
                checked += 1
    return checked


# --------------------------------------------------------------------------- #
# Experiment 2: the p = q >= 48 tree x policy scale sweep
# --------------------------------------------------------------------------- #
def scale_sweep():
    p = q = SCALE_P
    machine = Machine(n_nodes=1, cores_per_node=24, tile_size=160)
    rows = []
    total_start = time.perf_counter()
    for tree_name in TREES:
        tree = make_tree(tree_name) if tree_name != "auto" else make_tree(
            "auto", n_cores=24
        )
        t0 = time.perf_counter()
        program = get_program("bidiag", p, q, tree)
        compile_seconds = time.perf_counter() - t0
        makespans = {}
        t0 = time.perf_counter()
        for policy in SCALE_POLICIES:
            schedule = SimulationEngine(machine, policy=policy).run(program)
            makespans[policy] = schedule.makespan
        replay_seconds = time.perf_counter() - t0
        rows.append(
            {
                "tree": tree_name,
                "n_ops": len(program),
                "n_edges": program.n_edges,
                "compile_s": compile_seconds,
                "replay_s_all_policies": replay_seconds,
                "best_policy": min(makespans, key=makespans.get),
                "best_makespan_s": min(makespans.values()),
            }
        )
    total = time.perf_counter() - total_start

    # One legacy candidate at this scale, to project what the full
    # tree x policy sweep would cost on the pre-SoA path.
    t0 = time.perf_counter()
    program = legacy_compile(p, q, make_tree("greedy"))
    SimulationEngine(machine, policy="list", fast=False).run(program)
    legacy_candidate = time.perf_counter() - t0
    return rows, total, legacy_candidate


def main() -> int:
    checked = equivalence_audit()
    print(f"equivalence audit: {checked} (config x policy x network) "
          "schedules bit-identical between SoA and legacy paths")

    n_candidates = sum(1 for _ in _candidates())
    rows = []
    results = {}
    for mode in ("legacy-object-path", "soa-fast-path"):
        seconds, makespans = _cold_sweep(mode)
        results[mode] = makespans
        rows.append(
            {
                "mode": mode,
                "seconds": seconds,
                "candidates": n_candidates,
                "ms_per_candidate": 1000.0 * seconds / n_candidates,
            }
        )

    title = (
        f"Cold compile+simulate, m=n={M}, nb={NB}, {n_candidates} candidates"
    )
    print(f"\n{'=' * len(title)}\n{title}\n{'=' * len(title)}")
    print(format_rows(rows))

    # The list-policy candidates must agree bitwise across both paths.
    def list_policy_makespans(mode):
        return [
            makespan
            for makespan, candidate in zip(results[mode], _candidates())
            if candidate[-1] == "list"
        ]

    assert (
        list_policy_makespans("legacy-object-path")
        == list_policy_makespans("soa-fast-path")
    ), "SoA fast path changed list-policy makespans"

    speedup = rows[0]["seconds"] / rows[1]["seconds"]
    print(f"SoA cold compile+simulate speedup vs legacy object path: "
          f"{speedup:.2f}x")

    scale_rows, scale_total, legacy_candidate = scale_sweep()
    n_scale = len(TREES) * len(SCALE_POLICIES)
    title = (
        f"Scale sweep, p=q={SCALE_P}, {len(TREES)} trees x "
        f"{len(SCALE_POLICIES)} policies"
    )
    print(f"\n{'=' * len(title)}\n{title}\n{'=' * len(title)}")
    print(format_rows(scale_rows))
    projected = legacy_candidate * n_scale
    print(f"fast sweep total           : {scale_total:.2f}s "
          f"({n_scale} candidates, cache-shared compiles)")
    print(f"legacy single candidate    : {legacy_candidate:.2f}s "
          f"(projected full sweep ~{projected:.0f}s)")

    trajectory = {
        "problem": {"m": M, "n": N, "nb": NB, "n_cores": 24},
        "sweep": {
            "trees": list(TREES),
            "inner_blocks": list(INNER_BLOCKS),
            "policies": list(POLICIES),
            "candidates": n_candidates,
        },
        "rows": rows,
        "speedup_soa_vs_legacy_cold": speedup,
        "equivalence_checked": checked,
        "scale_sweep": {
            "p": SCALE_P,
            "q": SCALE_P,
            "policies": list(SCALE_POLICIES),
            "rows": scale_rows,
            "total_seconds": scale_total,
            "legacy_candidate_seconds": legacy_candidate,
            "legacy_projected_sweep_seconds": projected,
        },
    }
    with open(ARTIFACT, "w", encoding="utf-8") as fh:
        json.dump(trajectory, fh, indent=2)
    print(f"wrote {ARTIFACT}")

    # Acceptance bar: the SoA pipeline must beat the faithful pre-SoA
    # pipeline by at least 3x on the cold per-candidate sweep.  CI runs on
    # noisy shared runners and lowers the floor via the environment (the
    # equivalence audit above is the hard CI gate; the 3x claim is pinned
    # by the checked-in BENCH_scale.json measured on quiet hardware).
    floor = float(os.environ.get("REPRO_BENCH_SPEEDUP_FLOOR", "3.0"))
    assert speedup >= floor, (
        f"SoA fast path only {speedup:.2f}x faster than the legacy object "
        f"path (floor {floor}x)"
    )
    return 0


if __name__ == "__main__":
    if "--reduced" in sys.argv[1:]:
        os.environ.pop("REPRO_FULL_SCALE", None)
    raise SystemExit(main())
