"""Ablation studies for the design choices called out in DESIGN.md.

* TS/TT kernel efficiency gap — AUTO's reason to exist: force all trees to
  the same kernel efficiency and AUTO's advantage over GREEDY disappears.
* AUTO's gamma parameter — the paper uses gamma = 2; sweep it.
* Distributed top-level tree — flat vs greedy top tree (communication
  volume vs parallelism).
* Tile size nb — the GE2BND / BND2BD trade-off of Section VI-B.
"""

from benchmarks.conftest import print_table
from repro.experiments.figures import format_rows
from repro.runtime.machine import Machine
from repro.runtime.simulator import simulate_ge2bnd, simulate_ge2val
from repro.trees import AutoTree, GreedyTree, HierarchicalTree


def test_ablation_auto_gamma(benchmark):
    machine = Machine(n_nodes=1, cores_per_node=24, tile_size=160)

    def run():
        rows = []
        for gamma in (1.0, 2.0, 4.0, 8.0):
            tree = AutoTree(n_cores=machine.cores_per_node, gamma=gamma)
            sim = simulate_ge2bnd(4000, 4000, machine, tree=tree)
            rows.append({"gamma": gamma, "gflops": sim.gflops})
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print_table("Ablation: AUTO gamma parameter (m=n=4000)", format_rows(rows))
    best = max(r["gflops"] for r in rows)
    paper_choice = next(r["gflops"] for r in rows if r["gamma"] == 2.0)
    # The paper's gamma = 2 is within a few percent of the best setting.
    assert paper_choice >= 0.9 * best


def test_ablation_auto_domain_size(benchmark):
    machine = Machine(n_nodes=1, cores_per_node=24, tile_size=160)

    def run():
        rows = []
        for a in (1, 2, 4, 8, 16):
            tree = AutoTree(fixed_domain_size=a)
            sim = simulate_ge2bnd(4000, 4000, machine, tree=tree)
            rows.append({"domain_size": a, "gflops": sim.gflops})
        adaptive = simulate_ge2bnd(
            4000, 4000, machine, tree=AutoTree(n_cores=machine.cores_per_node)
        )
        rows.append({"domain_size": "adaptive", "gflops": adaptive.gflops})
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print_table("Ablation: FlatTS domain size inside AUTO (m=n=4000)", format_rows(rows))
    adaptive = rows[-1]["gflops"]
    fixed_best = max(r["gflops"] for r in rows[:-1])
    # The adaptive choice is competitive with the best fixed domain size.
    assert adaptive >= 0.85 * fixed_best


def test_ablation_distributed_top_tree(benchmark):
    def run():
        rows = []
        for top in ("flat", "greedy", "fibonacci"):
            machine = Machine(n_nodes=4, cores_per_node=12, tile_size=160)
            tree = HierarchicalTree(local_tree=GreedyTree(), top=top, grid_rows=2)
            sim = simulate_ge2bnd(4000, 4000, machine, tree=tree)
            rows.append(
                {"top_tree": top, "gflops": sim.gflops, "messages": sim.messages}
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print_table("Ablation: distributed top-level tree (4 nodes)", format_rows(rows))
    by_top = {r["top_tree"]: r for r in rows}
    # The flat top tree performs fewer communications than the greedy one
    # (the factor-of-two observation of Section VI-D).
    assert by_top["flat"]["messages"] <= by_top["greedy"]["messages"]


def test_ablation_tile_size(benchmark):
    def run():
        rows = []
        for nb in (80, 160, 320):
            machine = Machine(n_nodes=1, cores_per_node=24, tile_size=nb)
            sim = simulate_ge2val(6000, 6000, machine, tree="auto", algorithm="bidiag")
            rows.append(
                {
                    "nb": nb,
                    "ge2bnd_s": sim.ge2bnd_seconds,
                    "bnd2bd+bd2val_s": sim.post_seconds,
                    "ge2val_gflops": sim.gflops,
                }
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print_table("Ablation: tile size trade-off (GE2BND vs BND2BD)", format_rows(rows))
    # Larger tiles slow the memory-bound second stage down (more band flops)...
    assert rows[-1]["bnd2bd+bd2val_s"] > rows[0]["bnd2bd+bd2val_s"]
    # ...which is why the paper tunes nb rather than maximising it.
    assert rows[1]["ge2val_gflops"] >= 0.8 * max(r["ge2val_gflops"] for r in rows)
