"""Section III-C — operation counts of BIDIAG vs R-BIDIAG.

4 n^2 (m - n/3) vs 2 n^2 (m + n), with the crossover at m = 5n/3, plus a
consistency check of the tiled task graphs: the total Table-I weight of the
traced DAG matches the analytic flop count at the tile level.
"""

from benchmarks.conftest import print_table
from repro.dag.tracer import trace_bidiag
from repro.experiments.figures import format_rows
from repro.models.flops import chan_crossover_m, ge2bd_flops, rbidiag_flops
from repro.trees import FlatTSTree


def test_flop_crossover_table(benchmark):
    n = 2000
    ms = [2000, 3000, int(chan_crossover_m(n)), 4000, 8000, 16000]
    rows = benchmark.pedantic(
        lambda: [
            {
                "m": m,
                "n": n,
                "bidiag_gflop": ge2bd_flops(m, n) / 1e9,
                "rbidiag_gflop": rbidiag_flops(m, n) / 1e9,
                "winner": "rbidiag" if rbidiag_flops(m, n) < ge2bd_flops(m, n) else "bidiag",
            }
            for m in ms
        ],
        rounds=1,
        iterations=1,
    )
    print_table("Section III-C: flop counts and Chan crossover", format_rows(rows))
    assert rows[0]["winner"] == "bidiag"
    assert rows[-1]["winner"] == "rbidiag"
    # The switch happens at m = 5n/3.
    for r in rows:
        expected = "rbidiag" if r["m"] > chan_crossover_m(n) else "bidiag"
        if abs(r["m"] - chan_crossover_m(n)) > 1:
            assert r["winner"] == expected


def test_dag_weight_matches_flop_count(benchmark):
    """The traced BIDIAG DAG performs ~4n^2(m - n/3) flops (at tile granularity)."""
    p, q, nb = 12, 8, 100
    graph = benchmark.pedantic(
        lambda: trace_bidiag(p, q, FlatTSTree()), rounds=1, iterations=1
    )
    m, n = p * nb, q * nb
    dag_flops = graph.total_flops(nb)
    analytic = ge2bd_flops(m, n)
    # Tile-granularity overhead (panel factors, triangle padding) keeps the
    # DAG within a modest factor of the element-wise count.
    assert 0.8 * analytic < dag_flops < 2.5 * analytic
