"""Engine replay cost: cold per-candidate tracing vs cached Program replay.

Runs a tuning-style sweep — every (tree, inner-block, policy) candidate of
one GE2BND problem, scored by simulated makespan — three ways:

* ``legacy-frontend`` — the backward-compatible surface as it exists
  today: trace a fresh ``TaskGraph`` per candidate and hand it to the
  :class:`ListScheduler` front-end.  Note this includes the
  Program→TaskGraph→Program conversions the compatibility shell performs,
  so it measures the current legacy *API* cost, not the pre-IR
  implementation;
* ``cold-trace``     — compile a fresh :class:`Program` per candidate
  (cache bypassed) and replay it on the :class:`SimulationEngine`;
* ``cached-replay``  — resolve each candidate through the shared
  :class:`ProgramCache`, so each DAG shape is traced once and replayed for
  every candidate that shares it.

Writes the measured trajectory to ``BENCH_engine.json`` at the repo root
and asserts the acceptance bar: cached replay beats cold per-candidate
tracing by at least 2x.  Scaled-down by default (CI smoke-runs it in this
reduced mode: ``python benchmarks/bench_engine.py``); set
``REPRO_FULL_SCALE=1`` for the paper's problem sizes.
"""

from __future__ import annotations

import json
import os
import sys
import time

_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
_SRC = os.path.join(_ROOT, "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)

from repro.experiments.figures import format_rows, full_scale  # noqa: E402
from repro.ir import ProgramCache, compile_program, get_program  # noqa: E402
from repro.runtime.engine import SimulationEngine  # noqa: E402
from repro.runtime.machine import Machine  # noqa: E402
from repro.runtime.scheduler import ListScheduler  # noqa: E402
from repro.tiles.layout import ceil_div  # noqa: E402
from repro.trees import make_tree  # noqa: E402

ARTIFACT = os.path.join(_ROOT, "BENCH_engine.json")

#: One miriel node; the candidate axes of a Section-VI-B-style sweep.
M = N = 20000 if full_scale() else 1600
NB = 160 if full_scale() else 100
TREES = ("flatts", "flattt", "greedy", "auto")
INNER_BLOCKS = (32, 40)
POLICIES = ("list", "critical-path", "locality", "random")


def _candidates():
    p = q = ceil_div(M, NB)
    for tree_name in TREES:
        tree = make_tree(tree_name) if tree_name != "auto" else make_tree(
            "auto", n_cores=24
        )
        for ib in INNER_BLOCKS:
            machine = Machine(
                n_nodes=1, cores_per_node=24, tile_size=NB, inner_block=ib
            )
            for policy in POLICIES:
                yield tree_name, tree, p, q, machine, policy


def _sweep(mode: str, cache: ProgramCache | None):
    """Score every candidate; returns (seconds, makespans, shapes_traced)."""
    makespans = []
    traced = 0
    start = time.perf_counter()
    for _name, tree, p, q, machine, policy in _candidates():
        if mode == "legacy-frontend":
            # What a pre-IR call site pays today: the tracing front-end
            # (compile + TaskGraph materialization) plus ListScheduler,
            # which re-wraps the graph for the engine.
            graph = compile_program("bidiag", p, q, tree).to_task_graph()
            schedule = ListScheduler(machine).run(graph)
            traced += 1
        elif mode == "cold-trace":
            program = compile_program("bidiag", p, q, tree)
            schedule = SimulationEngine(machine, policy=policy).run(program)
            traced += 1
        else:  # cached-replay
            before = cache.stats["misses"]
            program = get_program("bidiag", p, q, tree, cache=cache)
            traced += cache.stats["misses"] - before
            schedule = SimulationEngine(machine, policy=policy).run(program)
        makespans.append(schedule.makespan)
    return time.perf_counter() - start, makespans, traced


def main() -> int:
    n_candidates = sum(1 for _ in _candidates())
    rows = []
    results = {}
    for mode in ("legacy-frontend", "cold-trace", "cached-replay"):
        cache = ProgramCache() if mode == "cached-replay" else None
        seconds, makespans, traced = _sweep(mode, cache)
        results[mode] = (seconds, makespans)
        rows.append(
            {
                "mode": mode,
                "seconds": seconds,
                "candidates": n_candidates,
                "dags_traced": traced,
            }
        )

    title = f"Engine sweep cost, m=n={M}, nb={NB}, {n_candidates} candidates"
    print(f"\n{'=' * len(title)}\n{title}\n{'=' * len(title)}")
    print(format_rows(rows))

    # The list-policy candidates agree across all three paths (the cached
    # program is the same DAG the legacy tracer built).
    def list_policy_makespans(mode):
        return [
            makespan
            for makespan, candidate in zip(results[mode][1], _candidates())
            if candidate[-1] == "list"
        ]

    assert (
        list_policy_makespans("legacy-frontend")
        == list_policy_makespans("cold-trace")
        == list_policy_makespans("cached-replay")
    ), "cached replay changed list-policy makespans"

    speedup_vs_cold = results["cold-trace"][0] / results["cached-replay"][0]
    speedup_vs_legacy = results["legacy-frontend"][0] / results["cached-replay"][0]
    print(f"cached-replay speedup vs cold-trace      : {speedup_vs_cold:.2f}x")
    print(f"cached-replay speedup vs legacy-frontend : {speedup_vs_legacy:.2f}x")

    trajectory = {
        "problem": {"m": M, "n": N, "nb": NB, "n_cores": 24},
        "sweep": {
            "trees": list(TREES),
            "inner_blocks": list(INNER_BLOCKS),
            "policies": list(POLICIES),
            "candidates": n_candidates,
        },
        "rows": rows,
        "speedup_cached_vs_cold": speedup_vs_cold,
        "speedup_cached_vs_legacy_frontend": speedup_vs_legacy,
    }
    with open(ARTIFACT, "w", encoding="utf-8") as fh:
        json.dump(trajectory, fh, indent=2)
    print(f"wrote {ARTIFACT}")

    # Acceptance bar: replaying a cached Program must beat re-tracing the
    # DAG for every candidate by at least 2x on this tuning-style sweep.
    assert speedup_vs_cold >= 2.0, (
        f"cached replay only {speedup_vs_cold:.2f}x faster than cold tracing"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
