"""Network-model fidelity: uniform vs alpha-beta on distributed square runs.

Section VI-D of the paper explains the distributed tree ranking through
communication: the greedy top-level reduction tree roughly doubles the
per-panel message count of the flat top tree on square cases, which is why
flat can win despite exposing less parallelism.  This benchmark sweeps the
flat and greedy top trees over both network models and checks, per row:

* **engine == analysis**: the engine's message count and per-node sent
  counts match :func:`repro.analysis.communication.communication_volume`
  exactly (both deduplicate per producer and destination node);
* **model-invariant counts**: ``uniform`` and ``alpha-beta`` replays of
  the same program count exactly the same messages — only the time per
  message differs;
* **uniform is the legacy engine**: makespans under ``network="uniform"``
  are bit-identical to an engine constructed without any network argument;
* **the paper's factor of two**: per panel, the greedy top tree's
  closed-form message count is exactly ``2 (R - 1)`` vs the flat tree's
  ``R - 1`` (:func:`~repro.analysis.communication.panel_messages_estimate`).
  The full-DAG deduplicated counts are more conservative (remote tiles are
  cached, and the trailing-update traffic is shared by both trees), so for
  those we assert the strict ordering and report the measured ratio;
* **fidelity costs time**: alpha-beta makespans are >= uniform makespans
  on multi-node runs here (per-message injection + latency accumulate,
  where uniform charges one flat transfer per edge).

Writes the measured trajectory to ``BENCH_network.json`` at the repo root.
Scaled-down by default (CI smoke-runs it in this reduced mode:
``python benchmarks/bench_network.py``); set ``REPRO_FULL_SCALE=1`` for
paper-scale problem sizes.
"""

from __future__ import annotations

import json
import os
import sys

_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
_SRC = os.path.join(_ROOT, "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)

from repro.analysis.communication import (  # noqa: E402
    engine_communication_check,
    panel_messages_estimate,
)
from repro.experiments.figures import format_rows, full_scale  # noqa: E402
from repro.ir import get_program  # noqa: E402
from repro.runtime.engine import SimulationEngine  # noqa: E402
from repro.runtime.machine import Machine  # noqa: E402
from repro.tiles.distribution import BlockCyclicDistribution, ProcessGrid  # noqa: E402
from repro.tiles.layout import ceil_div  # noqa: E402
from repro.trees import GreedyTree, HierarchicalTree  # noqa: E402

ARTIFACT = os.path.join(_ROOT, "BENCH_network.json")

#: Square problem on a square-ish process grid (the paper's VI-D setup).
M = N = 20000 if full_scale() else 4000
NB = 160 if full_scale() else 250
CORES = 24 if full_scale() else 8
NODE_COUNTS = (4, 9, 16, 25) if full_scale() else (4, 16)
TOPS = ("flat", "greedy")
NETWORKS = ("uniform", "alpha-beta")


def _run_case(n_nodes: int):
    p = q = ceil_div(M, NB)
    grid = ProcessGrid.for_square_matrix(n_nodes)
    distribution = BlockCyclicDistribution(grid)
    machine = Machine(n_nodes=n_nodes, cores_per_node=CORES, tile_size=NB)
    rows = []
    messages = {}
    makespans = {}
    for top in TOPS:
        # Same local tree for both cases, so the rows isolate the top tree.
        tree = HierarchicalTree(
            local_tree=GreedyTree(), top=top, grid_rows=grid.rows
        )
        program = get_program("bidiag", p, q, tree, grid_rows=grid.rows)
        for network in NETWORKS:
            engine = SimulationEngine(machine, distribution, network=network)
            schedule = engine.run(program)
            # Engine accounting must match the static analysis exactly.
            engine_communication_check(
                schedule, program, distribution, tile_size=NB
            )
            messages[(top, network)] = schedule.messages
            makespans[(top, network)] = schedule.makespan
            rows.append(
                {
                    "nodes": n_nodes,
                    "grid": f"{grid.rows}x{grid.cols}",
                    "top_tree": top,
                    "network": network,
                    "messages": schedule.messages,
                    "makespan_ms": schedule.makespan * 1e3,
                    "comm_ms": schedule.comm_seconds * 1e3,
                }
            )
        # uniform must be the legacy engine, bit for bit.
        legacy = SimulationEngine(machine, distribution).run(program)
        assert makespans[(top, "uniform")] == legacy.makespan
        assert messages[(top, "uniform")] == legacy.messages

    for top in TOPS:
        assert messages[(top, "uniform")] == messages[(top, "alpha-beta")], (
            "network models disagree on message counts"
        )
        assert makespans[(top, "alpha-beta")] >= makespans[(top, "uniform")], (
            "alpha-beta fidelity should not make this distributed case faster"
        )

    measured_ratio = messages[("greedy", "uniform")] / messages[("flat", "uniform")]
    # The paper's factor of two, exact at the per-panel closed-form level.
    per_panel_flat = panel_messages_estimate(grid.rows, "flat")
    per_panel_greedy = panel_messages_estimate(grid.rows, "greedy")
    if grid.rows > 1:
        assert per_panel_greedy == 2 * per_panel_flat
    if grid.rows >= 4:
        # Below 4 grid rows the flat and greedy top trees emit the same
        # elimination set; from 4 rows on the full-DAG dedup counts order
        # strictly (more conservatively than the per-panel factor of two).
        assert measured_ratio > 1.0
    return rows, {
        "nodes": n_nodes,
        "grid_rows": grid.rows,
        "per_panel_flat": per_panel_flat,
        "per_panel_greedy": per_panel_greedy,
        "per_panel_ratio": (
            per_panel_greedy / per_panel_flat if per_panel_flat else None
        ),
        "measured_dag_ratio": measured_ratio,
        "alpha_beta_slowdown_flat": (
            makespans[("flat", "alpha-beta")] / makespans[("flat", "uniform")]
        ),
        "alpha_beta_slowdown_greedy": (
            makespans[("greedy", "alpha-beta")] / makespans[("greedy", "uniform")]
        ),
    }


def main() -> int:
    all_rows = []
    ratios = []
    for n_nodes in NODE_COUNTS:
        rows, ratio = _run_case(n_nodes)
        all_rows.extend(rows)
        ratios.append(ratio)

    title = f"Network models, m=n={M}, nb={NB}, flat vs greedy top tree"
    print(f"\n{'=' * len(title)}\n{title}\n{'=' * len(title)}")
    print(format_rows(all_rows))
    print()
    print(format_rows(ratios))

    trajectory = {
        "problem": {"m": M, "n": N, "nb": NB, "cores_per_node": CORES},
        "node_counts": list(NODE_COUNTS),
        "rows": all_rows,
        "ratios": ratios,
    }
    with open(ARTIFACT, "w", encoding="utf-8") as fh:
        json.dump(trajectory, fh, indent=2)
    print(f"wrote {ARTIFACT}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
