"""Additional ablations: kernel-efficiency gap and scheduler policy.

* **TS/TT kernel efficiency gap** — the AUTO tree exists because TS updates
  run near GEMM speed while TT updates do not.  Erasing that gap (all
  kernels equally efficient) removes most of AUTO's advantage over GREEDY,
  confirming the paper's motivation for the adaptive tree.
* **Scheduler priority policy** — PaRSEC schedules ready tasks by a
  priority function; replacing the bottom-level priority with FIFO or
  weight-only ordering shows how much the DAG ordering (rather than raw
  parallelism) contributes to the simulated rates.
"""

import pytest

from benchmarks.conftest import print_table
from repro.dag.tracer import trace_bidiag
from repro.experiments.figures import format_rows
from repro.kernels import costs
from repro.runtime.machine import Machine
from repro.runtime.scheduler import ListScheduler
from repro.runtime.simulator import simulate_ge2bnd
from repro.trees import AutoTree, GreedyTree


def test_ablation_kernel_efficiency_gap(benchmark, monkeypatch):
    machine = Machine(n_nodes=1, cores_per_node=24, tile_size=160)

    def run():
        rows = []
        for label, efficiencies in (
            ("paper (TS fast, TT slow)", None),
            ("uniform kernel efficiency", {k: 0.85 for k in costs.KernelName}),
        ):
            if efficiencies is not None:
                monkeypatch.setattr(costs, "KERNEL_EFFICIENCY", efficiencies)
            auto = simulate_ge2bnd(
                6000, 6000, machine, tree=AutoTree(n_cores=24), algorithm="bidiag"
            )
            greedy = simulate_ge2bnd(6000, 6000, machine, tree="greedy", algorithm="bidiag")
            rows.append(
                {
                    "scenario": label,
                    "auto_gflops": auto.gflops,
                    "greedy_gflops": greedy.gflops,
                    "auto_advantage": auto.gflops / greedy.gflops,
                }
            )
            monkeypatch.undo()
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print_table("Ablation: TS/TT kernel-efficiency gap (m=n=6000)", format_rows(rows))
    paper, uniform = rows[0], rows[1]
    # With the real gap AUTO clearly beats GREEDY; with a uniform efficiency
    # most of that advantage disappears.
    assert paper["auto_advantage"] > 1.05
    assert uniform["auto_advantage"] < paper["auto_advantage"]
    assert uniform["auto_advantage"] == pytest.approx(1.0, abs=0.15)


def test_ablation_scheduler_policy(benchmark):
    machine = Machine(n_nodes=1, cores_per_node=16, tile_size=160)
    graph = trace_bidiag(24, 24, GreedyTree())

    def run():
        rows = []
        for policy in ("bottom-level", "fifo", "weight"):
            schedule = ListScheduler(machine, priority=policy).run(graph)
            rows.append({"policy": policy, "makespan_ms": schedule.makespan * 1e3})
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print_table("Ablation: scheduler priority policy (24x24 tiles, 16 cores)", format_rows(rows))
    by_policy = {r["policy"]: r["makespan_ms"] for r in rows}
    # The bottom-level (critical-path aware) priority is the best of the three
    # (or tied within 5%).
    best = min(by_policy.values())
    assert by_policy["bottom-level"] <= best * 1.05
