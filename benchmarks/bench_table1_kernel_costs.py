"""Table I — tile kernel costs (units of nb^3/3 flops).

Regenerates the kernel cost table and benchmarks the numeric kernels
themselves, confirming that the measured flop ratios follow Table I
(a TSMQR does roughly 3x the work of a GEQRT, etc.).
"""

import numpy as np
import pytest

from benchmarks.conftest import print_table
from repro.experiments.figures import format_rows, table1_kernel_costs
from repro.kernels.qr_kernels import geqrt, tsmqr, tsqrt, ttqrt

NB = 64
RNG = np.random.default_rng(0)


def test_table1_matches_paper(benchmark):
    rows = benchmark.pedantic(table1_kernel_costs, rounds=1, iterations=1)
    print_table("Table I: kernel costs (nb^3/3 units)", format_rows(rows))
    costs = {r["panel"]: (r["panel_cost"], r["update_cost"]) for r in rows}
    assert costs == {"GEQRT": (4, 6), "TSQRT": (6, 12), "TTQRT": (2, 6)}


@pytest.fixture(scope="module")
def tiles():
    a = RNG.standard_normal((NB, NB))
    r = np.triu(RNG.standard_normal((NB, NB)))
    b = RNG.standard_normal((NB, NB))
    return a, r, b


def bench_geqrt(benchmark, tiles):
    a, _, _ = tiles
    benchmark(geqrt, a)


def bench_tsqrt(benchmark, tiles):
    _, r, b = tiles
    benchmark(tsqrt, r, b)


def bench_ttqrt(benchmark, tiles):
    _, r, b = tiles
    benchmark(ttqrt, r, np.triu(b))


def bench_tsmqr(benchmark, tiles):
    a, r, b = tiles
    _, _, refl = tsqrt(r, b)
    benchmark(tsmqr, refl, a, b)


# pytest-benchmark discovers test_* functions; expose the bench_ helpers.
test_bench_geqrt = bench_geqrt
test_bench_tsqrt = bench_tsqrt
test_bench_ttqrt = bench_ttqrt
test_bench_tsmqr = bench_tsmqr
