"""Campaign-runner throughput and recovery overhead.

The PR-10 bench shape: one parameter sweep executed three ways, written
to ``BENCH_campaign.json``:

1. ``sequential``     — plain in-process ``execute()`` over the expanded
   candidates: the ground truth rows and the baseline candidate rate;
2. ``campaign-clean`` — the fault-tolerant campaign runner (process-pool
   fan-out, sqlite result store, retry/timeout machinery armed but
   idle): what the robustness layer costs when nothing goes wrong;
3. ``campaign-faulty`` — the same campaign under injected faults
   (worker crashes, hangs and retriable errors on the first attempts):
   what surviving real failures costs — pool respawns, timeout kills,
   backoff retries included.

Hard gates (assertions, not just printed numbers):

* both campaigns **complete** — every candidate lands ``done`` despite
  the injected crash/hang/raise schedule (``limit < max_attempts`` makes
  convergence deterministic);
* both campaign stores are **bitwise equal** to the sequential
  reference rows, candidate by candidate;
* the faulty run's wall-clock overhead over the clean run stays under a
  generous ceiling (``REPRO_BENCH_CAMPAIGN_OVERHEAD``, default 20x —
  the injected hangs alone account for several x; the point is bounded,
  not free).

Scaled-down by default (CI smoke-runs it in this reduced mode, also
reachable as ``python benchmarks/bench_campaign.py --reduced``); set
``REPRO_FULL_SCALE=1`` for a >= 1000-candidate campaign.
"""

from __future__ import annotations

import json
import os
import sys
import tempfile
import time

_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
_SRC = os.path.join(_ROOT, "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)

from repro.api.execute import execute  # noqa: E402
from repro.campaign import (  # noqa: E402
    CampaignRunner,
    CampaignSpec,
    ResultStore,
    parse_faults,
)
from repro.experiments.figures import format_rows, full_scale  # noqa: E402

ARTIFACT = os.path.join(_ROOT, "BENCH_campaign.json")

#: Injected fault schedule: ~15% of first and second attempts misbehave
#: (split across hard crashes, 0.2s hangs and retriable raises); third
#: attempts onward are clean, so every candidate converges within the
#: max_attempts=4 budget.  Crashes are the rarest fault because each one
#: costs a full pool respawn (~100ms) — far more than a candidate —
#: which would otherwise drown the throughput numbers.
FAULTS = "crash:0.03,hang:0.05:0.2,raise:0.07,seed:2,limit:2"


def build_spec(n_seeds: int) -> CampaignSpec:
    return CampaignSpec(
        name="bench-campaign",
        base={"m": 256, "n": 192, "tile_size": 64, "n_cores": 2},
        axes={
            "tree": ["flatts", "greedy"],
            "policy": ["list", "fifo"],
            "seed": list(range(1, n_seeds + 1)),
        },
        backend="simulate",
        workers=4,
        max_attempts=4,
        timeout_seconds=30.0,
        backoff_seconds=0.01,
    )


def row_key(row) -> str:
    return json.dumps(row, sort_keys=True, default=str)


def check_store_matches(store_path, reference, label: str) -> None:
    store = ResultStore(store_path)
    records = store.records("done")
    store.close()
    got = {rec.candidate_id: row_key(rec.row) for rec in records}
    assert set(got) == set(reference), (
        f"{label}: store holds {len(got)} rows, reference {len(reference)} "
        "(lost or duplicated candidates)"
    )
    mismatches = [cid for cid, ref in reference.items() if got[cid] != ref]
    assert not mismatches, (
        f"{label}: {len(mismatches)} rows differ from the sequential "
        f"reference (first: {mismatches[0]})"
    )
    print(f"equality audit [{label}]: {len(got)} rows bitwise equal to the "
          "sequential reference")


def run_one_campaign(spec, store_path, faults):
    runner = CampaignRunner(
        spec, store_path, faults=faults, install_signal_handlers=False
    )
    t0 = time.perf_counter()
    report = runner.run()
    seconds = time.perf_counter() - t0
    runner.store.close()
    assert report.complete, (
        f"campaign did not complete:\n{report.summary()}"
    )
    return report, seconds


def main() -> int:
    n_seeds = 256 if full_scale() else 8
    spec = build_spec(n_seeds)
    candidates = spec.expand()
    n = len(candidates)
    print(f"campaign: {n} candidates "
          f"({'full' if full_scale() else 'reduced'} scale)")
    if full_scale():
        assert n >= 1000, f"full-scale campaign must be >= 1000 candidates, got {n}"

    # 1. Sequential ground truth (also the bitwise reference).
    t0 = time.perf_counter()
    reference = {
        cand.candidate_id: row_key(execute(cand.plan, backend="simulate").to_row())
        for cand in candidates
    }
    seq_seconds = time.perf_counter() - t0

    with tempfile.TemporaryDirectory(prefix="bench-campaign-") as tmp:
        # 2. Clean campaign: robustness machinery armed, nothing failing.
        clean_store = os.path.join(tmp, "clean.sqlite")
        clean_report, clean_seconds = run_one_campaign(spec, clean_store, None)
        check_store_matches(clean_store, reference, "campaign-clean")

        # 3. Faulty campaign: injected crashes, hangs and raises.
        faults = parse_faults(FAULTS)
        faulty_store = os.path.join(tmp, "faulty.sqlite")
        faulty_report, faulty_seconds = run_one_campaign(
            spec, faulty_store, faults
        )
        check_store_matches(faulty_store, reference, "campaign-faulty")

    rows = [
        {
            "mode": mode,
            "seconds": round(seconds, 4),
            "candidates": n,
            "cand_per_sec": round(n / seconds, 2),
            "retries": retries,
            "respawns": respawns,
            "timeouts": timeouts,
        }
        for mode, seconds, retries, respawns, timeouts in (
            ("sequential", seq_seconds, 0, 0, 0),
            ("campaign-clean", clean_seconds, clean_report.retries,
             clean_report.respawns, clean_report.timeouts),
            ("campaign-faulty", faulty_seconds, faulty_report.retries,
             faulty_report.respawns, faulty_report.timeouts),
        )
    ]
    title = f"Campaign runner, {n} candidates, workers={spec.workers}"
    print(f"\n{'=' * len(title)}\n{title}\n{'=' * len(title)}")
    print(format_rows(rows))

    overhead = faulty_seconds / clean_seconds
    print(f"\nfault-recovery overhead (faulty vs clean wall-clock): "
          f"{overhead:.2f}x")
    print(f"faulty run survived: {faulty_report.retries} retries, "
          f"{faulty_report.respawns} pool respawns, "
          f"{faulty_report.timeouts} timeouts, "
          f"{faulty_report.quarantined} quarantined")

    trajectory = {
        "spec": spec.to_dict(),
        "faults": FAULTS,
        "candidates": n,
        "rows": rows,
        "recovery_overhead_x": round(overhead, 3),
        "clean": clean_report.to_dict(),
        "faulty": faulty_report.to_dict(),
        "equality_checked": n,
    }
    with open(ARTIFACT, "w", encoding="utf-8") as fh:
        json.dump(trajectory, fh, indent=2)
    print(f"wrote {ARTIFACT}")

    # Acceptance bar: recovery is bounded.  CI runs on noisy shared
    # runners and can loosen the ceiling via the environment; the
    # completion and bitwise-equality audits above are the hard gates.
    ceiling = float(os.environ.get("REPRO_BENCH_CAMPAIGN_OVERHEAD", "20.0"))
    assert overhead <= ceiling, (
        f"fault-recovery overhead {overhead:.2f}x exceeds the "
        f"{ceiling}x ceiling"
    )
    return 0


if __name__ == "__main__":
    if "--reduced" in sys.argv[1:]:
        os.environ.pop("REPRO_FULL_SCALE", None)
    raise SystemExit(main())
