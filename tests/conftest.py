"""Shared fixtures for the test suite."""

from __future__ import annotations

import os
import sys

import numpy as np
import pytest

# Make the package importable even without an installed distribution
# (the environment installs it via a .pth file; this is a belt-and-braces
# fallback so `pytest` works from a fresh checkout too).
_SRC = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)


@pytest.fixture
def rng() -> np.random.Generator:
    """Deterministic random generator shared by the numeric tests."""
    return np.random.default_rng(1234)


@pytest.fixture(autouse=True)
def _isolate_plan_cache(tmp_path, monkeypatch):
    """Point the autotuner's persistent plan cache at a per-test temp file.

    Keeps the suite from reading or writing ``~/.cache/repro`` — tuning
    tests must be hermetic, and no other test should inherit a stale tuned
    plan.
    """
    monkeypatch.setenv("REPRO_TUNE_CACHE", str(tmp_path / "plan_cache.json"))
