"""Shared fixtures for the test suite."""

from __future__ import annotations

import os
import sys

import numpy as np
import pytest

# Make the package importable even without an installed distribution
# (the environment installs it via a .pth file; this is a belt-and-braces
# fallback so `pytest` works from a fresh checkout too).
_SRC = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)


@pytest.fixture
def rng() -> np.random.Generator:
    """Deterministic random generator shared by the numeric tests."""
    return np.random.default_rng(1234)
