"""Tests for the compiled op-stream Program IR (repro.ir).

Covers the dependency analyzer, the Program/CSR structure, the compiler
and its shared in-process cache, replay onto the numeric executor, and the
1x1 / empty-post-stage edge cases the legacy path handles.
"""

import subprocess
import sys

import numpy as np
import pytest

from repro.algorithms.bidiag import bidiag_ge2bnd
from repro.algorithms.executor import NumericExecutor
from repro.algorithms.rbidiag import rbidiag_ge2bnd
from repro.dag.critical_path import critical_path_length
from repro.dag.tracer import TraceExecutor, trace_bidiag, trace_qr, trace_rbidiag
from repro.ir import (
    DependencyAnalyzer,
    Program,
    ProgramCache,
    ProgramRecorder,
    clear_program_cache,
    compile_program,
    get_program,
    program_cache_stats,
    program_key,
    replay,
    tree_fingerprint,
)
from repro.kernels.costs import KernelName
from repro.tiles.matrix import TiledMatrix
from repro.trees import AutoTree, FlatTSTree, GreedyTree


@pytest.fixture(autouse=True)
def _fresh_program_cache():
    """Each test starts from an empty process-wide program cache."""
    clear_program_cache()
    yield
    clear_program_cache()


class TestDependencyAnalyzer:
    def test_raw_dependency(self):
        a = DependencyAnalyzer()
        assert a.add(frozenset(), frozenset({("U", 0, 0)})) == []
        assert a.add(frozenset({("U", 0, 0)}), frozenset()) == [0]

    def test_war_dependency(self):
        a = DependencyAnalyzer()
        a.add(frozenset(), frozenset({("U", 0, 0)}))     # 0 writes
        a.add(frozenset({("U", 0, 0)}), frozenset())     # 1 reads
        # 2 rewrites: depends on the writer (RAW chain) and the reader (WAR).
        assert a.add(frozenset(), frozenset({("U", 0, 0)})) == [0, 1]

    def test_write_resets_reader_set(self):
        a = DependencyAnalyzer()
        a.add(frozenset(), frozenset({("U", 0, 0)}))     # 0
        a.add(frozenset(), frozenset({("U", 0, 0)}))     # 1 (overwrites)
        # 2 only sees the most recent writer.
        assert a.add(frozenset({("U", 0, 0)}), frozenset()) == [1]

    def test_no_duplicate_or_self_edges(self):
        a = DependencyAnalyzer()
        a.add(frozenset(), frozenset({("U", 0, 0), ("L", 0, 0)}))
        preds = a.add(
            frozenset({("U", 0, 0)}), frozenset({("L", 0, 0), ("U", 0, 1)})
        )
        assert preds == [0]


class TestProgramStructure:
    def test_csr_is_consistent(self):
        program = compile_program("bidiag", 5, 4, GreedyTree())
        n = len(program)
        edges_via_preds = {(s, d) for d in range(n) for s in program.predecessors(d)}
        edges_via_succs = {(s, d) for s in range(n) for d in program.successors(s)}
        assert edges_via_preds == edges_via_succs
        assert len(edges_via_preds) == program.n_edges
        for dst in range(n):
            preds = list(program.predecessors(dst))
            assert preds == sorted(preds)
            assert all(0 <= s < dst for s in preds)

    def test_matches_legacy_task_graph(self):
        for alg, tracer in (
            ("qr", trace_qr),
            ("bidiag", trace_bidiag),
            ("rbidiag", trace_rbidiag),
        ):
            program = compile_program(alg, 6, 4, GreedyTree())
            graph = tracer(6, 4, GreedyTree())
            assert len(program) == len(graph)
            assert program.n_edges == graph.n_edges
            assert [op.kernel for op in program.ops] == [t.kernel for t in graph.tasks]
            assert [op.params for op in program.ops] == [t.params for t in graph.tasks]
            got = set(program.edges())
            want = {(s, d) for d, ss in graph.predecessors.items() for s in ss}
            assert got == want

    def test_to_task_graph_round_trip(self):
        program = compile_program("bidiag", 4, 4, FlatTSTree())
        graph = program.to_task_graph()
        back = Program.from_task_graph(graph)
        assert len(back) == len(program)
        assert set(back.edges()) == set(program.edges())
        assert back.total_weight() == program.total_weight()

    def test_to_task_graph_gives_fresh_graphs(self):
        program = compile_program("qr", 3, 2, GreedyTree())
        g1, g2 = program.to_task_graph(), program.to_task_graph()
        assert g1 is not g2
        g1.add_edge(0, len(g1) - 1)  # mutate one copy
        assert g2.n_edges == program.n_edges

    def test_aggregates_match_task_graph(self):
        program = compile_program("bidiag", 5, 5, FlatTSTree())
        graph = program.to_task_graph()
        assert program.total_weight() == graph.total_weight()
        assert program.kernel_counts() == graph.kernel_counts()
        assert program.critical_path() == critical_path_length(graph)

    def test_sources_and_indegrees(self):
        program = compile_program("bidiag", 4, 3, GreedyTree())
        indeg = program.indegrees()
        assert sum(indeg) == program.n_edges
        assert program.sources() == [i for i, d in enumerate(indeg) if d == 0]
        # Exactly the first-panel GEQRTs are sources.
        assert all(program.ops[i].kernel == KernelName.GEQRT for i in program.sources())

    def test_rejects_backward_edges(self):
        ops = compile_program("qr", 2, 1, GreedyTree()).ops
        with pytest.raises(ValueError):
            Program(ops, [[1]] + [[] for _ in range(len(ops) - 1)])


class TestRecorder:
    def test_trace_executor_is_a_recorder(self):
        tracer = TraceExecutor(4, 3)
        assert isinstance(tracer, ProgramRecorder)
        bidiag_ge2bnd(tracer, GreedyTree())
        assert len(tracer.graph) == len(tracer.ops)
        assert tracer.graph.n_edges == tracer.program().n_edges

    def test_invalid_shape(self):
        with pytest.raises(ValueError):
            ProgramRecorder(1, 0)


class TestProgramCache:
    def test_hit_returns_same_object(self):
        p1 = get_program("bidiag", 4, 4, GreedyTree())
        p2 = get_program("bidiag", 4, 4, GreedyTree())
        assert p1 is p2
        stats = program_cache_stats()
        assert stats["hits"] == 1 and stats["misses"] == 1

    def test_key_distinguishes_configurations(self):
        k1 = program_key("bidiag", 4, 4, AutoTree(n_cores=4))
        k2 = program_key("bidiag", 4, 4, AutoTree(n_cores=24))
        k3 = program_key("bidiag", 4, 4, GreedyTree())
        assert len({k1, k2, k3}) == 3
        assert program_key("bidiag", 4, 4, GreedyTree(), n_cores=2) != k3

    def test_tree_fingerprint(self):
        assert tree_fingerprint(None) == "none"
        assert tree_fingerprint(GreedyTree()) == tree_fingerprint(GreedyTree())
        assert tree_fingerprint(AutoTree(n_cores=2)) != tree_fingerprint(
            AutoTree(n_cores=3)
        )

    def test_tree_fingerprint_sees_attributes_without_custom_repr(self):
        # A parameterized subclass relying on the base ReductionTree repr
        # ("ClassName()") must still fingerprint per configuration.
        class ShiftedGreedy(GreedyTree):
            def __init__(self, shift):
                self.shift = shift

        assert tree_fingerprint(ShiftedGreedy(1)) != tree_fingerprint(ShiftedGreedy(2))
        assert tree_fingerprint(ShiftedGreedy(1)) == tree_fingerprint(ShiftedGreedy(1))

    def test_tree_fingerprint_recurses_into_nested_trees(self):
        from repro.trees import HierarchicalTree

        h1 = HierarchicalTree(local_tree=AutoTree(n_cores=2), top="greedy", grid_rows=2)
        h2 = HierarchicalTree(local_tree=AutoTree(n_cores=8), top="greedy", grid_rows=2)
        assert tree_fingerprint(h1) != tree_fingerprint(h2)

    def test_cache_false_bypasses(self):
        p1 = get_program("bidiag", 4, 4, GreedyTree(), cache=False)
        p2 = get_program("bidiag", 4, 4, GreedyTree(), cache=False)
        assert p1 is not p2
        assert program_cache_stats()["entries"] == 0

    def test_explicit_cache_and_eviction(self):
        cache = ProgramCache(maxsize=1)
        a = cache.get_or_compile("qr", 2, 2, GreedyTree())
        cache.get_or_compile("qr", 3, 2, GreedyTree())  # evicts the 2x2 entry
        assert len(cache) == 1
        b = cache.get_or_compile("qr", 2, 2, GreedyTree())
        assert a is not b  # recompiled after eviction
        with pytest.raises(ValueError):
            ProgramCache(maxsize=0)

    def test_clear(self):
        get_program("qr", 3, 3, GreedyTree())
        assert clear_program_cache() == 1
        assert program_cache_stats() == {
            "hits": 0, "misses": 0, "entries": 0, "total_ops": 0,
        }

    def test_total_ops_budget_evicts_lru(self):
        cache = ProgramCache(maxsize=10, max_ops=1)  # any 2nd entry overflows
        a = cache.get_or_compile("bidiag", 4, 4, GreedyTree())
        assert cache.stats["total_ops"] == len(a)
        b = cache.get_or_compile("bidiag", 5, 4, GreedyTree())
        # The older program was evicted, the newest is always kept.
        assert len(cache) == 1
        assert cache.stats["total_ops"] == len(b)
        assert cache.get_or_compile("bidiag", 5, 4, GreedyTree()) is b
        with pytest.raises(ValueError):
            ProgramCache(max_ops=0)

    def test_unknown_algorithm(self):
        with pytest.raises(ValueError):
            compile_program("cholesky", 4, 4, GreedyTree())


class TestReplay:
    def _factor_both_ways(self, rng, variant, shape, nb, tree):
        a = rng.standard_normal(shape)
        direct = TiledMatrix.from_dense(a.copy(), nb)
        driver = bidiag_ge2bnd if variant == "bidiag" else rbidiag_ge2bnd
        driver(NumericExecutor(direct), tree)
        replayed = TiledMatrix.from_dense(a.copy(), nb)
        program = get_program(variant, replayed.p, replayed.q, tree)
        replay(program, NumericExecutor(replayed))
        return direct.to_dense(), replayed.to_dense()

    def test_replay_matches_direct_drive_bitwise(self, rng):
        for variant, shape in (("bidiag", (24, 16)), ("rbidiag", (40, 12))):
            direct, replayed = self._factor_both_ways(rng, variant, shape, 4, GreedyTree())
            # Same op stream in the same order: bit-identical arithmetic.
            assert np.array_equal(direct, replayed)

    def test_replay_onto_recorder_reproduces_program(self):
        program = compile_program("bidiag", 4, 3, FlatTSTree())
        recorder = ProgramRecorder(4, 3)
        replay(program, recorder)
        again = recorder.program()
        assert [op.kernel for op in again.ops] == [op.kernel for op in program.ops]
        assert set(again.edges()) == set(program.edges())

    def test_replay_shape_guard(self):
        program = compile_program("qr", 4, 4, GreedyTree())
        with pytest.raises(ValueError):
            replay(program, ProgramRecorder(3, 3))


class TestEdgeCases:
    """1x1 tile problems and empty post-stages (satellite hardening)."""

    def test_single_tile_programs(self):
        for alg in ("qr", "bidiag", "rbidiag"):
            program = compile_program(alg, 1, 1, GreedyTree())
            assert len(program) == 1
            assert program.ops[0].kernel == KernelName.GEQRT
            assert program.n_edges == 0
            assert program.critical_path() == program.total_weight()

    def test_single_tile_matches_legacy_trace(self):
        graph = trace_bidiag(1, 1, GreedyTree())
        program = get_program("bidiag", 1, 1, GreedyTree())
        assert len(graph) == len(program) == 1
        assert graph.n_edges == program.n_edges == 0

    def test_single_column_has_no_lq_stage(self):
        # p x 1: one QR panel, never an LQ step (the post-QR stages are empty).
        program = compile_program("bidiag", 5, 1, GreedyTree())
        counts = program.kernel_counts()
        assert KernelName.GELQT not in counts
        assert KernelName.UNMLQ not in counts
        assert counts[KernelName.GEQRT] >= 1

    def test_single_tile_numeric_replay(self, rng):
        a = rng.standard_normal((6, 6))
        mat = TiledMatrix.from_dense(a.copy(), 6)  # 1x1 tile grid
        assert (mat.p, mat.q) == (1, 1)
        program = get_program("bidiag", 1, 1, GreedyTree())
        replay(program, NumericExecutor(mat))
        ref = np.linalg.svd(a, compute_uv=False)
        got = np.linalg.svd(mat.to_dense(), compute_uv=False)
        np.testing.assert_allclose(got, ref, atol=1e-9)

    def test_single_tile_simulation_matches_legacy(self):
        from repro.runtime.engine import SimulationEngine
        from repro.runtime.machine import Machine
        from repro.runtime.scheduler import ListScheduler

        machine = Machine(n_nodes=1, cores_per_node=4, tile_size=100)
        graph = trace_bidiag(1, 1, GreedyTree())
        program = get_program("bidiag", 1, 1, GreedyTree())
        legacy = ListScheduler(machine).run(graph)
        engine = SimulationEngine(machine, policy="list").run(program)
        assert engine.makespan == legacy.makespan > 0

    def test_ge2val_single_tile_simulation(self):
        from repro.runtime.machine import Machine
        from repro.runtime.simulator import simulate_ge2val

        machine = Machine(n_nodes=1, cores_per_node=4, tile_size=100)
        result = simulate_ge2val(100, 100, machine)  # p = q = 1
        assert result.p == result.q == 1
        assert result.time_seconds > 0
        assert result.post_seconds > 0


class TestHashSeedIndependence:
    """The analyzer iterates data items in sorted order, so the compiled
    edge structure is identical under any PYTHONHASHSEED (satellite fix)."""

    SNIPPET = (
        "import sys; sys.path.insert(0, 'src')\n"
        "from repro.ir import compile_program\n"
        "from repro.trees import GreedyTree\n"
        "p = compile_program('bidiag', 6, 4, GreedyTree())\n"
        "print(p.n_edges)\n"
        "print(list(p.edges()))\n"
    )

    def _run(self, hash_seed):
        import os

        env = dict(os.environ, PYTHONHASHSEED=hash_seed)
        proc = subprocess.run(
            [sys.executable, "-c", self.SNIPPET],
            capture_output=True,
            text=True,
            env=env,
            cwd=__file__.rsplit("/tests/", 1)[0],
            check=True,
        )
        return proc.stdout

    @pytest.mark.slow
    def test_edge_stream_identical_across_hash_seeds(self):
        out0 = self._run("0")
        out1 = self._run("4242")
        assert out0 == out1
