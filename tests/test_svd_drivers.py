"""Integration tests for the GE2BND / GE2VAL / GESVD drivers."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.algorithms.svd import _choose_variant, ge2bnd, ge2val, gesvd
from repro.tiles.matrix import TiledMatrix
from repro.utils.generators import graded_singular_values, latms
from repro.utils.validation import orthogonality_error, reconstruction_error


def _sv(a):
    return np.linalg.svd(a, compute_uv=False)


class TestGe2Bnd:
    def test_returns_band_and_matrix(self, rng):
        a = rng.standard_normal((24, 16))
        band, matrix, executor = ge2bnd(a, tile_size=4)
        assert band.n == 16
        assert matrix.shape == (24, 16)
        np.testing.assert_allclose(_sv(band.to_dense()), _sv(a), atol=1e-9)

    def test_accepts_tiled_matrix(self, rng):
        a = rng.standard_normal((16, 16))
        mat = TiledMatrix.from_dense(a, 4)
        band, _, _ = ge2bnd(mat)
        np.testing.assert_allclose(_sv(band.to_dense()), _sv(a), atol=1e-9)

    def test_variant_selection(self):
        assert _choose_variant("auto", 10, 4) == "rbidiag"
        assert _choose_variant("auto", 6, 6) == "bidiag"
        assert _choose_variant("bidiag", 100, 2) == "bidiag"

    def test_explicit_variants_agree(self, rng):
        a = rng.standard_normal((32, 8))
        b1, _, _ = ge2bnd(a, tile_size=4, variant="bidiag")
        b2, _, _ = ge2bnd(a, tile_size=4, variant="rbidiag")
        np.testing.assert_allclose(
            _sv(b1.to_dense()), _sv(b2.to_dense()), atol=1e-9
        )

    def test_rejects_wide(self, rng):
        with pytest.raises(ValueError):
            ge2bnd(rng.standard_normal((8, 16)), tile_size=4)

    def test_rejects_unknown_variant(self, rng):
        with pytest.raises(ValueError):
            ge2bnd(rng.standard_normal((8, 8)), tile_size=4, variant="bogus")

    def test_tree_by_name(self, rng):
        a = rng.standard_normal((16, 8))
        band, _, _ = ge2bnd(a, tile_size=4, tree="flatts")
        np.testing.assert_allclose(_sv(band.to_dense()), _sv(a), atol=1e-9)

    def test_auto_tree_by_name(self, rng):
        a = rng.standard_normal((16, 8))
        band, _, _ = ge2bnd(a, tile_size=4, tree="auto", n_cores=8)
        np.testing.assert_allclose(_sv(band.to_dense()), _sv(a), atol=1e-9)


class TestGe2Val:
    @pytest.mark.parametrize("tree", ["flatts", "flattt", "greedy", "auto"])
    def test_matches_numpy_square(self, tree, rng):
        a = rng.standard_normal((24, 24))
        got = ge2val(a, tile_size=6, tree=tree)
        np.testing.assert_allclose(got, _sv(a), atol=1e-9 * np.linalg.norm(a))

    def test_matches_numpy_tall_skinny(self, rng):
        a = rng.standard_normal((60, 12))
        got = ge2val(a, tile_size=5)
        np.testing.assert_allclose(got, _sv(a), atol=1e-9 * np.linalg.norm(a))

    def test_latms_prescribed_values(self, rng):
        sigma = np.linspace(5.0, 0.5, 16)
        a = latms(40, 16, sigma, rng=rng)
        got = ge2val(a, tile_size=5)
        np.testing.assert_allclose(got, sigma, rtol=1e-9)

    def test_graded_singular_values(self, rng):
        sigma = graded_singular_values(12, condition=1e6)
        a = latms(24, 12, sigma, rng=rng)
        got = ge2val(a, tile_size=4)
        np.testing.assert_allclose(got, sigma, rtol=1e-7)

    def test_default_tile_size(self, rng):
        a = rng.standard_normal((20, 12))
        got = ge2val(a)
        np.testing.assert_allclose(got, _sv(a), atol=1e-9)

    @settings(max_examples=10, deadline=None)
    @given(
        m=st.integers(min_value=4, max_value=30),
        n=st.integers(min_value=1, max_value=12),
        nb=st.integers(min_value=2, max_value=6),
        seed=st.integers(min_value=0, max_value=10**6),
    )
    def test_property_arbitrary_shapes(self, m, n, nb, seed):
        if m < n:
            m, n = n, m
        rng = np.random.default_rng(seed)
        a = rng.standard_normal((m, n))
        got = ge2val(a, tile_size=nb)
        np.testing.assert_allclose(got, _sv(a), atol=1e-8 * max(1.0, np.linalg.norm(a)))


class TestGesvd:
    def test_full_svd(self, rng):
        a = rng.standard_normal((30, 18))
        u, s, vt = gesvd(a, tile_size=5)
        assert reconstruction_error(a, u, s, vt) < 1e-12
        assert orthogonality_error(u) < 1e-12
        assert orthogonality_error(vt.T) < 1e-12
        np.testing.assert_allclose(s, _sv(a), atol=1e-9)

    def test_tall_skinny_rbidiag_path(self, rng):
        a = rng.standard_normal((50, 10))
        u, s, vt = gesvd(a, tile_size=5, variant="rbidiag")
        assert reconstruction_error(a, u, s, vt) < 1e-12
        np.testing.assert_allclose(s, _sv(a), atol=1e-9)

    def test_singular_vectors_diagonalize(self, rng):
        a = rng.standard_normal((16, 16))
        u, s, vt = gesvd(a, tile_size=4)
        np.testing.assert_allclose(u.T @ a @ vt.T, np.diag(s), atol=1e-9)
