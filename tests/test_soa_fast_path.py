"""Differential and property tests for the structure-of-arrays fast path.

The tentpole contract: the SoA pipeline (column recording, integer-coded
dependency analysis, vectorized CSR/level construction, array-native
engine) is **bit-identical** to the legacy object path on every observable
— schedules (makespan, per-op start/finish, node/core mapping, message and
byte counts), rank arrays, critical paths, bottom levels and static
communication counts — across all policies x networks x grids, and
independent of ``PYTHONHASHSEED``.
"""

import gc
import os
import subprocess
import sys

import numpy as np
import pytest

from repro.analysis.communication import (
    communication_matrix,
    communication_volume,
)
from repro.dag.critical_path import critical_path_length
from repro.ir import Program, clear_program_cache, compile_program, get_program
from repro.runtime.engine import (
    SimulationEngine,
    critical_path_seconds,
    engine_memo_stats,
    serial_seconds,
)
from repro.runtime.machine import Machine
from repro.runtime.network import get_network_model
from repro.runtime.policies import POLICIES, RandomPolicy, get_policy
from repro.tiles.distribution import BlockCyclicDistribution, ProcessGrid
from repro.trees import FlatTSTree, FlatTTTree, GreedyTree


@pytest.fixture(autouse=True)
def _fresh_program_cache():
    clear_program_cache()
    yield
    clear_program_cache()


#: (algorithm, p, q, tree, machine) configurations spanning single- and
#: multi-node shapes, square and tall-skinny grids.
CONFIGS = [
    ("bidiag", 10, 8, GreedyTree(), Machine(n_nodes=1, cores_per_node=8, tile_size=160)),
    ("bidiag", 8, 8, FlatTTTree(), Machine(n_nodes=4, cores_per_node=4, tile_size=100)),
    ("bidiag", 9, 6, FlatTSTree(), Machine(n_nodes=6, cores_per_node=2, tile_size=120)),
    ("rbidiag", 12, 4, GreedyTree(), Machine(n_nodes=2, cores_per_node=4, tile_size=100)),
]


def _assert_schedules_identical(a, b):
    assert a.makespan == b.makespan  # bitwise, not approx
    assert a.start == b.start
    assert a.finish == b.finish
    assert a.node_of_task == b.node_of_task
    assert a.core_of_task == b.core_of_task
    assert a.busy_time_per_node == b.busy_time_per_node
    assert a.messages == b.messages
    assert a.comm_bytes == b.comm_bytes
    assert a.comm_time_per_node == b.comm_time_per_node
    assert a.messages_per_node == b.messages_per_node


class TestFastLegacySchedules:
    """SoA fast path == legacy object path, every schedule field."""

    @pytest.mark.parametrize("network", ["uniform", "alpha-beta"])
    @pytest.mark.parametrize("policy", sorted(POLICIES))
    @pytest.mark.parametrize("alg,p,q,tree,machine", CONFIGS)
    def test_bitwise_equal(self, alg, p, q, tree, machine, policy, network):
        program = get_program(alg, p, q, tree)
        fast = SimulationEngine(
            machine, policy=policy, network=network, fast=True
        ).run(program)
        legacy = SimulationEngine(
            machine, policy=policy, network=network, fast=False
        ).run(program)
        _assert_schedules_identical(fast, legacy)

    def test_env_var_disables_fast_path(self, monkeypatch):
        monkeypatch.setenv("REPRO_ENGINE_FAST", "0")
        machine = Machine(n_nodes=1, cores_per_node=4, tile_size=100)
        assert SimulationEngine(machine).fast is False
        monkeypatch.setenv("REPRO_ENGINE_FAST", "1")
        assert SimulationEngine(machine).fast is True
        # Explicit argument wins over the environment.
        assert SimulationEngine(machine, fast=False).fast is False

    def test_empty_and_single_op_programs(self):
        machine = Machine(n_nodes=1, cores_per_node=4, tile_size=100)
        program = get_program("bidiag", 1, 1, GreedyTree())
        fast = SimulationEngine(machine, fast=True).run(program)
        legacy = SimulationEngine(machine, fast=False).run(program)
        _assert_schedules_identical(fast, legacy)
        assert fast.makespan > 0


class TestRankArrays:
    """Vectorized policy ranking == legacy per-node recursion, bitwise."""

    @pytest.mark.parametrize("policy_name", sorted(POLICIES))
    @pytest.mark.parametrize("alg,p,q,tree,machine", CONFIGS[:2])
    def test_rank_array_matches_rank(self, alg, p, q, tree, machine, policy_name):
        program = get_program(alg, p, q, tree)
        engine = SimulationEngine(machine, policy=policy_name)
        durations = engine.duration_vector(program)
        node_np = engine.owner_vector(program)
        node_list = (
            node_np.tolist() if node_np is not None else [0] * len(program)
        )
        policy = get_policy(policy_name)
        legacy = policy.rank(program, durations.tolist(), node_list, machine)
        vectorized = policy.rank_array(program, durations, node_np, machine)
        assert vectorized is not None
        assert list(vectorized) == list(legacy)

    def test_bottom_levels_vectorized_bitwise(self):
        program = get_program("bidiag", 12, 10, GreedyTree())
        machine = Machine(n_nodes=1, cores_per_node=8, tile_size=160)
        durations = machine.kernel_duration_table()[program.kernel_codes_np]
        assert program.bottom_levels_np(durations).tolist() == (
            program.bottom_levels(durations.tolist())
        )

    def test_critical_path_vectorized_bitwise(self):
        for alg, p, q, tree, machine in CONFIGS:
            program = get_program(alg, p, q, tree)
            # Default Table-I weights: vectorized sweep vs legacy graph walk.
            assert program.critical_path() == critical_path_length(
                program.to_task_graph()
            )
            # Duration weights: vectorized sweep vs explicit weight_fn loop.
            want = program.critical_path(
                weight_fn=lambda op: machine.kernel_duration(op.kernel)
            )
            assert critical_path_seconds(program, machine) == want

    def test_critical_path_length_accepts_programs(self):
        program = get_program("bidiag", 6, 5, GreedyTree())
        assert critical_path_length(program) == critical_path_length(
            program.to_task_graph()
        )

    def test_serial_seconds_matches_per_op_sum(self):
        program = get_program("bidiag", 8, 6, GreedyTree())
        machine = Machine(n_nodes=1, cores_per_node=8, tile_size=160)
        want = sum(machine.kernel_duration(op.kernel) for op in program.ops)
        assert serial_seconds(program, machine) == want


class TestSoAColumns:
    """The packed columns agree with the materialized object form."""

    def test_columns_match_ops(self):
        program = compile_program("bidiag", 7, 5, GreedyTree())
        ops = program.ops
        assert program.kernel_codes_np.tolist() == [
            list(type(op.kernel)).index(op.kernel) for op in ops
        ]
        assert program.weights_np.tolist() == [op.weight for op in ops]
        assert program.owner_rows_np.tolist() == [op.owner_tile[0] for op in ops]
        assert program.owner_cols_np.tolist() == [op.owner_tile[1] for op in ops]
        assert program.writes_count_np.tolist() == [len(op.writes) for op in ops]
        assert program.total_weight() == sum(op.weight for op in ops)

    def test_ops_materialize_lazily(self):
        program = compile_program("bidiag", 6, 6, FlatTSTree())
        assert program._ops is None  # compiled in column form
        assert len(program) > 0  # length needs no materialization
        assert program.columns is not None
        ops = program.ops  # first touch materializes
        assert program._ops is ops
        assert all(op.index == i for i, op in enumerate(ops))

    def test_levels_are_topological(self):
        for alg in ("qr", "bidiag", "rbidiag"):
            program = compile_program(alg, 6, 4, GreedyTree())
            levels = program.levels_np
            for src, dst in program.edges():
                assert levels[src] < levels[dst]

    def test_levels_match_object_path(self):
        program = compile_program("bidiag", 6, 5, FlatTTTree())
        rebuilt = Program.from_ops(program.ops)
        assert program.levels_np.tolist() == rebuilt.levels_np.tolist()

    def test_coded_analysis_matches_object_analyzer(self):
        # The integer-coded analyzer and the frozenset DependencyAnalyzer
        # must infer identical edge sets on the same op stream.
        for alg, tree in (("bidiag", GreedyTree()), ("rbidiag", FlatTSTree())):
            program = compile_program(alg, 6, 4, tree)
            rebuilt = Program.from_ops(program.ops)
            assert set(program.edges()) == set(rebuilt.edges())
            assert program.n_edges == rebuilt.n_edges
            for i in range(len(program)):
                assert list(program.predecessors(i)) == list(
                    rebuilt.predecessors(i)
                )

    def test_from_columns_rejects_backward_edges(self):
        program = compile_program("qr", 2, 1, GreedyTree())
        cols = program.columns
        bad = [[1]] + [[] for _ in range(len(program) - 1)]
        with pytest.raises(ValueError):
            Program.from_columns(cols, bad)

    def test_replay_column_dispatch_matches_object_dispatch(self):
        from repro.ir import ProgramRecorder, replay

        program = compile_program("bidiag", 5, 4, GreedyTree())
        assert program.columns is not None
        via_columns = ProgramRecorder(5, 4)
        replay(program, via_columns)
        rebuilt = Program.from_ops(program.ops)  # object-built: no columns
        assert rebuilt.columns is None
        via_ops = ProgramRecorder(5, 4)
        replay(rebuilt, via_ops)
        a, b = via_columns.columns(), via_ops.columns()
        assert list(a.kernels) == list(b.kernels)
        assert list(a.params) == list(b.params)


class TestOwnerVector:
    def test_owner_array_matches_owner(self):
        dist = BlockCyclicDistribution(ProcessGrid(3, 2))
        rows = np.arange(40) % 7
        cols = np.arange(40) % 5
        want = [dist.owner(int(i), int(j)) for i, j in zip(rows, cols)]
        assert dist.owner_array(rows, cols).tolist() == want

    def test_owner_array_rejects_negative(self):
        dist = BlockCyclicDistribution(ProcessGrid(2, 2))
        with pytest.raises(IndexError):
            dist.owner_array(np.array([0, -1]), np.array([0, 0]))

    def test_precomputed_node_of_op(self):
        # A caller-supplied placement (round-robin, ignoring the block-cyclic
        # rule) must be honoured identically by both engine paths.
        program = get_program("bidiag", 6, 6, GreedyTree())
        machine = Machine(n_nodes=3, cores_per_node=4, tile_size=100)
        placement = [i % 3 for i in range(len(program))]
        fast = SimulationEngine(machine, fast=True).run(
            program, node_of_op=placement
        )
        legacy = SimulationEngine(machine, fast=False).run(
            program, node_of_op=placement
        )
        _assert_schedules_identical(fast, legacy)
        assert fast.node_of_task == placement

    def test_node_of_op_length_validated(self):
        program = get_program("bidiag", 4, 4, GreedyTree())
        machine = Machine(n_nodes=2, cores_per_node=4, tile_size=100)
        with pytest.raises(ValueError):
            SimulationEngine(machine).run(program, node_of_op=[0, 1])


class TestMemoization:
    """Duration/owner/rank tables are shared across engines and runs."""

    def test_duration_vector_memoized_across_engines(self):
        program = get_program("bidiag", 6, 6, GreedyTree())
        machine = Machine(n_nodes=1, cores_per_node=8, tile_size=160)
        a = SimulationEngine(machine).duration_vector(program)
        b = SimulationEngine(machine).duration_vector(program)
        assert a is b  # same read-only vector, no re-pricing
        want = [machine.kernel_duration(op.kernel) for op in program.ops]
        assert a.tolist() == want
        # A different machine gets its own vector.
        other = Machine(n_nodes=1, cores_per_node=8, tile_size=100)
        c = SimulationEngine(other).duration_vector(program)
        assert c is not a

    def test_rank_keys_memoized_per_policy(self):
        program = get_program("bidiag", 6, 6, GreedyTree())
        machine = Machine(n_nodes=1, cores_per_node=8, tile_size=160)
        e1 = SimulationEngine(machine, policy="list")
        e2 = SimulationEngine(machine, policy="list")
        d = e1.duration_vector(program)
        k1 = e1.rank_keys(program, d, None)
        k2 = e2.rank_keys(program, d, None)
        assert k1 is k2
        # Different random seeds must not collide in the memo.
        r0 = SimulationEngine(machine, policy=RandomPolicy(seed=0))
        r1 = SimulationEngine(machine, policy=RandomPolicy(seed=1))
        assert r0.rank_keys(program, d, None) != r1.rank_keys(program, d, None)

    def test_owner_vector_memoized_per_grid(self):
        program = get_program("bidiag", 8, 8, FlatTTTree())
        machine = Machine(n_nodes=4, cores_per_node=4, tile_size=100)
        e = SimulationEngine(machine)
        assert e.owner_vector(program) is e.owner_vector(program)
        tall = SimulationEngine(
            machine,
            BlockCyclicDistribution(ProcessGrid.for_tall_skinny_matrix(4)),
        )
        assert tall.owner_vector(program) is not e.owner_vector(program)

    def test_memo_tables_release_dropped_programs(self):
        machine = Machine(n_nodes=1, cores_per_node=4, tile_size=100)
        before = engine_memo_stats()["duration_programs"]
        program = compile_program("bidiag", 5, 5, GreedyTree())
        SimulationEngine(machine).run(program)
        assert engine_memo_stats()["duration_programs"] == before + 1
        del program
        gc.collect()
        assert engine_memo_stats()["duration_programs"] == before

    def test_custom_distribution_falls_back_to_per_op_owner(self):
        # A distribution subclass with its own owner() must not be fed
        # through the vectorized block-cyclic mapping (or the memo).
        class ShiftedDistribution(BlockCyclicDistribution):
            def owner(self, i, j):
                return (super().owner(i, j) + 1) % self.grid.size

        program = get_program("bidiag", 6, 6, GreedyTree())
        machine = Machine(n_nodes=4, cores_per_node=2, tile_size=100)
        plain = BlockCyclicDistribution(ProcessGrid(2, 2))
        shifted = ShiftedDistribution(ProcessGrid(2, 2))
        fast = SimulationEngine(machine, shifted, fast=True).run(program)
        legacy = SimulationEngine(machine, shifted, fast=False).run(program)
        _assert_schedules_identical(fast, legacy)
        want = [(plain.owner(*op.owner_tile) + 1) % 4 for op in program.ops]
        assert fast.node_of_task == want

    def test_custom_distribution_never_hits_rank_memo(self):
        # Regression: rank keys memoized under (machine, grid shape) for
        # the canonical block-cyclic mapping must not be served to a
        # distribution subclass with the same grid shape but a different
        # owner() — and vice versa.
        class TransposedDistribution(BlockCyclicDistribution):
            def owner(self, i, j):
                return self.grid.rank_of(j % self.grid.rows, i % self.grid.cols)

        program = get_program("bidiag", 8, 8, GreedyTree())
        machine = Machine(n_nodes=6, cores_per_node=2, tile_size=100)
        grid = ProcessGrid(2, 3)
        # Populate the memo with the canonical mapping first.
        plain = SimulationEngine(
            machine, BlockCyclicDistribution(grid), policy="locality"
        ).run(program)
        custom_fast = SimulationEngine(
            machine, TransposedDistribution(grid), policy="locality", fast=True
        ).run(program)
        custom_legacy = SimulationEngine(
            machine, TransposedDistribution(grid), policy="locality", fast=False
        ).run(program)
        _assert_schedules_identical(custom_fast, custom_legacy)
        assert custom_fast.node_of_task != plain.node_of_task
        # ... and the custom runs must not have poisoned the memo either.
        plain_again = SimulationEngine(
            machine, BlockCyclicDistribution(grid), policy="locality"
        ).run(program)
        _assert_schedules_identical(plain, plain_again)

    def test_network_subclass_overriding_message_bytes_only(self):
        # Regression: a network that customizes only the per-op
        # message_bytes hook must be priced per op by the fast path, not
        # through the stale inherited vector form.
        from repro.runtime.network import AlphaBetaNetwork

        class QuarterTile(AlphaBetaNetwork):
            name = "quarter-tile"

            def message_bytes(self, op, machine):
                return machine.tile_bytes // 4

        program = get_program("bidiag", 8, 8, FlatTTTree())
        machine = Machine(n_nodes=4, cores_per_node=4, tile_size=100)
        fast = SimulationEngine(
            machine, network=QuarterTile(), fast=True
        ).run(program)
        legacy = SimulationEngine(
            machine, network=QuarterTile(), fast=False
        ).run(program)
        _assert_schedules_identical(fast, legacy)
        assert fast.comm_bytes == fast.messages * (machine.tile_bytes // 4)

    def test_object_built_programs_honor_custom_weights(self):
        # Regression: from_ops/from_task_graph programs carry whatever
        # weight the caller stamped on each Op; the packed weight column
        # must read it rather than re-deriving Table-I values.
        import dataclasses

        base = get_program("bidiag", 4, 4, GreedyTree())
        ops = [dataclasses.replace(op, weight=op.weight * 7) for op in base.ops]
        program = Program.from_ops(ops)
        assert program.total_weight() == 7 * base.total_weight()
        assert program.critical_path() == 7 * base.critical_path()
        machine = Machine(n_nodes=1, cores_per_node=4, tile_size=100)
        fast = SimulationEngine(machine, policy="critical-path", fast=True).run(
            program
        )
        legacy = SimulationEngine(
            machine, policy="critical-path", fast=False
        ).run(program)
        _assert_schedules_identical(fast, legacy)

    def test_csr_views_are_read_only(self):
        program = get_program("bidiag", 5, 4, GreedyTree())
        for vec in (program.pred_indptr_np, program.pred_ids_np,
                    program.succ_indptr_np, program.succ_ids_np,
                    program.weights_np, program.kernel_codes_np):
            assert not vec.flags.writeable

    def test_rank_array_may_return_ndarray(self):
        from repro.runtime.policies import SchedulingPolicy

        class NdFifo(SchedulingPolicy):
            name = "nd-fifo"

            def rank(self, program, durations, node_of_op, machine):
                return [float(i) for i in range(len(program))]

            def rank_array(self, program, durations, node_of_op, machine):
                return np.arange(len(program), dtype=np.float64)

        program = get_program("bidiag", 5, 5, GreedyTree())
        machine = Machine(n_nodes=1, cores_per_node=4, tile_size=100)
        nd = SimulationEngine(machine, policy=NdFifo()).run(program)
        fifo = SimulationEngine(machine, policy="fifo").run(program)
        _assert_schedules_identical(nd, fifo)

    def test_custom_policy_not_cached(self):
        from repro.runtime.policies import SchedulingPolicy

        class Custom(SchedulingPolicy):
            name = "custom"

            def rank(self, program, durations, node_of_op, machine):
                return [float(i) for i in range(len(program))]

        program = get_program("bidiag", 5, 5, GreedyTree())
        machine = Machine(n_nodes=1, cores_per_node=4, tile_size=100)
        engine = SimulationEngine(machine, policy=Custom())
        assert engine.policy.cache_token is None
        schedule = engine.run(program)  # fast path falls back to rank()
        fifo = SimulationEngine(machine, policy="fifo").run(program)
        _assert_schedules_identical(schedule, fifo)


class TestStaticCommunication:
    """Vectorized static message counts == legacy per-edge walk."""

    @pytest.mark.parametrize("grid", [ProcessGrid(2, 2), ProcessGrid(3, 2),
                                      ProcessGrid(4, 1)])
    def test_volume_and_matrix_match_task_graph_path(self, grid):
        program = get_program("bidiag", 8, 6, GreedyTree())
        dist = BlockCyclicDistribution(grid)
        graph = program.to_task_graph()
        fast = communication_volume(program, dist)
        slow = communication_volume(graph, dist)
        assert fast.messages == slow.messages
        assert fast.bytes_moved == slow.bytes_moved
        assert fast.per_node_sent == slow.per_node_sent
        assert fast.per_node_received == slow.per_node_received
        assert communication_matrix(program, dist) == communication_matrix(
            graph, dist
        )

    def test_message_bytes_vector_matches_per_op(self):
        program = get_program("bidiag", 6, 5, GreedyTree())
        machine = Machine(n_nodes=4, cores_per_node=2, tile_size=120)
        for name in ("uniform", "alpha-beta"):
            model = get_network_model(name)
            vec = model.message_bytes_vector(program, machine)
            want = [model.message_bytes(op, machine) for op in program.ops]
            assert vec.tolist() == want


class TestHashSeedDeterminism:
    """Rank arrays, levels and schedules are PYTHONHASHSEED-independent."""

    SNIPPET = (
        "import sys; sys.path.insert(0, 'src')\n"
        "from repro.ir import compile_program\n"
        "from repro.runtime.engine import SimulationEngine\n"
        "from repro.runtime.machine import Machine\n"
        "from repro.trees import GreedyTree\n"
        "program = compile_program('bidiag', 7, 5, GreedyTree())\n"
        "machine = Machine(n_nodes=4, cores_per_node=2, tile_size=100)\n"
        "for policy in ('list', 'critical-path', 'locality'):\n"
        "    engine = SimulationEngine(machine, policy=policy)\n"
        "    d = engine.duration_vector(program)\n"
        "    keys = engine.rank_keys(program, d, engine.owner_vector(program))\n"
        "    print(policy, keys)\n"
        "print(program.levels_np.tolist())\n"
        "print(SimulationEngine(machine).run(program).makespan)\n"
    )

    def _run(self, hash_seed):
        env = dict(os.environ, PYTHONHASHSEED=hash_seed)
        proc = subprocess.run(
            [sys.executable, "-c", self.SNIPPET],
            capture_output=True,
            text=True,
            env=env,
            cwd=__file__.rsplit("/tests/", 1)[0],
            check=True,
        )
        return proc.stdout

    @pytest.mark.slow
    def test_rank_arrays_identical_across_hash_seeds(self):
        assert self._run("0") == self._run("4242")
