"""Tests for the shared bounded-retry helper (:mod:`repro.utils.retry`)."""

import time

import pytest

from repro.utils.retry import RetryPolicy, backoff_delay, retry


class TestRetryPolicy:
    def test_defaults(self):
        policy = RetryPolicy()
        assert policy.attempts == 3
        assert policy.factor == 2.0

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"attempts": 0},
            {"backoff": -1.0},
            {"max_delay": -0.1},
            {"factor": 0.5},
            {"jitter": -0.01},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            RetryPolicy(**kwargs)


class TestBackoffDelay:
    def test_exponential_growth_without_jitter(self):
        policy = RetryPolicy(backoff=0.1, factor=2.0, jitter=0.0)
        assert backoff_delay(policy, 1) == pytest.approx(0.1)
        assert backoff_delay(policy, 2) == pytest.approx(0.2)
        assert backoff_delay(policy, 3) == pytest.approx(0.4)

    def test_max_delay_caps_the_base(self):
        policy = RetryPolicy(backoff=1.0, factor=10.0, max_delay=5.0, jitter=0.0)
        assert backoff_delay(policy, 4) == 5.0

    def test_jitter_is_deterministic_and_pinned(self):
        # These floats are part of the reproducibility contract: the jitter
        # draw is seeded by (jitter_seed, key, attempt) through
        # random.Random's SHA-512 string seeding, which is stable across
        # processes and PYTHONHASHSEED values.
        policy = RetryPolicy(
            attempts=5, backoff=0.1, factor=2.0, max_delay=30.0,
            jitter=0.25, jitter_seed=0,
        )
        assert backoff_delay(policy, 1, key="cand-x") == pytest.approx(
            0.1079741220546105, abs=0.0
        )
        assert backoff_delay(policy, 2, key="cand-x") == pytest.approx(
            0.20691121705166127, abs=0.0
        )
        assert backoff_delay(policy, 3, key="cand-x") == pytest.approx(
            0.41456342539779983, abs=0.0
        )

    def test_jitter_decorrelates_keys_and_seeds(self):
        policy = RetryPolicy(jitter_seed=0)
        x = backoff_delay(policy, 1, key="cand-x")
        y = backoff_delay(policy, 1, key="cand-y")
        assert x != y
        assert backoff_delay(policy, 1, key="cand-y") == y  # stable per key
        reseeded = RetryPolicy(jitter_seed=7)
        assert backoff_delay(reseeded, 1, key="cand-x") != x

    def test_jitter_bounded_by_fraction(self):
        policy = RetryPolicy(backoff=1.0, factor=1.0, jitter=0.25)
        for attempt in range(1, 20):
            d = backoff_delay(policy, attempt, key="k")
            assert 1.0 <= d < 1.25

    def test_attempt_must_be_positive(self):
        with pytest.raises(ValueError):
            backoff_delay(RetryPolicy(), 0)


class TestRetry:
    def test_success_first_try(self):
        calls = []
        assert retry(lambda: calls.append(1) or 42) == 42
        assert len(calls) == 1

    def test_retries_until_success(self):
        state = {"n": 0}

        def flaky():
            state["n"] += 1
            if state["n"] < 3:
                raise RuntimeError("boom")
            return "ok"

        sleeps = []
        assert retry(flaky, attempts=5, backoff=0.01, sleep=sleeps.append) == "ok"
        assert state["n"] == 3
        assert len(sleeps) == 2  # slept after each of the two failures

    def test_exhausted_attempts_raise_the_last_error(self):
        state = {"n": 0}

        def always_fails():
            state["n"] += 1
            raise ValueError(f"attempt {state['n']}")

        with pytest.raises(ValueError, match="attempt 3"):
            retry(always_fails, attempts=3, backoff=0.0, sleep=lambda d: None)
        assert state["n"] == 3

    def test_non_matching_exceptions_propagate_immediately(self):
        state = {"n": 0}

        def wrong_kind():
            state["n"] += 1
            raise KeyError("not retriable")

        with pytest.raises(KeyError):
            retry(wrong_kind, attempts=5, retry_on=(ValueError,))
        assert state["n"] == 1

    def test_on_retry_hook_sees_attempt_exc_delay(self):
        events = []

        def flaky():
            if len(events) < 2:
                raise RuntimeError("boom")
            return "ok"

        retry(
            flaky,
            attempts=5,
            backoff=0.01,
            jitter=0.0,
            sleep=lambda d: None,
            on_retry=lambda attempt, exc, delay: events.append(
                (attempt, type(exc).__name__, delay)
            ),
        )
        assert events == [(1, "RuntimeError", 0.01), (2, "RuntimeError", 0.02)]

    def test_sleeps_follow_the_deterministic_schedule(self):
        sleeps = []

        def always_fails():
            raise RuntimeError("boom")

        with pytest.raises(RuntimeError):
            retry(
                always_fails,
                attempts=3,
                backoff=0.1,
                jitter=0.25,
                jitter_seed=0,
                key="cand-x",
                sleep=sleeps.append,
            )
        policy = RetryPolicy(attempts=3, backoff=0.1, jitter=0.25, jitter_seed=0)
        assert sleeps == [
            backoff_delay(policy, 1, key="cand-x"),
            backoff_delay(policy, 2, key="cand-x"),
        ]

    def test_timeout_converts_overrun_to_timeout_error(self):
        with pytest.raises(TimeoutError):
            retry(
                lambda: time.sleep(5.0),
                attempts=1,
                timeout=0.05,
            )

    def test_timeout_retries_then_succeeds(self):
        state = {"n": 0}

        def slow_then_fast():
            state["n"] += 1
            if state["n"] == 1:
                time.sleep(5.0)
            return state["n"]

        result = retry(
            slow_then_fast,
            attempts=3,
            backoff=0.0,
            timeout=0.2,
            sleep=lambda d: None,
        )
        assert result == 2
