"""Tests for the task graph, the tracer and the critical-path engine."""

import numpy as np
import pytest

from repro.dag.critical_path import critical_path_length, critical_path_tasks
from repro.dag.task import Task, TaskGraph
from repro.dag.tracer import TraceExecutor, trace_bidiag, trace_qr, trace_rbidiag
from repro.kernels.costs import KernelName
from repro.trees import FlatTSTree, FlatTTTree, GreedyTree


def _mk_task(tid, weight=1, kernel=KernelName.GEQRT):
    return Task(
        id=tid,
        kernel=kernel,
        params=(tid,),
        reads=frozenset(),
        writes=frozenset(),
        weight=weight,
        owner_tile=(0, 0),
    )


class TestTaskGraph:
    def test_add_task_and_edges(self):
        g = TaskGraph()
        g.add_task(_mk_task(0))
        g.add_task(_mk_task(1))
        g.add_edge(0, 1)
        assert g.successors[0] == [1]
        assert g.predecessors[1] == [0]
        assert g.n_edges == 1

    def test_duplicate_edge_ignored(self):
        g = TaskGraph()
        g.add_task(_mk_task(0))
        g.add_task(_mk_task(1))
        g.add_edge(0, 1)
        g.add_edge(0, 1)
        assert g.n_edges == 1

    def test_self_loop_ignored(self):
        g = TaskGraph()
        g.add_task(_mk_task(0))
        g.add_edge(0, 0)
        assert g.n_edges == 0

    def test_non_dense_id_rejected(self):
        g = TaskGraph()
        with pytest.raises(ValueError):
            g.add_task(_mk_task(3))

    def test_sources_and_sinks(self):
        g = TaskGraph()
        for i in range(3):
            g.add_task(_mk_task(i))
        g.add_edge(0, 1)
        g.add_edge(1, 2)
        assert g.sources() == [0]
        assert g.sinks() == [2]

    def test_total_weight_and_flops(self):
        g = TaskGraph()
        g.add_task(_mk_task(0, weight=4))
        g.add_task(_mk_task(1, weight=6))
        assert g.total_weight() == 10
        assert g.total_flops(3) == pytest.approx(10 * 27 / 3)


class TestCriticalPathEngine:
    def test_chain(self):
        g = TaskGraph()
        for i in range(4):
            g.add_task(_mk_task(i, weight=2))
        for i in range(3):
            g.add_edge(i, i + 1)
        assert critical_path_length(g) == 8

    def test_diamond(self):
        g = TaskGraph()
        weights = [1, 5, 2, 1]
        for i, w in enumerate(weights):
            g.add_task(_mk_task(i, weight=w))
        g.add_edge(0, 1)
        g.add_edge(0, 2)
        g.add_edge(1, 3)
        g.add_edge(2, 3)
        assert critical_path_length(g) == 7
        path = critical_path_tasks(g)
        assert [t.id for t in path] == [0, 1, 3]

    def test_empty_graph(self):
        assert critical_path_length(TaskGraph()) == 0.0
        assert critical_path_tasks(TaskGraph()) == []

    def test_custom_weight_function(self):
        g = TaskGraph()
        g.add_task(_mk_task(0, weight=4))
        g.add_task(_mk_task(1, weight=4))
        g.add_edge(0, 1)
        assert critical_path_length(g, weight_fn=lambda t: 1.0) == 2.0


class TestTracer:
    def test_shape_properties(self):
        tracer = TraceExecutor(5, 3)
        assert tracer.p == 5
        assert tracer.q == 3

    def test_invalid_shape(self):
        with pytest.raises(ValueError):
            TraceExecutor(0, 3)

    def test_qr_task_count_flatts(self):
        # FlatTS QR of a p x q tile matrix: per step k (0-based, u = p-k,
        # v = q-k-1): 1 GEQRT + v UNMQR + (u-1) TSQRT + (u-1)*v TSMQR.
        p, q = 5, 3
        g = trace_qr(p, q, FlatTSTree())
        expected = 0
        for k in range(q):
            u, v = p - k, q - k - 1
            expected += 1 + v + (u - 1) + (u - 1) * v
        assert len(g) == expected

    def test_bidiag_kernel_mix(self):
        g = trace_bidiag(4, 4, FlatTSTree())
        counts = g.kernel_counts()
        assert counts[KernelName.GEQRT] == 4          # one per QR step
        assert counts[KernelName.GELQT] == 3          # one per LQ step
        assert KernelName.TTQRT not in counts         # FlatTS never uses TT
        assert counts[KernelName.TSQRT] == 3 + 2 + 1  # rows below diagonal

    def test_greedy_uses_tt_kernels_only(self):
        g = trace_bidiag(6, 3, GreedyTree())
        counts = g.kernel_counts()
        assert KernelName.TSQRT not in counts
        assert KernelName.TSMQR not in counts
        assert counts[KernelName.TTQRT] > 0

    def test_insertion_order_is_topological(self):
        g = trace_bidiag(6, 4, GreedyTree())
        # raises if any edge goes backwards
        order = g.topological_order()
        assert order == sorted(order)

    def test_flattt_same_work_shorter_span_than_flatts(self):
        # FlatTS and FlatTT perform exactly the same number of flops
        # (a TS elimination costs 6+12v, a TT elimination 4+6v+2+6v = 6+12v),
        # but FlatTT's critical path is shorter: a pure work/span trade-off.
        g_ts = trace_bidiag(6, 4, FlatTSTree())
        g_tt = trace_bidiag(6, 4, FlatTTTree())
        assert g_tt.total_weight() == g_ts.total_weight()
        assert critical_path_length(g_tt) < critical_path_length(g_ts)

    def test_rbidiag_has_more_tasks_than_bidiag_for_square(self):
        # For square matrices R-BIDIAG repeats work (QR then square BIDIAG).
        g_b = trace_bidiag(6, 6, GreedyTree())
        g_r = trace_rbidiag(6, 6, GreedyTree())
        assert len(g_r) > len(g_b)

    def test_tracer_and_numeric_executor_same_operation_count(self, rng):
        """The numeric and trace executors see exactly the same kernel calls."""
        from repro.algorithms.bidiag import bidiag_ge2bnd
        from repro.algorithms.executor import MultiExecutor, NumericExecutor
        from repro.tiles.matrix import TiledMatrix

        a = rng.standard_normal((20, 12))
        mat = TiledMatrix.from_dense(a, 4)
        numeric = NumericExecutor(mat)
        tracer = TraceExecutor(mat.p, mat.q)
        bidiag_ge2bnd(MultiExecutor([numeric, tracer]), GreedyTree())
        # The trace matches a standalone trace of the same configuration.
        standalone = trace_bidiag(mat.p, mat.q, GreedyTree())
        assert len(tracer.graph) == len(standalone)
        # And the numeric result is still correct.
        ref = np.linalg.svd(a, compute_uv=False)
        got = np.linalg.svd(mat.to_dense(), compute_uv=False)
        np.testing.assert_allclose(got, ref, atol=1e-9)


class TestMultiExecutorValidation:
    def test_empty_rejected(self):
        from repro.algorithms.executor import MultiExecutor

        with pytest.raises(ValueError):
            MultiExecutor([])

    def test_shape_mismatch_rejected(self):
        from repro.algorithms.executor import MultiExecutor

        with pytest.raises(ValueError):
            MultiExecutor([TraceExecutor(2, 2), TraceExecutor(3, 2)])
