"""Unit tests for the LQ tile kernels."""

import numpy as np
import pytest

from repro.kernels.lq_kernels import gelqt, tslqt, tsmlq, ttlqt, ttmlq, unmlq


class TestGelqtUnmlq:
    def test_gelqt_lower_triangular(self, rng):
        a = rng.standard_normal((5, 5))
        l, refl = gelqt(a)
        np.testing.assert_allclose(np.triu(l, 1), 0.0, atol=1e-12)
        # Singular values preserved (L = A Q^T with Q orthogonal).
        np.testing.assert_allclose(
            np.linalg.svd(l, compute_uv=False),
            np.linalg.svd(a, compute_uv=False),
            atol=1e-10,
        )

    def test_unmlq_consistency(self, rng):
        """Applying the LQ update to a second row keeps [A; C] factorized."""
        a = rng.standard_normal((4, 6))
        c = rng.standard_normal((3, 6))
        l, refl = gelqt(a)
        c_updated = unmlq(refl, c)
        # The rows of [L; C_updated] must span the same space and have the
        # same Gram matrix as [A; C] (they differ by the orthogonal Q^T on
        # the right).
        before = np.vstack([a, c])
        after = np.vstack([l, c_updated])
        np.testing.assert_allclose(before @ before.T, after @ after.T, atol=1e-10)

    def test_unmlq_rejects_wrong_reflector(self, rng):
        l_left = np.tril(rng.standard_normal((3, 3)))
        _, _, refl = tslqt(l_left, rng.standard_normal((3, 3)))
        with pytest.raises(ValueError):
            unmlq(refl, rng.standard_normal((3, 3)))

    def test_unmlq_rejects_column_mismatch(self, rng):
        _, refl = gelqt(rng.standard_normal((3, 4)))
        with pytest.raises(ValueError):
            unmlq(refl, rng.standard_normal((3, 3)))


class TestTslqtTsmlq:
    def test_tslqt_zeroes_right(self, rng):
        l_left = np.tril(rng.standard_normal((4, 4)))
        a_right = rng.standard_normal((4, 4))
        new_left, new_right, refl = tslqt(l_left, a_right)
        np.testing.assert_array_equal(new_right, 0.0)
        np.testing.assert_allclose(np.triu(new_left, 1), 0.0, atol=1e-12)
        # Row Gram matrix preserved: [L | A] and [L' | 0] differ by an
        # orthogonal transformation on the right.
        before = np.hstack([l_left, a_right])
        after = np.hstack([new_left, new_right])
        np.testing.assert_allclose(before @ before.T, after @ after.T, atol=1e-10)

    def test_tslqt_row_mismatch(self, rng):
        with pytest.raises(ValueError):
            tslqt(rng.standard_normal((4, 4)), rng.standard_normal((3, 4)))

    def test_tsmlq_preserves_products(self, rng):
        l_left = np.tril(rng.standard_normal((3, 3)))
        a_right = rng.standard_normal((3, 3))
        new_left, new_right, refl = tslqt(l_left, a_right)
        c_left = rng.standard_normal((2, 3))
        c_right = rng.standard_normal((2, 3))
        u_left, u_right = tsmlq(refl, c_left, c_right)
        # Inner products between the panel rows and the updated rows are
        # preserved by the shared right orthogonal transformation.
        before = np.hstack([np.vstack([l_left, c_left]), np.vstack([a_right, c_right])])
        after = np.hstack([np.vstack([new_left, u_left]), np.vstack([new_right, u_right])])
        np.testing.assert_allclose(before @ before.T, after @ after.T, atol=1e-10)

    def test_tsmlq_rejects_wrong_reflector(self, rng):
        _, refl = gelqt(rng.standard_normal((3, 3)))
        with pytest.raises(ValueError):
            tsmlq(refl, rng.standard_normal((3, 3)), rng.standard_normal((3, 3)))

    def test_tsmlq_rejects_bad_split(self, rng):
        l_left = np.tril(rng.standard_normal((3, 3)))
        _, _, refl = tslqt(l_left, rng.standard_normal((3, 3)))
        with pytest.raises(ValueError):
            tsmlq(refl, rng.standard_normal((2, 2)), rng.standard_normal((2, 3)))


class TestTtlqtTtmlq:
    def test_ttlqt_combines_triangles(self, rng):
        l_left = np.tril(rng.standard_normal((4, 4)))
        l_right = np.tril(rng.standard_normal((4, 4)))
        new_left, new_right, refl = ttlqt(l_left, l_right)
        np.testing.assert_array_equal(new_right, 0.0)
        before = np.hstack([l_left, l_right])
        after = np.hstack([new_left, new_right])
        np.testing.assert_allclose(before @ before.T, after @ after.T, atol=1e-10)

    def test_ttmlq_rejects_wrong_reflector(self, rng):
        l_left = np.tril(rng.standard_normal((3, 3)))
        _, _, refl = tslqt(l_left, rng.standard_normal((3, 3)))
        with pytest.raises(ValueError):
            ttmlq(refl, rng.standard_normal((3, 3)), rng.standard_normal((3, 3)))

    def test_inputs_not_modified(self, rng):
        l_left = np.tril(rng.standard_normal((4, 4)))
        l_right = np.tril(rng.standard_normal((4, 4)))
        left_copy, right_copy = l_left.copy(), l_right.copy()
        ttlqt(l_left, l_right)
        np.testing.assert_array_equal(l_left, left_copy)
        np.testing.assert_array_equal(l_right, right_copy)
