"""Tests for the fault-tolerant campaign subsystem (:mod:`repro.campaign`).

Process-free where possible (spec / store / faults / aggregate are plain
data + sqlite) and small-pool where not; the heavyweight crash-recovery
scenarios (kill -9, SIGINT + resume, hang + quarantine) live in
``test_campaign_recovery.py``.
"""

import json
import multiprocessing
import sys

import pytest

from repro.api import SvdPlan
from repro.api.execute import execute
from repro.campaign import (
    CampaignFaults,
    CampaignRunner,
    CampaignSpec,
    InjectedFault,
    ResultStore,
    build_chunks,
    campaign_rows,
    campaign_table,
    candidate_id,
    fault_draw,
    parse_faults,
    quarantine_report,
    run_campaign,
    status_summary,
)
from repro.campaign.spec import PLAN_FIELDS

BASE = {"m": 256, "n": 192, "tile_size": 64, "n_cores": 2}


def small_spec(**overrides) -> CampaignSpec:
    kwargs = dict(
        name="test",
        base=dict(BASE),
        axes={"tree": ["flatts", "greedy"], "policy": ["list", "fifo"]},
        backoff_seconds=0.01,
        workers=2,
    )
    kwargs.update(overrides)
    return CampaignSpec(**kwargs)


def row_key(row) -> str:
    return json.dumps(row, sort_keys=True, default=str)


# --------------------------------------------------------------------------- #
# Spec
# --------------------------------------------------------------------------- #
class TestCampaignSpec:
    def test_expand_is_the_cartesian_product(self):
        spec = small_spec()
        cands = spec.expand()
        assert len(cands) == 4 == spec.n_combinations()
        assert [c.index for c in cands] == [0, 1, 2, 3]
        # Last axis (policy) varies fastest, matching SvdPlan.sweep order.
        assert [(c.plan.tree, c.plan.policy) for c in cands] == [
            ("flatts", "list"), ("flatts", "fifo"),
            ("greedy", "list"), ("greedy", "fifo"),
        ]

    def test_candidate_ids_are_stable_across_expansions(self):
        a = {c.candidate_id for c in small_spec().expand()}
        b = {c.candidate_id for c in small_spec().expand()}
        assert a == b
        assert len(a) == 4

    def test_candidate_id_hashes_the_resolved_plan(self):
        # tile_size=None resolves to the default; spelling the default
        # explicitly must give the same candidate id.
        from repro.api.resolver import resolve

        implicit = SvdPlan(m=256, n=192, n_cores=2)
        explicit = implicit.with_(tile_size=resolve(implicit).tile_size)
        assert candidate_id(implicit) == candidate_id(explicit)
        assert candidate_id(implicit) != candidate_id(
            implicit.with_(tile_size=32)
        )
        assert candidate_id(implicit, "simulate") != candidate_id(implicit, "dag")

    def test_expand_dedups_same_resolved_plan(self):
        from repro.api.resolver import resolve

        default_nb = resolve(SvdPlan(m=256, n=192, n_cores=2)).tile_size
        spec = CampaignSpec(
            name="dedup",
            base={"m": 256, "n": 192, "n_cores": 2},
            axes={"tile_size": [None, default_nb, 32]},
        )
        assert len(spec.expand()) == 2  # None and default_nb collapse

    def test_unknown_fields_rejected(self):
        with pytest.raises(ValueError, match="unknown plan field"):
            CampaignSpec(name="x", base={"m": 10, "n": 10, "bogus": 1})
        with pytest.raises(ValueError, match="unknown plan field"):
            CampaignSpec(name="x", base={"m": 10, "n": 10}, axes={"nope": [1]})
        assert "matrix" not in PLAN_FIELDS and "config" not in PLAN_FIELDS

    def test_base_axes_overlap_rejected(self):
        with pytest.raises(ValueError, match="both base and axes"):
            CampaignSpec(
                name="x", base={"m": 10, "n": 10, "tree": "greedy"},
                axes={"tree": ["flatts"]},
            )

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"name": "  "},
            {"backend": "warp-drive"},
            {"axes": {"tree": []}},
            {"max_attempts": 0},
            {"timeout_seconds": 0},
            {"backoff_seconds": -1},
            {"workers": 0},
            {"chunk_size": 0},
        ],
    )
    def test_validation(self, kwargs):
        base = dict(name="x", base={"m": 16, "n": 16})
        base.update(kwargs)
        with pytest.raises(ValueError):
            CampaignSpec(**base)

    def test_from_dict_rejects_unknown_keys(self):
        with pytest.raises(ValueError, match="unknown campaign spec key"):
            CampaignSpec.from_dict({"name": "x", "base": {}, "retries": 3})

    def test_json_file_roundtrip(self, tmp_path):
        spec = small_spec()
        path = tmp_path / "spec.json"
        path.write_text(json.dumps(spec.to_dict()))
        loaded = CampaignSpec.from_file(path)
        assert loaded == spec
        assert loaded.fingerprint() == spec.fingerprint()

    def test_toml_file(self, tmp_path):
        path = tmp_path / "spec.toml"
        path.write_text(
            'name = "toml-spec"\nbackend = "simulate"\n'
            "[base]\nm = 256\nn = 192\ntile_size = 64\n"
            "[axes]\ntree = [\"flatts\", \"greedy\"]\n"
        )
        if sys.version_info >= (3, 11):
            spec = CampaignSpec.from_file(path)
            assert spec.name == "toml-spec"
            assert len(spec.expand()) == 2
        else:
            with pytest.raises(ValueError, match="TOML"):
                CampaignSpec.from_file(path)

    def test_fingerprint_ignores_robustness_knobs(self):
        a = small_spec(max_attempts=3, timeout_seconds=None)
        b = small_spec(max_attempts=7, timeout_seconds=120.0, workers=8)
        assert a.fingerprint() == b.fingerprint()
        assert a.fingerprint() != small_spec(name="other").fingerprint()

    def test_build_chunks_singletons_by_default(self):
        cands = small_spec().expand()
        chunks = build_chunks(cands, "simulate", 1)
        assert [len(c) for c in chunks] == [1, 1, 1, 1]

    def test_build_chunks_groups_same_program(self):
        # Same tree/grid/cores, different seeds: one compiled Program, so
        # chunks of size 3 group them for the batched engine.
        spec = CampaignSpec(
            name="chunky",
            base={**BASE, "tree": "flatts"},
            axes={"seed": [1, 2, 3, 4, 5, 6]},
            chunk_size=3,
        )
        chunks = build_chunks(spec.expand(), "simulate", 3)
        assert sorted(len(c) for c in chunks) == [3, 3]
        # Different trees compile different Programs: never share a chunk.
        mixed = build_chunks(small_spec().expand(), "simulate", 4)
        for chunk in mixed:
            assert len({c.plan.tree for c in chunk}) == 1


# --------------------------------------------------------------------------- #
# Store
# --------------------------------------------------------------------------- #
class TestResultStore:
    def make_store(self, tmp_path, n=4):
        spec = small_spec()
        cands = spec.expand()[:n]
        store = ResultStore(tmp_path / "store.sqlite")
        store.register(cands, spec.fingerprint())
        return store, cands

    def test_register_and_counts(self, tmp_path):
        store, cands = self.make_store(tmp_path)
        assert len(store) == 4
        assert store.counts() == {"pending": 4}
        # Re-registering is idempotent.
        report = store.register(cands, small_spec().fingerprint())
        assert report.new == 0
        assert len(store) == 4

    def test_fingerprint_mismatch_refused(self, tmp_path):
        store, _ = self.make_store(tmp_path)
        other = small_spec(name="other")
        with pytest.raises(ValueError, match="different campaign"):
            store.register(other.expand(), other.fingerprint())

    def test_mark_done_is_exactly_once(self, tmp_path):
        store, cands = self.make_store(tmp_path)
        cid = cands[0].candidate_id
        store.mark_running([cid])
        assert store.mark_done(cid, {"x": 1}, 0.5) is True
        # A stale duplicate completion must not overwrite the row.
        assert store.mark_done(cid, {"x": 999}, 0.1) is False
        rec = next(r for r in store.records() if r.candidate_id == cid)
        assert rec.status == "done"
        assert rec.row == {"x": 1}
        assert rec.wall_seconds == 0.5

    def test_charge_failure_quarantines_at_max_attempts(self, tmp_path):
        store, cands = self.make_store(tmp_path)
        cid = cands[0].candidate_id
        assert store.charge_failure(cid, "boom 1", max_attempts=3) == ("failed", 1)
        assert store.charge_failure(cid, "boom 2", max_attempts=3) == ("failed", 2)
        status, attempts = store.charge_failure(cid, "boom 3", max_attempts=3)
        assert (status, attempts) == ("quarantined", 3)
        rec = next(r for r in store.records() if r.candidate_id == cid)
        assert rec.error == "boom 3"

    def test_charge_failure_after_done_is_noop(self, tmp_path):
        store, cands = self.make_store(tmp_path)
        cid = cands[0].candidate_id
        store.mark_done(cid, {"x": 1}, 0.1)
        assert store.charge_failure(cid, "late", max_attempts=3) == ("done", 0)
        assert store.status_of(cid) == "done"

    def test_requeue_interrupted_recovers_running_rows(self, tmp_path):
        store, cands = self.make_store(tmp_path)
        ids = [c.candidate_id for c in cands]
        store.mark_running(ids[:2])
        assert store.counts() == {"running": 2, "pending": 2}
        assert store.requeue_interrupted() == 2
        assert store.counts() == {"pending": 4}

    def test_register_requeues_interrupted(self, tmp_path):
        store, cands = self.make_store(tmp_path)
        store.mark_running([cands[0].candidate_id])
        store.close()
        # A fresh open (a resume) sees the orphaned 'running' row.
        store2 = ResultStore(tmp_path / "store.sqlite")
        report = store2.register(cands, small_spec().fingerprint())
        assert report.requeued == 1
        assert store2.counts() == {"pending": 4}

    def test_release_does_not_charge(self, tmp_path):
        store, cands = self.make_store(tmp_path)
        cid = cands[0].candidate_id
        store.mark_running([cid])
        store.release([cid])
        rec = next(r for r in store.records() if r.candidate_id == cid)
        assert rec.status == "pending"
        assert rec.attempts == 0

    def test_mark_running_skips_terminal_rows(self, tmp_path):
        store, cands = self.make_store(tmp_path)
        cid = cands[0].candidate_id
        store.mark_done(cid, {"x": 1}, 0.1)
        store.mark_running([cid])
        assert store.status_of(cid) == "done"

    def test_requeue_quarantined_resets_attempts(self, tmp_path):
        store, cands = self.make_store(tmp_path)
        cid = cands[0].candidate_id
        for i in range(3):
            store.charge_failure(cid, "boom", max_attempts=3)
        assert store.status_of(cid) == "quarantined"
        assert store.requeue_quarantined() == 1
        rec = next(r for r in store.records() if r.candidate_id == cid)
        assert (rec.status, rec.attempts) == ("pending", 0)

    def test_records_ordered_by_expansion_index(self, tmp_path):
        store, cands = self.make_store(tmp_path)
        assert [r.candidate_id for r in store.records()] == [
            c.candidate_id for c in cands
        ]


# --------------------------------------------------------------------------- #
# Faults
# --------------------------------------------------------------------------- #
class TestFaults:
    def test_parse(self):
        faults = parse_faults("crash:0.1,hang:0.05:2.5,raise:0.2,seed:7,limit:2")
        assert faults == CampaignFaults(
            crash=0.1, hang=0.05, raise_=0.2, hang_seconds=2.5, seed=7, limit=2
        )

    @pytest.mark.parametrize(
        "text",
        ["crash", "warp:0.1", "crash:0.1,crash:0.2", "crash:0.1:7", "crash:1.5"],
    )
    def test_parse_rejects(self, text):
        with pytest.raises(ValueError):
            parse_faults(text)

    def test_probabilities_must_fit(self):
        with pytest.raises(ValueError, match="sum"):
            CampaignFaults(crash=0.6, hang=0.6)

    def test_draws_are_deterministic_and_respect_limit(self):
        faults = CampaignFaults(crash=0.5, raise_=0.5, seed=3, limit=2)
        draws = [fault_draw(faults, "cand", a) for a in (1, 2, 3, 4)]
        assert draws == [fault_draw(faults, "cand", a) for a in (1, 2, 3, 4)]
        assert draws[0] in ("crash", "raise") and draws[1] in ("crash", "raise")
        assert draws[2] is None and draws[3] is None  # past the limit

    def test_draws_decorrelate_candidates_and_seeds(self):
        faults = CampaignFaults(crash=0.5)
        draws_a = [fault_draw(faults, "a", k) for k in range(1, 40)]
        draws_b = [fault_draw(faults, "b", k) for k in range(1, 40)]
        assert draws_a != draws_b
        reseeded = CampaignFaults(crash=0.5, seed=99)
        assert [fault_draw(reseeded, "a", k) for k in range(1, 40)] != draws_a

    def test_env_parsing(self, monkeypatch):
        from repro.campaign.faults import ENV_VAR, active_faults

        monkeypatch.delenv(ENV_VAR, raising=False)
        assert active_faults() is None
        monkeypatch.setenv(ENV_VAR, "raise:0.5")
        assert active_faults() == CampaignFaults(raise_=0.5)
        monkeypatch.setenv(ENV_VAR, "")
        assert active_faults() is None

    def test_maybe_inject_raise(self):
        from repro.campaign.faults import maybe_inject

        faults = CampaignFaults(raise_=1.0)
        with pytest.raises(InjectedFault):
            maybe_inject(faults, "cand", 1)
        maybe_inject(None, "cand", 1)  # no faults: no-op


# --------------------------------------------------------------------------- #
# Runner
# --------------------------------------------------------------------------- #
class TestCampaignRunner:
    def test_clean_campaign_matches_sequential_execution(self, tmp_path):
        spec = small_spec()
        report = run_campaign(spec, tmp_path / "s.sqlite")
        assert report.complete
        assert report.counts == {"done": 4}
        assert not report.interrupted
        store = ResultStore(tmp_path / "s.sqlite")
        rows = {r.candidate_id: r.row for r in store.records("done")}
        for cand in spec.expand():
            ref = execute(cand.plan, backend="simulate").to_row()
            assert row_key(rows[cand.candidate_id]) == row_key(ref)
        store.close()

    def test_chunked_campaign_is_bitwise_equal(self, tmp_path):
        spec = CampaignSpec(
            name="chunky",
            base={**BASE, "tree": "flatts"},
            axes={"seed": [1, 2, 3, 4, 5, 6]},
            chunk_size=3,
            workers=2,
            backoff_seconds=0.01,
        )
        report = run_campaign(spec, tmp_path / "s.sqlite")
        assert report.complete
        store = ResultStore(tmp_path / "s.sqlite")
        rows = {r.candidate_id: r.row for r in store.records("done")}
        store.close()
        for cand in spec.expand():
            ref = execute(cand.plan, backend="simulate").to_row()
            assert row_key(rows[cand.candidate_id]) == row_key(ref)

    def test_resume_skips_completed_candidates(self, tmp_path):
        spec = small_spec()
        cands = spec.expand()
        store = ResultStore(tmp_path / "s.sqlite")
        store.register(cands, spec.fingerprint())
        done = cands[0]
        store.mark_done(
            done.candidate_id, execute(done.plan, backend="simulate").to_row(), 0.1
        )
        store.close()
        report = run_campaign(spec, tmp_path / "s.sqlite")
        assert report.complete
        assert report.resumed_skips == 1

    def test_injected_raise_faults_retry_to_completion(self, tmp_path):
        spec = small_spec(max_attempts=3)
        faults = CampaignFaults(raise_=1.0, limit=1)  # attempt 1 always fails
        report = run_campaign(spec, tmp_path / "s.sqlite", faults=faults)
        assert report.complete
        assert report.retries == 4  # one charged retry per candidate
        assert report.quarantined == 0
        store = ResultStore(tmp_path / "s.sqlite")
        assert all(rec.attempts == 1 for rec in store.records("done"))
        store.close()

    def test_unrecoverable_faults_quarantine_not_abort(self, tmp_path):
        spec = small_spec(max_attempts=2)
        faults = CampaignFaults(raise_=1.0)  # every attempt fails
        report = run_campaign(spec, tmp_path / "s.sqlite", faults=faults)
        assert not report.complete
        assert not report.interrupted  # ran to the end, did not abort
        assert report.counts == {"quarantined": 4}
        store = ResultStore(tmp_path / "s.sqlite")
        for rec in store.records("quarantined"):
            assert rec.attempts == 2
            assert "InjectedFault" in (rec.error or "")
        store.close()

    def test_quarantined_rows_bitwise_recoverable_via_requeue(self, tmp_path):
        spec = small_spec(max_attempts=2)
        run_campaign(
            spec, tmp_path / "s.sqlite", faults=CampaignFaults(raise_=1.0)
        )
        report = run_campaign(
            spec, tmp_path / "s.sqlite", requeue_quarantined=True, faults=None
        )
        assert report.complete
        store = ResultStore(tmp_path / "s.sqlite")
        rows = {r.candidate_id: r.row for r in store.records("done")}
        store.close()
        for cand in spec.expand():
            ref = execute(cand.plan, backend="simulate").to_row()
            assert row_key(rows[cand.candidate_id]) == row_key(ref)

    def test_crash_faults_respawn_and_converge(self, tmp_path):
        spec = small_spec(max_attempts=4, timeout_seconds=30.0)
        faults = CampaignFaults(crash=1.0, limit=1)  # attempt 1 always dies
        report = run_campaign(spec, tmp_path / "s.sqlite", faults=faults)
        assert report.complete, report.summary()
        assert report.respawns >= 1
        store = ResultStore(tmp_path / "s.sqlite")
        rows = {r.candidate_id: r.row for r in store.records("done")}
        store.close()
        for cand in spec.expand():
            ref = execute(cand.plan, backend="simulate").to_row()
            assert row_key(rows[cand.candidate_id]) == row_key(ref)

    def test_metrics_counters_reported(self, tmp_path):
        from repro.obs.metrics import REGISTRY

        before = REGISTRY.snapshot()
        spec = small_spec(max_attempts=3)
        run_campaign(
            spec, tmp_path / "s.sqlite", faults=CampaignFaults(raise_=1.0, limit=1)
        )
        delta = REGISTRY.delta_since(before)
        assert delta.get("campaign.done") == 4
        assert delta.get("campaign.retries") == 4

    def test_last_run_meta_persisted(self, tmp_path):
        run_campaign(small_spec(), tmp_path / "s.sqlite")
        store = ResultStore(tmp_path / "s.sqlite")
        meta = json.loads(store.get_meta("last_run"))
        store.close()
        assert meta["counts"] == {"done": 4}
        assert meta["interrupted"] is False

    def test_store_fingerprint_guard_via_runner(self, tmp_path):
        run_campaign(small_spec(), tmp_path / "s.sqlite")
        with pytest.raises(ValueError, match="different campaign"):
            run_campaign(small_spec(name="other"), tmp_path / "s.sqlite")


# --------------------------------------------------------------------------- #
# Aggregation
# --------------------------------------------------------------------------- #
class TestAggregate:
    def test_rows_and_table(self, tmp_path):
        spec = small_spec()
        run_campaign(spec, tmp_path / "s.sqlite")
        rows = campaign_rows(tmp_path / "s.sqlite")
        assert len(rows) == 4
        table = campaign_table(tmp_path / "s.sqlite")
        assert "tree" in table and "flatts" in table
        assert len(table.splitlines()) == 2 + 4  # header + rule + rows

    def test_empty_store_tables(self, tmp_path):
        store = ResultStore(tmp_path / "s.sqlite")
        store.close()
        assert campaign_table(tmp_path / "s.sqlite") == "(no completed candidates)"
        assert quarantine_report(tmp_path / "s.sqlite") == "(no quarantined candidates)"

    def test_quarantine_report_lists_errors(self, tmp_path):
        spec = small_spec(max_attempts=1)
        run_campaign(
            spec, tmp_path / "s.sqlite", faults=CampaignFaults(raise_=1.0)
        )
        report = quarantine_report(tmp_path / "s.sqlite")
        assert report.count("\n") == 3  # 4 lines
        assert "attempts=1" in report and "InjectedFault" in report

    def test_status_summary(self, tmp_path):
        run_campaign(small_spec(), tmp_path / "s.sqlite")
        summary = status_summary(tmp_path / "s.sqlite")
        assert "4/4 done (100.0%)" in summary
        assert "spec" in summary


# --------------------------------------------------------------------------- #
# CLI
# --------------------------------------------------------------------------- #
class TestCampaignCli:
    def write_spec(self, tmp_path):
        path = tmp_path / "spec.json"
        path.write_text(json.dumps(small_spec().to_dict()))
        return path

    def test_run_status_report(self, tmp_path, capsys):
        from repro.cli import main

        spec_path = self.write_spec(tmp_path)
        store_path = tmp_path / "s.sqlite"
        assert main(
            ["campaign", "run", str(spec_path), "--store", str(store_path)]
        ) == 0
        out = capsys.readouterr().out
        assert "[complete]" in out

        assert main(["campaign", "status", str(store_path)]) == 0
        assert "4/4 done" in capsys.readouterr().out

        json_out = tmp_path / "rows.json"
        assert main(
            ["campaign", "report", str(store_path), "--json", str(json_out)]
        ) == 0
        capsys.readouterr()
        assert len(json.loads(json_out.read_text())) == 4

    def test_run_again_resumes_with_skips(self, tmp_path, capsys):
        from repro.cli import main

        spec_path = self.write_spec(tmp_path)
        store_path = tmp_path / "s.sqlite"
        main(["campaign", "run", str(spec_path), "--store", str(store_path)])
        capsys.readouterr()
        assert main(
            ["campaign", "resume", str(spec_path), "--store", str(store_path)]
        ) == 0
        assert "skipped (already done) : 4" in capsys.readouterr().out

    def test_quarantine_exit_code_and_report(self, tmp_path, capsys, monkeypatch):
        from repro.campaign.faults import ENV_VAR
        from repro.cli import main

        monkeypatch.setenv(ENV_VAR, "raise:1.0")
        spec_path = self.write_spec(tmp_path)
        store_path = tmp_path / "s.sqlite"
        code = main(
            ["campaign", "run", str(spec_path), "--store", str(store_path),
             "--max-attempts", "1"]
        )
        assert code == 1
        capsys.readouterr()
        monkeypatch.delenv(ENV_VAR)
        assert main(
            ["campaign", "report", str(store_path), "--quarantine"]
        ) == 0
        assert "InjectedFault" in capsys.readouterr().out

    def test_bad_spec_file_is_a_user_error(self, tmp_path, capsys):
        from repro.cli import main

        bad = tmp_path / "bad.json"
        bad.write_text('{"name": "x", "warp": 9}')
        assert main(["campaign", "run", str(bad)]) == 2
        assert "error" in capsys.readouterr().err


# --------------------------------------------------------------------------- #
# Experiment registry
# --------------------------------------------------------------------------- #
class TestRegistry:
    def test_campaign_experiment_registered(self):
        from repro.experiments.registry import get_experiment, run_experiment

        exp = get_experiment("campaign")
        assert "campaign" in exp.description.lower() or "sweep" in exp.description.lower()
        rows = run_experiment(
            "campaign", m=128, n=96, tile_size=32, trees=("flatts",),
            policies=("list", "fifo"),
        )
        assert len(rows) == 2
        assert all(r["status"] == "done" for r in rows)
        assert all("candidate" in r for r in rows)


# --------------------------------------------------------------------------- #
# PlanCache crash-safety (satellite of this PR)
# --------------------------------------------------------------------------- #
def _hammer_cache(args):
    path, tag, n = args
    from repro.tuning.cache import PlanCache

    for i in range(n):
        PlanCache(path).put(f"{tag}-{i}", {"value": i})


class TestPlanCacheConcurrency:
    def test_two_processes_hammering_lose_no_entries(self, tmp_path):
        path = str(tmp_path / "cache.json")
        n = 40
        ctx = multiprocessing.get_context("fork")
        with ctx.Pool(2) as pool:
            pool.map(_hammer_cache, [(path, "a", n), (path, "b", n)])
        from repro.tuning.cache import PlanCache

        cache = PlanCache(path)
        assert len(cache) == 2 * n
        for tag in ("a", "b"):
            for i in range(n):
                assert cache.get(f"{tag}-{i}")["value"] == i

    def test_put_merges_entries_from_other_processes(self, tmp_path):
        # Two handles to the same file: a stale in-memory snapshot must
        # not clobber what the other handle wrote (the pre-lock bug).
        from repro.tuning.cache import PlanCache

        path = tmp_path / "cache.json"
        first, second = PlanCache(path), PlanCache(path)
        first.put("from-first", {"v": 1})
        second.put("from-second", {"v": 2})
        fresh = PlanCache(path)
        assert fresh.get("from-first") is not None
        assert fresh.get("from-second") is not None
