"""Tests for the autotuning subsystem (:mod:`repro.tuning`)."""

from __future__ import annotations

import json

import pytest

from repro.api import SvdPlan, execute, resolve
from repro.config import Config
from repro.tuning import (
    OBJECTIVES,
    GridSearch,
    PlanCache,
    SearchSpace,
    SuccessiveHalving,
    default_tile_sizes,
    divisor_grids,
    get_objective,
    get_strategy,
    tune,
)

#: A small, fast space shared by the search tests.
SMALL_SPACE = SearchSpace(
    tile_sizes=(20, 40, 80),
    trees=("flatts", "greedy"),
    variants=("bidiag",),
)

SMALL_PLAN = SvdPlan(m=400, n=400, stage="ge2val", n_cores=4)


# --------------------------------------------------------------------------- #
# SearchSpace
# --------------------------------------------------------------------------- #
class TestSearchSpace:
    def test_default_space_dimensions(self):
        dims = SearchSpace().dimensions(SMALL_PLAN)
        assert dims["tile_size"] == default_tile_sizes(400, 400)
        assert dims["tree"] == ("flatts", "flattt", "greedy", "auto")
        assert dims["variant"] == ("bidiag", "rbidiag")
        assert dims["grid"] == (None,)
        assert dims["inner_block"] == (32,)

    def test_candidates_cover_the_product(self):
        plans = SMALL_SPACE.candidates(SMALL_PLAN)
        assert len(plans) == 6
        assert {p.tile_size for p in plans} == {20, 40, 80}
        assert all(p.variant == "bidiag" for p in plans)

    def test_size_matches_product(self):
        assert SMALL_SPACE.size(SMALL_PLAN) == 6

    def test_duplicate_variants_are_deduped(self):
        # On a 3:1 tall-skinny shape Chan resolves "auto" to rbidiag, so
        # ("auto", "rbidiag") collapses to one candidate per (nb, tree).
        space = SearchSpace(
            tile_sizes=(20,), trees=("greedy",), variants=("auto", "rbidiag")
        )
        plans = space.candidates(SvdPlan(m=300, n=100))
        assert len(plans) == 1

    def test_explicit_matrix_is_dropped(self, rng):
        plan = SvdPlan(matrix=rng.standard_normal((60, 40)))
        plans = SMALL_SPACE.candidates(plan)
        assert all(p.matrix is None for p in plans)
        assert all((p.m, p.n) == (60, 40) for p in plans)

    def test_grid_dimension_defaults_to_divisor_pairs(self):
        plan = SvdPlan(m=400, n=400, n_nodes=4)
        dims = SearchSpace().dimensions(plan)
        assert dims["grid"] == ((1, 4), (2, 2), (4, 1))

    def test_prime_node_count_degenerates_to_flat_grids(self):
        assert divisor_grids(7) == ((1, 7), (7, 1))

    def test_grid_entries_not_covering_nodes_are_filtered(self):
        plan = SvdPlan(m=400, n=400, n_nodes=4)
        space = SearchSpace(grids=((2, 2), (3, 1)))
        assert space.dimensions(plan)["grid"] == ((2, 2),)
        with pytest.raises(ValueError, match="covers n_nodes"):
            SearchSpace(grids=((3, 1),)).dimensions(plan)

    def test_validation_rejects_unknown_names(self):
        with pytest.raises(ValueError, match="unknown tree"):
            SearchSpace(trees=("nope",))
        with pytest.raises(ValueError, match="unknown variant"):
            SearchSpace(variants=("nope",))
        with pytest.raises(ValueError, match="tile_sizes"):
            SearchSpace(tile_sizes=())
        with pytest.raises(ValueError, match="tile_sizes"):
            SearchSpace(tile_sizes=(0,))

    def test_fingerprint_is_stable_and_discriminating(self):
        a = SMALL_SPACE.fingerprint(SMALL_PLAN)
        assert a == SMALL_SPACE.fingerprint(SMALL_PLAN)
        b = SearchSpace(
            tile_sizes=(20, 40), trees=("flatts", "greedy"), variants=("bidiag",)
        ).fingerprint(SMALL_PLAN)
        assert a != b


# --------------------------------------------------------------------------- #
# Objectives
# --------------------------------------------------------------------------- #
class TestObjectives:
    def test_registry_and_lookup(self):
        assert set(OBJECTIVES) == {
            "makespan", "gflops", "robust-makespan", "critical-path",
            "comm-volume", "comm-time",
        }
        assert get_objective("MAKESPAN").name == "makespan"
        obj = get_objective("gflops")
        assert get_objective(obj) is obj
        with pytest.raises(ValueError, match="unknown objective"):
            get_objective("speed")

    def test_makespan_scores_and_bound(self):
        obj = get_objective("makespan")
        resolved = resolve(SMALL_PLAN.with_(tile_size=40))
        score = obj.score(resolved)
        bound = obj.bound(resolved)
        assert score > 0
        assert bound is not None
        assert bound <= score  # the bound must be optimistic, or pruning lies

    def test_gflops_direction_and_cost(self):
        obj = get_objective("gflops")
        assert obj.direction == "max"
        assert obj.cost(10.0) < obj.cost(5.0)

    def test_critical_path_matches_dag_backend(self):
        obj = get_objective("critical-path")
        plan = SMALL_PLAN.with_(tile_size=40, stage="ge2bnd", tree="greedy")
        assert obj.score(resolve(plan)) == execute(plan, backend="dag").critical_path

    def test_comm_volume_zero_on_one_node(self):
        obj = get_objective("comm-volume")
        assert obj.score(resolve(SMALL_PLAN.with_(tile_size=40))) == 0.0

    def test_comm_volume_positive_on_several_nodes(self):
        obj = get_objective("comm-volume")
        plan = SvdPlan(m=800, n=200, tile_size=50, n_nodes=4, stage="ge2bnd")
        assert obj.score(resolve(plan)) > 0

    def test_gesvd_stage_is_rejected(self):
        with pytest.raises(ValueError, match="gesvd"):
            tune(SvdPlan(m=60, n=40, stage="gesvd"), space=SMALL_SPACE, cache=False)


# --------------------------------------------------------------------------- #
# PlanCache
# --------------------------------------------------------------------------- #
class TestPlanCache:
    def test_roundtrip_and_persistence(self, tmp_path):
        path = tmp_path / "cache.json"
        cache = PlanCache(path)
        assert cache.get("k") is None
        cache.put("k", {"overrides": {"tile_size": 40}, "score": 1.5})
        assert PlanCache(path).get("k")["score"] == 1.5
        assert len(PlanCache(path)) == 1

    def test_corrupt_file_is_treated_as_empty(self, tmp_path):
        path = tmp_path / "cache.json"
        path.write_text("{not json")
        cache = PlanCache(path)
        assert cache.get("k") is None
        cache.put("k", {"score": 1.0})
        assert json.loads(path.read_text())["entries"]["k"]["score"] == 1.0

    def test_foreign_version_is_ignored(self, tmp_path):
        path = tmp_path / "cache.json"
        path.write_text(json.dumps({"version": 999, "entries": {"k": {}}}))
        assert PlanCache(path).get("k") is None

    def test_clear_removes_file(self, tmp_path):
        path = tmp_path / "cache.json"
        cache = PlanCache(path)
        cache.put("k", {"score": 1.0})
        assert cache.clear() == 1
        assert not path.exists()
        assert len(PlanCache(path)) == 0

    def test_env_var_controls_default_path(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_TUNE_CACHE", str(tmp_path / "via_env.json"))
        assert PlanCache().path == tmp_path / "via_env.json"


# --------------------------------------------------------------------------- #
# Search strategies
# --------------------------------------------------------------------------- #
class TestGridSearch:
    def test_pruned_search_matches_exhaustive(self):
        exhaustive = tune(
            SMALL_PLAN, space=SMALL_SPACE, strategy=GridSearch(prune=False), cache=False
        )
        pruned = tune(SMALL_PLAN, space=SMALL_SPACE, cache=False)
        assert pruned.best_plan == exhaustive.best_plan
        assert pruned.best_score == pytest.approx(exhaustive.best_score)
        assert exhaustive.n_evaluated == 6 and exhaustive.n_pruned == 0

    def test_best_really_is_the_minimum(self):
        result = tune(
            SMALL_PLAN, space=SMALL_SPACE, strategy=GridSearch(prune=False), cache=False
        )
        scores = {
            ev.plan.tile_size: ev.score for ev in result.evaluations
            if ev.plan.tree == "greedy"
        }
        assert result.best_score <= min(scores.values())

    def test_parallel_workers_agree_with_serial(self):
        serial = tune(SMALL_PLAN, space=SMALL_SPACE, cache=False, workers=1)
        threaded = tune(
            SMALL_PLAN, space=SMALL_SPACE, cache=False, workers=3, executor="thread"
        )
        assert threaded.best_plan == serial.best_plan
        assert threaded.best_score == pytest.approx(serial.best_score)

    def test_process_pool_agrees_with_serial(self):
        serial = tune(SMALL_PLAN, space=SMALL_SPACE, cache=False, workers=1)
        parallel = tune(
            SMALL_PLAN, space=SMALL_SPACE, cache=False, workers=2, executor="process"
        )
        assert parallel.best_plan == serial.best_plan

    def test_rows_flag_exactly_one_best(self):
        result = tune(SMALL_PLAN, space=SMALL_SPACE, cache=False)
        rows = result.rows()
        assert len(rows) == 6
        assert sum(1 for r in rows if r["best"]) == 1
        assert {"tile_size", "tree", "variant", "grid", "score", "pruned"} <= set(rows[0])

    def test_invalid_knobs_are_rejected(self):
        with pytest.raises(ValueError, match="workers"):
            tune(SMALL_PLAN, space=SMALL_SPACE, cache=False, workers=0)
        with pytest.raises(ValueError, match="executor"):
            tune(SMALL_PLAN, space=SMALL_SPACE, cache=False, executor="gpu")
        with pytest.raises(ValueError, match="unknown strategy"):
            get_strategy("anneal")


class TestSuccessiveHalving:
    def test_halving_returns_a_candidate_scored_at_full_size(self):
        space = SearchSpace(
            tile_sizes=(20, 40, 80),
            trees=("flatts", "flattt", "greedy", "auto"),
            variants=("bidiag",),
        )
        plan = SvdPlan(m=1600, n=1600, n_cores=4, stage="ge2bnd")
        result = tune(plan, space=space, strategy="halving", cache=False)
        assert result.strategy == "halving"
        key = (result.best_plan.tile_size, str(result.best_plan.tree))
        assert key in {(p.tile_size, str(p.tree)) for p in space.candidates(plan)}
        # Early rungs ran on scaled-down problems, the winner at full size.
        assert any(ev.fidelity is not None for ev in result.evaluations)
        full = [ev for ev in result.evaluations if ev.fidelity is None]
        assert len(full) < result.n_candidates
        assert result.best_score in [ev.score for ev in full]

    def test_eta_validation(self):
        with pytest.raises(ValueError, match="eta"):
            SuccessiveHalving(eta=1)


# --------------------------------------------------------------------------- #
# tune() + cache integration
# --------------------------------------------------------------------------- #
class TestTuneCache:
    def test_second_call_is_served_from_cache(self, tmp_path):
        cache = PlanCache(tmp_path / "cache.json")
        first = tune(SMALL_PLAN, space=SMALL_SPACE, cache=cache)
        assert not first.from_cache and first.n_evaluated > 0
        second = tune(SMALL_PLAN, space=SMALL_SPACE, cache=cache)
        assert second.from_cache
        assert second.n_evaluated == 0 and second.evaluations == []
        assert second.best_plan == first.best_plan
        assert second.best_score == pytest.approx(first.best_score)

    def test_force_retunes_despite_cache(self, tmp_path):
        cache = PlanCache(tmp_path / "cache.json")
        tune(SMALL_PLAN, space=SMALL_SPACE, cache=cache)
        again = tune(SMALL_PLAN, space=SMALL_SPACE, cache=cache, force=True)
        assert not again.from_cache and again.n_evaluated > 0

    def test_key_distinguishes_problem_and_objective(self, tmp_path):
        cache = PlanCache(tmp_path / "cache.json")
        tune(SMALL_PLAN, space=SMALL_SPACE, cache=cache)
        other_shape = tune(
            SMALL_PLAN.with_(m=500, n=500), space=SMALL_SPACE, cache=cache
        )
        assert not other_shape.from_cache
        other_objective = tune(
            SMALL_PLAN, space=SMALL_SPACE, objective="gflops", cache=cache
        )
        assert not other_objective.from_cache

    def test_tile_size_auto_resolves_through_tuner(self):
        plan = SvdPlan(m=300, n=300, tile_size="auto", n_cores=4)
        resolved = resolve(plan)
        assert isinstance(resolved.tile_size, int)
        assert resolved.tile_size in default_tile_sizes(300, 300)
        # Second resolution is a cache hit (same answer, no re-search).
        assert resolve(plan).tile_size == resolved.tile_size

    def test_auto_plan_executes_end_to_end(self):
        result = execute(SvdPlan(m=120, n=80, tile_size="auto"), backend="simulate")
        assert result.time_seconds > 0
        assert isinstance(result.tile_size, int)

    def test_api_level_tune_wrapper(self):
        from repro.api import tune as api_tune

        result = api_tune(SMALL_PLAN, space=SMALL_SPACE, cache=False)
        assert result.best_plan.tile_size in (20, 40, 80)

    def test_explicit_matrix_survives_tuning(self, rng, tmp_path):
        """The tuned plan must execute on the caller's data, not a random one."""
        import numpy as np

        a = rng.standard_normal((60, 40))
        cache = PlanCache(tmp_path / "cache.json")
        space = SearchSpace(tile_sizes=(8, 16), trees=("greedy",), variants=("bidiag",))
        tuned = tune(SvdPlan(matrix=a, stage="ge2val"), space=space, cache=cache)
        assert tuned.best_plan.matrix is a
        result = execute(tuned.best_plan, backend="numeric")
        ref = np.linalg.svd(a, compute_uv=False)
        assert np.allclose(result.singular_values, ref)
        # The cache-hit path returns the matrix too.
        warm = tune(SvdPlan(matrix=a, stage="ge2val"), space=space, cache=cache)
        assert warm.from_cache and warm.best_plan.matrix is a

    def test_tiled_matrix_input_is_densified_for_retiling(self, rng):
        from repro.tiles.matrix import TiledMatrix

        a = rng.standard_normal((60, 40))
        tiled = TiledMatrix.from_dense(a, 10)
        space = SearchSpace(tile_sizes=(8, 16), trees=("greedy",), variants=("bidiag",))
        tuned = tune(SvdPlan(matrix=tiled), space=space, cache=False)
        # A dense copy, so the tuned nb (!= 10) can re-tile it at execution.
        assert tuned.best_plan.matrix.shape == (60, 40)
        assert not isinstance(tuned.best_plan.matrix, TiledMatrix)
        execute(tuned.best_plan, backend="simulate")

    def test_custom_objective_instance_is_used_directly(self):
        from repro.tuning.objectives import Objective

        class NegTileSize(Objective):
            # Not registered in OBJECTIVES: instances must pass through.
            name = "neg-tile"
            direction = "max"

            def score(self, resolved):
                return float(resolved.tile_size)

        result = tune(SMALL_PLAN, space=SMALL_SPACE, objective=NegTileSize(), cache=False)
        assert result.best_plan.tile_size == 80  # maximizing tile size


# --------------------------------------------------------------------------- #
# Distributed tuning (grid shapes) and the inner-block dimension
# --------------------------------------------------------------------------- #
class TestTuningDimensions:
    def test_grid_shape_is_searched_on_several_nodes(self):
        plan = SvdPlan(m=1200, n=300, n_nodes=4, n_cores=4, stage="ge2bnd")
        space = SearchSpace(
            tile_sizes=(75,), trees=("greedy",), variants=("rbidiag",)
        )
        result = tune(plan, space=space, objective="comm-volume", cache=False)
        assert result.n_candidates == 3  # 1x4, 2x2, 4x1
        assert result.best_plan.grid in ((1, 4), (2, 2), (4, 1))
        scores = {ev.plan.grid: ev.score for ev in result.evaluations}
        assert result.best_score == min(s for s in scores.values() if s is not None)

    def test_inner_block_dimension_changes_makespan(self):
        plan = SvdPlan(m=400, n=400, n_cores=4, stage="ge2bnd")
        space = SearchSpace(
            tile_sizes=(50,),
            trees=("greedy",),
            variants=("bidiag",),
            inner_blocks=(2, 32),
        )
        result = tune(plan, space=space, strategy=GridSearch(prune=False), cache=False)
        scores = {
            ev.plan.config.inner_block: ev.score for ev in result.evaluations
        }
        assert scores[2] != scores[32]  # ib reaches the performance model
        assert result.best_plan.config.inner_block == 32  # tiny ib is slower

    def test_tuned_config_flows_into_execution(self):
        plan = SMALL_PLAN.with_(
            tile_size=40, config=Config(inner_block=8), stage="ge2bnd"
        )
        fast_ib = SMALL_PLAN.with_(tile_size=40, stage="ge2bnd")
        slow = execute(plan, backend="simulate").time_seconds
        fast = execute(fast_ib, backend="simulate").time_seconds
        assert slow > fast
