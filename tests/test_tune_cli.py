"""The ``repro tune`` subcommand, and the pinned ``repro plan --json`` schema.

Tuning sweeps consume plan rows programmatically, so the row schema is a
contract: every row must be self-describing (resolved tile size, tree
display name, concrete variant, grid, machine).  The schema test pins the
exact key set per backend — extending it is fine, but do it consciously.
"""

from __future__ import annotations

from repro.cli import main
from repro.utils.io import load_rows_json

#: Keys shared by every backend's row (the resolved plan description).
PLAN_KEYS = {
    "backend", "stage", "variant", "tree", "m", "n", "p", "q",
    "tile_size", "n_cores", "n_nodes", "grid", "machine",
}


class TestPlanRowSchema:
    def run_rows(self, tmp_path, *args):
        path = tmp_path / "rows.json"
        assert main(["plan", "--m", "60", "--n", "40", "--tile-size", "10",
                     *args, "--json", str(path)]) == 0
        return load_rows_json(path)

    def test_numeric_row_schema_is_pinned(self, tmp_path):
        (row,) = self.run_rows(tmp_path)
        assert set(row) == PLAN_KEYS | {
            "time_seconds", "max_rel_error",
            "seconds_ge2bnd", "seconds_bnd2bd", "seconds_bd2val",
        }

    def test_dag_row_schema_is_pinned(self, tmp_path):
        (row,) = self.run_rows(tmp_path, "--backend", "dag", "--stage", "ge2bnd")
        assert set(row) == PLAN_KEYS | {"n_tasks", "critical_path"}

    def test_simulate_row_schema_is_pinned(self, tmp_path):
        (row,) = self.run_rows(tmp_path, "--backend", "simulate")
        assert set(row) == PLAN_KEYS | {
            "policy", "network", "time_seconds", "gflops", "n_tasks",
            "messages", "comm_bytes", "comm_seconds",
            "seconds_ge2bnd", "seconds_post",
        }
        assert row["policy"] == "list"
        assert row["network"] == "uniform"

    def test_rows_are_resolved_not_requested(self, tmp_path):
        """Rows carry concrete values: resolved nb, tree name, variant."""
        path = tmp_path / "rows.json"
        # No tile size, auto variant: the row must still be concrete.
        assert main(["plan", "--m", "64", "--n", "24", "--backend", "simulate",
                     "--variant", "auto", "--json", str(path)]) == 0
        (row,) = load_rows_json(path)
        assert isinstance(row["tile_size"], int) and row["tile_size"] >= 1
        assert row["variant"] == "rbidiag"  # 64 >= 5/3 * 24 resolved by Chan
        assert row["tree"] == "greedy"  # display name of the default tree
        assert row["grid"] == "1x1" and row["machine"] == "miriel"


class TestTuneCommand:
    ARGS = ["tune", "--m", "300", "--n", "300", "--n-cores", "4",
            "--tile-sizes", "25,50", "--trees", "flatts,greedy",
            "--variants", "bidiag"]

    def test_tune_prints_best_plan(self, capsys):
        assert main([*self.ARGS, "--no-cache"]) == 0
        out = capsys.readouterr().out
        assert "best tile size" in out
        assert "candidates     : 4" in out

    def test_tune_json_rows_are_self_describing(self, tmp_path):
        path = tmp_path / "tune.json"
        assert main([*self.ARGS, "--no-cache", "--json", str(path)]) == 0
        rows = load_rows_json(path)
        assert len(rows) == 4
        assert {"tile_size", "inner_block", "tree", "variant", "grid",
                "score", "pruned", "best"} <= set(rows[0])
        assert sum(1 for r in rows if r["best"]) == 1

    def test_cache_roundtrip_through_cli(self, tmp_path, capsys):
        cache = tmp_path / "cache.json"
        assert main([*self.ARGS, "--cache-file", str(cache)]) == 0
        first = capsys.readouterr().out
        assert "[cache hit]" not in first
        assert cache.exists()
        assert main([*self.ARGS, "--cache-file", str(cache)]) == 0
        second = capsys.readouterr().out
        assert "[cache hit]" in second
        # Same winner either way.
        line = [ln for ln in first.splitlines() if "best tile size" in ln]
        assert line and line[0] in second

    def test_clear_cache(self, tmp_path, capsys):
        cache = tmp_path / "cache.json"
        assert main([*self.ARGS, "--cache-file", str(cache)]) == 0
        capsys.readouterr()
        assert main(["tune", "--m", "1", "--n", "1", "--clear-cache",
                     "--cache-file", str(cache)]) == 0
        assert "cleared 1" in capsys.readouterr().out
        assert not cache.exists()

    def test_objective_validation(self, capsys):
        assert main([*self.ARGS, "--no-cache", "--objective", "speed"]) == 2
        assert "unknown objective" in capsys.readouterr().err

    def test_halving_strategy_via_cli(self, capsys):
        assert main(["tune", "--m", "800", "--n", "800", "--n-cores", "4",
                     "--tile-sizes", "20,40,80", "--trees", "flatts,greedy",
                     "--variants", "bidiag", "--strategy", "halving",
                     "--no-cache"]) == 0
        assert "strategy       : halving" in capsys.readouterr().out

    def test_no_prune_applies_to_halving_too(self, capsys):
        assert main(["tune", "--m", "800", "--n", "800", "--n-cores", "4",
                     "--tile-sizes", "20,40,80", "--trees", "flatts,greedy",
                     "--variants", "bidiag", "--strategy", "halving",
                     "--no-prune", "--no-cache"]) == 0
        out = capsys.readouterr().out
        assert "0 pruned" in out

    def test_workers_flag(self, capsys):
        assert main([*self.ARGS, "--no-cache", "--workers", "2"]) == 0
        assert "best tile size" in capsys.readouterr().out
