"""CLI round-trips for the plan subcommand and the plan-backed commands."""


import numpy as np
import pytest

from repro.cli import main
from repro.utils.io import load_rows_json


class TestPlanCommand:
    def test_numeric_backend(self, capsys):
        assert main(["plan", "--m", "40", "--n", "24", "--tile-size", "8"]) == 0
        out = capsys.readouterr().out
        assert "backend        : numeric" in out
        assert "max rel error" in out

    def test_all_backends(self, capsys):
        assert main(
            ["plan", "--m", "40", "--n", "24", "--tile-size", "8", "--backend", "all"]
        ) == 0
        out = capsys.readouterr().out
        for backend in ("numeric", "dag", "simulate"):
            assert f"backend        : {backend}" in out

    def test_json_roundtrip(self, tmp_path, capsys):
        path = tmp_path / "rows.json"
        assert main(
            ["plan", "--m", "40", "--n", "24", "--tile-size", "8",
             "--backend", "all", "--json", str(path)]
        ) == 0
        rows = load_rows_json(path)
        assert [row["backend"] for row in rows] == ["numeric", "dag", "simulate"]
        # DAG and simulator traced the same graph for the same plan.
        assert rows[1]["n_tasks"] == rows[2]["n_tasks"]

    def test_dag_backend_options(self, capsys):
        assert main(
            ["plan", "--m", "64", "--n", "32", "--tile-size", "8",
             "--backend", "dag", "--stage", "ge2bnd", "--tree", "flattt",
             "--variant", "rbidiag", "--n-cores", "4"]
        ) == 0
        out = capsys.readouterr().out
        assert "critical path" in out and "rbidiag" in out

    def test_rejects_bad_stage_backend_combo(self, capsys):
        assert main(["plan", "--m", "16", "--n", "16", "--tile-size", "4",
                     "--stage", "gesvd", "--backend", "simulate"]) == 2
        assert "numeric" in capsys.readouterr().err

    def test_rejects_wide_matrix(self, capsys):
        assert main(["plan", "--m", "16", "--n", "32"]) == 2
        assert "transpose" in capsys.readouterr().err

    def test_backend_all_skips_unsupported_stage(self, capsys):
        # gesvd only runs numerically; 'all' reports the other two as
        # skipped instead of aborting after partial output.
        assert main(["plan", "--m", "16", "--n", "16", "--tile-size", "4",
                     "--stage", "gesvd", "--backend", "all"]) == 0
        out = capsys.readouterr().out
        assert "backend        : numeric" in out
        assert out.count("skipped") == 2


class TestSvdCommand:
    def test_n_cores_and_auto_tree(self, capsys):
        assert main(
            ["svd", "--m", "40", "--n", "24", "--tile-size", "8",
             "--tree", "auto", "--n-cores", "8"]
        ) == 0
        out = capsys.readouterr().out
        assert "max rel error" in out

    def test_rejects_unknown_tree(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["svd", "--m", "40", "--n", "24", "--tree", "bogus"])
        assert excinfo.value.code == 2

    def test_npy_input_still_works(self, tmp_path, capsys):
        rng = np.random.default_rng(0)
        path = tmp_path / "a.npy"
        np.save(path, rng.standard_normal((30, 20)))
        assert main(["svd", "--input", str(path), "--tile-size", "5"]) == 0


class TestPlanBackedLegacyCommands:
    def test_simulate_output_labels(self, capsys):
        assert main(["simulate", "2000", "2000", "--nb", "200", "--cores", "8"]) == 0
        out = capsys.readouterr().out
        assert "tasks" in out and "GFlop/s" in out

    def test_simulate_ge2val_stage_seconds(self, capsys):
        assert main(
            ["simulate", "4000", "1000", "--nb", "250", "--cores", "8", "--ge2val"]
        ) == 0
        out = capsys.readouterr().out
        assert "t_post" in out

    def test_critical_path_matches_direct_trace(self, capsys):
        from repro.dag.critical_path import critical_path_length
        from repro.dag.tracer import trace_bidiag
        from repro.trees import GreedyTree

        assert main(["critical-path", "8", "4", "--tree", "greedy"]) == 0
        out = capsys.readouterr().out
        expected = critical_path_length(trace_bidiag(8, 4, GreedyTree()))
        measured = [l for l in out.splitlines() if l.startswith("measured")][0]
        assert float(measured.split(":")[1]) == pytest.approx(expected)


class TestRunParamOverrides:
    def test_plan_experiments_registered(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "plan-tree-sweep" in out and "plan-backend-matrix" in out

    def test_run_with_param_override(self, capsys):
        assert main(
            ["run", "plan-tree-sweep", "--param", "m=1000", "--param", "n=1000",
             "--param", "trees=('flatts','greedy')"]
        ) == 0
        out = capsys.readouterr().out
        assert "flatts" in out and "greedy" in out
        assert "flattt" not in out

    def test_run_backend_matrix(self, capsys):
        assert main(["run", "plan-backend-matrix", "--markdown"]) == 0
        out = capsys.readouterr().out
        assert "numeric" in out and "dag" in out and "simulate" in out
