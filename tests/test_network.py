"""Tests for the message-level network subsystem (:mod:`repro.runtime.network`).

Pins the contract of the network tentpole:

* ``network="uniform"`` is the legacy engine, bit for bit (golden pins on
  absolute makespans, equality with an engine built without a network
  argument, hash-seed subprocess determinism);
* the ``alpha-beta`` model counts exactly the same deduplicated messages
  as ``uniform`` and as the static analysis
  (:func:`repro.analysis.communication.engine_communication_check`) — only
  the simulated time per message differs;
* per-message mechanics: serialized NIC injection, payloads from the op's
  written tile halves (scaling with ``nb``), rendezvous handshake;
* the ``seen_transfers`` dedup audit: a tile re-produced by a *later op*
  is a new producer and re-triggers transfers (regression test);
* the knob reaches every layer: SvdPlan, execute rows, CLI, tuning
  objective, experiment registry.
"""

from __future__ import annotations

import os
import subprocess
import sys

import pytest

from repro.analysis.communication import (
    communication_volume,
    engine_communication_check,
)
from repro.cli import main
from repro.dag.task import Task, TaskGraph
from repro.ir import clear_program_cache, get_program
from repro.ir.program import Program
from repro.runtime.engine import SimulationEngine, run_policy
from repro.runtime.machine import Machine
from repro.runtime.network import (
    NETWORK_MODELS,
    AlphaBetaNetwork,
    UniformNetwork,
    available_networks,
    get_network_model,
)
from repro.runtime.scheduler import ListScheduler
from repro.tiles.distribution import BlockCyclicDistribution, ProcessGrid
from repro.trees import FlatTSTree, FlatTTTree, GreedyTree
from repro.kernels.costs import KernelName


@pytest.fixture(autouse=True)
def _fresh_program_cache():
    clear_program_cache()
    yield
    clear_program_cache()


#: (algorithm, p, q, tree, machine) configurations shared with the engine
#: tests (same shapes as tests/test_engine_policies.py).
CONFIGS = [
    ("bidiag", 8, 6, GreedyTree(), Machine(n_nodes=1, cores_per_node=8, tile_size=160)),
    ("bidiag", 10, 10, FlatTSTree(), Machine(n_nodes=1, cores_per_node=24, tile_size=160)),
    ("rbidiag", 12, 4, GreedyTree(), Machine(n_nodes=1, cores_per_node=8, tile_size=100)),
    ("bidiag", 8, 8, FlatTTTree(), Machine(n_nodes=4, cores_per_node=4, tile_size=100)),
]


def _chain_graph():
    """A 3-node line of tiles: one producer on node 0, consumers on 1 and 2.

    Tile ``(i, 0)`` is owned by node ``i`` on the 3x1 grid; every task
    writes its own tile, so owner-computes pins the mapping.
    """
    graph = TaskGraph()
    graph.add_task(Task(0, KernelName.GEQRT, (0,), frozenset(),
                        frozenset({("U", 0, 0)}), 4, (0, 0)))
    graph.add_task(Task(1, KernelName.GEQRT, (1,), frozenset({("U", 0, 0)}),
                        frozenset({("U", 1, 0)}), 4, (1, 0)))
    graph.add_task(Task(2, KernelName.GEQRT, (2,), frozenset({("U", 0, 0)}),
                        frozenset({("U", 2, 0)}), 4, (2, 0)))
    graph.add_edge(0, 1)
    graph.add_edge(0, 2)
    return graph


def _three_node_engine(network, cores=1, tile_size=100):
    machine = Machine(n_nodes=3, cores_per_node=cores, tile_size=tile_size)
    distribution = BlockCyclicDistribution(ProcessGrid(3, 1))
    return machine, SimulationEngine(machine, distribution, network=network)


class TestUniformIsLegacy:
    def test_golden_pins_unchanged(self):
        """The pre-PR engine's absolute makespans, replayed with the
        explicit ``uniform`` network (same pins as the engine tests)."""
        pins = {
            ("bidiag", 8, 6): (0.030137913139087435, 0),
            ("bidiag", 10, 10): (0.07270787239075735, 0),
            ("rbidiag", 12, 4): (0.005789154880303859, 0),
            ("bidiag", 8, 8): (0.014644620654039035, 441),
        }
        for alg, p, q, tree, machine in CONFIGS:
            schedule = SimulationEngine(machine, network="uniform").run(
                get_program(alg, p, q, tree)
            )
            makespan, messages = pins[(alg, p, q)]
            assert schedule.makespan == pytest.approx(makespan, rel=1e-13)
            assert schedule.messages == messages

    @pytest.mark.parametrize("alg,p,q,tree,machine", CONFIGS)
    def test_bitwise_equal_to_default_engine_and_legacy(self, alg, p, q, tree, machine):
        program = get_program(alg, p, q, tree)
        explicit = SimulationEngine(machine, network="uniform").run(program)
        default = SimulationEngine(machine).run(program)
        legacy = ListScheduler(machine).run(program.to_task_graph())
        assert explicit.makespan == default.makespan == legacy.makespan
        assert explicit.start == default.start == legacy.start
        assert explicit.messages == default.messages == legacy.messages
        assert explicit.comm_bytes == default.comm_bytes == legacy.comm_bytes

    SNIPPET = (
        "import sys; sys.path.insert(0, 'src')\n"
        "from repro.ir import get_program\n"
        "from repro.runtime.engine import SimulationEngine\n"
        "from repro.runtime.machine import Machine\n"
        "from repro.trees import FlatTTTree\n"
        "m = Machine(n_nodes=4, cores_per_node=4, tile_size=100)\n"
        "for network in ('uniform', 'alpha-beta'):\n"
        "    s = SimulationEngine(m, network=network).run(\n"
        "        get_program('bidiag', 8, 8, FlatTTTree()))\n"
        "    print(network, repr(s.makespan), s.messages, s.comm_bytes,\n"
        "          repr(s.comm_seconds))\n"
    )

    def _run(self, hash_seed):
        env = dict(os.environ, PYTHONHASHSEED=hash_seed)
        proc = subprocess.run(
            [sys.executable, "-c", self.SNIPPET],
            capture_output=True,
            text=True,
            env=env,
            cwd=__file__.rsplit("/tests/", 1)[0],
            check=True,
        )
        return proc.stdout

    @pytest.mark.slow
    def test_both_models_identical_across_hash_seeds(self):
        assert self._run("0") == self._run("12345")


class TestAlphaBeta:
    def test_golden_pin_multinode(self):
        """Absolute alpha-beta makespan on the 4-node shape (pinned at the
        time of the network PR; if this moves, message pricing changed)."""
        alg, p, q, tree, machine = CONFIGS[3]
        schedule = SimulationEngine(machine, network="alpha-beta").run(
            get_program(alg, p, q, tree)
        )
        assert schedule.makespan == pytest.approx(0.015389742174354865, rel=1e-13)
        assert schedule.messages == 441
        assert schedule.comm_bytes == 53_280_000

    @pytest.mark.parametrize("alg,p,q,tree,machine", CONFIGS)
    def test_message_counts_model_invariant(self, alg, p, q, tree, machine):
        program = get_program(alg, p, q, tree)
        uniform = SimulationEngine(machine, network="uniform").run(program)
        alphabeta = SimulationEngine(machine, network="alpha-beta").run(program)
        assert uniform.messages == alphabeta.messages
        assert uniform.messages_per_node == alphabeta.messages_per_node

    def test_single_node_models_agree_exactly(self):
        """Without cross-node edges there are no messages: the models are
        indistinguishable, bit for bit."""
        alg, p, q, tree, machine = CONFIGS[0]
        program = get_program(alg, p, q, tree)
        uniform = SimulationEngine(machine, network="uniform").run(program)
        alphabeta = SimulationEngine(machine, network="alpha-beta").run(program)
        assert uniform.makespan == alphabeta.makespan
        assert alphabeta.messages == 0
        assert alphabeta.comm_seconds == 0.0

    def test_nic_injection_serializes_concurrent_sends(self):
        """Two messages leaving node 0 at the same instant queue behind each
        other on the NIC: the second consumer starts one injection later."""
        machine, engine = _three_node_engine(AlphaBetaNetwork())
        schedule = engine.run(_chain_graph())
        assert schedule.messages == 2
        n_bytes = machine.tile_bytes // 2  # one written half
        first = schedule.start[1]
        second = schedule.start[2]
        gap = abs(second - first)
        assert gap == pytest.approx(machine.injection_seconds(n_bytes), rel=1e-12)
        assert schedule.comm_time_per_node == pytest.approx(
            [2 * machine.injection_seconds(n_bytes), 0.0, 0.0]
        )
        assert schedule.messages_per_node == [2, 0, 0]

    def test_rendezvous_handshake_slows_transfers(self):
        machine, eager_engine = _three_node_engine(AlphaBetaNetwork(eager=True))
        _, rendezvous_engine = _three_node_engine(AlphaBetaNetwork(eager=False))
        eager = eager_engine.run(_chain_graph())
        rendezvous = rendezvous_engine.run(_chain_graph())
        assert rendezvous.makespan > eager.makespan
        # The handshake is one round trip before injection.
        assert rendezvous.start[1] - eager.start[1] == pytest.approx(
            2 * machine.alpha_seconds, rel=1e-12
        )

    def test_payload_scales_with_tile_size(self):
        """Bandwidth cost scales with nb: 2x the tile size, 4x the bytes."""
        graph = _chain_graph()
        small, small_engine = _three_node_engine(AlphaBetaNetwork(), tile_size=100)
        large, large_engine = _three_node_engine(AlphaBetaNetwork(), tile_size=200)
        s_small = small_engine.run(graph)
        s_large = large_engine.run(graph)
        assert s_large.comm_bytes == 4 * s_small.comm_bytes
        model = AlphaBetaNetwork()
        op = Program.from_task_graph(graph).ops[0]
        assert model.message_bytes(op, large) == 4 * model.message_bytes(op, small)

    def test_transfer_cached_per_destination_node(self):
        """Two consumers of the same producer on the *same* remote node pay
        for one message (the runtime caches remote tiles)."""
        graph = TaskGraph()
        graph.add_task(Task(0, KernelName.GEQRT, (0,), frozenset(),
                            frozenset({("U", 0, 0)}), 4, (0, 0)))
        graph.add_task(Task(1, KernelName.GEQRT, (1,), frozenset({("U", 0, 0)}),
                            frozenset({("U", 1, 0)}), 4, (1, 0)))
        graph.add_task(Task(2, KernelName.GEQRT, (2,), frozenset({("U", 0, 0)}),
                            frozenset({("U", 3, 0)}), 4, (3, 0)))
        graph.add_edge(0, 1)
        graph.add_edge(0, 2)
        machine = Machine(n_nodes=2, cores_per_node=2, tile_size=100)
        distribution = BlockCyclicDistribution(ProcessGrid(2, 1))
        for network in NETWORK_MODELS:
            schedule = SimulationEngine(
                machine, distribution, network=network
            ).run(graph)
            assert schedule.messages == 1, network


class TestSeenTransfersDedupAudit:
    """Satellite audit of the engine's transfer dedup.

    The dedup key is (producer *op id*, destination node) — not the tile —
    so a tile re-produced by a later op is a new producer and correctly
    re-triggers a transfer.  These regression tests pin that behaviour
    against both the engine (both network models) and the static analysis.
    """

    @staticmethod
    def _reproduced_tile_graph():
        """Tile (0,0) is written twice (tasks 0 and 2); after each write a
        task on the other node consumes it."""
        graph = TaskGraph()
        graph.add_task(Task(0, KernelName.GEQRT, (0,), frozenset(),
                            frozenset({("U", 0, 0)}), 4, (0, 0)))
        graph.add_task(Task(1, KernelName.GEQRT, (1,), frozenset({("U", 0, 0)}),
                            frozenset({("U", 1, 0)}), 4, (1, 0)))
        graph.add_task(Task(2, KernelName.GEQRT, (2,), frozenset({("U", 1, 0)}),
                            frozenset({("U", 0, 0)}), 4, (0, 0)))
        graph.add_task(Task(3, KernelName.GEQRT, (3,), frozenset({("U", 0, 0)}),
                            frozenset({("U", 3, 0)}), 4, (1, 0)))
        graph.add_edge(0, 1)
        graph.add_edge(1, 2)
        graph.add_edge(2, 3)
        return graph

    @pytest.mark.parametrize("network", sorted(NETWORK_MODELS))
    def test_reproduced_tile_retriggers_transfer(self, network):
        graph = self._reproduced_tile_graph()
        machine = Machine(n_nodes=2, cores_per_node=2, tile_size=100)
        distribution = BlockCyclicDistribution(ProcessGrid(2, 1))
        schedule = SimulationEngine(machine, distribution, network=network).run(graph)
        # 0 -> 1 crosses (node 0 to 1), 1 -> 2 crosses back, 2 -> 3 crosses
        # again: three distinct producers, three messages — the second write
        # of tile (0,0) is NOT swallowed by the dedup of the first.
        assert schedule.messages == 3
        static = communication_volume(graph, distribution)
        assert static.messages == 3

    def test_static_and_engine_agree_on_program_form(self):
        program = Program.from_task_graph(self._reproduced_tile_graph())
        machine = Machine(n_nodes=2, cores_per_node=2, tile_size=100)
        distribution = BlockCyclicDistribution(ProcessGrid(2, 1))
        schedule = SimulationEngine(
            machine, distribution, network="alpha-beta"
        ).run(program)
        stats = engine_communication_check(schedule, program, distribution)
        assert stats.messages == schedule.messages == 3


class TestEngineMatchesStaticAnalysis:
    @pytest.mark.parametrize("network", sorted(NETWORK_MODELS))
    @pytest.mark.parametrize("policy", ["list", "critical-path", "locality", "fifo"])
    def test_exact_message_agreement(self, network, policy):
        machine = Machine(n_nodes=4, cores_per_node=4, tile_size=100)
        distribution = BlockCyclicDistribution(ProcessGrid(2, 2))
        program = get_program("bidiag", 8, 8, FlatTTTree())
        schedule = run_policy(
            program, machine, policy=policy, distribution=distribution,
            network=network,
        )
        stats = engine_communication_check(schedule, program, distribution)
        assert sum(stats.per_node_sent) == schedule.messages

    def test_mismatch_is_detected(self):
        machine = Machine(n_nodes=4, cores_per_node=4, tile_size=100)
        distribution = BlockCyclicDistribution(ProcessGrid(2, 2))
        program = get_program("bidiag", 6, 6, GreedyTree())
        schedule = SimulationEngine(machine, distribution).run(program)
        broken = type(schedule)(
            makespan=schedule.makespan,
            start=schedule.start,
            finish=schedule.finish,
            node_of_task=schedule.node_of_task,
            busy_time_per_node=schedule.busy_time_per_node,
            messages=schedule.messages + 1,
            comm_bytes=schedule.comm_bytes,
        )
        with pytest.raises(ValueError, match="static"):
            engine_communication_check(broken, program, distribution)


class TestRegistryAndLayers:
    def test_get_network_model(self):
        model = get_network_model("alpha-beta")
        assert isinstance(model, AlphaBetaNetwork)
        assert get_network_model(model) is model
        assert isinstance(get_network_model("uniform"), UniformNetwork)
        assert not get_network_model("alpha-beta", eager=False).eager
        with pytest.raises(ValueError):
            get_network_model("carrier-pigeon")
        # kwargs with an instance would be silently dropped: reject them.
        with pytest.raises(ValueError, match="keyword"):
            get_network_model(AlphaBetaNetwork(), eager=False)

    def test_available_networks_listing(self):
        listing = available_networks()
        assert [name for name, _ in listing] == sorted(NETWORK_MODELS)
        assert all(desc for _, desc in listing)

    def test_plan_validates_network(self):
        from repro.api import SvdPlan

        plan = SvdPlan(m=40, n=40, network="ALPHA-BETA")
        assert plan.network == "alpha-beta"
        assert plan.describe()["network"] == "alpha-beta"
        with pytest.raises(ValueError, match="network"):
            SvdPlan(m=40, n=40, network="smoke-signals")

    def test_execute_rows_carry_network(self):
        from repro.api import SvdPlan, execute

        plan = SvdPlan(m=400, n=400, stage="ge2bnd", tile_size=50,
                       n_cores=2, n_nodes=4, network="alpha-beta")
        row = execute(plan, backend="simulate").to_row()
        assert row["network"] == "alpha-beta"
        assert row["messages"] > 0
        assert row["comm_seconds"] > 0

    def test_comm_time_objective_registered(self):
        from repro.api import SvdPlan
        from repro.api.resolver import resolve
        from repro.tuning import OBJECTIVES, get_objective

        assert "comm-time" in OBJECTIVES
        objective = get_objective("comm-time")
        multi = resolve(SvdPlan(m=400, n=400, stage="ge2bnd", tile_size=50,
                                n_cores=2, n_nodes=4, network="alpha-beta"))
        single = resolve(SvdPlan(m=400, n=400, stage="ge2bnd", tile_size=50,
                                 n_cores=2, network="alpha-beta"))
        assert objective.score(multi) > 0.0
        assert objective.score(single) == 0.0

    def test_network_sweep_experiment(self):
        from repro.experiments.registry import run_experiment

        rows = run_experiment(
            "network-sweep", m=800, n=800, tile_size=100, n_cores=2, n_nodes=4
        )
        assert {row["network"] for row in rows} == {"uniform", "alpha-beta"}
        assert {row["tree"] for row in rows} == {"flatts", "greedy"}
        by_tree = {}
        for row in rows:
            by_tree.setdefault(row["tree"], set()).add(row["messages"])
        # Message counts are a property of the DAG + distribution, not of
        # the network model.
        for tree, counts in by_tree.items():
            assert len(counts) == 1, tree


class TestCli:
    def test_networks_listing(self, capsys):
        assert main(["networks"]) == 0
        out = capsys.readouterr().out
        for name in NETWORK_MODELS:
            assert name in out

    @pytest.mark.parametrize("network", sorted(NETWORK_MODELS))
    def test_simulate_with_network(self, capsys, network):
        assert main(["simulate", "1000", "1000", "--nb", "100", "--cores", "2",
                     "--nodes", "4", "--network", network]) == 0
        out = capsys.readouterr().out
        assert f"network        : {network}" in out

    def test_plan_simulate_with_network(self, capsys):
        assert main(["plan", "--m", "400", "--n", "400", "--tile-size", "50",
                     "--backend", "simulate", "--nodes", "4",
                     "--network", "alpha-beta"]) == 0
        assert "network        : alpha-beta" in capsys.readouterr().out
