"""Integration tests: tiled QR and LQ factorizations with every tree."""

import numpy as np
import pytest

from repro.algorithms.tiled_lq import tiled_lq
from repro.algorithms.tiled_qr import tiled_qr
from repro.tiles.matrix import TiledMatrix
from repro.trees import AutoTree, FibonacciTree, FlatTSTree, FlatTTTree, GreedyTree

TREES = [FlatTSTree(), FlatTTTree(), GreedyTree(), FibonacciTree(), AutoTree(n_cores=4)]


def _sv(a):
    return np.linalg.svd(a, compute_uv=False)


class TestTiledQR:
    @pytest.mark.parametrize("tree", TREES, ids=lambda t: type(t).__name__)
    @pytest.mark.parametrize("shape,nb", [((16, 16), 4), ((24, 12), 4), ((18, 10), 4), ((13, 7), 3)])
    def test_qr_structure_and_values(self, tree, shape, nb, rng):
        a = rng.standard_normal(shape)
        mat = TiledMatrix.from_dense(a, nb)
        result = tiled_qr(mat, tree, check_plan=True)
        r = result.to_dense()
        # Strictly-lower part is zero (within roundoff).
        assert np.max(np.abs(np.tril(r, -1))) < 1e-10
        # Orthogonal transformations preserve singular values.
        np.testing.assert_allclose(_sv(r), _sv(a), atol=1e-10 * np.linalg.norm(a))

    def test_qr_r_matches_reference_up_to_signs(self, rng):
        a = rng.standard_normal((12, 8))
        mat = TiledMatrix.from_dense(a, 4)
        tiled_qr(mat, GreedyTree())
        r_tiled = mat.to_dense()[:8, :8]
        r_ref = np.linalg.qr(a, mode="r")
        np.testing.assert_allclose(np.abs(r_tiled), np.abs(r_ref), atol=1e-10)

    def test_single_tile(self, rng):
        a = rng.standard_normal((3, 3))
        mat = TiledMatrix.from_dense(a, 4)
        tiled_qr(mat, FlatTSTree())
        np.testing.assert_allclose(np.tril(mat.to_dense(), -1), 0.0, atol=1e-12)

    def test_returns_same_matrix_object(self, rng):
        mat = TiledMatrix.from_dense(rng.standard_normal((8, 8)), 4)
        assert tiled_qr(mat, FlatTSTree()) is mat

    def test_default_tree(self, rng):
        a = rng.standard_normal((8, 8))
        mat = TiledMatrix.from_dense(a, 4)
        tiled_qr(mat)
        np.testing.assert_allclose(_sv(mat.to_dense()), _sv(a), atol=1e-10)


class TestTiledLQ:
    @pytest.mark.parametrize("tree", TREES, ids=lambda t: type(t).__name__)
    @pytest.mark.parametrize("shape,nb", [((12, 12), 4), ((8, 20), 4), ((7, 13), 3)])
    def test_lq_structure_and_values(self, tree, shape, nb, rng):
        a = rng.standard_normal(shape)
        mat = TiledMatrix.from_dense(a, nb)
        tiled_lq(mat, tree, check_plan=True)
        lower = mat.to_dense()
        assert np.max(np.abs(np.triu(lower, 1))) < 1e-10
        np.testing.assert_allclose(_sv(lower), _sv(a), atol=1e-10 * np.linalg.norm(a))

    def test_lq_matches_qr_of_transpose(self, rng):
        a = rng.standard_normal((8, 12))
        mat = TiledMatrix.from_dense(a, 4)
        tiled_lq(mat, GreedyTree())
        lower = mat.to_dense()[:8, :8]
        r_ref = np.linalg.qr(a.T, mode="r")
        np.testing.assert_allclose(np.abs(lower), np.abs(r_ref.T), atol=1e-10)


class TestStepErrors:
    def test_qr_step_out_of_range(self, rng):
        from repro.algorithms.executor import NumericExecutor
        from repro.algorithms.tiled_qr import qr_step

        mat = TiledMatrix.from_dense(rng.standard_normal((8, 8)), 4)
        with pytest.raises(ValueError):
            qr_step(NumericExecutor(mat), 5, FlatTSTree())

    def test_lq_step_out_of_range(self, rng):
        from repro.algorithms.executor import NumericExecutor
        from repro.algorithms.tiled_lq import lq_step

        mat = TiledMatrix.from_dense(rng.standard_normal((8, 8)), 4)
        with pytest.raises(ValueError):
            lq_step(NumericExecutor(mat), 7, FlatTSTree())
