"""Unit tests for the TiledMatrix container."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.tiles.matrix import TiledMatrix


class TestConstruction:
    def test_from_dense_round_trip(self, rng):
        a = rng.standard_normal((13, 9))
        mat = TiledMatrix.from_dense(a, 4)
        assert mat.shape == (13, 9)
        assert mat.tile_shape == (4, 3)
        np.testing.assert_allclose(mat.to_dense(), a)

    def test_zeros(self):
        mat = TiledMatrix.zeros(6, 4, 3)
        assert mat.norm_fro() == 0.0
        np.testing.assert_array_equal(mat.to_dense(), np.zeros((6, 4)))

    def test_rejects_non_2d(self):
        with pytest.raises(ValueError):
            TiledMatrix.from_dense(np.zeros(5), 2)

    def test_edge_tiles_have_correct_shape(self, rng):
        a = rng.standard_normal((7, 5))
        mat = TiledMatrix.from_dense(a, 3)
        assert mat[2, 1].shape == (1, 2)
        assert mat[0, 0].shape == (3, 3)


class TestAccess:
    def test_get_set_tile(self, rng):
        mat = TiledMatrix.zeros(6, 6, 3)
        block = rng.standard_normal((3, 3))
        mat[1, 0] = block
        np.testing.assert_allclose(mat[1, 0], block)
        np.testing.assert_allclose(mat.to_dense()[3:6, 0:3], block)

    def test_set_wrong_shape(self):
        mat = TiledMatrix.zeros(6, 6, 3)
        with pytest.raises(ValueError):
            mat[0, 0] = np.zeros((2, 2))

    def test_bad_index_type(self):
        mat = TiledMatrix.zeros(6, 6, 3)
        with pytest.raises(TypeError):
            _ = mat[0]

    def test_out_of_range_index(self):
        mat = TiledMatrix.zeros(6, 6, 3)
        with pytest.raises(IndexError):
            _ = mat[2, 0]

    def test_tiles_iterator(self):
        mat = TiledMatrix.zeros(6, 4, 3)
        coords = [ij for ij, _ in mat.tiles()]
        assert coords == [(0, 0), (0, 1), (1, 0), (1, 1)]


class TestOperations:
    def test_copy_is_deep(self, rng):
        a = rng.standard_normal((6, 6))
        mat = TiledMatrix.from_dense(a, 3)
        dup = mat.copy()
        dup[0, 0][:] = 0.0
        np.testing.assert_allclose(mat.to_dense(), a)

    def test_norm_matches_numpy(self, rng):
        a = rng.standard_normal((11, 7))
        mat = TiledMatrix.from_dense(a, 4)
        assert mat.norm_fro() == pytest.approx(np.linalg.norm(a))

    def test_submatrix(self, rng):
        a = rng.standard_normal((12, 8))
        mat = TiledMatrix.from_dense(a, 4)
        sub = mat.submatrix(2, 2)
        np.testing.assert_allclose(sub.to_dense(), a[:8, :8])

    def test_submatrix_out_of_range(self):
        mat = TiledMatrix.zeros(8, 8, 4)
        with pytest.raises(ValueError):
            mat.submatrix(3, 1)

    @settings(max_examples=25, deadline=None)
    @given(
        m=st.integers(min_value=1, max_value=40),
        n=st.integers(min_value=1, max_value=40),
        nb=st.integers(min_value=1, max_value=10),
    )
    def test_property_round_trip(self, m, n, nb):
        rng = np.random.default_rng(m * 1000 + n * 10 + nb)
        a = rng.standard_normal((m, n))
        mat = TiledMatrix.from_dense(a, nb)
        np.testing.assert_allclose(mat.to_dense(), a)
