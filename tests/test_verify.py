"""Unit tests for the static verification subsystem (repro.verify).

Covers the kernel-semantics oracle, the dataflow verifier, the schedule
sanitizer (including a synthetic NIC-overload trigger), the determinism
lint, the ``REPRO_VERIFY=1`` hooks and the ``repro verify`` CLI.  The
exhaustive mutation-injection coverage lives in
``tests/test_verify_mutations.py``.
"""

import json
from dataclasses import replace

import pytest

from repro import cli
from repro.ir.compiler import compile_program, get_program
from repro.ir.program import Op, Program
from repro.kernels.costs import KERNEL_WEIGHTS, KernelName
from repro.runtime.engine import SimulationEngine
from repro.runtime.machine import Machine
from repro.runtime.network import get_network_model
from repro.runtime.scheduler import Schedule
from repro.tiles.distribution import BlockCyclicDistribution, ProcessGrid
from repro.trees.flat import FlatTSTree, FlatTTTree
from repro.trees.greedy import GreedyTree
from repro.verify import (
    VerificationError,
    kernel_access_sets,
    verify_program,
    verify_schedule,
)
from repro.verify import hooks
from repro.verify.findings import Finding, VerificationReport
from repro.verify.lint import lint_paths, lint_source
from repro.verify.semantics import KERNEL_ARITY, kernel_owner_tile


def _mk_op(index, kernel, params, owner_tile=None):
    """Build an Op whose access sets follow the oracle semantics."""
    reads, writes = kernel_access_sets(kernel, params)
    return Op(
        index=index,
        kernel=kernel,
        params=params,
        reads=reads,
        writes=writes,
        weight=KERNEL_WEIGHTS[kernel],
        owner_tile=owner_tile or kernel_owner_tile(kernel, params),
    )


# --------------------------------------------------------------------------- #
# Kernel semantics oracle
# --------------------------------------------------------------------------- #
class TestSemantics:
    def test_arity_validation(self):
        with pytest.raises(ValueError, match="tile indices"):
            kernel_access_sets(KernelName.GEQRT, (0, 0, 0))
        with pytest.raises(ValueError, match="tile indices"):
            kernel_owner_tile(KernelName.TSMQR, (0, 1))

    def test_every_kernel_has_semantics(self):
        for kernel in KernelName:
            params = tuple(range(KERNEL_ARITY[kernel]))
            reads, writes = kernel_access_sets(kernel, params)
            assert writes, f"{kernel} writes nothing"
            assert kernel_owner_tile(kernel, params)

    def test_geqrt_writes_both_halves(self):
        reads, writes = kernel_access_sets(KernelName.GEQRT, (2, 1))
        assert reads == frozenset()
        assert writes == frozenset({("U", 2, 1), ("L", 2, 1)})

    def test_ttqrt_spares_killed_lower_half(self):
        # TT reflectors live in the *upper* half of the killed tile: the
        # lower half (GEQRT reflectors) must not be written, which is what
        # lets TTQRT overlap the UNMQR updates of the same row.
        _reads, writes = kernel_access_sets(KernelName.TTQRT, (0, 3, 1))
        assert ("L", 3, 1) not in writes
        assert writes == frozenset({("U", 0, 1), ("U", 3, 1)})

    def test_ttlqt_mirrors_ttqrt(self):
        _reads, writes = kernel_access_sets(KernelName.TTLQT, (0, 3, 1))
        assert writes == frozenset({("L", 1, 0), ("L", 1, 3)})

    def test_recorder_agrees_with_semantics(self):
        # The compiled op stream (recorder path) must match the independent
        # semantics op by op — the core cross-validation of this subsystem.
        program = compile_program("rbidiag", 4, 3, GreedyTree())
        for op in program.ops:
            reads, writes = kernel_access_sets(op.kernel, op.params)
            assert op.reads == reads, op
            assert op.writes == writes, op
            assert op.owner_tile == kernel_owner_tile(op.kernel, op.params)


# --------------------------------------------------------------------------- #
# Dataflow verifier
# --------------------------------------------------------------------------- #
class TestProgramVerifier:
    @pytest.mark.parametrize(
        "algorithm,tree",
        [
            ("qr", GreedyTree()),
            ("bidiag", FlatTSTree()),
            ("bidiag", GreedyTree()),
            ("rbidiag", FlatTTTree()),
        ],
    )
    def test_clean_programs_report_zero_findings(self, algorithm, tree):
        program = compile_program(algorithm, 5, 4, tree)
        report = verify_program(program)
        assert report.ok, report.summary(None)
        assert report.checked > len(program)

    def test_missing_edge_is_a_data_race_finding(self):
        program = compile_program("bidiag", 4, 3, GreedyTree())
        pred_lists = [list(program.predecessors(i)) for i in range(len(program))]
        victim = max(i for i in range(len(program)) if pred_lists[i])
        dropped = pred_lists[victim].pop()
        mutated = Program(list(program.ops), pred_lists)
        report = verify_program(mutated)
        assert not report.ok
        assert any(
            f.code == "P-MISSING-EDGE" and f.op == victim and f.other == dropped
            for f in report.findings
        ), report.summary(None)

    def test_spurious_edge_detected(self):
        program = compile_program("bidiag", 4, 3, GreedyTree())
        pred_lists = [list(program.predecessors(i)) for i in range(len(program))]
        # Give the last op a dependency on op 0 it does not need.
        victim = len(program) - 1
        assert 0 not in pred_lists[victim]
        pred_lists[victim] = sorted(pred_lists[victim] + [0])
        report = verify_program(Program(list(program.ops), pred_lists))
        assert report.count("P-SPURIOUS-EDGE") == 1
        assert report.count("P-MISSING-EDGE") == 0

    def test_duplicate_edge_is_a_topology_finding(self):
        program = compile_program("qr", 4, 4, GreedyTree())
        pred_lists = [list(program.predecessors(i)) for i in range(len(program))]
        victim = max(i for i in range(len(program)) if pred_lists[i])
        pred_lists[victim].append(pred_lists[victim][-1])  # duplicate, unsorted
        report = verify_program(Program(list(program.ops), pred_lists))
        assert report.count("P-TOPOLOGY") >= 1

    def test_use_before_write_detected(self):
        # A lone UNMQR reads reflectors no kernel ever produced.
        op = _mk_op(0, KernelName.UNMQR, (0, 0, 1))
        report = verify_program(Program([op], [[]]))
        assert report.count("P-USE-BEFORE-WRITE") == 1
        assert report.count("P-MISSING-EDGE") == 0

    def test_wrong_owner_tile_detected(self):
        program = compile_program("bidiag", 4, 3, GreedyTree())
        ops = list(program.ops)
        pred_lists = [list(program.predecessors(i)) for i in range(len(program))]
        bad = replace(ops[3], owner_tile=(ops[3].owner_tile[0] + 1, 0))
        ops[3] = bad
        report = verify_program(Program(ops, pred_lists))
        assert report.count("P-OWNER-TILE") == 1

    def test_wrong_access_set_detected(self):
        program = compile_program("bidiag", 4, 3, GreedyTree())
        ops = list(program.ops)
        pred_lists = [list(program.predecessors(i)) for i in range(len(program))]
        bad = replace(ops[5], reads=ops[5].reads | {("U", 0, 0)})
        ops[5] = bad
        report = verify_program(Program(ops, pred_lists))
        assert any(
            f.code == "P-ACCESS-SET" and f.op == 5 for f in report.findings
        ), report.summary(None)

    def test_malformed_params_reported_not_raised(self):
        op = _mk_op(0, KernelName.GEQRT, (0, 0))
        bad = replace(op, params=(0,))
        report = verify_program(Program([bad], [[]]))
        assert report.count("P-ACCESS-SET") == 1


# --------------------------------------------------------------------------- #
# Schedule sanitizer
# --------------------------------------------------------------------------- #
class TestScheduleSanitizer:
    @pytest.fixture(scope="class")
    def setup(self):
        program = compile_program("bidiag", 5, 4, GreedyTree())
        machine = Machine(n_nodes=4, cores_per_node=2)
        engine = SimulationEngine(machine)
        schedule = engine.run(program)
        return program, machine, engine, schedule

    def test_clean_schedule_accepted(self, setup):
        program, machine, engine, schedule = setup
        report = verify_schedule(
            schedule, program, machine, distribution=engine.distribution
        )
        assert report.ok, report.summary(None)

    def test_shape_violation_short_circuits(self, setup):
        program, machine, engine, schedule = setup
        bad = replace(schedule, start=schedule.start[:-1])
        report = verify_schedule(
            bad, program, machine, distribution=engine.distribution
        )
        assert report.codes() == {"S-SHAPE": 1}

    def test_negative_start_detected(self, setup):
        program, machine, engine, schedule = setup
        start = list(schedule.start)
        src = next(i for i in range(len(start)) if start[i] == 0.0)
        durations = machine.kernel_duration_table()[
            program.kernel_codes_np
        ].tolist()
        start[src] = -1.0
        finish = list(schedule.finish)
        finish[src] = start[src] + durations[src]
        bad = replace(schedule, start=start, finish=finish)
        report = verify_schedule(
            bad, program, machine, distribution=engine.distribution
        )
        assert report.count("S-TIME-RANGE") == 1

    def test_nic_overload_detected(self):
        # Synthetic two-node scenario: two producers on node 0 whose remote
        # consumers start exactly at the no-contention arrival bound — the
        # two NIC injections cannot both fit before their wire deadlines.
        machine = Machine(n_nodes=2, cores_per_node=2)
        network = get_network_model("alpha-beta")
        grid = ProcessGrid(1, 2)
        dist = BlockCyclicDistribution(grid)
        ops = [
            _mk_op(0, KernelName.GEQRT, (0, 0)),
            _mk_op(1, KernelName.GEQRT, (1, 0)),
            _mk_op(2, KernelName.UNMQR, (0, 0, 1)),
            _mk_op(3, KernelName.UNMQR, (1, 0, 1)),
        ]
        program = Program(ops, [[], [], [0], [1]])
        node_of = [dist.owner(*op.owner_tile) for op in ops]
        assert node_of == [0, 0, 1, 1]
        durations = machine.kernel_duration_table()[
            program.kernel_codes_np
        ].tolist()
        handshake = network.handshake_seconds(machine)
        from repro.runtime.network import resolved_message_bytes_vector

        nbytes = resolved_message_bytes_vector(network, program, machine)
        wire = [network.message_seconds(int(b), machine) for b in nbytes]
        inj = [machine.injection_seconds(int(b)) for b in nbytes]
        assert min(inj) > 0
        start = [0.0, 0.0, 0.0, 0.0]
        finish = [durations[0], durations[1], 0.0, 0.0]
        # Both consumers start exactly at the contention-free arrival bound.
        start[2] = (finish[0] + handshake) + wire[0]
        start[3] = (finish[1] + handshake) + wire[1]
        finish[2] = start[2] + durations[2]
        finish[3] = start[3] + durations[3]
        schedule = Schedule(
            makespan=max(finish),
            start=start,
            finish=finish,
            node_of_task=node_of,
            busy_time_per_node=[
                durations[0] + durations[1],
                durations[2] + durations[3],
            ],
            messages=2,
            comm_bytes=int(nbytes[0]) + int(nbytes[1]),
            core_of_task=[0, 1, 0, 1],
            comm_time_per_node=[inj[0] + inj[1], 0.0],
            messages_per_node=[2, 0],
        )
        report = verify_schedule(
            schedule,
            program,
            machine,
            distribution=dist,
            network=network,
        )
        assert report.codes() == {"S-NIC-OVERLOAD": 1}, report.summary(None)

    def test_empty_program_schedule_ok(self):
        machine = Machine(n_nodes=2, cores_per_node=2)
        engine = SimulationEngine(machine)
        program = Program([], [])
        schedule = engine.run(program)
        report = verify_schedule(
            schedule, program, machine, distribution=engine.distribution
        )
        assert report.ok, report.summary(None)


# --------------------------------------------------------------------------- #
# Findings / report plumbing
# --------------------------------------------------------------------------- #
class TestReport:
    def test_summary_and_rows(self):
        report = VerificationReport(subject="unit")
        report.add("P-MISSING-EDGE", "lost", op=3, other=1)
        report.add("S-MAKESPAN", "wrong")
        assert not report.ok
        assert report.codes() == {"P-MISSING-EDGE": 1, "S-MAKESPAN": 1}
        assert "[op 3 <- 1]" in str(report.findings[0])
        rows = report.to_rows()
        assert rows[0]["subject"] == "unit"
        assert rows[1]["op"] == -1
        with pytest.raises(VerificationError) as err:
            report.raise_if_failed()
        assert err.value.report is report
        assert isinstance(err.value, AssertionError)

    def test_summary_limit(self):
        report = VerificationReport(subject="unit")
        for i in range(15):
            report.add("S-DURATION", f"bad {i}", op=i)
        text = report.summary(limit=10)
        assert "and 5 more" in text
        assert len(report.summary(None).splitlines()) == 16

    def test_extend_folds_counts(self):
        a = VerificationReport(subject="a", checked=3)
        b = VerificationReport(subject="b", checked=4)
        b.add("S-OWNER", "x")
        a.extend(b)
        assert a.checked == 7
        assert a.count("S-OWNER") == 1

    def test_finding_str_without_op(self):
        assert str(Finding("S-MAKESPAN", "off")) == "S-MAKESPAN: off"


# --------------------------------------------------------------------------- #
# Determinism lint
# --------------------------------------------------------------------------- #
CORE = "src/repro/ir/synthetic.py"
OUTSIDE = "src/repro/analysis/synthetic.py"
ENGINE = "src/repro/runtime/synthetic.py"


class TestLint:
    def _codes(self, path, source):
        return [f.code for f in lint_source(path, source)]

    def test_set_literal_iteration_flagged_in_core(self):
        src = "for x in {1, 2, 3}:\n    print(x)\n"
        assert self._codes(CORE, src) == ["DTM001"]
        assert self._codes(OUTSIDE, src) == []

    def test_sorted_iteration_clean(self):
        src = "s = {1, 2}\nfor x in sorted(s):\n    print(x)\n"
        assert self._codes(CORE, src) == []

    def test_annotated_parameter_tracked(self):
        src = (
            "from typing import FrozenSet\n"
            "def f(items: FrozenSet[int]):\n"
            "    return [i for i in items]\n"
        )
        assert self._codes(CORE, src) == ["DTM001"]

    def test_set_algebra_tracked(self):
        src = (
            "def f(a: set, b: set):\n"
            "    for x in a - b:\n"
            "        print(x)\n"
        )
        assert self._codes(CORE, src) == ["DTM001"]

    def test_self_attribute_tracked(self):
        src = (
            "class G:\n"
            "    def __init__(self):\n"
            "        self._edges = set()\n"
            "    def walk(self):\n"
            "        return [e for e in self._edges]\n"
        )
        assert self._codes(CORE, src) == ["DTM001"]

    def test_suppression_comment(self):
        src = "for x in {1, 2}:  # dtm: allow\n    print(x)\n"
        assert self._codes(CORE, src) == []

    def test_id_ordering_flagged_everywhere(self):
        src = "xs = sorted(objs, key=lambda o: id(o))\n"
        assert self._codes(OUTSIDE, src) == ["DTM002"]
        assert self._codes(CORE, src) == ["DTM002"]
        assert self._codes(OUTSIDE, "ok = id(a) < id(b)\n") == ["DTM002"]
        # Plain identity use is not ordering.
        assert self._codes(OUTSIDE, "same = id(a) == id(b)\n") == []

    def test_wall_clock_flagged_in_engine_only(self):
        src = "import time\nt = time.perf_counter()\n"
        assert self._codes(ENGINE, src) == ["DTM003"]
        assert self._codes(OUTSIDE, src) == []
        src2 = "from time import monotonic\nt = monotonic()\n"
        assert self._codes(ENGINE, src2) == ["DTM003"]
        src3 = "from datetime import datetime\nt = datetime.now()\n"
        assert self._codes(ENGINE, src3) == ["DTM003"]

    def test_dict_iteration_not_flagged(self):
        # dicts preserve insertion order: deterministic when insertions are.
        src = "d = {}\nfor k in d:\n    print(k)\n"
        assert self._codes(CORE, src) == []

    def test_syntax_error_reported(self):
        assert self._codes(CORE, "def f(:\n") == ["DTM000"]

    def test_repository_tree_is_clean(self):
        findings = lint_paths(["src"])
        assert findings == [], "\n".join(str(f) for f in findings)


# --------------------------------------------------------------------------- #
# REPRO_VERIFY hooks
# --------------------------------------------------------------------------- #
class TestHooks:
    def test_disabled_by_default(self, monkeypatch):
        monkeypatch.delenv(hooks.ENV_VAR, raising=False)
        assert not hooks.verify_enabled()
        monkeypatch.setenv(hooks.ENV_VAR, "0")
        assert not hooks.verify_enabled()
        monkeypatch.setenv(hooks.ENV_VAR, "1")
        assert hooks.verify_enabled()

    def test_check_program_raises_on_mutation(self):
        program = compile_program("bidiag", 4, 3, GreedyTree())
        hooks.check_program(program)  # clean: no raise
        pred_lists = [list(program.predecessors(i)) for i in range(len(program))]
        victim = max(i for i in range(len(program)) if pred_lists[i])
        pred_lists[victim].pop()
        with pytest.raises(VerificationError, match="P-MISSING-EDGE"):
            hooks.check_program(Program(list(program.ops), pred_lists))

    def test_engine_and_cache_hooks_pass_clean(self, monkeypatch):
        monkeypatch.setenv(hooks.ENV_VAR, "1")
        machine = Machine(n_nodes=2, cores_per_node=2)
        program = get_program("bidiag", 4, 3, GreedyTree(), cache=False)
        for network in ("uniform", "alpha-beta"):
            engine = SimulationEngine(machine, network=network)
            schedule = engine.run(program)
            assert schedule.makespan > 0

    def test_engine_hook_raises_on_defective_schedule(self, monkeypatch):
        # Force the engine to emit a corrupt schedule by patching the fast
        # path, and check the exit hook catches it.
        monkeypatch.setenv(hooks.ENV_VAR, "1")
        machine = Machine(n_nodes=2, cores_per_node=2)
        program = get_program("bidiag", 4, 3, GreedyTree(), cache=False)
        engine = SimulationEngine(machine)
        real = engine._run_fast

        def corrupt(prog, node_of_op):
            schedule = real(prog, node_of_op)
            return replace(schedule, makespan=schedule.makespan * 2.0)

        monkeypatch.setattr(engine, "_run_fast", corrupt)
        with pytest.raises(VerificationError, match="S-MAKESPAN"):
            engine.run(program)


# --------------------------------------------------------------------------- #
# CLI
# --------------------------------------------------------------------------- #
class TestVerifyCli:
    ARGS = ["verify", "320", "240", "--nb", "80", "--nodes", "2", "--cores", "2"]

    def test_clean_plan_exits_zero(self, capsys):
        assert cli.main(self.ARGS) == 0
        out = capsys.readouterr().out
        assert "PASS" in out

    def test_all_policies_all_networks(self, capsys):
        rc = cli.main(self.ARGS + ["--all-policies", "--all-networks"])
        assert rc == 0
        out = capsys.readouterr().out
        # 6 policies x 2 networks + the program report.
        assert out.count("schedule[") == 12

    @pytest.mark.parametrize(
        "defect,code",
        [
            ("drop-edge", "P-MISSING-EDGE"),
            ("perturb-start", "S-DURATION"),
            ("swap-owner", "S-OWNER"),
        ],
    )
    def test_injected_defect_exits_nonzero(self, capsys, tmp_path, defect, code):
        out_file = tmp_path / "report.json"
        rc = cli.main(
            self.ARGS + ["--inject-defect", defect, "--json", str(out_file)]
        )
        assert rc == 1
        assert code in capsys.readouterr().out
        payload = json.loads(out_file.read_text())
        assert payload["ok"] is False
        assert any(
            f["code"] == code
            for r in payload["reports"]
            for f in r["findings"]
        )

    def test_json_report_on_clean_plan(self, tmp_path, capsys):
        out_file = tmp_path / "report.json"
        assert cli.main(self.ARGS + ["--json", str(out_file)]) == 0
        capsys.readouterr()
        payload = json.loads(out_file.read_text())
        assert payload["ok"] is True
        assert payload["checks"] > 0
        assert all(r["findings"] == [] for r in payload["reports"])
