"""Tests for result I/O, the experiment registry, the roofline model and the CLI."""

import json

import numpy as np
import pytest

from repro.config import MIRIEL
from repro.cli import main
from repro.experiments.registry import REGISTRY, get_experiment, list_experiments, run_experiment
from repro.models.roofline import (
    attainable_gflops,
    bnd2bd_intensity,
    gemv_intensity,
    ridge_intensity,
    roofline_summary,
    tile_kernel_intensity,
)
from repro.utils.io import (
    load_rows_csv,
    load_rows_json,
    rows_to_markdown,
    save_rows_csv,
    save_rows_json,
)

ROWS = [
    {"m": 100, "tree": "greedy", "gflops": 12.5},
    {"m": 200, "tree": "auto", "gflops": 25.0},
]


class TestIO:
    def test_csv_roundtrip(self, tmp_path):
        path = tmp_path / "rows.csv"
        save_rows_csv(ROWS, path)
        back = load_rows_csv(path)
        assert back == [
            {"m": 100, "tree": "greedy", "gflops": 12.5},
            {"m": 200, "tree": "auto", "gflops": 25.0},
        ]

    def test_csv_column_selection(self, tmp_path):
        path = tmp_path / "rows.csv"
        save_rows_csv(ROWS, path, columns=["m", "gflops"])
        back = load_rows_csv(path)
        assert set(back[0]) == {"m", "gflops"}

    def test_json_roundtrip(self, tmp_path):
        path = tmp_path / "rows.json"
        save_rows_json(ROWS, path)
        assert load_rows_json(path) == ROWS

    def test_json_rejects_non_list(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"a": 1}))
        with pytest.raises(ValueError):
            load_rows_json(path)

    def test_markdown_table(self):
        md = rows_to_markdown(ROWS)
        assert md.splitlines()[0].startswith("| m |")
        assert "greedy" in md
        assert rows_to_markdown([]) == "(no data)"


class TestRoofline:
    def test_ridge_point(self):
        ridge = ridge_intensity(MIRIEL)
        assert attainable_gflops(ridge) == pytest.approx(MIRIEL.node_gemm_gflops, rel=1e-6)
        assert attainable_gflops(ridge / 10) < MIRIEL.node_gemm_gflops

    def test_tile_kernels_are_compute_bound_at_nb160(self):
        summary = roofline_summary(nb=160)
        assert not summary["TSMQR tile update"].memory_bound
        assert summary["GEBRD BLAS-2 half"].memory_bound
        assert summary["BND2BD bulge chasing"].memory_bound

    def test_small_tiles_lose_intensity(self):
        assert tile_kernel_intensity(32) < tile_kernel_intensity(160)

    def test_memory_bound_rates_match_bandwidth(self):
        rate = attainable_gflops(gemv_intensity())
        assert rate == pytest.approx(MIRIEL.memory_bandwidth_gbs * 0.25)
        assert attainable_gflops(bnd2bd_intensity()) < MIRIEL.node_gemm_gflops / 10

    def test_validation(self):
        with pytest.raises(ValueError):
            attainable_gflops(0.0)
        with pytest.raises(ValueError):
            tile_kernel_intensity(0)


class TestRegistry:
    def test_registry_covers_every_figure_and_table(self):
        keys = set(REGISTRY)
        assert {"table1", "critical-paths", "crossover"} <= keys
        assert {"fig2-ge2bnd-square", "fig2-ge2bnd-ts2000", "fig2-ge2bnd-ts10000", "fig2-ge2val"} <= keys
        assert {"fig3-ge2bnd", "fig3-ge2val", "fig4-weak-n2000", "fig4-weak-n10000"} <= keys

    def test_every_experiment_has_metadata(self):
        for exp in list_experiments():
            assert exp.paper_ref
            assert exp.description
            assert callable(exp.runner)

    def test_get_unknown_experiment(self):
        with pytest.raises(KeyError):
            get_experiment("does-not-exist")

    @pytest.mark.slow
    def test_run_cheap_experiments(self):
        rows = run_experiment("table1")
        assert len(rows) == 3
        rows = run_experiment("crossover")
        assert all("delta_s" in row for row in rows)


class TestCli:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "table1" in out and "fig4-weak-n2000" in out

    def test_run_table1_markdown_and_csv(self, tmp_path, capsys):
        csv_path = tmp_path / "t1.csv"
        assert main(["run", "table1", "--markdown", "--csv", str(csv_path)]) == 0
        out = capsys.readouterr().out
        assert "GEQRT" in out
        assert csv_path.exists()
        assert len(load_rows_csv(csv_path)) == 3

    def test_run_unknown_experiment(self, capsys):
        assert main(["run", "nope"]) == 2

    def test_critical_path_command(self, capsys):
        assert main(["critical-path", "8", "4", "--tree", "greedy"]) == 0
        out = capsys.readouterr().out
        assert "closed form" in out and "measured" in out

    def test_simulate_command(self, capsys):
        assert main(["simulate", "2000", "2000", "--nb", "200", "--cores", "8"]) == 0
        out = capsys.readouterr().out
        assert "GFlop/s" in out

    def test_simulate_ge2val_command(self, capsys):
        assert main(
            ["simulate", "4000", "1000", "--nb", "250", "--cores", "8", "--ge2val", "--tree", "greedy"]
        ) == 0
        out = capsys.readouterr().out
        assert "tasks" in out

    def test_svd_command_random(self, capsys):
        assert main(["svd", "--m", "40", "--n", "24", "--tile-size", "8"]) == 0
        out = capsys.readouterr().out
        assert "max rel error" in out

    def test_svd_command_npy_input(self, tmp_path, capsys):
        rng = np.random.default_rng(0)
        a = rng.standard_normal((30, 20))
        path = tmp_path / "a.npy"
        np.save(path, a)
        assert main(["svd", "--input", str(path), "--tile-size", "5", "--variant", "bidiag"]) == 0
