"""Tests for the machine-realism scenario subsystem (repro.runtime.scenario).

Covers the fault/noise models, the scenario registry and its validation,
heterogeneous Machine slowdowns, the MakespanDistribution summary, the
golden-pinned default simulate path (the zero-scenario route must stay
bit-identical across policies, networks and engine paths), scenario
execution through the plan API and the batched sweep path, robust-makespan
tuning reproducibility, the CLI surface, and — under ``@slow`` — seeded
determinism across PYTHONHASHSEED / engine-path subprocesses.
"""

import os
import subprocess
import sys

import numpy as np
import pytest

from repro.api import SvdPlan, execute, execute_sweep
from repro.obs.metrics import REGISTRY
from repro.runtime.batch import BatchCandidate, simulate_batch
from repro.runtime.engine import SimulationEngine
from repro.runtime.faults import (
    FailStopFaults,
    LinkJitterNoise,
    NoFaults,
    StragglerFaults,
    fail_stop_factors,
    get_fault_model,
    get_noise_model,
)
from repro.runtime.machine import Machine
from repro.runtime.scenario import (
    SCENARIOS,
    MakespanDistribution,
    Scenario,
    ScenarioReplayer,
    available_scenarios,
    get_scenario,
    run_scenario,
)
from repro.runtime.simulator import simulate_ge2bnd, simulate_ge2val


# --------------------------------------------------------------------------- #
# Fault and noise models
# --------------------------------------------------------------------------- #
class TestFaultModels:
    def test_fail_stop_factors_closed_form(self):
        counts = np.array([0, 1, 2, 5])
        np.testing.assert_array_equal(
            fail_stop_factors(counts, 1.0), [1.0, 2.0, 3.0, 6.0]
        )
        np.testing.assert_array_equal(
            fail_stop_factors(counts, 0.5), [1.0, 1.5, 2.0, 3.5]
        )

    def test_fail_stop_validation(self):
        with pytest.raises(ValueError, match="must be < 1"):
            FailStopFaults(prob=1.0)
        with pytest.raises(ValueError, match="in \\[0, 1\\]"):
            FailStopFaults(prob=-0.1)
        with pytest.raises(ValueError, match="positive finite"):
            FailStopFaults(prob=0.1, rework=0.0)

    def test_straggler_validation(self):
        with pytest.raises(ValueError, match="in \\[0, 1\\]"):
            StragglerFaults(prob=1.5)
        with pytest.raises(ValueError, match="positive finite"):
            StragglerFaults(prob=0.5, scale=-1.0)
        # prob=1 is legal for stragglers (every op straggles).
        assert not StragglerFaults(prob=1.0).deterministic

    def test_sample_shapes_and_floor(self):
        rng = np.random.default_rng(0)
        for model in (FailStopFaults(prob=0.2), StragglerFaults(prob=0.3)):
            factors, events = model.sample(rng, 7, 13)
            assert factors.shape == (7, 13)
            assert events.shape == (7,)
            assert (factors >= 1.0).all()
            assert (events >= 0).all()

    def test_zero_probability_is_deterministic_identity(self):
        rng = np.random.default_rng(0)
        for model in (FailStopFaults(prob=0.0), StragglerFaults(prob=0.0)):
            assert model.deterministic
            factors, events = model.sample(rng, 3, 5)
            assert (factors == 1.0).all()
            assert (events == 0).all()

    def test_noise_floor_and_validation(self):
        rng = np.random.default_rng(1)
        factors = LinkJitterNoise(sigma=0.5).sample(rng, 4, 9)
        assert factors.shape == (4, 9)
        assert (factors >= 1.0).all()
        with pytest.raises(ValueError):
            LinkJitterNoise(sigma=-0.5)

    def test_registry_coercion(self):
        assert isinstance(get_fault_model("none"), NoFaults)
        model = get_fault_model("fail-stop", prob=0.1)
        assert model.prob == 0.1
        assert get_fault_model(model) is model
        with pytest.raises(ValueError, match="unknown"):
            get_fault_model("meteor-strike")
        with pytest.raises(ValueError):
            get_fault_model(model, prob=0.2)  # kwargs with an instance
        assert get_noise_model("link-jitter", sigma=0.1).sigma == 0.1


# --------------------------------------------------------------------------- #
# Scenario registry and validation
# --------------------------------------------------------------------------- #
class TestScenarioRegistry:
    def test_registry_names_are_consistent(self):
        for name, scenario in SCENARIOS.items():
            assert scenario.name == name
        assert SCENARIOS["none"].is_trivial
        assert SCENARIOS["hetero"].heterogeneous
        assert not SCENARIOS["hetero"].stochastic
        assert SCENARIOS["straggler"].stochastic
        assert SCENARIOS["hostile"].heterogeneous
        assert SCENARIOS["hostile"].stochastic

    def test_available_scenarios_sorted_pairs(self):
        listing = available_scenarios()
        assert [name for name, _ in listing] == sorted(SCENARIOS)
        assert all(desc for _, desc in listing)

    def test_get_scenario_coercion(self):
        assert get_scenario(None) is None
        assert get_scenario("HETERO ") is SCENARIOS["hetero"]
        scen = Scenario(name="custom", node_slowdowns=(1.0, 2.0))
        assert get_scenario(scen) is scen
        with pytest.raises(ValueError, match="unknown scenario"):
            get_scenario("perfect-machine")

    def test_validation_rejects_speedups_and_bad_draws(self):
        with pytest.raises(ValueError, match=">= 1.0"):
            Scenario(name="bad", node_slowdowns=(0.5,))
        with pytest.raises(ValueError, match=">= 1.0"):
            Scenario(name="bad", core_slowdowns=(1.0, float("inf")))
        with pytest.raises(ValueError, match="draws"):
            Scenario(name="bad", draws=0)

    def test_fingerprint_distinguishes_configurations(self):
        a = Scenario(name="x", faults=FailStopFaults(prob=0.1))
        b = Scenario(name="x", faults=FailStopFaults(prob=0.2))
        c = Scenario(name="x", node_slowdowns=(1.0, 1.5))
        assert len({a.fingerprint(), b.fingerprint(), c.fingerprint()}) == 3

    def test_apply_to_machine(self):
        machine = Machine(n_nodes=4, cores_per_node=2, tile_size=100)
        # Homogeneous scenarios hand back the very same object (memo keys).
        assert SCENARIOS["none"].apply_to_machine(machine) is machine
        assert SCENARIOS["straggler"].apply_to_machine(machine) is machine
        het = SCENARIOS["hetero"].apply_to_machine(machine)
        assert het.node_slowdowns == (1.0, 1.25, 1.0, 1.25)  # block-cyclic
        assert het.core_slowdowns is None
        assert het.heterogeneous


class TestMachineSlowdowns:
    def test_validation(self):
        with pytest.raises(ValueError, match="node_slowdowns"):
            Machine(n_nodes=2, cores_per_node=2, tile_size=100,
                    node_slowdowns=(1.0,))
        with pytest.raises(ValueError):
            Machine(n_nodes=2, cores_per_node=2, tile_size=100,
                    node_slowdowns=(1.0, 0.5))
        with pytest.raises(ValueError, match="core_slowdowns"):
            Machine(n_nodes=1, cores_per_node=4, tile_size=100,
                    core_slowdowns=(1.0, 1.0))

    def test_heterogeneous_property_and_factors(self):
        nominal = Machine(n_nodes=2, cores_per_node=2, tile_size=100)
        assert not nominal.heterogeneous
        assert nominal.node_factors() is None
        all_ones = Machine(n_nodes=2, cores_per_node=2, tile_size=100,
                           node_slowdowns=(1.0, 1.0))
        assert not all_ones.heterogeneous  # all-ones counts as homogeneous
        assert all_ones.node_factors() is None
        het = Machine(n_nodes=2, cores_per_node=2, tile_size=100,
                      node_slowdowns=(1.0, 1.5), core_slowdowns=(1.25, 1.0))
        assert het.heterogeneous
        assert het.node_factors() == (1.0, 1.5)
        assert het.core_factors() == (1.25, 1.0)


# --------------------------------------------------------------------------- #
# MakespanDistribution
# --------------------------------------------------------------------------- #
class TestMakespanDistribution:
    def test_summary_statistics_match_numpy(self):
        rng = np.random.default_rng(7)
        draws = rng.exponential(2.0, size=200) + 1.0
        dist = MakespanDistribution.from_makespans(draws, seed=7)
        assert dist.n_draws == 200 and dist.seed == 7
        assert dist.mean == pytest.approx(float(draws.mean()))
        assert dist.std == pytest.approx(float(draws.std(ddof=1)))
        assert dist.p50 == pytest.approx(float(np.quantile(draws, 0.5)))
        assert dist.p95 == pytest.approx(float(np.quantile(draws, 0.95)))
        assert dist.min == float(draws.min()) and dist.max == float(draws.max())
        half = 1.96 * dist.std / np.sqrt(200)
        assert dist.ci95_low == pytest.approx(dist.mean - half)
        assert dist.ci95_high == pytest.approx(dist.mean + half)
        assert dist.quantile(0.25) == pytest.approx(float(np.quantile(draws, 0.25)))

    def test_shifted_moves_locations_not_spread(self):
        dist = MakespanDistribution.from_makespans([1.0, 2.0, 3.0], seed=0)
        moved = dist.shifted(10.0)
        assert moved.mean == pytest.approx(dist.mean + 10.0)
        assert moved.p95 == pytest.approx(dist.p95 + 10.0)
        assert moved.std == dist.std
        assert moved.makespans == tuple(m + 10.0 for m in dist.makespans)

    def test_to_row_schema(self):
        dist = MakespanDistribution.from_makespans([1.0, 2.0], seed=3)
        assert sorted(dist.to_row()) == [
            "mc_draws", "mc_mean", "mc_p50", "mc_p95", "mc_std",
        ]

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            MakespanDistribution.from_makespans([], seed=0)


# --------------------------------------------------------------------------- #
# Golden pin: the default (no scenario) path must not move
# --------------------------------------------------------------------------- #
#: float.hex() makespans of simulate_ge2bnd(300, 200, 2x2-core machine,
#: nb=100) pinned at the introduction of the scenario subsystem.  Any drift
#: here means the zero-scenario fast path changed bitwise — that is a
#: regression, not a tolerance issue.
GOLDEN_MAKESPANS = {
    ("critical-path", "uniform"): "0x1.18791d1c58fe6p-10",
    ("critical-path", "alpha-beta"): "0x1.20ed2349df833p-10",
    ("fifo", "uniform"): "0x1.18791d1c58fe6p-10",
    ("fifo", "alpha-beta"): "0x1.20ed2349df833p-10",
    ("list", "uniform"): "0x1.18791d1c58fe6p-10",
    ("list", "alpha-beta"): "0x1.1cedf6e309517p-10",
    ("locality", "uniform"): "0x1.18791d1c58fe6p-10",
    ("locality", "alpha-beta"): "0x1.1cedf6e309517p-10",
    ("random", "uniform"): "0x1.3a72168675a53p-10",
    ("random", "alpha-beta"): "0x1.3a93a475b7111p-10",
    ("weight", "uniform"): "0x1.3672ea1f9f737p-10",
    ("weight", "alpha-beta"): "0x1.3ee6f04d25f85p-10",
}


def _pin_machine() -> Machine:
    return Machine(n_nodes=2, cores_per_node=2, tile_size=100)


class TestGoldenPinnedDefaultPath:
    @pytest.mark.parametrize("policy,network", sorted(GOLDEN_MAKESPANS))
    def test_default_path_is_bit_identical(self, policy, network):
        result = simulate_ge2bnd(300, 200, _pin_machine(),
                                 policy=policy, network=network)
        assert result.time_seconds.hex() == GOLDEN_MAKESPANS[(policy, network)]

    @pytest.mark.parametrize("policy,network", sorted(GOLDEN_MAKESPANS))
    def test_legacy_engine_path_matches_pin(self, policy, network, monkeypatch):
        monkeypatch.setenv("REPRO_ENGINE_FAST", "0")
        result = simulate_ge2bnd(300, 200, _pin_machine(),
                                 policy=policy, network=network)
        assert result.time_seconds.hex() == GOLDEN_MAKESPANS[(policy, network)]

    def test_trivial_scenario_is_bit_identical_to_default(self):
        plain = simulate_ge2bnd(300, 200, _pin_machine())
        via_none = simulate_ge2bnd(300, 200, _pin_machine(), scenario="none")
        assert via_none.time_seconds.hex() == plain.time_seconds.hex()
        assert via_none.scenario == "none"
        assert via_none.distribution is None
        assert plain.scenario is None

    @pytest.mark.parametrize("policy", sorted(p for p, _ in GOLDEN_MAKESPANS))
    def test_replayer_nominal_replay_matches_engine(self, policy):
        # The scenario replayer's zero-perturbation replay must reproduce
        # the engine bit for bit on every policy — this is what makes the
        # Monte-Carlo mode trustworthy.
        from repro.ir.compiler import get_program
        from repro.trees import GreedyTree

        machine = _pin_machine()
        engine = SimulationEngine(machine, policy=policy, network="alpha-beta")
        program = get_program("bidiag", 3, 2, GreedyTree(),
                              n_cores=machine.cores_per_node, grid_rows=2)
        baseline = engine.run(program)
        replayed = ScenarioReplayer(engine, program).replay()
        assert replayed.makespan.hex() == baseline.makespan.hex()
        assert replayed.start == baseline.start
        assert replayed.finish == baseline.finish
        assert replayed.node_of_task == baseline.node_of_task


# --------------------------------------------------------------------------- #
# Scenario execution through the simulator / plan API
# --------------------------------------------------------------------------- #
class TestScenarioExecution:
    def test_heterogeneity_slows_the_nominal_makespan(self):
        plain = simulate_ge2bnd(300, 200, _pin_machine())
        het = simulate_ge2bnd(300, 200, _pin_machine(), scenario="hetero")
        assert het.scenario == "hetero"
        assert het.distribution is None  # deterministic scenario
        assert het.time_seconds > plain.time_seconds

    def test_stochastic_scenario_draws(self):
        result = simulate_ge2bnd(300, 200, _pin_machine(),
                                 scenario="straggler", draws=12, seed=4)
        dist = result.distribution
        assert dist is not None and dist.n_draws == 12 and dist.seed == 4
        assert len(dist.makespans) == 12
        # Every perturbation factor is >= 1, so no draw beats the nominal.
        assert dist.min >= result.time_seconds
        assert dist.p95 >= dist.p50 >= dist.p5

    def test_same_seed_identical_different_seed_distinct(self):
        a = simulate_ge2bnd(300, 200, _pin_machine(),
                            scenario="straggler", draws=8, seed=11)
        b = simulate_ge2bnd(300, 200, _pin_machine(),
                            scenario="straggler", draws=8, seed=11)
        c = simulate_ge2bnd(300, 200, _pin_machine(),
                            scenario="straggler", draws=8, seed=12)
        assert a.distribution == b.distribution  # bitwise draw equality
        assert a.distribution != c.distribution

    def test_ge2val_shifts_distribution_by_post_processing(self):
        bnd = simulate_ge2bnd(300, 200, _pin_machine(),
                              scenario="fail-stop", draws=6, seed=2)
        val = simulate_ge2val(300, 200, _pin_machine(),
                              scenario="fail-stop", draws=6, seed=2)
        post = val.time_seconds - bnd.time_seconds
        assert post > 0
        assert val.distribution.mean == pytest.approx(bnd.distribution.mean + post)
        assert val.distribution.std == bnd.distribution.std

    def test_mc_metrics_counters(self):
        snap = REGISTRY.snapshot()
        simulate_ge2bnd(300, 200, _pin_machine(),
                        scenario="straggler", draws=5, seed=0)
        delta = REGISTRY.delta_since(snap)
        assert delta.get("engine.mc.runs") == 1
        assert delta.get("engine.mc.draws") == 5

    def test_verified_scenario_run(self, monkeypatch):
        # REPRO_VERIFY=1 re-checks the nominal replay and one faulty draw
        # with realized durations; a finding would raise here.
        monkeypatch.setenv("REPRO_VERIFY", "1")
        result = simulate_ge2bnd(300, 200, _pin_machine(),
                                 scenario="hostile", draws=3, seed=1)
        assert result.distribution.n_draws == 3

    def test_plan_coerces_scenario_and_validates_draws(self):
        plan = SvdPlan(m=300, n=200, stage="ge2bnd", tile_size=100,
                       n_cores=2, n_nodes=2, scenario="straggler", draws=4)
        assert isinstance(plan.scenario, Scenario)
        assert plan.describe()["scenario"] == "straggler"
        with pytest.raises(ValueError):
            SvdPlan(m=300, n=200, scenario="straggler", draws=0)
        with pytest.raises(ValueError, match="unknown scenario"):
            SvdPlan(m=300, n=200, scenario="perfect")

    def test_execute_row_schema_gated_on_scenario(self):
        base = SvdPlan(m=300, n=200, stage="ge2bnd", tile_size=100,
                       n_cores=2, n_nodes=2)
        plain_row = execute(base, backend="simulate").to_row()
        assert "scenario" not in plain_row
        assert "mc_p95" not in plain_row
        mc_row = execute(base.with_(scenario="straggler", draws=4),
                         backend="simulate").to_row()
        assert mc_row["scenario"] == "straggler"
        assert mc_row["mc_draws"] == 4
        assert mc_row["mc_p95"] >= mc_row["mc_p50"]


# --------------------------------------------------------------------------- #
# Batched sweeps and tuning
# --------------------------------------------------------------------------- #
class TestBatchedScenarios:
    def test_sweep_matches_per_plan_execute(self):
        base = SvdPlan(m=300, n=200, stage="ge2bnd", tile_size=100,
                       n_cores=2, n_nodes=2, draws=6, seed=9)
        plans = list(base.sweep(scenario=["none", "hetero", "straggler"]))
        rows = execute_sweep(plans, backend="simulate")
        singles = [execute(p, backend="simulate") for p in plans]
        for row, single in zip(rows, singles):
            assert row["time_seconds"] == single.time_seconds  # bitwise
            assert row.get("scenario") == single.scenario
            if single.distribution is not None:
                assert row["mc_p95"] == single.distribution.p95
                assert row["mc_mean"] == single.distribution.mean

    def test_batch_engine_rejects_heterogeneous_machines(self):
        from repro.ir.compiler import get_program
        from repro.trees import GreedyTree

        program = get_program("bidiag", 2, 2, GreedyTree())
        het = Machine(n_nodes=1, cores_per_node=2, tile_size=100,
                      core_slowdowns=(1.5, 1.0))
        with pytest.raises(ValueError, match="nominal durations only"):
            simulate_batch(program, [BatchCandidate(machine=het)])

    def test_robust_makespan_tuning_is_reproducible(self):
        from repro.tuning import SearchSpace, tune

        plan = SvdPlan(m=300, n=200, stage="ge2bnd", n_cores=2, n_nodes=2,
                       scenario="straggler", draws=6, seed=5)
        space = SearchSpace(tile_sizes=[50, 100], trees=["greedy"],
                            variants=["bidiag"])
        kwargs = dict(space=space, objective="robust-makespan", cache=False)
        first = tune(plan, **kwargs)
        second = tune(plan, **kwargs)
        assert first.best_score == second.best_score  # bitwise
        assert first.best_plan.tile_size == second.best_plan.tile_size
        # The winner's score is the p95 of its Monte-Carlo distribution.
        winner = execute(first.best_plan, backend="simulate")
        assert first.best_score == winner.distribution.p95

    def test_tune_cache_key_sees_scenario(self):
        from repro.tuning import SearchSpace, get_objective
        from repro.tuning.search import _tune_cache_key

        space = SearchSpace()
        obj = get_objective("makespan")
        base = SvdPlan(m=300, n=200, stage="ge2bnd", n_cores=2, n_nodes=2)
        keys = {
            _tune_cache_key(base, space, obj, "grid"),
            _tune_cache_key(base.with_(scenario="straggler", draws=8),
                            space, obj, "grid"),
            _tune_cache_key(base.with_(scenario="straggler", draws=16),
                            space, obj, "grid"),
            _tune_cache_key(base.with_(scenario="straggler", draws=8, seed=1),
                            space, obj, "grid"),
            _tune_cache_key(base.with_(scenario="hetero"), space, obj, "grid"),
        }
        assert len(keys) == 5


# --------------------------------------------------------------------------- #
# CLI surface
# --------------------------------------------------------------------------- #
class TestScenarioCLI:
    def test_scenarios_listing(self, capsys):
        from repro.cli import main

        assert main(["scenarios"]) == 0
        out = capsys.readouterr().out
        for name in SCENARIOS:
            assert name in out
        assert "fault models:" in out and "noise models:" in out

    def test_simulate_with_scenario(self, capsys):
        from repro.cli import main

        code = main(["simulate", "300", "200", "--nb", "100", "--nodes", "2",
                     "--cores", "2", "--scenario", "straggler",
                     "--draws", "4", "--seed", "1"])
        assert code == 0
        out = capsys.readouterr().out
        assert "scenario       : straggler" in out
        assert "mc makespan" in out and "4 draws, seed 1" in out

    def test_scenario_sweep_experiment(self):
        from repro.experiments.registry import run_experiment

        rows = run_experiment(
            "scenario-sweep", m=300, n=200, tile_size=100, n_cores=2,
            n_nodes=2, draws=4, scenarios=("none", "straggler"),
        )
        assert [r["scenario"] for r in rows] == ["none", "straggler"]
        assert "mc_p95" in rows[1] and "mc_p95" not in rows[0]


# --------------------------------------------------------------------------- #
# Seeded determinism across interpreter and engine paths (@slow)
# --------------------------------------------------------------------------- #
class TestSeededDeterminism:
    """The Monte-Carlo draws of a seed must be identical across
    PYTHONHASHSEED values and across the fast / legacy engine paths."""

    SNIPPET = (
        "import sys; sys.path.insert(0, 'src')\n"
        "from repro.runtime.machine import Machine\n"
        "from repro.runtime.simulator import simulate_ge2bnd\n"
        "machine = Machine(n_nodes=2, cores_per_node=2, tile_size=100)\n"
        "r = simulate_ge2bnd(300, 200, machine, scenario='hostile',\n"
        "                    draws=6, seed=13)\n"
        "print(r.time_seconds.hex())\n"
        "print([m.hex() for m in r.distribution.makespans])\n"
    )

    def _run(self, *, hash_seed="0", fast="1"):
        env = dict(os.environ, PYTHONHASHSEED=hash_seed, REPRO_ENGINE_FAST=fast)
        proc = subprocess.run(
            [sys.executable, "-c", self.SNIPPET],
            capture_output=True,
            text=True,
            env=env,
            cwd=__file__.rsplit("/tests/", 1)[0],
            check=True,
        )
        return proc.stdout

    @pytest.mark.slow
    def test_draws_identical_across_hash_seeds(self):
        assert self._run(hash_seed="0") == self._run(hash_seed="4242")

    @pytest.mark.slow
    def test_draws_identical_across_engine_paths(self):
        assert self._run(fast="1") == self._run(fast="0")
