"""Crash-recovery scenarios for the campaign runner.

The claims under test are the PR's headline guarantees:

* a worker killed with SIGKILL mid-campaign breaks the process pool; the
  runner respawns it and the campaign still completes with zero lost and
  zero duplicated result rows;
* a campaign process interrupted with SIGINT exits resumable (code 3)
  with the store holding exactly the finished work; a resume executes
  exactly the remainder and the final store is bitwise identical to an
  uninterrupted sequential run;
* a hung worker trips the per-task timeout, costs an attempt, and a
  candidate that always hangs ends quarantined — the campaign finishes
  instead of hanging with it.
"""

import json
import os
import signal
import subprocess
import sys
import threading
import time
from pathlib import Path

from repro.api.execute import execute
from repro.campaign import (
    CampaignFaults,
    CampaignRunner,
    CampaignSpec,
    ResultStore,
    run_campaign,
)

REPO_ROOT = Path(__file__).resolve().parent.parent
BASE = {"m": 256, "n": 192, "tile_size": 64, "n_cores": 2}


def row_key(row) -> str:
    return json.dumps(row, sort_keys=True, default=str)


def reference_rows(spec: CampaignSpec) -> dict:
    """Sequential no-fault execution: the bitwise ground truth."""
    return {
        cand.candidate_id: row_key(execute(cand.plan, backend="simulate").to_row())
        for cand in spec.expand()
    }


def assert_store_matches_reference(store_path, spec: CampaignSpec) -> None:
    store = ResultStore(store_path)
    records = store.records("done")
    store.close()
    got = {rec.candidate_id: row_key(rec.row) for rec in records}
    ref = reference_rows(spec)
    assert set(got) == set(ref), "lost or extra result rows"
    for cid, ref_row in ref.items():
        assert got[cid] == ref_row, f"row for {cid} differs from sequential run"


class TestWorkerKillRecovery:
    def test_sigkill_worker_respawns_and_loses_nothing(self, tmp_path):
        # Every candidate sleeps 0.3s (injected hang, shorter than any
        # timeout) so there is a window to SIGKILL a live worker.
        spec = CampaignSpec(
            name="kill9",
            base=dict(BASE),
            axes={"tree": ["flatts", "greedy", "binary"], "policy": ["list", "fifo"]},
            workers=2,
            max_attempts=5,
            backoff_seconds=0.01,
        )
        runner = CampaignRunner(
            spec,
            tmp_path / "s.sqlite",
            faults=CampaignFaults(hang=1.0, hang_seconds=0.3),
            install_signal_handlers=False,
        )
        result = {}

        def drive():
            result["report"] = runner.run()

        thread = threading.Thread(target=drive)
        thread.start()
        try:
            deadline = time.time() + 10.0
            killed = False
            while not killed and time.time() < deadline:
                pids = runner.worker_pids()
                if pids:
                    os.kill(pids[0], signal.SIGKILL)
                    killed = True
                time.sleep(0.02)
            assert killed, "never saw a live worker to kill"
        finally:
            thread.join(timeout=60.0)
        assert not thread.is_alive(), "campaign did not finish after the kill"
        report = result["report"]
        assert report.complete, report.summary()
        assert report.respawns >= 1
        assert report.duplicates == 0
        assert_store_matches_reference(tmp_path / "s.sqlite", spec)
        runner.store.close()


class TestHangTimeoutQuarantine:
    def test_always_hanging_candidates_quarantine(self, tmp_path):
        spec = CampaignSpec(
            name="hangers",
            base=dict(BASE),
            axes={"tree": ["flatts", "greedy"]},
            workers=2,
            max_attempts=2,
            timeout_seconds=0.6,
            backoff_seconds=0.01,
        )
        # Hang far beyond the timeout on every attempt: unrecoverable.
        report = run_campaign(
            spec,
            tmp_path / "s.sqlite",
            faults=CampaignFaults(hang=1.0, hang_seconds=60.0),
        )
        assert not report.complete
        assert not report.interrupted  # quarantined, not aborted
        assert report.counts == {"quarantined": 2}
        assert report.timeouts >= 2 * 2  # every attempt timed out
        store = ResultStore(tmp_path / "s.sqlite")
        for rec in store.records("quarantined"):
            assert rec.attempts == 2
            assert "Timeout" in (rec.error or "")
        store.close()

    def test_transient_hang_recovers_within_budget(self, tmp_path):
        spec = CampaignSpec(
            name="slowstart",
            base=dict(BASE),
            axes={"tree": ["flatts", "greedy"]},
            workers=2,
            max_attempts=3,
            timeout_seconds=0.6,
            backoff_seconds=0.01,
        )
        # Attempt 1 hangs past the timeout; attempt 2 is clean.
        report = run_campaign(
            spec,
            tmp_path / "s.sqlite",
            faults=CampaignFaults(hang=1.0, hang_seconds=60.0, limit=1),
        )
        assert report.complete, report.summary()
        assert report.timeouts >= 1
        assert_store_matches_reference(tmp_path / "s.sqlite", spec)


class TestSigintResume:
    """Interrupt a real campaign process, then resume it to completion."""

    def spec_payload(self) -> dict:
        return {
            "name": "sigint-resume",
            "base": dict(BASE),
            "axes": {
                "tree": ["flatts", "flattt", "greedy", "binary"],
                "policy": ["list", "fifo", "critical-path"],
            },
            "backend": "simulate",
            "workers": 2,
            "max_attempts": 3,
            "backoff_seconds": 0.01,
        }

    def launch(self, spec_path, store_path, *, faults=""):
        env = dict(os.environ)
        env["PYTHONPATH"] = str(REPO_ROOT / "src")
        env["PYTHONUNBUFFERED"] = "1"
        if faults:
            env["REPRO_CAMPAIGN_FAULTS"] = faults
        else:
            env.pop("REPRO_CAMPAIGN_FAULTS", None)
        return subprocess.Popen(
            [
                sys.executable, "-m", "repro", "campaign", "run",
                str(spec_path), "--store", str(store_path),
            ],
            env=env,
            cwd=REPO_ROOT,
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
        )

    def test_sigint_then_resume_completes_exactly_the_remainder(self, tmp_path):
        spec = CampaignSpec.from_dict(self.spec_payload())
        n_total = len(spec.expand())
        assert n_total == 12
        spec_path = tmp_path / "spec.json"
        spec_path.write_text(json.dumps(self.spec_payload()))
        store_path = tmp_path / "s.sqlite"

        # Phase 1: run with injected 0.3s hangs (slow, fault-free), SIGINT
        # once some — but not all — candidates have landed.
        proc = self.launch(spec_path, store_path, faults="hang:1.0:0.3")
        try:
            interrupted_at = None
            deadline = time.time() + 60.0
            while time.time() < deadline:
                if store_path.exists():
                    store = ResultStore(store_path)
                    done = store.counts().get("done", 0)
                    store.close()
                    if done >= 2:
                        interrupted_at = done
                        proc.send_signal(signal.SIGINT)
                        break
                time.sleep(0.05)
            assert interrupted_at is not None, "campaign never made progress"
            out, _ = proc.communicate(timeout=60.0)
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.communicate()
        assert proc.returncode == 3, f"expected resumable exit 3, got "\
            f"{proc.returncode}\n{out}"
        assert "resume" in out

        store = ResultStore(store_path)
        mid_counts = store.counts()
        store.close()
        assert 0 < mid_counts.get("done", 0) < n_total
        # Crash consistency: nothing is stuck 'running' after the drain.
        assert mid_counts.get("running", 0) == 0
        done_at_interrupt = mid_counts.get("done", 0)

        # Phase 2: resume without faults; must execute exactly the rest.
        proc = self.launch(spec_path, store_path)
        out, _ = proc.communicate(timeout=120.0)
        assert proc.returncode == 0, out
        store = ResultStore(store_path)
        final_counts = store.counts()
        last_run = json.loads(store.get_meta("last_run"))
        store.close()
        assert final_counts == {"done": n_total}
        # The resume skipped exactly the work the interrupted run banked.
        assert last_run["resumed_skips"] == done_at_interrupt
        assert last_run["counts"]["done"] == n_total
        assert last_run["duplicates"] == 0

        # Zero lost, zero duplicated, bitwise equal to a sequential run.
        assert_store_matches_reference(store_path, spec)
