"""Tests for communication, asymptotics and speedup analysis helpers."""


import pytest

from repro.analysis.asymptotics import (
    asymptotic_sweep,
    convergence_trend,
    shape_for,
    theorem1_limit_ratio,
)
from repro.analysis.communication import (
    communication_matrix,
    communication_ratio,
    communication_volume,
    panel_messages_estimate,
)
from repro.analysis.speedup import (
    amdahl_ge2val_bound,
    speedup_bounds,
    strong_scaling_efficiency,
    weak_scaling_efficiency,
)
from repro.dag.tracer import trace_bidiag, trace_qr
from repro.runtime.machine import Machine
from repro.runtime.scheduler import ListScheduler
from repro.tiles.distribution import BlockCyclicDistribution, ProcessGrid
from repro.trees import FlatTTTree, GreedyTree, HierarchicalTree


class TestCommunication:
    dist = BlockCyclicDistribution(ProcessGrid(2, 2))

    def test_single_node_has_no_messages(self):
        graph = trace_qr(4, 3, GreedyTree())
        stats = communication_volume(graph, BlockCyclicDistribution(ProcessGrid(1, 1)))
        assert stats.messages == 0
        assert stats.bytes_moved == 0

    def test_messages_match_simulator_accounting(self):
        graph = trace_bidiag(6, 4, GreedyTree(), grid_rows=2)
        machine = Machine(n_nodes=4, cores_per_node=2, tile_size=100)
        schedule = ListScheduler(machine, self.dist).run(graph)
        stats = communication_volume(graph, self.dist, tile_size=100)
        assert stats.messages == schedule.messages
        assert stats.bytes_moved == schedule.comm_bytes

    def test_sent_received_totals_agree(self):
        graph = trace_bidiag(6, 4, GreedyTree(), grid_rows=2)
        stats = communication_volume(graph, self.dist)
        assert sum(stats.per_node_sent) == stats.messages
        assert sum(stats.per_node_received) == stats.messages

    def test_matrix_diagonal_is_zero(self):
        graph = trace_bidiag(6, 4, GreedyTree(), grid_rows=2)
        matrix = communication_matrix(graph, self.dist)
        assert all(matrix[i][i] == 0 for i in range(4))
        assert sum(sum(row) for row in matrix) == communication_volume(graph, self.dist).messages

    def test_flat_top_tree_sends_fewer_messages_than_greedy(self):
        dist = BlockCyclicDistribution(ProcessGrid(4, 1))
        flat = HierarchicalTree(local_tree=GreedyTree(), top="flat", grid_rows=4)
        greedy = HierarchicalTree(local_tree=GreedyTree(), top="greedy", grid_rows=4)
        g_flat = trace_bidiag(8, 6, flat, grid_rows=4)
        g_greedy = trace_bidiag(8, 6, greedy, grid_rows=4)
        ratio = communication_ratio(g_greedy, g_flat, dist)
        assert ratio >= 1.0

    def test_panel_estimates(self):
        assert panel_messages_estimate(4, "flat") == 3
        assert panel_messages_estimate(4, "greedy") == 6
        assert panel_messages_estimate(1, "flat") == 0
        with pytest.raises(ValueError):
            panel_messages_estimate(4, "bogus")
        with pytest.raises(ValueError):
            panel_messages_estimate(0, "flat")


class TestAsymptotics:
    def test_shape_for(self):
        assert shape_for(8, 0.0) == 8
        assert shape_for(8, 0.5, 2.0) == max(8, int(round(2 * 8**1.5)))
        with pytest.raises(ValueError):
            shape_for(1, 0.0)

    def test_limit_ratio(self):
        assert theorem1_limit_ratio(0.0) == 1.0
        assert theorem1_limit_ratio(0.5) == 1.25
        with pytest.raises(ValueError):
            theorem1_limit_ratio(1.5)

    def test_square_sweep_normalization_approaches_one(self):
        points = asymptotic_sweep([16, 64, 256, 1024], alpha=0.0)
        # Converges to 1 from above; the trend is decreasing toward the limit.
        assert points[-1].normalized_bidiag < points[0].normalized_bidiag
        assert points[-1].normalized_bidiag == pytest.approx(1.0, rel=0.25)

    def test_square_sweep_ratio_tends_to_one(self):
        points = asymptotic_sweep([32, 128, 512, 2048], alpha=0.0)
        # For square matrices the two algorithms have the same asymptotic cost.
        assert points[-1].ratio == pytest.approx(1.0, rel=0.15)

    def test_tall_sweep_ratio_grows_toward_limit(self):
        points = asymptotic_sweep([64, 256, 1024, 4096], alpha=0.5, beta=1.0)
        assert points[-1].ratio > points[0].ratio
        assert points[-1].ratio > 1.1
        assert points[-1].ratio < theorem1_limit_ratio(0.5) + 0.05

    def test_convergence_trend(self):
        points = asymptotic_sweep([16, 64, 256], alpha=0.0)
        assert convergence_trend(points, "normalized_bidiag") < 0
        with pytest.raises(ValueError):
            convergence_trend(points[:1], "ratio")


class TestSpeedup:
    machine = Machine(n_nodes=1, cores_per_node=8, tile_size=100)

    def test_bounds_ordering(self):
        graph = trace_bidiag(8, 6, GreedyTree())
        schedule = ListScheduler(self.machine).run(graph)
        bounds = speedup_bounds(graph, self.machine, schedule)
        assert bounds.tinf_seconds <= bounds.t1_seconds
        assert bounds.brent_bound_seconds <= bounds.t1_seconds + bounds.tinf_seconds
        assert bounds.measured_makespan >= bounds.tinf_seconds - 1e-12
        assert bounds.measured_speedup >= 1.0
        # A greedy list schedule respects Brent's bound.
        assert bounds.brent_gap <= 1.0 + 1e-9

    def test_flattt_span_longer_than_greedy(self):
        greedy = speedup_bounds(trace_bidiag(10, 6, GreedyTree()), self.machine)
        flattt = speedup_bounds(trace_bidiag(10, 6, FlatTTTree()), self.machine)
        assert greedy.tinf_seconds < flattt.tinf_seconds

    def test_amdahl_bound(self):
        assert amdahl_ge2val_bound(10.0, 5.0, 1) == pytest.approx(15.0)
        assert amdahl_ge2val_bound(10.0, 5.0, 10) == pytest.approx(6.0)
        with pytest.raises(ValueError):
            amdahl_ge2val_bound(10.0, 5.0, 0)
        with pytest.raises(ValueError):
            amdahl_ge2val_bound(-1.0, 5.0, 2)

    def test_strong_scaling_efficiency(self):
        eff = strong_scaling_efficiency({1: 10.0, 2: 6.0, 4: 4.0})
        assert eff[1] == pytest.approx(1.0)
        assert eff[2] == pytest.approx(10.0 / 12.0)
        assert eff[4] == pytest.approx(10.0 / 16.0)
        assert strong_scaling_efficiency({}) == {}

    def test_weak_scaling_efficiency(self):
        eff = weak_scaling_efficiency({1: 100.0, 2: 180.0, 4: 300.0})
        assert eff[1] == pytest.approx(1.0)
        assert eff[2] == pytest.approx(0.9)
        assert eff[4] == pytest.approx(0.75)
        assert weak_scaling_efficiency({}) == {}
