"""Unit and property tests for the reduction trees."""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.trees import (
    AutoTree,
    BinaryTree,
    FibonacciTree,
    FlatTSTree,
    FlatTTTree,
    GreedyTree,
    HierarchicalTree,
    make_tree,
)
from repro.trees.auto import auto_domain_size
from repro.trees.base import PanelContext, validate_plan
from repro.trees.greedy import binomial_eliminations

ALL_TREES = [
    FlatTSTree(),
    FlatTTTree(),
    GreedyTree(),
    BinaryTree(),
    FibonacciTree(),
    AutoTree(n_cores=4),
    AutoTree(n_cores=24, fixed_domain_size=4),
    HierarchicalTree(local_tree=FlatTSTree(), top="flat", grid_rows=3),
    HierarchicalTree(local_tree=GreedyTree(), top="greedy", grid_rows=4),
    HierarchicalTree(local_tree=AutoTree(n_cores=8), top="fibonacci", grid_rows=2),
]


class TestPlanValidity:
    @pytest.mark.parametrize("tree", ALL_TREES, ids=lambda t: repr(t))
    @pytest.mark.parametrize("rows", [1, 2, 3, 5, 8, 13, 20])
    def test_plans_are_valid_reductions(self, tree, rows):
        ctx = PanelContext(rows=rows, cols_remaining=3, row_offset=2, n_cores=4, grid_rows=3)
        plan = tree.plan(ctx)
        validate_plan(plan, rows)

    @settings(max_examples=60, deadline=None)
    @given(
        rows=st.integers(min_value=1, max_value=60),
        cols=st.integers(min_value=0, max_value=20),
        offset=st.integers(min_value=0, max_value=10),
        cores=st.integers(min_value=1, max_value=48),
        tree_idx=st.integers(min_value=0, max_value=len(ALL_TREES) - 1),
    )
    def test_property_every_tree_every_size(self, rows, cols, offset, cores, tree_idx):
        tree = ALL_TREES[tree_idx]
        ctx = PanelContext(
            rows=rows, cols_remaining=cols, row_offset=offset, n_cores=cores, grid_rows=3
        )
        validate_plan(tree.plan(ctx), rows)


class TestFlatTrees:
    def test_flatts_single_geqrt(self):
        plan = FlatTSTree().plan_rows(6)
        assert plan.geqrt_rows == [0]
        assert all(not e.use_tt for e in plan.eliminations)
        assert all(e.killer == 0 for e in plan.eliminations)
        assert [e.killed for e in plan.eliminations] == [1, 2, 3, 4, 5]

    def test_flattt_all_geqrt(self):
        plan = FlatTTTree().plan_rows(5)
        assert plan.geqrt_rows == [0, 1, 2, 3, 4]
        assert all(e.use_tt for e in plan.eliminations)
        assert all(e.killer == 0 for e in plan.eliminations)

    def test_single_row_plans(self):
        for tree in (FlatTSTree(), FlatTTTree(), GreedyTree()):
            plan = tree.plan_rows(1)
            assert plan.eliminations == []
            assert 0 in plan.geqrt_rows


class TestGreedy:
    def test_binomial_round_count(self):
        for rows in (2, 3, 4, 7, 8, 9, 16, 17):
            elims = binomial_eliminations(rows)
            max_round = max(e.round for e in elims)
            assert max_round + 1 == math.ceil(math.log2(rows))

    def test_binomial_rounds_are_independent(self):
        elims = binomial_eliminations(16)
        by_round = {}
        for e in elims:
            by_round.setdefault(e.round, []).append(e)
        for rnd, batch in by_round.items():
            touched = set()
            for e in batch:
                assert e.killed not in touched
                assert e.killer not in touched
                touched.update((e.killed, e.killer))

    def test_greedy_all_tt(self):
        plan = GreedyTree().plan_rows(10)
        assert all(e.use_tt for e in plan.eliminations)
        assert len(plan.geqrt_rows) == 10


class TestFibonacci:
    def test_depth_logarithmic(self):
        plan = FibonacciTree().plan_rows(32)
        depth = max(e.round for e in plan.eliminations) + 1
        assert depth <= 2 * math.ceil(math.log2(32)) + 2

    def test_all_tt(self):
        plan = FibonacciTree().plan_rows(9)
        assert all(e.use_tt for e in plan.eliminations)


class TestAuto:
    def test_domain_size_shrinks_with_more_cores(self):
        a_few = auto_domain_size(rows=64, cols_remaining=4, n_cores=4)
        a_many = auto_domain_size(rows=64, cols_remaining=4, n_cores=48)
        assert a_many <= a_few

    def test_domain_size_grows_with_wider_trailing_matrix(self):
        narrow = auto_domain_size(rows=64, cols_remaining=2, n_cores=24)
        wide = auto_domain_size(rows=64, cols_remaining=60, n_cores=24)
        assert wide >= narrow

    def test_enough_parallelism_left(self):
        rows, cols, cores, gamma = 100, 5, 24, 2.0
        a = auto_domain_size(rows, cols, cores, gamma)
        n_tasks = math.ceil(rows / a) * cols
        assert n_tasks >= gamma * cores or a == 1

    def test_plan_mixes_ts_and_tt(self):
        tree = AutoTree(n_cores=4)
        plan = tree.plan(PanelContext(rows=32, cols_remaining=2, n_cores=4))
        kinds = {e.use_tt for e in plan.eliminations}
        assert kinds == {True, False}

    def test_fixed_domain_size(self):
        tree = AutoTree(fixed_domain_size=4)
        ctx = PanelContext(rows=16, cols_remaining=8, n_cores=24)
        assert tree.domain_size(ctx) == 4
        plan = tree.plan(ctx)
        assert plan.geqrt_rows == [0, 4, 8, 12]

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            AutoTree(n_cores=0)
        with pytest.raises(ValueError):
            AutoTree(gamma=0)
        with pytest.raises(ValueError):
            AutoTree(fixed_domain_size=0)


class TestHierarchical:
    def test_falls_back_to_local_tree_on_one_node(self):
        tree = HierarchicalTree(local_tree=FlatTSTree(), grid_rows=1)
        plan = tree.plan(PanelContext(rows=6))
        assert plan.geqrt_rows == [0]

    def test_local_eliminations_stay_within_grid_row(self):
        grid_rows = 3
        tree = HierarchicalTree(local_tree=FlatTSTree(), top="flat", grid_rows=grid_rows)
        ctx = PanelContext(rows=12, row_offset=1, grid_rows=grid_rows)
        plan = tree.plan(ctx)
        ts_elims = [e for e in plan.eliminations if not e.use_tt]
        for e in ts_elims:
            owner_killed = (ctx.row_offset + e.killed) % grid_rows
            owner_killer = (ctx.row_offset + e.killer) % grid_rows
            assert owner_killed == owner_killer

    def test_cross_node_eliminations_are_tt(self):
        grid_rows = 4
        tree = HierarchicalTree(local_tree=FlatTSTree(), top="greedy", grid_rows=grid_rows)
        ctx = PanelContext(rows=16, row_offset=0, grid_rows=grid_rows)
        plan = tree.plan(ctx)
        for e in plan.eliminations:
            owner_killed = e.killed % grid_rows
            owner_killer = e.killer % grid_rows
            if owner_killed != owner_killer:
                assert e.use_tt

    def test_default_for_shape(self):
        tall = HierarchicalTree.default_for_shape(p=40, q=4, grid_rows=4)
        square = HierarchicalTree.default_for_shape(p=8, q=8, grid_rows=4)
        assert tall.top == "flat"
        assert square.top == "fibonacci"

    def test_invalid_top(self):
        with pytest.raises(ValueError):
            HierarchicalTree(top="bogus")


class TestRegistry:
    @pytest.mark.parametrize("name", ["flatts", "flattt", "greedy", "binary", "fibonacci", "auto"])
    def test_make_tree(self, name):
        tree = make_tree(name)
        validate_plan(tree.plan_rows(7), 7)

    def test_make_tree_case_insensitive(self):
        assert isinstance(make_tree("GrEeDy"), GreedyTree)

    def test_make_tree_unknown(self):
        with pytest.raises(ValueError):
            make_tree("does-not-exist")

    def test_make_tree_forwards_kwargs(self):
        tree = make_tree("auto", n_cores=12, gamma=3.0)
        assert tree.n_cores == 12
        assert tree.gamma == 3.0
