"""Integration tests for BIDIAG and R-BIDIAG (GE2BND)."""

import numpy as np
import pytest

from repro.algorithms.band import band_residual, extract_band
from repro.algorithms.bidiag import bidiag_ge2bnd
from repro.algorithms.rbidiag import rbidiag_ge2bnd
from repro.tiles.matrix import TiledMatrix
from repro.trees import AutoTree, FibonacciTree, FlatTSTree, FlatTTTree, GreedyTree
from repro.utils.generators import latms

TREES = [FlatTSTree(), FlatTTTree(), GreedyTree(), FibonacciTree(), AutoTree(n_cores=4)]


def _sv(a):
    return np.linalg.svd(a, compute_uv=False)


class TestBidiag:
    @pytest.mark.parametrize("tree", TREES, ids=lambda t: type(t).__name__)
    @pytest.mark.parametrize("shape,nb", [((16, 16), 4), ((24, 12), 4), ((20, 8), 4), ((13, 9), 3)])
    def test_band_structure_and_singular_values(self, tree, shape, nb, rng):
        a = rng.standard_normal(shape)
        mat = TiledMatrix.from_dense(a, nb)
        bidiag_ge2bnd(mat, tree, check_plan=True)
        scale = np.linalg.norm(a)
        # Everything outside the band must be zero.
        assert band_residual(mat) < 1e-10 * scale
        # The band has the same singular values as the input.
        band = extract_band(mat)
        np.testing.assert_allclose(_sv(band.to_dense()), _sv(a), atol=1e-10 * scale)

    def test_different_qr_and_lq_trees(self, rng):
        a = rng.standard_normal((20, 12))
        mat = TiledMatrix.from_dense(a, 4)
        bidiag_ge2bnd(mat, qr_tree=GreedyTree(), lq_tree=FlatTSTree())
        assert band_residual(mat) < 1e-10 * np.linalg.norm(a)

    def test_single_tile_column(self, rng):
        a = rng.standard_normal((12, 3))
        mat = TiledMatrix.from_dense(a, 4)
        bidiag_ge2bnd(mat, GreedyTree())
        np.testing.assert_allclose(_sv(mat.to_dense()), _sv(a), atol=1e-10)

    def test_rejects_wide_matrices(self, rng):
        mat = TiledMatrix.from_dense(rng.standard_normal((8, 16)), 4)
        with pytest.raises(ValueError):
            bidiag_ge2bnd(mat, GreedyTree())

    def test_latms_singular_values_recovered(self, rng):
        sigma = np.linspace(10.0, 1.0, 12)
        a = latms(20, 12, sigma, rng=rng)
        mat = TiledMatrix.from_dense(a, 4)
        bidiag_ge2bnd(mat, AutoTree(n_cores=4))
        band = extract_band(mat)
        np.testing.assert_allclose(np.sort(_sv(band.to_dense()))[::-1], sigma, rtol=1e-10)


class TestRBidiag:
    @pytest.mark.parametrize("tree", TREES, ids=lambda t: type(t).__name__)
    @pytest.mark.parametrize("shape,nb", [((32, 8), 4), ((24, 12), 4), ((19, 7), 3)])
    def test_band_structure_and_singular_values(self, tree, shape, nb, rng):
        a = rng.standard_normal(shape)
        mat = TiledMatrix.from_dense(a, nb)
        rbidiag_ge2bnd(mat, tree, check_plan=True)
        scale = np.linalg.norm(a)
        assert band_residual(mat) < 1e-10 * scale
        band = extract_band(mat)
        np.testing.assert_allclose(_sv(band.to_dense()), _sv(a), atol=1e-10 * scale)

    def test_distinct_prequr_tree(self, rng):
        a = rng.standard_normal((30, 10))
        mat = TiledMatrix.from_dense(a, 5)
        rbidiag_ge2bnd(mat, GreedyTree(), prequr_tree=FlatTSTree())
        assert band_residual(mat) < 1e-10 * np.linalg.norm(a)

    def test_bidiag_and_rbidiag_agree_on_singular_values(self, rng):
        a = rng.standard_normal((28, 8))
        m1 = TiledMatrix.from_dense(a, 4)
        m2 = TiledMatrix.from_dense(a, 4)
        bidiag_ge2bnd(m1, GreedyTree())
        rbidiag_ge2bnd(m2, GreedyTree())
        np.testing.assert_allclose(
            _sv(extract_band(m1).to_dense()), _sv(extract_band(m2).to_dense()), atol=1e-9
        )

    def test_rejects_wide_matrices(self, rng):
        mat = TiledMatrix.from_dense(rng.standard_normal((8, 16)), 4)
        with pytest.raises(ValueError):
            rbidiag_ge2bnd(mat, GreedyTree())

    def test_square_case_works(self, rng):
        a = rng.standard_normal((16, 16))
        mat = TiledMatrix.from_dense(a, 4)
        rbidiag_ge2bnd(mat, GreedyTree())
        assert band_residual(mat) < 1e-10 * np.linalg.norm(a)
