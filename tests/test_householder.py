"""Unit and property tests for the Householder machinery."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st
from hypothesis.extra import numpy as hnp

from repro.kernels.householder import (
    apply_q,
    apply_q_right,
    apply_qt,
    apply_qt_right,
    form_q,
    householder_vector,
    qr_factor,
)


def finite_vectors(min_size=1, max_size=12):
    return hnp.arrays(
        dtype=np.float64,
        shape=st.integers(min_value=min_size, max_value=max_size),
        elements=st.floats(min_value=-1e3, max_value=1e3, allow_nan=False),
    )


class TestHouseholderVector:
    def test_annihilates_tail(self, rng):
        x = rng.standard_normal(7)
        v, tau, beta = householder_vector(x)
        h = np.eye(7) - tau * np.outer(v, v)
        y = h @ x
        assert y[0] == pytest.approx(beta, rel=1e-12)
        np.testing.assert_allclose(y[1:], 0.0, atol=1e-12)

    def test_norm_preserved(self, rng):
        x = rng.standard_normal(5)
        _, _, beta = householder_vector(x)
        assert abs(beta) == pytest.approx(np.linalg.norm(x), rel=1e-12)

    def test_already_aligned(self):
        x = np.array([3.0, 0.0, 0.0])
        v, tau, beta = householder_vector(x)
        assert tau == 0.0
        assert beta == 3.0

    def test_single_element(self):
        v, tau, beta = householder_vector(np.array([-2.5]))
        assert tau == 0.0
        assert beta == -2.5

    @pytest.mark.parametrize("scale", [7.24853263e-162, 1e-200, 1e180])
    def test_extreme_magnitudes_stay_orthogonal(self, scale):
        # Squared entries under/overflow double precision; the dlarfg-style
        # rescaling must keep the reflector orthogonal (hypothesis found the
        # 7.2e-162 case).
        x = np.array([1.0, 1.0]) * scale
        v, tau, beta = householder_vector(x)
        h = np.eye(x.size) - tau * np.outer(v, v)
        np.testing.assert_allclose(h @ h, np.eye(x.size), atol=1e-12)
        assert abs(beta) == pytest.approx(np.sqrt(2.0) * scale, rel=1e-12)

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            householder_vector(np.array([]))

    @settings(max_examples=50, deadline=None)
    @given(x=finite_vectors())
    def test_property_reflection(self, x):
        v, tau, beta = householder_vector(x)
        h = np.eye(x.size) - tau * np.outer(v, v)
        y = h @ x
        np.testing.assert_allclose(y[1:], 0.0, atol=1e-9 * max(1.0, np.linalg.norm(x)))
        # H is orthogonal and symmetric (an elementary reflector).
        np.testing.assert_allclose(h @ h, np.eye(x.size), atol=1e-12)


class TestQRFactor:
    @pytest.mark.parametrize("shape", [(4, 4), (6, 3), (3, 3), (8, 5), (5, 1), (1, 1)])
    def test_factorization(self, shape, rng):
        a = rng.standard_normal(shape)
        v, t, r = qr_factor(a)
        q = form_q(v, t)
        # R upper trapezoidal
        np.testing.assert_allclose(np.tril(r, -1), 0.0, atol=1e-12)
        # A = Q R
        np.testing.assert_allclose(q @ r, a, atol=1e-12)
        # Q orthogonal
        np.testing.assert_allclose(q.T @ q, np.eye(shape[0]), atol=1e-12)

    def test_rejects_1d(self):
        with pytest.raises(ValueError):
            qr_factor(np.zeros(4))

    def test_t_factor_matches_product_of_reflectors(self, rng):
        a = rng.standard_normal((5, 5))
        v, t, _ = qr_factor(a)
        # Rebuild Q from the individual reflectors and compare.
        q_ref = np.eye(5)
        taus = np.diagonal(t)
        for j in range(5):
            h = np.eye(5) - taus[j] * np.outer(v[:, j], v[:, j])
            q_ref = q_ref @ h
        np.testing.assert_allclose(form_q(v, t), q_ref, atol=1e-12)


class TestApply:
    def test_apply_qt_matches_explicit(self, rng):
        a = rng.standard_normal((6, 4))
        c = rng.standard_normal((6, 3))
        v, t, _ = qr_factor(a)
        q = form_q(v, t)
        np.testing.assert_allclose(apply_qt(v, t, c), q.T @ c, atol=1e-12)
        np.testing.assert_allclose(apply_q(v, t, c), q @ c, atol=1e-12)

    def test_apply_right_matches_explicit(self, rng):
        a = rng.standard_normal((5, 5))
        c = rng.standard_normal((3, 5))
        v, t, _ = qr_factor(a)
        q = form_q(v, t)
        np.testing.assert_allclose(apply_q_right(v, t, c), c @ q, atol=1e-12)
        np.testing.assert_allclose(apply_qt_right(v, t, c), c @ q.T, atol=1e-12)

    def test_inputs_not_modified(self, rng):
        a = rng.standard_normal((4, 4))
        c = rng.standard_normal((4, 2))
        c_copy = c.copy()
        v, t, _ = qr_factor(a)
        apply_qt(v, t, c)
        np.testing.assert_array_equal(c, c_copy)

    def test_form_q_embeds(self, rng):
        a = rng.standard_normal((3, 3))
        v, t, _ = qr_factor(a)
        q = form_q(v, t, m=5)
        assert q.shape == (5, 5)
        np.testing.assert_allclose(q[3:, 3:], np.eye(2))
        with pytest.raises(ValueError):
            form_q(v, t, m=2)

    def test_build_t_upper_triangular(self, rng):
        a = rng.standard_normal((6, 4))
        v, t, _ = qr_factor(a)
        np.testing.assert_allclose(np.tril(t, -1), 0.0, atol=0.0)
