"""Statistical validation of the Monte-Carlo scenario machinery (@mc).

The centerpiece is a hand-computable scenario: two independent equal-cost
tasks pinned to two single-core nodes, under straggler faults with
``prob=1`` and scale ``theta``.  Every draw's makespan is then exactly

    M = d * (1 + max(E0, E1)),   E_i ~ iid Exponential(theta),

whose CDF, quantiles and mean have closed forms:

    P(max <= x) = (1 - exp(-x/theta))^2
    x_q         = -theta * ln(1 - sqrt(q))
    E[max]      = theta * (1 + 1/2)

so the empirical ``MakespanDistribution`` can be checked against theory
with asymptotic standard errors (quantile SE = sqrt(q(1-q)/n) / f(x_q)).
A KS test checks the straggler excess against its configured exponential,
and a fail-stop moment check validates the geometric retry model.

These tests run hundreds of (tiny) engine replays; they are marked both
``mc`` and ``slow`` so the fast CI matrix skips them and the coverage job
still exercises them.
"""

import math

import numpy as np
import pytest

from repro.ir.program import Op, Program
from repro.kernels.costs import KERNEL_WEIGHTS, KernelName
from repro.runtime.faults import FailStopFaults, StragglerFaults
from repro.runtime.machine import Machine
from repro.runtime.scenario import Scenario, run_scenario

stats = pytest.importorskip("scipy.stats")

pytestmark = [pytest.mark.mc, pytest.mark.slow]

THETA = 0.5
N_DRAWS = 512
SEED = 2026


def _two_task_program() -> Program:
    """Two independent GEQRT ops writing disjoint tiles (no edges)."""
    ops = [
        Op(index=i, kernel=KernelName.GEQRT, params=(i,),
           reads=frozenset(), writes=frozenset({("upper", i, 0)}),
           weight=KERNEL_WEIGHTS[KernelName.GEQRT], owner_tile=(i, 0),
           step="qr")
        for i in range(2)
    ]
    program = Program.from_ops(ops)
    assert program.n_edges == 0
    return program


@pytest.fixture(scope="module")
def mc_run():
    """One 512-draw scenario run of the two-task program, shared by the
    quantile / mean / KS assertions below."""
    program = _two_task_program()
    machine = Machine(n_nodes=2, cores_per_node=1, tile_size=100)
    scenario = Scenario(
        name="always-straggle",
        faults=StragglerFaults(prob=1.0, scale=THETA),
    )
    run = run_scenario(
        program, machine, scenario,
        draws=N_DRAWS, seed=SEED, node_of_op=[0, 1],
    )
    d = run.schedule.makespan  # nominal: both tasks cost d, in parallel
    return d, run.distribution


def _max_exp_quantile(q: float) -> float:
    """Quantile of max of two iid Exponential(THETA)."""
    return -THETA * math.log(1.0 - math.sqrt(q))


def _max_exp_pdf(x: float) -> float:
    """Density of max of two iid Exponential(THETA)."""
    return (2.0 / THETA) * (1.0 - math.exp(-x / THETA)) * math.exp(-x / THETA)


def _quantile_tolerance(q: float) -> float:
    """4 asymptotic standard errors of the empirical q-quantile."""
    return 4.0 * math.sqrt(q * (1.0 - q) / N_DRAWS) / _max_exp_pdf(
        _max_exp_quantile(q)
    )


class TestClosedFormMakespan:
    def test_every_draw_is_nominal_times_a_factor_above_one(self, mc_run):
        d, dist = mc_run
        assert dist.n_draws == N_DRAWS
        assert dist.min >= d  # factors >= 1: no draw beats the nominal
        assert d > 0

    def test_p95_matches_closed_form(self, mc_run):
        d, dist = mc_run
        theory = d * (1.0 + _max_exp_quantile(0.95))
        assert abs(dist.p95 - theory) <= d * _quantile_tolerance(0.95)

    def test_p50_matches_closed_form(self, mc_run):
        d, dist = mc_run
        theory = d * (1.0 + _max_exp_quantile(0.5))
        assert abs(dist.p50 - theory) <= d * _quantile_tolerance(0.5)

    def test_mean_matches_closed_form_within_ci(self, mc_run):
        d, dist = mc_run
        # E[max of two iid Exp(theta)] = theta * (1 + 1/2); the 95% CI the
        # distribution reports is on the mean, so theory must land in a
        # (slightly widened, 4-SE) version of it.
        theory = d * (1.0 + 1.5 * THETA)
        half = (dist.ci95_high - dist.ci95_low) / 2.0  # 1.96 SE
        assert abs(dist.mean - theory) <= half * (4.0 / 1.96)

    def test_draws_match_max_exponential_cdf(self, mc_run):
        # KS of the realized makespans against the closed-form CDF of
        # d * (1 + max(E0, E1)) — the full engine path, not just the model.
        d, dist = mc_run
        excess = (np.asarray(dist.makespans) / d) - 1.0
        cdf = lambda x: (1.0 - np.exp(-np.maximum(x, 0.0) / THETA)) ** 2
        result = stats.kstest(excess, cdf)
        assert result.pvalue > 0.01, result


class TestModelDistributions:
    def test_straggler_excess_is_exponential(self):
        # KS-style check straight at the model: with prob=1 every op
        # straggles and factor - 1 ~ Exponential(scale).
        rng = np.random.default_rng(5)
        factors, events = StragglerFaults(prob=1.0, scale=THETA).sample(
            rng, 64, 64
        )
        assert (events == 64).all()
        excess = (factors - 1.0).ravel()
        result = stats.kstest(excess, "expon", args=(0.0, THETA))
        assert result.pvalue > 0.01, result

    def test_straggler_event_rate(self):
        rng = np.random.default_rng(6)
        prob = 0.2
        factors, events = StragglerFaults(prob=prob, scale=1.0).sample(
            rng, 128, 128
        )
        n = factors.size
        rate = events.sum() / n
        se = math.sqrt(prob * (1.0 - prob) / n)
        assert abs(rate - prob) <= 4.0 * se

    def test_fail_stop_mean_factor_matches_geometric(self):
        # failures/op ~ Geometric: mean p/(1-p), so E[factor] with
        # rework r is 1 + r * p/(1-p); variance is r^2 * p/(1-p)^2.
        rng = np.random.default_rng(7)
        prob, rework = 0.2, 0.5
        factors, _ = FailStopFaults(prob=prob, rework=rework).sample(
            rng, 128, 128
        )
        n = factors.size
        mean_theory = 1.0 + rework * prob / (1.0 - prob)
        sd_theory = rework * math.sqrt(prob) / (1.0 - prob)
        se = sd_theory / math.sqrt(n)
        assert abs(factors.mean() - mean_theory) <= 4.0 * se
