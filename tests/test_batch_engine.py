"""Differential and property tests for the batched candidate simulator.

The tentpole contract of :mod:`repro.runtime.batch`: one batched pass over
many (machine, grid, policy, network) candidates produces schedules
**bit-identical** to per-candidate
:meth:`~repro.runtime.engine.SimulationEngine.run` calls — across all
policies x networks x grids, against both engine paths (SoA fast and
retained legacy), under ``REPRO_VERIFY=1``, and independent of
``PYTHONHASHSEED`` — while the analytic pre-pruning of
:func:`~repro.runtime.batch.simulate_resolved_batch` never changes the
winning candidate.
"""

import itertools
import os
import subprocess
import sys

import pytest

from repro.api.execute import execute, execute_sweep
from repro.api.plan import SvdPlan
from repro.api.resolver import resolve
from repro.ir import clear_program_cache, get_program
from repro.runtime.batch import (
    BatchCandidate,
    BatchEngine,
    simulate_batch,
    simulate_resolved_batch,
)
from repro.runtime.engine import SimulationEngine, engine_memo_stats
from repro.runtime.machine import Machine
from repro.runtime.simulator import _ge2bnd_setup
from repro.tiles.distribution import ProcessGrid
from repro.trees import make_tree
from repro.tuning.search import tune
from repro.tuning.space import SearchSpace


@pytest.fixture(autouse=True)
def _fresh_program_cache():
    clear_program_cache()
    yield
    clear_program_cache()


#: (algorithm, p, q, tree, machine, grid) — single- and multi-node shapes,
#: square and tall-skinny grids (mirrors the bench_scale audit configs).
CONFIGS = [
    ("bidiag", 10, 8, "greedy",
     Machine(n_nodes=1, cores_per_node=8, tile_size=160), None),
    ("bidiag", 8, 8, "flattt",
     Machine(n_nodes=4, cores_per_node=4, tile_size=100), ProcessGrid(2, 2)),
    ("rbidiag", 12, 4, "greedy",
     Machine(n_nodes=2, cores_per_node=4, tile_size=100), ProcessGrid(2, 1)),
]

ALL_POLICIES = ("list", "critical-path", "locality", "fifo", "weight", "random")
NETWORKS = ("uniform", "alpha-beta")


def _assert_schedules_identical(a, b):
    assert a.makespan == b.makespan  # bitwise, not approx
    assert a.start == b.start
    assert a.finish == b.finish
    assert a.node_of_task == b.node_of_task
    assert a.core_of_task == b.core_of_task
    assert a.busy_time_per_node == b.busy_time_per_node
    assert a.messages == b.messages
    assert a.comm_bytes == b.comm_bytes
    assert a.comm_time_per_node == b.comm_time_per_node
    assert a.messages_per_node == b.messages_per_node


def _setup(config):
    alg, p, q, tree, machine, grid = config
    m, n = p * machine.tile_size, q * machine.tile_size
    return machine, _ge2bnd_setup(
        m, n, machine, tree=tree, algorithm=alg, grid=grid
    )


class TestBatchEquivalence:
    """Batched schedules == per-candidate engine runs, every field."""

    @pytest.mark.parametrize("engine_fast", [True, False])
    @pytest.mark.parametrize("config", CONFIGS, ids=lambda c: f"{c[0]}-{c[1]}x{c[2]}")
    def test_policy_network_matrix(self, config, engine_fast):
        machine, setup = _setup(config)
        candidates = [
            BatchCandidate(machine, setup.distribution, policy=pol, network=net)
            for pol, net in itertools.product(ALL_POLICIES, NETWORKS)
        ]
        schedules = simulate_batch(setup.program, candidates)
        for cand, got in zip(candidates, schedules):
            ref = SimulationEngine(
                cand.machine,
                cand.distribution,
                policy=cand.policy,
                network=cand.network,
                fast=engine_fast,
            ).run(setup.program)
            _assert_schedules_identical(got, ref)

    def test_heterogeneous_machines_one_batch(self):
        # Candidates may differ in their duration model (inner block) while
        # sharing the compiled program: per-machine axes must not leak.
        machines = [
            Machine(n_nodes=1, cores_per_node=8, tile_size=160, inner_block=ib)
            for ib in (32, 40, 64)
        ]
        program = get_program("bidiag", 9, 7, make_tree("greedy"))
        candidates = [
            BatchCandidate(m, policy=pol)
            for m in machines
            for pol in ("list", "critical-path")
        ]
        schedules = simulate_batch(program, candidates)
        makespans = set()
        for cand, got in zip(candidates, schedules):
            ref = SimulationEngine(cand.machine, policy=cand.policy).run(program)
            _assert_schedules_identical(got, ref)
            makespans.add(got.makespan)
        assert len(makespans) > 1  # the machines genuinely differ

    def test_dedup_false_still_identical(self):
        machine, setup = _setup(CONFIGS[0])
        candidates = [
            BatchCandidate(machine, setup.distribution, policy=pol)
            for pol in ("list", "locality")  # identical order on one node
        ]
        dedup = simulate_batch(setup.program, candidates, dedup=True)
        fresh = simulate_batch(setup.program, candidates, dedup=False)
        assert dedup[0] is dedup[1]  # shared object
        assert fresh[0] is not fresh[1]
        _assert_schedules_identical(dedup[1], fresh[1])

    def test_verify_hooks_accept_batched_schedules(self, monkeypatch):
        monkeypatch.setenv("REPRO_VERIFY", "1")
        machine, setup = _setup(CONFIGS[1])
        candidates = [
            BatchCandidate(machine, setup.distribution, policy=pol, network=net)
            for pol in ("list", "locality")
            for net in NETWORKS
        ]
        schedules = simulate_batch(setup.program, candidates)
        for cand, got in zip(candidates, schedules):
            ref = SimulationEngine(
                cand.machine, cand.distribution,
                policy=cand.policy, network=cand.network,
            ).run(setup.program)
            _assert_schedules_identical(got, ref)

    def test_lower_bounds_never_exceed_makespans(self):
        for config in CONFIGS:
            machine, setup = _setup(config)
            candidates = [
                BatchCandidate(machine, setup.distribution, policy=pol)
                for pol in ALL_POLICIES
            ]
            engine = BatchEngine()
            bounds = engine.lower_bounds(setup.program, candidates)
            schedules = engine.run_batch(setup.program, candidates)
            for bound, sched in zip(bounds, schedules):
                assert 0.0 < bound <= sched.makespan


class TestBatchMemoStats:
    """engine.memo.batch.* counters pin the sharing the batch layer claims."""

    def _delta(self, before):
        stats = engine_memo_stats()
        return {k: stats[k] - before.get(k, 0) for k in stats}

    def test_dedup_and_simulation_counts(self):
        machine, setup = _setup(CONFIGS[0])
        before = engine_memo_stats()
        candidates = [
            BatchCandidate(machine, setup.distribution, policy=pol)
            for pol in ("list", "locality", "fifo")
        ]
        simulate_batch(setup.program, candidates)
        delta = self._delta(before)
        assert delta["batch_candidates"] == 3
        # list and locality coincide on one node -> one dedup hit.
        assert delta["batch_simulated"] == 2
        assert delta["batch_deduped"] == 1
        assert delta["batch_pruned"] == 0
        # Locality degenerates to list on one node, so its order resolves
        # through list's memo entry: 2 misses (list, fifo) + 1 hit.
        assert delta["batch_order_misses"] == 2
        assert delta["batch_order_hits"] == 1

    def test_machine_invariant_order_shared_across_machines(self):
        program = get_program("bidiag", 8, 6, make_tree("greedy"))
        machines = [
            Machine(n_nodes=1, cores_per_node=8, tile_size=160, inner_block=ib)
            for ib in (32, 40)
        ]
        before = engine_memo_stats()
        # critical-path ranks by Table-I weights: one order serves both
        # machines.  list ranks by durations: one order per machine.
        simulate_batch(program, [
            BatchCandidate(m, policy=pol)
            for pol in ("critical-path", "list")
            for m in machines
        ])
        delta = self._delta(before)
        assert delta["batch_order_misses"] == 3  # 1 critical-path + 2 list
        assert delta["batch_order_hits"] == 1    # critical-path, 2nd machine
        assert delta["batch_simulated"] == 4
        assert delta["batch_deduped"] == 0

    def test_second_batch_hits_order_memo(self):
        machine, setup = _setup(CONFIGS[0])
        candidates = [BatchCandidate(machine, setup.distribution, policy="list")]
        simulate_batch(setup.program, candidates)
        before = engine_memo_stats()
        simulate_batch(setup.program, candidates)
        delta = self._delta(before)
        assert delta["batch_order_hits"] == 1
        assert delta["batch_order_misses"] == 0

    def test_stats_expose_batch_keys(self):
        stats = engine_memo_stats()
        for key in (
            "batch_order_programs",
            "batch_order_hits",
            "batch_order_misses",
            "batch_candidates",
            "batch_simulated",
            "batch_deduped",
            "batch_pruned",
        ):
            assert key in stats


class TestResolvedPlanBatch:
    """simulate_resolved_batch == execute(plan, 'simulate'), scalar for scalar."""

    def _plans(self, stage="ge2bnd", network="alpha-beta"):
        return [
            SvdPlan(m=1280, n=1024, tile_size=128, stage=stage,
                    tree=tree, policy=pol, network=network)
            for tree in ("greedy", "flattt")
            for pol in ("list", "critical-path", "random")
        ]

    @pytest.mark.parametrize("stage", ["ge2bnd", "ge2val"])
    def test_matches_execute(self, stage):
        resolved = [resolve(p) for p in self._plans(stage=stage)]
        outcomes = simulate_resolved_batch(resolved, objective="makespan",
                                           prune=False)
        for rp, outcome in zip(resolved, outcomes):
            assert outcome.error is None
            ref = execute(rp, "simulate")
            sim = outcome.result
            assert sim.time_seconds == ref.time_seconds
            assert sim.gflops == ref.gflops
            assert sim.messages == ref.messages
            assert sim.comm_bytes == ref.comm_bytes
            assert sim.comm_seconds == ref.comm_seconds
            assert sim.n_tasks == ref.n_tasks
            assert sim.policy == ref.policy
            assert sim.network == ref.network
            assert outcome.score == ref.time_seconds

    @pytest.mark.parametrize("objective", ["makespan", "gflops"])
    def test_pruned_winner_matches_exhaustive(self, objective):
        sign = -1.0 if objective == "gflops" else 1.0
        resolved = [resolve(p) for p in self._plans()]
        full = simulate_resolved_batch(resolved, objective=objective,
                                       prune=False)
        pruned = simulate_resolved_batch(resolved, objective=objective,
                                         prune=True)
        assert all(o.score is not None for o in full)

        def best(outs):
            costs = [
                sign * o.score if o.score is not None else float("inf")
                for o in outs
            ]
            return min(range(len(outs)), key=lambda i: (costs[i], i))

        i_full, i_pruned = best(full), best(pruned)
        assert i_full == i_pruned
        assert full[i_full].score == pruned[i_pruned].score
        for o_full, o_pruned in zip(full, pruned):
            if not o_pruned.pruned:  # every survivor scored identically
                assert o_pruned.score == o_full.score

    def test_gesvd_stage_error_captured_per_plan(self):
        good = resolve(self._plans()[0])
        bad = resolve(SvdPlan(m=1280, n=1024, tile_size=128, stage="gesvd"))
        outcomes = simulate_resolved_batch([good, bad], objective="makespan")
        assert outcomes[0].error is None and outcomes[0].score is not None
        assert outcomes[1].error is not None and "gesvd" in outcomes[1].error
        assert isinstance(outcomes[1].exception, ValueError)

    def test_comm_time_objective_never_prunes(self):
        resolved = [resolve(p) for p in self._plans()]
        outcomes = simulate_resolved_batch(resolved, objective="comm-time",
                                           prune=True)
        assert all(not o.pruned and o.score is not None for o in outcomes)


class TestTuningBatchMode:
    """tune(batch=...) is score-for-score identical across both paths."""

    PLAN = SvdPlan(m=1600, n=1600, stage="ge2bnd", n_cores=8)
    SPACE = SearchSpace(tile_sizes=(100, 160), trees=("greedy", "flattt"),
                        variants=("bidiag",), inner_blocks=(40,))

    @pytest.mark.parametrize("strategy", ["grid", "halving"])
    def test_batch_matches_per_candidate(self, strategy):
        batched = tune(self.PLAN, space=self.SPACE, strategy=strategy,
                       cache=False, batch=True)
        serial = tune(self.PLAN, space=self.SPACE, strategy=strategy,
                      cache=False, batch=False)
        assert batched.best_score == serial.best_score
        assert batched.best_plan.tile_size == serial.best_plan.tile_size
        assert str(batched.best_plan.tree) == str(serial.best_plan.tree)
        # Non-pruned candidates agree score-for-score as well.
        by_key = {
            (ev.plan.tile_size, str(ev.plan.tree), ev.fidelity): ev
            for ev in serial.evaluations
        }
        for ev in batched.evaluations:
            ref = by_key[(ev.plan.tile_size, str(ev.plan.tree), ev.fidelity)]
            if ev.score is not None and ref.score is not None:
                assert ev.score == ref.score

    def test_default_batches_simulator_objectives(self):
        # batch=None (the default) must agree with explicit batch=True.
        auto = tune(self.PLAN, space=self.SPACE, cache=False)
        explicit = tune(self.PLAN, space=self.SPACE, cache=False, batch=True)
        assert auto.best_score == explicit.best_score

    def test_non_simulator_objective_falls_back(self):
        # critical-path has no batch_key; batch=True must still work.
        result = tune(self.PLAN, space=self.SPACE, cache=False,
                      objective="critical-path", batch=True)
        assert result.best_score > 0


class TestSweepBatchMode:
    """execute_sweep's batched path returns per-plan-identical rows."""

    def _plans(self):
        return SvdPlan(
            m=1280, n=1024, tile_size=128, stage="ge2bnd", network="alpha-beta"
        ).sweep(tree=["greedy", "flattt"], policy=["list", "random"])

    def test_rows_identical_to_per_plan(self):
        plans = self._plans()
        assert execute_sweep(plans) == execute_sweep(plans, batch=False)

    def test_tracing_sweep_falls_back_per_plan(self):
        plans = [p.with_(trace=True) for p in self._plans()]
        # Tracing requests the per-plan path; rows still agree.
        assert execute_sweep(plans) == execute_sweep(plans, batch=False)

    def test_non_simulate_backend_unaffected(self):
        rows = execute_sweep(self._plans()[:2], backend="dag")
        assert len(rows) == 2 and all(r["backend"] == "dag" for r in rows)


class TestHashSeedDeterminism:
    """Batched schedules and dense-rank orders are hash-seed independent."""

    SNIPPET = (
        "import sys; sys.path.insert(0, 'src')\n"
        "from repro.ir import compile_program\n"
        "from repro.runtime.batch import BatchCandidate, simulate_batch\n"
        "from repro.runtime.machine import Machine\n"
        "from repro.trees import GreedyTree\n"
        "program = compile_program('bidiag', 7, 5, GreedyTree())\n"
        "machine = Machine(n_nodes=4, cores_per_node=2, tile_size=100)\n"
        "candidates = [BatchCandidate(machine, policy=p, network=n)\n"
        "              for p in ('list', 'critical-path', 'locality')\n"
        "              for n in ('uniform', 'alpha-beta')]\n"
        "for sched in simulate_batch(program, candidates):\n"
        "    print(sched.makespan, sched.messages, sched.comm_bytes)\n"
    )

    def _run(self, hash_seed):
        env = dict(os.environ, PYTHONHASHSEED=hash_seed)
        proc = subprocess.run(
            [sys.executable, "-c", self.SNIPPET],
            capture_output=True,
            text=True,
            env=env,
            cwd=__file__.rsplit("/tests/", 1)[0],
            check=True,
        )
        return proc.stdout

    @pytest.mark.slow
    def test_batched_schedules_identical_across_hash_seeds(self):
        out = self._run("0")
        assert out == self._run("4242")
        assert len(out.strip().splitlines()) == 6
