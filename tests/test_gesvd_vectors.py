"""Tests for the singular-vector pipeline (BND2BD-UV, BDSQR, GESVD driver)."""

import numpy as np
import pytest

from repro.algorithms.band import BandBidiagonal
from repro.algorithms.bd2val import bidiagonal_singular_values
from repro.algorithms.bdsqr import bdsqr
from repro.algorithms.bnd2bd import band_to_bidiagonal
from repro.algorithms.bnd2bd_uv import band_to_bidiagonal_uv
from repro.algorithms.gesvd_pipeline import gesvd_two_stage
from repro.utils.generators import latms


def _bidiagonal(d, e):
    n = d.size
    b = np.zeros((n, n))
    np.fill_diagonal(b, d)
    if n > 1:
        b[np.arange(n - 1), np.arange(1, n)] = e
    return b


def _random_band(n, bw, seed=0):
    rng = np.random.default_rng(seed)
    a = np.triu(rng.standard_normal((n, n)))
    return a - np.triu(a, bw + 1)


class TestBnd2bdUV:
    def test_reconstruction(self):
        a = _random_band(14, 4, seed=1)
        d, e, u2, v2t = band_to_bidiagonal_uv(a, bandwidth=4)
        assert np.allclose(u2 @ _bidiagonal(d, e) @ v2t, a, atol=1e-12)

    def test_orthogonality(self):
        a = _random_band(10, 3, seed=2)
        _, _, u2, v2t = band_to_bidiagonal_uv(a, bandwidth=3)
        assert np.allclose(u2.T @ u2, np.eye(10), atol=1e-12)
        assert np.allclose(v2t @ v2t.T, np.eye(10), atol=1e-12)

    def test_matches_vectorless_variant(self):
        a = _random_band(12, 5, seed=3)
        d1, e1 = band_to_bidiagonal(a, bandwidth=5)
        d2, e2, _, _ = band_to_bidiagonal_uv(a, bandwidth=5)
        assert np.allclose(d1, d2)
        assert np.allclose(e1, e2)

    def test_band_container_input(self):
        a = _random_band(9, 2, seed=4)
        band = BandBidiagonal.from_dense(a, bandwidth=2)
        d, e, u2, v2t = band_to_bidiagonal_uv(band)
        assert np.allclose(u2 @ _bidiagonal(d, e) @ v2t, a, atol=1e-12)

    def test_bandwidth_one_is_identity(self):
        a = _random_band(7, 1, seed=5)
        d, e, u2, v2t = band_to_bidiagonal_uv(a, bandwidth=1)
        assert np.allclose(u2, np.eye(7))
        assert np.allclose(v2t, np.eye(7))
        assert np.allclose(d, np.diagonal(a))

    def test_trivial_sizes(self):
        d, e, u2, v2t = band_to_bidiagonal_uv(np.array([[3.0]]), bandwidth=1)
        assert d.shape == (1,) and e.shape == (0,)
        assert u2.shape == (1, 1)

    def test_validation(self):
        with pytest.raises(ValueError):
            band_to_bidiagonal_uv(np.zeros((3, 4)), bandwidth=2)
        with pytest.raises(ValueError):
            band_to_bidiagonal_uv(np.zeros((3, 3)))
        with pytest.raises(ValueError):
            band_to_bidiagonal_uv(np.zeros((3, 3)), bandwidth=0)


class TestBdsqr:
    def test_full_svd_of_bidiagonal(self):
        rng = np.random.default_rng(6)
        d = rng.standard_normal(15)
        e = rng.standard_normal(14)
        res = bdsqr(d, e)
        b = _bidiagonal(d, e)
        assert np.allclose(res.u @ np.diag(res.singular_values) @ res.vt, b, atol=1e-10)

    def test_values_match_valueonly_solver(self):
        rng = np.random.default_rng(7)
        d = rng.standard_normal(20)
        e = rng.standard_normal(19)
        got = bdsqr(d, e).singular_values
        want = bidiagonal_singular_values(d, e)
        assert np.allclose(got, want, atol=1e-10)

    def test_orthogonality(self):
        rng = np.random.default_rng(8)
        d = rng.standard_normal(12)
        e = rng.standard_normal(11)
        res = bdsqr(d, e)
        assert np.allclose(res.u.T @ res.u, np.eye(12), atol=1e-11)
        assert np.allclose(res.vt @ res.vt.T, np.eye(12), atol=1e-11)

    def test_descending_nonnegative(self):
        rng = np.random.default_rng(9)
        res = bdsqr(rng.standard_normal(10), rng.standard_normal(9))
        s = res.singular_values
        assert np.all(s >= 0)
        assert np.all(np.diff(s) <= 1e-12)

    def test_zero_diagonal_entry(self):
        d = np.array([2.0, 0.0, 3.0, 1.0])
        e = np.array([1.0, 1.5, 0.5])
        res = bdsqr(d, e)
        b = _bidiagonal(d, e)
        assert np.allclose(res.singular_values, np.linalg.svd(b, compute_uv=False), atol=1e-10)
        assert np.allclose(res.u @ np.diag(res.singular_values) @ res.vt, b, atol=1e-10)

    def test_negative_diagonal_sign_fix(self):
        d = np.array([-3.0, 2.0])
        e = np.array([0.0])
        res = bdsqr(d, e)
        assert np.allclose(res.singular_values, [3.0, 2.0])
        assert np.allclose(res.u @ np.diag(res.singular_values) @ res.vt, _bidiagonal(d, e))

    def test_size_one_and_empty(self):
        res = bdsqr(np.array([-2.0]), np.array([]))
        assert np.allclose(res.singular_values, [2.0])
        empty = bdsqr(np.array([]), np.array([]))
        assert empty.singular_values.size == 0

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            bdsqr(np.ones(4), np.ones(4))


class TestGesvdTwoStage:
    @pytest.mark.parametrize("tree", ["flatts", "flattt", "greedy", "auto"])
    def test_reconstruction_all_trees(self, tree):
        rng = np.random.default_rng(10)
        a = rng.standard_normal((18, 10))
        res = gesvd_two_stage(a, tile_size=4, tree=tree, n_cores=4)
        assert np.allclose(res.reconstruct(), a, atol=1e-10)

    def test_values_match_numpy(self):
        rng = np.random.default_rng(11)
        a = rng.standard_normal((20, 12))
        res = gesvd_two_stage(a, tile_size=5)
        assert np.allclose(res.singular_values, np.linalg.svd(a, compute_uv=False), atol=1e-10)

    def test_vectors_orthonormal(self):
        rng = np.random.default_rng(12)
        a = rng.standard_normal((16, 8))
        res = gesvd_two_stage(a, tile_size=4)
        assert np.allclose(res.u.T @ res.u, np.eye(8), atol=1e-10)
        assert np.allclose(res.vt @ res.vt.T, np.eye(8), atol=1e-10)

    def test_rbidiag_variant(self):
        rng = np.random.default_rng(13)
        a = rng.standard_normal((30, 8))
        res = gesvd_two_stage(a, tile_size=4, variant="rbidiag")
        assert np.allclose(res.reconstruct(), a, atol=1e-10)

    def test_prescribed_singular_values(self):
        sv = np.array([10.0, 5.0, 2.0, 1.0, 0.5, 0.1])
        a = latms(18, 6, sv, seed=3)
        res = gesvd_two_stage(a, tile_size=3)
        assert np.allclose(res.singular_values, sv, atol=1e-10)

    def test_stage_timings_present(self):
        rng = np.random.default_rng(14)
        a = rng.standard_normal((12, 6))
        res = gesvd_two_stage(a, tile_size=3)
        assert set(res.stage_seconds) == {
            "ge2bnd",
            "accumulate_u1v1",
            "bnd2bd",
            "bd2val",
            "compose",
        }
        assert all(t >= 0 for t in res.stage_seconds.values())

    def test_square_matrix(self):
        rng = np.random.default_rng(15)
        a = rng.standard_normal((12, 12))
        res = gesvd_two_stage(a, tile_size=4)
        assert np.allclose(res.reconstruct(), a, atol=1e-10)
