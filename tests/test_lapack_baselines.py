"""Tests for the classical one-stage baselines (repro.lapack)."""

import numpy as np
import pytest

from repro.lapack import (
    chan_bidiagonalization,
    chan_crossover,
    chan_flops,
    form_q_from_qr,
    gebd2,
    gebd2_flops,
    gebrd,
    gebrd_level3_fraction,
    geqrf,
    geqrf_flops,
)
from repro.models.flops import ge2bd_flops, rbidiag_flops


def _bidiagonal(d, e):
    n = d.size
    b = np.zeros((n, n))
    np.fill_diagonal(b, d)
    if n > 1:
        b[np.arange(n - 1), np.arange(1, n)] = e
    return b


class TestGebd2:
    def test_reconstruction(self):
        rng = np.random.default_rng(0)
        a = rng.standard_normal((10, 6))
        res = gebd2(a, compute_uv=True)
        assert np.allclose(res.reconstruct(10), a, atol=1e-12)

    def test_orthogonality(self):
        rng = np.random.default_rng(1)
        a = rng.standard_normal((9, 5))
        res = gebd2(a, compute_uv=True)
        assert np.allclose(res.u.T @ res.u, np.eye(9), atol=1e-12)
        assert np.allclose(res.vt @ res.vt.T, np.eye(5), atol=1e-12)

    def test_bidiagonal_structure(self):
        rng = np.random.default_rng(2)
        a = rng.standard_normal((8, 8))
        res = gebd2(a)
        b = res.bidiagonal()
        off_band = b - np.triu(np.tril(b, 1))
        assert np.allclose(off_band, 0.0)

    def test_singular_values_match_numpy(self):
        rng = np.random.default_rng(3)
        a = rng.standard_normal((12, 7))
        res = gebd2(a)
        got = np.sort(np.linalg.svd(_bidiagonal(res.d, res.e), compute_uv=False))[::-1]
        want = np.linalg.svd(a, compute_uv=False)
        assert np.allclose(got, want, atol=1e-10)

    def test_square_matrix(self):
        rng = np.random.default_rng(4)
        a = rng.standard_normal((6, 6))
        res = gebd2(a, compute_uv=True)
        assert np.allclose(res.reconstruct(6), a, atol=1e-12)

    def test_single_column(self):
        a = np.array([[3.0], [4.0]])
        res = gebd2(a)
        assert res.d.shape == (1,)
        assert res.e.shape == (0,)
        assert np.isclose(abs(res.d[0]), 5.0)

    def test_wide_matrix_rejected(self):
        with pytest.raises(ValueError):
            gebd2(np.zeros((3, 5)))

    def test_non_2d_rejected(self):
        with pytest.raises(ValueError):
            gebd2(np.zeros(4))

    def test_no_uv_returns_none(self):
        res = gebd2(np.eye(4))
        assert res.u is None and res.vt is None
        with pytest.raises(ValueError):
            res.reconstruct(4)

    def test_flops_match_paper_count(self):
        assert gebd2_flops(3000, 1000) == pytest.approx(ge2bd_flops(3000, 1000))
        with pytest.raises(ValueError):
            gebd2_flops(10, 20)


class TestGebrd:
    def test_matches_unblocked(self):
        rng = np.random.default_rng(5)
        a = rng.standard_normal((11, 7))
        blocked = gebrd(a, block_size=3)
        unblocked = gebd2(a)
        # Same transforms in the same order => bit-for-bit identical diagonals.
        assert np.allclose(blocked.d, unblocked.d)
        assert np.allclose(blocked.e, unblocked.e)

    def test_reconstruction_with_vectors(self):
        rng = np.random.default_rng(6)
        a = rng.standard_normal((10, 10))
        res = gebrd(a, block_size=4, compute_uv=True)
        assert np.allclose(res.reconstruct(10), a, atol=1e-12)

    def test_block_size_does_not_change_result(self):
        rng = np.random.default_rng(7)
        a = rng.standard_normal((9, 6))
        d1 = gebrd(a, block_size=1).d
        d2 = gebrd(a, block_size=6).d
        assert np.allclose(d1, d2)

    def test_invalid_block_size(self):
        with pytest.raises(ValueError):
            gebrd(np.eye(4), block_size=0)

    def test_level3_fraction_bounds(self):
        assert gebrd_level3_fraction(4000, 4000, 32) == pytest.approx(0.5 * (1 - 32 / 4000))
        assert gebrd_level3_fraction(100, 16, 32) == 0.0
        assert 0.0 <= gebrd_level3_fraction(10**6, 10**5) < 0.5


class TestGeqrf:
    def test_reconstruction(self):
        rng = np.random.default_rng(8)
        a = rng.standard_normal((12, 5))
        fact = geqrf(a, block_size=2)
        q = form_q_from_qr(fact)
        assert np.allclose(q @ fact.r[:5, :5], a, atol=1e-12)

    def test_q_orthonormal_columns(self):
        rng = np.random.default_rng(9)
        a = rng.standard_normal((15, 6))
        q = form_q_from_qr(geqrf(a))
        assert np.allclose(q.T @ q, np.eye(6), atol=1e-12)

    def test_r_upper_triangular(self):
        rng = np.random.default_rng(10)
        a = rng.standard_normal((8, 8))
        fact = geqrf(a, block_size=3)
        assert np.allclose(np.tril(fact.r, -1), 0.0)

    def test_apply_qt_inverts_apply_q(self):
        rng = np.random.default_rng(11)
        a = rng.standard_normal((9, 4))
        fact = geqrf(a)
        c = rng.standard_normal((9, 3))
        assert np.allclose(fact.apply_qt(fact.apply_q(c)), c, atol=1e-12)

    def test_r_matches_numpy_up_to_signs(self):
        rng = np.random.default_rng(12)
        a = rng.standard_normal((10, 6))
        r_ours = geqrf(a).r[:6, :6]
        r_np = np.linalg.qr(a, mode="r")
        assert np.allclose(np.abs(r_ours), np.abs(r_np), atol=1e-10)

    def test_flops_formula(self):
        assert geqrf_flops(3000, 1000) == pytest.approx(2 * 1000**2 * (3000 - 1000 / 3))

    def test_validation(self):
        with pytest.raises(ValueError):
            geqrf(np.zeros(3))
        with pytest.raises(ValueError):
            geqrf(np.eye(3), block_size=0)


class TestChan:
    def test_crossover_value(self):
        assert chan_crossover(999) == pytest.approx(5 * 999 / 3)

    def test_flops_equal_rbidiag_count(self):
        assert chan_flops(40000, 2000) == pytest.approx(rbidiag_flops(40000, 2000))

    def test_preqr_applied_above_threshold(self):
        rng = np.random.default_rng(13)
        a = rng.standard_normal((30, 6))
        res = chan_bidiagonalization(a)
        assert res.used_preqr

    def test_preqr_skipped_below_threshold(self):
        rng = np.random.default_rng(14)
        a = rng.standard_normal((7, 6))
        res = chan_bidiagonalization(a)
        assert not res.used_preqr

    def test_force_preqr(self):
        rng = np.random.default_rng(15)
        a = rng.standard_normal((7, 6))
        assert chan_bidiagonalization(a, force=True).used_preqr

    def test_singular_values_match(self):
        rng = np.random.default_rng(16)
        a = rng.standard_normal((25, 5))
        res = chan_bidiagonalization(a)
        got = np.sort(np.linalg.svd(_bidiagonal(res.d, res.e), compute_uv=False))[::-1]
        assert np.allclose(got, np.linalg.svd(a, compute_uv=False), atol=1e-10)

    def test_reconstruction_with_vectors(self):
        rng = np.random.default_rng(17)
        a = rng.standard_normal((20, 5))
        res = chan_bidiagonalization(a, compute_uv=True)
        b = _bidiagonal(res.d, res.e)
        assert np.allclose(res.u @ b @ res.vt, a, atol=1e-11)

    def test_reconstruction_without_preqr(self):
        rng = np.random.default_rng(18)
        a = rng.standard_normal((7, 6))
        res = chan_bidiagonalization(a, compute_uv=True)
        b = _bidiagonal(res.d, res.e)
        assert np.allclose(res.u @ b @ res.vt, a, atol=1e-11)

    def test_flop_crossover_consistency(self):
        # Below 5n/3 the direct count is lower, above it Chan's is lower.
        n = 600
        assert ge2bd_flops(n, n) < chan_flops(n, n)
        assert ge2bd_flops(4 * n, n) > chan_flops(4 * n, n)

    def test_wide_matrix_rejected(self):
        with pytest.raises(ValueError):
            chan_bidiagonalization(np.zeros((3, 5)))
