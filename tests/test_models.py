"""Tests for operation counts and competitor models."""

import pytest

from repro.models.competitors import (
    COMPETITORS,
    ElementalModel,
    MklModel,
    PlasmaModel,
    ScalapackModel,
)
from repro.models.flops import (
    bd2val_flops,
    bnd2bd_flops,
    chan_crossover_m,
    ge2bd_flops,
    ge2bnd_reported_flops,
    ge2val_reported_flops,
    rbidiag_flops,
)
from repro.runtime.machine import Machine


class TestFlops:
    def test_ge2bd_formula(self):
        m, n = 3000, 1000
        assert ge2bd_flops(m, n) == pytest.approx(4 * n * n * (m - n / 3))

    def test_rbidiag_formula(self):
        m, n = 3000, 1000
        assert rbidiag_flops(m, n) == pytest.approx(2 * n * n * (m + n))

    def test_chan_crossover(self):
        n = 999
        m_star = chan_crossover_m(n)
        assert m_star == pytest.approx(5 * n / 3)
        # Just below: direct bidiagonalization is cheaper; just above: R- wins.
        assert ge2bd_flops(int(m_star * 0.9), n) < rbidiag_flops(int(m_star * 0.9), n)
        assert ge2bd_flops(int(m_star * 1.1), n) > rbidiag_flops(int(m_star * 1.1), n)

    def test_square_case_rbidiag_more_expensive(self):
        n = 2000
        assert rbidiag_flops(n, n) > ge2bd_flops(n, n)

    def test_reported_flops_identical_for_both_variants(self):
        # The paper reports both algorithms with the BIDIAG operation count.
        assert ge2bnd_reported_flops(5000, 1000) == ge2bd_flops(5000, 1000)
        assert ge2val_reported_flops(5000, 1000) == ge2bd_flops(5000, 1000)

    def test_second_stage_lower_order(self):
        n, nb = 10000, 160
        assert bnd2bd_flops(n, nb) < 0.1 * ge2bd_flops(n, n)
        assert bd2val_flops(n) < bnd2bd_flops(n, nb)

    def test_validation(self):
        with pytest.raises(ValueError):
            ge2bd_flops(100, 200)
        with pytest.raises(ValueError):
            bnd2bd_flops(0, 160)
        with pytest.raises(ValueError):
            bd2val_flops(0)


class TestCompetitors:
    machine = Machine(n_nodes=1, cores_per_node=24, tile_size=160)

    def test_registry_complete(self):
        assert set(COMPETITORS) == {"PLASMA", "MKL", "ScaLAPACK", "Elemental"}

    def test_all_models_positive(self):
        for model in COMPETITORS.values():
            g = model.gflops(8000, 8000, self.machine)
            assert 0 < g < self.machine.peak_gflops * 2

    def test_scalapack_memory_bound_plateau(self):
        """ScaLAPACK stays an order of magnitude below the tiled approaches
        on large square problems (the ~50 GFlop/s plateau of Figure 2)."""
        model = ScalapackModel()
        g = model.gflops(20000, 20000, self.machine)
        assert g < 0.2 * self.machine.node_peak_gflops

    def test_mkl_beats_scalapack_on_square(self):
        mkl = MklModel().gflops(10000, 10000, self.machine)
        sca = ScalapackModel().gflops(10000, 10000, self.machine)
        assert mkl > sca

    def test_elemental_switches_to_chan(self):
        model = ElementalModel()
        machine = self.machine
        # Above the 1.2 threshold Chan's algorithm kicks in and the rate
        # improves markedly over the plain GEBRD model.
        skinny = model.gflops(40000, 2000, machine)
        gebrd_only = model.gebrd.gflops(40000, 2000, machine)
        assert skinny > 1.5 * gebrd_only
        # Below the threshold both coincide.
        square_time = model.time_seconds(5000, 5000, machine)
        assert square_time == pytest.approx(model.gebrd.time_seconds(5000, 5000, machine))

    def test_elemental_qr_scaling_caps(self):
        model = ElementalModel()
        m20 = Machine(n_nodes=20, cores_per_node=24, tile_size=160)
        m10 = Machine(n_nodes=10, cores_per_node=24, tile_size=160)
        g20 = model.gflops(400000, 2000, m20)
        g10 = model.gflops(400000, 2000, m10)
        # Beyond the cap the rate barely improves.
        assert g20 < 1.3 * g10

    def test_plasma_close_to_but_below_dplasma(self):
        from repro.runtime.simulator import simulate_ge2val

        dplasma = simulate_ge2val(6000, 6000, self.machine, tree="flatts", algorithm="bidiag")
        plasma = PlasmaModel().gflops(6000, 6000, self.machine)
        assert plasma <= dplasma.gflops * 1.05
        assert plasma > 0.5 * dplasma.gflops

    def test_scalapack_scales_modestly_with_nodes(self):
        model = ScalapackModel()
        g1 = model.gflops(20000, 20000, Machine(n_nodes=1))
        g9 = model.gflops(20000, 20000, Machine(n_nodes=9))
        assert g1 < g9 < 9 * g1
