"""Plan validation, canonicalization and sweep tests for the unified API."""

import dataclasses

import numpy as np
import pytest

from repro.api import (
    SvdPlan,
    as_tiled,
    chan_prefers_rbidiag,
    default_tile_size,
    resolve,
    resolve_variant,
)
from repro.config import Config, default_config
from repro.tiles.matrix import TiledMatrix
from repro.trees import AutoTree, FlatTSTree, GreedyTree, HierarchicalTree


class TestPlanValidation:
    def test_minimal_plan(self):
        plan = SvdPlan(m=40, n=24)
        assert plan.stage == "ge2val"
        assert plan.variant == "auto"
        assert plan.n_cores == 1

    def test_stage_and_variant_normalized(self):
        plan = SvdPlan(m=8, n=8, stage="GE2BND", variant="BiDiag")
        assert plan.stage == "ge2bnd"
        assert plan.variant == "bidiag"

    def test_rejects_unknown_stage(self):
        with pytest.raises(ValueError, match="stage"):
            SvdPlan(m=8, n=8, stage="nope")

    def test_rejects_unknown_variant(self):
        with pytest.raises(ValueError, match="variant"):
            SvdPlan(m=8, n=8, variant="nope")

    def test_requires_shape_or_matrix(self):
        with pytest.raises(ValueError, match="matrix"):
            SvdPlan()

    def test_rejects_wide(self):
        with pytest.raises(ValueError, match="transpose"):
            SvdPlan(m=8, n=16)

    def test_rejects_unknown_tree_name(self):
        with pytest.raises(ValueError, match="tree"):
            SvdPlan(m=8, n=8, tree="bogus")

    def test_rejects_unknown_machine(self):
        with pytest.raises(ValueError, match="preset"):
            SvdPlan(m=8, n=8, machine="cray")

    def test_rejects_bad_counts(self):
        with pytest.raises(ValueError):
            SvdPlan(m=8, n=8, n_cores=0)
        with pytest.raises(ValueError):
            SvdPlan(m=8, n=8, n_nodes=0)
        with pytest.raises(ValueError):
            SvdPlan(m=8, n=8, tile_size=0)

    def test_shape_derived_from_matrix(self, rng):
        a = rng.standard_normal((30, 20))
        plan = SvdPlan(matrix=a)
        assert (plan.m, plan.n) == (30, 20)

    def test_shape_mismatch_with_matrix(self, rng):
        a = rng.standard_normal((30, 20))
        with pytest.raises(ValueError, match="disagrees"):
            SvdPlan(matrix=a, m=31)

    def test_immutable(self):
        plan = SvdPlan(m=8, n=8)
        with pytest.raises(dataclasses.FrozenInstanceError):
            plan.m = 16

    def test_with_(self):
        plan = SvdPlan(m=8, n=8)
        other = plan.with_(tree="flatts", n_cores=4)
        assert other.tree == "flatts" and other.n_cores == 4
        assert plan.tree is None  # original untouched


class TestSweep:
    def test_cartesian_product_and_order(self):
        base = SvdPlan(m=400, n=400, stage="ge2bnd")
        plans = base.sweep(tree=["flatts", "greedy"], n_nodes=[1, 4])
        assert len(plans) == 4
        assert [(pl.tree, pl.n_nodes) for pl in plans] == [
            ("flatts", 1), ("flatts", 4), ("greedy", 1), ("greedy", 4)
        ]
        assert all(pl.m == 400 for pl in plans)

    def test_unknown_field(self):
        with pytest.raises(ValueError, match="unknown plan field"):
            SvdPlan(m=8, n=8).sweep(frobnicate=[1])

    def test_empty_grid(self):
        with pytest.raises(ValueError, match="empty"):
            SvdPlan(m=8, n=8).sweep(tree=[])


class TestChanCrossover:
    def test_predicate(self):
        assert chan_prefers_rbidiag(10, 4)
        assert chan_prefers_rbidiag(5, 3)
        assert not chan_prefers_rbidiag(6, 6)

    def test_resolve_variant(self):
        assert resolve_variant("auto", 10, 4) == "rbidiag"
        assert resolve_variant("auto", 6, 6) == "bidiag"
        assert resolve_variant("bidiag", 100, 2) == "bidiag"
        with pytest.raises(ValueError):
            resolve_variant("bogus", 4, 4)

    def test_matches_legacy_tile_level_helper(self):
        from repro.algorithms.svd import _choose_variant

        for p in range(1, 12):
            for q in range(1, p + 1):
                assert _choose_variant("auto", p, q) == resolve_variant("auto", p, q)


class TestResolve:
    def test_tile_geometry(self):
        r = resolve(SvdPlan(m=100, n=60, tile_size=16, stage="ge2bnd"))
        assert (r.p, r.q) == (7, 4)
        assert r.tile_size == 16

    def test_default_tile_size_small_matrix(self):
        # min(m, n) // 4 for small matrices (keeps the tile grid meaningful).
        assert resolve(SvdPlan(m=40, n=24)).tile_size == 6

    def test_default_tile_size_uses_config(self):
        # The paper's nb = 160 from default_config for large matrices...
        assert resolve(SvdPlan(m=4000, n=4000)).tile_size == default_config.tile_size
        # ...and a custom Config actually takes effect (both attached and passed).
        small = Config(tile_size=32)
        assert resolve(SvdPlan(m=4000, n=4000, config=small)).tile_size == 32
        assert resolve(SvdPlan(m=4000, n=4000), config=small).tile_size == 32
        assert default_tile_size(4000, 4000) == default_config.tile_size

    def test_tiled_matrix_input_pins_tile_size(self, rng):
        mat = TiledMatrix.from_dense(rng.standard_normal((24, 16)), 4)
        r = resolve(SvdPlan(matrix=mat))
        assert r.tile_size == 4 and (r.p, r.q) == (6, 4)
        with pytest.raises(ValueError, match="disagrees"):
            resolve(SvdPlan(matrix=mat, tile_size=8))

    def test_tree_canonicalization(self):
        assert isinstance(resolve(SvdPlan(m=8, n=8)).tree, GreedyTree)
        assert isinstance(resolve(SvdPlan(m=8, n=8, tree="flatts")).tree, FlatTSTree)
        auto = resolve(SvdPlan(m=8, n=8, tree="auto", n_cores=8)).tree
        assert isinstance(auto, AutoTree)
        assert auto.n_cores == 8
        assert auto.gamma == default_config.auto_gamma

    def test_auto_tree_gamma_from_config(self):
        cfg = Config(auto_gamma=3.0)
        auto = resolve(SvdPlan(m=8, n=8, tree="auto", config=cfg)).tree
        assert auto.gamma == 3.0

    def test_multinode_tree_is_hierarchical(self):
        r = resolve(SvdPlan(m=4000, n=1000, tile_size=200, n_nodes=4, stage="ge2bnd"))
        assert isinstance(r.tree, HierarchicalTree)
        # Tall-skinny tile shape (20 x 5) gets the nodes x 1 grid.
        assert (r.grid.rows, r.grid.cols) == (4, 1)

    def test_variant_resolved_element_level(self):
        assert resolve(SvdPlan(m=100, n=60)).variant == "rbidiag"
        assert resolve(SvdPlan(m=60, n=60)).variant == "bidiag"
        assert resolve(SvdPlan(m=100, n=60, variant="bidiag")).variant == "bidiag"

    def test_machine_matches_plan(self):
        r = resolve(SvdPlan(m=400, n=400, tile_size=100, n_cores=12, n_nodes=2))
        assert r.machine.cores_per_node == 12
        assert r.machine.n_nodes == 2
        assert r.machine.tile_size == 100

    def test_build_matrix_seeded(self):
        r1 = resolve(SvdPlan(m=10, n=6, seed=7))
        r2 = resolve(SvdPlan(m=10, n=6, seed=7))
        np.testing.assert_array_equal(r1.build_matrix(), r2.build_matrix())
        r3 = resolve(SvdPlan(m=10, n=6, seed=8))
        assert not np.array_equal(r1.build_matrix(), r3.build_matrix())

    def test_build_tiled_uses_explicit_matrix(self, rng):
        a = rng.standard_normal((12, 8))
        tiled = resolve(SvdPlan(matrix=a, tile_size=4)).build_tiled()
        np.testing.assert_array_equal(tiled.to_dense(), a)


class TestAsTiled:
    def test_passthrough(self, rng):
        mat = TiledMatrix.from_dense(rng.standard_normal((8, 8)), 4)
        assert as_tiled(mat) is mat

    def test_rejects_non_2d(self):
        with pytest.raises(ValueError, match="2-D"):
            as_tiled(np.zeros(3))

    def test_config_default(self, rng):
        a = rng.standard_normal((40, 24))
        assert as_tiled(a).nb == 6
        assert as_tiled(a, config=Config(tile_size=2)).nb == 2
        assert as_tiled(a, 8).nb == 8
