"""Tests for the band container, BND2BD, BD2VAL, GE2BD and the Jacobi SVD."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.algorithms.band import BandBidiagonal
from repro.algorithms.bd2val import (
    bidiagonal_singular_values,
    bidiagonal_sv_bisection,
)
from repro.algorithms.bnd2bd import band_to_bidiagonal
from repro.algorithms.ge2bd import bidiagonal_to_dense, golub_kahan_bidiagonalization
from repro.algorithms.jacobi import jacobi_svd


def _sv(a):
    return np.linalg.svd(a, compute_uv=False)


def _random_band(n, bw, rng):
    a = np.triu(rng.standard_normal((n, n)))
    a = np.triu(a) - np.triu(a, bw + 1)
    return a


class TestBandContainer:
    def test_from_dense_round_trip(self, rng):
        dense = _random_band(10, 3, rng)
        band = BandBidiagonal.from_dense(dense, 3)
        np.testing.assert_allclose(band.to_dense(), dense)

    def test_getitem_outside_band_is_zero(self, rng):
        band = BandBidiagonal.from_dense(_random_band(8, 2, rng), 2)
        assert band[5, 1] == 0.0
        assert band[0, 7] == 0.0

    def test_setitem_outside_band_raises(self):
        band = BandBidiagonal.zeros(6, 2)
        with pytest.raises(IndexError):
            band[0, 5] = 1.0
        with pytest.raises(IndexError):
            band[3, 1] = 1.0

    def test_getitem_out_of_matrix_raises(self):
        band = BandBidiagonal.zeros(6, 2)
        with pytest.raises(IndexError):
            _ = band[6, 0]

    def test_frobenius_norm(self, rng):
        dense = _random_band(9, 3, rng)
        band = BandBidiagonal.from_dense(dense, 3)
        assert band.frobenius_norm() == pytest.approx(np.linalg.norm(dense))

    def test_rejects_non_square(self):
        with pytest.raises(ValueError):
            BandBidiagonal.from_dense(np.zeros((3, 4)), 1)

    def test_copy_is_deep(self, rng):
        band = BandBidiagonal.from_dense(_random_band(6, 2, rng), 2)
        dup = band.copy()
        dup.data[:] = 0.0
        assert band.frobenius_norm() > 0


class TestBnd2Bd:
    @pytest.mark.parametrize("n,bw", [(8, 2), (12, 3), (20, 4), (15, 5), (10, 9)])
    def test_preserves_singular_values(self, n, bw, rng):
        dense = _random_band(n, bw, rng)
        d, e = band_to_bidiagonal(dense, bandwidth=bw)
        b = bidiagonal_to_dense(d, e)
        np.testing.assert_allclose(np.sort(_sv(b)), np.sort(_sv(dense)), atol=1e-9)

    def test_accepts_band_container(self, rng):
        dense = _random_band(12, 3, rng)
        band = BandBidiagonal.from_dense(dense, 3)
        d, e = band_to_bidiagonal(band)
        np.testing.assert_allclose(
            np.sort(_sv(bidiagonal_to_dense(d, e))), np.sort(_sv(dense)), atol=1e-9
        )

    def test_already_bidiagonal_is_identity(self, rng):
        n = 7
        d_in = rng.standard_normal(n)
        e_in = rng.standard_normal(n - 1)
        dense = bidiagonal_to_dense(d_in, e_in)
        d, e = band_to_bidiagonal(dense, bandwidth=1)
        np.testing.assert_allclose(d, d_in)
        np.testing.assert_allclose(e, e_in)

    def test_single_element(self):
        d, e = band_to_bidiagonal(np.array([[3.0]]), bandwidth=1)
        assert d[0] == 3.0
        assert e.size == 0

    def test_requires_bandwidth_for_dense_input(self, rng):
        with pytest.raises(ValueError):
            band_to_bidiagonal(_random_band(5, 2, rng))

    def test_rejects_non_square(self):
        with pytest.raises(ValueError):
            band_to_bidiagonal(np.zeros((3, 4)), bandwidth=1)


class TestBd2Val:
    def test_matches_numpy(self, rng):
        n = 30
        d = rng.standard_normal(n)
        e = rng.standard_normal(n - 1)
        ref = np.sort(_sv(bidiagonal_to_dense(d, e)))[::-1]
        got = bidiagonal_singular_values(d, e)
        np.testing.assert_allclose(got, ref, atol=1e-10 * max(1, ref[0]))

    def test_bisection_matches_qr_iteration(self, rng):
        n = 20
        d = rng.standard_normal(n)
        e = rng.standard_normal(n - 1)
        qr_vals = bidiagonal_singular_values(d, e)
        bis_vals = bidiagonal_sv_bisection(d, e)
        np.testing.assert_allclose(bis_vals, qr_vals, atol=1e-8 * max(1, qr_vals[0]))

    def test_diagonal_matrix(self):
        d = np.array([3.0, -1.0, 2.0])
        e = np.zeros(2)
        np.testing.assert_allclose(bidiagonal_singular_values(d, e), [3.0, 2.0, 1.0])

    def test_zero_diagonal_entry(self, rng):
        d = np.array([2.0, 0.0, 1.0, 4.0])
        e = np.array([1.0, 1.5, 0.5])
        ref = np.sort(_sv(bidiagonal_to_dense(d, e)))[::-1]
        got = bidiagonal_singular_values(d, e)
        np.testing.assert_allclose(got, ref, atol=1e-10)

    def test_single_value(self):
        np.testing.assert_allclose(bidiagonal_singular_values([-5.0], []), [5.0])
        np.testing.assert_allclose(bidiagonal_sv_bisection([-5.0], []), [5.0], atol=1e-10)

    def test_empty(self):
        assert bidiagonal_singular_values([], []).size == 0
        assert bidiagonal_sv_bisection([], []).size == 0

    def test_wrong_superdiagonal_length(self):
        with pytest.raises(ValueError):
            bidiagonal_singular_values([1.0, 2.0], [1.0, 2.0])
        with pytest.raises(ValueError):
            bidiagonal_sv_bisection([1.0, 2.0], [1.0, 2.0])

    @settings(max_examples=30, deadline=None)
    @given(n=st.integers(min_value=1, max_value=25), seed=st.integers(min_value=0, max_value=10**6))
    def test_property_random_bidiagonals(self, n, seed):
        rng = np.random.default_rng(seed)
        d = rng.standard_normal(n)
        e = rng.standard_normal(max(n - 1, 0))
        ref = np.sort(_sv(bidiagonal_to_dense(d, e)))[::-1]
        got = bidiagonal_singular_values(d, e)
        np.testing.assert_allclose(got, ref, atol=1e-8 * max(1.0, abs(ref[0])))


class TestGe2Bd:
    @pytest.mark.parametrize("shape", [(10, 10), (20, 8), (15, 1), (5, 5)])
    def test_matches_numpy(self, shape, rng):
        a = rng.standard_normal(shape)
        d, e = golub_kahan_bidiagonalization(a)
        ref = np.sort(_sv(a))[::-1]
        got = np.sort(_sv(bidiagonal_to_dense(d, e)))[::-1]
        np.testing.assert_allclose(got, ref, atol=1e-10 * max(1, ref[0]))

    def test_rejects_wide(self, rng):
        with pytest.raises(ValueError):
            golub_kahan_bidiagonalization(rng.standard_normal((3, 5)))

    def test_bidiagonal_to_dense_validates(self):
        with pytest.raises(ValueError):
            bidiagonal_to_dense([1.0, 2.0], [1.0, 2.0])


class TestJacobi:
    def test_reconstruction(self, rng):
        a = rng.standard_normal((10, 6))
        u, s, vt = jacobi_svd(a)
        np.testing.assert_allclose((u * s) @ vt, a, atol=1e-10)
        np.testing.assert_allclose(u.T @ u, np.eye(6), atol=1e-10)
        np.testing.assert_allclose(vt @ vt.T, np.eye(6), atol=1e-10)
        np.testing.assert_allclose(s, _sv(a), atol=1e-10)

    def test_descending_order(self, rng):
        _, s, _ = jacobi_svd(rng.standard_normal((8, 8)))
        assert np.all(np.diff(s) <= 1e-12)

    def test_rank_deficient(self, rng):
        x = rng.standard_normal((8, 2))
        a = x @ rng.standard_normal((2, 5))
        u, s, vt = jacobi_svd(a)
        np.testing.assert_allclose((u * s) @ vt, a, atol=1e-10)
        assert np.sum(s > 1e-10) == 2

    def test_rejects_wide(self, rng):
        with pytest.raises(ValueError):
            jacobi_svd(rng.standard_normal((3, 5)))
