"""Smoke-run every example script in reduced-size mode.

Each ``examples/*.py`` is a standalone script with a ``main()``; the slow
ones honour ``REPRO_EXAMPLE_FAST=1`` by shrinking their problem sizes.
This test imports each file and runs its ``main()`` under that flag, so a
broken import or a renamed API in any example fails the suite instead of
rotting silently.
"""

from __future__ import annotations

import importlib.util
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"
EXAMPLE_FILES = sorted(EXAMPLES_DIR.glob("*.py"))


def test_examples_directory_is_populated():
    assert len(EXAMPLE_FILES) >= 8


@pytest.mark.parametrize("path", EXAMPLE_FILES, ids=lambda p: p.stem)
def test_example_runs(path: Path, monkeypatch, capsys):
    monkeypatch.setenv("REPRO_EXAMPLE_FAST", "1")
    spec = importlib.util.spec_from_file_location(f"example_{path.stem}", path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    assert hasattr(module, "main"), f"{path.name} has no main()"
    module.main()
    out = capsys.readouterr().out
    assert out.strip(), f"{path.name} printed nothing"


@pytest.mark.parametrize(
    "name",
    [
        "communication_study",
        "critical_path_study",
        "distributed_simulation",
        "tile_size_tuning",
        "tree_study",
    ],
)
def test_slow_examples_honour_fast_flag(name: str):
    """The heavyweight examples must read the reduced-size flag."""
    source = (EXAMPLES_DIR / f"{name}.py").read_text()
    assert "REPRO_EXAMPLE_FAST" in source
