"""Unit tests for process grids and the 2D block-cyclic distribution."""

import pytest
from hypothesis import given, strategies as st

from repro.tiles.distribution import BlockCyclicDistribution, ProcessGrid


class TestProcessGrid:
    def test_basic(self):
        grid = ProcessGrid(2, 3)
        assert grid.size == 6
        assert grid.rank_of(1, 2) == 5
        assert grid.position_of(5) == (1, 2)

    def test_rank_position_round_trip(self):
        grid = ProcessGrid(3, 4)
        for rank in grid.ranks():
            assert grid.rank_of(*grid.position_of(rank)) == rank

    def test_invalid(self):
        with pytest.raises(ValueError):
            ProcessGrid(0, 2)
        grid = ProcessGrid(2, 2)
        with pytest.raises(IndexError):
            grid.rank_of(2, 0)
        with pytest.raises(IndexError):
            grid.position_of(4)

    def test_square_grid_for_perfect_square(self):
        grid = ProcessGrid.for_square_matrix(16)
        assert (grid.rows, grid.cols) == (4, 4)

    def test_square_grid_for_non_square(self):
        grid = ProcessGrid.for_square_matrix(12)
        assert grid.size == 12
        assert grid.rows <= grid.cols

    def test_square_grid_prime(self):
        grid = ProcessGrid.for_square_matrix(7)
        assert grid.size == 7

    def test_tall_skinny_grid(self):
        grid = ProcessGrid.for_tall_skinny_matrix(9)
        assert (grid.rows, grid.cols) == (9, 1)

    @given(n=st.integers(min_value=1, max_value=64))
    def test_square_grid_uses_all_nodes(self, n):
        grid = ProcessGrid.for_square_matrix(n)
        assert grid.size == n


class TestBlockCyclic:
    def test_owner_cycles(self):
        dist = BlockCyclicDistribution(ProcessGrid(2, 2))
        assert dist.owner(0, 0) == 0
        assert dist.owner(0, 1) == 1
        assert dist.owner(1, 0) == 2
        assert dist.owner(2, 2) == 0

    def test_owner_negative_index(self):
        dist = BlockCyclicDistribution(ProcessGrid(2, 2))
        with pytest.raises(IndexError):
            dist.owner(-1, 0)

    def test_local_tiles_partition(self):
        dist = BlockCyclicDistribution(ProcessGrid(2, 3))
        p, q = 7, 8
        all_tiles = set()
        for rank in dist.grid.ranks():
            tiles = dist.local_tiles(rank, p, q)
            assert len(tiles) == dist.local_tile_count(rank, p, q)
            for t in tiles:
                assert dist.owner(*t) == rank
            all_tiles.update(tiles)
        assert all_tiles == {(i, j) for i in range(p) for j in range(q)}

    def test_balance(self):
        dist = BlockCyclicDistribution(ProcessGrid(2, 2))
        assert dist.is_balanced(8, 8)
        # A 1x1 tile matrix on 4 processes is maximally unbalanced.
        assert not dist.is_balanced(1, 1, tolerance=0.1)

    @given(
        rows=st.integers(min_value=1, max_value=5),
        cols=st.integers(min_value=1, max_value=5),
        p=st.integers(min_value=1, max_value=20),
        q=st.integers(min_value=1, max_value=20),
    )
    def test_property_counts_sum_to_total(self, rows, cols, p, q):
        dist = BlockCyclicDistribution(ProcessGrid(rows, cols))
        total = sum(dist.local_tile_count(r, p, q) for r in dist.grid.ranks())
        assert total == p * q
