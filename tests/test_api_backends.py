"""Backend parity and shim-equivalence tests for the unified plan API."""

import numpy as np
import pytest

from repro.api import BACKENDS, RunResult, SvdPlan, execute, execute_sweep, resolve
from repro.algorithms.gesvd_pipeline import gesvd_two_stage
from repro.algorithms.svd import ge2bnd, ge2val, gesvd


def _sv(a):
    return np.linalg.svd(a, compute_uv=False)


class TestNumericBackend:
    def test_matches_numpy(self):
        plan = SvdPlan(m=48, n=32, tile_size=8, seed=3)
        result = execute(plan, backend="numeric")
        assert isinstance(result, RunResult)
        assert result.max_rel_error < 1e-12
        a = resolve(plan).build_matrix()
        np.testing.assert_allclose(
            result.singular_values, _sv(a), atol=1e-9 * np.linalg.norm(a)
        )

    def test_stage_timings_present(self):
        result = execute(SvdPlan(m=30, n=20, tile_size=5), backend="numeric")
        assert set(result.stage_seconds) == {"ge2bnd", "bnd2bd", "bd2val"}
        assert result.time_seconds == pytest.approx(sum(result.stage_seconds.values()))

    def test_ge2bnd_stage_returns_band(self):
        result = execute(
            SvdPlan(m=24, n=16, tile_size=4, stage="ge2bnd"), backend="numeric"
        )
        assert result.singular_values is None
        band = result.extras["band"]
        plan_input = resolve(SvdPlan(m=24, n=16, tile_size=4, stage="ge2bnd")).build_matrix()
        np.testing.assert_allclose(_sv(band.to_dense()), _sv(plan_input), atol=1e-9)

    def test_gesvd_stage_reconstructs(self):
        plan = SvdPlan(m=24, n=16, tile_size=4, stage="gesvd", seed=5)
        result = execute(plan, backend="numeric")
        a = resolve(plan).build_matrix()
        approx = result.u @ np.diag(result.singular_values) @ result.vt
        np.testing.assert_allclose(approx, a, atol=1e-9 * np.linalg.norm(a))
        assert "ge2bnd" in result.stage_seconds and "compose" in result.stage_seconds


class TestBackendParity:
    def test_one_plan_all_backends(self):
        """Acceptance: one plan runs unchanged through all three backends."""
        plan = SvdPlan(m=48, n=32, tile_size=8, stage="ge2val", tree="greedy")
        results = {b: execute(plan, backend=b) for b in BACKENDS}
        assert all(isinstance(r, RunResult) for r in results.values())
        assert results["numeric"].max_rel_error < 1e-12
        assert results["dag"].critical_path > 0
        assert results["simulate"].gflops > 0

    @pytest.mark.parametrize(
        "plan",
        [
            SvdPlan(m=48, n=48, tile_size=8, stage="ge2bnd"),
            SvdPlan(m=120, n=24, tile_size=8, stage="ge2bnd", tree="flattt"),
            SvdPlan(m=4000, n=1000, tile_size=200, stage="ge2bnd",
                    n_nodes=4, n_cores=8, tree="greedy"),
            SvdPlan(m=2000, n=2000, tile_size=250, stage="ge2bnd",
                    n_cores=24, tree="auto"),
        ],
    )
    def test_dag_and_simulator_trace_same_graph(self, plan):
        dag = execute(plan, backend="dag")
        sim = execute(plan, backend="simulate")
        assert dag.n_tasks == sim.n_tasks
        assert dag.variant == sim.variant
        assert (dag.p, dag.q) == (sim.p, sim.q)

    def test_gesvd_rejected_by_non_numeric_backends(self):
        plan = SvdPlan(m=16, n=16, tile_size=4, stage="gesvd")
        with pytest.raises(ValueError, match="numeric"):
            execute(plan, backend="dag")
        with pytest.raises(ValueError, match="numeric"):
            execute(plan, backend="simulate")

    def test_unknown_backend(self):
        with pytest.raises(ValueError, match="backend"):
            execute(SvdPlan(m=8, n=8), backend="quantum")


class TestShimEquivalence:
    """The legacy drivers and the plan API must produce identical numbers."""

    def test_ge2val_bitwise(self, rng):
        a = rng.standard_normal((48, 32))
        legacy = ge2val(a, tile_size=8, tree="greedy", variant="bidiag")
        result = execute(
            SvdPlan(matrix=a, tile_size=8, tree="greedy", variant="bidiag"),
            backend="numeric",
        )
        np.testing.assert_array_equal(legacy, result.singular_values)

    def test_ge2val_auto_variant(self, rng):
        a = rng.standard_normal((80, 16))  # clearly tall-skinny: rbidiag both ways
        legacy = ge2val(a, tile_size=8)
        result = execute(SvdPlan(matrix=a, tile_size=8), backend="numeric")
        assert result.variant == "rbidiag"
        np.testing.assert_array_equal(legacy, result.singular_values)

    def test_ge2bnd_bitwise(self, rng):
        a = rng.standard_normal((24, 16))
        band_legacy, _, _ = ge2bnd(a, tile_size=4, variant="bidiag")
        result = execute(
            SvdPlan(matrix=a, tile_size=4, variant="bidiag", stage="ge2bnd"),
            backend="numeric",
        )
        np.testing.assert_array_equal(
            band_legacy.to_dense(), result.extras["band"].to_dense()
        )

    def test_gesvd_two_stage_bitwise(self, rng):
        a = rng.standard_normal((24, 16))
        legacy = gesvd_two_stage(a, tile_size=4, variant="bidiag")
        result = execute(
            SvdPlan(matrix=a, tile_size=4, variant="bidiag", stage="gesvd"),
            backend="numeric",
        )
        np.testing.assert_array_equal(legacy.singular_values, result.singular_values)
        np.testing.assert_array_equal(legacy.u, result.u)
        np.testing.assert_array_equal(legacy.vt, result.vt)

    def test_gesvd_jacobi_shim_still_works(self, rng):
        a = rng.standard_normal((24, 16))
        u, s, vt = gesvd(a, tile_size=4)
        np.testing.assert_allclose(
            u @ np.diag(s) @ vt, a, atol=1e-9 * np.linalg.norm(a)
        )

    def test_simulate_matches_legacy_driver(self):
        from repro.runtime.machine import Machine
        from repro.runtime.simulator import simulate_ge2val

        machine = Machine(n_nodes=2, cores_per_node=8, tile_size=200)
        legacy = simulate_ge2val(4000, 1000, machine, tree="greedy", algorithm="auto")
        result = execute(
            SvdPlan(m=4000, n=1000, tile_size=200, n_nodes=2, n_cores=8,
                    tree="greedy", stage="ge2val"),
            backend="simulate",
        )
        assert result.time_seconds == pytest.approx(legacy.time_seconds)
        assert result.gflops == pytest.approx(legacy.gflops)
        assert result.n_tasks == legacy.n_tasks
        assert result.messages == legacy.messages


class TestSweepExecution:
    def test_execute_sweep_rows(self):
        base = SvdPlan(m=1000, n=1000, tile_size=250, stage="ge2bnd", n_cores=8)
        rows = execute_sweep(base.sweep(tree=["flatts", "greedy"]))
        assert len(rows) == 2
        assert {row["tree"] for row in rows} == {"flatts", "greedy"}
        assert all(row["gflops"] > 0 for row in rows)

    def test_to_row_flattens_scalars(self):
        row = execute(SvdPlan(m=30, n=20, tile_size=5), backend="numeric").to_row()
        assert row["backend"] == "numeric"
        assert "max_rel_error" in row and "seconds_ge2bnd" in row
        assert not any(isinstance(v, np.ndarray) for v in row.values())
