"""Resolver edge cases the autotuner stresses.

The tuner sweeps tile sizes down to single-tile problems, node counts that
are prime, and shapes sitting exactly on the Chan crossover; these tests
pin the resolver's behaviour in those corners.
"""

from __future__ import annotations

import pytest

from repro.api import SvdPlan, execute, resolve
from repro.api.resolver import (
    chan_prefers_rbidiag,
    default_grid,
    default_tile_size,
    resolve_variant,
)


class TestSingleTileProblems:
    def test_1x1_element_matrix_resolves(self):
        resolved = resolve(SvdPlan(m=1, n=1))
        assert resolved.tile_size == 1
        assert (resolved.p, resolved.q) == (1, 1)

    def test_1x1_tile_grid_when_tile_covers_matrix(self):
        resolved = resolve(SvdPlan(m=50, n=30, tile_size=64))
        assert (resolved.p, resolved.q) == (1, 1)

    def test_1x1_runs_through_every_backend(self):
        plan = SvdPlan(m=40, n=30, tile_size=40, stage="ge2bnd")
        for backend in ("numeric", "dag", "simulate"):
            result = execute(plan, backend=backend)
            assert (result.p, result.q) == (1, 1)

    def test_default_tile_size_floors_at_one(self):
        # min(m, n) // 4 == 0 must not produce a zero tile.
        assert default_tile_size(3, 2) == 1
        assert default_tile_size(1, 1) == 1


class TestPrimeNodeCounts:
    @pytest.mark.parametrize("nodes", [2, 3, 5, 7, 11, 13])
    def test_square_grid_falls_back_to_flat_for_primes(self, nodes):
        grid = default_grid(nodes, p=10, q=10)
        assert grid.size == nodes  # every node is used
        assert grid.rows == 1  # no divisor <= sqrt(nodes) except 1

    def test_tall_skinny_grid_is_nodes_by_one(self):
        grid = default_grid(7, p=40, q=4)
        assert (grid.rows, grid.cols) == (7, 1)

    @pytest.mark.parametrize("nodes", [4, 9, 16])
    def test_perfect_squares_stay_square(self, nodes):
        grid = default_grid(nodes, p=10, q=10)
        assert grid.rows == grid.cols

    def test_prime_node_simulation_runs(self):
        plan = SvdPlan(m=700, n=700, tile_size=100, n_nodes=7, n_cores=4)
        result = execute(plan.with_(stage="ge2bnd"), backend="simulate")
        assert result.grid == "1x7"
        assert result.time_seconds > 0


class TestChanCrossoverBoundary:
    def test_exactly_at_crossover_prefers_rbidiag(self):
        # The predicate is m >= 5n/3, i.e. 3m >= 5n: equality counts.
        assert chan_prefers_rbidiag(5, 3)
        assert resolve_variant("auto", 5, 3) == "rbidiag"
        assert resolve_variant("auto", 5000, 3000) == "rbidiag"

    def test_one_row_below_crossover_prefers_bidiag(self):
        assert not chan_prefers_rbidiag(4999, 3000)
        assert resolve_variant("auto", 4999, 3000) == "bidiag"

    def test_explicit_variant_wins_over_crossover(self):
        assert resolve_variant("bidiag", 5000, 3000) == "bidiag"
        assert resolve_variant("rbidiag", 3000, 3000) == "rbidiag"

    def test_resolved_plan_pins_variant_at_boundary(self):
        assert resolve(SvdPlan(m=500, n=300)).variant == "rbidiag"
        assert resolve(SvdPlan(m=499, n=300)).variant == "bidiag"


class TestExplicitGridField:
    def test_explicit_grid_overrides_default(self):
        plan = SvdPlan(m=800, n=200, tile_size=100, n_nodes=4, grid=(2, 2))
        resolved = resolve(plan)
        assert (resolved.grid.rows, resolved.grid.cols) == (2, 2)
        # Default for this tall-skinny tile shape would have been 4x1.
        default = resolve(plan.with_(grid=None))
        assert (default.grid.rows, default.grid.cols) == (4, 1)

    def test_grid_must_cover_nodes(self):
        with pytest.raises(ValueError, match="does not cover"):
            SvdPlan(m=100, n=100, n_nodes=4, grid=(3, 1))

    def test_grid_validation(self):
        with pytest.raises(ValueError, match="grid"):
            SvdPlan(m=100, n=100, n_nodes=1, grid=(0, 1))

    def test_tile_size_auto_string_is_validated(self):
        assert SvdPlan(m=100, n=100, tile_size="AUTO ").tile_size == "auto"
        with pytest.raises(ValueError, match="tile_size"):
            SvdPlan(m=100, n=100, tile_size="huge")
