"""Tests for the kernel cost model (Table I)."""

import pytest

from repro.kernels.costs import (
    KERNEL_WEIGHTS,
    KernelName,
    kernel_efficiency,
    kernel_flops,
    kernel_time_seconds,
    kernel_weight,
)


class TestTable1:
    """The weights must match Table I of the paper exactly."""

    @pytest.mark.parametrize(
        "kernel, expected",
        [
            ("GEQRT", 4),
            ("UNMQR", 6),
            ("TSQRT", 6),
            ("TSMQR", 12),
            ("TTQRT", 2),
            ("TTMQR", 6),
        ],
    )
    def test_qr_weights(self, kernel, expected):
        assert kernel_weight(kernel) == expected

    def test_lq_weights_mirror_qr(self):
        pairs = [
            (KernelName.GELQT, KernelName.GEQRT),
            (KernelName.UNMLQ, KernelName.UNMQR),
            (KernelName.TSLQT, KernelName.TSQRT),
            (KernelName.TSMLQ, KernelName.TSMQR),
            (KernelName.TTLQT, KernelName.TTQRT),
            (KernelName.TTMLQ, KernelName.TTMQR),
        ]
        for lq, qr in pairs:
            assert KERNEL_WEIGHTS[lq] == KERNEL_WEIGHTS[qr]
            assert lq.qr_equivalent == qr

    def test_tt_elimination_cheaper_than_ts(self):
        # The whole point of TT kernels: a TT elimination (2 + 6) costs a
        # third of a TS elimination (6 + 12) on the critical path.
        ts = kernel_weight("TSQRT") + kernel_weight("TSMQR")
        tt = kernel_weight("TTQRT") + kernel_weight("TTMQR")
        assert tt * 3 >= ts
        assert tt < ts

    def test_all_kernels_have_weights_and_efficiencies(self):
        for kernel in KernelName:
            assert kernel_weight(kernel) > 0
            assert 0.0 < kernel_efficiency(kernel) <= 1.0


class TestKernelTimings:
    def test_flops_scale_with_nb_cubed(self):
        assert kernel_flops("TSMQR", 200) == pytest.approx(8 * kernel_flops("TSMQR", 100))

    def test_flops_formula(self):
        nb = 160
        assert kernel_flops("GEQRT", nb) == pytest.approx(4 * nb**3 / 3)

    def test_time_positive_and_monotone_in_weight(self):
        t_tt = kernel_time_seconds("TTQRT", 160, 37.0)
        t_ts = kernel_time_seconds("TSQRT", 160, 37.0)
        assert 0 < t_tt < t_ts

    def test_ts_update_faster_per_flop_than_tt_update(self):
        # TS kernels run closer to GEMM speed than TT kernels (the AUTO
        # tree's motivation): time per flop must be lower.
        per_flop_ts = kernel_time_seconds("TSMQR", 160, 37.0) / kernel_flops("TSMQR", 160)
        per_flop_tt = kernel_time_seconds("TTMQR", 160, 37.0) / kernel_flops("TTMQR", 160)
        assert per_flop_ts < per_flop_tt

    def test_panel_kernels_flagged(self):
        assert KernelName.GEQRT.is_panel
        assert KernelName.TSLQT.is_panel
        assert not KernelName.TSMQR.is_panel

    def test_lq_family_flag(self):
        assert KernelName.GELQT.is_lq
        assert KernelName.TTMLQ.is_lq
        assert not KernelName.GEQRT.is_lq
