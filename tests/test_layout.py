"""Unit tests for the tile layout arithmetic."""

import pytest
from hypothesis import given, strategies as st

from repro.tiles.layout import TileLayout, ceil_div


class TestCeilDiv:
    def test_exact_division(self):
        assert ceil_div(12, 4) == 3

    def test_rounds_up(self):
        assert ceil_div(13, 4) == 4

    def test_one(self):
        assert ceil_div(1, 100) == 1

    def test_zero_numerator(self):
        assert ceil_div(0, 5) == 0

    def test_invalid_divisor(self):
        with pytest.raises(ValueError):
            ceil_div(10, 0)

    @given(a=st.integers(min_value=0, max_value=10**6), b=st.integers(min_value=1, max_value=10**4))
    def test_matches_definition(self, a, b):
        assert ceil_div(a, b) == -(-a // b)


class TestTileLayout:
    def test_exact_tiling(self):
        layout = TileLayout(12, 8, 4)
        assert layout.p == 3
        assert layout.q == 2
        assert layout.tile_shape == (3, 2)
        assert layout.shape == (12, 8)

    def test_ragged_tiling(self):
        layout = TileLayout(13, 9, 4)
        assert layout.p == 4
        assert layout.q == 3
        assert layout.tile_rows(3) == 1
        assert layout.tile_cols(2) == 1
        assert layout.tile_rows(0) == 4

    def test_tile_size_of(self):
        layout = TileLayout(10, 10, 4)
        assert layout.tile_size_of(0, 0) == (4, 4)
        assert layout.tile_size_of(2, 2) == (2, 2)
        assert layout.tile_size_of(2, 0) == (2, 4)

    def test_row_and_col_ranges(self):
        layout = TileLayout(10, 7, 3)
        assert layout.row_range(0) == (0, 3)
        assert layout.row_range(3) == (9, 10)
        assert layout.col_range(2) == (6, 7)

    def test_ranges_cover_matrix(self):
        layout = TileLayout(17, 11, 5)
        rows = sum(layout.tile_rows(i) for i in range(layout.p))
        cols = sum(layout.tile_cols(j) for j in range(layout.q))
        assert rows == 17
        assert cols == 11

    def test_tiles_iteration_order(self):
        layout = TileLayout(4, 4, 2)
        assert list(layout.tiles()) == [(0, 0), (0, 1), (1, 0), (1, 1)]

    def test_tile_of_element(self):
        layout = TileLayout(10, 10, 3)
        assert layout.tile_of_element(0, 0) == (0, 0)
        assert layout.tile_of_element(9, 9) == (3, 3)
        assert layout.tile_of_element(3, 5) == (1, 1)

    def test_tile_of_element_out_of_range(self):
        layout = TileLayout(10, 10, 3)
        with pytest.raises(IndexError):
            layout.tile_of_element(10, 0)

    def test_invalid_dimensions(self):
        with pytest.raises(ValueError):
            TileLayout(0, 5, 2)
        with pytest.raises(ValueError):
            TileLayout(5, 5, 0)

    def test_index_out_of_range(self):
        layout = TileLayout(6, 6, 3)
        with pytest.raises(IndexError):
            layout.tile_rows(2)
        with pytest.raises(IndexError):
            layout.col_range(-1)

    @given(
        m=st.integers(min_value=1, max_value=200),
        n=st.integers(min_value=1, max_value=200),
        nb=st.integers(min_value=1, max_value=50),
    )
    def test_property_tile_counts(self, m, n, nb):
        layout = TileLayout(m, n, nb)
        assert (layout.p - 1) * nb < m <= layout.p * nb
        assert (layout.q - 1) * nb < n <= layout.q * nb
        # every tile has between 1 and nb rows/cols
        for i in range(layout.p):
            assert 1 <= layout.tile_rows(i) <= nb
        for j in range(layout.q):
            assert 1 <= layout.tile_cols(j) <= nb
