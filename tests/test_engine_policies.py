"""Tests for the event-driven SimulationEngine and its scheduling policies.

Pins the contract of the tentpole refactor:

* with the ``list`` policy the engine reproduces the legacy
  :class:`~repro.runtime.scheduler.ListScheduler` *exactly* (golden pins
  included, so a regression in either layer is caught against absolute
  numbers, not just mutual agreement);
* every policy's makespan respects the fundamental scheduling bounds
  (critical path <= makespan <= serial time);
* schedules are bit-reproducible across runs and Python hash seeds
  (stable task-id tie-breaking in the ready queue);
* the policy registry and the CLI surface (``repro policies``,
  ``--policy``) behave.
"""

import os
import subprocess
import sys

import pytest

from repro.cli import main
from repro.ir import clear_program_cache, get_program
from repro.runtime.engine import (
    SimulationEngine,
    critical_path_seconds,
    run_policy,
    serial_seconds,
)
from repro.runtime.machine import Machine
from repro.runtime.policies import (
    POLICIES,
    RandomPolicy,
    SchedulingPolicy,
    available_policies,
    get_policy,
)
from repro.runtime.scheduler import ListScheduler
from repro.tiles.distribution import BlockCyclicDistribution, ProcessGrid
from repro.trees import FlatTSTree, FlatTTTree, GreedyTree


@pytest.fixture(autouse=True)
def _fresh_program_cache():
    clear_program_cache()
    yield
    clear_program_cache()


#: (algorithm, p, q, tree, machine) configurations used across the tests.
CONFIGS = [
    ("bidiag", 8, 6, GreedyTree(), Machine(n_nodes=1, cores_per_node=8, tile_size=160)),
    ("bidiag", 10, 10, FlatTSTree(), Machine(n_nodes=1, cores_per_node=24, tile_size=160)),
    ("rbidiag", 12, 4, GreedyTree(), Machine(n_nodes=1, cores_per_node=8, tile_size=100)),
    ("bidiag", 8, 8, FlatTTTree(), Machine(n_nodes=4, cores_per_node=4, tile_size=100)),
]


class TestListPolicyMatchesLegacy:
    @pytest.mark.parametrize("alg,p,q,tree,machine", CONFIGS)
    def test_exact_schedule_equality(self, alg, p, q, tree, machine):
        program = get_program(alg, p, q, tree)
        legacy = ListScheduler(machine).run(program.to_task_graph())
        engine = SimulationEngine(machine, policy="list").run(program)
        assert engine.makespan == legacy.makespan  # bitwise, not approx
        assert engine.start == legacy.start
        assert engine.finish == legacy.finish
        assert engine.node_of_task == legacy.node_of_task
        assert engine.core_of_task == legacy.core_of_task
        assert engine.messages == legacy.messages
        assert engine.comm_bytes == legacy.comm_bytes

    def test_golden_pins(self):
        """Absolute makespans of the list policy on paper-scale shapes.

        Pinned from the legacy ListScheduler at the time of the engine
        refactor; if these move, scheduling semantics changed.
        """
        pins = {
            ("bidiag", 8, 6): (0.030137913139087435, 0),
            ("bidiag", 10, 10): (0.07270787239075735, 0),
            ("rbidiag", 12, 4): (0.005789154880303859, 0),
            ("bidiag", 8, 8): (0.014644620654039035, 441),
        }
        for alg, p, q, tree, machine in CONFIGS:
            schedule = SimulationEngine(machine, policy="list").run(
                get_program(alg, p, q, tree)
            )
            makespan, messages = pins[(alg, p, q)]
            assert schedule.makespan == pytest.approx(makespan, rel=1e-13)
            assert schedule.messages == messages

    def test_legacy_priorities_map_to_policies(self):
        program = get_program("bidiag", 6, 4, GreedyTree())
        machine = Machine(n_nodes=1, cores_per_node=4, tile_size=100)
        for priority, policy in (("bottom-level", "list"), ("fifo", "fifo"),
                                 ("weight", "weight")):
            legacy = ListScheduler(machine, priority=priority).run(
                program.to_task_graph()
            )
            engine = SimulationEngine(machine, policy=policy).run(program)
            assert engine.makespan == legacy.makespan


class TestPolicyBounds:
    @pytest.mark.parametrize("policy", sorted(POLICIES))
    @pytest.mark.parametrize("alg,p,q,tree,machine", CONFIGS)
    def test_makespan_between_cp_and_serial(self, policy, alg, p, q, tree, machine):
        program = get_program(alg, p, q, tree)
        schedule = SimulationEngine(machine, policy=policy).run(program)
        lower = critical_path_seconds(program, machine)
        upper = serial_seconds(program, machine)
        assert lower <= schedule.makespan + 1e-12
        # Communication can push a multi-node schedule past the serial
        # compute time; the upper bound is only guaranteed without messages.
        if schedule.messages == 0:
            assert schedule.makespan <= upper + 1e-12

    def test_all_policies_respect_dependencies(self):
        program = get_program("bidiag", 6, 5, GreedyTree())
        machine = Machine(n_nodes=1, cores_per_node=4, tile_size=100)
        for policy in sorted(POLICIES):
            schedule = SimulationEngine(machine, policy=policy).run(program)
            for dst in range(len(program)):
                for src in program.predecessors(dst):
                    assert schedule.start[dst] >= schedule.finish[src] - 1e-12

    def test_informed_policies_beat_random_here(self):
        program = get_program("bidiag", 12, 10, GreedyTree())
        machine = Machine(n_nodes=1, cores_per_node=8, tile_size=160)
        random_makespan = run_policy(program, machine, policy="random").makespan
        for policy in ("list", "critical-path", "locality"):
            assert run_policy(program, machine, policy=policy).makespan < random_makespan


class TestDeterminism:
    """Stable task-id tie-breaking: bit-reproducible schedules (satellite)."""

    def test_repeated_runs_are_bitwise_identical(self):
        machine = Machine(n_nodes=4, cores_per_node=4, tile_size=100)
        runs = [
            SimulationEngine(machine, policy="list").run(
                get_program("bidiag", 8, 8, FlatTTTree())
            )
            for _ in range(3)
        ]
        assert runs[0].makespan == runs[1].makespan == runs[2].makespan
        assert runs[0].start == runs[1].start == runs[2].start
        assert runs[0].core_of_task == runs[1].core_of_task

    SNIPPET = (
        "import sys; sys.path.insert(0, 'src')\n"
        "from repro.ir import get_program\n"
        "from repro.runtime.engine import SimulationEngine\n"
        "from repro.runtime.machine import Machine\n"
        "from repro.trees import FlatTTTree\n"
        "m = Machine(n_nodes=4, cores_per_node=4, tile_size=100)\n"
        "for policy in ('list', 'critical-path', 'locality', 'random'):\n"
        "    s = SimulationEngine(m, policy=policy).run(\n"
        "        get_program('bidiag', 8, 8, FlatTTTree()))\n"
        "    print(policy, repr(s.makespan), s.messages, s.comm_bytes)\n"
    )

    def _run(self, hash_seed):
        env = dict(os.environ, PYTHONHASHSEED=hash_seed)
        proc = subprocess.run(
            [sys.executable, "-c", self.SNIPPET],
            capture_output=True,
            text=True,
            env=env,
            cwd=__file__.rsplit("/tests/", 1)[0],
            check=True,
        )
        return proc.stdout

    @pytest.mark.slow
    def test_makespans_identical_across_hash_seeds(self):
        assert self._run("0") == self._run("31337")


class TestRandomPolicy:
    def test_same_seed_reproduces(self):
        program = get_program("bidiag", 6, 5, GreedyTree())
        machine = Machine(n_nodes=1, cores_per_node=4, tile_size=100)
        a = run_policy(program, machine, policy=RandomPolicy(seed=7))
        b = run_policy(program, machine, policy=RandomPolicy(seed=7))
        assert a.makespan == b.makespan
        assert a.start == b.start

    def test_seed_is_an_axis(self):
        program = get_program("bidiag", 10, 8, GreedyTree())
        machine = Machine(n_nodes=1, cores_per_node=8, tile_size=100)
        makespans = {
            run_policy(program, machine, policy=RandomPolicy(seed=s)).makespan
            for s in range(5)
        }
        assert len(makespans) > 1  # different seeds explore different orders


class TestRegistry:
    def test_get_policy_by_name_and_instance(self):
        policy = get_policy("critical-path")
        assert policy.name == "critical-path"
        assert get_policy(policy) is policy

    def test_unknown_policy_rejected(self):
        with pytest.raises(ValueError):
            get_policy("magic")
        with pytest.raises(ValueError):
            SimulationEngine(Machine(), policy="magic")

    def test_available_policies_listing(self):
        listing = available_policies()
        assert [name for name, _ in listing] == sorted(POLICIES)
        assert all(desc for _, desc in listing)
        assert {"list", "critical-path", "locality", "random"} <= set(POLICIES)

    def test_policy_rank_length_checked(self):
        class Broken(SchedulingPolicy):
            name = "broken"

            def rank(self, program, durations, node_of_op, machine):
                return [0.0]

        machine = Machine(n_nodes=1, cores_per_node=2, tile_size=100)
        with pytest.raises(ValueError):
            SimulationEngine(machine, policy=Broken()).run(
                get_program("qr", 3, 2, GreedyTree())
            )

    def test_distribution_process_count_must_match(self):
        machine = Machine(n_nodes=4)
        with pytest.raises(ValueError):
            SimulationEngine(machine, BlockCyclicDistribution(ProcessGrid(1, 2)))


class TestCli:
    def test_policies_listing(self, capsys):
        assert main(["policies"]) == 0
        out = capsys.readouterr().out
        for name in POLICIES:
            assert name in out

    @pytest.mark.parametrize("policy", ["critical-path", "random"])
    def test_simulate_with_policy(self, capsys, policy):
        assert main(["simulate", "1000", "1000", "--nb", "100", "--cores", "4",
                     "--policy", policy]) == 0
        out = capsys.readouterr().out
        assert f"policy         : {policy}" in out

    def test_simulate_default_policy_is_list(self, capsys):
        assert main(["simulate", "800", "800", "--nb", "100", "--cores", "4"]) == 0
        assert "policy         : list" in capsys.readouterr().out

    def test_tune_with_policy(self, capsys, tmp_path):
        args = ["tune", "--m", "400", "--n", "400", "--n-cores", "4",
                "--tile-sizes", "50,100", "--trees", "greedy",
                "--variants", "bidiag", "--policy", "critical-path",
                "--cache-file", str(tmp_path / "cache.json")]
        assert main(args) == 0
        out = capsys.readouterr().out
        assert "best tile size" in out
