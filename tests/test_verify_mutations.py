"""Mutation-testing harness for the static verification subsystem.

Injects controlled defects into compiled Programs (CSR edge deletions,
rewires, duplications) and engine Schedules (start-time perturbations,
owner swaps, core collisions, counter corruption) and asserts the
verifier flags **every** injected defect — and accepts every unmutated
Program/Schedule pair across policies x networks x grids x engine paths.

Every mutation here is *guaranteed infeasible* by construction:

* deleting a CSR edge always removes a RAW/WAR dependency the oracle
  rederives, so ``P-MISSING-EDGE`` must fire;
* perturbing a start time without its finish breaks the exact
  ``finish == start + duration`` identity (``S-DURATION``);
* moving a predecessor-bearing op's start to 0 violates precedence
  (its predecessors have strictly positive durations);
* swapping one task's node breaks the owner-computes mapping
  (``S-OWNER``).

Shifting a slack task *with* its finish time can produce a genuinely
feasible schedule, which the sanitizer must accept — so that mutation
class is deliberately not used.
"""

import random
from dataclasses import replace

import pytest

from repro.ir.compiler import compile_program
from repro.ir.program import Program
from repro.runtime.engine import SimulationEngine
from repro.runtime.machine import Machine
from repro.runtime.network import NETWORK_MODELS
from repro.runtime.policies import POLICIES
from repro.trees.flat import FlatTSTree, FlatTTTree
from repro.trees.greedy import GreedyTree
from repro.verify import verify_program, verify_schedule

POLICY_NAMES = sorted(POLICIES)
NETWORK_NAMES = sorted(NETWORK_MODELS)

PROGRAM_SHAPES = [
    ("bidiag", 4, 3, GreedyTree()),
    ("rbidiag", 4, 3, FlatTSTree()),
    ("qr", 4, 4, FlatTTTree()),
]


def _compile(shape):
    algorithm, p, q, tree = shape
    return compile_program(algorithm, p, q, tree)


def _pred_lists(program):
    return [list(program.predecessors(i)) for i in range(len(program))]


def _edges(program):
    return [
        (src, dst)
        for dst in range(len(program))
        for src in program.predecessors(dst)
    ]


# --------------------------------------------------------------------------- #
# Program mutations
# --------------------------------------------------------------------------- #
@pytest.mark.parametrize("shape", PROGRAM_SHAPES, ids=lambda s: f"{s[0]}-{type(s[3]).__name__}")
def test_every_single_edge_deletion_is_detected(shape):
    program = _compile(shape)
    edges = _edges(program)
    assert edges, "shape too small to exercise deletions"
    detected = 0
    for src, dst in edges:
        pred_lists = _pred_lists(program)
        pred_lists[dst].remove(src)
        report = verify_program(Program(list(program.ops), pred_lists))
        assert any(
            f.code == "P-MISSING-EDGE" and f.op == dst and f.other == src
            for f in report.findings
        ), f"deletion of {src}->{dst} not flagged: {report.summary(None)}"
        detected += 1
    assert detected == len(edges)  # 100% of injected deletions


@pytest.mark.parametrize("shape", PROGRAM_SHAPES, ids=lambda s: f"{s[0]}-{type(s[3]).__name__}")
def test_random_edge_rewires_are_detected(shape):
    program = _compile(shape)
    rng = random.Random(0xC0FFEE)
    rewired = 0
    attempts = 0
    while rewired < 20 and attempts < 200:
        attempts += 1
        pred_lists = _pred_lists(program)
        dst = rng.randrange(len(program))
        have = set(pred_lists[dst])
        candidates = [c for c in range(dst) if c not in have]
        if not have or not candidates:
            continue
        dropped = rng.choice(sorted(have))
        added = rng.choice(candidates)
        pred_lists[dst] = sorted((have - {dropped}) | {added})
        report = verify_program(Program(list(program.ops), pred_lists))
        assert any(
            f.code == "P-MISSING-EDGE" and f.op == dst and f.other == dropped
            for f in report.findings
        ), report.summary(None)
        assert any(
            f.code == "P-SPURIOUS-EDGE" and f.op == dst and f.other == added
            for f in report.findings
        ), report.summary(None)
        rewired += 1
    assert rewired == 20


def test_random_edge_duplications_are_detected():
    program = _compile(PROGRAM_SHAPES[0])
    rng = random.Random(42)
    for _ in range(10):
        pred_lists = _pred_lists(program)
        dst = rng.choice([i for i in range(len(program)) if pred_lists[i]])
        pred_lists[dst].append(rng.choice(pred_lists[dst]))
        report = verify_program(Program(list(program.ops), pred_lists))
        assert report.count("P-TOPOLOGY") >= 1, report.summary(None)


# --------------------------------------------------------------------------- #
# Schedule mutations (policies x networks)
# --------------------------------------------------------------------------- #
MACHINES = [
    Machine(n_nodes=1, cores_per_node=4),
    Machine(n_nodes=4, cores_per_node=2),
]


def _schedules():
    """One (program, machine, engine, schedule, policy, network) per combo."""
    program = _compile(PROGRAM_SHAPES[0])
    for machine in MACHINES:
        for policy in POLICY_NAMES:
            for network in NETWORK_NAMES:
                engine = SimulationEngine(
                    machine, policy=policy, network=network
                )
                yield program, machine, engine, engine.run(program), policy, network


def _verify(schedule, program, machine, engine, network):
    return verify_schedule(
        schedule,
        program,
        machine,
        distribution=engine.distribution,
        network=network,
    )


@pytest.mark.parametrize("fast", [True, False], ids=["fast", "legacy"])
def test_clean_schedules_accepted_across_policies_networks(fast):
    program = _compile(PROGRAM_SHAPES[0])
    combos = 0
    for machine in MACHINES:
        for policy in POLICY_NAMES:
            for network in NETWORK_NAMES:
                engine = SimulationEngine(
                    machine, policy=policy, network=network, fast=fast
                )
                schedule = engine.run(program)
                report = _verify(schedule, program, machine, engine, network)
                assert report.ok, (
                    f"{policy}/{network}/nodes={machine.n_nodes}: "
                    + report.summary(None)
                )
                combos += 1
    assert combos == len(MACHINES) * len(POLICY_NAMES) * len(NETWORK_NAMES)


def test_start_time_perturbations_detected_everywhere():
    rng = random.Random(7)
    cases = 0
    for program, machine, engine, schedule, policy, network in _schedules():
        victim = rng.randrange(len(program))
        start = list(schedule.start)
        start[victim] += 0.25 * (schedule.makespan or 1.0)
        mutated = replace(schedule, start=start)
        report = _verify(mutated, program, machine, engine, network)
        assert report.count("S-DURATION") >= 1, (
            f"{policy}/{network}: " + report.summary(None)
        )
        cases += 1
    assert cases == len(MACHINES) * len(POLICY_NAMES) * len(NETWORK_NAMES)


def test_precedence_violations_detected_everywhere():
    for program, machine, engine, schedule, policy, network in _schedules():
        durations = machine.kernel_duration_table()[
            program.kernel_codes_np
        ].tolist()
        # The latest-starting op with predecessors: pulling it to t=0 must
        # start it before at least one predecessor's arrival bound.
        withpreds = [
            i for i in range(len(program)) if len(program.predecessors(i))
        ]
        victim = max(withpreds, key=lambda i: schedule.start[i])
        assert schedule.start[victim] > 0.0
        start = list(schedule.start)
        finish = list(schedule.finish)
        start[victim] = 0.0
        finish[victim] = 0.0 + durations[victim]
        mutated = replace(schedule, start=start, finish=finish)
        report = _verify(mutated, program, machine, engine, network)
        assert report.count("S-PRECEDENCE") >= 1, (
            f"{policy}/{network}: " + report.summary(None)
        )


def test_owner_swaps_detected_on_multinode():
    rng = random.Random(11)
    cases = 0
    program = _compile(PROGRAM_SHAPES[0])
    machine = MACHINES[1]
    for policy in POLICY_NAMES:
        for network in NETWORK_NAMES:
            engine = SimulationEngine(machine, policy=policy, network=network)
            schedule = engine.run(program)
            victim = rng.randrange(len(program))
            nodes = list(schedule.node_of_task)
            nodes[victim] = (nodes[victim] + 1) % machine.n_nodes
            mutated = replace(schedule, node_of_task=nodes)
            report = _verify(mutated, program, machine, engine, network)
            assert report.count("S-OWNER") >= 1, (
                f"{policy}/{network}: " + report.summary(None)
            )
            cases += 1
    assert cases == len(POLICY_NAMES) * len(NETWORK_NAMES)


def test_core_collisions_detected():
    # On a single node with several cores the schedule always has two
    # concurrently running ops somewhere; put them on the same core.
    program = _compile(PROGRAM_SHAPES[0])
    machine = MACHINES[0]
    engine = SimulationEngine(machine)
    schedule = engine.run(program)
    collision = None
    n = len(program)
    for i in range(n):
        for j in range(i + 1, n):
            same_node = schedule.node_of_task[i] == schedule.node_of_task[j]
            overlap = (
                schedule.start[i] < schedule.finish[j]
                and schedule.start[j] < schedule.finish[i]
            )
            if same_node and overlap and (
                schedule.core_of_task[i] != schedule.core_of_task[j]
            ):
                collision = (i, j)
                break
        if collision:
            break
    assert collision is not None, "no concurrent pair found"
    i, j = collision
    cores = list(schedule.core_of_task)
    cores[j] = cores[i]
    mutated = replace(schedule, core_of_task=cores)
    report = _verify(mutated, program, machine, engine, "uniform")
    assert report.count("S-CORE-OVERLAP") >= 1, report.summary(None)


def test_makespan_and_counter_corruption_detected():
    program = _compile(PROGRAM_SHAPES[0])
    machine = MACHINES[1]
    for network in NETWORK_NAMES:
        engine = SimulationEngine(machine, network=network)
        schedule = engine.run(program)
        cases = {
            "S-MAKESPAN": replace(schedule, makespan=schedule.makespan * 1.5),
            "S-COMM-COUNT": replace(schedule, messages=schedule.messages + 1),
            "S-COMM-BYTES": replace(
                schedule, comm_bytes=schedule.comm_bytes + 1
            ),
            "S-BUSY-TIME": replace(
                schedule,
                busy_time_per_node=[
                    schedule.busy_time_per_node[0] + 0.5,
                    *schedule.busy_time_per_node[1:],
                ],
            ),
            "S-COMM-TIME": replace(
                schedule,
                comm_time_per_node=[
                    schedule.comm_time_per_node[0] + 0.5,
                    *schedule.comm_time_per_node[1:],
                ],
            ),
        }
        for code, mutated in cases.items():
            report = _verify(mutated, program, machine, engine, network)
            assert report.count(code) >= 1, (
                f"{network}/{code}: " + report.summary(None)
            )


def test_core_out_of_range_detected():
    program = _compile(PROGRAM_SHAPES[0])
    machine = MACHINES[0]
    engine = SimulationEngine(machine)
    schedule = engine.run(program)
    cores = list(schedule.core_of_task)
    cores[0] = machine.cores_per_node
    mutated = replace(schedule, core_of_task=cores)
    report = _verify(mutated, program, machine, engine, "uniform")
    assert report.count("S-CORE-RANGE") == 1, report.summary(None)
