"""Unit tests for the QR tile kernels (GEQRT/TSQRT/TTQRT and updates)."""

import numpy as np
import pytest

from repro.kernels.householder import form_q
from repro.kernels.qr_kernels import geqrt, tsmqr, tsqrt, ttmqr, ttqrt, unmqr


class TestGeqrtUnmqr:
    def test_geqrt_triangularizes(self, rng):
        a = rng.standard_normal((5, 5))
        r, refl = geqrt(a)
        np.testing.assert_allclose(np.tril(r, -1), 0.0, atol=1e-12)
        q = form_q(refl.v, refl.t)
        np.testing.assert_allclose(q @ r, a, atol=1e-12)

    def test_unmqr_applies_qt(self, rng):
        a = rng.standard_normal((4, 4))
        c = rng.standard_normal((4, 4))
        r, refl = geqrt(a)
        q = form_q(refl.v, refl.t)
        np.testing.assert_allclose(unmqr(refl, c), q.T @ c, atol=1e-12)

    def test_unmqr_rejects_wrong_reflector(self, rng):
        a = rng.standard_normal((4, 4))
        _, _, refl = tsqrt(np.triu(a), rng.standard_normal((4, 4)))
        with pytest.raises(ValueError):
            unmqr(refl, a)

    def test_unmqr_rejects_row_mismatch(self, rng):
        _, refl = geqrt(rng.standard_normal((4, 4)))
        with pytest.raises(ValueError):
            unmqr(refl, rng.standard_normal((3, 4)))

    def test_rectangular_tile(self, rng):
        a = rng.standard_normal((3, 5))
        r, refl = geqrt(a)
        q = form_q(refl.v, refl.t)
        np.testing.assert_allclose(q @ r, a, atol=1e-12)


class TestTsqrtTsmqr:
    def test_tsqrt_zeroes_bottom(self, rng):
        r_top = np.triu(rng.standard_normal((4, 4)))
        a_bot = rng.standard_normal((4, 4))
        new_top, new_bot, refl = tsqrt(r_top, a_bot)
        np.testing.assert_array_equal(new_bot, 0.0)
        # Stacked factorization is exact.
        q = form_q(refl.v, refl.t)
        stacked = np.vstack([r_top, a_bot])
        np.testing.assert_allclose(q @ np.vstack([new_top, new_bot]), stacked, atol=1e-12)

    def test_tsqrt_ragged_bottom(self, rng):
        r_top = np.triu(rng.standard_normal((4, 4)))
        a_bot = rng.standard_normal((2, 4))
        new_top, new_bot, refl = tsqrt(r_top, a_bot)
        assert new_bot.shape == (2, 4)
        q = form_q(refl.v, refl.t)
        np.testing.assert_allclose(
            q @ np.vstack([new_top, new_bot]), np.vstack([r_top, a_bot]), atol=1e-12
        )

    def test_tsqrt_column_mismatch(self, rng):
        with pytest.raises(ValueError):
            tsqrt(rng.standard_normal((4, 4)), rng.standard_normal((4, 3)))

    def test_tsmqr_matches_explicit(self, rng):
        r_top = np.triu(rng.standard_normal((3, 3)))
        a_bot = rng.standard_normal((3, 3))
        _, _, refl = tsqrt(r_top, a_bot)
        c_top = rng.standard_normal((3, 4))
        c_bot = rng.standard_normal((3, 4))
        q = form_q(refl.v, refl.t)
        expected = q.T @ np.vstack([c_top, c_bot])
        got_top, got_bot = tsmqr(refl, c_top, c_bot)
        np.testing.assert_allclose(np.vstack([got_top, got_bot]), expected, atol=1e-12)

    def test_tsmqr_rejects_wrong_reflector(self, rng):
        _, refl = geqrt(rng.standard_normal((3, 3)))
        with pytest.raises(ValueError):
            tsmqr(refl, rng.standard_normal((3, 3)), rng.standard_normal((3, 3)))

    def test_tsmqr_rejects_bad_split(self, rng):
        r_top = np.triu(rng.standard_normal((3, 3)))
        _, _, refl = tsqrt(r_top, rng.standard_normal((3, 3)))
        with pytest.raises(ValueError):
            tsmqr(refl, rng.standard_normal((2, 3)), rng.standard_normal((3, 3)))


class TestTtqrtTtmqr:
    def test_ttqrt_combines_triangles(self, rng):
        r_top = np.triu(rng.standard_normal((4, 4)))
        r_bot = np.triu(rng.standard_normal((4, 4)))
        new_top, new_bot, refl = ttqrt(r_top, r_bot)
        np.testing.assert_array_equal(new_bot, 0.0)
        np.testing.assert_allclose(np.tril(new_top, -1), 0.0, atol=1e-12)
        q = form_q(refl.v, refl.t)
        np.testing.assert_allclose(
            q @ np.vstack([new_top, new_bot]), np.vstack([r_top, r_bot]), atol=1e-12
        )

    def test_ttmqr_matches_explicit(self, rng):
        r_top = np.triu(rng.standard_normal((3, 3)))
        r_bot = np.triu(rng.standard_normal((3, 3)))
        _, _, refl = ttqrt(r_top, r_bot)
        c_top = rng.standard_normal((3, 5))
        c_bot = rng.standard_normal((3, 5))
        q = form_q(refl.v, refl.t)
        expected = q.T @ np.vstack([c_top, c_bot])
        got_top, got_bot = ttmqr(refl, c_top, c_bot)
        np.testing.assert_allclose(np.vstack([got_top, got_bot]), expected, atol=1e-12)

    def test_ttmqr_rejects_wrong_reflector(self, rng):
        r_top = np.triu(rng.standard_normal((3, 3)))
        _, _, refl = tsqrt(r_top, rng.standard_normal((3, 3)))
        with pytest.raises(ValueError):
            ttmqr(refl, rng.standard_normal((3, 3)), rng.standard_normal((3, 3)))

    def test_kernels_do_not_modify_inputs(self, rng):
        r_top = np.triu(rng.standard_normal((4, 4)))
        r_bot = np.triu(rng.standard_normal((4, 4)))
        top_copy, bot_copy = r_top.copy(), r_bot.copy()
        ttqrt(r_top, r_bot)
        np.testing.assert_array_equal(r_top, top_copy)
        np.testing.assert_array_equal(r_bot, bot_copy)
