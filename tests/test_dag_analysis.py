"""Tests for task-graph analysis and export tools."""

import json

import pytest

from repro.analysis.formulas import bidiag_greedy_cp
from repro.dag.analysis import (
    graph_stats,
    kernel_breakdown,
    max_parallelism,
    memory_footprint_tiles,
    parallelism_profile,
    step_breakdown,
    ts_tt_work_split,
)
from repro.dag.export import save_dot, save_json, to_dot, to_json
from repro.dag.tracer import trace_bidiag, trace_qr
from repro.trees import FlatTSTree, FlatTTTree, GreedyTree


@pytest.fixture(scope="module")
def greedy_graph():
    return trace_bidiag(8, 6, GreedyTree())


@pytest.fixture(scope="module")
def flatts_graph():
    return trace_bidiag(8, 6, FlatTSTree())


class TestGraphStats:
    def test_work_equals_total_weight(self, greedy_graph):
        stats = graph_stats(greedy_graph)
        assert stats.work == greedy_graph.total_weight()
        assert stats.n_tasks == len(greedy_graph)
        assert stats.n_edges == greedy_graph.n_edges

    def test_span_matches_formula(self, greedy_graph):
        stats = graph_stats(greedy_graph)
        assert stats.span == bidiag_greedy_cp(8, 6)

    def test_average_parallelism_bounds(self, greedy_graph):
        stats = graph_stats(greedy_graph)
        assert 1.0 <= stats.average_parallelism <= stats.n_tasks

    def test_greedy_has_shorter_span_than_flatts(self, greedy_graph, flatts_graph):
        assert graph_stats(greedy_graph).span < graph_stats(flatts_graph).span

    def test_flatts_and_greedy_have_comparable_work(self, greedy_graph, flatts_graph):
        # TT kernels do the same flops as TS ones split differently; total
        # work differs by less than 50%.
        w_greedy = graph_stats(greedy_graph).work
        w_flatts = graph_stats(flatts_graph).work
        assert 0.5 < w_greedy / w_flatts < 2.0

    def test_sources_and_sinks(self, greedy_graph):
        stats = graph_stats(greedy_graph)
        assert stats.n_sources >= 1
        assert stats.n_sinks >= 1
        assert stats.max_in_degree >= 1
        assert stats.max_out_degree >= 1


class TestParallelismProfile:
    def test_profile_covers_span(self, greedy_graph):
        profile = parallelism_profile(greedy_graph, n_bins=20)
        assert len(profile) == 20
        assert all(active >= 0 for _, active in profile)
        assert max(active for _, active in profile) >= 1

    def test_greedy_peak_exceeds_flatts(self, greedy_graph, flatts_graph):
        assert max_parallelism(greedy_graph) >= max_parallelism(flatts_graph)

    def test_empty_graph(self):
        from repro.dag.task import TaskGraph

        assert parallelism_profile(TaskGraph()) == []

    def test_invalid_bins(self, greedy_graph):
        with pytest.raises(ValueError):
            parallelism_profile(greedy_graph, n_bins=0)


class TestBreakdowns:
    def test_kernel_breakdown_fractions_sum_to_one(self, greedy_graph):
        breakdown = kernel_breakdown(greedy_graph)
        total = sum(entry["work_fraction"] for entry in breakdown.values())
        assert total == pytest.approx(1.0)

    def test_flatts_routes_work_through_ts_kernels(self, flatts_graph, greedy_graph):
        ts_flatts, tt_flatts = ts_tt_work_split(flatts_graph)
        ts_greedy, tt_greedy = ts_tt_work_split(greedy_graph)
        assert ts_flatts > 0.9
        assert tt_greedy > 0.9
        assert ts_flatts + tt_flatts == pytest.approx(1.0)
        assert ts_greedy + tt_greedy == pytest.approx(1.0)

    def test_step_breakdown_total(self, greedy_graph):
        steps = step_breakdown(greedy_graph)
        assert sum(steps.values()) == pytest.approx(greedy_graph.total_weight())

    def test_memory_footprint(self, greedy_graph):
        # BIDIAG touches every tile of the 8x6 matrix.
        assert memory_footprint_tiles(greedy_graph) == 8 * 6


class TestExport:
    def test_dot_contains_all_tasks(self):
        graph = trace_qr(3, 2, GreedyTree())
        dot = to_dot(graph)
        assert dot.startswith("digraph")
        assert dot.count(" [label=") == len(graph)
        assert dot.count("->") == graph.n_edges

    def test_dot_size_limit(self, flatts_graph):
        with pytest.raises(ValueError):
            to_dot(flatts_graph, max_tasks=10)
        assert to_dot(flatts_graph, max_tasks=None)

    def test_json_roundtrip_structure(self):
        graph = trace_qr(4, 3, FlatTTTree())
        payload = json.loads(to_json(graph))
        assert payload["n_tasks"] == len(graph)
        assert payload["n_edges"] == graph.n_edges
        assert len(payload["tasks"]) == len(graph)
        assert len(payload["edges"]) == graph.n_edges
        kernels = {t["kernel"] for t in payload["tasks"]}
        assert "GEQRT" in kernels

    def test_save_helpers(self, tmp_path):
        graph = trace_qr(3, 3, GreedyTree())
        dot_path = tmp_path / "g.dot"
        json_path = tmp_path / "g.json"
        save_dot(graph, str(dot_path))
        save_json(graph, str(json_path), indent=2)
        assert dot_path.read_text().startswith("digraph")
        assert json.loads(json_path.read_text())["n_tasks"] == len(graph)
