"""Tests for the machine model, the list scheduler and the simulator."""

import pytest

from repro.config import MIRIEL, Config, get_preset
from repro.dag.task import Task, TaskGraph
from repro.dag.tracer import trace_bidiag
from repro.dag.critical_path import critical_path_length
from repro.kernels.costs import KernelName
from repro.runtime.machine import Machine
from repro.runtime.scheduler import ListScheduler
from repro.runtime.simulator import simulate_ge2bnd, simulate_ge2val, simulate_graph
from repro.tiles.distribution import BlockCyclicDistribution, ProcessGrid
from repro.trees import FlatTSTree, GreedyTree


def _mk_task(tid, kernel=KernelName.TSMQR, tile=(0, 0)):
    return Task(
        id=tid,
        kernel=kernel,
        params=(tid,),
        reads=frozenset(),
        writes=frozenset(),
        weight=12,
        owner_tile=tile,
    )


class TestConfig:
    def test_defaults_match_paper(self):
        cfg = Config()
        assert cfg.tile_size == 160
        assert cfg.inner_block == 32
        assert cfg.auto_gamma == 2.0

    def test_with_(self):
        cfg = Config().with_(tile_size=200)
        assert cfg.tile_size == 200
        assert cfg.inner_block == 32

    def test_validation(self):
        with pytest.raises(ValueError):
            Config(tile_size=0)
        with pytest.raises(ValueError):
            Config(auto_gamma=-1)

    def test_presets(self):
        assert get_preset("miriel") is MIRIEL
        with pytest.raises(KeyError):
            get_preset("not-a-machine")

    def test_miriel_numbers(self):
        assert MIRIEL.cores_per_node == 24
        assert MIRIEL.core_gemm_gflops == 37.0
        assert MIRIEL.node_gemm_gflops == 642.0
        assert 0 < MIRIEL.node_efficiency < 1


class TestMachine:
    def test_basic_properties(self):
        m = Machine(n_nodes=4, cores_per_node=24, tile_size=160)
        assert m.total_cores == 96
        assert m.tile_bytes == 160 * 160 * 8
        assert m.peak_gflops == pytest.approx(4 * m.node_peak_gflops)

    def test_core_rate_capped_by_node_aggregate(self):
        m = Machine()
        assert m.core_rate_gflops <= MIRIEL.core_gemm_gflops
        assert m.core_rate_gflops == pytest.approx(642.0 / 24.0)

    def test_kernel_duration_ordering(self):
        m = Machine()
        assert m.kernel_duration(KernelName.TTQRT) < m.kernel_duration(KernelName.TSQRT)
        assert m.kernel_duration(KernelName.TSMQR) > 0

    def test_transfer_time(self):
        single = Machine(n_nodes=1)
        multi = Machine(n_nodes=4)
        assert single.transfer_time() == 0.0
        assert multi.transfer_time() > 0.0
        assert multi.transfer_time(10**9) > multi.transfer_time()

    def test_with_nodes(self):
        m = Machine(n_nodes=1, cores_per_node=12, tile_size=100)
        m4 = m.with_nodes(4)
        assert m4.n_nodes == 4
        assert m4.cores_per_node == 12
        assert m4.tile_size == 100

    def test_validation(self):
        with pytest.raises(ValueError):
            Machine(n_nodes=0)
        with pytest.raises(ValueError):
            Machine(cores_per_node=0)


class TestListScheduler:
    def test_independent_tasks_run_in_parallel(self):
        g = TaskGraph()
        for i in range(4):
            g.add_task(_mk_task(i))
        machine = Machine(n_nodes=1, cores_per_node=4, tile_size=100)
        schedule = ListScheduler(machine).run(g)
        # All four tasks fit on four cores simultaneously.
        assert schedule.makespan == pytest.approx(machine.kernel_duration(KernelName.TSMQR))

    def test_chain_serializes(self):
        g = TaskGraph()
        for i in range(4):
            g.add_task(_mk_task(i))
        for i in range(3):
            g.add_edge(i, i + 1)
        machine = Machine(n_nodes=1, cores_per_node=4, tile_size=100)
        schedule = ListScheduler(machine).run(g)
        assert schedule.makespan == pytest.approx(4 * machine.kernel_duration(KernelName.TSMQR))

    def test_single_core_serializes_everything(self):
        g = TaskGraph()
        for i in range(5):
            g.add_task(_mk_task(i))
        machine = Machine(n_nodes=1, cores_per_node=1, tile_size=100)
        schedule = ListScheduler(machine).run(g)
        assert schedule.makespan == pytest.approx(5 * machine.kernel_duration(KernelName.TSMQR))

    def test_empty_graph(self):
        machine = Machine()
        schedule = ListScheduler(machine).run(TaskGraph())
        assert schedule.makespan == 0.0

    def test_cross_node_edges_counted(self):
        g = TaskGraph()
        g.add_task(_mk_task(0, tile=(0, 0)))
        g.add_task(_mk_task(1, tile=(1, 0)))  # different block-cyclic owner
        g.add_edge(0, 1)
        machine = Machine(n_nodes=2, cores_per_node=2, tile_size=100)
        dist = BlockCyclicDistribution(ProcessGrid(2, 1))
        schedule = ListScheduler(machine, dist).run(g)
        assert schedule.messages == 1
        assert schedule.comm_bytes == machine.tile_bytes
        assert schedule.makespan > 2 * machine.kernel_duration(KernelName.TSMQR)

    def test_distribution_process_count_must_match(self):
        machine = Machine(n_nodes=4)
        with pytest.raises(ValueError):
            ListScheduler(machine, BlockCyclicDistribution(ProcessGrid(1, 2)))

    def test_schedule_bounds(self):
        """Makespan is bounded below by the critical path and above by the
        serial time (fundamental scheduling bounds)."""
        g = trace_bidiag(6, 4, GreedyTree())
        machine = Machine(n_nodes=1, cores_per_node=8, tile_size=160)
        schedule = ListScheduler(machine).run(g)
        cp_time = critical_path_length(g, weight_fn=lambda t: machine.kernel_duration(t.kernel))
        serial_time = sum(machine.kernel_duration(t.kernel) for t in g.tasks)
        assert cp_time <= schedule.makespan + 1e-12
        assert schedule.makespan <= serial_time + 1e-12

    def test_node_utilization(self):
        g = trace_bidiag(4, 4, FlatTSTree())
        machine = Machine(n_nodes=1, cores_per_node=4, tile_size=160)
        schedule = ListScheduler(machine).run(g)
        util = schedule.node_utilization(machine)
        assert len(util) == 1
        assert 0.0 < util[0] <= 1.0


class TestSimulator:
    def test_gflops_below_machine_peak(self):
        machine = Machine(n_nodes=1, cores_per_node=24, tile_size=160)
        result = simulate_ge2bnd(4000, 4000, machine, tree="auto")
        assert 0 < result.gflops < machine.peak_gflops

    def test_more_cores_never_slower(self):
        small = Machine(n_nodes=1, cores_per_node=4, tile_size=160)
        big = Machine(n_nodes=1, cores_per_node=24, tile_size=160)
        r_small = simulate_ge2bnd(3000, 3000, small, tree="greedy")
        r_big = simulate_ge2bnd(3000, 3000, big, tree="greedy")
        assert r_big.time_seconds <= r_small.time_seconds * 1.01

    def test_single_node_has_no_messages(self):
        machine = Machine(n_nodes=1, cores_per_node=24, tile_size=160)
        result = simulate_ge2bnd(3000, 3000, machine, tree="flatts")
        assert result.messages == 0

    def test_multi_node_communicates(self):
        machine = Machine(n_nodes=4, cores_per_node=8, tile_size=160)
        result = simulate_ge2bnd(4000, 4000, machine, tree="greedy")
        assert result.messages > 0
        assert result.comm_bytes > 0

    def test_rejects_wide(self):
        machine = Machine()
        with pytest.raises(ValueError):
            simulate_ge2bnd(1000, 2000, machine)

    def test_rejects_unknown_algorithm(self):
        machine = Machine()
        with pytest.raises(ValueError):
            simulate_ge2bnd(2000, 1000, machine, algorithm="qr-only")

    def test_ge2val_slower_than_ge2bnd(self):
        machine = Machine(n_nodes=1, cores_per_node=24, tile_size=160)
        bnd = simulate_ge2bnd(3000, 3000, machine, tree="auto")
        val = simulate_ge2val(3000, 3000, machine, tree="auto")
        assert val.time_seconds > bnd.time_seconds
        assert val.post_seconds > 0

    def test_ge2val_auto_picks_rbidiag_for_tall_skinny(self):
        machine = Machine(n_nodes=1, cores_per_node=24, tile_size=160)
        result = simulate_ge2val(20000, 2000, machine, tree="greedy")
        assert result.algorithm == "ge2val-rbidiag"

    def test_simulate_graph_direct(self):
        g = trace_bidiag(4, 4, FlatTSTree())
        machine = Machine(n_nodes=1, cores_per_node=4, tile_size=160)
        schedule = simulate_graph(g, machine)
        assert schedule.makespan > 0
