"""Validation of Section IV: measured critical paths vs closed forms."""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis.crossover import (
    CHAN_FLOP_CROSSOVER,
    asymptotic_ratio,
    crossover_ratio,
    crossover_table,
)
from repro.analysis.formulas import (
    bidiag_cp,
    bidiag_flatts_cp,
    bidiag_flattt_cp,
    bidiag_greedy_cp,
    greedy_asymptotic_cp,
    lq_step_cp,
    qr_factorization_cp,
    qr_step_cp,
    rbidiag_cp,
)
from repro.dag.critical_path import critical_path_length
from repro.dag.tracer import trace_bidiag, trace_qr, trace_rbidiag
from repro.trees import FlatTSTree, FlatTTTree, GreedyTree

SHAPES = [(1, 1), (2, 1), (3, 2), (4, 4), (6, 3), (8, 2), (8, 8), (10, 5), (12, 4), (7, 7)]


class TestStepFormulas:
    def test_flatts_step(self):
        assert qr_step_cp(5, 1, "flatts") == 4 + 6 * 4
        assert qr_step_cp(5, 3, "flatts") == 4 + 6 + 12 * 4

    def test_flattt_step(self):
        assert qr_step_cp(5, 1, "flattt") == 4 + 2 * 4
        assert qr_step_cp(5, 3, "flattt") == 4 + 6 + 6 * 4

    def test_greedy_step(self):
        assert qr_step_cp(8, 1, "greedy") == 4 + 2 * 3
        assert qr_step_cp(9, 2, "greedy") == 4 + 6 + 6 * 4

    def test_lq_step_is_transposed_qr_step(self):
        assert lq_step_cp(5, 3, "flatts") == qr_step_cp(3, 5, "flatts")

    def test_unknown_tree(self):
        with pytest.raises(ValueError):
            qr_step_cp(4, 4, "bogus")

    def test_invalid_size(self):
        with pytest.raises(ValueError):
            qr_step_cp(0, 1, "flatts")

    def test_single_step_matches_dag(self):
        # A p x 1 tile matrix exercises exactly one QR step.
        for p in (1, 2, 3, 5, 9):
            measured = critical_path_length(trace_qr(p, 1, FlatTSTree()))
            assert measured == qr_step_cp(p, 1, "flatts")
            measured_g = critical_path_length(trace_qr(p, 1, GreedyTree()))
            assert measured_g == qr_step_cp(p, 1, "greedy")


class TestBidiagClosedForms:
    """The headline validation: the DAGs we execute have exactly the critical
    paths the paper derives analytically."""

    @pytest.mark.parametrize("p,q", SHAPES)
    def test_flatts_closed_form(self, p, q):
        assert bidiag_flatts_cp(p, q) == 12 * p * q - 6 * p + 2 * q - 4
        assert bidiag_cp(p, q, "flatts") == bidiag_flatts_cp(p, q)
        measured = critical_path_length(trace_bidiag(p, q, FlatTSTree()))
        assert measured == bidiag_flatts_cp(p, q)

    @pytest.mark.parametrize("p,q", SHAPES)
    def test_flattt_closed_form(self, p, q):
        assert bidiag_flattt_cp(p, q) == 6 * p * q - 4 * p + 12 * q - 10
        assert bidiag_cp(p, q, "flattt") == bidiag_flattt_cp(p, q)
        measured = critical_path_length(trace_bidiag(p, q, FlatTTTree()))
        assert measured == bidiag_flattt_cp(p, q)

    @pytest.mark.parametrize("p,q", SHAPES)
    def test_greedy_closed_form(self, p, q):
        assert bidiag_cp(p, q, "greedy") == bidiag_greedy_cp(p, q)
        measured = critical_path_length(trace_bidiag(p, q, GreedyTree()))
        assert measured == bidiag_greedy_cp(p, q)

    def test_greedy_power_of_two_square_formula(self):
        # BIDIAG_GREEDY(q, q) = 12 q log2 q + 8q - 6 log2 q - 4 for q = 2^k.
        for q in (2, 4, 8, 16, 32):
            lg = int(math.log2(q))
            expected = 12 * q * lg + 8 * q - 6 * lg - 4
            assert bidiag_greedy_cp(q, q) == expected

    def test_greedy_power_of_two_rectangular_formula(self):
        # 6q log2 p + 6q log2 q + 14q - 4 log2 p - 6 log2 q - 10, p > q powers of 2.
        for p, q in ((8, 4), (16, 4), (16, 8), (32, 8)):
            lp, lq_ = int(math.log2(p)), int(math.log2(q))
            expected = 6 * q * lp + 6 * q * lq_ + 14 * q - 4 * lp - 6 * lq_ - 10
            assert bidiag_greedy_cp(p, q) == expected

    @settings(max_examples=25, deadline=None)
    @given(q=st.integers(min_value=1, max_value=10), extra=st.integers(min_value=0, max_value=12))
    def test_property_measured_equals_formula(self, q, extra):
        p = q + extra
        assert critical_path_length(trace_bidiag(p, q, FlatTSTree())) == bidiag_flatts_cp(p, q)
        assert critical_path_length(trace_bidiag(p, q, GreedyTree())) == bidiag_greedy_cp(p, q)

    def test_greedy_asymptotically_better(self):
        # Θ(q log p) vs Θ(pq): the ratio must grow with the problem size.
        small = bidiag_flatts_cp(16, 16) / bidiag_greedy_cp(16, 16)
        large = bidiag_flatts_cp(64, 64) / bidiag_greedy_cp(64, 64)
        assert large > small > 1.0

    def test_asymptotic_equivalent(self):
        # BIDIAG_GREEDY(q, q) / (12 q log2 q) -> 1.
        for q in (64, 256, 1024):
            ratio = bidiag_greedy_cp(q, q) / greedy_asymptotic_cp(q, alpha=0.0)
            assert 0.9 < ratio < 1.3

    def test_invalid_shapes(self):
        with pytest.raises(ValueError):
            bidiag_flatts_cp(2, 4)
        with pytest.raises(ValueError):
            bidiag_cp(2, 4, "greedy")


class TestRBidiag:
    @pytest.mark.parametrize("p,q", [(4, 4), (8, 4), (12, 3), (16, 4), (10, 10)])
    @pytest.mark.parametrize("tree_name,tree", [
        ("flatts", FlatTSTree()), ("flattt", FlatTTTree()), ("greedy", GreedyTree())
    ])
    def test_measured_at_most_formula(self, p, q, tree_name, tree):
        # The closed form ignores the QR/BIDIAG overlap, so it is an upper
        # bound on the DAG critical path — and not a loose one.
        measured = critical_path_length(trace_rbidiag(p, q, tree))
        formula = rbidiag_cp(p, q, tree_name)
        assert measured <= formula
        # The overlap between the preliminary QR and the bidiagonalization of
        # the R factor can be substantial (that is the point of R-BIDIAG),
        # but the measured path can never drop below the critical path of the
        # square bidiagonalization minus its first QR step.
        lower = bidiag_cp(q, q, tree_name) - qr_step_cp(q, q, tree_name)
        assert measured >= lower

    def test_qr_factorization_cp_components(self):
        assert qr_factorization_cp(4, 1, "flatts") == qr_step_cp(4, 1, "flatts")
        with pytest.raises(ValueError):
            qr_factorization_cp(2, 4, "greedy")

    def test_rbidiag_beats_bidiag_for_tall_skinny(self):
        # Uses the measured DAG critical paths: the advantage of R-BIDIAG
        # relies on the pipelining of the preliminary QR factorization.
        from repro.analysis.crossover import measured_bidiag_cp, measured_rbidiag_cp

        q = 4
        p = 8 * q  # very tall
        assert measured_rbidiag_cp(p, q) < measured_bidiag_cp(p, q)

    def test_bidiag_beats_rbidiag_for_square(self):
        for q in (4, 8, 16):
            assert bidiag_cp(q, q, "greedy") < rbidiag_cp(q, q, "greedy")

    def test_pipelined_greedy_qr_has_short_critical_path(self):
        """The cross-panel GREEDY QR factorization has a critical path close
        to the 22q + o(q) bound of the paper, essentially independent of p."""
        from repro.dag.tracer import trace_qr
        from repro.trees import GreedyTree

        q = 6
        cp_tall = critical_path_length(trace_qr(12 * q, q, GreedyTree()))
        cp_very_tall = critical_path_length(trace_qr(24 * q, q, GreedyTree()))
        assert cp_tall <= 22 * q + 6 * math.ceil(math.log2(12 * q)) + 10
        # Doubling p only adds a logarithmic amount.
        assert cp_very_tall - cp_tall <= 12


class TestCrossover:
    @pytest.mark.slow
    def test_crossover_exists_and_grows_with_q(self):
        # Section IV-C: the crossover delta_s exists and oscillates in a
        # narrow band (the paper reports [5, 8] for the widths it plots; at
        # the small widths swept here it sits a little lower and grows).
        points = crossover_table([4, 8, 12])
        deltas = [pt.delta_s for pt in points]
        assert all(2.0 <= d <= 9.0 for d in deltas)
        assert deltas[0] <= deltas[-1]

    def test_crossover_requires_q_at_least_2(self):
        with pytest.raises(ValueError):
            crossover_ratio(1)

    def test_chan_flop_crossover(self):
        assert CHAN_FLOP_CROSSOVER == pytest.approx(5.0 / 3.0)

    def test_asymptotic_ratio(self):
        assert asymptotic_ratio(0.0) == 1.0
        assert asymptotic_ratio(0.5) == 1.25
        with pytest.raises(ValueError):
            asymptotic_ratio(1.5)

    def test_ratio_grows_with_alpha(self):
        """BIDIAG/R-BIDIAG critical-path ratio increases with matrix elongation."""
        from repro.analysis.crossover import measured_bidiag_cp, measured_rbidiag_cp

        q = 8
        ratios = []
        for p in (q, 4 * q, 10 * q):
            ratios.append(measured_bidiag_cp(p, q) / measured_rbidiag_cp(p, q))
        assert ratios[0] < ratios[1] < ratios[2]
