"""Tests for the observability subsystem (:mod:`repro.obs`).

The load-bearing contract is *non-perturbation*: the engine records
nothing inside its event loop, so schedules must be bit-identical with
tracing on and off under every scheduling policy and network model.  On
top of that, this module pins the Chrome trace-event export for a small
fixed program (schema validity, pid/tid <-> node/core mapping, matched
B/E phase spans, monotonic timestamps) and unit-tests the metrics
registry, the shared utilization helpers, the injectable clock and the
span profiler.
"""

import json

import numpy as np
import pytest

from repro.api import SvdPlan, execute
from repro.ir import clear_program_cache, get_program
from repro.obs import (
    REGISTRY,
    FakeClock,
    Histogram,
    MetricsRegistry,
    Tracer,
    chrome_trace,
    core_busy_seconds,
    current_tracer,
    node_busy_fractions,
    profile_enabled,
    profile_snapshot,
    profiled,
    reset_profiles,
    run_metrics,
    trace_enabled,
    utilization_summary,
    validate_chrome_trace,
    write_chrome_trace,
)
from repro.runtime.engine import SimulationEngine, engine_memo_stats
from repro.runtime.machine import Machine
from repro.runtime.policies import POLICIES
from repro.tiles.distribution import BlockCyclicDistribution, ProcessGrid
from repro.trees import FlatTTTree, GreedyTree

NETWORKS = ("uniform", "alpha-beta")


@pytest.fixture(autouse=True)
def _fresh_caches():
    clear_program_cache()
    yield
    clear_program_cache()


def _machine(n_nodes=4, cores=4, nb=100):
    return Machine(n_nodes=n_nodes, cores_per_node=cores, tile_size=nb)


def _simulate(machine, *, policy="list", network="uniform", tracer=None,
              p=6, q=6, tree=None):
    from repro.api.resolver import default_grid

    grid = default_grid(machine.n_nodes, p, q)
    program = get_program(
        "bidiag", p, q, tree or FlatTTTree(),
        n_cores=machine.cores_per_node, grid_rows=grid.rows,
    )
    engine = SimulationEngine(
        machine, BlockCyclicDistribution(grid), policy=policy, network=network
    )
    if tracer is None:
        return engine.run(program)
    with tracer.activate():
        return engine.run(program)


def _assert_schedules_identical(a, b):
    assert a.makespan == b.makespan  # bitwise, not approx
    assert a.start == b.start
    assert a.finish == b.finish
    assert a.node_of_task == b.node_of_task
    assert a.core_of_task == b.core_of_task
    assert a.messages == b.messages
    assert a.comm_bytes == b.comm_bytes
    assert a.comm_seconds == b.comm_seconds


# --------------------------------------------------------------------------- #
# Non-perturbation: bit-identical schedules with tracing on and off
# --------------------------------------------------------------------------- #
@pytest.mark.parametrize("network", NETWORKS)
@pytest.mark.parametrize("policy", sorted(POLICIES))
def test_tracing_does_not_perturb_schedule(policy, network):
    machine = _machine()
    plain = _simulate(machine, policy=policy, network=network)
    clear_program_cache()
    tracer = Tracer(clock=FakeClock())
    traced = _simulate(machine, policy=policy, network=network, tracer=tracer)
    _assert_schedules_identical(plain, traced)
    assert len(tracer.runs) == 1
    run = tracer.runs[0]
    assert run.policy == policy
    assert run.network == network
    assert len(run) == len(plain.start)
    assert run.makespan == plain.makespan


@pytest.mark.parametrize("fast", [True, False])
def test_tracing_identical_on_both_engine_paths(fast):
    machine = _machine(n_nodes=2, cores=2)
    grid = ProcessGrid(1, 2)
    program = get_program("bidiag", 6, 6, FlatTTTree(), n_cores=2,
                          grid_rows=grid.rows)
    dist = BlockCyclicDistribution(grid)
    engine = SimulationEngine(machine, dist, network="alpha-beta", fast=fast)
    plain = engine.run(program)
    tracer = Tracer(clock=FakeClock())
    with tracer.activate():
        traced = engine.run(program)
    _assert_schedules_identical(plain, traced)
    # Both paths record the same number of deduplicated transfers.
    assert len(tracer.runs[0].transfers) == plain.messages


def test_single_node_run_has_no_transfers():
    tracer = Tracer(clock=FakeClock())
    schedule = _simulate(_machine(n_nodes=1), tracer=tracer, tree=GreedyTree())
    run = tracer.runs[0]
    assert run.transfers == []
    assert run.n_nodes == 1
    assert schedule.messages == 0


# --------------------------------------------------------------------------- #
# Transfer reconstruction invariants
# --------------------------------------------------------------------------- #
@pytest.mark.parametrize("network", NETWORKS)
def test_transfer_records_are_consistent(network):
    tracer = Tracer(clock=FakeClock())
    schedule = _simulate(_machine(), network=network, tracer=tracer)
    run = tracer.runs[0]
    assert len(run.transfers) == schedule.messages > 0
    finish = schedule.finish
    for record in run.transfers:
        assert record.src != record.dst
        assert record.n_bytes > 0
        assert record.release == finish[record.op_id]
        assert record.handshake >= 0.0
        assert record.queued >= 0.0
        assert record.injection > 0.0
        assert record.wire > 0.0
        assert record.arrival == pytest.approx(record.inject_start + record.wire)
        assert record.arrival >= record.release
    if network == "uniform":
        # Flat cost: no handshake, no NIC queueing, wire == injection.
        assert all(r.handshake == 0.0 for r in run.transfers)
        assert all(r.queued == 0.0 for r in run.transfers)
        assert all(r.wire == r.injection for r in run.transfers)
    assert sum(r.n_bytes for r in run.transfers) == schedule.comm_bytes


# --------------------------------------------------------------------------- #
# Golden-pinned Chrome trace for a small fixed program
# --------------------------------------------------------------------------- #
def _traced_fixture():
    """One traced 6x6 FlatTT run on 4 nodes with a deterministic clock."""
    tracer = Tracer(clock=FakeClock())
    plan = SvdPlan(m=600, n=600, stage="ge2bnd", variant="bidiag",
                   tree="flattt", tile_size=100, n_cores=4, n_nodes=4,
                   network="alpha-beta")
    result = execute(plan, "simulate", trace=tracer)
    return tracer, result


def test_golden_trace_schema_and_mapping(tmp_path):
    tracer, result = _traced_fixture()
    payload = chrome_trace(tracer)
    assert validate_chrome_trace(payload) == []

    events = payload["traceEvents"]
    meta = [e for e in events if e["ph"] == "M"]
    timed = [e for e in events if e["ph"] != "M"]
    # Metadata leads, timed events are globally ts-sorted.
    assert events[: len(meta)] == meta
    ts = [e["ts"] for e in timed]
    assert ts == sorted(ts)
    assert all(t >= 0 for t in ts)

    # Wall-clock phases: one matched B/E pair per pipeline phase on pid 0.
    phase_names = {e["name"] for e in timed if e["ph"] == "B"}
    assert phase_names == {"compile", "dep-analysis", "rank", "simulate"}
    begins = [e for e in timed if e["ph"] == "B"]
    ends = [e for e in timed if e["ph"] == "E"]
    assert len(begins) == len(ends) == 4
    assert all(e["pid"] == 0 and e["tid"] == 1 for e in begins + ends)

    # Task events: one X per op, pid/tid encoding the (node, core) placement.
    run = tracer.runs[0]
    tasks = [e for e in timed if e.get("cat") == "task"]
    assert len(tasks) == len(run) == result.n_tasks
    assert sorted(e["args"]["op"] for e in tasks) == list(range(len(run)))
    for event in tasks:
        op = event["args"]["op"]
        assert event["pid"] == 1 + run.node_of[op]
        assert event["tid"] == run.core_of[op] + 1
        assert event["ts"] == pytest.approx(run.start[op] * 1e6)
        assert event["dur"] == pytest.approx(
            (run.finish[op] - run.start[op]) * 1e6
        )
        assert event["name"] in run.kernel_names()

    # Transfer events ride the per-node NIC lane.
    transfers = [e for e in timed if e.get("cat") == "transfer"]
    assert len(transfers) == result.messages == len(run.transfers)
    nic_tid = run.cores_per_node + 1
    assert all(e["tid"] == nic_tid for e in transfers)
    assert sum(e["args"]["bytes"] for e in transfers) == result.comm_bytes

    # Ready-queue counter track present and bounded.
    counters = [e for e in timed if e["ph"] == "C"]
    assert 0 < len(counters) <= 1000

    # otherData summarizes the run.
    other = payload["otherData"]
    assert other["generator"] == "repro.obs"
    assert other["runs"] == [
        {
            "label": "run0",
            "policy": "list",
            "network": "alpha-beta",
            "ops": len(run),
            "makespan_s": run.makespan,
        }
    ]

    # The file round-trips through JSON unchanged.
    path = write_chrome_trace(tracer, str(tmp_path / "trace.json"))
    with open(path, encoding="utf-8") as fh:
        reloaded = json.load(fh)
    assert reloaded == json.loads(json.dumps(payload))
    assert validate_chrome_trace(reloaded) == []


def test_golden_phase_spans_with_fake_clock():
    tracer, _result = _traced_fixture()
    # FakeClock ticks 0.5 per read: the span layout is fully deterministic.
    spans = [(s.name, s.seconds, s.depth) for s in tracer.phases]
    assert spans == [
        ("dep-analysis", 0.5, 1),
        ("compile", 1.5, 0),
        ("rank", 0.5, 1),
        ("simulate", 1.5, 0),
    ]
    assert tracer.phase_seconds() == {
        "dep-analysis": 0.5,
        "compile": 1.5,
        "rank": 0.5,
        "simulate": 1.5,
    }


def test_validate_chrome_trace_flags_problems():
    assert validate_chrome_trace([]) != []
    assert validate_chrome_trace({"traceEvents": 3}) != []
    bad_ts = {"traceEvents": [
        {"ph": "X", "pid": 1, "tid": 1, "ts": 5.0, "dur": 1.0},
        {"ph": "X", "pid": 1, "tid": 1, "ts": 2.0, "dur": 1.0},
    ]}
    assert any("backwards" in p for p in validate_chrome_trace(bad_ts))
    unclosed = {"traceEvents": [{"ph": "B", "pid": 0, "tid": 1,
                                 "ts": 0.0, "name": "x"}]}
    assert any("unclosed" in p for p in validate_chrome_trace(unclosed))
    negative = {"traceEvents": [{"ph": "X", "pid": 1, "tid": 1,
                                 "ts": 1.0, "dur": -2.0}]}
    assert any("dur" in p for p in validate_chrome_trace(negative))
    floats = {"traceEvents": [{"ph": "X", "pid": 1.5, "tid": 1,
                               "ts": 1.0, "dur": 2.0}]}
    assert any("integer" in p for p in validate_chrome_trace(floats))


# --------------------------------------------------------------------------- #
# Gantt renderers
# --------------------------------------------------------------------------- #
def test_gantt_text_and_svg():
    tracer, _result = _traced_fixture()
    text = tracer.gantt(width=60)
    lines = text.splitlines()
    assert "policy=list network=alpha-beta" in lines[0]
    assert any(line.startswith("n00c00 |") for line in lines)
    assert any("nic|" in line for line in lines)  # NIC lanes for senders
    assert any("%" in line for line in lines if "|" in line)

    svg = tracer.gantt_svg(width_px=400)
    assert svg.startswith("<svg") and svg.endswith("</svg>")
    assert "GEQRT" in svg  # legend
    assert svg.count("<rect") > len(tracer.runs[0].transfers)


def test_gantt_empty_tracer():
    tracer = Tracer(clock=FakeClock())
    assert tracer.gantt() == "(no engine run recorded)"
    with pytest.raises(ValueError):
        tracer.gantt_svg()


# --------------------------------------------------------------------------- #
# Metrics registry
# --------------------------------------------------------------------------- #
def test_registry_counters_gauges_histograms():
    reg = MetricsRegistry()
    reg.inc("a.hits")
    reg.inc("a.hits", 2)
    reg.inc("b.misses")
    reg.set_gauge("depth", 7)
    reg.observe("sizes", 80000)
    snap = reg.snapshot()
    assert snap["counters"] == {"a.hits": 3, "b.misses": 1}
    assert snap["gauges"] == {"depth": 7}
    assert snap["histograms"]["sizes"]["count"] == 1
    assert reg.counter("a.hits") == 3
    assert reg.counter("nope") == 0


def test_registry_delta_since_and_reset():
    reg = MetricsRegistry()
    reg.inc("x")
    before = reg.snapshot()
    assert reg.delta_since(before) == {}
    reg.inc("x", 4)
    reg.inc("y")
    assert reg.delta_since(before) == {"x": 4, "y": 1}
    reg.reset(prefix="x")
    assert reg.counter("x") == 0
    assert reg.counter("y") == 1
    reg.reset()
    assert reg.snapshot() == {"counters": {}, "gauges": {}, "histograms": {}}


def test_histogram_power_of_two_buckets():
    hist = Histogram()
    for value in (0, 1, 2, 3, 4, 1024):
        hist.observe(value)
    out = hist.to_dict()
    assert out["count"] == 6
    assert out["min"] == 0 and out["max"] == 1024
    # Bucket key is 2**bit_length(v): 0->0, 1->2, {2,3}->4, 4->8, 1024->2048.
    assert out["buckets"] == {"0": 1, "2": 1, "4": 2, "8": 1, "2048": 1}
    with pytest.raises(ValueError):
        hist.observe(-1)


def test_engine_memo_stats_promoted_to_registry():
    REGISTRY.reset(prefix="engine.memo.")
    machine = _machine(n_nodes=1, cores=4)
    _simulate(machine, tree=GreedyTree())
    stats = engine_memo_stats()
    # Legacy table-size keys survive alongside the new hit/miss counters.
    for key in ("duration_programs", "owner_programs", "rank_programs"):
        assert key in stats
    assert stats["duration_misses"] >= 1
    before_hits = stats["duration_hits"]
    _simulate(machine, tree=GreedyTree())  # same program -> memo hits
    assert engine_memo_stats()["duration_hits"] > before_hits


# --------------------------------------------------------------------------- #
# Shared utilization helpers
# --------------------------------------------------------------------------- #
def test_node_busy_fractions_and_core_busy_seconds():
    busy = [2.0, 1.0]
    frac = node_busy_fractions(busy, makespan=2.0, cores_per_node=2)
    assert frac == [0.5, 0.25]
    assert node_busy_fractions(busy, makespan=0.0, cores_per_node=2) == [0.0, 0.0]

    start = [0.0, 1.0, 0.0]
    finish = [1.0, 3.0, 2.0]
    node_of = [0, 0, 1]
    core_of = [0, 1, 0]
    per_core = core_busy_seconds(start, finish, node_of, core_of, 2, 2)
    assert per_core.shape == (2, 2)
    assert per_core.tolist() == [[1.0, 2.0], [2.0, 0.0]]


def test_utilization_summary_matches_schedule():
    machine = _machine()
    schedule = _simulate(machine)
    summary = utilization_summary(schedule, machine)
    assert summary["makespan"] == schedule.makespan
    assert len(summary["busy_fraction_per_node"]) == machine.n_nodes
    assert 0.0 < summary["overall_busy_fraction"] <= 1.0
    assert summary["total_idle_seconds"] >= 0.0
    per_core = np.asarray(summary["busy_fraction_per_core"])
    assert per_core.shape == (machine.n_nodes, machine.cores_per_node)
    # Per-node fraction is the mean of its core fractions.
    assert np.allclose(per_core.mean(axis=1), summary["busy_fraction_per_node"])
    # The summary is JSON-serializable as-is.
    json.dumps(summary)


def test_schedule_utilization_delegates_to_obs():
    from repro.dag.analysis import schedule_utilization

    machine = _machine(n_nodes=2, cores=2)
    schedule = _simulate(machine)
    assert schedule_utilization(schedule, machine) == utilization_summary(
        schedule, machine
    )


# --------------------------------------------------------------------------- #
# run_metrics / RunResult.metrics
# --------------------------------------------------------------------------- #
def test_run_metrics_untraced_keys():
    machine = _machine()
    schedule = _simulate(machine)
    metrics = run_metrics(schedule, machine)
    assert set(metrics) == {"utilization", "communication", "cache"}
    comm = metrics["communication"]
    assert comm["messages"] == schedule.messages
    assert comm["bytes"] == schedule.comm_bytes
    assert len(comm["messages_per_node"]) == machine.n_nodes


def test_run_metrics_traced_extras():
    machine = _machine()
    tracer = Tracer(clock=FakeClock())
    schedule = _simulate(machine, network="alpha-beta", tracer=tracer)
    metrics = run_metrics(schedule, machine, tracer=tracer)
    assert metrics["network"] == "alpha-beta"
    assert metrics["policy"] == "list"
    ready = metrics["ready_queue"]
    assert ready["peak"] >= 1
    assert ready["time_weighted_mean"] > 0.0
    sizes = metrics["message_sizes"]
    assert sizes["count"] == schedule.messages
    assert sizes["sum"] == schedule.comm_bytes


def test_execute_attaches_metrics_and_cache_delta():
    plan = SvdPlan(m=600, n=600, stage="ge2bnd", tile_size=100,
                   n_cores=4, n_nodes=2)
    first = execute(plan, "simulate")
    assert first.trace is None
    assert first.metrics is not None
    assert first.metrics["cache"].get("program_cache.misses") == 1
    assert first.metrics["utilization"]["overall_busy_fraction"] > 0
    second = execute(plan, "simulate")
    assert second.metrics["cache"].get("program_cache.hits") == 1
    assert "program_cache.misses" not in second.metrics["cache"]
    # Metrics stay out of the pinned experiment-row schema.
    assert "metrics" not in first.to_row()
    assert "trace" not in first.to_row()


def test_execute_trace_flag_precedence(monkeypatch):
    plan = SvdPlan(m=400, n=400, stage="ge2bnd", tile_size=100, n_cores=2)
    assert execute(plan, "simulate").trace is None
    traced = execute(plan, "simulate", trace=True)
    assert traced.trace is not None and len(traced.trace.runs) == 1
    # plan.trace opts in; explicit trace=False beats both plan and env.
    assert execute(plan.with_(trace=True), "simulate").trace is not None
    monkeypatch.setenv("REPRO_TRACE", "1")
    assert trace_enabled()
    assert execute(plan, "simulate").trace is not None
    assert execute(plan, "simulate", trace=False).trace is None
    monkeypatch.setenv("REPRO_TRACE", "0")
    assert not trace_enabled()
    assert execute(plan, "simulate").trace is None
    # An explicit tracer instance accumulates runs across calls.
    tracer = Tracer(clock=FakeClock())
    execute(plan, "simulate", trace=tracer)
    execute(plan, "simulate", trace=tracer)
    assert [run.label for run in tracer.runs] == ["run0", "run1"]


def test_numeric_backend_also_carries_cache_metrics():
    plan = SvdPlan(m=300, n=200, stage="ge2val", tile_size=100, n_cores=2)
    result = execute(plan, "numeric")
    assert result.metrics is not None
    assert "cache" in result.metrics
    assert "utilization" not in result.metrics  # simulate-only


# --------------------------------------------------------------------------- #
# Clock, activation, profiler
# --------------------------------------------------------------------------- #
def test_fake_clock_steps_and_advances():
    clock = FakeClock(start=1.0, step=0.25)
    assert clock.now() == 1.0
    assert clock.now() == 1.25
    clock.advance(10.0)
    assert clock.now() == 11.5


def test_tracer_activation_is_scoped_and_nestable():
    assert current_tracer() is None
    outer, inner = Tracer(clock=FakeClock()), Tracer(clock=FakeClock())
    with outer.activate():
        assert current_tracer() is outer
        with inner.activate():
            assert current_tracer() is inner
        assert current_tracer() is outer
    assert current_tracer() is None


def test_profiler_disabled_by_default_and_enabled_by_env(monkeypatch):
    monkeypatch.delenv("REPRO_PROFILE", raising=False)
    reset_profiles(reread_env=True)
    assert not profile_enabled()
    with profiled("noop"):
        pass
    assert profile_snapshot() == {}

    monkeypatch.setenv("REPRO_PROFILE", "1")
    reset_profiles(reread_env=True)
    assert profile_enabled()
    for _ in range(3):
        with profiled("span"):
            pass
    snap = profile_snapshot()
    assert snap["span"]["count"] == 3
    assert snap["span"]["total_s"] >= 0.0
    assert snap["span"]["min_s"] <= snap["span"]["max_s"]

    monkeypatch.delenv("REPRO_PROFILE", raising=False)
    reset_profiles(reread_env=True)


# --------------------------------------------------------------------------- #
# CLI: trace / stats subcommands
# --------------------------------------------------------------------------- #
def test_cli_trace_writes_valid_json(tmp_path, capsys):
    from repro.cli import main

    out = tmp_path / "t.json"
    svg = tmp_path / "t.svg"
    code = main([
        "trace", "600", "600", "--nodes", "2", "--cores", "4",
        "--nb", "100", "--network", "alpha-beta",
        "--out", str(out), "--svg", str(svg),
    ])
    assert code == 0
    with open(out, encoding="utf-8") as fh:
        payload = json.load(fh)
    assert validate_chrome_trace(payload) == []
    assert svg.read_text().startswith("<svg")
    captured = capsys.readouterr().out
    assert str(out) in captured


def test_cli_stats_json(tmp_path, capsys):
    from repro.cli import main

    out = tmp_path / "stats.json"
    code = main([
        "stats", "600", "600", "--nodes", "2", "--cores", "4",
        "--nb", "100", "--json", str(out),
    ])
    assert code == 0
    with open(out, encoding="utf-8") as fh:
        payload = json.load(fh)
    assert set(payload) == {"plan", "metrics"}
    metrics = payload["metrics"]
    assert "utilization" in metrics and "cache" in metrics
    assert "ready_queue" in metrics  # stats always traces

    code = main(["stats", "600", "600", "--nb", "100", "--cores", "4"])
    assert code == 0
    human = capsys.readouterr().out
    assert "overall busy" in human
    assert "cache counters" in human


def test_cli_simulate_auto_emits_trace_under_env(tmp_path, monkeypatch, capsys):
    from repro.cli import main

    target = tmp_path / "auto.json"
    monkeypatch.setenv("REPRO_TRACE", "1")
    monkeypatch.setenv("REPRO_TRACE_FILE", str(target))
    code = main(["simulate", "400", "400", "--nb", "100", "--cores", "2"])
    assert code == 0
    assert f"trace written to {target}" in capsys.readouterr().out
    with open(target, encoding="utf-8") as fh:
        assert validate_chrome_trace(json.load(fh)) == []


def test_trace_overhead_is_bounded():
    """Tracing may add bookkeeping after the loop, never inside it.

    A coarse guard (the precise bound lives in benchmarks/bench_obs.py):
    a traced run must stay within 2x of an untraced run wall-clock on the
    same warmed program cache.
    """
    import time

    machine = _machine(n_nodes=2, cores=4)
    _simulate(machine)  # warm program cache + memo tables
    t0 = time.perf_counter()
    for _ in range(3):
        _simulate(machine)
    plain = time.perf_counter() - t0
    t0 = time.perf_counter()
    for _ in range(3):
        _simulate(machine, tracer=Tracer(clock=FakeClock()))
    traced = time.perf_counter() - t0
    assert traced < plain * 2 + 0.05


def test_engine_run_record_is_column_oriented():
    tracer = Tracer(clock=FakeClock())
    schedule = _simulate(_machine(), tracer=tracer)
    run = tracer.runs[0]
    # Shared, not copied: recording is O(1) next to the schedule build.
    assert run.start is schedule.start
    assert run.finish is schedule.finish
    assert run.node_of is schedule.node_of_task
    assert run.core_of is schedule.core_of_task
    names = run.kernel_names()
    assert len(names) == len(run)
    assert set(names) <= {
        "GEQRT", "TSQRT", "TTQRT", "UNMQR", "TSMQR", "TTMQR",
        "GELQT", "TSLQT", "TTLQT", "UNMLQ", "TSMLQ", "TTMLQ",
    }


def test_tracer_meta_lands_in_other_data():
    tracer = Tracer(clock=FakeClock())
    tracer.meta["experiment"] = "fig3"
    _simulate(_machine(n_nodes=1), tracer=tracer, tree=GreedyTree())
    assert chrome_trace(tracer)["otherData"]["experiment"] == "fig3"
