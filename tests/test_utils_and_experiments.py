"""Tests for the generators, validation helpers and the experiment harness."""

import numpy as np
import pytest

from repro.experiments.figures import (
    critical_path_table,
    crossover_study,
    fig2_ge2bnd_square,
    fig2_ge2bnd_tall_skinny,
    fig2_ge2val_comparison,
    fig3_strong_scaling_ge2bnd,
    fig3_strong_scaling_ge2val,
    fig4_weak_scaling,
    format_rows,
    table1_kernel_costs,
)
from repro.runtime.machine import Machine
from repro.utils.generators import graded_singular_values, latms, random_matrix
from repro.utils.validation import (
    max_relative_error,
    orthogonality_error,
    reconstruction_error,
    relative_error,
)

SMALL_MACHINE = Machine(n_nodes=1, cores_per_node=8, tile_size=250)


class TestGenerators:
    def test_latms_prescribes_singular_values(self, rng):
        sigma = np.array([4.0, 3.0, 2.0, 1.0])
        a = latms(8, 4, sigma, rng=rng)
        np.testing.assert_allclose(np.linalg.svd(a, compute_uv=False), sigma, atol=1e-12)

    def test_latms_seed_reproducible(self):
        sigma = np.ones(3)
        a1 = latms(5, 3, sigma, seed=7)
        a2 = latms(5, 3, sigma, seed=7)
        np.testing.assert_array_equal(a1, a2)

    def test_latms_validation(self):
        with pytest.raises(ValueError):
            latms(3, 5, np.ones(5))
        with pytest.raises(ValueError):
            latms(5, 3, np.ones(4))
        with pytest.raises(ValueError):
            latms(5, 3, [-1.0, 1.0, 1.0])

    def test_graded_values(self):
        s = graded_singular_values(5, condition=1e4)
        assert s[0] == pytest.approx(1.0)
        assert s[-1] == pytest.approx(1e-4)
        assert np.all(np.diff(s) < 0)

    def test_graded_validation(self):
        with pytest.raises(ValueError):
            graded_singular_values(0)
        with pytest.raises(ValueError):
            graded_singular_values(5, condition=0.5)

    def test_random_matrix_shape(self):
        assert random_matrix(4, 7, seed=0).shape == (4, 7)


class TestValidationHelpers:
    def test_relative_error(self):
        assert relative_error(np.array([1.1, 2.0]), np.array([1.0, 2.0])) == pytest.approx(
            0.1 / np.sqrt(5.0)
        )
        assert relative_error(np.array([1.0]), np.array([0.0])) == 1.0

    def test_max_relative_error(self):
        got = max_relative_error(np.array([1.0, 2.2]), np.array([1.0, 2.0]))
        assert got == pytest.approx(0.1)
        with pytest.raises(ValueError):
            max_relative_error(np.zeros(3), np.zeros(4))

    def test_orthogonality_error(self, rng):
        q, _ = np.linalg.qr(rng.standard_normal((8, 5)))
        assert orthogonality_error(q) < 1e-14
        assert orthogonality_error(q * 2.0) > 0.1

    def test_reconstruction_error(self, rng):
        a = rng.standard_normal((6, 4))
        u, s, vt = np.linalg.svd(a, full_matrices=False)
        assert reconstruction_error(a, u, s, vt) < 1e-14


class TestExperimentHarness:
    def test_table1(self):
        rows = table1_kernel_costs()
        assert {r["panel"] for r in rows} == {"GEQRT", "TSQRT", "TTQRT"}
        costs = {r["panel"]: (r["panel_cost"], r["update_cost"]) for r in rows}
        assert costs["GEQRT"] == (4, 6)
        assert costs["TSQRT"] == (6, 12)
        assert costs["TTQRT"] == (2, 6)

    def test_critical_path_table_consistency(self):
        rows = critical_path_table(shapes=[(4, 4), (8, 4)])
        for r in rows:
            if r["algorithm"] == "bidiag":
                assert r["cp_measured"] == r["cp_formula"]
            else:
                assert r["cp_measured"] <= r["cp_formula"]

    def test_crossover_study(self):
        rows = crossover_study(q_values=(4, 8))
        assert all(2.0 <= r["delta_s"] <= 9.0 for r in rows)

    def test_fig2_square_small(self):
        rows = fig2_ge2bnd_square(sizes=(1500, 3000), trees=("flatts", "greedy"), machine=SMALL_MACHINE)
        assert len(rows) == 4
        assert all(r["gflops"] > 0 for r in rows)

    def test_fig2_tall_skinny_small(self):
        rows = fig2_ge2bnd_tall_skinny(
            n=1000, m_values=(4000, 8000), trees=("greedy",), machine=SMALL_MACHINE
        )
        by_alg = {(r["m"], r["algorithm"]): r["gflops"] for r in rows}
        # R-BIDIAG overtakes BIDIAG as the matrix gets taller.
        assert by_alg[(8000, "rbidiag")] > by_alg[(8000, "bidiag")] * 0.8

    def test_fig2_ge2val_small(self):
        rows = fig2_ge2val_comparison(shapes=[(3000, 3000)], machine=SMALL_MACHINE)
        libs = {r["library"] for r in rows}
        assert {"DPLASMA", "PLASMA", "MKL", "ScaLAPACK", "Elemental"} <= libs

    def test_fig3_strong_scaling_small(self):
        rows = fig3_strong_scaling_ge2bnd(
            m=3000, n=3000, node_counts=(1, 4), trees=("greedy",), nb=250
        )
        g = {r["nodes"]: r["gflops"] for r in rows}
        assert g[4] > g[1]

    def test_fig3_ge2val_small(self):
        rows = fig3_strong_scaling_ge2val(m=3000, n=3000, node_counts=(1, 4), nb=250)
        assert {r["library"] for r in rows} == {"DPLASMA", "Elemental", "ScaLAPACK"}

    def test_fig4_weak_scaling_small(self):
        rows = fig4_weak_scaling(
            n=1000, rows_per_node=4000, node_counts=(1, 2), trees=("greedy",), nb=250
        )
        stages = {r["stage"] for r in rows}
        assert stages == {"ge2bnd", "ge2val"}

    def test_format_rows(self):
        text = format_rows([{"a": 1, "b": 2.5}, {"a": 10, "b": 0.123}])
        assert "a" in text and "b" in text
        assert "10" in text
        assert format_rows([]) == "(no data)"
