"""Tests for schedule traces (Gantt / utilization) and scheduler policies."""

import pytest

from repro.dag.tracer import trace_bidiag, trace_qr
from repro.runtime.machine import Machine
from repro.runtime.scheduler import ListScheduler
from repro.runtime.trace import gantt_chart, idle_time_by_node, utilization_report
from repro.trees import FlatTSTree, GreedyTree


@pytest.fixture(scope="module")
def small_run():
    graph = trace_bidiag(6, 4, GreedyTree())
    machine = Machine(n_nodes=1, cores_per_node=4, tile_size=100)
    schedule = ListScheduler(machine).run(graph)
    return graph, machine, schedule


class TestUtilization:
    def test_busy_fraction_in_unit_interval(self, small_run):
        graph, machine, schedule = small_run
        report = utilization_report(schedule, graph, machine)
        assert 0.0 < report.overall_busy_fraction <= 1.0
        assert all(0.0 <= f <= 1.0 for f in report.busy_fraction_per_node)

    def test_idle_plus_busy_equals_capacity(self, small_run):
        graph, machine, schedule = small_run
        report = utilization_report(schedule, graph, machine)
        capacity = machine.total_cores * schedule.makespan
        busy = sum(schedule.busy_time_per_node)
        assert report.idle_seconds == pytest.approx(capacity - busy)

    def test_critical_kernel_is_an_update(self, small_run):
        graph, machine, schedule = small_run
        report = utilization_report(schedule, graph, machine)
        # Update kernels carry most of the work for any tree.
        assert report.critical_kernel in {"TSMQR", "TTMQR", "TSMLQ", "TTMLQ", "UNMQR", "UNMLQ"}

    def test_idle_time_by_node(self, small_run):
        graph, machine, schedule = small_run
        idle = idle_time_by_node(schedule, machine)
        assert len(idle) == machine.n_nodes
        assert all(v >= -1e-12 for v in idle)


class TestGantt:
    def test_chart_has_one_lane_per_busy_core(self, small_run):
        graph, machine, schedule = small_run
        chart = gantt_chart(schedule, graph, machine, width=40)
        lanes = [line for line in chart.splitlines() if line.startswith("n")]
        assert 1 <= len(lanes) <= machine.total_cores
        # Each lane has exactly `width` cells between the pipes.
        body = lanes[0].split("|")[1]
        assert len(body) == 40

    def test_chart_shows_kernels_and_idle(self, small_run):
        graph, machine, schedule = small_run
        chart = gantt_chart(schedule, graph, machine, width=60)
        assert "legend:" in chart
        body = "".join(line.split("|")[1] for line in chart.splitlines() if line.startswith("n"))
        assert any(ch != "." for ch in body)

    def test_lane_cap(self, small_run):
        graph, machine, schedule = small_run
        chart = gantt_chart(schedule, graph, machine, width=20, max_lanes=1)
        lanes = [line for line in chart.splitlines() if line.startswith("n")]
        assert len(lanes) == 1

    def test_requires_core_assignment(self, small_run):
        graph, machine, schedule = small_run
        from dataclasses import replace

        bare = replace(schedule, core_of_task=None)
        with pytest.raises(ValueError):
            gantt_chart(bare, graph, machine)

    def test_invalid_width(self, small_run):
        graph, machine, schedule = small_run
        with pytest.raises(ValueError):
            gantt_chart(schedule, graph, machine, width=0)


class TestSchedulerPolicies:
    def test_unknown_policy_rejected(self):
        with pytest.raises(ValueError):
            ListScheduler(Machine(), priority="magic")

    @pytest.mark.parametrize("policy", ["bottom-level", "fifo", "weight"])
    def test_all_policies_produce_valid_schedules(self, policy):
        graph = trace_qr(6, 4, GreedyTree())
        machine = Machine(n_nodes=1, cores_per_node=4, tile_size=100)
        schedule = ListScheduler(machine, priority=policy).run(graph)
        assert schedule.makespan > 0
        assert len(schedule.start) == len(graph)
        # Dependencies respected.
        for src, dsts in graph.successors.items():
            for dst in dsts:
                assert schedule.start[dst] >= schedule.finish[src] - 1e-12

    def test_bottom_level_not_worse_than_fifo(self):
        graph = trace_bidiag(8, 6, FlatTSTree())
        machine = Machine(n_nodes=1, cores_per_node=8, tile_size=100)
        blevel = ListScheduler(machine, priority="bottom-level").run(graph).makespan
        fifo = ListScheduler(machine, priority="fifo").run(graph).makespan
        assert blevel <= fifo * 1.05

    def test_core_assignment_is_consistent(self):
        graph = trace_qr(5, 3, GreedyTree())
        machine = Machine(n_nodes=1, cores_per_node=3, tile_size=100)
        schedule = ListScheduler(machine).run(graph)
        assert schedule.core_of_task is not None
        assert all(0 <= c < machine.cores_per_node for c in schedule.core_of_task)
        # Tasks on the same core never overlap in time.
        by_core = {}
        for tid, core in enumerate(schedule.core_of_task):
            by_core.setdefault((schedule.node_of_task[tid], core), []).append(tid)
        for tasks in by_core.values():
            tasks.sort(key=lambda t: schedule.start[t])
            for a, b in zip(tasks, tasks[1:]):
                assert schedule.start[b] >= schedule.finish[a] - 1e-12
