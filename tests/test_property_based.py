"""Property-based tests (hypothesis) for the core numerical and planning invariants."""

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.algorithms.band import BandBidiagonal
from repro.algorithms.bd2val import bidiagonal_singular_values, bidiagonal_sv_bisection
from repro.algorithms.bdsqr import bdsqr
from repro.algorithms.bnd2bd import band_to_bidiagonal
from repro.kernels.householder import householder_vector, qr_factor
from repro.kernels.qr_kernels import geqrt, tsqrt, ttqrt, unmqr
from repro.lapack import gebd2
from repro.tiles.layout import TileLayout
from repro.trees import AutoTree, FibonacciTree, FlatTSTree, FlatTTTree, GreedyTree
from repro.trees.base import PanelContext, validate_plan

SETTINGS = dict(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

finite_vectors = st.lists(
    st.floats(min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False),
    min_size=1,
    max_size=12,
)


class TestHouseholderProperties:
    @given(x=finite_vectors)
    @settings(**SETTINGS)
    def test_householder_zeroes_tail(self, x):
        x = np.asarray(x)
        v, tau, beta = householder_vector(x)
        h = np.eye(x.size) - tau * np.outer(v, v)
        y = h @ x
        assert np.isclose(abs(y[0]), np.linalg.norm(x), rtol=1e-9, atol=1e-9)
        assert np.allclose(y[1:], 0.0, atol=1e-8 * max(1.0, np.linalg.norm(x)))

    @given(
        m=st.integers(min_value=1, max_value=10),
        n=st.integers(min_value=1, max_value=10),
        seed=st.integers(min_value=0, max_value=10**6),
    )
    @settings(**SETTINGS)
    def test_qr_factor_reconstructs(self, m, n, seed):
        rng = np.random.default_rng(seed)
        a = rng.standard_normal((m, n))
        v, t, r = qr_factor(a)
        q = np.eye(m) - v @ t @ v.T
        assert np.allclose(q @ r, a, atol=1e-9)
        assert np.allclose(q.T @ q, np.eye(m), atol=1e-9)
        assert np.allclose(np.tril(r[:, : min(m, n)], -1), 0.0, atol=1e-10)


class TestTileKernelProperties:
    @given(
        nb=st.integers(min_value=1, max_value=8),
        seed=st.integers(min_value=0, max_value=10**6),
    )
    @settings(**SETTINGS)
    def test_geqrt_unmqr_preserve_frobenius_norm(self, nb, seed):
        rng = np.random.default_rng(seed)
        a = rng.standard_normal((nb, nb))
        c = rng.standard_normal((nb, nb))
        r, refl = geqrt(a)
        assert np.isclose(np.linalg.norm(r), np.linalg.norm(a), rtol=1e-9)
        assert np.isclose(np.linalg.norm(unmqr(refl, c)), np.linalg.norm(c), rtol=1e-9)

    @given(
        nb=st.integers(min_value=1, max_value=8),
        seed=st.integers(min_value=0, max_value=10**6),
        use_tt=st.booleans(),
    )
    @settings(**SETTINGS)
    def test_ts_tt_elimination_preserves_stacked_norm(self, nb, seed, use_tt):
        rng = np.random.default_rng(seed)
        top = np.triu(rng.standard_normal((nb, nb)))
        bottom = np.triu(rng.standard_normal((nb, nb))) if use_tt else rng.standard_normal((nb, nb))
        kernel = ttqrt if use_tt else tsqrt
        new_top, new_bottom, _ = kernel(top, bottom)
        before = np.linalg.norm(np.vstack([top, bottom]))
        after = np.linalg.norm(np.vstack([new_top, new_bottom]))
        assert np.isclose(before, after, rtol=1e-9)
        assert np.allclose(new_bottom, 0.0, atol=1e-9 * max(1.0, before))


class TestBidiagonalSolversAgree:
    @given(
        n=st.integers(min_value=1, max_value=12),
        seed=st.integers(min_value=0, max_value=10**6),
    )
    @settings(**SETTINGS)
    def test_qr_iteration_and_bisection_agree(self, n, seed):
        rng = np.random.default_rng(seed)
        d = rng.standard_normal(n)
        e = rng.standard_normal(max(n - 1, 0))
        qr_vals = bidiagonal_singular_values(d, e)
        bis_vals = bidiagonal_sv_bisection(d, e)
        scale = max(qr_vals[0], 1e-12)
        assert np.allclose(qr_vals, bis_vals, atol=1e-6 * scale)

    @given(
        n=st.integers(min_value=1, max_value=10),
        seed=st.integers(min_value=0, max_value=10**6),
    )
    @settings(**SETTINGS)
    def test_bdsqr_matches_value_only_solver(self, n, seed):
        rng = np.random.default_rng(seed)
        d = rng.standard_normal(n)
        e = rng.standard_normal(max(n - 1, 0))
        assert np.allclose(
            bdsqr(d, e).singular_values,
            bidiagonal_singular_values(d, e),
            atol=1e-8 * max(1.0, np.abs(d).max()),
        )


class TestBandAndReductionProperties:
    @given(
        n=st.integers(min_value=2, max_value=14),
        bw=st.integers(min_value=1, max_value=5),
        seed=st.integers(min_value=0, max_value=10**6),
    )
    @settings(**SETTINGS)
    def test_bnd2bd_preserves_singular_values(self, n, bw, seed):
        bw = min(bw, n - 1)
        rng = np.random.default_rng(seed)
        dense = np.triu(rng.standard_normal((n, n)))
        dense -= np.triu(dense, bw + 1)
        band = BandBidiagonal.from_dense(dense, bandwidth=bw)
        d, e = band_to_bidiagonal(band)
        b = np.zeros((n, n))
        np.fill_diagonal(b, d)
        b[np.arange(n - 1), np.arange(1, n)] = e
        got = np.linalg.svd(b, compute_uv=False)
        want = np.linalg.svd(dense, compute_uv=False)
        assert np.allclose(got, want, atol=1e-9 * max(1.0, want[0]))

    @given(
        m=st.integers(min_value=1, max_value=14),
        n=st.integers(min_value=1, max_value=14),
        seed=st.integers(min_value=0, max_value=10**6),
    )
    @settings(**SETTINGS)
    def test_gebd2_singular_values_match_numpy(self, m, n, seed):
        if m < n:
            m, n = n, m
        rng = np.random.default_rng(seed)
        a = rng.standard_normal((m, n))
        res = gebd2(a)
        b = np.zeros((n, n))
        np.fill_diagonal(b, res.d)
        if n > 1:
            b[np.arange(n - 1), np.arange(1, n)] = res.e
        got = np.linalg.svd(b, compute_uv=False)
        want = np.linalg.svd(a, compute_uv=False)
        assert np.allclose(got, want, atol=1e-9 * max(1.0, want[0]))


class TestTreePlanProperties:
    @given(
        rows=st.integers(min_value=1, max_value=64),
        cols=st.integers(min_value=0, max_value=20),
        cores=st.integers(min_value=1, max_value=48),
    )
    @settings(**SETTINGS)
    def test_every_tree_produces_a_valid_plan(self, rows, cols, cores):
        ctx = PanelContext(rows=rows, cols_remaining=cols, n_cores=cores)
        for tree in (
            FlatTSTree(),
            FlatTTTree(),
            GreedyTree(),
            FibonacciTree(),
            AutoTree(n_cores=cores),
            AutoTree(fixed_domain_size=4),
        ):
            plan = tree.plan(ctx)
            validate_plan(plan, rows)

    @given(rows=st.integers(min_value=2, max_value=128))
    @settings(**SETTINGS)
    def test_greedy_depth_is_logarithmic(self, rows):
        plan = GreedyTree().plan(PanelContext(rows=rows))
        depth = max(e.round for e in plan.eliminations) + 1
        assert depth == int(np.ceil(np.log2(rows)))


class TestLayoutProperties:
    @given(
        m=st.integers(min_value=1, max_value=300),
        n=st.integers(min_value=1, max_value=300),
        nb=st.integers(min_value=1, max_value=64),
    )
    @settings(**SETTINGS)
    def test_tile_ranges_partition_the_matrix(self, m, n, nb):
        layout = TileLayout(m, n, nb)
        row_total = sum(layout.tile_rows(i) for i in range(layout.p))
        col_total = sum(layout.tile_cols(j) for j in range(layout.q))
        assert row_total == m
        assert col_total == n
        # Every element belongs to exactly one tile.
        r0, r1 = layout.row_range(layout.p - 1)
        assert r1 == m
        c0, c1 = layout.col_range(layout.q - 1)
        assert c1 == n
