"""Differential test suite: tiled numeric backends vs numpy / LAPACK baselines.

Satellite of the network PR's verification push: every numeric path —
GE2VAL through the plan API, the tiled GE2BND + BND2BD bidiagonalization,
and the full GESVD vector pipeline — is compared against
``numpy.linalg.svd`` and the repo's own LAPACK-style reference
(:func:`repro.lapack.gebrd.gebrd`) across a deliberately awkward shape
matrix:

* square, tall (R-BIDIAG side of the Chan crossover), and wide (via the
  transpose, as the drivers require ``m >= n``);
* a single-tile problem (every reduction tree degenerates);
* prime tile counts (no tile divides evenly into the process grid);
* near-rank-deficient spectra (clustered and tiny singular values).

Assertions are in units of the baseline's largest singular value
(``max |sigma - sigma_ref| / sigma_ref[0]``), plus explicit orthogonality
and reconstruction bounds for the vector pipeline.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.algorithms.bd2val import bidiagonal_singular_values
from repro.algorithms.bnd2bd import band_to_bidiagonal
from repro.algorithms.gesvd_pipeline import gesvd_two_stage
from repro.algorithms.svd import ge2bnd
from repro.api import SvdPlan, execute
from repro.lapack.gebrd import gebrd
from repro.tiles.matrix import TiledMatrix

#: Relative accuracy bar for singular values (units of sigma_max).
SV_TOL = 1e-12
#: Orthogonality / reconstruction bar for the vector pipeline.
UV_TOL = 1e-11

#: (label, m, n, tile_size) — the shape matrix of the differential sweep.
SHAPES = [
    ("square", 48, 48, 8),
    ("tall-rbidiag", 96, 32, 8),         # m >= 5n/3: Chan picks R-BIDIAG
    ("one-tile", 12, 10, 16),            # nb > max(m, n): 1x1 tile grid
    ("prime-tiles", 70, 50, 10),         # 7x5 tiles: prime p, no even grid
    ("ragged-edge", 53, 37, 8),          # prime dims: ragged last tile row/col
]


def _matrix(m: int, n: int, seed: int = 0) -> np.ndarray:
    return np.random.default_rng(seed).standard_normal((m, n))


def _rank_deficient(m: int, n: int, seed: int = 3) -> np.ndarray:
    """Spectrum spanning 1 .. 1e-14 with a cluster near the noise floor."""
    rng = np.random.default_rng(seed)
    u, _ = np.linalg.qr(rng.standard_normal((m, n)))
    v, _ = np.linalg.qr(rng.standard_normal((n, n)))
    s = np.logspace(0, -14, n)
    s[-3:] = 1e-14  # clustered, effectively zero singular values
    return (u * s) @ v.T


def _sv_error(values: np.ndarray, ref: np.ndarray) -> float:
    return float(np.max(np.abs(values - ref)) / ref[0])


class TestSingularValuesAgainstNumpy:
    @pytest.mark.parametrize("label,m,n,tile_size", SHAPES,
                             ids=[s[0] for s in SHAPES])
    @pytest.mark.parametrize("variant", ["bidiag", "rbidiag"])
    def test_ge2val_matches_numpy(self, label, m, n, tile_size, variant):
        a = _matrix(m, n)
        plan = SvdPlan(matrix=a, stage="ge2val", variant=variant,
                       tile_size=tile_size)
        result = execute(plan, backend="numeric")
        ref = np.linalg.svd(a, compute_uv=False)
        assert _sv_error(result.singular_values, ref) < SV_TOL
        # execute() computes the same quantity itself; the two must agree.
        assert result.max_rel_error < SV_TOL

    @pytest.mark.parametrize("tree", ["flatts", "flattt", "greedy", "auto"])
    def test_every_tree_same_values(self, tree):
        a = _matrix(64, 40, seed=7)
        plan = SvdPlan(matrix=a, stage="ge2val", tree=tree, tile_size=8,
                       n_cores=4)
        result = execute(plan, backend="numeric")
        ref = np.linalg.svd(a, compute_uv=False)
        assert _sv_error(result.singular_values, ref) < SV_TOL

    def test_wide_matrix_via_transpose(self):
        """The drivers require m >= n; a wide matrix is solved transposed
        and must produce the same spectrum."""
        a = _matrix(32, 96, seed=11)
        plan = SvdPlan(matrix=a.T.copy(), stage="ge2val", tile_size=8)
        result = execute(plan, backend="numeric")
        ref = np.linalg.svd(a, compute_uv=False)
        assert _sv_error(result.singular_values, ref) < SV_TOL

    def test_near_rank_deficient(self):
        a = _rank_deficient(60, 30)
        plan = SvdPlan(matrix=a, stage="ge2val", tile_size=10)
        result = execute(plan, backend="numeric")
        ref = np.linalg.svd(a, compute_uv=False)
        # Absolute error in units of sigma_max: the tiny cluster cannot be
        # resolved below machine precision, but must not be reported above.
        assert _sv_error(result.singular_values, ref) < SV_TOL
        assert np.all(result.singular_values >= 0.0)
        assert np.all(np.diff(result.singular_values) <= 1e-15)


class TestBidiagonalizationAgainstLapackBaseline:
    """Tiled GE2BND + BND2BD vs the repo's blocked GEBRD reference.

    The two bidiagonal factors differ (different reduction orders), but
    both must preserve the spectrum — a three-way differential against
    ``numpy.linalg.svd``.
    """

    @pytest.mark.parametrize("label,m,n,tile_size", SHAPES,
                             ids=[s[0] for s in SHAPES])
    def test_band_spectrum_matches(self, label, m, n, tile_size):
        a = _matrix(m, n, seed=5)
        ref = np.linalg.svd(a, compute_uv=False)

        tiled = TiledMatrix.from_dense(a, tile_size)
        band, _, _ = ge2bnd(tiled)
        d, e = band_to_bidiagonal(band)
        tiled_values = bidiagonal_singular_values(d, e)
        assert _sv_error(tiled_values, ref) < SV_TOL

        lap = gebrd(a, block_size=min(8, n))
        lapack_values = bidiagonal_singular_values(lap.d, lap.e)
        assert _sv_error(lapack_values, ref) < SV_TOL

        # The tiled and LAPACK-style paths agree with each other too.
        assert _sv_error(tiled_values, lapack_values) < 2 * SV_TOL


class TestVectorPipelineOrthogonality:
    @pytest.mark.parametrize("label,m,n,tile_size", SHAPES,
                             ids=[s[0] for s in SHAPES])
    def test_gesvd_orthogonality_and_reconstruction(self, label, m, n, tile_size):
        a = _matrix(m, n, seed=9)
        res = gesvd_two_stage(a, tile_size=tile_size)
        ref = np.linalg.svd(a, compute_uv=False)
        assert _sv_error(res.singular_values, ref) < SV_TOL
        eye_u = res.u.T @ res.u
        eye_v = res.vt @ res.vt.T
        assert np.linalg.norm(eye_u - np.eye(n)) < UV_TOL
        assert np.linalg.norm(eye_v - np.eye(n)) < UV_TOL
        scale = np.linalg.norm(a)
        assert np.linalg.norm(res.reconstruct() - a) / scale < UV_TOL

    def test_gesvd_through_plan_api(self):
        a = _matrix(40, 24, seed=13)
        plan = SvdPlan(matrix=a, stage="gesvd", tile_size=8)
        result = execute(plan, backend="numeric")
        assert result.u is not None and result.vt is not None
        recon = result.u @ np.diag(result.singular_values) @ result.vt
        assert np.linalg.norm(recon - a) / np.linalg.norm(a) < UV_TOL
