"""Hypothesis property tests for :mod:`repro.tiles.distribution`.

Satellite of the network PR: the message-level network model stands on the
block-cyclic distribution's correctness, so its invariants get adversarial
coverage —

* **ownership is a partition**: every tile of a ``p x q`` tile matrix is
  owned by exactly one rank, and the per-rank ``local_tiles`` sets tile
  the matrix without overlap;
* **ranks round-trip**: ``rank_of`` and ``position_of`` are inverse
  bijections over the grid;
* **balance**: block-cyclic imbalance is at most one tile row and one tile
  column — every rank holds between ``floor(p/R) * floor(q/C)`` and
  ``ceil(p/R) * ceil(q/C)`` tiles.
"""

from __future__ import annotations

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.tiles.distribution import BlockCyclicDistribution, ProcessGrid

#: Grid shapes up to 8x8, tile matrices up to 40x40 — small enough to
#: enumerate exhaustively inside each example, big enough to cover every
#: ragged p % R / q % C combination.
grids = st.builds(
    ProcessGrid,
    rows=st.integers(min_value=1, max_value=8),
    cols=st.integers(min_value=1, max_value=8),
)
tile_shapes = st.tuples(
    st.integers(min_value=1, max_value=40), st.integers(min_value=1, max_value=40)
)


@settings(max_examples=80, deadline=None)
@given(grid=grids)
def test_ranks_round_trip(grid):
    seen = set()
    for r in range(grid.rows):
        for c in range(grid.cols):
            rank = grid.rank_of(r, c)
            assert 0 <= rank < grid.size
            assert grid.position_of(rank) == (r, c)
            seen.add(rank)
    assert seen == set(grid.ranks())
    assert len(seen) == grid.size == grid.rows * grid.cols


@settings(max_examples=80, deadline=None)
@given(grid=grids, shape=tile_shapes)
def test_ownership_is_a_partition(grid, shape):
    p, q = shape
    dist = BlockCyclicDistribution(grid)
    all_tiles = {(i, j) for i in range(p) for j in range(q)}

    covered = set()
    for rank in grid.ranks():
        local = dist.local_tiles(rank, p, q)
        local_set = set(local)
        assert len(local) == len(local_set)  # no duplicates within a rank
        assert not (covered & local_set)  # no overlap across ranks
        assert len(local) == dist.local_tile_count(rank, p, q)
        # local_tiles and owner() agree on every tile.
        for tile in local:
            assert dist.owner(*tile) == rank
        covered |= local_set
    assert covered == all_tiles  # nothing unowned


@settings(max_examples=80, deadline=None)
@given(grid=grids, shape=tile_shapes)
def test_imbalance_at_most_one_tile_row_and_column(grid, shape):
    p, q = shape
    dist = BlockCyclicDistribution(grid)
    lo = (p // grid.rows) * (q // grid.cols)
    hi = math.ceil(p / grid.rows) * math.ceil(q / grid.cols)
    counts = [dist.local_tile_count(rank, p, q) for rank in grid.ranks()]
    assert sum(counts) == p * q
    assert all(lo <= c <= hi for c in counts)
    # Per-dimension statement: every rank's tile rows and columns each
    # differ by at most one from any other rank's.
    row_counts = {
        len(range(gr, p, grid.rows)) for gr in range(grid.rows)
    }
    col_counts = {
        len(range(gc, q, grid.cols)) for gc in range(grid.cols)
    }
    assert max(row_counts) - min(row_counts) <= 1
    assert max(col_counts) - min(col_counts) <= 1


@settings(max_examples=50, deadline=None)
@given(n_nodes=st.integers(min_value=1, max_value=64))
def test_paper_grids_cover_all_nodes(n_nodes):
    square = ProcessGrid.for_square_matrix(n_nodes)
    tall = ProcessGrid.for_tall_skinny_matrix(n_nodes)
    assert square.size == n_nodes
    assert tall.size == n_nodes and tall.cols == 1
    # The square grid is as square as divisibility allows.
    assert square.rows <= square.cols
    assert square.rows * square.cols == n_nodes
