"""Cross-backend scheduling invariants.

Satellite of the network PR: for every scheduling policy, process-grid
shape and network model, one compiled :class:`~repro.ir.program.Program`
must satisfy the fundamental sandwich

    DAG critical path  <=  simulated makespan  <=  serial flop time

where the critical path is the unbounded-resource lower bound (free
communication) and the serial time is the one-core replay.  The upper
bound is a real statement about the engine: it is work-conserving and the
communication charged on these shapes stays subdominant to compute, so no
policy/network combination may push the makespan past a single core.

The same sweep cross-checks the three lenses of the paper: the DAG
backend's critical path (Table-I weights), the engine's makespan and the
analytic serial time all come from the *same* cached program.
"""

from __future__ import annotations

import pytest

from repro.api.resolver import resolve_distributed_tree
from repro.ir import clear_program_cache, get_program
from repro.runtime.engine import (
    SimulationEngine,
    critical_path_seconds,
    serial_seconds,
)
from repro.runtime.machine import Machine
from repro.runtime.network import NETWORK_MODELS
from repro.runtime.policies import POLICIES
from repro.tiles.distribution import BlockCyclicDistribution, ProcessGrid

GRID_SHAPES = [(1, 1), (2, 2), (4, 1), (1, 4)]
ALGORITHMS = [("bidiag", 8, 6), ("rbidiag", 12, 4)]


@pytest.fixture(autouse=True, scope="module")
def _fresh_program_cache():
    clear_program_cache()
    yield
    clear_program_cache()


def _program_and_machine(algorithm, p, q, rows, cols):
    nodes = rows * cols
    grid = ProcessGrid(rows, cols)
    machine = Machine(n_nodes=nodes, cores_per_node=4, tile_size=100)
    tree = resolve_distributed_tree(
        "greedy", n_nodes=nodes, n_cores=4, p=p, q=q, grid=grid
    )
    program = get_program(algorithm, p, q, tree, n_cores=4, grid_rows=rows)
    return program, machine, BlockCyclicDistribution(grid)


@pytest.mark.parametrize("network", sorted(NETWORK_MODELS))
@pytest.mark.parametrize("policy", sorted(POLICIES))
@pytest.mark.parametrize("rows,cols", GRID_SHAPES)
@pytest.mark.parametrize("algorithm,p,q", ALGORITHMS)
def test_critical_path_le_makespan_le_serial(
    algorithm, p, q, rows, cols, policy, network
):
    program, machine, distribution = _program_and_machine(
        algorithm, p, q, rows, cols
    )
    schedule = SimulationEngine(
        machine, distribution, policy=policy, network=network
    ).run(program)
    lower = critical_path_seconds(program, machine)
    upper = serial_seconds(program, machine)
    assert lower <= schedule.makespan + 1e-12
    assert schedule.makespan <= upper + 1e-12
    # Dependencies are never violated, whatever the policy or network.
    for dst in range(len(program)):
        for src in program.predecessors(dst):
            assert schedule.start[dst] >= schedule.finish[src] - 1e-12


@pytest.mark.parametrize("rows,cols", GRID_SHAPES)
def test_dag_backend_critical_path_matches_engine_bound(rows, cols):
    """The DAG backend's Table-I critical path and the engine's
    duration-weighted one come from the same program and must order the
    same way the simulate backend's makespan does."""
    program, machine, distribution = _program_and_machine("bidiag", 8, 6, rows, cols)
    weight_cp = program.critical_path()
    assert weight_cp > 0
    for network in sorted(NETWORK_MODELS):
        schedule = SimulationEngine(
            machine, distribution, network=network
        ).run(program)
        assert critical_path_seconds(program, machine) <= schedule.makespan + 1e-12


def test_single_node_collapses_network_axis():
    """On one node the sandwich is network-independent: both models must
    produce the exact same makespan for every policy."""
    program, machine, distribution = _program_and_machine("bidiag", 8, 6, 1, 1)
    for policy in sorted(POLICIES):
        makespans = {
            SimulationEngine(
                machine, distribution, policy=policy, network=network
            ).run(program).makespan
            for network in sorted(NETWORK_MODELS)
        }
        assert len(makespans) == 1, policy
