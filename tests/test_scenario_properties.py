"""Property-based tests (hypothesis) for the scenario subsystem invariants.

Three laws the Monte-Carlo machinery rests on:

* zero-probability perturbations are the identity: a replay under all-ones
  fault/noise factor rows is bit-identical to the engine's own schedule,
  for every scheduling policy and network model (multiplying a finite
  positive float by 1.0 is exact);
* a uniform slowdown factor ``s >= 1`` applied to every node never
  decreases the makespan (uniform scaling preserves the pop order, so
  Graham's list-scheduling anomalies — which need *relative* duration
  changes — cannot kick in);
* on a single core the makespan is monotone in the per-op fail-stop fault
  counts (the schedule is a work-conserving serial chain, so the makespan
  is a sum of realized durations).
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.ir.compiler import get_program
from repro.runtime.engine import SimulationEngine
from repro.runtime.faults import fail_stop_factors
from repro.runtime.machine import Machine
from repro.runtime.policies import POLICIES
from repro.runtime.scenario import Scenario, ScenarioReplayer, run_scenario
from repro.trees import GreedyTree

SETTINGS = dict(
    max_examples=10,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

ALL_POLICIES = sorted(POLICIES)
ALL_NETWORKS = ["uniform", "alpha-beta"]


class TestZeroPerturbationIdentity:
    @given(q=st.integers(min_value=1, max_value=3),
           extra=st.integers(min_value=0, max_value=2))
    @settings(max_examples=6, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_all_ones_rows_are_bit_identical(self, q, extra):
        p = q + extra  # BIDIAG needs p >= q tiles
        program = get_program("bidiag", p, q, GreedyTree(), n_cores=2)
        machine = Machine(n_nodes=2, cores_per_node=2, tile_size=100)
        ones = np.ones(len(program), dtype=np.float64)
        for policy in ALL_POLICIES:
            for network in ALL_NETWORKS:
                engine = SimulationEngine(machine, policy=policy,
                                          network=network)
                baseline = engine.run(program)
                replayed = ScenarioReplayer(engine, program).replay(
                    fault_row=ones, noise_row=ones
                )
                assert replayed.start == baseline.start, (policy, network)
                assert replayed.finish == baseline.finish, (policy, network)
                assert replayed.node_of_task == baseline.node_of_task
                assert replayed.makespan.hex() == baseline.makespan.hex()

    def test_zero_probability_scenario_routes_to_nominal(self):
        # A scenario whose models all have prob 0 is trivial: run_scenario
        # returns the nominal schedule and no distribution.
        program = get_program("bidiag", 3, 2, GreedyTree(), n_cores=2)
        machine = Machine(n_nodes=1, cores_per_node=2, tile_size=100)
        from repro.runtime.faults import FailStopFaults

        zero = Scenario(name="zero", faults=FailStopFaults(prob=0.0))
        assert zero.is_trivial
        run = run_scenario(program, machine, zero, draws=4)
        assert run.distribution is None
        baseline = SimulationEngine(machine).run(program)
        assert run.schedule.makespan.hex() == baseline.makespan.hex()


class TestSlowdownMonotonicity:
    @given(s=st.floats(min_value=1.0, max_value=3.0,
                       allow_nan=False, allow_infinity=False))
    @settings(**SETTINGS)
    def test_uniform_slowdown_never_decreases_makespan(self, s):
        # One node: no communication, so a uniform factor s on every
        # duration scales each event time monotonically.
        program = get_program("bidiag", 3, 3, GreedyTree(), n_cores=4)
        machine = Machine(n_nodes=1, cores_per_node=4, tile_size=100)
        nominal = SimulationEngine(machine).run(program).makespan
        slowed = run_scenario(
            program, machine, Scenario(name="u", node_slowdowns=(s,))
        ).schedule.makespan
        assert slowed >= nominal
        # Stronger: with the pop order preserved, the slowed makespan is
        # the nominal one scaled by s (up to float round-off).
        assert slowed == pytest.approx(s * nominal, rel=1e-9)

    @given(s=st.floats(min_value=1.0, max_value=2.5,
                       allow_nan=False, allow_infinity=False),
           t=st.floats(min_value=0.0, max_value=1.5,
                       allow_nan=False, allow_infinity=False))
    @settings(**SETTINGS)
    def test_uniform_slowdown_is_monotone_in_s(self, s, t):
        program = get_program("bidiag", 2, 2, GreedyTree(), n_cores=2)
        machine = Machine(n_nodes=1, cores_per_node=2, tile_size=100)

        def makespan(factor):
            return run_scenario(
                program, machine, Scenario(name="u", node_slowdowns=(factor,))
            ).schedule.makespan

        assert makespan(s + t) >= makespan(s) * (1.0 - 1e-12)


class TestFaultCountMonotonicity:
    @given(seed=st.integers(min_value=0, max_value=10**6),
           rework=st.floats(min_value=0.1, max_value=2.0,
                            allow_nan=False, allow_infinity=False))
    @settings(**SETTINGS)
    def test_single_core_makespan_monotone_in_fault_counts(self, seed, rework):
        # Single core, single node: the schedule is serial, so the makespan
        # is a sum of realized durations — adding failures to any op can
        # only push it out (1e-12 relative slack absorbs re-ordered float
        # summation when the pop order shifts).
        program = get_program("bidiag", 2, 2, GreedyTree(), n_cores=1)
        machine = Machine(n_nodes=1, cores_per_node=1, tile_size=100)
        engine = SimulationEngine(machine)
        replayer = ScenarioReplayer(engine, program)
        rng = np.random.default_rng(seed)
        n = len(program)
        base_counts = rng.integers(0, 3, size=n)
        extra = rng.integers(0, 3, size=n)
        low = replayer.replay(fault_row=fail_stop_factors(base_counts, rework))
        high = replayer.replay(
            fault_row=fail_stop_factors(base_counts + extra, rework)
        )
        assert high.makespan >= low.makespan * (1.0 - 1e-12)
        assert low.makespan >= engine.run(program).makespan * (1.0 - 1e-12)
