#!/usr/bin/env python3
"""Distributed-memory study: communication volume, Gantt chart and scaling bounds.

Section VI-D of the paper attributes the distributed behaviour of the trees
to two effects: the amount of parallelism they expose and the number of
inter-node messages they trigger (the greedy top tree roughly doubles the
volume of the flat one on square matrices).  This example makes both
effects visible with the simulation tooling:

* communication volume and per-node traffic of flat vs greedy top trees;
* the runtime simulator's schedule, utilization and an ASCII Gantt chart;
* work/span/Brent bounds versus the simulated makespan;
* the Amdahl-style GE2VAL bound imposed by the single-node BND2BD stage.

Run:  python examples/communication_study.py
      (REPRO_EXAMPLE_FAST=1 shrinks the problem sizes for smoke tests)
"""

import os

from repro.analysis.communication import communication_volume, panel_messages_estimate
from repro.analysis.speedup import amdahl_ge2val_bound, speedup_bounds, strong_scaling_efficiency
from repro.dag.tracer import trace_bidiag
from repro.runtime.machine import Machine
from repro.runtime.scheduler import ListScheduler
from repro.runtime.simulator import post_processing_seconds, simulate_ge2bnd, simulate_ge2val
from repro.runtime.trace import gantt_chart, utilization_report
from repro.tiles.distribution import BlockCyclicDistribution, ProcessGrid
from repro.trees import GreedyTree, HierarchicalTree


FAST = os.environ.get("REPRO_EXAMPLE_FAST", "0") not in ("", "0")


def main() -> None:
    nodes, grid_rows = 4, 4
    p, q = 20, 6  # tall-and-skinny tile shape, nodes x 1 grid
    dist = BlockCyclicDistribution(ProcessGrid(grid_rows, 1))

    print(f"== communication volume, {p}x{q} tiles on a {grid_rows}x1 grid ==")
    for top in ("flat", "greedy"):
        tree = HierarchicalTree(local_tree=GreedyTree(), top=top, grid_rows=grid_rows)
        graph = trace_bidiag(p, q, tree, grid_rows=grid_rows)
        stats = communication_volume(graph, dist)
        estimate = panel_messages_estimate(grid_rows, top)
        print(f"  top tree {top:7s}: {stats.messages:5d} messages "
              f"({stats.bytes_moved / 1e6:6.1f} MB at nb=160), "
              f"~{estimate} inter-node eliminations per panel, "
              f"sent per node {stats.per_node_sent}")

    print("\n== simulated schedule on 4 nodes x 4 cores (small instance) ==")
    machine = Machine(n_nodes=nodes, cores_per_node=4, tile_size=160)
    tree = HierarchicalTree(local_tree=GreedyTree(), top="flat", grid_rows=grid_rows)
    graph = trace_bidiag(p, q, tree, grid_rows=grid_rows)
    schedule = ListScheduler(machine, dist).run(graph)
    report = utilization_report(schedule, graph, machine)
    print(f"  makespan           : {schedule.makespan * 1e3:.2f} ms")
    print(f"  overall utilization: {report.overall_busy_fraction:.2%}")
    print(f"  dominant kernel    : {report.critical_kernel}")
    bounds = speedup_bounds(graph, machine, schedule)
    print(f"  T1 = {bounds.t1_seconds*1e3:.2f} ms, Tinf = {bounds.tinf_seconds*1e3:.2f} ms, "
          f"Brent bound = {bounds.brent_bound_seconds*1e3:.2f} ms, "
          f"measured/Brent = {bounds.brent_gap:.2f}")
    print("\n" + gantt_chart(schedule, graph, machine, width=88, max_lanes=8))

    sm, sn = (4800, 1200) if FAST else (24000, 6000)
    node_counts = (1, 4) if FAST else (1, 4, 9)
    print(f"\n== strong scaling of GE2BND vs the GE2VAL Amdahl bound (m={sm}, n={sn}) ==")
    times = {}
    for n_nodes in node_counts:
        mach = Machine(n_nodes=n_nodes, cores_per_node=24, tile_size=160)
        sim = simulate_ge2bnd(sm, sn, mach, tree="auto", algorithm="rbidiag")
        ge2val = simulate_ge2val(sm, sn, mach, tree="auto")
        bound = amdahl_ge2val_bound(
            simulate_ge2bnd(sm, sn, Machine(n_nodes=1, cores_per_node=24, tile_size=160),
                            tree="auto", algorithm="rbidiag").time_seconds,
            post_processing_seconds(sn, mach),
            n_nodes,
        )
        times[n_nodes] = sim.time_seconds
        print(f"  {n_nodes:2d} nodes: GE2BND {sim.gflops:7.1f} GFlop/s, "
              f"GE2VAL {ge2val.gflops:7.1f} GFlop/s, "
              f"GE2VAL lower bound on time {bound:6.2f}s (single-node BND2BD stage)")
    eff = strong_scaling_efficiency(times)
    print("  GE2BND strong-scaling efficiency: "
          + ", ".join(f"{n} nodes {e:.0%}" for n, e in sorted(eff.items())))


if __name__ == "__main__":
    main()
