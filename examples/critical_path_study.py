#!/usr/bin/env python3
"""Critical-path study: reproduce the Section IV analysis interactively.

For a sweep of tile shapes this example

* traces the BIDIAG and R-BIDIAG task graphs with the FLATTS, FLATTT and
  GREEDY trees,
* measures their critical paths on the DAG and compares them with the
  paper's closed-form expressions,
* verifies the asymptotic results of Theorem 1 (the ``(12+6a) q log2 q``
  growth and the ``1 + a/2`` BIDIAG / R-BIDIAG ratio), and
* locates the crossover ratio ``delta_s = p/q`` at which R-BIDIAG starts to
  win (the paper finds it oscillates between 5 and 8).

Run:  python examples/critical_path_study.py
      (REPRO_EXAMPLE_FAST=1 shrinks the problem sizes for smoke tests)
"""

import os

from repro.analysis.asymptotics import asymptotic_sweep, theorem1_limit_ratio
from repro.analysis.crossover import crossover_table
from repro.analysis.formulas import bidiag_cp, rbidiag_cp
from repro.dag.analysis import graph_stats
from repro.dag.critical_path import critical_path_length
from repro.dag.tracer import trace_bidiag, trace_rbidiag
from repro.trees import FlatTSTree, FlatTTTree, GreedyTree


FAST = os.environ.get("REPRO_EXAMPLE_FAST", "0") not in ("", "0")


def main() -> None:
    trees = {"flatts": FlatTSTree(), "flattt": FlatTTTree(), "greedy": GreedyTree()}

    shapes = ((8, 8), (16, 8)) if FAST else ((8, 8), (16, 8), (32, 8), (16, 16), (48, 8))
    print("== measured vs closed-form critical paths (units of nb^3/3 flops) ==")
    print(f"{'tiles':>10s} {'tree':>8s} {'BIDIAG meas':>12s} {'formula':>9s} "
          f"{'R-BIDIAG meas':>14s} {'formula':>9s}")
    for p, q in shapes:
        for name, tree in trees.items():
            b_meas = critical_path_length(trace_bidiag(p, q, tree))
            r_meas = critical_path_length(trace_rbidiag(p, q, tree))
            print(f"{p:5d}x{q:<4d} {name:>8s} {b_meas:12.0f} {bidiag_cp(p, q, name):9d} "
                  f"{r_meas:14.0f} {rbidiag_cp(p, q, name):9d}")

    print("\n== parallelism of the three trees (16x16 tiles, BIDIAG) ==")
    for name, tree in trees.items():
        stats = graph_stats(trace_bidiag(16, 16, tree))
        print(f"  {name:8s}: work={stats.work:8.0f}  span={stats.span:6.0f}  "
              f"average parallelism={stats.average_parallelism:6.1f}")

    q_values = [64, 256] if FAST else [64, 256, 1024, 4096]
    print("\n== Theorem 1: normalized critical path and BIDIAG/R-BIDIAG ratio ==")
    for alpha in (0.0, 0.25, 0.5):
        points = asymptotic_sweep(q_values, alpha=alpha)
        last = points[-1]
        print(f"  alpha={alpha:4.2f}: CP / ((12+6a) q log2 q) = {last.normalized_bidiag:5.3f}  "
              f"ratio = {last.ratio:5.3f}  (limit {theorem1_limit_ratio(alpha):4.2f})")

    print("\n== crossover ratio delta_s(q) (paper: oscillates between 5 and 8) ==")
    for point in crossover_table([4, 6] if FAST else [4, 6, 8, 10, 12, 16]):
        print(f"  q={point.q:3d}: delta_s = {point.delta_s:5.2f}  (p at crossover = {point.p_at_crossover})")


if __name__ == "__main__":
    main()
