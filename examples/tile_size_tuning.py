#!/usr/bin/env python3
"""Tile-size tuning: the GE2BND / BND2BD trade-off of Section VI-B.

The paper tunes ``nb = 160`` (and ``ib = 32``) on the square 20000/30000
cases: a larger tile raises the efficiency of the GE2BND kernels but
increases the flops of the memory-bound BND2BD stage, a smaller tile does
the opposite.  This example shows both sides of the trade-off, then hands
the actual decision to the autotuner (:mod:`repro.tuning`): a declarative
search space, simulator-scored candidates, analytic-model pruning and the
persistent plan cache.

Run:  python examples/tile_size_tuning.py
      (REPRO_EXAMPLE_FAST=1 shrinks the problem sizes for smoke tests)
"""

import os

from repro.api import SvdPlan
from repro.kernels.costs import kernel_efficiency, tile_efficiency_factor
from repro.models.roofline import roofline_summary, tile_kernel_intensity
from repro.tuning import GridSearch, SearchSpace, tune

FAST = os.environ.get("REPRO_EXAMPLE_FAST", "0") not in ("", "0")


def main() -> None:
    tile_sizes = (40, 80, 120) if FAST else (80, 120, 160, 240, 320)

    print("== kernel efficiency and arithmetic intensity vs tile size ==")
    print(f"{'nb':>5s} {'eff factor':>11s} {'TSMQR eff':>10s} {'intensity (flops/B)':>20s}")
    for nb in tile_sizes:
        print(f"{nb:5d} {tile_efficiency_factor(nb):11.2f} "
              f"{kernel_efficiency('TSMQR', nb):10.2f} {tile_kernel_intensity(nb):20.1f}")

    print("\n== roofline placement at nb = 160 ==")
    for name, point in roofline_summary(nb=160).items():
        bound = "memory bound" if point.memory_bound else "compute bound"
        print(f"  {name:22s}: {point.arithmetic_intensity:6.2f} flops/B -> "
              f"{point.attainable_gflops:6.1f} GFlop/s ({bound})")

    print("\n== autotuned GE2VAL time vs tile size (24-core node) ==")
    shapes = [(800, 800), (1600, 800)] if FAST else [(6000, 6000), (12000, 6000), (24000, 2000)]
    space = SearchSpace(tile_sizes=tile_sizes, trees=("auto",), variants=("auto",))
    header = "shape".ljust(16) + "".join(f"nb={nb:<10d}" for nb in tile_sizes) + "best"
    print(header)
    for m, n in shapes:
        plan = SvdPlan(m=m, n=n, stage="ge2val", n_cores=24)
        # Exhaustive (cache off, pruning off): every column of the printed
        # trade-off table needs a real score, not a pruned blank.
        result = tune(plan, space=space, strategy=GridSearch(prune=False), cache=False)
        by_nb = {ev.plan.tile_size: ev.score for ev in result.evaluations}
        cells = "".join(f"{by_nb[nb] * 1e3:<13.2f}" for nb in tile_sizes)
        print(f"{m}x{n}".ljust(16) + cells + f"nb={result.best_plan.tile_size}  (ms)")

    print("\n== the same question, asked the lazy way ==")
    from repro.api import resolve

    m, n = shapes[0]
    auto = SvdPlan(m=m, n=n, stage="ge2val", n_cores=24, tile_size="auto")
    resolved = resolve(auto)
    print(f"  SvdPlan(m={m}, n={n}, tile_size='auto') resolved to nb={resolved.tile_size} "
          "(served from the persistent plan cache on the next call)")

    print("\nSmall problems favour small tiles (the memory-bound BND2BD stage dominates); "
          "as the matrix grows the optimum moves toward the paper's nb=160 region, "
          "where the higher GE2BND kernel efficiency pays for the extra BND2BD flops.")


if __name__ == "__main__":
    main()
