#!/usr/bin/env python3
"""Tile-size tuning: the GE2BND / BND2BD trade-off of Section VI-B.

The paper tunes ``nb = 160`` (and ``ib = 32``) on the square 20000/30000
cases: a larger tile raises the efficiency of the GE2BND kernels but
increases the flops of the memory-bound BND2BD stage, a smaller tile does
the opposite.  This example sweeps ``nb`` with the performance simulator
and the roofline model to show both sides of the trade-off, then picks the
best tile size for a few matrix shapes.

Run:  python examples/tile_size_tuning.py
"""

from repro.kernels.costs import kernel_efficiency, tile_efficiency_factor
from repro.models.roofline import roofline_summary, tile_kernel_intensity
from repro.runtime.machine import Machine
from repro.runtime.simulator import simulate_ge2val


def main() -> None:
    tile_sizes = (80, 120, 160, 240, 320)

    print("== kernel efficiency and arithmetic intensity vs tile size ==")
    print(f"{'nb':>5s} {'eff factor':>11s} {'TSMQR eff':>10s} {'intensity (flops/B)':>20s}")
    for nb in tile_sizes:
        print(f"{nb:5d} {tile_efficiency_factor(nb):11.2f} "
              f"{kernel_efficiency('TSMQR', nb):10.2f} {tile_kernel_intensity(nb):20.1f}")

    print("\n== roofline placement at nb = 160 ==")
    for name, point in roofline_summary(nb=160).items():
        bound = "memory bound" if point.memory_bound else "compute bound"
        print(f"  {name:22s}: {point.arithmetic_intensity:6.2f} flops/B -> "
              f"{point.attainable_gflops:6.1f} GFlop/s ({bound})")

    print("\n== simulated GE2VAL rate vs tile size (24-core node) ==")
    shapes = [(6000, 6000), (12000, 6000), (24000, 2000)]
    header = "shape".ljust(16) + "".join(f"nb={nb:<8d}" for nb in tile_sizes) + "best"
    print(header)
    for m, n in shapes:
        rates = []
        for nb in tile_sizes:
            machine = Machine(n_nodes=1, cores_per_node=24, tile_size=nb)
            sim = simulate_ge2val(m, n, machine, tree="auto")
            rates.append(sim.gflops)
        best = tile_sizes[max(range(len(rates)), key=lambda i: rates[i])]
        cells = "".join(f"{r:<11.1f}" for r in rates)
        print(f"{m}x{n}".ljust(16) + cells + f"nb={best}")

    print("\nSmall problems favour small tiles (the memory-bound BND2BD stage dominates); "
          "as the matrix grows the optimum moves toward the paper's nb=160 region, "
          "where the higher GE2BND kernel efficiency pays for the extra BND2BD flops.")


if __name__ == "__main__":
    main()
