#!/usr/bin/env python3
"""Quickstart: compute singular values with the tiled bidiagonalization pipeline.

This walks through the full GE2VAL pipeline of the paper on a small matrix:

1. tile the matrix (nb x nb tiles);
2. GE2BND — tiled bidiagonalization (BIDIAG) with the GREEDY reduction tree;
3. BND2BD — bulge-chase the band down to a true bidiagonal matrix;
4. BD2VAL — bidiagonal QR iteration for the singular values;

and checks the result against NumPy and against the prescribed singular
values of an LATMS-style test matrix.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import ge2val, gesvd
from repro.algorithms.bd2val import bidiagonal_singular_values
from repro.algorithms.bnd2bd import band_to_bidiagonal
from repro.algorithms.svd import ge2bnd
from repro.utils.generators import latms
from repro.utils.validation import max_relative_error, reconstruction_error


def main() -> None:
    rng = np.random.default_rng(7)

    # ----------------------------------------------------------------- #
    # 1. One-call interface
    # ----------------------------------------------------------------- #
    a = rng.standard_normal((120, 60))
    sv = ge2val(a, tile_size=12, tree="greedy")
    ref = np.linalg.svd(a, compute_uv=False)
    print("one-call ge2val:")
    print(f"  max relative error vs numpy.linalg.svd : {max_relative_error(sv, ref):.2e}")

    # ----------------------------------------------------------------- #
    # 2. Stage by stage (what the one-call interface does internally)
    # ----------------------------------------------------------------- #
    band, matrix, _ = ge2bnd(a, tile_size=12, tree="auto", n_cores=8)
    print("\nstage by stage:")
    print(f"  band bidiagonal form : n={band.n}, bandwidth={band.bandwidth}")
    d, e = band_to_bidiagonal(band)
    print(f"  bidiagonal factor    : {d.size} diagonal / {e.size} superdiagonal entries")
    sv_staged = bidiagonal_singular_values(d, e)
    print(f"  stage-by-stage error : {max_relative_error(sv_staged, ref):.2e}")

    # ----------------------------------------------------------------- #
    # 3. Prescribed singular values (the paper's LATMS validation)
    # ----------------------------------------------------------------- #
    sigma = np.linspace(10.0, 0.1, 40)
    a_latms = latms(100, 40, sigma, rng=rng)
    sv_latms = ge2val(a_latms, tile_size=10, variant="rbidiag")
    print("\nLATMS matrix with prescribed singular values (R-BIDIAG path):")
    print(f"  max relative error vs prescription : {max_relative_error(sv_latms, sigma):.2e}")

    # ----------------------------------------------------------------- #
    # 4. Full SVD with singular vectors
    # ----------------------------------------------------------------- #
    u, s, vt = gesvd(a, tile_size=12)
    print("\nfull SVD (gesvd):")
    print(f"  reconstruction error ||A - U S V^T|| / ||A|| : {reconstruction_error(a, u, s, vt):.2e}")


if __name__ == "__main__":
    main()
