#!/usr/bin/env python3
"""Singular vectors with the two-stage tiled pipeline (GESVD).

The paper focuses on singular *values* (GE2VAL) and lists the computation
of singular vectors — applying every reduction stage in reverse on the
vectors — as the costly extension (Section II, Section VII).  This example
runs that full pipeline on a low-rank-plus-noise matrix, the typical PCA /
compression scenario that motivates large SVDs:

1. GE2BND (tiled BIDIAG or R-BIDIAG) with transformation logging;
2. BND2BD with accumulation of the Givens rotations;
3. BD2VAL QR iteration with vector accumulation;
4. composition of the three orthogonal factors.

It then uses the vectors to build the best rank-k approximation
(Eckart–Young) and reports the per-stage timings, showing where the
vector-accumulation overhead lives.

Run:  python examples/singular_vectors.py
"""

import numpy as np

from repro.algorithms.gesvd_pipeline import gesvd_two_stage
from repro.utils.validation import orthogonality_error, reconstruction_error


def make_low_rank_plus_noise(m: int, n: int, rank: int, noise: float, seed: int = 0):
    """A rank-``rank`` signal matrix plus dense Gaussian noise."""
    rng = np.random.default_rng(seed)
    left = rng.standard_normal((m, rank))
    right = rng.standard_normal((rank, n))
    signal = left @ right / np.sqrt(rank)
    return signal + noise * rng.standard_normal((m, n)), signal


def main() -> None:
    m, n, rank = 180, 90, 8
    a, signal = make_low_rank_plus_noise(m, n, rank, noise=0.05, seed=3)

    print(f"matrix: {m} x {n}, true signal rank {rank}, tile size 18")
    result = gesvd_two_stage(a, tile_size=18, tree="auto", n_cores=8)

    print("\nstage timings (seconds):")
    for stage, seconds in result.stage_seconds.items():
        print(f"  {stage:16s} {seconds:8.4f}")

    # Accuracy of the factorization itself.
    print("\naccuracy:")
    print(f"  reconstruction error ||A - U S V^T|| / ||A|| : "
          f"{reconstruction_error(a, result.u, result.singular_values, result.vt):.2e}")
    print(f"  left orthogonality  ||U^T U - I||            : {orthogonality_error(result.u):.2e}")
    print(f"  right orthogonality ||V V^T - I||            : {orthogonality_error(result.vt.T):.2e}")
    ref = np.linalg.svd(a, compute_uv=False)
    print(f"  max singular-value error vs numpy            : "
          f"{np.max(np.abs(result.singular_values - ref)) / ref[0]:.2e}")

    # Eckart-Young: the leading singular vectors capture the signal.
    print("\nlow-rank approximation (Eckart-Young):")
    for k in (2, rank, 2 * rank):
        approx = (result.u[:, :k] * result.singular_values[:k]) @ result.vt[:k, :]
        err = np.linalg.norm(a - approx) / np.linalg.norm(a)
        sig = np.linalg.norm(signal - approx) / np.linalg.norm(signal)
        print(f"  rank {k:3d}: relative error vs A = {err:.3f}, vs noiseless signal = {sig:.3f}")

    # The spectrum itself shows the rank-8 signal followed by the noise floor.
    print("\nleading singular values:")
    print("  " + "  ".join(f"{s:.2f}" for s in result.singular_values[: rank + 4]))


if __name__ == "__main__":
    main()
