#!/usr/bin/env python3
"""Tall-and-skinny SVD for principal component analysis.

The paper's motivating use case: PCA needs the singular values (and a few
singular vectors) of a very tall data matrix — many samples, few features.
This is exactly the regime where R-BIDIAG (QR first, then bidiagonalize the
small R factor) pays off: Chan's crossover puts the switch at m >= 5n/3.

The example

* builds a synthetic data set with a known low-dimensional structure,
* runs both BIDIAG and R-BIDIAG numerically and checks they agree,
* compares their *critical paths* (the paper's contribution: the comparison
  in parallel time, not flops),
* and extracts the leading principal components with ``gesvd``.

Run:  python examples/tall_skinny_pca.py
"""

import numpy as np

from repro import ge2val, gesvd
from repro.analysis.crossover import measured_bidiag_cp, measured_rbidiag_cp
from repro.models.flops import chan_crossover_m, ge2bd_flops, rbidiag_flops
from repro.utils.validation import max_relative_error


def make_dataset(n_samples: int, n_features: int, n_components: int, rng) -> np.ndarray:
    """Samples drawn from a low-rank linear model plus isotropic noise."""
    basis = rng.standard_normal((n_components, n_features))
    weights = rng.standard_normal((n_samples, n_components)) * np.linspace(
        5.0, 1.0, n_components
    )
    noise = 0.05 * rng.standard_normal((n_samples, n_features))
    return weights @ basis + noise


def main() -> None:
    rng = np.random.default_rng(3)
    n_samples, n_features, n_components = 600, 48, 5
    data = make_dataset(n_samples, n_features, n_components, rng)
    data -= data.mean(axis=0)

    # ----------------------------------------------------------------- #
    # Flop counts: where is Chan's crossover for this shape?
    # ----------------------------------------------------------------- #
    print(f"data matrix: {n_samples} x {n_features}")
    print(f"Chan crossover at m = 5n/3 = {chan_crossover_m(n_features):.0f} rows")
    print(f"  BIDIAG   flops: {ge2bd_flops(n_samples, n_features) / 1e6:8.1f} Mflop")
    print(f"  R-BIDIAG flops: {rbidiag_flops(n_samples, n_features) / 1e6:8.1f} Mflop")

    # ----------------------------------------------------------------- #
    # Numerical agreement of the two variants
    # ----------------------------------------------------------------- #
    sv_bidiag = ge2val(data, tile_size=12, variant="bidiag", tree="greedy")
    sv_rbidiag = ge2val(data, tile_size=12, variant="rbidiag", tree="greedy")
    print(f"\nBIDIAG vs R-BIDIAG singular values agree to "
          f"{max_relative_error(sv_rbidiag, sv_bidiag):.2e}")

    # ----------------------------------------------------------------- #
    # Critical paths (parallel time with unbounded resources)
    # ----------------------------------------------------------------- #
    p, q = 50, 4  # tile shape of a 600x48 matrix with nb=12
    cp_b = measured_bidiag_cp(p, q)
    cp_r = measured_rbidiag_cp(p, q)
    print(f"\ncritical paths for the {p}x{q} tile shape (units of nb^3/3 flops):")
    print(f"  BIDIAG-GREEDY   : {cp_b:.0f}")
    print(f"  R-BIDIAG-GREEDY : {cp_r:.0f}   ({cp_b / cp_r:.2f}x shorter)" if cp_r < cp_b
          else f"  R-BIDIAG-GREEDY : {cp_r:.0f}")

    # ----------------------------------------------------------------- #
    # PCA: energy captured by the leading components
    # ----------------------------------------------------------------- #
    u, s, vt = gesvd(data, tile_size=12, variant="rbidiag")
    energy = np.cumsum(s**2) / np.sum(s**2)
    print("\nPCA spectrum (cumulative explained variance):")
    for k in range(min(8, s.size)):
        marker = " <-- planted components" if k == n_components - 1 else ""
        print(f"  {k + 1:2d} components: {energy[k] * 100:6.2f} %{marker}")
    scores = u[:, :n_components] * s[:n_components]
    print(f"\nprojected data (scores) shape: {scores.shape}")


if __name__ == "__main__":
    main()
