#!/usr/bin/env python3
"""Reduction-tree study: critical paths, task graphs and simulated performance.

Reproduces, at laptop scale, the comparison at the heart of the paper:
for a given tile shape, how do FLATTS, FLATTT, GREEDY and AUTO differ in

* the number of tasks and total work of their DAGs,
* their critical paths (parallel time with unbounded resources),
* their simulated GFlop/s on one 24-core node (bounded resources),

and how does the picture change between a square and a tall-skinny matrix.

Run:  python examples/tree_study.py
      (REPRO_EXAMPLE_FAST=1 shrinks the problem sizes for smoke tests)
"""

import os

from repro.dag.critical_path import critical_path_length, critical_path_tasks
from repro.dag.tracer import trace_bidiag
from repro.experiments.figures import format_rows
from repro.runtime.machine import Machine
from repro.runtime.simulator import simulate_ge2bnd
from repro.trees import AutoTree, FlatTSTree, FlatTTTree, GreedyTree

TREES = {
    "FlatTS": FlatTSTree(),
    "FlatTT": FlatTTTree(),
    "Greedy": GreedyTree(),
    "Auto(24 cores)": AutoTree(n_cores=24),
}


def dag_study(p: int, q: int) -> None:
    print(f"\n--- task graphs for a {p} x {q} tile matrix (BIDIAG) ---")
    rows = []
    for name, tree in TREES.items():
        graph = trace_bidiag(p, q, tree)
        cp = critical_path_length(graph)
        rows.append(
            {
                "tree": name,
                "tasks": len(graph),
                "edges": graph.n_edges,
                "work (nb^3/3)": graph.total_weight(),
                "critical path": cp,
                "parallelism": graph.total_weight() / cp,
            }
        )
    print(format_rows(rows))


def critical_path_anatomy(p: int, q: int) -> None:
    print(f"\n--- what lies on the critical path ({p} x {q}, Greedy vs FlatTS) ---")
    for name in ("FlatTS", "Greedy"):
        graph = trace_bidiag(p, q, TREES[name])
        path = critical_path_tasks(graph)
        kernels = {}
        for task in path:
            kernels[task.kernel.value] = kernels.get(task.kernel.value, 0) + 1
        summary = ", ".join(f"{k}x{v}" for v, k in sorted(((v, k) for k, v in kernels.items()), reverse=True))
        print(f"  {name:8s}: {len(path)} tasks on the path ({summary})")


def simulated_performance(m: int, n: int) -> None:
    machine = Machine(n_nodes=1, cores_per_node=24, tile_size=160)
    print(f"\n--- simulated GE2BND on one 24-core node, m={m}, n={n} ---")
    rows = []
    for tree in ("flatts", "flattt", "greedy", "auto"):
        for algorithm in ("bidiag", "rbidiag") if m >= 2 * n else ("bidiag",):
            sim = simulate_ge2bnd(m, n, machine, tree=tree, algorithm=algorithm)
            rows.append(
                {
                    "tree": tree,
                    "algorithm": algorithm,
                    "gflops": sim.gflops,
                    "time_s": sim.time_seconds,
                    "tasks": sim.n_tasks,
                }
            )
    print(format_rows(rows))


FAST = os.environ.get("REPRO_EXAMPLE_FAST", "0") not in ("", "0")


def main() -> None:
    # Square case: GREEDY/FLATTT shine on small sizes, FLATTS on large ones,
    # AUTO adapts.
    dag_study(8 if FAST else 16, 8 if FAST else 16)
    critical_path_anatomy(8 if FAST else 16, 8 if FAST else 16)
    simulated_performance(*((1500, 1500) if FAST else (5000, 5000)))

    # Tall-skinny case: R-BIDIAG and AUTO take over.
    dag_study(24 if FAST else 48, 6)
    simulated_performance(*((6000, 500) if FAST else (24000, 2000)))


if __name__ == "__main__":
    main()
