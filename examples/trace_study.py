#!/usr/bin/env python3
"""Observability study: trace a distributed run and read its metrics.

The :mod:`repro.obs` subsystem records what the simulation engine did —
wall-clock phase spans (compile, dependency analysis, rank, simulate),
one event per task and per inter-node message, ready-queue depth — and
exports it as a Chrome/Perfetto trace, an ASCII/SVG Gantt chart and a
structured metrics snapshot, all without perturbing the schedule (the
engine records nothing inside its event loop).  This example:

* executes one distributed GE2BND plan with tracing on and prints the
  phase timings, utilization, ready-queue and cache statistics from
  ``RunResult.metrics``;
* draws the ASCII Gantt chart (one lane per core plus NIC lanes);
* accumulates two policies into one tracer and writes a single
  Perfetto-loadable ``trace_study.json`` comparing them side by side;
* validates the emitted JSON with the same schema check CI runs.

Run:  python examples/trace_study.py
      (REPRO_EXAMPLE_FAST=1 shrinks the problem sizes for smoke tests)
"""

import os

from repro.api import SvdPlan, execute
from repro.obs import Tracer, validate_chrome_trace

FAST = os.environ.get("REPRO_EXAMPLE_FAST", "0") not in ("", "0")


def main() -> None:
    m = n = 1000 if FAST else 5000
    nb = 100 if FAST else 250
    plan = SvdPlan(
        m=m, n=n, stage="ge2bnd", variant="bidiag", tree="greedy",
        tile_size=nb, n_cores=4 if FAST else 8, n_nodes=4,
        network="alpha-beta",
    )

    print(f"== traced simulation, {m}x{n} nb={nb} on 4 nodes ({plan.network}) ==")
    result = execute(plan, "simulate", trace=True)
    tracer = result.trace
    print(f"  simulated makespan : {result.time_seconds * 1e3:.2f} ms "
          f"({result.gflops:.0f} GFlop/s, {result.n_tasks} tasks)")
    for name, seconds in tracer.phase_seconds().items():
        print(f"  phase {name:13s}: {seconds * 1e3:8.2f} ms wall")

    metrics = result.metrics
    util = metrics["utilization"]
    ready = metrics["ready_queue"]
    sizes = metrics["message_sizes"]
    print(f"  overall busy       : {util['overall_busy_fraction']:.1%} "
          f"(idle {util['total_idle_seconds']:.3f} core-s)")
    print(f"  ready queue        : peak={ready['peak']} "
          f"mean={ready['time_weighted_mean']:.2f}")
    print(f"  messages           : {sizes['count']} "
          f"({metrics['communication']['bytes'] / 1e6:.1f} MB, "
          f"largest {sizes['max'] / 1e3:.0f} kB)")
    print(f"  cache counters     : {metrics['cache']}")

    print("\n== ASCII Gantt chart (one lane per core, ~ = NIC injecting) ==")
    print(tracer.gantt(width=72, max_lanes=8))

    print("\n== one tracer, two policies: list vs critical-path ==")
    comparison = Tracer()
    for policy in ("list", "critical-path"):
        run_result = execute(plan.with_(policy=policy), "simulate",
                             trace=comparison)
        comparison.runs[-1].label = policy
        print(f"  {policy:13s}: makespan {run_result.time_seconds * 1e3:8.2f} ms")

    payload = comparison.to_chrome_trace()
    problems = validate_chrome_trace(payload)
    print(f"  trace events       : {len(payload['traceEvents'])} "
          f"(validation problems: {len(problems)})")
    assert not problems

    if not FAST:
        path = comparison.write("trace_study.json")
        print(f"  wrote {path} — load it in ui.perfetto.dev or chrome://tracing")
        with open("trace_study.svg", "w", encoding="utf-8") as fh:
            fh.write(tracer.gantt_svg() + "\n")
        print("  wrote trace_study.svg")


if __name__ == "__main__":
    main()
