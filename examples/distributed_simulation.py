#!/usr/bin/env python3
"""Distributed-memory simulation: strong and weak scaling on a virtual cluster.

Reproduces the setup of Figures 3 and 4 of the paper on a simulated
``miriel`` cluster (24-core nodes, 40 Gb/s InfiniBand): 2D block-cyclic
data distribution, hierarchical reduction trees (local tree per node +
flat/greedy tree across nodes), owner-computes task mapping and per-tile
message costs.

Run:  python examples/distributed_simulation.py
      (REPRO_EXAMPLE_FAST=1 shrinks the problem sizes for smoke tests)
"""

import os

from repro.experiments.figures import format_rows
from repro.models.competitors import COMPETITORS
from repro.runtime.machine import Machine
from repro.runtime.simulator import simulate_ge2bnd, simulate_ge2val
from repro.tiles.distribution import ProcessGrid


def strong_scaling(m: int, n: int, node_counts) -> None:
    print(f"\n--- strong scaling, GE2BND, m={m}, n={n} ---")
    rows = []
    for nodes in node_counts:
        machine = Machine(n_nodes=nodes, cores_per_node=23, tile_size=160)
        for tree in ("flatts", "greedy", "auto"):
            sim = simulate_ge2bnd(m, n, machine, tree=tree, algorithm="bidiag")
            rows.append(
                {
                    "nodes": nodes,
                    "tree": tree,
                    "gflops": sim.gflops,
                    "messages": sim.messages,
                    "comm_MB": sim.comm_bytes / 1e6,
                }
            )
    print(format_rows(rows))


def ge2val_vs_competitors(m: int, n: int, node_counts) -> None:
    print(f"\n--- GE2VAL vs competitors, m={m}, n={n} ---")
    rows = []
    for nodes in node_counts:
        machine = Machine(n_nodes=nodes, cores_per_node=23, tile_size=160)
        dplasma = simulate_ge2val(m, n, machine, tree="auto")
        rows.append({"nodes": nodes, "library": "DPLASMA (this work)", "gflops": dplasma.gflops})
        for name in ("Elemental", "ScaLAPACK"):
            rows.append(
                {"nodes": nodes, "library": name, "gflops": COMPETITORS[name].gflops(m, n, machine)}
            )
    print(format_rows(rows))


def weak_scaling(n: int, rows_per_node: int, node_counts) -> None:
    print(f"\n--- weak scaling, R-BIDIAG, n={n}, m = {rows_per_node} x nodes ---")
    rows = []
    for nodes in node_counts:
        m = rows_per_node * nodes
        machine = Machine(n_nodes=nodes, cores_per_node=24, tile_size=160)
        grid = ProcessGrid.for_tall_skinny_matrix(nodes)
        sim = simulate_ge2bnd(m, n, machine, tree="auto", algorithm="rbidiag")
        rows.append(
            {
                "nodes": nodes,
                "grid": f"{grid.rows}x{grid.cols}",
                "m": m,
                "gflops": sim.gflops,
                "gflops/node": sim.gflops / nodes,
                "efficiency": sim.gflops / machine.peak_gflops,
            }
        )
    print(format_rows(rows))


FAST = os.environ.get("REPRO_EXAMPLE_FAST", "0") not in ("", "0")


def main() -> None:
    if FAST:
        node_counts = (1, 4)
        strong_scaling(1600, 1600, node_counts)
        ge2val_vs_competitors(1600, 1600, node_counts)
        weak_scaling(800, 1600, (1, 2))
        return
    node_counts = (1, 4, 9, 16)
    strong_scaling(8000, 8000, node_counts)
    ge2val_vs_competitors(8000, 8000, node_counts)
    weak_scaling(2000, 8000, (1, 2, 4, 8))


if __name__ == "__main__":
    main()
