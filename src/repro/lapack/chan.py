"""Chan's algorithm: QR preprocessing before bidiagonalization.

Chan [9] observed that for tall-and-skinny matrices it is cheaper to
compute a QR factorization first and bidiagonalize only the ``n x n`` R
factor:

``GE2BD(m, n)``           costs ``4 n^2 (m - n/3)`` flops, while
``preQR(m, n) + GE2BD(n, n)`` costs ``2 n^2 (m + n)`` flops,

so the preprocessed variant wins whenever ``m >= 5n/3`` and approaches a
factor-of-two saving as ``m / n`` grows.  The scalar R-bidiagonalization of
this module is the non-tiled ancestor of the paper's R-BIDIAG algorithm and
is used as a numerical reference for it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.lapack.gebd2 import Gebd2Result, gebd2, gebd2_flops
from repro.lapack.geqrf import QRFactorization, form_q_from_qr, geqrf, geqrf_flops


@dataclass(frozen=True)
class ChanResult:
    """Result of Chan's scalar R-bidiagonalization.

    Attributes
    ----------
    d, e:
        Diagonals of the upper bidiagonal factor of the R matrix (its
        singular values are those of the original matrix).
    u, vt:
        Orthogonal factors of the *original* matrix when vectors were
        requested: ``A = U · bidiag(d, e) · V^T`` with ``U`` of shape
        ``m x n`` (economy) and ``V^T`` of shape ``n x n``.
    used_preqr:
        Whether the QR preprocessing was actually applied (it is skipped for
        matrices below the crossover unless forced).
    """

    d: np.ndarray
    e: np.ndarray
    u: Optional[np.ndarray]
    vt: Optional[np.ndarray]
    used_preqr: bool


def chan_crossover(n: int) -> float:
    """Row count above which Chan's algorithm performs fewer flops (``5n/3``)."""
    if n < 1:
        raise ValueError("n must be >= 1")
    return 5.0 * n / 3.0


def chan_flops(m: int, n: int) -> float:
    """Flop count of Chan's algorithm: ``2 n^2 (m + n)``.

    ``geqrf_flops(m, n) + gebd2_flops(n, n) = 2n^2(m - n/3) + 8n^3/3``,
    i.e. ``2n^2(m + n)`` (Golub & Van Loan, and Section III-C of the paper).
    """
    if m < n or n < 1:
        raise ValueError(f"expected m >= n >= 1, got {m}x{n}")
    return geqrf_flops(m, n) + gebd2_flops(n, n)


def chan_bidiagonalization(
    a: np.ndarray,
    *,
    compute_uv: bool = False,
    force: bool = False,
    threshold: float = 5.0 / 3.0,
    block_size: int = 32,
) -> ChanResult:
    """Bidiagonalize ``a`` with Chan's algorithm (preQR + GEBD of R).

    Parameters
    ----------
    a:
        Real ``m x n`` matrix, ``m >= n``.
    compute_uv:
        Also return the orthogonal factors of the original matrix.
    force:
        Apply the QR preprocessing even below the flop crossover.
    threshold:
        Aspect-ratio crossover ``m / n`` above which the preprocessing is
        applied (default: Chan's 5/3; Elemental uses 1.2).
    block_size:
        Panel width of the blocked QR.
    """
    a = np.asarray(a, dtype=float)
    if a.ndim != 2:
        raise ValueError("chan_bidiagonalization expects a 2-D array")
    m, n = a.shape
    if m < n:
        raise ValueError(f"expected m >= n, got {m}x{n}; pass the transpose")

    use_preqr = force or m >= threshold * n
    if not use_preqr:
        res = gebd2(a, compute_uv=compute_uv)
        u = res.u[:, :n] if res.u is not None else None
        return ChanResult(d=res.d, e=res.e, u=u, vt=res.vt, used_preqr=False)

    fact: QRFactorization = geqrf(a, block_size=block_size)
    r = fact.r[:n, :n]
    res: Gebd2Result = gebd2(r, compute_uv=compute_uv)
    if not compute_uv:
        return ChanResult(d=res.d, e=res.e, u=None, vt=None, used_preqr=True)
    # A = Q R = Q (U_r B V_r^T)  =>  U = Q U_r (economy, m x n), V^T = V_r^T.
    q = form_q_from_qr(fact, economy=True)
    u = q @ res.u[:n, :n]
    return ChanResult(d=res.d, e=res.e, u=u, vt=res.vt, used_preqr=True)
