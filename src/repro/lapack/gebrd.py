"""Panel-blocked one-stage bidiagonalization (LAPACK ``xGEBRD``).

Dongarra, Sorensen and Hammarling [13] showed how to organise the
Golub–Kahan reduction by panels of ``nb`` columns so that roughly half of
the operations can be performed as matrix-matrix products (Level-3 BLAS)
instead of matrix-vector products.  The numerical transformations are the
same as :func:`repro.lapack.gebd2.gebd2` — only their grouping differs.

This implementation processes the matrix panel by panel and applies each
reflector to the trailing matrix immediately, so it is numerically
identical to the unblocked algorithm and carries exactly the same flop
count.  The 50 % Level-2 / 50 % Level-3 *performance* split of the real
``xGEBRD`` (Großer & Lang [19, Table 1]) is what matters for the
competitor models; it is captured analytically by
:func:`gebrd_level3_fraction` and by
:class:`repro.models.competitors.ScalapackModel`, not by timing this
reference code.
"""

from __future__ import annotations


import numpy as np

from repro.kernels.householder import householder_vector
from repro.lapack.gebd2 import Gebd2Result, _apply_left_reflector, _apply_left_vt
from repro.lapack.gebd2 import _apply_right_reflector, _apply_right_u


def gebrd(
    a: np.ndarray,
    *,
    block_size: int = 32,
    compute_uv: bool = False,
) -> Gebd2Result:
    """Blocked (panelled) reduction of ``a`` to upper bidiagonal form.

    Parameters
    ----------
    a:
        Real ``m x n`` matrix with ``m >= n`` (never modified).
    block_size:
        Panel width ``nb``; only affects the grouping of the work, never the
        result.
    compute_uv:
        Also accumulate ``U`` and ``V^T``.

    Returns
    -------
    Gebd2Result
        Same contract as :func:`repro.lapack.gebd2.gebd2`.
    """
    a = np.array(a, dtype=float, copy=True)
    if a.ndim != 2:
        raise ValueError("gebrd expects a 2-D array")
    m, n = a.shape
    if m < n:
        raise ValueError(f"gebrd expects m >= n, got {m}x{n}; pass the transpose")
    if n == 0:
        raise ValueError("gebrd expects at least one column")
    if block_size < 1:
        raise ValueError(f"block_size must be >= 1, got {block_size}")

    u = np.eye(m) if compute_uv else None
    vt = np.eye(n) if compute_uv else None

    for panel_start in range(0, n, block_size):
        panel_end = min(panel_start + block_size, n)
        for j in range(panel_start, panel_end):
            # Left reflector: zero A[j+1:, j].
            col = a[j:, j]
            if col.size > 1:
                v, tau, beta = householder_vector(col)
                a[j, j] = beta
                a[j + 1 :, j] = 0.0
                _apply_left_reflector(a[j:, j + 1 :], v, tau)
                if compute_uv:
                    _apply_right_u(u, v, tau, j)
            # Right reflector: zero A[j, j+2:].
            if j < n - 2:
                row = a[j, j + 1 :]
                v, tau, beta = householder_vector(row)
                a[j, j + 1] = beta
                a[j, j + 2 :] = 0.0
                _apply_right_reflector(a[j + 1 :, j + 1 :], v, tau)
                if compute_uv:
                    _apply_left_vt(vt, v, tau, j + 1)

    d = np.diagonal(a)[:n].copy()
    e = np.diagonal(a, offset=1)[: n - 1].copy() if n > 1 else np.array([])
    return Gebd2Result(d=d, e=e, u=u, vt=vt)


def gebrd_level3_fraction(m: int, n: int, block_size: int = 32) -> float:
    """Fraction of the ``xGEBRD`` flops performed in Level-3 BLAS.

    Großer and Lang [19] report that the blocked one-stage algorithm spends
    about half of its operations computing / accumulating Householder
    vectors (Level 2) and half applying them in blocked form (Level 3); the
    exact fraction approaches 1/2 from below as ``n / block_size`` grows.
    The competitor performance models use this fraction to split the time
    between the memory-bound and the compute-bound rates.
    """
    if m < n or n < 1:
        raise ValueError(f"expected m >= n >= 1, got {m}x{n}")
    if block_size < 1:
        raise ValueError("block_size must be >= 1")
    if n <= block_size:
        return 0.0
    # One panel of nb columns is Level-2; the trailing update of the other
    # n - nb columns is Level-3.  Averaged over the reduction this gives
    # (1 - nb/n) / 2, which tends to 1/2 for n >> nb.
    return 0.5 * (1.0 - block_size / n)
