"""Unblocked Golub–Kahan bidiagonalization (LAPACK ``xGEBD2``).

This is the classical one-stage GE2BD algorithm of Golub and Kahan [17]:
alternate one left Householder reflector (zeroing a column below the
diagonal) and one right Householder reflector (zeroing a row beyond the
superdiagonal), one column/row at a time.  For an ``m x n`` matrix with
``m >= n`` the result is the *upper* bidiagonal factor ``B`` with

``A = U · B · V^T``

where ``U`` (``m x m``) and ``V`` (``n x n``) are orthogonal.

The tiled algorithms of the paper replace this column-at-a-time scheme with
tile-level operations; this module is kept as the numerical reference
baseline (its singular values must match the tiled pipeline's) and as the
algorithmic model behind the ScaLAPACK / MKL competitor performance models.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.kernels.householder import householder_vector


@dataclass(frozen=True)
class Gebd2Result:
    """Result of the unblocked bidiagonalization.

    Attributes
    ----------
    d:
        Main diagonal of the bidiagonal factor (length ``n``).
    e:
        Superdiagonal (length ``n - 1``).
    u:
        Left orthogonal factor ``U`` (``m x m``), or ``None`` when vectors
        were not requested.
    vt:
        Right orthogonal factor ``V^T`` (``n x n``), or ``None``.
    """

    d: np.ndarray
    e: np.ndarray
    u: Optional[np.ndarray]
    vt: Optional[np.ndarray]

    def bidiagonal(self) -> np.ndarray:
        """The dense ``n x n`` upper bidiagonal matrix ``B``."""
        n = self.d.size
        b = np.zeros((n, n))
        np.fill_diagonal(b, self.d)
        if n > 1:
            b[np.arange(n - 1), np.arange(1, n)] = self.e
        return b

    def reconstruct(self, m: int) -> np.ndarray:
        """Rebuild ``A = U B V^T`` (requires vectors)."""
        if self.u is None or self.vt is None:
            raise ValueError("reconstruction requires compute_uv=True")
        n = self.d.size
        b_full = np.zeros((m, n))
        b_full[:n, :n] = self.bidiagonal()
        return self.u @ b_full @ self.vt


def _apply_left_reflector(a: np.ndarray, v: np.ndarray, tau: float) -> None:
    """In-place ``A := (I - tau v v^T) A`` (``v`` spans all rows of ``a``)."""
    if tau == 0.0 or a.size == 0:
        return
    w = tau * (v @ a)
    a -= np.outer(v, w)


def _apply_right_reflector(a: np.ndarray, v: np.ndarray, tau: float) -> None:
    """In-place ``A := A (I - tau v v^T)`` (``v`` spans all columns of ``a``)."""
    if tau == 0.0 or a.size == 0:
        return
    w = tau * (a @ v)
    a -= np.outer(w, v)


def gebd2(a: np.ndarray, *, compute_uv: bool = False) -> Gebd2Result:
    """Reduce a real ``m x n`` matrix (``m >= n``) to upper bidiagonal form.

    Parameters
    ----------
    a:
        The matrix to reduce (never modified).
    compute_uv:
        Also accumulate the orthogonal factors ``U`` and ``V^T``.  This
        roughly doubles the cost (as in LAPACK) and is only needed when
        singular vectors are requested.

    Returns
    -------
    Gebd2Result
        ``d``, ``e`` and (optionally) ``u`` / ``vt`` such that
        ``A = U · bidiag(d, e) · V^T``.

    Examples
    --------
    >>> import numpy as np
    >>> rng = np.random.default_rng(0)
    >>> a = rng.standard_normal((6, 4))
    >>> res = gebd2(a, compute_uv=True)
    >>> np.allclose(res.reconstruct(6), a)
    True
    """
    a = np.array(a, dtype=float, copy=True)
    if a.ndim != 2:
        raise ValueError("gebd2 expects a 2-D array")
    m, n = a.shape
    if m < n:
        raise ValueError(f"gebd2 expects m >= n, got {m}x{n}; pass the transpose")
    if n == 0:
        raise ValueError("gebd2 expects at least one column")

    u = np.eye(m) if compute_uv else None
    vt = np.eye(n) if compute_uv else None

    for j in range(n):
        # Left reflector: zero A[j+1:, j].
        col = a[j:, j]
        if col.size > 1:
            v, tau, beta = householder_vector(col)
            a[j, j] = beta
            a[j + 1 :, j] = 0.0
            _apply_left_reflector(a[j:, j + 1 :], v, tau)
            if compute_uv:
                # U := U * H_j  (H_j acts on rows j..m-1).
                _apply_right_u(u, v, tau, j)
        # Right reflector: zero A[j, j+2:].
        if j < n - 2:
            row = a[j, j + 1 :]
            v, tau, beta = householder_vector(row)
            a[j, j + 1] = beta
            a[j, j + 2 :] = 0.0
            _apply_right_reflector(a[j + 1 :, j + 1 :], v, tau)
            if compute_uv:
                # V^T := G_j * V^T  (G_j acts on rows j+1..n-1 of V^T).
                _apply_left_vt(vt, v, tau, j + 1)

    d = np.diagonal(a)[:n].copy()
    e = np.diagonal(a, offset=1)[: n - 1].copy() if n > 1 else np.array([])
    return Gebd2Result(d=d, e=e, u=u, vt=vt)


def _apply_right_u(u: np.ndarray, v: np.ndarray, tau: float, offset: int) -> None:
    """``U := U · (I - tau v v^T)`` restricted to columns ``offset:``."""
    block = u[:, offset:]
    w = tau * (block @ v)
    block -= np.outer(w, v)


def _apply_left_vt(vt: np.ndarray, v: np.ndarray, tau: float, offset: int) -> None:
    """``V^T := (I - tau v v^T) · V^T`` restricted to rows ``offset:``."""
    block = vt[offset:, :]
    w = tau * (v @ block)
    block -= np.outer(v, w)


def gebd2_flops(m: int, n: int) -> float:
    """Operation count of the unblocked bidiagonalization: ``4mn^2 - 4n^3/3``.

    This is the classical count quoted in the paper (Section II) for the
    Golub–Kahan GE2BD step; it equals :func:`repro.models.flops.ge2bd_flops`.
    """
    if m < n or n < 1:
        raise ValueError(f"expected m >= n >= 1, got {m}x{n}")
    return 4.0 * m * n * n - 4.0 * n**3 / 3.0
