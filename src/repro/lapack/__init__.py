"""Classical (non-tiled) LAPACK-style baselines.

The paper positions the tiled two-stage algorithms against the classical
one-stage reductions found in LAPACK and ScaLAPACK (Section II).  This
subpackage implements those baselines from scratch so they can be compared
numerically and used as references in tests and benchmarks:

* :mod:`repro.lapack.gebd2` — the unblocked Golub–Kahan bidiagonalization
  (LAPACK ``xGEBD2``), one Householder reflector per column and per row;
* :mod:`repro.lapack.gebrd` — the panel-blocked one-stage bidiagonalization
  (LAPACK ``xGEBRD``), organised in panels of ``nb`` columns;
* :mod:`repro.lapack.geqrf` — blocked Householder QR (LAPACK ``xGEQRF``),
  the building block of Chan's algorithm;
* :mod:`repro.lapack.chan` — Chan's algorithm (preQR + bidiagonalization of
  the R factor) together with its flop-count crossover analysis.
"""

from repro.lapack.gebd2 import gebd2, gebd2_flops
from repro.lapack.gebrd import gebrd, gebrd_level3_fraction
from repro.lapack.geqrf import geqrf, geqrf_flops, form_q_from_qr
from repro.lapack.chan import chan_bidiagonalization, chan_flops, chan_crossover

__all__ = [
    "gebd2",
    "gebd2_flops",
    "gebrd",
    "gebrd_level3_fraction",
    "geqrf",
    "geqrf_flops",
    "form_q_from_qr",
    "chan_bidiagonalization",
    "chan_flops",
    "chan_crossover",
]
