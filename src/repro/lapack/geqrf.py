"""Blocked Householder QR factorization (LAPACK ``xGEQRF``).

Used as the ``preQR`` phase of Chan's algorithm
(:mod:`repro.lapack.chan`) and as an independent numerical reference for
the tiled QR factorization: both must produce the same ``R`` factor up to
column signs and the same reconstruction ``A = Q R``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from repro.kernels.householder import apply_q, apply_qt, qr_factor


@dataclass(frozen=True)
class QRFactorization:
    """Compact blocked QR factorization ``A = Q R``.

    Attributes
    ----------
    r:
        The ``m x n`` upper-trapezoidal factor.
    blocks:
        List of per-panel compact-WY reflectors ``(offset, V, T)``; panel
        reflectors act on rows ``offset:`` of the matrix.
    shape:
        Original matrix shape ``(m, n)``.
    """

    r: np.ndarray
    blocks: List[Tuple[int, np.ndarray, np.ndarray]]
    shape: Tuple[int, int]

    def apply_qt(self, c: np.ndarray) -> np.ndarray:
        """Compute ``Q^T C`` without forming ``Q`` (``C`` has ``m`` rows)."""
        c = np.array(c, dtype=float, copy=True)
        for offset, v, t in self.blocks:
            c[offset:, :] = apply_qt(v, t, c[offset:, :])
        return c

    def apply_q(self, c: np.ndarray) -> np.ndarray:
        """Compute ``Q C`` without forming ``Q`` (``C`` has ``m`` rows)."""
        c = np.array(c, dtype=float, copy=True)
        for offset, v, t in reversed(self.blocks):
            c[offset:, :] = apply_q(v, t, c[offset:, :])
        return c


def geqrf(a: np.ndarray, *, block_size: int = 32) -> QRFactorization:
    """Blocked Householder QR factorization of a real ``m x n`` matrix.

    The matrix is processed in panels of ``block_size`` columns; each panel
    is factored with the compact-WY machinery of
    :mod:`repro.kernels.householder` and its block reflector is applied to
    the trailing columns in one blocked update.
    """
    a = np.array(a, dtype=float, copy=True)
    if a.ndim != 2:
        raise ValueError("geqrf expects a 2-D array")
    m, n = a.shape
    if m < 1 or n < 1:
        raise ValueError(f"matrix dimensions must be >= 1, got {m}x{n}")
    if block_size < 1:
        raise ValueError(f"block_size must be >= 1, got {block_size}")

    blocks: List[Tuple[int, np.ndarray, np.ndarray]] = []
    k = min(m, n)
    for start in range(0, k, block_size):
        stop = min(start + block_size, k)
        panel = a[start:, start:stop]
        v, t, r_panel = qr_factor(panel)
        a[start:, start:stop] = r_panel
        if stop < n:
            a[start:, stop:] = apply_qt(v, t, a[start:, stop:])
        blocks.append((start, v, t))
    # The strictly lower part holds no data of R; return the clean triangle.
    return QRFactorization(r=np.triu(a), blocks=blocks, shape=(m, n))


def form_q_from_qr(fact: QRFactorization, economy: bool = True) -> np.ndarray:
    """Explicitly form the orthogonal factor ``Q`` of a blocked QR.

    With ``economy=True`` only the first ``n`` columns are returned
    (``m x n``), which is what Chan's algorithm and the GESVD driver need.
    """
    m, n = fact.shape
    cols = min(m, n) if economy else m
    q = np.eye(m)[:, :cols]
    return fact.apply_q(q)


def geqrf_flops(m: int, n: int) -> float:
    """Operation count of the Householder QR factorization: ``2n^2(m - n/3)``."""
    if m < 1 or n < 1:
        raise ValueError(f"matrix dimensions must be >= 1, got {m}x{n}")
    return 2.0 * n * n * (m - n / 3.0)
