"""Global configuration objects shared across the library.

The defaults mirror the experimental setup of the paper (Section VI):

* tile size ``nb = 160`` and inner blocking ``ib = 32`` tuned on the
  ``m = n = 20000`` / ``30000`` square cases;
* AUTO tree parallelism factor ``gamma = 2``;
* the ``miriel`` node: 2 × 12-core Haswell Xeon E5-2680 v3, per-core
  practical GEMM peak 37 GFlop/s and 642 GFlop/s for the full 24-core node;
* InfiniBand QDR TrueScale network, 40 Gb/s.
"""

from __future__ import annotations

from dataclasses import dataclass, replace


@dataclass(frozen=True)
class Config:
    """Algorithmic parameters used throughout the library.

    Parameters
    ----------
    tile_size:
        Tile size ``nb``. Tiles are ``nb x nb`` except for the last tile row
        and column of a matrix whose dimensions are not multiples of ``nb``.
    inner_block:
        Inner blocking ``ib`` used by the TS/TT kernels. Only affects the
        performance model (kernel efficiency), never numerical results.
    auto_gamma:
        The ``gamma`` parameter of the AUTO tree: at every panel step the
        FlatTS sub-domain size ``a`` is chosen so that the number of
        independent tasks is at least ``gamma * n_cores``.
    dtype:
        NumPy dtype used by the numeric layer.
    """

    tile_size: int = 160
    inner_block: int = 32
    auto_gamma: float = 2.0
    dtype: str = "float64"

    def with_(self, **kwargs) -> "Config":
        """Return a copy of this configuration with some fields replaced."""
        return replace(self, **kwargs)

    def __post_init__(self) -> None:
        if self.tile_size < 1:
            raise ValueError(f"tile_size must be >= 1, got {self.tile_size}")
        if self.inner_block < 1:
            raise ValueError(f"inner_block must be >= 1, got {self.inner_block}")
        if self.auto_gamma <= 0:
            raise ValueError(f"auto_gamma must be > 0, got {self.auto_gamma}")


#: Library-wide default configuration (paper values).
default_config = Config()


@dataclass(frozen=True)
class MachinePreset:
    """Hardware parameters of a compute platform used by the simulator.

    The defaults describe one ``miriel`` node of the PLAFRIM testbed as
    reported in Section VI-A of the paper.
    """

    name: str = "miriel"
    cores_per_node: int = 24
    #: Practical GEMM peak of a single core, in GFlop/s.
    core_gemm_gflops: float = 37.0
    #: Practical GEMM peak of the full node (less than 24 x 37 because of
    #: shared memory bandwidth), in GFlop/s.
    node_gemm_gflops: float = 642.0
    #: Network bandwidth between nodes, in Gbit/s (InfiniBand QDR).
    network_bandwidth_gbits: float = 40.0
    #: Network latency per message, in microseconds.
    network_latency_us: float = 2.0
    #: NIC injection rate of one node, in Gbit/s — how fast a node can push
    #: bytes onto the wire.  ``None`` means the link bandwidth (the QDR HCA
    #: is not injection-limited).  Used by the alpha-beta network model to
    #: serialize concurrent sends from the same node.
    injection_rate_gbits: "float | None" = None
    #: Per-message send overhead on the sending NIC, in microseconds (the
    #: ``o`` of LogP-style models: descriptor setup, doorbell, DMA start).
    injection_overhead_us: float = 0.5
    #: Memory bandwidth of a node in GB/s (used by the memory-bound
    #: competitor models, e.g. ScaLAPACK's BLAS-2 phases).
    memory_bandwidth_gbs: float = 60.0

    @property
    def node_efficiency(self) -> float:
        """Parallel efficiency of a full node relative to per-core peak."""
        return self.node_gemm_gflops / (self.cores_per_node * self.core_gemm_gflops)

    @property
    def network_bandwidth_bytes_per_s(self) -> float:
        """Network bandwidth converted to bytes per second."""
        return self.network_bandwidth_gbits * 1e9 / 8.0

    @property
    def injection_rate_bytes_per_s(self) -> float:
        """NIC injection rate in bytes per second (defaults to link bandwidth)."""
        rate = (
            self.injection_rate_gbits
            if self.injection_rate_gbits is not None
            else self.network_bandwidth_gbits
        )
        return rate * 1e9 / 8.0


#: The cluster node used for all experiments in the paper.
MIRIEL = MachinePreset()

#: A deliberately slow network variant used by ablation benchmarks.
MIRIEL_SLOW_NETWORK = MachinePreset(
    name="miriel-slow-network", network_bandwidth_gbits=10.0, network_latency_us=10.0
)

PRESETS = {
    MIRIEL.name: MIRIEL,
    MIRIEL_SLOW_NETWORK.name: MIRIEL_SLOW_NETWORK,
}


def get_preset(name: str) -> MachinePreset:
    """Look up a machine preset by name.

    Raises ``KeyError`` with the list of known presets if ``name`` is
    unknown.
    """
    try:
        return PRESETS[name]
    except KeyError:
        raise KeyError(
            f"unknown machine preset {name!r}; known presets: {sorted(PRESETS)}"
        ) from None
