"""Two-stage GESVD pipeline with singular vectors.

Composes the full multi-step factorization discussed in Section II of the
paper:

``A  =  U1 · B_band · V1^T``              (tiled GE2BND, BIDIAG or R-BIDIAG)
``B_band = U2 · B_bidiag · V2^T``         (BND2BD bulge chasing)
``B_bidiag = U3 · diag(σ) · V3^T``        (BD2VAL QR iteration with vectors)

so that ``A = (U1 U2 U3) · diag(σ) · (V3^T V2^T V1^T)``.  The "reverse"
application of every stage on the vectors is exactly the overhead the paper
describes for computing singular vectors with multi-step methods; the
:func:`gesvd_two_stage` driver exposes per-stage timings so that overhead
can be quantified (see ``benchmarks/bench_gesvd_vectors.py``).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, Optional, Union

import numpy as np

from repro.algorithms.accumulate import accumulate_orthogonal_factors
from repro.algorithms.bdsqr import bdsqr
from repro.algorithms.bnd2bd_uv import band_to_bidiagonal_uv
from repro.algorithms.svd import ge2bnd
from repro.config import Config
from repro.tiles.matrix import TiledMatrix
from repro.trees.base import ReductionTree

ArrayOrTiled = Union[np.ndarray, TiledMatrix]


@dataclass
class GesvdResult:
    """Full SVD of a rectangular matrix via the two-stage tiled pipeline.

    Attributes
    ----------
    u:
        Left singular vectors, ``m x n`` (economy).
    singular_values:
        Singular values in descending order (length ``n``).
    vt:
        Right singular vectors transposed, ``n x n``.
    stage_seconds:
        Wall-clock seconds spent in each stage (``ge2bnd``,
        ``accumulate_u1v1``, ``bnd2bd``, ``bd2val``, ``compose``); useful to
        quantify the vector-accumulation overhead of the multi-step method.
    """

    u: np.ndarray
    singular_values: np.ndarray
    vt: np.ndarray
    stage_seconds: Dict[str, float] = field(default_factory=dict)

    def reconstruct(self) -> np.ndarray:
        """Rebuild the original matrix ``U diag(σ) V^T``."""
        return self.u @ np.diag(self.singular_values) @ self.vt


def gesvd_two_stage(
    a: ArrayOrTiled,
    *,
    tile_size: Optional[int] = None,
    tree: Union[str, ReductionTree, None] = None,
    variant: str = "auto",
    n_cores: int = 1,
    config: Optional[Config] = None,
) -> GesvdResult:
    """Singular values *and* vectors of ``a`` through the two-stage pipeline.

    Parameters
    ----------
    a:
        Dense ``m x n`` array (``m >= n``) or a :class:`TiledMatrix`.
    tile_size, tree, variant, n_cores, config:
        Same meaning as :func:`repro.algorithms.svd.ge2bnd`.

    Returns
    -------
    GesvdResult
        The economy SVD with per-stage timings.

    Notes
    -----
    The alternative GESVD driver :func:`repro.algorithms.svd.gesvd` handles
    the band with a one-sided Jacobi SVD; this pipeline instead follows the
    paper's structure (BND2BD + BD2VAL in reverse on the vectors), which is
    the configuration whose overhead the paper discusses.
    """
    timings: Dict[str, float] = {}

    t0 = time.perf_counter()
    band, matrix, executor = ge2bnd(
        a,
        tile_size=tile_size,
        tree=tree,
        variant=variant,
        n_cores=n_cores,
        log_transformations=True,
        config=config,
    )
    timings["ge2bnd"] = time.perf_counter() - t0

    t0 = time.perf_counter()
    u1, v1 = accumulate_orthogonal_factors(matrix.layout, executor.transform_log)
    timings["accumulate_u1v1"] = time.perf_counter() - t0

    t0 = time.perf_counter()
    d, e, u2, v2t = band_to_bidiagonal_uv(band)
    timings["bnd2bd"] = time.perf_counter() - t0

    t0 = time.perf_counter()
    bd = bdsqr(d, e)
    timings["bd2val"] = time.perf_counter() - t0

    t0 = time.perf_counter()
    n = matrix.n
    u = u1[:, :n] @ (u2 @ bd.u)
    vt = (bd.vt @ v2t) @ v1.T
    timings["compose"] = time.perf_counter() - t0

    return GesvdResult(
        u=u,
        singular_values=bd.singular_values,
        vt=vt,
        stage_seconds=timings,
    )
