"""Band bidiagonal form: container, extraction and validation.

The output of GE2BND (BIDIAG or R-BIDIAG) is an upper *banded* matrix of
element bandwidth ``nb``: the only nonzero tiles are the diagonal tiles
``(k, k)`` (upper triangular) and the superdiagonal tiles ``(k, k+1)``
(lower triangular).  :class:`BandBidiagonal` stores that band compactly and
is the input of the BND2BD stage.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from repro.tiles.matrix import TiledMatrix


@dataclass
class BandBidiagonal:
    """An ``n x n`` upper-banded matrix with bandwidth ``bandwidth``.

    The band is stored in LAPACK-like packed form: ``data[d, j]`` holds
    element ``(j - d, j)`` of the matrix, for ``d = 0`` (main diagonal) to
    ``d = bandwidth`` (outermost superdiagonal).  Entries that fall outside
    the matrix are zero.
    """

    data: np.ndarray
    n: int
    bandwidth: int

    @classmethod
    def zeros(cls, n: int, bandwidth: int) -> "BandBidiagonal":
        """An all-zero band of size ``n`` and bandwidth ``bandwidth``."""
        if n < 1:
            raise ValueError("n must be >= 1")
        if bandwidth < 1:
            raise ValueError("bandwidth must be >= 1")
        return cls(data=np.zeros((bandwidth + 1, n)), n=n, bandwidth=bandwidth)

    @classmethod
    def from_dense(cls, a: np.ndarray, bandwidth: int) -> "BandBidiagonal":
        """Pack the upper band of a square dense matrix."""
        a = np.asarray(a, dtype=float)
        if a.ndim != 2 or a.shape[0] != a.shape[1]:
            raise ValueError(f"expected a square matrix, got shape {a.shape}")
        n = a.shape[0]
        band = cls.zeros(n, bandwidth)
        for d in range(bandwidth + 1):
            diag = np.diagonal(a, offset=d)
            band.data[d, d : d + diag.size] = diag
        return band

    def __getitem__(self, key: Tuple[int, int]) -> float:
        """Element access ``band[i, j]`` (zero outside the band)."""
        i, j = key
        if not (0 <= i < self.n and 0 <= j < self.n):
            raise IndexError(f"index ({i}, {j}) outside {self.n}x{self.n} matrix")
        d = j - i
        if d < 0 or d > self.bandwidth:
            return 0.0
        return float(self.data[d, j])

    def __setitem__(self, key: Tuple[int, int], value: float) -> None:
        i, j = key
        d = j - i
        if d < 0 or d > self.bandwidth:
            raise IndexError(
                f"element ({i}, {j}) is outside the band (bandwidth {self.bandwidth})"
            )
        self.data[d, j] = value

    def to_dense(self) -> np.ndarray:
        """Expand the band back into a dense ``n x n`` array."""
        out = np.zeros((self.n, self.n))
        for d in range(self.bandwidth + 1):
            vals = self.data[d, d:]
            idx = np.arange(self.n - d)
            out[idx, idx + d] = vals
        return out

    def frobenius_norm(self) -> float:
        """Frobenius norm of the banded matrix."""
        return float(np.sqrt(np.sum(self.data**2)))

    def copy(self) -> "BandBidiagonal":
        return BandBidiagonal(data=self.data.copy(), n=self.n, bandwidth=self.bandwidth)


def extract_band(matrix: TiledMatrix, *, n_cols: int | None = None) -> BandBidiagonal:
    """Extract the band bidiagonal factor from a reduced tiled matrix.

    ``matrix`` is the output of :func:`~repro.algorithms.bidiag.bidiag_ge2bnd`
    or :func:`~repro.algorithms.rbidiag.rbidiag_ge2bnd`; the band lives in
    the top-left ``n x n`` block with ``n = min(m, n_cols or n)`` and
    bandwidth ``nb``.
    """
    n = matrix.n if n_cols is None else n_cols
    n = min(n, matrix.m)
    dense = matrix.to_dense()[:n, :n]
    return BandBidiagonal.from_dense(dense, bandwidth=min(matrix.nb, n - 1) if n > 1 else 1)


def band_residual(matrix: TiledMatrix, *, n_cols: int | None = None) -> float:
    """Frobenius norm of everything *outside* the expected band.

    A successful GE2BND leaves this at roundoff level (relative to the norm
    of the matrix); tests use it to assert the structural correctness of the
    reduction independently of the singular values.
    """
    n = matrix.n if n_cols is None else n_cols
    dense = matrix.to_dense()
    nb = matrix.nb
    mask = np.ones_like(dense, dtype=bool)
    rows, cols = np.indices(dense.shape)
    inside = (cols >= rows) & (cols - rows <= nb) & (rows < n) & (cols < n)
    mask[inside] = False
    return float(np.linalg.norm(dense[mask]))
