"""Kernel executors.

The tiled algorithm drivers (:mod:`repro.algorithms.tiled_qr`,
:mod:`repro.algorithms.bidiag`, …) are written once, in terms of abstract
tile operations ("GEQRT tile (i, k)", "TSMQR tiles (piv, j) / (i, j) with
the reflectors of column k", …).  *Executors* give those operations a
meaning:

* :class:`NumericExecutor` applies the real Householder kernels to a
  :class:`~repro.tiles.matrix.TiledMatrix`, producing an actual
  factorization;
* :class:`~repro.dag.tracer.TraceExecutor` (defined with the DAG tools)
  records each operation as a task with its read/write sets, producing the
  task graph used for critical-path analysis and runtime simulation;
* :class:`MultiExecutor` fans an operation out to several executors, so one
  run can produce the numbers *and* the DAG that was executed.

This split guarantees that the DAG we analyse is exactly the DAG we
execute — both come from the same driver code path.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Dict, List, Sequence, Tuple


from repro.kernels import lq_kernels as lqk
from repro.kernels import qr_kernels as qrk
from repro.tiles.matrix import TiledMatrix


class KernelExecutor(ABC):
    """Interface every executor implements.

    Index conventions (all 0-based tile indices):

    * QR kernels act on *column* ``k``: ``i`` / ``piv`` are tile rows.
    * LQ kernels act on *row* ``k``: ``j`` / ``piv`` are tile columns.
    """

    @property
    @abstractmethod
    def p(self) -> int:
        """Number of tile rows of the matrix being factored."""

    @property
    @abstractmethod
    def q(self) -> int:
        """Number of tile columns of the matrix being factored."""

    # -- QR family ------------------------------------------------------ #
    @abstractmethod
    def geqrt(self, i: int, k: int) -> None:
        """Factor tile ``(i, k)`` into a triangle."""

    @abstractmethod
    def unmqr(self, i: int, k: int, j: int) -> None:
        """Apply the reflectors of ``geqrt(i, k)`` to tile ``(i, j)``."""

    @abstractmethod
    def tsqrt(self, piv: int, i: int, k: int) -> None:
        """Zero square tile ``(i, k)`` with the triangle in ``(piv, k)``."""

    @abstractmethod
    def tsmqr(self, piv: int, i: int, k: int, j: int) -> None:
        """Apply the reflectors of ``tsqrt(piv, i, k)`` to tiles ``(piv, j)`` / ``(i, j)``."""

    @abstractmethod
    def ttqrt(self, piv: int, i: int, k: int) -> None:
        """Zero triangular tile ``(i, k)`` with the triangle in ``(piv, k)``."""

    @abstractmethod
    def ttmqr(self, piv: int, i: int, k: int, j: int) -> None:
        """Apply the reflectors of ``ttqrt(piv, i, k)`` to tiles ``(piv, j)`` / ``(i, j)``."""

    # -- LQ family ------------------------------------------------------ #
    @abstractmethod
    def gelqt(self, k: int, j: int) -> None:
        """Factor tile ``(k, j)`` into a lower triangle (LQ panel)."""

    @abstractmethod
    def unmlq(self, k: int, j: int, i: int) -> None:
        """Apply the reflectors of ``gelqt(k, j)`` to tile ``(i, j)``."""

    @abstractmethod
    def tslqt(self, piv: int, j: int, k: int) -> None:
        """Zero square tile ``(k, j)`` with the triangle in ``(k, piv)``."""

    @abstractmethod
    def tsmlq(self, piv: int, j: int, k: int, i: int) -> None:
        """Apply the reflectors of ``tslqt(piv, j, k)`` to tiles ``(i, piv)`` / ``(i, j)``."""

    @abstractmethod
    def ttlqt(self, piv: int, j: int, k: int) -> None:
        """Zero triangular tile ``(k, j)`` with the triangle in ``(k, piv)``."""

    @abstractmethod
    def ttmlq(self, piv: int, j: int, k: int, i: int) -> None:
        """Apply the reflectors of ``ttlqt(piv, j, k)`` to tiles ``(i, piv)`` / ``(i, j)``."""


class NumericExecutor(KernelExecutor):
    """Executor that applies the real Householder kernels to a tiled matrix.

    Parameters
    ----------
    matrix:
        The matrix to factor, modified in place tile by tile.
    log_transformations:
        When ``True`` every orthogonal transformation is appended to
        :attr:`transform_log` as ``(side, kind, indices, reflector)`` so that
        the orthogonal factors ``U`` / ``V`` can be accumulated afterwards
        (used by the GESVD driver).
    """

    def __init__(self, matrix: TiledMatrix, log_transformations: bool = False) -> None:
        self.matrix = matrix
        self.log_transformations = log_transformations
        #: (side, kernel, index tuple, reflector) in application order.
        self.transform_log: List[Tuple[str, str, Tuple[int, ...], object]] = []
        self._qr_panel: Dict[Tuple[int, int], qrk.QRReflector] = {}
        self._qr_pair: Dict[Tuple[int, int, int], qrk.QRReflector] = {}
        self._lq_panel: Dict[Tuple[int, int], lqk.LQReflector] = {}
        self._lq_pair: Dict[Tuple[int, int, int], lqk.LQReflector] = {}

    # -- geometry ------------------------------------------------------- #
    @property
    def p(self) -> int:
        return self.matrix.p

    @property
    def q(self) -> int:
        return self.matrix.q

    def _log(self, side: str, kernel: str, idx: Tuple[int, ...], refl: object) -> None:
        if self.log_transformations:
            self.transform_log.append((side, kernel, idx, refl))

    # -- QR family ------------------------------------------------------ #
    def geqrt(self, i: int, k: int) -> None:
        r, refl = qrk.geqrt(self.matrix[i, k])
        self.matrix[i, k] = r
        self._qr_panel[(i, k)] = refl
        self._log("left", "GEQRT", (i, k), refl)

    def unmqr(self, i: int, k: int, j: int) -> None:
        refl = self._qr_panel[(i, k)]
        self.matrix[i, j] = qrk.unmqr(refl, self.matrix[i, j])

    def tsqrt(self, piv: int, i: int, k: int) -> None:
        new_top, new_bot, refl = qrk.tsqrt(self.matrix[piv, k], self.matrix[i, k])
        self.matrix[piv, k] = new_top
        self.matrix[i, k] = new_bot
        self._qr_pair[(piv, i, k)] = refl
        self._log("left", "TSQRT", (piv, i, k), refl)

    def tsmqr(self, piv: int, i: int, k: int, j: int) -> None:
        refl = self._qr_pair[(piv, i, k)]
        top, bot = qrk.tsmqr(refl, self.matrix[piv, j], self.matrix[i, j])
        self.matrix[piv, j] = top
        self.matrix[i, j] = bot

    def ttqrt(self, piv: int, i: int, k: int) -> None:
        new_top, new_bot, refl = qrk.ttqrt(self.matrix[piv, k], self.matrix[i, k])
        self.matrix[piv, k] = new_top
        self.matrix[i, k] = new_bot
        self._qr_pair[(piv, i, k)] = refl
        self._log("left", "TTQRT", (piv, i, k), refl)

    def ttmqr(self, piv: int, i: int, k: int, j: int) -> None:
        refl = self._qr_pair[(piv, i, k)]
        top, bot = qrk.ttmqr(refl, self.matrix[piv, j], self.matrix[i, j])
        self.matrix[piv, j] = top
        self.matrix[i, j] = bot

    # -- LQ family ------------------------------------------------------ #
    def gelqt(self, k: int, j: int) -> None:
        l, refl = lqk.gelqt(self.matrix[k, j])
        self.matrix[k, j] = l
        self._lq_panel[(k, j)] = refl
        self._log("right", "GELQT", (k, j), refl)

    def unmlq(self, k: int, j: int, i: int) -> None:
        refl = self._lq_panel[(k, j)]
        self.matrix[i, j] = lqk.unmlq(refl, self.matrix[i, j])

    def tslqt(self, piv: int, j: int, k: int) -> None:
        new_left, new_right, refl = lqk.tslqt(self.matrix[k, piv], self.matrix[k, j])
        self.matrix[k, piv] = new_left
        self.matrix[k, j] = new_right
        self._lq_pair[(piv, j, k)] = refl
        self._log("right", "TSLQT", (piv, j, k), refl)

    def tsmlq(self, piv: int, j: int, k: int, i: int) -> None:
        refl = self._lq_pair[(piv, j, k)]
        left, right = lqk.tsmlq(refl, self.matrix[i, piv], self.matrix[i, j])
        self.matrix[i, piv] = left
        self.matrix[i, j] = right

    def ttlqt(self, piv: int, j: int, k: int) -> None:
        new_left, new_right, refl = lqk.ttlqt(self.matrix[k, piv], self.matrix[k, j])
        self.matrix[k, piv] = new_left
        self.matrix[k, j] = new_right
        self._lq_pair[(piv, j, k)] = refl
        self._log("right", "TTLQT", (piv, j, k), refl)

    def ttmlq(self, piv: int, j: int, k: int, i: int) -> None:
        refl = self._lq_pair[(piv, j, k)]
        left, right = lqk.ttmlq(refl, self.matrix[i, piv], self.matrix[i, j])
        self.matrix[i, piv] = left
        self.matrix[i, j] = right


class MultiExecutor(KernelExecutor):
    """Fan every operation out to several executors (e.g. numeric + trace)."""

    def __init__(self, executors: Sequence[KernelExecutor]) -> None:
        if not executors:
            raise ValueError("MultiExecutor needs at least one executor")
        shapes = {(e.p, e.q) for e in executors}
        if len(shapes) != 1:
            raise ValueError(f"executors disagree on the tile shape: {shapes}")
        self.executors = list(executors)

    @property
    def p(self) -> int:
        return self.executors[0].p

    @property
    def q(self) -> int:
        return self.executors[0].q

    def _broadcast(self, method: str, *args) -> None:
        for executor in self.executors:
            getattr(executor, method)(*args)

    def geqrt(self, i, k):
        self._broadcast("geqrt", i, k)

    def unmqr(self, i, k, j):
        self._broadcast("unmqr", i, k, j)

    def tsqrt(self, piv, i, k):
        self._broadcast("tsqrt", piv, i, k)

    def tsmqr(self, piv, i, k, j):
        self._broadcast("tsmqr", piv, i, k, j)

    def ttqrt(self, piv, i, k):
        self._broadcast("ttqrt", piv, i, k)

    def ttmqr(self, piv, i, k, j):
        self._broadcast("ttmqr", piv, i, k, j)

    def gelqt(self, k, j):
        self._broadcast("gelqt", k, j)

    def unmlq(self, k, j, i):
        self._broadcast("unmlq", k, j, i)

    def tslqt(self, piv, j, k):
        self._broadcast("tslqt", piv, j, k)

    def tsmlq(self, piv, j, k, i):
        self._broadcast("tsmlq", piv, j, k, i)

    def ttlqt(self, piv, j, k):
        self._broadcast("ttlqt", piv, j, k)

    def ttmlq(self, piv, j, k, i):
        self._broadcast("ttmlq", piv, j, k, i)
