"""BD2VAL: singular values of a real upper bidiagonal matrix.

Two independent solvers are provided:

* :func:`bidiagonal_singular_values` — the Golub–Kahan implicit-shift QR
  iteration (the algorithm behind LAPACK ``xBDSQR``), with deflation and
  the standard zero-diagonal handling;
* :func:`bidiagonal_sv_bisection` — bisection on Sturm counts of the
  Golub–Kahan tridiagonal form ``TGK = [[0, B^T], [B, 0]]`` (permuted to a
  tridiagonal with zero diagonal), the algorithm behind ``xBDSVX``.

Both take the two diagonals ``(d, e)`` and return the singular values in
descending order.  They are used as the last stage of the GE2VAL pipeline
and to cross-check each other in the property-based tests.
"""

from __future__ import annotations

import math
from typing import Tuple

import numpy as np


def _givens(f: float, g: float) -> Tuple[float, float, float]:
    """Return ``(c, s, r)`` with ``c*f + s*g = r`` and ``-s*f + c*g = 0``."""
    if g == 0.0:
        return 1.0, 0.0, f
    if f == 0.0:
        return 0.0, 1.0, g
    r = math.hypot(f, g)
    return f / r, g / r, r


def _wilkinson_shift(d: np.ndarray, e: np.ndarray, lo: int, hi: int) -> float:
    """Wilkinson shift from the trailing 2x2 block of ``B^T B``."""
    dm = d[hi - 1] ** 2 + (e[hi - 2] ** 2 if hi - 1 > lo else 0.0)
    dn = d[hi] ** 2 + e[hi - 1] ** 2
    off = d[hi - 1] * e[hi - 1]
    if off == 0.0:
        return dn
    delta = (dm - dn) / 2.0
    sign = 1.0 if delta >= 0 else -1.0
    denom = delta + sign * math.hypot(delta, off)
    if denom == 0.0:
        return dn
    return dn - off * off / denom


def _gk_sweep(d: np.ndarray, e: np.ndarray, lo: int, hi: int) -> None:
    """One implicit-shift Golub–Kahan QR sweep on the block ``[lo, hi]``."""
    mu = _wilkinson_shift(d, e, lo, hi)
    y = d[lo] * d[lo] - mu
    z = d[lo] * e[lo]
    for k in range(lo, hi):
        # Right rotation on columns (k, k+1): zeroes the above-superdiagonal
        # bulge (or, at k == lo, introduces the shift).
        c, s, r = _givens(y, z)
        if k > lo:
            e[k - 1] = r
        f, g = d[k], e[k]
        d[k] = c * f + s * g
        e[k] = -s * f + c * g
        h = d[k + 1]
        bulge = s * h
        d[k + 1] = c * h
        # Left rotation on rows (k, k+1): zeroes the subdiagonal bulge.
        c, s, r = _givens(d[k], bulge)
        d[k] = r
        f, g = e[k], d[k + 1]
        e[k] = c * f + s * g
        d[k + 1] = -s * f + c * g
        if k < hi - 1:
            g = e[k + 1]
            bulge = s * g
            e[k + 1] = c * g
            y = e[k]
            z = bulge


def _deflate_zero_diagonal(d: np.ndarray, e: np.ndarray, lo: int, hi: int, idx: int) -> None:
    """Rotate away the superdiagonal entries coupled to a zero diagonal ``d[idx]``.

    When ``d[idx] == 0`` the implicit QR iteration stalls; the standard cure
    (LAPACK ``dbdsqr``) applies row rotations that chase ``e[idx]`` to the
    right until it vanishes, splitting the problem.
    """
    # Chase e[idx] rightwards using rotations involving row idx.
    f = e[idx]
    e[idx] = 0.0
    for j in range(idx + 1, hi + 1):
        c, s, r = _givens(d[j], f)
        d[j] = r
        if j < hi:
            f = -s * e[j]
            e[j] = c * e[j]
        if f == 0.0:
            break


def bidiagonal_singular_values(
    d: np.ndarray,
    e: np.ndarray,
    *,
    tol: float = 1e-14,
    max_sweeps: int = 200,
) -> np.ndarray:
    """Singular values of the upper bidiagonal matrix ``B = bidiag(d, e)``.

    Implicit-shift Golub–Kahan QR iteration with deflation.  The result is
    returned in descending order.

    Parameters
    ----------
    d, e:
        Main diagonal (length ``n``) and superdiagonal (length ``n - 1``).
    tol:
        Relative deflation threshold for superdiagonal entries.
    max_sweeps:
        Maximum number of QR sweeps per singular value before giving up
        (raises ``RuntimeError``); the typical count is 2–3.
    """
    d = np.array(d, dtype=float, copy=True).ravel()
    e = np.array(e, dtype=float, copy=True).ravel()
    n = d.size
    if e.size != max(n - 1, 0):
        raise ValueError(f"superdiagonal must have length {n - 1}, got {e.size}")
    if n == 0:
        return np.array([])
    if n == 1:
        return np.abs(d)

    norm = max(float(np.max(np.abs(d))), float(np.max(np.abs(e))), 1e-300)
    total_sweeps = 0
    sweep_budget = max_sweeps * n
    hi = n - 1
    while hi > 0:
        # Deflate negligible superdiagonal entries.
        for i in range(hi):
            if abs(e[i]) <= tol * (abs(d[i]) + abs(d[i + 1])) + tol * norm * 1e-2:
                e[i] = 0.0
        if e[hi - 1] == 0.0:
            hi -= 1
            continue
        # Active block [lo, hi]: the largest trailing unreduced block.
        lo = hi - 1
        while lo > 0 and e[lo - 1] != 0.0:
            lo -= 1
        # Zero diagonal inside the block: split explicitly.
        zero_idx = None
        for i in range(lo, hi):
            if abs(d[i]) <= tol * norm:
                zero_idx = i
                break
        if zero_idx is not None:
            d[zero_idx] = 0.0
            _deflate_zero_diagonal(d, e, lo, hi, zero_idx)
            continue
        _gk_sweep(d, e, lo, hi)
        total_sweeps += 1
        if total_sweeps > sweep_budget:
            raise RuntimeError(
                f"bidiagonal QR iteration did not converge after {total_sweeps} sweeps"
            )
    return np.sort(np.abs(d))[::-1]


# --------------------------------------------------------------------------- #
# Bisection on the Golub–Kahan tridiagonal form
# --------------------------------------------------------------------------- #
def _tgk_offdiagonal(d: np.ndarray, e: np.ndarray) -> np.ndarray:
    """Off-diagonal of the (permuted) Golub–Kahan tridiagonal ``TGK``.

    ``TGK`` is the ``2n x 2n`` symmetric tridiagonal matrix with zero
    diagonal and off-diagonal ``[d_1, e_1, d_2, e_2, ..., e_{n-1}, d_n]``;
    its eigenvalues are ``±σ_i(B)``.
    """
    n = d.size
    off = np.zeros(2 * n - 1)
    off[0::2] = d
    if n > 1:
        off[1::2] = e
    return off


def _sturm_count(offdiag: np.ndarray, x: float) -> int:
    """Number of eigenvalues of the zero-diagonal tridiagonal that are < x."""
    count = 0
    q = -x
    if q < 0.0:
        count += 1
    tiny = 1e-300
    for b in offdiag:
        if q == 0.0:
            q = tiny
        q = -x - (b * b) / q
        if q < 0.0:
            count += 1
    return count


def bidiagonal_sv_bisection(
    d: np.ndarray,
    e: np.ndarray,
    *,
    tol: float = 1e-12,
    max_iter: int = 200,
) -> np.ndarray:
    """Singular values of ``bidiag(d, e)`` by bisection on Sturm counts.

    Robust (never fails to converge) but slower than the QR iteration; used
    as an independent cross-check and for subset computations.
    """
    d = np.asarray(d, dtype=float).ravel()
    e = np.asarray(e, dtype=float).ravel()
    n = d.size
    if n == 0:
        return np.array([])
    if e.size != max(n - 1, 0):
        raise ValueError(f"superdiagonal must have length {n - 1}, got {e.size}")
    off = _tgk_offdiagonal(d, e)
    # Upper bound on the spectral radius: Gershgorin on TGK.
    bound = 0.0
    full = np.concatenate([[0.0], np.abs(off), [0.0]])
    for i in range(full.size - 1):
        bound = max(bound, full[i] + full[i + 1])
    bound = max(bound, 1e-300)

    sigmas = np.zeros(n)
    for k in range(1, n + 1):
        # The k-th largest singular value is the (n + k)-th smallest
        # eigenvalue of TGK (eigenvalues are -σ_n <= ... <= -σ_1 <= σ_1*...
        # actually ±σ_i); equivalently the number of eigenvalues < x reaches
        # n + (n - k) + 1 once x exceeds σ_k.
        target = n + (n - k) + 1
        lo_x, hi_x = 0.0, bound * (1.0 + 1e-10)
        for _ in range(max_iter):
            mid = 0.5 * (lo_x + hi_x)
            if _sturm_count(off, mid) >= target:
                hi_x = mid
            else:
                lo_x = mid
            if hi_x - lo_x <= tol * max(1.0, hi_x):
                break
        sigmas[k - 1] = 0.5 * (lo_x + hi_x)
    return sigmas
