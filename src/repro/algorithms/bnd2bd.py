"""BND2BD: reduce a band (upper, bandwidth ``nb``) matrix to bidiagonal form.

This is the second stage of the two-stage approach (Großer & Lang; PLASMA's
``BND2BD``): the band produced by GE2BND is reduced to a proper bidiagonal
matrix by *bulge chasing* with Givens rotations.  Each band element beyond
the first superdiagonal is annihilated by a column rotation whose fill-in
(a bulge) is chased down and off the matrix by alternating row and column
rotations.  The stage performs ``O(n^2 b)`` flops on an ``O(n b)`` data
footprint — much less work than GE2BND but memory-bound, which is why the
paper keeps it on a single node.

The implementation operates on a dense copy for indexing simplicity (the
matrices handed to the *numeric* layer are moderate) but only ever touches
the banded region plus the transient bulge, so its operation count matches
the real algorithm; the runtime simulator uses the analytic cost from
:mod:`repro.models.flops`, not this code.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.algorithms.band import BandBidiagonal


def _givens(f: float, g: float) -> Tuple[float, float, float]:
    """Return ``(c, s, r)`` such that ``[c s; -s c]^T [f; g] = [r; 0]``.

    Conventions match the rotations used below: combining two columns
    ``(c1, c2)`` as ``new1 = c*c1 + s*c2``, ``new2 = -s*c1 + c*c2`` zeroes
    the ``g`` entry, and likewise for rows.
    """
    if g == 0.0:
        return 1.0, 0.0, f
    if f == 0.0:
        return 0.0, 1.0, g
    r = float(np.hypot(f, g))
    return f / r, g / r, r


def _rotate_cols(b: np.ndarray, c1: int, c2: int, c: float, s: float, row_hi: int) -> None:
    """Apply a right Givens rotation to columns ``(c1, c2)`` for rows ``[0, row_hi]``."""
    col1 = b[: row_hi + 1, c1].copy()
    col2 = b[: row_hi + 1, c2].copy()
    b[: row_hi + 1, c1] = c * col1 + s * col2
    b[: row_hi + 1, c2] = -s * col1 + c * col2


def _rotate_rows(b: np.ndarray, r1: int, r2: int, c: float, s: float, col_lo: int) -> None:
    """Apply a left Givens rotation to rows ``(r1, r2)`` for columns ``[col_lo, n)``."""
    row1 = b[r1, col_lo:].copy()
    row2 = b[r2, col_lo:].copy()
    b[r1, col_lo:] = c * row1 + s * row2
    b[r2, col_lo:] = -s * row1 + c * row2


def band_to_bidiagonal(
    band: "BandBidiagonal | np.ndarray",
    bandwidth: Optional[int] = None,
    *,
    zero_tol: float = 0.0,
) -> Tuple[np.ndarray, np.ndarray]:
    """Reduce an upper-banded matrix to upper bidiagonal form.

    Parameters
    ----------
    band:
        Either a :class:`~repro.algorithms.band.BandBidiagonal` or a dense
        square array that is upper banded.
    bandwidth:
        Required when ``band`` is a dense array; ignored otherwise.
    zero_tol:
        Entries whose magnitude is at most ``zero_tol`` are treated as
        already zero (skipping their annihilation).

    Returns
    -------
    (d, e):
        Main diagonal and superdiagonal of the bidiagonal factor.  Its
        singular values equal those of the input band.
    """
    if isinstance(band, BandBidiagonal):
        b = band.to_dense()
        bw = band.bandwidth
    else:
        b = np.array(band, dtype=float, copy=True)
        if b.ndim != 2 or b.shape[0] != b.shape[1]:
            raise ValueError(f"expected a square matrix, got shape {b.shape}")
        if bandwidth is None:
            raise ValueError("bandwidth is required when passing a dense array")
        bw = int(bandwidth)
    n = b.shape[0]
    if bw < 1:
        raise ValueError("bandwidth must be >= 1")
    if n == 1:
        return np.array([b[0, 0]]), np.array([])
    if bw == 1:
        return np.diagonal(b).copy(), np.diagonal(b, offset=1).copy()

    for i in range(n - 1):
        # Annihilate the band elements of row i beyond the superdiagonal,
        # rightmost first so earlier zeros are preserved.
        for j in range(min(i + bw, n - 1), i + 1, -1):
            if abs(b[i, j]) <= zero_tol:
                continue
            # Column rotation (j-1, j) zeroing b[i, j]; may create a
            # subdiagonal bulge at (j, j-1).
            c, s, _ = _givens(b[i, j - 1], b[i, j])
            _rotate_cols(b, j - 1, j, c, s, row_hi=min(j, n - 1))
            b[i, j] = 0.0

            bulge_row, bulge_col = j, j - 1
            while True:
                if abs(b[bulge_row, bulge_col]) <= zero_tol:
                    b[bulge_row, bulge_col] = 0.0
                    break
                # Row rotation (bulge_col, bulge_row) removing the
                # subdiagonal bulge; may create an above-band bulge at
                # (bulge_col, bulge_row + bw).
                c, s, _ = _givens(b[bulge_col, bulge_col], b[bulge_row, bulge_col])
                _rotate_rows(b, bulge_col, bulge_row, c, s, col_lo=bulge_col)
                b[bulge_row, bulge_col] = 0.0

                fill_row, fill_col = bulge_col, bulge_row + bw
                if fill_col >= n or abs(b[fill_row, fill_col]) <= zero_tol:
                    break
                # Column rotation (fill_col-1, fill_col) removing the
                # above-band bulge; may create the next subdiagonal bulge at
                # (fill_col, fill_col - 1).
                c, s, _ = _givens(b[fill_row, fill_col - 1], b[fill_row, fill_col])
                _rotate_cols(b, fill_col - 1, fill_col, c, s, row_hi=min(fill_col, n - 1))
                b[fill_row, fill_col] = 0.0
                bulge_row, bulge_col = fill_col, fill_col - 1

    d = np.diagonal(b).copy()
    e = np.diagonal(b, offset=1).copy()
    return d, e
