"""Tiled QR factorization (Algorithm 1 of the paper).

``qr_step`` performs one panel step ``QR(k)``; ``tiled_qr`` performs the
full factorization (used on its own and as the ``preQR`` phase of
R-BIDIAG).  Both are expressed in terms of an executor, so the same code
path produces numbers, task graphs or both.
"""

from __future__ import annotations

from typing import Optional

from repro.algorithms.executor import KernelExecutor, NumericExecutor
from repro.tiles.matrix import TiledMatrix
from repro.trees import FlatTSTree
from repro.trees.base import PanelContext, ReductionTree, validate_plan


def qr_step(
    executor: KernelExecutor,
    k: int,
    tree: ReductionTree,
    *,
    row_limit: Optional[int] = None,
    col_limit: Optional[int] = None,
    n_cores: int = 1,
    grid_rows: int = 1,
    check_plan: bool = False,
    plan=None,
) -> None:
    """One QR panel step ``QR(k)``: zero the tiles below the diagonal of
    tile column ``k`` and update the trailing tile columns.

    Parameters
    ----------
    executor:
        Numeric and/or tracing executor.
    k:
        Panel (tile column) index, 0-based.
    tree:
        Reduction tree deciding the elimination order and kernels.
    row_limit, col_limit:
        Restrict the step to the top-left ``row_limit x col_limit`` tile
        block (defaults: the whole matrix).  R-BIDIAG uses ``row_limit=q``
        for the bidiagonalization of the R factor.
    n_cores, grid_rows:
        Forwarded to the tree's :class:`PanelContext` (AUTO and hierarchical
        trees use them).
    check_plan:
        Validate the tree's plan before executing it (useful in tests).
    plan:
        A precomputed :class:`~repro.trees.base.PanelPlan` (panel-local
        indices).  Used by :func:`tiled_qr` when the tree provides
        cross-panel factorization plans; overrides ``tree.plan``.
    """
    p = executor.p if row_limit is None else row_limit
    q = executor.q if col_limit is None else col_limit
    if not (0 <= k < min(p, q)):
        raise ValueError(f"QR step {k} out of range for a {p}x{q} tile matrix")
    rows = p - k
    cols_remaining = q - k - 1
    if plan is None:
        ctx = PanelContext(
            rows=rows,
            cols_remaining=cols_remaining,
            row_offset=k,
            n_cores=n_cores,
            grid_rows=grid_rows,
        )
        plan = tree.plan(ctx)
    if check_plan:
        validate_plan(plan, rows)

    # Triangularize the required rows and update their trailing tiles.
    for local in plan.geqrt_rows:
        i = k + local
        executor.geqrt(i, k)
        for j in range(k + 1, q):
            executor.unmqr(i, k, j)

    # Eliminations (TS or TT) and the corresponding pair updates.
    for e in plan.eliminations:
        killer = k + e.killer
        killed = k + e.killed
        if e.use_tt:
            executor.ttqrt(killer, killed, k)
            for j in range(k + 1, q):
                executor.ttmqr(killer, killed, k, j)
        else:
            executor.tsqrt(killer, killed, k)
            for j in range(k + 1, q):
                executor.tsmqr(killer, killed, k, j)


def tiled_qr(
    a: "TiledMatrix | KernelExecutor",
    tree: Optional[ReductionTree] = None,
    *,
    n_cores: int = 1,
    grid_rows: int = 1,
    check_plan: bool = False,
) -> "TiledMatrix | None":
    """Full tiled QR factorization.

    When ``a`` is a :class:`TiledMatrix` the factorization is applied in
    place (the matrix ends upper trapezoidal: its strictly-lower tiles are
    zero) and the matrix is returned.  When ``a`` is an executor, the
    factorization is driven through it and ``None`` is returned (this is how
    the DAG tracer and the simulator consume the algorithm).

    If the tree exposes ``plan_factorization(p, q)`` (the GREEDY tree does,
    on single-node runs), the cross-panel plans it returns are used instead
    of per-panel planning — this is what lets successive panels pipeline and
    reach the asymptotically optimal critical path.
    """
    if tree is None:
        tree = FlatTSTree()
    if isinstance(a, TiledMatrix):
        executor: KernelExecutor = NumericExecutor(a)
        result: Optional[TiledMatrix] = a
    else:
        executor = a
        result = None
    steps = min(executor.p, executor.q)
    plans = None
    planner = getattr(tree, "plan_factorization", None)
    if planner is not None and grid_rows <= 1:
        plans = planner(executor.p, executor.q)
    for k in range(steps):
        qr_step(
            executor,
            k,
            tree,
            n_cores=n_cores,
            grid_rows=grid_rows,
            check_plan=check_plan,
            plan=plans[k] if plans is not None else None,
        )
    return result
