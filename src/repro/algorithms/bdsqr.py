"""Bidiagonal SVD with singular vectors (LAPACK ``xBDSQR``-style).

:func:`bdsqr` runs the implicit-shift Golub–Kahan QR iteration of
:mod:`repro.algorithms.bd2val` while accumulating the left and right
rotations, so it returns the full SVD of the bidiagonal matrix:

``bidiag(d, e) = U3 · diag(σ) · V3^T``

It is the last stage of the singular-*vector* pipeline (GESVD): the tiled
GE2BND factors, the BND2BD factors and these QR-iteration factors compose
into the SVD of the original matrix (see
:mod:`repro.algorithms.gesvd_pipeline`).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.algorithms.bd2val import _givens, _wilkinson_shift


@dataclass
class BdsqrResult:
    """SVD of an upper bidiagonal matrix.

    Attributes
    ----------
    singular_values:
        The singular values in descending order.
    u:
        Left singular vectors (``n x n``), column ``i`` pairs with
        ``singular_values[i]``.
    vt:
        Right singular vectors, transposed (``n x n``).
    sweeps:
        Number of QR sweeps performed (diagnostic).
    """

    singular_values: np.ndarray
    u: np.ndarray
    vt: np.ndarray
    sweeps: int


def _rotate_u(u: np.ndarray, k1: int, k2: int, c: float, s: float) -> None:
    """Fold a left rotation of rows ``(k1, k2)`` of ``B`` into ``U``."""
    col1 = u[:, k1].copy()
    col2 = u[:, k2].copy()
    u[:, k1] = c * col1 + s * col2
    u[:, k2] = -s * col1 + c * col2


def _rotate_vt(vt: np.ndarray, k1: int, k2: int, c: float, s: float) -> None:
    """Fold a right rotation of columns ``(k1, k2)`` of ``B`` into ``V^T``."""
    row1 = vt[k1, :].copy()
    row2 = vt[k2, :].copy()
    vt[k1, :] = c * row1 + s * row2
    vt[k2, :] = -s * row1 + c * row2


def _gk_sweep_uv(
    d: np.ndarray,
    e: np.ndarray,
    lo: int,
    hi: int,
    u: np.ndarray,
    vt: np.ndarray,
) -> None:
    """One implicit-shift sweep on the block ``[lo, hi]`` with accumulation."""
    mu = _wilkinson_shift(d, e, lo, hi)
    y = d[lo] * d[lo] - mu
    z = d[lo] * e[lo]
    for k in range(lo, hi):
        # Right rotation on columns (k, k+1).
        c, s, r = _givens(y, z)
        if k > lo:
            e[k - 1] = r
        f, g = d[k], e[k]
        d[k] = c * f + s * g
        e[k] = -s * f + c * g
        h = d[k + 1]
        bulge = s * h
        d[k + 1] = c * h
        _rotate_vt(vt, k, k + 1, c, s)
        # Left rotation on rows (k, k+1).
        c, s, r = _givens(d[k], bulge)
        d[k] = r
        f, g = e[k], d[k + 1]
        e[k] = c * f + s * g
        d[k + 1] = -s * f + c * g
        _rotate_u(u, k, k + 1, c, s)
        if k < hi - 1:
            g = e[k + 1]
            bulge = s * g
            e[k + 1] = c * g
            y = e[k]
            z = bulge


def _deflate_zero_diagonal_uv(
    d: np.ndarray,
    e: np.ndarray,
    lo: int,
    hi: int,
    idx: int,
    u: np.ndarray,
) -> None:
    """Chase away the superdiagonal coupled to a zero ``d[idx]`` (left rotations)."""
    f = e[idx]
    e[idx] = 0.0
    for j in range(idx + 1, hi + 1):
        c, s, r = _givens(d[j], f)
        d[j] = r
        _rotate_u(u, j, idx, c, s)
        if j < hi:
            f = -s * e[j]
            e[j] = c * e[j]
        if f == 0.0:
            break


def bdsqr(
    d: np.ndarray,
    e: np.ndarray,
    *,
    tol: float = 1e-14,
    max_sweeps: int = 200,
) -> BdsqrResult:
    """Full SVD of the upper bidiagonal matrix ``bidiag(d, e)``.

    Parameters
    ----------
    d, e:
        Main diagonal (length ``n``) and superdiagonal (length ``n - 1``).
    tol:
        Relative deflation threshold for superdiagonal entries.
    max_sweeps:
        Sweep budget per singular value (``RuntimeError`` beyond it).

    Returns
    -------
    BdsqrResult
        Singular values in descending order with matching ``u`` / ``vt``.
    """
    d = np.array(d, dtype=float, copy=True).ravel()
    e = np.array(e, dtype=float, copy=True).ravel()
    n = d.size
    if e.size != max(n - 1, 0):
        raise ValueError(f"superdiagonal must have length {n - 1}, got {e.size}")
    if n == 0:
        return BdsqrResult(np.array([]), np.zeros((0, 0)), np.zeros((0, 0)), 0)
    u = np.eye(n)
    vt = np.eye(n)
    if n == 1:
        sigma = abs(d[0])
        if d[0] < 0:
            u[0, 0] = -1.0
        return BdsqrResult(np.array([sigma]), u, vt, 0)

    norm = max(float(np.max(np.abs(d))), float(np.max(np.abs(e))), 1e-300)
    total_sweeps = 0
    sweep_budget = max_sweeps * n
    hi = n - 1
    while hi > 0:
        for i in range(hi):
            if abs(e[i]) <= tol * (abs(d[i]) + abs(d[i + 1])) + tol * norm * 1e-2:
                e[i] = 0.0
        if e[hi - 1] == 0.0:
            hi -= 1
            continue
        lo = hi - 1
        while lo > 0 and e[lo - 1] != 0.0:
            lo -= 1
        zero_idx = None
        for i in range(lo, hi):
            if abs(d[i]) <= tol * norm:
                zero_idx = i
                break
        if zero_idx is not None:
            d[zero_idx] = 0.0
            _deflate_zero_diagonal_uv(d, e, lo, hi, zero_idx, u)
            continue
        _gk_sweep_uv(d, e, lo, hi, u, vt)
        total_sweeps += 1
        if total_sweeps > sweep_budget:
            raise RuntimeError(
                f"bidiagonal QR iteration did not converge after {total_sweeps} sweeps"
            )

    # Fix signs (singular values must be non-negative) and sort descending.
    signs = np.where(d < 0, -1.0, 1.0)
    sigma = np.abs(d)
    u = u * signs[np.newaxis, :]
    order = np.argsort(sigma)[::-1]
    return BdsqrResult(
        singular_values=sigma[order],
        u=u[:, order],
        vt=vt[order, :],
        sweeps=total_sweeps,
    )
