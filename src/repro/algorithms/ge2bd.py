"""Scalar (element-wise) Golub–Kahan bidiagonalization (GE2BD).

This is the classical LAPACK ``xGEBD2`` algorithm: alternate Householder
reflectors applied from the left (one per column) and from the right (one
per row) reduce a dense ``m x n`` matrix (``m >= n``) directly to upper
bidiagonal form.  It costs roughly ``4 m n^2 - 4 n^3 / 3`` flops and is
entirely Level-2 BLAS — exactly the memory-bound behaviour the tiled
two-stage approach of the paper is designed to avoid.

In this reproduction it serves three purposes:

* a *reference* bidiagonalization to validate the tiled pipeline against;
* the algorithmic core of the ScaLAPACK / MKL competitor models;
* a fallback implementation of BND2BD (a band matrix is just a dense matrix
  with known zeros).
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.kernels.householder import householder_vector


def golub_kahan_bidiagonalization(a: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """Reduce ``a`` (``m x n``, ``m >= n``) to upper bidiagonal form.

    Returns ``(d, e)``: the main diagonal (length ``n``) and superdiagonal
    (length ``n - 1``) of the bidiagonal factor ``B`` such that
    ``a = U B V^T`` for some orthogonal ``U`` and ``V`` (not accumulated
    here).  The singular values of ``B`` equal those of ``a``.
    """
    a = np.array(a, dtype=float, copy=True)
    if a.ndim != 2:
        raise ValueError("expected a 2-D array")
    m, n = a.shape
    if m < n:
        raise ValueError(f"expected m >= n, got {m}x{n}; pass the transpose instead")
    for k in range(n):
        # Left reflector: zero column k below the diagonal.
        v, tau, beta = householder_vector(a[k:, k])
        a[k, k] = beta
        a[k + 1 :, k] = 0.0
        if tau != 0.0 and k + 1 < n:
            w = tau * (v @ a[k:, k + 1 :])
            a[k:, k + 1 :] -= np.outer(v, w)
        # Right reflector: zero row k beyond the superdiagonal.
        if k + 2 < n:
            v, tau, beta = householder_vector(a[k, k + 1 :])
            a[k, k + 1] = beta
            a[k, k + 2 :] = 0.0
            if tau != 0.0:
                w = tau * (a[k + 1 :, k + 1 :] @ v)
                a[k + 1 :, k + 1 :] -= np.outer(w, v)
    d = np.diagonal(a).copy()
    e = np.diagonal(a, offset=1).copy()[: max(n - 1, 0)]
    return d, e


def bidiagonal_to_dense(d: np.ndarray, e: np.ndarray) -> np.ndarray:
    """Assemble the dense upper bidiagonal matrix from its two diagonals."""
    d = np.asarray(d, dtype=float)
    e = np.asarray(e, dtype=float)
    n = d.size
    if e.size != max(n - 1, 0):
        raise ValueError(f"superdiagonal must have length {n - 1}, got {e.size}")
    b = np.diag(d)
    if n > 1:
        b[np.arange(n - 1), np.arange(1, n)] = e
    return b
