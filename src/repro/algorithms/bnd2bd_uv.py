"""BND2BD with accumulation of the orthogonal factors.

Same bulge-chasing reduction as :mod:`repro.algorithms.bnd2bd`, but every
Givens rotation is also applied to a pair of accumulators so that the
orthogonal factors of the band reduction are available afterwards:

``B_band = U2 · bidiag(d, e) · V2^T``

This is the piece needed to extend the two-stage pipeline from singular
values (GE2VAL) to singular vectors (GESVD): the paper lists that
extension — applying all the "multi" steps in reverse on the vectors — as
the main overhead of multi-step methods (Section II) and as future work for
the distributed implementation (Section VII); here it lets us measure that
overhead directly.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.algorithms.band import BandBidiagonal
from repro.algorithms.bnd2bd import _givens


def _rotate_cols(b: np.ndarray, c1: int, c2: int, c: float, s: float, row_hi: int) -> None:
    col1 = b[: row_hi + 1, c1].copy()
    col2 = b[: row_hi + 1, c2].copy()
    b[: row_hi + 1, c1] = c * col1 + s * col2
    b[: row_hi + 1, c2] = -s * col1 + c * col2


def _rotate_rows(b: np.ndarray, r1: int, r2: int, c: float, s: float, col_lo: int) -> None:
    row1 = b[r1, col_lo:].copy()
    row2 = b[r2, col_lo:].copy()
    b[r1, col_lo:] = c * row1 + s * row2
    b[r2, col_lo:] = -s * row1 + c * row2


def _accumulate_left(u: np.ndarray, r1: int, r2: int, c: float, s: float) -> None:
    """Fold a left rotation of rows ``(r1, r2)`` of ``B`` into ``U2``.

    A left rotation ``B := M B`` with ``M = [[c, s], [-s, c]]`` contributes
    ``U2 := U2 M^T``, i.e. the same ``(c, s)`` update applied to the columns
    ``(r1, r2)`` of the accumulator.
    """
    col1 = u[:, r1].copy()
    col2 = u[:, r2].copy()
    u[:, r1] = c * col1 + s * col2
    u[:, r2] = -s * col1 + c * col2


def _accumulate_right(vt: np.ndarray, c1: int, c2: int, c: float, s: float) -> None:
    """Fold a right rotation of columns ``(c1, c2)`` of ``B`` into ``V2^T``.

    A right rotation ``B := B G`` with ``G = [[c, -s], [s, c]]`` contributes
    ``V2^T := G^T V2^T``, i.e. the same ``(c, s)`` update applied to the rows
    ``(c1, c2)`` of the accumulator.
    """
    row1 = vt[c1, :].copy()
    row2 = vt[c2, :].copy()
    vt[c1, :] = c * row1 + s * row2
    vt[c2, :] = -s * row1 + c * row2


def band_to_bidiagonal_uv(
    band: "BandBidiagonal | np.ndarray",
    bandwidth: Optional[int] = None,
    *,
    zero_tol: float = 0.0,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Reduce an upper-banded matrix to bidiagonal form, with vectors.

    Parameters
    ----------
    band:
        A :class:`~repro.algorithms.band.BandBidiagonal` or a dense square
        upper-banded array.
    bandwidth:
        Required when ``band`` is a dense array.
    zero_tol:
        Entries at most ``zero_tol`` in magnitude are treated as zero.

    Returns
    -------
    (d, e, u2, v2t):
        The bidiagonal diagonals and the ``n x n`` orthogonal accumulators
        such that ``B_band = u2 · bidiag(d, e) · v2t``.
    """
    if isinstance(band, BandBidiagonal):
        b = band.to_dense()
        bw = band.bandwidth
    else:
        b = np.array(band, dtype=float, copy=True)
        if b.ndim != 2 or b.shape[0] != b.shape[1]:
            raise ValueError(f"expected a square matrix, got shape {b.shape}")
        if bandwidth is None:
            raise ValueError("bandwidth is required when passing a dense array")
        bw = int(bandwidth)
    n = b.shape[0]
    if bw < 1:
        raise ValueError("bandwidth must be >= 1")
    u2 = np.eye(n)
    v2t = np.eye(n)
    if n == 1:
        return np.array([b[0, 0]]), np.array([]), u2, v2t
    if bw == 1:
        return np.diagonal(b).copy(), np.diagonal(b, offset=1).copy(), u2, v2t

    for i in range(n - 1):
        for j in range(min(i + bw, n - 1), i + 1, -1):
            if abs(b[i, j]) <= zero_tol:
                continue
            c, s, _ = _givens(b[i, j - 1], b[i, j])
            _rotate_cols(b, j - 1, j, c, s, row_hi=min(j, n - 1))
            _accumulate_right(v2t, j - 1, j, c, s)
            b[i, j] = 0.0

            bulge_row, bulge_col = j, j - 1
            while True:
                if abs(b[bulge_row, bulge_col]) <= zero_tol:
                    b[bulge_row, bulge_col] = 0.0
                    break
                c, s, _ = _givens(b[bulge_col, bulge_col], b[bulge_row, bulge_col])
                _rotate_rows(b, bulge_col, bulge_row, c, s, col_lo=bulge_col)
                _accumulate_left(u2, bulge_col, bulge_row, c, s)
                b[bulge_row, bulge_col] = 0.0

                fill_row, fill_col = bulge_col, bulge_row + bw
                if fill_col >= n or abs(b[fill_row, fill_col]) <= zero_tol:
                    break
                c, s, _ = _givens(b[fill_row, fill_col - 1], b[fill_row, fill_col])
                _rotate_cols(b, fill_col - 1, fill_col, c, s, row_hi=min(fill_col, n - 1))
                _accumulate_right(v2t, fill_col - 1, fill_col, c, s)
                b[fill_row, fill_col] = 0.0
                bulge_row, bulge_col = fill_col, fill_col - 1

    d = np.diagonal(b).copy()
    e = np.diagonal(b, offset=1).copy()
    return d, e, u2, v2t
