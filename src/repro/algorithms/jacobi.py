"""One-sided Jacobi SVD.

A compact, numerically robust SVD used for the *small* square factor that
remains after the tiled reduction when singular vectors are requested
(GESVD driver), and as an independent reference in tests.  One-sided Jacobi
repeatedly orthogonalizes pairs of columns with plane rotations; on
convergence the column norms are the singular values, the normalized
columns form ``U`` and the accumulated rotations form ``V``.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np


def jacobi_svd(
    a: np.ndarray,
    *,
    tol: float = 1e-13,
    max_sweeps: int = 60,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Singular value decomposition ``a = U diag(s) V^T`` by one-sided Jacobi.

    Parameters
    ----------
    a:
        An ``m x n`` matrix with ``m >= n``.
    tol:
        Convergence threshold on the normalized off-diagonal inner products.
    max_sweeps:
        Maximum number of full sweeps (raises ``RuntimeError`` beyond).

    Returns
    -------
    (u, s, vt):
        ``u`` is ``m x n`` with orthonormal columns, ``s`` the singular
        values in descending order, ``vt`` the ``n x n`` transposed right
        singular vectors.
    """
    a = np.array(a, dtype=float, copy=True)
    if a.ndim != 2:
        raise ValueError("expected a 2-D array")
    m, n = a.shape
    if m < n:
        raise ValueError(f"expected m >= n, got {m}x{n}; pass the transpose instead")
    v = np.eye(n)
    if n == 0:
        return np.zeros((m, 0)), np.array([]), np.zeros((0, 0))

    for _ in range(max_sweeps):
        off = 0.0
        for p in range(n - 1):
            for q in range(p + 1, n):
                app = float(a[:, p] @ a[:, p])
                aqq = float(a[:, q] @ a[:, q])
                apq = float(a[:, p] @ a[:, q])
                scale = np.sqrt(app * aqq)
                if scale == 0.0 or abs(apq) <= tol * scale:
                    continue
                off = max(off, abs(apq) / scale)
                # Jacobi rotation that annihilates the (p, q) entry of A^T A.
                zeta = (aqq - app) / (2.0 * apq)
                t = np.sign(zeta) / (abs(zeta) + np.sqrt(1.0 + zeta * zeta))
                if zeta == 0.0:
                    t = 1.0
                c = 1.0 / np.sqrt(1.0 + t * t)
                s = c * t
                ap = a[:, p].copy()
                aq = a[:, q].copy()
                a[:, p] = c * ap - s * aq
                a[:, q] = s * ap + c * aq
                vp = v[:, p].copy()
                vq = v[:, q].copy()
                v[:, p] = c * vp - s * vq
                v[:, q] = s * vp + c * vq
        if off <= tol:
            break
    else:
        raise RuntimeError(f"one-sided Jacobi did not converge in {max_sweeps} sweeps")

    s = np.sqrt(np.sum(a * a, axis=0))
    order = np.argsort(s)[::-1]
    s = s[order]
    a = a[:, order]
    v = v[:, order]
    u = np.zeros((m, n))
    for j in range(n):
        if s[j] > 0:
            u[:, j] = a[:, j] / s[j]
        else:
            # Zero singular value: pick any unit vector orthogonal to the
            # previous columns (deterministic Gram-Schmidt on basis vectors).
            e = np.zeros(m)
            e[j % m] = 1.0
            for i in range(j):
                e -= (u[:, i] @ e) * u[:, i]
            norm = np.linalg.norm(e)
            u[:, j] = e / norm if norm > 0 else e
    return u, s, v.T
