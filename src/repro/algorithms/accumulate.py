"""Accumulation of the orthogonal factors of the tiled reduction.

When the GESVD driver needs singular vectors, the
:class:`~repro.algorithms.executor.NumericExecutor` is run with
``log_transformations=True`` and this module replays the logged compact-WY
reflectors onto identity matrices, producing the orthogonal factors
``U1`` (left) and ``V1`` (right) such that ``A = U1 · B_band · V1^T``.

The replay applies each block reflector only to the element rows / columns
it touches, so the cost is the same order as applying the reduction itself.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np

from repro.kernels.householder import apply_q_right
from repro.tiles.layout import TileLayout


def _row_indices(layout: TileLayout, tile_rows: Sequence[int]) -> np.ndarray:
    """Element row indices of the given tile rows, concatenated in order."""
    chunks = [np.arange(*layout.row_range(i)) for i in tile_rows]
    return np.concatenate(chunks)


def _col_indices(layout: TileLayout, tile_cols: Sequence[int]) -> np.ndarray:
    """Element column indices of the given tile columns, concatenated in order."""
    chunks = [np.arange(*layout.col_range(j)) for j in tile_cols]
    return np.concatenate(chunks)


def accumulate_orthogonal_factors(
    layout: TileLayout,
    transform_log: List[Tuple[str, str, Tuple[int, ...], object]],
) -> Tuple[np.ndarray, np.ndarray]:
    """Rebuild ``U1`` (``m x m``) and ``V1`` (``n x n``) from a transform log.

    ``transform_log`` is the list produced by
    :class:`~repro.algorithms.executor.NumericExecutor` when
    ``log_transformations=True``: tuples ``(side, kernel, indices,
    reflector)`` in application order.  The convention is
    ``B_band = U1^T · A · V1``  i.e.  ``A = U1 · B_band · V1^T``.
    """
    u = np.eye(layout.m)
    v = np.eye(layout.n)
    for side, kernel, idx, refl in transform_log:
        if side == "left":
            if kernel == "GEQRT":
                i, _k = idx
                rows = _row_indices(layout, [i])
            else:  # TSQRT / TTQRT: stacked (piv, i)
                piv, i, _k = idx
                rows = _row_indices(layout, [piv, i])
            # A := Q^T A on those rows, hence U := U Q restricted to the
            # corresponding columns of U.
            u[:, rows] = apply_q_right(refl.v, refl.t, u[:, rows])
        elif side == "right":
            if kernel == "GELQT":
                _k, j = idx
                cols = _col_indices(layout, [j])
            else:  # TSLQT / TTLQT: stacked (piv, j)
                piv, j, _k = idx
                cols = _col_indices(layout, [piv, j])
            # A := A Q_lq^T = A (I - V T V^T) on those columns, hence
            # V := V (I - V T V^T) on the same columns.
            v[:, cols] = apply_q_right(refl.v, refl.t, v[:, cols])
        else:  # pragma: no cover - defensive
            raise ValueError(f"unknown transformation side {side!r}")
    return u, v
