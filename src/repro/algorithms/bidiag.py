"""BIDIAG: tiled bidiagonalization (GE2BND, Section III-B).

The algorithm interleaves one QR step and one LQ step:

``QR(1); LQ(1); QR(2); LQ(2); ...; QR(q-1); LQ(q-1); QR(q)``

After completion the matrix is in *band bidiagonal* form: the only nonzero
tiles are the diagonal tiles ``(k, k)`` (upper triangular) and the
superdiagonal tiles ``(k, k+1)`` (lower triangular), i.e. an upper banded
matrix of element bandwidth ``nb``.
"""

from __future__ import annotations

from typing import Optional

from repro.algorithms.executor import KernelExecutor, NumericExecutor
from repro.algorithms.tiled_lq import lq_step
from repro.algorithms.tiled_qr import qr_step
from repro.tiles.matrix import TiledMatrix
from repro.trees import GreedyTree
from repro.trees.base import ReductionTree


def bidiag_ge2bnd(
    a: "TiledMatrix | KernelExecutor",
    qr_tree: Optional[ReductionTree] = None,
    lq_tree: Optional[ReductionTree] = None,
    *,
    n_cores: int = 1,
    grid_rows: int = 1,
    row_limit: Optional[int] = None,
    col_limit: Optional[int] = None,
    skip_first_qr: bool = False,
    check_plan: bool = False,
) -> "TiledMatrix | None":
    """Reduce a tiled matrix to band bidiagonal form (BIDIAG).

    Parameters
    ----------
    a:
        A :class:`TiledMatrix` (reduced in place and returned) or an
        executor (driven through; returns ``None``).
    qr_tree, lq_tree:
        Reduction trees for the QR and LQ steps; both default to GREEDY.
        Passing a single tree for both is the common case; the LQ tree may
        differ (the paper's distributed configuration uses symmetric trees).
    n_cores, grid_rows:
        Forwarded to the trees (AUTO / hierarchical need them).
    row_limit, col_limit:
        Restrict the reduction to the top-left tile block; used by R-BIDIAG
        to bidiagonalize the ``q x q`` R factor inside the original matrix.
    skip_first_qr:
        Skip the first QR step — correct only when tile column 0 is already
        reduced below the diagonal (the R-BIDIAG case).
    """
    if qr_tree is None:
        qr_tree = GreedyTree()
    if lq_tree is None:
        lq_tree = qr_tree
    if isinstance(a, TiledMatrix):
        executor: KernelExecutor = NumericExecutor(a)
        result: Optional[TiledMatrix] = a
    else:
        executor = a
        result = None

    p = executor.p if row_limit is None else row_limit
    q = executor.q if col_limit is None else col_limit
    if p < q:
        raise ValueError(
            f"BIDIAG expects p >= q tiles (tall or square), got {p}x{q}; "
            "transpose the matrix or use the LQ-first variant"
        )

    for k in range(q):
        if not (k == 0 and skip_first_qr):
            qr_step(
                executor,
                k,
                qr_tree,
                row_limit=p,
                col_limit=q,
                n_cores=n_cores,
                grid_rows=grid_rows,
                check_plan=check_plan,
            )
        if k < q - 1:
            lq_step(
                executor,
                k,
                lq_tree,
                row_limit=p,
                col_limit=q,
                n_cores=n_cores,
                grid_rows=grid_rows,
                check_plan=check_plan,
            )
    return result
