"""R-BIDIAG: R-bidiagonalization (Section III-C).

For tall-and-skinny matrices (``p`` much larger than ``q``) it is cheaper to
first compute a QR factorization of the whole matrix and then bidiagonalize
the ``q x q`` R factor:

``QR(p, q); LQ(1); QR(2); LQ(2); ...; LQ(q-1); QR(q)``

(the first QR step of the bidiagonalization is skipped because column 0 of
R is already reduced).  The flop counts are ``4 n^2 (m - n/3)`` for BIDIAG
versus ``2 n^2 (m + n)`` for R-BIDIAG, so R-BIDIAG performs fewer operations
as soon as ``m >= 5n/3``; the paper's contribution is to compare the two in
terms of *critical path* instead.
"""

from __future__ import annotations

from typing import Optional

from repro.algorithms.bidiag import bidiag_ge2bnd
from repro.algorithms.executor import KernelExecutor, NumericExecutor
from repro.algorithms.tiled_qr import tiled_qr
from repro.tiles.matrix import TiledMatrix
from repro.trees import GreedyTree
from repro.trees.base import ReductionTree


def rbidiag_ge2bnd(
    a: "TiledMatrix | KernelExecutor",
    qr_tree: Optional[ReductionTree] = None,
    lq_tree: Optional[ReductionTree] = None,
    *,
    prequr_tree: Optional[ReductionTree] = None,
    n_cores: int = 1,
    grid_rows: int = 1,
    check_plan: bool = False,
) -> "TiledMatrix | None":
    """Reduce a tiled matrix to band bidiagonal form via R-bidiagonalization.

    The whole computation happens inside the original matrix: after the
    preliminary QR, the band bidiagonal factor lives in the top-left
    ``q x q`` tile block (all other tiles are numerically zero), so the
    result can be consumed exactly like the output of
    :func:`~repro.algorithms.bidiag.bidiag_ge2bnd`.

    Parameters
    ----------
    prequr_tree:
        Tree for the preliminary ``QR(p, q)`` factorization; defaults to the
        same tree as ``qr_tree``.  Distributed configurations typically pick
        a hierarchical tree here.
    """
    if qr_tree is None:
        qr_tree = GreedyTree()
    if lq_tree is None:
        lq_tree = qr_tree
    if prequr_tree is None:
        prequr_tree = qr_tree
    if isinstance(a, TiledMatrix):
        executor: KernelExecutor = NumericExecutor(a)
        result: Optional[TiledMatrix] = a
    else:
        executor = a
        result = None

    p, q = executor.p, executor.q
    if p < q:
        raise ValueError(f"R-BIDIAG expects p >= q tiles, got {p}x{q}")

    # Phase 1: QR factorization of the whole p x q tile matrix.
    tiled_qr(
        executor,
        prequr_tree,
        n_cores=n_cores,
        grid_rows=grid_rows,
        check_plan=check_plan,
    )

    # Phase 2: bidiagonalization of the q x q R factor (first QR step skipped:
    # tile column 0 is already reduced by phase 1).
    bidiag_ge2bnd(
        executor,
        qr_tree,
        lq_tree,
        n_cores=n_cores,
        grid_rows=grid_rows,
        row_limit=q,
        col_limit=q,
        skip_first_qr=True,
        check_plan=check_plan,
    )
    return result
