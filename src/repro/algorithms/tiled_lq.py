"""Tiled LQ factorization (Algorithm 2 of the paper, used by BIDIAG).

``lq_step(k)`` performs the column-oriented eliminations
``col-elim(j, piv(j, k), k)`` that zero the tiles to the right of the
superdiagonal in tile row ``k`` and update the tile rows below.
"""

from __future__ import annotations

from typing import Optional

from repro.algorithms.executor import KernelExecutor, NumericExecutor
from repro.tiles.matrix import TiledMatrix
from repro.trees import FlatTSTree
from repro.trees.base import PanelContext, ReductionTree, validate_plan


def lq_step(
    executor: KernelExecutor,
    k: int,
    tree: ReductionTree,
    *,
    row_limit: Optional[int] = None,
    col_limit: Optional[int] = None,
    n_cores: int = 1,
    grid_rows: int = 1,
    check_plan: bool = False,
    first_col: Optional[int] = None,
) -> None:
    """One LQ panel step ``LQ(k)``.

    By default (``first_col=None``) the step reduces tile row ``k`` starting
    at column ``k + 1`` — the superdiagonal stays, which is what the
    bidiagonalization needs.  A standalone LQ factorization passes
    ``first_col=k`` to reduce starting at the diagonal.
    """
    p = executor.p if row_limit is None else row_limit
    q = executor.q if col_limit is None else col_limit
    start = (k + 1) if first_col is None else first_col
    if not (0 <= k < p):
        raise ValueError(f"LQ step {k} out of range for a {p}x{q} tile matrix")
    cols = q - start
    if cols <= 0:
        return
    rows_remaining = p - k - 1
    ctx = PanelContext(
        rows=cols,
        cols_remaining=rows_remaining,
        row_offset=start,
        n_cores=n_cores,
        grid_rows=grid_rows,
    )
    plan = tree.plan(ctx)
    if check_plan:
        validate_plan(plan, cols)

    # Triangularize (lower) the required columns and update the rows below.
    for local in plan.geqrt_rows:
        j = start + local
        executor.gelqt(k, j)
        for i in range(k + 1, p):
            executor.unmlq(k, j, i)

    # Column eliminations and the corresponding pair updates.
    for e in plan.eliminations:
        piv = start + e.killer
        j = start + e.killed
        if e.use_tt:
            executor.ttlqt(piv, j, k)
            for i in range(k + 1, p):
                executor.ttmlq(piv, j, k, i)
        else:
            executor.tslqt(piv, j, k)
            for i in range(k + 1, p):
                executor.tsmlq(piv, j, k, i)


def tiled_lq(
    a: "TiledMatrix | KernelExecutor",
    tree: Optional[ReductionTree] = None,
    *,
    n_cores: int = 1,
    grid_rows: int = 1,
    check_plan: bool = False,
) -> "TiledMatrix | None":
    """Full tiled LQ factorization ``A = L Q`` (in place when given a matrix).

    The matrix ends lower trapezoidal: its strictly-upper tiles are zero.
    """
    if tree is None:
        tree = FlatTSTree()
    if isinstance(a, TiledMatrix):
        executor: KernelExecutor = NumericExecutor(a)
        result: Optional[TiledMatrix] = a
    else:
        executor = a
        result = None
    steps = min(executor.p, executor.q)
    for k in range(steps):
        lq_step(
            executor,
            k,
            tree,
            n_cores=n_cores,
            grid_rows=grid_rows,
            check_plan=check_plan,
            first_col=k,
        )
    return result
