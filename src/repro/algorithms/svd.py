"""High-level SVD drivers: GE2BND, GE2VAL and GESVD.

These are the user-facing entry points of the numeric layer.  They follow
the paper's pipeline:

* **GE2BND** — tiled reduction to band bidiagonal form, either BIDIAG or
  R-BIDIAG, with any reduction tree;
* **GE2VAL** — GE2BND + BND2BD (bulge chasing) + BD2VAL (bidiagonal QR
  iteration): singular values only;
* **GESVD** — singular values *and* vectors: GE2BND with transformation
  logging, accumulation of the band factors, and a one-sided Jacobi SVD of
  the remaining small square factor.

Argument canonicalization (tile size defaults, tree names, Chan's
BIDIAG/R-BIDIAG crossover) lives in :mod:`repro.api.resolver`; these
drivers are thin wrappers kept for backwards compatibility with the
pre-plan API.  New code should prefer :func:`repro.api.execute` with an
:class:`~repro.api.plan.SvdPlan`.
"""

from __future__ import annotations

from typing import Optional, Tuple, Union

import numpy as np

from repro.algorithms.accumulate import accumulate_orthogonal_factors
from repro.algorithms.band import BandBidiagonal, extract_band
from repro.algorithms.bd2val import bidiagonal_singular_values
from repro.algorithms.bnd2bd import band_to_bidiagonal
from repro.algorithms.executor import NumericExecutor
from repro.algorithms.jacobi import jacobi_svd
from repro.api.resolver import as_tiled, chan_prefers_rbidiag, resolve_tree
from repro.config import Config
from repro.tiles.matrix import TiledMatrix
from repro.trees.base import ReductionTree

ArrayOrTiled = Union[np.ndarray, TiledMatrix]


def _as_tiled(
    a: ArrayOrTiled, tile_size: Optional[int], config: Optional[Config] = None
) -> TiledMatrix:
    return as_tiled(a, tile_size, config)


def _resolve_tree(
    tree: Union[str, ReductionTree, None],
    n_cores: int,
    config: Optional[Config] = None,
) -> ReductionTree:
    return resolve_tree(tree, n_cores=n_cores, config=config)


def _choose_variant(variant: str, p: int, q: int) -> str:
    """Resolve ``variant='auto'`` using Chan's flop crossover ``m >= 5n/3``.

    At the tile level the crossover translates to ``p >= 5q/3``; below it
    BIDIAG performs fewer flops, above it R-BIDIAG does.  Kept tile-level
    for bitwise compatibility with the pre-plan drivers; the plan API
    resolves ``auto`` on element dimensions instead, which can disagree
    for shapes right at the boundary (see
    :func:`repro.api.resolver.chan_prefers_rbidiag`).
    """
    if variant != "auto":
        return variant
    return "rbidiag" if chan_prefers_rbidiag(p, q) else "bidiag"


def ge2bnd(
    a: ArrayOrTiled,
    *,
    tile_size: Optional[int] = None,
    tree: Union[str, ReductionTree, None] = None,
    variant: str = "auto",
    n_cores: int = 1,
    log_transformations: bool = False,
    config: Optional[Config] = None,
) -> Tuple[BandBidiagonal, TiledMatrix, NumericExecutor]:
    """Reduce ``a`` to band bidiagonal form (GE2BND).

    Parameters
    ----------
    a:
        Dense ``m x n`` array (``m >= n``) or an already tiled matrix.
    tile_size:
        Tile size ``nb`` used when tiling a dense input; ``None`` uses the
        config-driven default (``Config.tile_size`` capped so small
        matrices stay multi-tile).
    tree:
        Reduction tree (name or instance); default GREEDY.
    variant:
        ``"bidiag"``, ``"rbidiag"`` or ``"auto"`` (Chan's ``m >= 5n/3``
        flop crossover decides).
    n_cores:
        Only forwarded to the AUTO tree's parallelism heuristic.
    log_transformations:
        Keep the orthogonal transformations for later accumulation (GESVD).
    config:
        Optional :class:`~repro.config.Config`; ``None`` means
        :data:`repro.config.default_config`.

    Returns
    -------
    (band, matrix, executor):
        The packed band, the reduced tiled matrix and the executor (which
        carries the transformation log when requested).
    """
    matrix = _as_tiled(a, tile_size, config)
    if matrix.m < matrix.n:
        raise ValueError(
            f"GE2BND expects m >= n, got {matrix.m}x{matrix.n}; pass the transpose"
        )
    tree_obj = _resolve_tree(tree, n_cores, config)
    variant = _choose_variant(variant.lower(), matrix.p, matrix.q)
    if variant not in ("bidiag", "rbidiag"):
        raise ValueError(f"unknown variant {variant!r} (use 'bidiag', 'rbidiag' or 'auto')")
    # The numeric executor interprets the compiled Program: the op stream
    # comes from the shared program cache (repro.ir), so the kernels applied
    # here are, by construction, exactly the tasks the DAG analyses and the
    # runtime simulation consume for the same configuration.  Replay order
    # is the drivers' sequential order, so results are bit-identical to
    # driving the executor directly.
    from repro.ir import get_program, replay

    executor = NumericExecutor(matrix, log_transformations=log_transformations)
    program = get_program(variant, matrix.p, matrix.q, tree_obj, n_cores=n_cores)
    replay(program, executor)
    band = extract_band(matrix)
    return band, matrix, executor


def ge2val(
    a: ArrayOrTiled,
    *,
    tile_size: Optional[int] = None,
    tree: Union[str, ReductionTree, None] = None,
    variant: str = "auto",
    n_cores: int = 1,
    config: Optional[Config] = None,
) -> np.ndarray:
    """Singular values of ``a`` via the full tiled pipeline.

    GE2BND (BIDIAG or R-BIDIAG) → BND2BD (bulge chasing) → BD2VAL
    (bidiagonal QR iteration).  Returns the singular values in descending
    order.
    """
    band, _matrix, _executor = ge2bnd(
        a, tile_size=tile_size, tree=tree, variant=variant, n_cores=n_cores,
        config=config,
    )
    d, e = band_to_bidiagonal(band)
    return bidiagonal_singular_values(d, e)


def gesvd(
    a: ArrayOrTiled,
    *,
    tile_size: Optional[int] = None,
    tree: Union[str, ReductionTree, None] = None,
    variant: str = "auto",
    n_cores: int = 1,
    config: Optional[Config] = None,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Full SVD ``a = U diag(s) V^T`` using the tiled reduction.

    The tiled GE2BND stage is run with transformation logging; the logged
    reflectors are accumulated into the band factors ``U1`` / ``V1`` and the
    remaining small ``n x n`` band matrix is decomposed with a one-sided
    Jacobi SVD.  Returns ``(u, s, vt)`` with ``u`` of shape ``m x n``,
    ``s`` descending and ``vt`` of shape ``n x n``.
    """
    band, matrix, executor = ge2bnd(
        a,
        tile_size=tile_size,
        tree=tree,
        variant=variant,
        n_cores=n_cores,
        log_transformations=True,
        config=config,
    )
    u1, v1 = accumulate_orthogonal_factors(matrix.layout, executor.transform_log)
    n = matrix.n
    u2, s, v2t = jacobi_svd(band.to_dense())
    u = u1[:, :n] @ u2
    vt = v2t @ v1.T
    return u, s, vt
