"""Tiled algorithms: QR, LQ, BIDIAG, R-BIDIAG, BND2BD, BD2VAL and SVD drivers."""

from repro.algorithms.executor import KernelExecutor, NumericExecutor, MultiExecutor
from repro.algorithms.tiled_qr import tiled_qr, qr_step
from repro.algorithms.tiled_lq import tiled_lq, lq_step
from repro.algorithms.bidiag import bidiag_ge2bnd
from repro.algorithms.rbidiag import rbidiag_ge2bnd
from repro.algorithms.band import BandBidiagonal, extract_band
from repro.algorithms.ge2bd import golub_kahan_bidiagonalization
from repro.algorithms.bnd2bd import band_to_bidiagonal
from repro.algorithms.bd2val import bidiagonal_singular_values, bidiagonal_sv_bisection
from repro.algorithms.svd import ge2bnd, ge2val, gesvd

__all__ = [
    "KernelExecutor",
    "NumericExecutor",
    "MultiExecutor",
    "tiled_qr",
    "qr_step",
    "tiled_lq",
    "lq_step",
    "bidiag_ge2bnd",
    "rbidiag_ge2bnd",
    "BandBidiagonal",
    "extract_band",
    "golub_kahan_bidiagonalization",
    "band_to_bidiagonal",
    "bidiagonal_singular_values",
    "bidiagonal_sv_bisection",
    "ge2bnd",
    "ge2val",
    "gesvd",
]
