"""Backend dispatch: run one plan through one lens of the paper.

``execute(plan, backend=...)`` resolves the plan once and hands the
resolved form to one of three backends:

* ``"numeric"``  — the exact tiled Householder pipeline (GE2BND /
  GE2VAL / GESVD), with per-stage wall-clock timings and accuracy
  against ``numpy.linalg.svd``;
* ``"dag"``      — the critical-path engine, interpreting the compiled
  :class:`~repro.ir.program.Program`; reports task counts, per-kernel
  counts and the critical path in Table-I units;
* ``"simulate"`` — the event-driven runtime engine replaying the same
  compiled program under the plan's scheduling policy; reports simulated
  time, GFlop/s, task and message counts.

All three backends resolve their op stream through the shared in-process
program cache (:data:`repro.ir.compiler.PROGRAM_CACHE`), so a sweep traces
each DAG shape once, no matter how many candidates consume it.

Backend modules are imported lazily so that importing :mod:`repro.api`
stays cheap and free of import cycles.
"""

from __future__ import annotations

import time
from collections import Counter
from contextlib import nullcontext
from typing import TYPE_CHECKING, Dict, Iterable, List, Optional, Union

import numpy as np

from repro.api.plan import SvdPlan
from repro.api.resolver import ResolvedPlan, resolve
from repro.api.result import RunResult
from repro.config import Config
from repro.obs.metrics import REGISTRY
from repro.obs.profile import profiled

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs.tracer import Tracer

#: Names accepted by :func:`execute`.
BACKENDS = ("numeric", "dag", "simulate")


def _base_result(resolved: ResolvedPlan, backend: str) -> RunResult:
    plan = resolved.plan
    return RunResult(
        backend=backend,
        plan=plan,
        stage=resolved.stage,
        variant=resolved.variant,
        tree=resolved.tree_name,
        m=resolved.m,
        n=resolved.n,
        p=resolved.p,
        q=resolved.q,
        tile_size=resolved.tile_size,
        n_cores=plan.n_cores,
        n_nodes=plan.n_nodes,
        grid=f"{resolved.grid.rows}x{resolved.grid.cols}",
        machine=plan.machine,
    )


# --------------------------------------------------------------------------- #
# Numeric backend
# --------------------------------------------------------------------------- #
def _execute_numeric(resolved: ResolvedPlan) -> RunResult:
    from repro.algorithms.bd2val import bidiagonal_singular_values
    from repro.algorithms.bnd2bd import band_to_bidiagonal
    from repro.algorithms.gesvd_pipeline import gesvd_two_stage
    from repro.algorithms.svd import ge2bnd

    result = _base_result(resolved, "numeric")
    plan = resolved.plan
    tiled = resolved.build_tiled()

    if resolved.stage == "gesvd":
        gres = gesvd_two_stage(
            tiled,
            tree=resolved.tree,
            variant=resolved.variant,
            n_cores=plan.n_cores,
        )
        result.stage_seconds = dict(gres.stage_seconds)
        result.singular_values = gres.singular_values
        result.u = gres.u
        result.vt = gres.vt
    else:
        t0 = time.perf_counter()
        band, _matrix, _executor = ge2bnd(
            tiled,
            tree=resolved.tree,
            variant=resolved.variant,
            n_cores=plan.n_cores,
        )
        result.stage_seconds["ge2bnd"] = time.perf_counter() - t0
        result.extras["band"] = band
        if resolved.stage == "ge2val":
            t0 = time.perf_counter()
            d, e = band_to_bidiagonal(band)
            result.stage_seconds["bnd2bd"] = time.perf_counter() - t0
            t0 = time.perf_counter()
            result.singular_values = bidiagonal_singular_values(d, e)
            result.stage_seconds["bd2val"] = time.perf_counter() - t0

    result.time_seconds = sum(result.stage_seconds.values())
    if result.singular_values is not None:
        dense = tiled.to_dense()
        ref = np.linalg.svd(dense, compute_uv=False)
        scale = ref[0] if ref[0] > 0 else 1.0
        result.max_rel_error = float(
            np.max(np.abs(result.singular_values - ref)) / scale
        )
    return result


# --------------------------------------------------------------------------- #
# DAG backend
# --------------------------------------------------------------------------- #
def _execute_dag(resolved: ResolvedPlan) -> RunResult:
    from repro.ir import get_program

    if resolved.stage == "gesvd":
        raise ValueError(
            "stage 'gesvd' is only supported by the 'numeric' backend "
            "(the DAG tracer covers the tiled GE2BND stage)"
        )
    plan = resolved.plan
    # The DAG backend is a Program interpreter: the critical-path engine
    # reads the same compiled op stream (shared in-process cache) that the
    # numeric executor replays and the simulation engine schedules.
    program = get_program(
        resolved.variant,
        resolved.p,
        resolved.q,
        resolved.tree,
        n_cores=plan.n_cores,
        grid_rows=resolved.grid.rows,
    )
    result = _base_result(resolved, "dag")
    result.n_tasks = len(program)
    result.critical_path = program.critical_path()
    result.extras["n_edges"] = program.n_edges
    result.extras["kernel_counts"] = dict(
        Counter(op.kernel.name for op in program.ops)
    )
    if resolved.stage == "ge2val":
        result.extras["note"] = (
            "DAG covers the tiled GE2BND stage; BND2BD/BD2VAL are not tiled"
        )
    return result


# --------------------------------------------------------------------------- #
# Simulation backend
# --------------------------------------------------------------------------- #
def _simulate_run_result(resolved: ResolvedPlan, sim) -> RunResult:
    """Fold one :class:`~repro.runtime.simulator.SimulationResult` into a
    :class:`RunResult` (shared by the per-plan and batched sweep paths)."""
    result = _base_result(resolved, "simulate")
    result.policy = sim.policy
    result.network = sim.network
    result.scenario = sim.scenario
    result.distribution = sim.distribution
    result.time_seconds = sim.time_seconds
    result.gflops = sim.gflops
    result.n_tasks = sim.n_tasks
    result.messages = sim.messages
    result.comm_bytes = sim.comm_bytes
    result.comm_seconds = sim.comm_seconds
    result.stage_seconds["ge2bnd"] = sim.ge2bnd_seconds
    if resolved.stage == "ge2val":
        result.stage_seconds["post"] = sim.post_seconds
    if sim.schedule is not None:
        from repro.obs.metrics import run_metrics
        from repro.obs.tracer import current_tracer

        # The cache-delta slot is filled by execute()'s registry bracket,
        # which also covers plan resolution and program compilation.
        result.metrics = run_metrics(
            sim.schedule, resolved.machine, tracer=current_tracer()
        )
    return result


def _execute_simulate(resolved: ResolvedPlan) -> RunResult:
    from repro.runtime.simulator import simulate_ge2bnd, simulate_ge2val

    if resolved.stage == "gesvd":
        raise ValueError(
            "stage 'gesvd' is only supported by the 'numeric' backend "
            "(the simulator models GE2BND and GE2VAL)"
        )
    simulate = simulate_ge2bnd if resolved.stage == "ge2bnd" else simulate_ge2val
    sim = simulate(
        resolved.m,
        resolved.n,
        resolved.machine,
        tree=resolved.tree,
        algorithm=resolved.variant,
        grid=resolved.grid,
        policy=resolved.plan.policy,
        network=resolved.plan.network,
        scenario=resolved.scenario,
        draws=resolved.draws,
        seed=resolved.plan.seed,
    )
    return _simulate_run_result(resolved, sim)


_BACKEND_FNS = {
    "numeric": _execute_numeric,
    "dag": _execute_dag,
    "simulate": _execute_simulate,
}


def _resolve_tracer(
    trace: Union[bool, "Tracer", None], plan: SvdPlan
) -> Optional["Tracer"]:
    """Resolve the effective tracer for one ``execute`` call.

    Precedence: an explicit ``trace`` argument (``False`` forces tracing
    off, ``True`` makes a fresh tracer, a :class:`~repro.obs.tracer.Tracer`
    instance is used as-is and accumulates across calls) beats the plan's
    ``trace`` flag, which beats the ``REPRO_TRACE`` environment gate.
    """
    from repro.obs.tracer import Tracer, trace_enabled

    if trace is None:
        trace = bool(plan.trace) or trace_enabled()
    if trace is False:
        return None
    if trace is True:
        return Tracer()
    return trace


def execute(
    plan: Union[SvdPlan, ResolvedPlan],
    backend: str = "numeric",
    *,
    config: Optional[Config] = None,
    trace: Union[bool, "Tracer", None] = None,
) -> RunResult:
    """Run one plan through one backend and return a :class:`RunResult`.

    Accepts either a declarative :class:`SvdPlan` (resolved here) or an
    already-:class:`ResolvedPlan` (useful to amortize resolution across
    backends of the same plan).

    ``trace`` opts into execution tracing (see :mod:`repro.obs`): ``True``
    records into a fresh :class:`~repro.obs.tracer.Tracer`, an explicit
    tracer instance accumulates multiple runs, ``False`` forces tracing
    off, and ``None`` (default) defers to ``plan.trace`` and then the
    ``REPRO_TRACE`` environment variable.  The tracer, when active, is
    attached to ``RunResult.trace``; every call also attaches the per-run
    cache counters (and, for the simulate backend, utilization and
    communication statistics) to ``RunResult.metrics``.
    """
    name = backend.strip().lower()
    try:
        fn = _BACKEND_FNS[name]
    except KeyError:
        raise ValueError(
            f"unknown backend {backend!r}; choose from {BACKENDS}"
        ) from None
    source_plan = plan.plan if isinstance(plan, ResolvedPlan) else plan
    tracer = _resolve_tracer(trace, source_plan)
    before = REGISTRY.snapshot()
    ambient = tracer.activate() if tracer is not None else nullcontext()
    with ambient, profiled(f"execute.{name}"):
        resolved = (
            plan if isinstance(plan, ResolvedPlan) else resolve(plan, config=config)
        )
        result = fn(resolved)
    cache_delta = REGISTRY.delta_since(before)
    if result.metrics is None:
        result.metrics = {"cache": cache_delta}
    else:
        result.metrics["cache"] = cache_delta
    result.trace = tracer
    return result


def _execute_sweep_batched(
    plans: List[Union[SvdPlan, ResolvedPlan]],
    *,
    config: Optional[Config],
) -> Optional[List[Dict[str, object]]]:
    """Batched simulate-backend sweep, or ``None`` to use the per-plan path.

    All candidates go through one vectorized engine pass
    (:func:`repro.runtime.batch.simulate_resolved_batch`), which shares
    the compiled program, duration/owner/rank vectors and deduplicated
    schedules across the sweep; the returned rows are identical to
    per-plan ``execute(plan, "simulate").to_row()`` calls.  Falls back
    (returns ``None``) when any plan requests execution tracing — batched
    replays carry no per-task traces.
    """
    from repro.obs.tracer import trace_enabled
    from repro.runtime.batch import simulate_resolved_batch

    source_plans = [p.plan if isinstance(p, ResolvedPlan) else p for p in plans]
    if trace_enabled() or any(plan.trace for plan in source_plans):
        return None
    with profiled("execute.sweep"):
        resolved = [
            plan
            if isinstance(plan, ResolvedPlan)
            else resolve(plan, config=config)
            for plan in plans
        ]
        outcomes = simulate_resolved_batch(resolved, objective=None, prune=False)
        rows = []
        for rp, outcome in zip(resolved, outcomes):
            if outcome.exception is not None:
                # Match the per-plan path, which raises at the first
                # failing plan (in sweep order).
                raise outcome.exception
            rows.append(_simulate_run_result(rp, outcome.result).to_row())
    return rows


def execute_sweep(
    plans: Iterable[Union[SvdPlan, ResolvedPlan]],
    backend: str = "simulate",
    *,
    config: Optional[Config] = None,
    batch: Optional[bool] = None,
) -> List[Dict[str, object]]:
    """Execute a list of plans (e.g. from :meth:`SvdPlan.sweep`) and return
    the flattened result rows — the surface experiment tables build on.

    ``batch`` (default ``None`` = auto) routes simulate-backend sweeps of
    more than one plan through the batch engine
    (:mod:`repro.runtime.batch`): one vectorized pass over all candidates
    with bit-identical rows.  ``False`` forces per-plan execution; other
    backends (and sweeps that request tracing) always run per plan.
    """
    plans = list(plans)
    name = backend.strip().lower()
    if batch is not False and name == "simulate" and len(plans) > 1:
        rows = _execute_sweep_batched(plans, config=config)
        if rows is not None:
            return rows
    return [execute(plan, backend, config=config).to_row() for plan in plans]
