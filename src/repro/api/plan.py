"""Declarative SVD plans.

An :class:`SvdPlan` captures *what* to run — problem (shape or explicit
matrix), pipeline stage, algorithmic variant, reduction tree, tile size and
machine — independently of *how* it is evaluated.  The same plan can be
handed to :func:`repro.api.execute` with any of the three backends the
paper uses to study the pipeline:

* ``"numeric"``  — the exact tiled Householder kernels (singular values /
  vectors, accuracy vs ``numpy.linalg.svd``);
* ``"dag"``      — the task-graph tracer and critical-path engine
  (Section IV of the paper);
* ``"simulate"`` — the PaRSEC-like runtime simulator (Sections V-VI).

Plans are immutable; derive variations with :meth:`SvdPlan.with_` and
parameter grids with :meth:`SvdPlan.sweep`.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field, fields, replace
from typing import Dict, Iterable, List, Optional, Tuple, Union

import numpy as np

from repro.config import PRESETS, Config
from repro.tiles.matrix import TiledMatrix
from repro.trees import TREE_REGISTRY
from repro.trees.base import ReductionTree

#: Pipeline stages a plan can request.
STAGES = ("ge2bnd", "ge2val", "gesvd")

#: Algorithmic variants (``auto`` resolves via Chan's ``m >= 5n/3`` crossover).
VARIANTS = ("auto", "bidiag", "rbidiag")

ArrayOrTiled = Union[np.ndarray, TiledMatrix]


@dataclass(frozen=True)
class SvdPlan:
    """One fully-described SVD problem + configuration.

    Parameters
    ----------
    m, n:
        Element-wise matrix dimensions (``m >= n``).  Required unless
        ``matrix`` is given, in which case they are derived from it.
    matrix:
        Optional explicit input (dense array or :class:`TiledMatrix`).
        When omitted, the numeric backend generates a seeded standard
        normal ``m x n`` matrix.
    stage:
        ``"ge2bnd"`` (band reduction only), ``"ge2val"`` (singular values)
        or ``"gesvd"`` (values and vectors; numeric backend only).
    variant:
        ``"bidiag"``, ``"rbidiag"`` or ``"auto"`` (Chan crossover).
    tree:
        Reduction-tree name (see :data:`repro.trees.TREE_REGISTRY`), an
        explicit :class:`~repro.trees.base.ReductionTree`, or ``None`` for
        the GREEDY default.
    tile_size:
        Tile size ``nb``; ``None`` defers to the resolver's config-driven
        default (``Config.tile_size`` capped so small matrices stay
        multi-tile); the string ``"auto"`` asks the autotuner
        (:mod:`repro.tuning`) to pick the best tile size for this problem
        through the persistent plan cache.
    n_cores:
        Cores per node: the AUTO tree's parallelism hint for the numeric /
        DAG backends, and the per-node core count for the simulator.
    n_nodes:
        Node count (distributed simulation / DAG; the numeric backend is
        shared-memory).
    grid:
        Optional explicit process-grid shape ``(rows, cols)`` with
        ``rows * cols == n_nodes``; ``None`` uses the paper's default for
        the tile shape (near-square grid, or ``nodes x 1`` when tall and
        skinny).
    machine:
        Machine preset name (see :data:`repro.config.PRESETS`).
    policy:
        Scheduling policy name for the simulation engine (see
        :data:`repro.runtime.policies.POLICIES`); the default ``"list"``
        reproduces the legacy list scheduler exactly.  Ignored by the
        numeric and DAG backends.
    network:
        Communication-model fidelity for the simulation engine (see
        :data:`repro.runtime.network.NETWORK_MODELS`); the default
        ``"uniform"`` reproduces the legacy flat-cost model exactly,
        ``"alpha-beta"`` prices each message with latency + bandwidth and
        serialized NIC injection.  Ignored by the numeric and DAG backends.
    scenario:
        Machine-realism scenario for the simulation engine: a registered
        name (see :data:`repro.runtime.scenario.SCENARIOS`), an explicit
        :class:`~repro.runtime.scenario.Scenario`, or ``None`` for the
        ideal deterministic machine.  Stochastic scenarios attach a
        Monte-Carlo :class:`~repro.runtime.scenario.MakespanDistribution`
        to the result.  Ignored by the numeric and DAG backends.
    draws:
        Monte-Carlo draw count override for stochastic scenarios
        (``None`` defers to the scenario's own default).
    seed:
        Seed of the generated input matrix when ``matrix`` is omitted,
        and of the Monte-Carlo draws when a stochastic scenario runs.
    config:
        Optional :class:`~repro.config.Config` override; ``None`` means
        :data:`repro.config.default_config`.
    trace:
        Record an execution trace while this plan runs (see
        :mod:`repro.obs`): phase spans plus, for the simulate backend,
        per-task / per-transfer events; the tracer lands on
        ``RunResult.trace``.  Equivalent to ``execute(..., trace=True)``
        or the ``REPRO_TRACE=1`` environment gate.  Excluded from plan
        equality — tracing never changes what a plan computes.
    """

    m: Optional[int] = None
    n: Optional[int] = None
    matrix: Optional[ArrayOrTiled] = field(default=None, compare=False, repr=False)
    stage: str = "ge2val"
    variant: str = "auto"
    tree: Union[str, ReductionTree, None] = None
    tile_size: Union[int, str, None] = None
    n_cores: int = 1
    n_nodes: int = 1
    grid: Optional[Tuple[int, int]] = None
    machine: str = "miriel"
    policy: str = "list"
    network: str = "uniform"
    scenario: Union[str, object, None] = None
    draws: Optional[int] = None
    seed: int = 0
    config: Optional[Config] = None
    trace: bool = field(default=False, compare=False)

    def __post_init__(self) -> None:
        object.__setattr__(self, "trace", bool(self.trace))
        object.__setattr__(self, "stage", str(self.stage).lower())
        object.__setattr__(self, "variant", str(self.variant).lower())
        if self.stage not in STAGES:
            raise ValueError(f"unknown stage {self.stage!r}; choose from {STAGES}")
        if self.variant not in VARIANTS:
            raise ValueError(f"unknown variant {self.variant!r}; choose from {VARIANTS}")
        if self.matrix is not None:
            shape = self.matrix.shape
            if len(shape) != 2:
                raise ValueError("matrix must be 2-D")
            m, n = int(shape[0]), int(shape[1])
            if self.m is not None and self.m != m:
                raise ValueError(f"m={self.m} disagrees with matrix shape {shape}")
            if self.n is not None and self.n != n:
                raise ValueError(f"n={self.n} disagrees with matrix shape {shape}")
            object.__setattr__(self, "m", m)
            object.__setattr__(self, "n", n)
        if self.m is None or self.n is None:
            raise ValueError("either (m, n) or an explicit matrix is required")
        if self.m < 1 or self.n < 1:
            raise ValueError(f"matrix dimensions must be >= 1, got {self.m}x{self.n}")
        if self.m < self.n:
            raise ValueError(
                f"expected m >= n, got {self.m}x{self.n}; pass the transpose"
            )
        if isinstance(self.tree, str) and self.tree.strip().lower() not in TREE_REGISTRY:
            raise ValueError(
                f"unknown reduction tree {self.tree!r}; available: {sorted(TREE_REGISTRY)}"
            )
        if isinstance(self.tile_size, str):
            if self.tile_size.strip().lower() != "auto":
                raise ValueError(
                    f"tile_size must be an integer, 'auto' or None, got {self.tile_size!r}"
                )
            object.__setattr__(self, "tile_size", "auto")
        elif self.tile_size is not None and self.tile_size < 1:
            raise ValueError(f"tile_size must be >= 1, got {self.tile_size}")
        if self.n_cores < 1:
            raise ValueError(f"n_cores must be >= 1, got {self.n_cores}")
        if self.n_nodes < 1:
            raise ValueError(f"n_nodes must be >= 1, got {self.n_nodes}")
        if self.grid is not None:
            grid = tuple(int(x) for x in self.grid)
            if len(grid) != 2 or grid[0] < 1 or grid[1] < 1:
                raise ValueError(
                    f"grid must be a (rows, cols) pair of positive ints, got {self.grid!r}"
                )
            if grid[0] * grid[1] != self.n_nodes:
                raise ValueError(
                    f"grid {grid[0]}x{grid[1]} does not cover n_nodes={self.n_nodes}"
                )
            object.__setattr__(self, "grid", grid)
        if self.machine not in PRESETS:
            raise ValueError(
                f"unknown machine preset {self.machine!r}; known presets: {sorted(PRESETS)}"
            )
        # Imported lazily: repro.runtime builds on lower layers only.
        from repro.runtime.network import NETWORK_MODELS
        from repro.runtime.policies import POLICIES

        object.__setattr__(self, "policy", str(self.policy).strip().lower())
        if self.policy not in POLICIES:
            raise ValueError(
                f"unknown scheduling policy {self.policy!r}; available: {sorted(POLICIES)}"
            )
        object.__setattr__(self, "network", str(self.network).strip().lower())
        if self.network not in NETWORK_MODELS:
            raise ValueError(
                f"unknown network model {self.network!r}; "
                f"available: {sorted(NETWORK_MODELS)}"
            )
        if self.scenario is not None:
            from repro.runtime.scenario import get_scenario

            object.__setattr__(self, "scenario", get_scenario(self.scenario))
        if self.draws is not None:
            draws = int(self.draws)
            if draws < 1:
                raise ValueError(f"draws must be >= 1, got {self.draws}")
            object.__setattr__(self, "draws", draws)

    # ------------------------------------------------------------------ #
    # Derivation helpers
    # ------------------------------------------------------------------ #
    def with_(self, **changes) -> "SvdPlan":
        """Copy of this plan with some fields replaced."""
        return replace(self, **changes)

    def sweep(self, **grids: Iterable[object]) -> List["SvdPlan"]:
        """Cartesian product of field overrides, as a list of plans.

        >>> base = SvdPlan(m=4000, n=4000, stage="ge2bnd", n_cores=24)
        >>> plans = base.sweep(tree=["flatts", "greedy"], n_nodes=[1, 4])
        >>> len(plans)
        4

        Every keyword must name a plan field and map to an iterable of
        values; fields not named keep this plan's value.  The grid is
        enumerated with the last keyword varying fastest, which gives
        stable, predictable row ordering for experiment tables.
        """
        valid = {f.name for f in fields(self)}
        unknown = set(grids) - valid
        if unknown:
            raise ValueError(f"unknown plan field(s) in sweep: {sorted(unknown)}")
        names = list(grids)
        value_lists = [list(grids[name]) for name in names]
        for name, values in zip(names, value_lists):
            if not values:
                raise ValueError(f"sweep grid for {name!r} is empty")
        return [
            self.with_(**dict(zip(names, combo)))
            for combo in itertools.product(*value_lists)
        ]

    def describe(self) -> Dict[str, object]:
        """Scalar summary of the plan (for tables / JSON rows)."""
        tree = self.tree
        if isinstance(tree, ReductionTree):
            tree = getattr(tree, "name", type(tree).__name__)
        return {
            "m": self.m,
            "n": self.n,
            "stage": self.stage,
            "variant": self.variant,
            "tree": tree if tree is not None else "greedy",
            "tile_size": self.tile_size,
            "n_cores": self.n_cores,
            "n_nodes": self.n_nodes,
            "grid": f"{self.grid[0]}x{self.grid[1]}" if self.grid else None,
            "machine": self.machine,
            "policy": self.policy,
            "network": self.network,
            "scenario": getattr(self.scenario, "name", None),
            "draws": self.draws,
            "seed": self.seed,
        }
