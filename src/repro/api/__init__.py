"""Unified plan-driven API.

One declarative :class:`SvdPlan` drives all three lenses the paper uses to
study the GE2BND → BND2BD → BD2VAL pipeline:

>>> from repro.api import SvdPlan, execute
>>> plan = SvdPlan(m=48, n=32, tile_size=8, stage="ge2val", tree="greedy")
>>> numeric = execute(plan, backend="numeric")   # exact singular values
>>> dag = execute(plan, backend="dag")           # task graph + critical path
>>> sim = execute(plan, backend="simulate")      # runtime simulation

All backends return a :class:`RunResult`; plan grids for experiment sweeps
come from :meth:`SvdPlan.sweep` and run through :func:`execute_sweep`.
"""

from typing import TYPE_CHECKING, Any

from repro.api.plan import STAGES, VARIANTS, SvdPlan
from repro.api.resolver import (
    ResolvedPlan,
    as_tiled,
    chan_prefers_rbidiag,
    default_tile_size,
    resolve,
    resolve_tree,
    resolve_variant,
)
from repro.api.result import RunResult
from repro.api.execute import BACKENDS, execute, execute_sweep

if TYPE_CHECKING:
    from repro.tuning.search import TuningResult


def tune(plan: SvdPlan, **kwargs: Any) -> "TuningResult":
    """Autotune ``plan`` — see :func:`repro.tuning.tune`.

    Re-exported here (lazily, to keep ``repro.api`` import-light) so the
    plan API reads end to end: build a plan, ``tune`` it, ``execute`` it.
    """
    from repro.tuning import tune as _tune

    return _tune(plan, **kwargs)


__all__ = [
    "STAGES",
    "VARIANTS",
    "BACKENDS",
    "SvdPlan",
    "ResolvedPlan",
    "RunResult",
    "resolve",
    "execute",
    "execute_sweep",
    "tune",
    "as_tiled",
    "chan_prefers_rbidiag",
    "default_tile_size",
    "resolve_tree",
    "resolve_variant",
]
