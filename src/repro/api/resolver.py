"""Plan canonicalization.

This module is the single home of the resolution logic that used to be
duplicated across ``algorithms/svd.py``, ``cli.py`` and
``runtime/simulator.py``:

* Chan's BIDIAG / R-BIDIAG flop crossover (``m >= 5n/3``, in elements or
  tiles);
* reduction-tree canonicalization (names → instances, AUTO parallelism
  hint, hierarchical wrapping for multi-node machines);
* tile geometry (config-driven default tile size, ``p x q`` tile shape,
  process grid).

:func:`resolve` applies all of it once, turning a declarative
:class:`~repro.api.plan.SvdPlan` into a :class:`ResolvedPlan` that every
backend consumes without re-deriving anything.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Union

import numpy as np

from repro.api.plan import VARIANTS, ArrayOrTiled, SvdPlan
from repro.config import Config, MachinePreset, default_config, get_preset
from repro.runtime.machine import Machine
from repro.tiles.distribution import BlockCyclicDistribution, ProcessGrid
from repro.tiles.layout import ceil_div
from repro.tiles.matrix import TiledMatrix
from repro.trees import AutoTree, GreedyTree, HierarchicalTree, make_tree
from repro.trees.base import ReductionTree


# --------------------------------------------------------------------------- #
# Chan crossover
# --------------------------------------------------------------------------- #
def chan_prefers_rbidiag(rows: int, cols: int) -> bool:
    """Chan's flop crossover: R-BIDIAG wins as soon as ``m >= 5n/3``.

    The predicate itself is scale-free and is shared by every call site,
    but the *units* differ: the plan resolver (and historically the CLI
    and simulator) evaluates it on element dimensions ``(m, n)``, while
    the legacy numeric driver evaluates it on tile dimensions ``(p, q)``.
    Because ``p = ceil(m/nb)`` rounds, the two can disagree for shapes
    right at the ``5/3`` boundary; pass an explicit variant when that
    distinction matters.
    """
    return 3 * rows >= 5 * cols


def resolve_variant(variant: str, rows: int, cols: int) -> str:
    """Resolve ``"auto"`` to a concrete variant via the Chan crossover."""
    variant = variant.lower()
    if variant not in VARIANTS:
        raise ValueError(f"unknown variant {variant!r}; choose from {VARIANTS}")
    if variant != "auto":
        return variant
    return "rbidiag" if chan_prefers_rbidiag(rows, cols) else "bidiag"


# --------------------------------------------------------------------------- #
# Tile geometry
# --------------------------------------------------------------------------- #
def default_tile_size(m: int, n: int, config: Optional[Config] = None) -> int:
    """Config-driven default tile size.

    Uses ``config.tile_size`` (the paper's ``nb = 160`` by default), capped
    so that the smallest matrix dimension still spans a handful of tiles —
    the reduction trees are meaningless on a 1x1 tile grid.
    """
    config = config if config is not None else default_config
    return max(1, min(config.tile_size, min(m, n) // 4))


def as_tiled(
    a: ArrayOrTiled,
    tile_size: Optional[int] = None,
    config: Optional[Config] = None,
) -> TiledMatrix:
    """Coerce a dense array into a :class:`TiledMatrix`.

    Already-tiled inputs pass through unchanged; dense inputs are tiled at
    ``tile_size``, defaulting to :func:`default_tile_size`.
    """
    if isinstance(a, TiledMatrix):
        return a
    a = np.asarray(a, dtype=float)
    if a.ndim != 2:
        raise ValueError("expected a 2-D array")
    if tile_size is None:
        tile_size = default_tile_size(a.shape[0], a.shape[1], config)
    return TiledMatrix.from_dense(a, tile_size)


def default_grid(n_nodes: int, p: int, q: int) -> ProcessGrid:
    """The process grid the paper uses: ``nodes x 1`` for tall-and-skinny
    tile shapes (``p >= 2q``), near-square otherwise."""
    if p >= 2 * q:
        return ProcessGrid.for_tall_skinny_matrix(n_nodes)
    return ProcessGrid.for_square_matrix(n_nodes)


# --------------------------------------------------------------------------- #
# Reduction trees
# --------------------------------------------------------------------------- #
def resolve_tree(
    tree: Union[str, ReductionTree, None],
    *,
    n_cores: int = 1,
    config: Optional[Config] = None,
) -> ReductionTree:
    """Canonicalize a shared-memory tree spec (name / instance / None).

    ``None`` means GREEDY (the numeric drivers' historical default);
    ``"auto"`` builds the adaptive tree with the given parallelism hint and
    the config's ``gamma``.
    """
    if tree is None:
        return GreedyTree()
    if isinstance(tree, ReductionTree):
        return tree
    name = tree.strip().lower()
    if name == "auto":
        config = config if config is not None else default_config
        return AutoTree(n_cores=n_cores, gamma=config.auto_gamma)
    return make_tree(name)


def resolve_distributed_tree(
    tree: Union[str, ReductionTree, None],
    *,
    n_nodes: int,
    n_cores: int,
    p: int,
    q: int,
    config: Optional[Config] = None,
    grid: Optional[ProcessGrid] = None,
) -> ReductionTree:
    """Canonicalize a tree spec for an ``n_nodes``-node machine.

    Explicit instances pass through unchanged.  Named trees map to the
    shared-memory trees on one node; on several nodes they are wrapped in
    the paper's hierarchical configuration (flat top tree for
    FlatTS/FlatTT, greedy top tree for Greedy/Auto) over ``grid`` — or the
    default process grid for the ``p x q`` tile shape when ``None``.
    """
    if isinstance(tree, ReductionTree):
        return tree
    base = resolve_tree(tree, n_cores=n_cores, config=config)
    if n_nodes == 1:
        return base
    name = (tree or "greedy").strip().lower()
    top = "flat" if name in ("flatts", "flattt") else "greedy"
    if grid is None:
        grid = default_grid(n_nodes, p, q)
    return HierarchicalTree(local_tree=base, top=top, grid_rows=grid.rows)


def tree_display_name(tree: Union[str, ReductionTree, None]) -> str:
    """Stable human-readable name of a tree spec (for result rows)."""
    if tree is None:
        return "greedy"
    if isinstance(tree, str):
        return tree.strip().lower()
    return getattr(tree, "name", type(tree).__name__)


# --------------------------------------------------------------------------- #
# The resolved plan
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class ResolvedPlan:
    """A plan with every free choice pinned down.

    Carries the canonical tree instance, concrete variant, tile geometry,
    process grid and machine model; backends consume these fields directly
    and never re-derive them.
    """

    plan: SvdPlan
    config: Config
    m: int
    n: int
    tile_size: int
    p: int
    q: int
    stage: str
    variant: str
    tree: ReductionTree
    tree_name: str
    machine: Machine
    grid: ProcessGrid
    #: Machine-realism scenario (already coerced to an instance by the
    #: plan), or ``None`` for the ideal deterministic machine.  The
    #: machine above stays nominal — scenario slowdowns are applied inside
    #: :func:`repro.runtime.scenario.run_scenario`.
    scenario: Optional[object] = None
    #: Monte-Carlo draw-count override (``None`` = scenario default).
    draws: Optional[int] = None

    @property
    def distribution(self) -> BlockCyclicDistribution:
        """Block-cyclic tile-to-node mapping over the resolved grid."""
        return BlockCyclicDistribution(self.grid)

    @property
    def preset(self) -> MachinePreset:
        return self.machine.preset

    def build_matrix(self) -> ArrayOrTiled:
        """The plan's input matrix (explicit, or seeded standard normal)."""
        if self.plan.matrix is not None:
            return self.plan.matrix
        rng = np.random.default_rng(self.plan.seed)
        return rng.standard_normal((self.m, self.n))

    def build_tiled(self) -> TiledMatrix:
        """The input matrix in tiled form, at the resolved tile size."""
        return as_tiled(self.build_matrix(), self.tile_size, self.config)


def resolve(plan: SvdPlan, config: Optional[Config] = None) -> ResolvedPlan:
    """Canonicalize ``plan`` once, for any backend.

    ``config`` overrides the plan's own config, which in turn overrides
    :data:`repro.config.default_config`.
    """
    if config is None:
        config = plan.config if plan.config is not None else default_config
    m, n = plan.m, plan.n
    if isinstance(plan.matrix, TiledMatrix):
        tile_size = plan.matrix.nb
        if plan.tile_size not in (None, tile_size):
            raise ValueError(
                f"tile_size={plan.tile_size} disagrees with the tiled input's nb={tile_size}"
            )
    elif plan.tile_size == "auto":
        # The autotuner picks nb (through the persistent plan cache, so
        # repeated resolutions of the same problem are O(1)).  Imported
        # lazily: repro.tuning builds on this module.
        from repro.tuning import resolve_auto_tile_size

        tile_size = resolve_auto_tile_size(plan, config=config)
    elif plan.tile_size is not None:
        tile_size = plan.tile_size
    else:
        tile_size = default_tile_size(m, n, config)
    p, q = ceil_div(m, tile_size), ceil_div(n, tile_size)
    grid = ProcessGrid(*plan.grid) if plan.grid else default_grid(plan.n_nodes, p, q)
    tree = resolve_distributed_tree(
        plan.tree,
        n_nodes=plan.n_nodes,
        n_cores=plan.n_cores,
        p=p,
        q=q,
        config=config,
        grid=grid,
    )
    machine = Machine(
        n_nodes=plan.n_nodes,
        cores_per_node=plan.n_cores,
        tile_size=tile_size,
        preset=get_preset(plan.machine),
        inner_block=config.inner_block,
    )
    return ResolvedPlan(
        plan=plan,
        config=config,
        m=m,
        n=n,
        tile_size=tile_size,
        p=p,
        q=q,
        stage=plan.stage,
        variant=resolve_variant(plan.variant, m, n),
        tree=tree,
        tree_name=tree_display_name(plan.tree),
        machine=machine,
        grid=grid,
        scenario=plan.scenario,
        draws=plan.draws,
    )
