"""Common result type returned by every backend.

A :class:`RunResult` normalizes what the three lenses of the paper report
— per-stage timings, task/message counts, critical paths and numerical
accuracy — into one record, so that experiment sweeps can tabulate
heterogeneous backends side by side.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, Optional

import numpy as np

from repro.api.plan import SvdPlan

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs.tracer import Tracer


@dataclass
class RunResult:
    """Outcome of executing one :class:`~repro.api.plan.SvdPlan`.

    Fields that a backend does not produce stay ``None``:

    * ``numeric``  fills ``singular_values`` (and ``u``/``vt`` for the
      ``gesvd`` stage), wall-clock ``stage_seconds`` and
      ``max_rel_error`` (vs ``numpy.linalg.svd``, when the dense input is
      available);
    * ``dag``      fills ``n_tasks`` and ``critical_path`` (Table-I weight
      units) plus per-kernel counts in ``extras``;
    * ``simulate`` fills ``time_seconds``, ``gflops``, ``n_tasks``,
      ``messages``, ``comm_bytes`` and the simulated ``stage_seconds``.
    """

    backend: str
    plan: SvdPlan
    stage: str
    variant: str
    tree: str
    m: int
    n: int
    p: int
    q: int
    tile_size: int
    n_cores: int
    n_nodes: int
    grid: str = "1x1"
    machine: str = "miriel"
    #: Scheduling policy the simulation engine replayed the program under;
    #: ``None`` for backends that do not schedule (numeric, dag).
    policy: Optional[str] = None
    #: Network model the simulation engine priced transfers with
    #: (``uniform`` / ``alpha-beta``); ``None`` for backends that do not
    #: simulate communication (numeric, dag).
    network: Optional[str] = None
    #: Total simulated sending seconds across all nodes (simulate backend).
    comm_seconds: Optional[float] = None
    #: Machine-realism scenario name the simulation ran under (see
    #: :mod:`repro.runtime.scenario`); ``None`` for the default path.
    scenario: Optional[str] = None
    #: Monte-Carlo makespan distribution for stochastic scenarios
    #: (``time_seconds`` stays the nominal replay); ``None`` otherwise.
    distribution: Optional[object] = field(default=None, repr=False)
    stage_seconds: Dict[str, float] = field(default_factory=dict)
    time_seconds: Optional[float] = None
    gflops: Optional[float] = None
    n_tasks: Optional[int] = None
    messages: Optional[int] = None
    comm_bytes: Optional[int] = None
    critical_path: Optional[float] = None
    singular_values: Optional[np.ndarray] = None
    u: Optional[np.ndarray] = None
    vt: Optional[np.ndarray] = None
    max_rel_error: Optional[float] = None
    extras: Dict[str, object] = field(default_factory=dict)
    #: Per-run observability snapshot (:func:`repro.obs.metrics.run_metrics`):
    #: cache hit/miss deltas for every backend; utilization, communication
    #: and — when traced — ready-queue / message-size statistics for the
    #: simulate backend.  Deliberately excluded from :meth:`to_row` so the
    #: experiment-table schema stays flat and pinned.
    metrics: Optional[Dict[str, object]] = field(default=None, repr=False)
    #: The :class:`~repro.obs.tracer.Tracer` that recorded this run, when
    #: tracing was requested (``plan.trace`` / ``execute(trace=...)`` /
    #: ``REPRO_TRACE=1``); ``None`` otherwise.
    trace: Optional["Tracer"] = field(default=None, repr=False)

    def to_row(self) -> Dict[str, object]:
        """Flatten the scalar fields into an experiment-table row."""
        row: Dict[str, object] = {
            "backend": self.backend,
            "stage": self.stage,
            "variant": self.variant,
            "tree": self.tree,
            "m": self.m,
            "n": self.n,
            "p": self.p,
            "q": self.q,
            "tile_size": self.tile_size,
            "n_cores": self.n_cores,
            "n_nodes": self.n_nodes,
            "grid": self.grid,
            "machine": self.machine,
        }
        if self.policy is not None:
            row["policy"] = self.policy
        if self.network is not None:
            row["network"] = self.network
        # Scenario columns appear only when a scenario ran, so the pinned
        # default-table schema is untouched.
        if self.scenario is not None:
            row["scenario"] = self.scenario
        if self.distribution is not None:
            row.update(self.distribution.to_row())
        for key in ("time_seconds", "gflops", "n_tasks", "messages", "comm_bytes",
                    "comm_seconds", "critical_path", "max_rel_error"):
            value = getattr(self, key)
            if value is not None:
                row[key] = value
        for stage, seconds in self.stage_seconds.items():
            row[f"seconds_{stage}"] = seconds
        return row

    def summary(self) -> str:
        """Multi-line human-readable report (used by the CLI)."""
        lines = [
            f"backend        : {self.backend}",
            f"stage          : {self.stage}",
            f"matrix         : {self.m} x {self.n}  "
            f"(tiles {self.p} x {self.q}, nb={self.tile_size})",
            f"variant        : {self.variant}",
            f"tree           : {self.tree}",
            f"machine        : {self.n_nodes} node(s) x {self.n_cores} core(s) "
            f"({self.machine}, grid {self.grid})",
        ]
        if self.policy is not None:
            lines.append(f"policy         : {self.policy}")
        if self.network is not None:
            lines.append(f"network        : {self.network}")
        if self.scenario is not None:
            lines.append(f"scenario       : {self.scenario}")
        if self.distribution is not None:
            d = self.distribution
            lines.append(
                f"mc makespan    : mean {d.mean:.4f}s  p50 {d.p50:.4f}s  "
                f"p95 {d.p95:.4f}s  ({d.n_draws} draws, seed {d.seed})"
            )
        if self.n_tasks is not None:
            lines.append(f"tasks          : {self.n_tasks}")
        if self.messages is not None:
            lines.append(f"messages       : {self.messages}")
        if self.comm_seconds is not None and self.comm_seconds > 0:
            lines.append(f"comm time (s)  : {self.comm_seconds:.4f}")
        if self.critical_path is not None:
            lines.append(f"critical path  : {self.critical_path:.0f} (nb^3/3 flop units)")
        if self.time_seconds is not None:
            lines.append(f"time (s)       : {self.time_seconds:.4f}")
        if self.gflops is not None:
            lines.append(f"GFlop/s        : {self.gflops:.1f}")
        for stage, seconds in self.stage_seconds.items():
            lines.append(f"{('t_' + stage):15s}: {seconds:.4f}s")
        if self.singular_values is not None and len(self.singular_values):
            lines.append(f"largest sigma  : {self.singular_values[0]:.6e}")
            lines.append(f"smallest sigma : {self.singular_values[-1]:.6e}")
        if self.max_rel_error is not None:
            lines.append(
                f"max rel error  : {self.max_rel_error:.3e} (vs numpy.linalg.svd)"
            )
        return "\n".join(lines)

    def __str__(self) -> str:  # pragma: no cover - human-readable report
        return self.summary()
