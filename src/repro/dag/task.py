"""Task and task-graph containers.

A :class:`TaskGraph` is the explicit form of the symbolic DAG a PaRSEC-like
runtime would execute: one node per tile kernel, one edge per data
dependency.  It is produced by the :class:`~repro.dag.tracer.TraceExecutor`
and consumed by the critical-path engine and the runtime simulator.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Tuple

from repro.kernels.costs import KernelName

#: A data item is one half of a tile: ("U", i, j) is the upper (R/L factor)
#: part, ("L", i, j) the lower (reflector) part.  Splitting tiles this way
#: reproduces PLASMA's dependency structure, where e.g. TSQRT only touches
#: the R part of the pivot tile while UNMQR only reads its reflectors.
DataItem = Tuple[str, int, int]


@dataclass
class Task:
    """One tile kernel instance in the task graph.

    Attributes
    ----------
    id:
        Dense integer identifier (insertion order).
    kernel:
        Which tile kernel this task runs.
    params:
        The kernel's tile indices, as passed to the executor.
    reads, writes:
        Data items read / written (a data item is half a tile).
    weight:
        Critical-path weight in units of ``nb^3 / 3`` flops (Table I).
    owner_tile:
        Tile coordinate used by the owner-computes rule to map the task to
        a node in distributed runs.
    step:
        The panel step (``QR(k)`` / ``LQ(k)``) the task belongs to, for
        reporting purposes.
    """

    id: int
    kernel: KernelName
    params: Tuple[int, ...]
    reads: FrozenSet[DataItem]
    writes: FrozenSet[DataItem]
    weight: int
    owner_tile: Tuple[int, int]
    step: str = ""

    @property
    def touched(self) -> FrozenSet[DataItem]:
        """All data items the task accesses."""
        return self.reads | self.writes


class TaskGraph:
    """A DAG of tile tasks with explicit dependency edges."""

    def __init__(self) -> None:
        self.tasks: List[Task] = []
        self.successors: Dict[int, List[int]] = {}
        self.predecessors: Dict[int, List[int]] = {}
        self._edges: set[Tuple[int, int]] = set()

    def __len__(self) -> int:
        return len(self.tasks)

    def add_task(self, task: Task) -> None:
        """Append a task (its ``id`` must equal the current task count)."""
        if task.id != len(self.tasks):
            raise ValueError(
                f"task ids must be dense and in insertion order; got {task.id}, "
                f"expected {len(self.tasks)}"
            )
        self.tasks.append(task)
        self.successors[task.id] = []
        self.predecessors[task.id] = []

    def add_edge(self, src: int, dst: int) -> None:
        """Add a dependency edge ``src -> dst`` (idempotent, no self-loops)."""
        if src == dst:
            return
        if (src, dst) in self._edges:
            return
        self._edges.add((src, dst))
        self.successors[src].append(dst)
        self.predecessors[dst].append(src)

    @property
    def n_edges(self) -> int:
        return len(self._edges)

    def sources(self) -> List[int]:
        """Tasks with no predecessors."""
        return [t.id for t in self.tasks if not self.predecessors[t.id]]

    def sinks(self) -> List[int]:
        """Tasks with no successors."""
        return [t.id for t in self.tasks if not self.successors[t.id]]

    def topological_order(self) -> List[int]:
        """Task ids in a valid topological order.

        Tasks are inserted in a sequentially consistent order by the tracer,
        so insertion order is already topological; this method verifies that
        property (cheap) and returns it.
        """
        for src, dst in sorted(self._edges):
            if src >= dst:
                raise RuntimeError(
                    f"edge {src} -> {dst} violates insertion-order topology"
                )
        return [t.id for t in self.tasks]

    def total_weight(self) -> int:
        """Sum of all task weights (the sequential execution time)."""
        return sum(t.weight for t in self.tasks)

    def total_flops(self, nb: int) -> float:
        """Total floating-point operations for tile size ``nb``."""
        return self.total_weight() * (nb**3) / 3.0

    def kernel_counts(self) -> Dict[KernelName, int]:
        """Histogram of kernel types (useful in tests and reports)."""
        counts: Dict[KernelName, int] = {}
        for t in self.tasks:
            counts[t.kernel] = counts.get(t.kernel, 0) + 1
        return counts
