"""Structural analysis of task graphs.

These tools quantify *why* a reduction tree behaves the way it does:

* **work / span / average parallelism** — the classical DAG metrics; the
  span (critical path) is what Section IV of the paper analyses, the
  average parallelism bounds the core count beyond which adding resources
  cannot help;
* **parallelism profile** — how many tasks are simultaneously runnable over
  (weighted) time under an ASAP schedule with unbounded resources; the
  FLATTS profile is flat and low, the GREEDY profile has tall spikes, which
  is exactly the trade-off the AUTO tree balances;
* **kernel and step breakdowns** — where the work goes (panel vs update
  kernels, QR vs LQ steps).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.dag.critical_path import critical_path_length
from repro.dag.task import TaskGraph


@dataclass(frozen=True)
class GraphStats:
    """Summary statistics of a task graph.

    Attributes
    ----------
    n_tasks, n_edges:
        Number of tasks and dependency edges.
    work:
        Total weight (units of ``nb^3 / 3`` flops) — sequential time.
    span:
        Critical-path weight — time with unbounded resources.
    average_parallelism:
        ``work / span``; above this core count speedup saturates.
    max_in_degree, max_out_degree:
        Largest dependency fan-in / fan-out of any task.
    n_sources, n_sinks:
        Tasks without predecessors / successors.
    """

    n_tasks: int
    n_edges: int
    work: float
    span: float
    average_parallelism: float
    max_in_degree: int
    max_out_degree: int
    n_sources: int
    n_sinks: int


def graph_stats(graph: TaskGraph) -> GraphStats:
    """Compute the :class:`GraphStats` of a task graph."""
    work = float(graph.total_weight())
    span = critical_path_length(graph)
    in_deg = [len(graph.predecessors[t.id]) for t in graph.tasks]
    out_deg = [len(graph.successors[t.id]) for t in graph.tasks]
    return GraphStats(
        n_tasks=len(graph),
        n_edges=graph.n_edges,
        work=work,
        span=span,
        average_parallelism=work / span if span > 0 else 0.0,
        max_in_degree=max(in_deg, default=0),
        max_out_degree=max(out_deg, default=0),
        n_sources=len(graph.sources()),
        n_sinks=len(graph.sinks()),
    )


def parallelism_profile(graph: TaskGraph, n_bins: int = 50) -> List[Tuple[float, int]]:
    """Number of concurrently running tasks over time (ASAP, unbounded cores).

    Every task starts as soon as its predecessors finish (weights are the
    Table-I units).  The profile is sampled at ``n_bins`` evenly spaced
    points of the span and returned as ``(time, active_tasks)`` pairs.
    """
    if len(graph) == 0:
        return []
    if n_bins < 1:
        raise ValueError("n_bins must be >= 1")
    start = [0.0] * len(graph)
    finish = [0.0] * len(graph)
    for tid in graph.topological_order():
        s = 0.0
        for pred in graph.predecessors[tid]:
            if finish[pred] > s:
                s = finish[pred]
        start[tid] = s
        finish[tid] = s + float(graph.tasks[tid].weight)
    span = max(finish)
    if span <= 0:
        return [(0.0, len(graph))]
    profile: List[Tuple[float, int]] = []
    for b in range(n_bins):
        t = span * (b + 0.5) / n_bins
        active = sum(1 for tid in range(len(graph)) if start[tid] <= t < finish[tid])
        profile.append((t, active))
    return profile


def max_parallelism(graph: TaskGraph, n_bins: int = 200) -> int:
    """Peak of the :func:`parallelism_profile` (sampled)."""
    profile = parallelism_profile(graph, n_bins=n_bins)
    return max((active for _, active in profile), default=0)


def kernel_breakdown(graph: TaskGraph) -> Dict[str, Dict[str, float]]:
    """Per-kernel task counts and work shares.

    Returns ``{kernel_name: {"count": ..., "work": ..., "work_fraction": ...}}``.
    """
    total = float(graph.total_weight())
    out: Dict[str, Dict[str, float]] = {}
    for task in graph.tasks:
        entry = out.setdefault(task.kernel.value, {"count": 0.0, "work": 0.0})
        entry["count"] += 1
        entry["work"] += float(task.weight)
    for entry in out.values():
        entry["work_fraction"] = entry["work"] / total if total > 0 else 0.0
    return out


def ts_tt_work_split(graph: TaskGraph) -> Tuple[float, float]:
    """Fractions of the update work done by TS kernels vs TT kernels.

    The paper's AUTO tree exists because TS updates run near GEMM speed
    while TT updates do not; this split quantifies how much of the work each
    tree routes through the efficient kernels.
    """
    ts = tt = 0.0
    for task in graph.tasks:
        name = task.kernel.value
        if name in ("TSMQR", "TSMLQ", "TSQRT", "TSLQT"):
            ts += float(task.weight)
        elif name in ("TTMQR", "TTMLQ", "TTQRT", "TTLQT"):
            tt += float(task.weight)
    total = ts + tt
    if total <= 0:
        return 0.0, 0.0
    return ts / total, tt / total


def step_breakdown(graph: TaskGraph) -> Dict[str, float]:
    """Work per algorithm step (``QR(k)`` / ``LQ(k)``) as labelled by the tracer.

    Tasks with an empty ``step`` label are aggregated under ``"(unlabelled)"``.
    """
    out: Dict[str, float] = {}
    for task in graph.tasks:
        key = task.step or "(unlabelled)"
        out[key] = out.get(key, 0.0) + float(task.weight)
    return out


def memory_footprint_tiles(graph: TaskGraph) -> int:
    """Number of distinct tiles touched by the graph (working-set size in tiles)."""
    tiles = set()
    for task in graph.tasks:
        for _, i, j in task.touched:
            tiles.add((i, j))
    return len(tiles)


def schedule_utilization(schedule: "object", machine: "object") -> Dict[str, object]:
    """Busy/idle utilization breakdown of one executed schedule.

    Thin front door to the shared :func:`repro.obs.util.utilization_summary`
    helper (the same computation backing ``RunResult.metrics`` and the
    Gantt exporters), so DAG-level analyses and notebooks get per-node and
    per-core busy fractions without re-deriving them from schedule rows.
    """
    from repro.obs.util import utilization_summary

    return utilization_summary(schedule, machine)
