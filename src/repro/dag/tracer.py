"""Trace executor: builds the task graph of a tiled algorithm.

The :class:`TraceExecutor` implements the same
:class:`~repro.algorithms.executor.KernelExecutor` interface as the numeric
executor, but instead of touching numbers it records one :class:`Task` per
kernel call and infers the dependency edges from the data accesses, exactly
like a superscalar runtime (PaRSEC, StarPU, QUARK) does:

* a task that *writes* a data item depends on the item's last writer and on
  every reader since that write (RAW + WAR);
* a task that *reads* a data item depends on its last writer (RAW).

Data items are tile *halves* (upper = factor part, lower = reflector part);
see :mod:`repro.dag.task` for why this split is needed to reproduce the
dependency structure — and hence the critical paths — of the paper.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

from repro.algorithms.bidiag import bidiag_ge2bnd
from repro.algorithms.executor import KernelExecutor
from repro.algorithms.rbidiag import rbidiag_ge2bnd
from repro.algorithms.tiled_qr import tiled_qr
from repro.dag.task import DataItem, Task, TaskGraph
from repro.kernels.costs import KernelName, kernel_weight
from repro.trees.base import ReductionTree


def _upper(i: int, j: int) -> DataItem:
    return ("U", i, j)


def _lower(i: int, j: int) -> DataItem:
    return ("L", i, j)


def _whole(i: int, j: int) -> Tuple[DataItem, DataItem]:
    return (_upper(i, j), _lower(i, j))


class TraceExecutor(KernelExecutor):
    """Executor that records the task DAG instead of computing."""

    def __init__(self, p: int, q: int) -> None:
        if p < 1 or q < 1:
            raise ValueError(f"tile shape must be at least 1x1, got {p}x{q}")
        self._p = p
        self._q = q
        self.graph = TaskGraph()
        self._last_writer: Dict[DataItem, int] = {}
        self._readers_since_write: Dict[DataItem, List[int]] = {}
        self.current_step: str = ""

    @property
    def p(self) -> int:
        return self._p

    @property
    def q(self) -> int:
        return self._q

    # ------------------------------------------------------------------ #
    # Dependency bookkeeping
    # ------------------------------------------------------------------ #
    def _record(
        self,
        kernel: KernelName,
        params: Tuple[int, ...],
        reads: Iterable[DataItem],
        writes: Iterable[DataItem],
        owner_tile: Tuple[int, int],
    ) -> None:
        reads_set = frozenset(reads)
        writes_set = frozenset(writes)
        task = Task(
            id=len(self.graph),
            kernel=kernel,
            params=params,
            reads=reads_set,
            writes=writes_set,
            weight=kernel_weight(kernel),
            owner_tile=owner_tile,
            step=self.current_step,
        )
        self.graph.add_task(task)
        tid = task.id
        for item in reads_set | writes_set:
            writer = self._last_writer.get(item)
            if writer is not None:
                self.graph.add_edge(writer, tid)
        for item in writes_set:
            # WAR: wait for every reader since the last write.
            for reader in self._readers_since_write.get(item, ()):
                self.graph.add_edge(reader, tid)
        # Update the bookkeeping *after* all edges are added.
        for item in writes_set:
            self._last_writer[item] = tid
            self._readers_since_write[item] = []
        for item in reads_set - writes_set:
            self._readers_since_write.setdefault(item, []).append(tid)

    # ------------------------------------------------------------------ #
    # QR family
    # ------------------------------------------------------------------ #
    def geqrt(self, i: int, k: int) -> None:
        self._record(KernelName.GEQRT, (i, k), reads=(), writes=_whole(i, k), owner_tile=(i, k))

    def unmqr(self, i: int, k: int, j: int) -> None:
        self._record(
            KernelName.UNMQR,
            (i, k, j),
            reads=(_lower(i, k),),
            writes=_whole(i, j),
            owner_tile=(i, j),
        )

    def tsqrt(self, piv: int, i: int, k: int) -> None:
        self._record(
            KernelName.TSQRT,
            (piv, i, k),
            reads=(),
            writes=(_upper(piv, k),) + _whole(i, k),
            owner_tile=(i, k),
        )

    def tsmqr(self, piv: int, i: int, k: int, j: int) -> None:
        self._record(
            KernelName.TSMQR,
            (piv, i, k, j),
            reads=_whole(i, k),
            writes=_whole(piv, j) + _whole(i, j),
            owner_tile=(i, j),
        )

    def ttqrt(self, piv: int, i: int, k: int) -> None:
        # The TT reflectors are stored in the *upper* (triangular) part of the
        # killed tile; the lower part still holds the GEQRT reflectors, which
        # is why TTQRT does not conflict with the UNMQR updates of row i.
        self._record(
            KernelName.TTQRT,
            (piv, i, k),
            reads=(),
            writes=(_upper(piv, k), _upper(i, k)),
            owner_tile=(i, k),
        )

    def ttmqr(self, piv: int, i: int, k: int, j: int) -> None:
        self._record(
            KernelName.TTMQR,
            (piv, i, k, j),
            reads=(_upper(i, k),),
            writes=_whole(piv, j) + _whole(i, j),
            owner_tile=(i, j),
        )

    # ------------------------------------------------------------------ #
    # LQ family
    # ------------------------------------------------------------------ #
    def gelqt(self, k: int, j: int) -> None:
        self._record(KernelName.GELQT, (k, j), reads=(), writes=_whole(k, j), owner_tile=(k, j))

    def unmlq(self, k: int, j: int, i: int) -> None:
        self._record(
            KernelName.UNMLQ,
            (k, j, i),
            reads=(_upper(k, j),),
            writes=_whole(i, j),
            owner_tile=(i, j),
        )

    def tslqt(self, piv: int, j: int, k: int) -> None:
        self._record(
            KernelName.TSLQT,
            (piv, j, k),
            reads=(),
            writes=(_lower(k, piv),) + _whole(k, j),
            owner_tile=(k, j),
        )

    def tsmlq(self, piv: int, j: int, k: int, i: int) -> None:
        self._record(
            KernelName.TSMLQ,
            (piv, j, k, i),
            reads=_whole(k, j),
            writes=_whole(i, piv) + _whole(i, j),
            owner_tile=(i, j),
        )

    def ttlqt(self, piv: int, j: int, k: int) -> None:
        # Mirror of ttqrt: the TT reflectors live in the *lower* part of the
        # killed tile, leaving the GELQT reflectors (upper part) untouched.
        self._record(
            KernelName.TTLQT,
            (piv, j, k),
            reads=(),
            writes=(_lower(k, piv), _lower(k, j)),
            owner_tile=(k, j),
        )

    def ttmlq(self, piv: int, j: int, k: int, i: int) -> None:
        self._record(
            KernelName.TTMLQ,
            (piv, j, k, i),
            reads=(_lower(k, j),),
            writes=_whole(i, piv) + _whole(i, j),
            owner_tile=(i, j),
        )


# --------------------------------------------------------------------------- #
# Convenience tracing front-ends
# --------------------------------------------------------------------------- #
def trace_qr(
    p: int,
    q: int,
    tree: ReductionTree,
    *,
    n_cores: int = 1,
    grid_rows: int = 1,
) -> TaskGraph:
    """Task graph of the tiled QR factorization of a ``p x q`` tile matrix."""
    tracer = TraceExecutor(p, q)
    tiled_qr(tracer, tree, n_cores=n_cores, grid_rows=grid_rows)
    return tracer.graph


def trace_bidiag(
    p: int,
    q: int,
    qr_tree: ReductionTree,
    lq_tree: Optional[ReductionTree] = None,
    *,
    n_cores: int = 1,
    grid_rows: int = 1,
) -> TaskGraph:
    """Task graph of BIDIAG (GE2BND) on a ``p x q`` tile matrix."""
    tracer = TraceExecutor(p, q)
    bidiag_ge2bnd(
        tracer, qr_tree, lq_tree, n_cores=n_cores, grid_rows=grid_rows
    )
    return tracer.graph


def trace_rbidiag(
    p: int,
    q: int,
    qr_tree: ReductionTree,
    lq_tree: Optional[ReductionTree] = None,
    *,
    prequr_tree: Optional[ReductionTree] = None,
    n_cores: int = 1,
    grid_rows: int = 1,
) -> TaskGraph:
    """Task graph of R-BIDIAG on a ``p x q`` tile matrix."""
    tracer = TraceExecutor(p, q)
    rbidiag_ge2bnd(
        tracer,
        qr_tree,
        lq_tree,
        prequr_tree=prequr_tree,
        n_cores=n_cores,
        grid_rows=grid_rows,
    )
    return tracer.graph
