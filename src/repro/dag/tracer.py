"""Legacy tracing front-end over the compiled Program IR.

This module used to own both halves of DAG construction: recording one
:class:`~repro.dag.task.Task` per kernel call *and* inferring dependency
edges from data accesses.  Both now live in :mod:`repro.ir` —
:class:`~repro.ir.recorder.ProgramRecorder` captures the op stream and
:class:`~repro.ir.program.DependencyAnalyzer` runs the superscalar RAW/WAR
inference (exactly like PaRSEC, StarPU or QUARK would):

* a task that *writes* a data item depends on the item's last writer and on
  every reader since that write (RAW + WAR);
* a task that *reads* a data item depends on its last writer (RAW).

What remains here is the backward-compatible surface: a
:class:`TraceExecutor` whose ``graph`` attribute is a legacy
:class:`~repro.dag.task.TaskGraph`, and the ``trace_qr`` /
``trace_bidiag`` / ``trace_rbidiag`` front-ends — now thin wrappers that
resolve through the shared :data:`repro.ir.compiler.PROGRAM_CACHE`, so
repeated traces of the same DAG shape are free.  New code should prefer
:func:`repro.ir.get_program` and work on the :class:`~repro.ir.program.Program`
directly; the event-driven engine (:mod:`repro.runtime.engine`) and the
critical-path analyses consume programs natively.
"""

from __future__ import annotations

from typing import Optional

from repro.dag.task import TaskGraph
from repro.ir.compiler import get_program
from repro.ir.recorder import ProgramRecorder
from repro.trees.base import ReductionTree


class TraceExecutor(ProgramRecorder):
    """Executor that records the task DAG instead of computing.

    A thin compatibility shell over :class:`~repro.ir.recorder.ProgramRecorder`:
    kernel calls are captured as program ops, and :attr:`graph` materializes
    the legacy :class:`~repro.dag.task.TaskGraph` (dependency edges included)
    on demand.
    """

    def __init__(self, p: int, q: int) -> None:
        super().__init__(p, q)
        self._graph_cache: Optional[TaskGraph] = None
        self._graph_ops = -1

    @property
    def graph(self) -> TaskGraph:
        """The task graph of everything recorded so far."""
        if self._graph_cache is None or self._graph_ops != len(self):
            self._graph_cache = self.program().to_task_graph()
            self._graph_ops = len(self)
        return self._graph_cache


# --------------------------------------------------------------------------- #
# Convenience tracing front-ends (cache-backed)
# --------------------------------------------------------------------------- #
def trace_qr(
    p: int,
    q: int,
    tree: ReductionTree,
    *,
    n_cores: int = 1,
    grid_rows: int = 1,
) -> TaskGraph:
    """Task graph of the tiled QR factorization of a ``p x q`` tile matrix."""
    return get_program(
        "qr", p, q, tree, n_cores=n_cores, grid_rows=grid_rows
    ).to_task_graph()


def trace_bidiag(
    p: int,
    q: int,
    qr_tree: ReductionTree,
    lq_tree: Optional[ReductionTree] = None,
    *,
    n_cores: int = 1,
    grid_rows: int = 1,
) -> TaskGraph:
    """Task graph of BIDIAG (GE2BND) on a ``p x q`` tile matrix."""
    return get_program(
        "bidiag",
        p,
        q,
        qr_tree,
        lq_tree=lq_tree,
        n_cores=n_cores,
        grid_rows=grid_rows,
    ).to_task_graph()


def trace_rbidiag(
    p: int,
    q: int,
    qr_tree: ReductionTree,
    lq_tree: Optional[ReductionTree] = None,
    *,
    prequr_tree: Optional[ReductionTree] = None,
    n_cores: int = 1,
    grid_rows: int = 1,
) -> TaskGraph:
    """Task graph of R-BIDIAG on a ``p x q`` tile matrix."""
    return get_program(
        "rbidiag",
        p,
        q,
        qr_tree,
        lq_tree=lq_tree,
        prequr_tree=prequr_tree,
        n_cores=n_cores,
        grid_rows=grid_rows,
    ).to_task_graph()
