"""Task graphs, dependency tracing and critical-path analysis."""

from repro.dag.task import Task, TaskGraph
from repro.dag.tracer import TraceExecutor, trace_bidiag, trace_rbidiag, trace_qr
from repro.dag.critical_path import critical_path_length, critical_path_tasks

__all__ = [
    "Task",
    "TaskGraph",
    "TraceExecutor",
    "trace_bidiag",
    "trace_rbidiag",
    "trace_qr",
    "critical_path_length",
    "critical_path_tasks",
]
