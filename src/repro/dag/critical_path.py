"""Critical-path computation on task graphs.

The critical path of a task graph is the heaviest chain of dependent tasks,
using the Table-I kernel weights (units of ``nb^3 / 3`` flops).  It models
the execution time with unbounded resources and no communication — exactly
the quantity analysed in Section IV of the paper.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Union

from repro.dag.task import Task, TaskGraph


def critical_path_length(
    graph: Union[TaskGraph, "Program"],  # noqa: F821 - forward ref, see below
    weight_fn: Optional[Callable[[Task], float]] = None,
) -> float:
    """Length of the critical path of ``graph``.

    ``weight_fn`` maps a task to its duration; the default uses the Table-I
    weight carried by the task (``nb^3 / 3`` flop units), which is what the
    paper's closed-form critical paths are expressed in.

    Accepts a legacy :class:`~repro.dag.task.TaskGraph` (per-node
    recursion below) or a compiled :class:`~repro.ir.program.Program`
    (delegated to its vectorized topological level sweep — bit-identical
    results, no per-task Python loop).
    """
    if not isinstance(graph, TaskGraph):
        # A compiled Program: its critical_path() runs the vectorized
        # forward level sweep (or the per-op loop for a custom weight_fn).
        return graph.critical_path(weight_fn=weight_fn)
    if len(graph) == 0:
        return 0.0
    if weight_fn is None:
        weight_fn = lambda task: float(task.weight)  # noqa: E731
    finish: Dict[int, float] = {}
    best = 0.0
    for tid in graph.topological_order():
        task = graph.tasks[tid]
        start = 0.0
        for pred in graph.predecessors[tid]:
            if finish[pred] > start:
                start = finish[pred]
        end = start + weight_fn(task)
        finish[tid] = end
        if end > best:
            best = end
    return best


def critical_path_tasks(
    graph: TaskGraph,
    weight_fn: Optional[Callable[[Task], float]] = None,
) -> List[Task]:
    """The tasks on (one of) the critical path(s), in execution order.

    Useful for understanding *where* the time goes: e.g. for BIDIAG with a
    FLATTS tree the path is dominated by TSMQR chains, while with GREEDY it
    alternates short TTMQR chains of logarithmic depth.
    """
    if len(graph) == 0:
        return []
    if weight_fn is None:
        weight_fn = lambda task: float(task.weight)  # noqa: E731
    finish: Dict[int, float] = {}
    critical_pred: Dict[int, Optional[int]] = {}
    best_task = None
    best = -1.0
    for tid in graph.topological_order():
        task = graph.tasks[tid]
        start = 0.0
        pred_choice: Optional[int] = None
        for pred in graph.predecessors[tid]:
            if finish[pred] > start:
                start = finish[pred]
                pred_choice = pred
        end = start + weight_fn(task)
        finish[tid] = end
        critical_pred[tid] = pred_choice
        if end > best:
            best = end
            best_task = tid
    path: List[Task] = []
    cursor: Optional[int] = best_task
    while cursor is not None:
        path.append(graph.tasks[cursor])
        cursor = critical_pred[cursor]
    path.reverse()
    return path
