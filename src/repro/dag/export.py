"""Export task graphs to standard formats (DOT, JSON).

PaRSEC can dump the DAG it executes for inspection; these helpers provide
the same capability for the traced task graphs, so that small instances can
be rendered with Graphviz or post-processed by external tools.
"""

from __future__ import annotations

import json
from typing import Dict, Optional

from repro.dag.task import TaskGraph

#: Graphviz fill colours per kernel family (panel kernels darker).
_KERNEL_COLORS: Dict[str, str] = {
    "GEQRT": "#1f78b4",
    "TSQRT": "#33a02c",
    "TTQRT": "#e31a1c",
    "UNMQR": "#a6cee3",
    "TSMQR": "#b2df8a",
    "TTMQR": "#fb9a99",
    "GELQT": "#6a3d9a",
    "TSLQT": "#ff7f00",
    "TTLQT": "#b15928",
    "UNMLQ": "#cab2d6",
    "TSMLQ": "#fdbf6f",
    "TTMLQ": "#ffff99",
}


def to_dot(
    graph: TaskGraph,
    *,
    name: str = "taskgraph",
    max_tasks: Optional[int] = 2000,
    include_step: bool = True,
) -> str:
    """Render the task graph in Graphviz DOT format.

    Parameters
    ----------
    graph:
        The traced task graph.
    name:
        DOT graph name.
    max_tasks:
        Refuse to render graphs larger than this (DOT output becomes
        unusable); pass ``None`` to disable the check.
    include_step:
        Append the algorithm step (``QR(k)`` / ``LQ(k)``) to each label.
    """
    if max_tasks is not None and len(graph) > max_tasks:
        raise ValueError(
            f"graph has {len(graph)} tasks, above the max_tasks={max_tasks} limit; "
            "export a smaller instance or raise the limit explicitly"
        )
    lines = [f"digraph {name} {{", "  rankdir=TB;", "  node [style=filled, shape=box];"]
    for task in graph.tasks:
        kernel = task.kernel.value
        color = _KERNEL_COLORS.get(kernel, "#cccccc")
        label = f"{kernel}{task.params}"
        if include_step and task.step:
            label += f"\\n{task.step}"
        lines.append(f'  t{task.id} [label="{label}", fillcolor="{color}"];')
    for src, dsts in graph.successors.items():
        for dst in dsts:
            lines.append(f"  t{src} -> t{dst};")
    lines.append("}")
    return "\n".join(lines)


def to_json(graph: TaskGraph, *, indent: Optional[int] = None) -> str:
    """Serialise the task graph as JSON (tasks + edges)."""
    payload = {
        "n_tasks": len(graph),
        "n_edges": graph.n_edges,
        "tasks": [
            {
                "id": task.id,
                "kernel": task.kernel.value,
                "params": list(task.params),
                "weight": task.weight,
                "owner_tile": list(task.owner_tile),
                "step": task.step,
                "reads": sorted([list(item) for item in task.reads]),
                "writes": sorted([list(item) for item in task.writes]),
            }
            for task in graph.tasks
        ],
        "edges": [
            [src, dst] for src, dsts in sorted(graph.successors.items()) for dst in sorted(dsts)
        ],
    }
    return json.dumps(payload, indent=indent)


def save_dot(graph: TaskGraph, path: str, **kwargs) -> None:
    """Write the DOT rendering of ``graph`` to ``path``."""
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(to_dot(graph, **kwargs))


def save_json(graph: TaskGraph, path: str, **kwargs) -> None:
    """Write the JSON serialisation of ``graph`` to ``path``."""
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(to_json(graph, **kwargs))
