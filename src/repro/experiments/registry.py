"""Registry of the paper's experiments.

Maps a stable experiment identifier (``table1``, ``fig2-ge2bnd-square``, …)
to the driver function of :mod:`repro.experiments.figures` that regenerates
its data, together with a short description, the paper location and the
experiment's default parameters.  Experiments are *parameterized*: each
entry stores a ``runner`` plus a ``params`` mapping, and
:func:`run_experiment` merges caller overrides into the defaults — which is
what lets the CLI (``python -m repro run <experiment> --param n=4000``) and
future sweep/batching layers re-scale any experiment without new code.
Plan-level sweeps (built on :meth:`repro.api.SvdPlan.sweep`) register
through the same mechanism.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping

from repro.experiments import figures

Row = Dict[str, object]


@dataclass(frozen=True)
class Experiment:
    """One reproducible experiment.

    Attributes
    ----------
    key:
        Stable identifier used on the command line.
    paper_ref:
        Where the experiment lives in the paper (table / figure / section).
    description:
        One-line summary of what it shows.
    runner:
        Callable returning the result rows.  Called with ``params`` (merged
        with any caller overrides); scaled-down defaults, with
        ``REPRO_FULL_SCALE=1`` switching to the paper's sizes.
    params:
        Default keyword arguments of ``runner``.
    """

    key: str
    paper_ref: str
    description: str
    runner: Callable[..., List[Row]]
    params: Mapping[str, object] = field(default_factory=dict)

    def run(self, **overrides) -> List[Row]:
        """Run with the default parameters, merged with ``overrides``."""
        return self.runner(**{**dict(self.params), **overrides})


def _experiments() -> List[Experiment]:
    return [
        Experiment(
            key="table1",
            paper_ref="Table I",
            description="Tile kernel costs in units of nb^3/3 flops",
            runner=figures.table1_kernel_costs,
        ),
        Experiment(
            key="critical-paths",
            paper_ref="Section IV-A/B",
            description="Measured (DAG) vs closed-form critical paths for BIDIAG and R-BIDIAG",
            runner=figures.critical_path_table,
        ),
        Experiment(
            key="crossover",
            paper_ref="Section IV-C",
            description="BIDIAG / R-BIDIAG crossover ratio delta_s(q)",
            runner=figures.crossover_study,
        ),
        Experiment(
            key="fig2-ge2bnd-square",
            paper_ref="Figure 2 (top-left)",
            description="Shared-memory GE2BND GFlop/s on square matrices, four trees",
            runner=figures.fig2_ge2bnd_square,
        ),
        Experiment(
            key="fig2-ge2bnd-ts2000",
            paper_ref="Figure 2 (top-middle)",
            description="Shared-memory GE2BND on tall-skinny matrices, n=2000",
            runner=figures.fig2_ge2bnd_tall_skinny,
            params={"n": 2000},
        ),
        Experiment(
            key="fig2-ge2bnd-ts10000",
            paper_ref="Figure 2 (top-right)",
            description="Shared-memory GE2BND on tall-skinny matrices, n=10000",
            runner=figures.fig2_ge2bnd_tall_skinny,
            params={"n": 10000},
        ),
        Experiment(
            key="fig2-ge2val",
            paper_ref="Figure 2 (bottom row)",
            description="Shared-memory GE2VAL vs PLASMA / MKL / ScaLAPACK / Elemental",
            runner=figures.fig2_ge2val_comparison,
        ),
        Experiment(
            key="fig3-ge2bnd",
            paper_ref="Figure 3 (top row)",
            description="Distributed strong scaling of GE2BND (1-25 nodes)",
            runner=figures.fig3_strong_scaling_ge2bnd,
        ),
        Experiment(
            key="fig3-ge2val",
            paper_ref="Figure 3 (bottom row)",
            description="Distributed GE2VAL vs Elemental / ScaLAPACK",
            runner=figures.fig3_strong_scaling_ge2val,
        ),
        Experiment(
            key="fig4-weak-n2000",
            paper_ref="Figure 4 (row 1)",
            description="Weak scaling on (80000 x nodes) x 2000 matrices",
            runner=figures.fig4_weak_scaling,
            params={"n": 2000},
        ),
        Experiment(
            key="fig4-weak-n10000",
            paper_ref="Figure 4 (row 2)",
            description="Weak scaling on (100000 x nodes) x 10000 matrices",
            runner=figures.fig4_weak_scaling,
            params={"n": 10000, "node_counts": (1, 2, 4)},
        ),
        Experiment(
            key="plan-tree-sweep",
            paper_ref="Section VI-B (plan API)",
            description="SvdPlan sweep: simulated GE2BND GFlop/s per tree on one node",
            runner=figures.plan_tree_sweep,
        ),
        Experiment(
            key="policy-sweep",
            paper_ref="Section V (engine refactor)",
            description="Scheduling-policy sweep replaying one cached Program per shape",
            runner=figures.policy_sweep,
        ),
        Experiment(
            key="network-sweep",
            paper_ref="Section VI-D (network model)",
            description="Distributed GE2BND under uniform vs alpha-beta network, flat vs greedy top tree",
            runner=figures.network_sweep,
        ),
        Experiment(
            key="scenario-sweep",
            paper_ref="Section V (scenario realism)",
            description="GE2BND under heterogeneity / fault / noise scenarios, with Monte-Carlo columns",
            runner=figures.scenario_sweep,
        ),
        Experiment(
            key="tuning-sweep",
            paper_ref="Section VI-B (autotuning)",
            description="Autotuned (tile size, tree, variant) per matrix shape via repro.tuning",
            runner=figures.tuning_sweep,
        ),
        Experiment(
            key="campaign",
            paper_ref="Section VI (experimental campaign)",
            description="Tree x policy sweep run through the fault-tolerant campaign runner",
            runner=figures.campaign_demo,
        ),
        Experiment(
            key="plan-backend-matrix",
            paper_ref="Sections III-VI (plan API)",
            description="One SvdPlan through the numeric, dag and simulate backends",
            runner=figures.plan_backend_matrix,
        ),
    ]


#: Key -> experiment mapping (stable iteration order).
REGISTRY: Dict[str, Experiment] = {exp.key: exp for exp in _experiments()}


def get_experiment(key: str) -> Experiment:
    """Look up an experiment, raising ``KeyError`` with the known keys."""
    try:
        return REGISTRY[key]
    except KeyError:
        raise KeyError(
            f"unknown experiment {key!r}; known experiments: {', '.join(sorted(REGISTRY))}"
        ) from None


def list_experiments() -> List[Experiment]:
    """All registered experiments, in registry order."""
    return list(REGISTRY.values())


def run_experiment(key: str, **overrides) -> List[Row]:
    """Run one experiment with optional parameter overrides."""
    return get_experiment(key).run(**overrides)
