"""Registry of the paper's experiments.

Maps a stable experiment identifier (``table1``, ``fig2-ge2bnd-square``, …)
to the driver function of :mod:`repro.experiments.figures` that regenerates
its data, together with a short description and the paper location.  Used
by the command-line interface (``python -m repro run <experiment>``) and by
the benchmark harness documentation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence

from repro.experiments import figures

Row = Dict[str, object]


@dataclass(frozen=True)
class Experiment:
    """One reproducible experiment.

    Attributes
    ----------
    key:
        Stable identifier used on the command line.
    paper_ref:
        Where the experiment lives in the paper (table / figure / section).
    description:
        One-line summary of what it shows.
    runner:
        Zero-argument callable returning the result rows (scaled-down
        defaults; ``REPRO_FULL_SCALE=1`` switches to the paper's sizes).
    """

    key: str
    paper_ref: str
    description: str
    runner: Callable[[], List[Row]]


def _experiments() -> List[Experiment]:
    return [
        Experiment(
            key="table1",
            paper_ref="Table I",
            description="Tile kernel costs in units of nb^3/3 flops",
            runner=figures.table1_kernel_costs,
        ),
        Experiment(
            key="critical-paths",
            paper_ref="Section IV-A/B",
            description="Measured (DAG) vs closed-form critical paths for BIDIAG and R-BIDIAG",
            runner=figures.critical_path_table,
        ),
        Experiment(
            key="crossover",
            paper_ref="Section IV-C",
            description="BIDIAG / R-BIDIAG crossover ratio delta_s(q)",
            runner=figures.crossover_study,
        ),
        Experiment(
            key="fig2-ge2bnd-square",
            paper_ref="Figure 2 (top-left)",
            description="Shared-memory GE2BND GFlop/s on square matrices, four trees",
            runner=figures.fig2_ge2bnd_square,
        ),
        Experiment(
            key="fig2-ge2bnd-ts2000",
            paper_ref="Figure 2 (top-middle)",
            description="Shared-memory GE2BND on tall-skinny matrices, n=2000",
            runner=lambda: figures.fig2_ge2bnd_tall_skinny(n=2000),
        ),
        Experiment(
            key="fig2-ge2bnd-ts10000",
            paper_ref="Figure 2 (top-right)",
            description="Shared-memory GE2BND on tall-skinny matrices, n=10000",
            runner=lambda: figures.fig2_ge2bnd_tall_skinny(n=10000),
        ),
        Experiment(
            key="fig2-ge2val",
            paper_ref="Figure 2 (bottom row)",
            description="Shared-memory GE2VAL vs PLASMA / MKL / ScaLAPACK / Elemental",
            runner=figures.fig2_ge2val_comparison,
        ),
        Experiment(
            key="fig3-ge2bnd",
            paper_ref="Figure 3 (top row)",
            description="Distributed strong scaling of GE2BND (1-25 nodes)",
            runner=figures.fig3_strong_scaling_ge2bnd,
        ),
        Experiment(
            key="fig3-ge2val",
            paper_ref="Figure 3 (bottom row)",
            description="Distributed GE2VAL vs Elemental / ScaLAPACK",
            runner=figures.fig3_strong_scaling_ge2val,
        ),
        Experiment(
            key="fig4-weak-n2000",
            paper_ref="Figure 4 (row 1)",
            description="Weak scaling on (80000 x nodes) x 2000 matrices",
            runner=lambda: figures.fig4_weak_scaling(n=2000),
        ),
        Experiment(
            key="fig4-weak-n10000",
            paper_ref="Figure 4 (row 2)",
            description="Weak scaling on (100000 x nodes) x 10000 matrices",
            runner=lambda: figures.fig4_weak_scaling(n=10000, node_counts=(1, 2, 4)),
        ),
    ]


#: Key -> experiment mapping (stable iteration order).
REGISTRY: Dict[str, Experiment] = {exp.key: exp for exp in _experiments()}


def get_experiment(key: str) -> Experiment:
    """Look up an experiment, raising ``KeyError`` with the known keys."""
    try:
        return REGISTRY[key]
    except KeyError:
        raise KeyError(
            f"unknown experiment {key!r}; known experiments: {', '.join(sorted(REGISTRY))}"
        ) from None


def list_experiments() -> List[Experiment]:
    """All registered experiments, in registry order."""
    return list(REGISTRY.values())


def run_experiment(key: str) -> List[Row]:
    """Run one experiment and return its rows."""
    return get_experiment(key).runner()
