"""Experiment harness: one function per figure / table of the paper.

Each function returns plain Python data (lists of dictionaries) so that the
benchmarks under ``benchmarks/`` can both print the paper-style series and
assert the qualitative claims (who wins, where the crossovers are).
"""

from repro.experiments.figures import (
    fig2_ge2bnd_square,
    fig2_ge2bnd_tall_skinny,
    fig2_ge2val_comparison,
    fig3_strong_scaling_ge2bnd,
    fig3_strong_scaling_ge2val,
    fig4_weak_scaling,
    table1_kernel_costs,
    critical_path_table,
    crossover_study,
    format_rows,
)

__all__ = [
    "fig2_ge2bnd_square",
    "fig2_ge2bnd_tall_skinny",
    "fig2_ge2val_comparison",
    "fig3_strong_scaling_ge2bnd",
    "fig3_strong_scaling_ge2val",
    "fig4_weak_scaling",
    "table1_kernel_costs",
    "critical_path_table",
    "crossover_study",
    "format_rows",
]
