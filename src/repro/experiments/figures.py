"""Figure- and table-level experiment drivers.

These functions regenerate the series of every figure and table in the
paper's evaluation section using the runtime simulator and the competitor
models.  Default problem sizes are scaled down (the paper's largest runs
have millions of tile tasks, which a pure-Python simulator cannot sweep in
a benchmark session); set the environment variable ``REPRO_FULL_SCALE=1``
to use the paper's exact sizes.  The *shape* of every comparison (which
tree/algorithm wins, where the crossovers sit) is what the benchmarks
assert, and it is insensitive to this scaling.
"""

from __future__ import annotations

import os
from typing import Dict, Iterable, List, Optional, Sequence

from repro.analysis.crossover import crossover_table
from repro.analysis.formulas import (
    bidiag_flatts_cp,
    bidiag_flattt_cp,
    bidiag_greedy_cp,
    rbidiag_cp,
)
from repro.dag.critical_path import critical_path_length
from repro.dag.tracer import trace_bidiag, trace_rbidiag
from repro.kernels.costs import KERNEL_WEIGHTS, KernelName
from repro.models.competitors import COMPETITORS
from repro.runtime.machine import Machine
from repro.runtime.simulator import simulate_ge2bnd, simulate_ge2val
from repro.trees import FlatTSTree, FlatTTTree, GreedyTree

Row = Dict[str, object]


def full_scale() -> bool:
    """Whether the benchmarks should use the paper's exact problem sizes."""
    return os.environ.get("REPRO_FULL_SCALE", "0") not in ("", "0", "false", "False")


def format_rows(rows: Sequence[Row], columns: Optional[Sequence[str]] = None) -> str:
    """Format a list of result rows as an aligned text table."""
    if not rows:
        return "(no data)"
    if columns is None:
        # Union across rows (first-seen order): sweeps with conditional
        # columns — e.g. mc_* on stochastic-scenario rows only — still show
        # every column; rows that lack one print '-'.
        columns = list(dict.fromkeys(key for r in rows for key in r))
    widths = {c: max(len(str(c)), max(len(_fmt(r.get(c))) for r in rows)) for c in columns}
    header = "  ".join(str(c).ljust(widths[c]) for c in columns)
    lines = [header, "-" * len(header)]
    for r in rows:
        lines.append("  ".join(_fmt(r.get(c)).ljust(widths[c]) for c in columns))
    return "\n".join(lines)


def _fmt(value: object) -> str:
    if value is None:
        return "-"
    if isinstance(value, float):
        return f"{value:.1f}"
    return str(value)


# --------------------------------------------------------------------------- #
# Table I
# --------------------------------------------------------------------------- #
def table1_kernel_costs() -> List[Row]:
    """The kernel cost table (Table I), in units of ``nb^3/3`` flops."""
    pairs = [
        (KernelName.GEQRT, KernelName.UNMQR),
        (KernelName.TSQRT, KernelName.TSMQR),
        (KernelName.TTQRT, KernelName.TTMQR),
    ]
    rows: List[Row] = []
    for panel, update in pairs:
        rows.append(
            {
                "panel": panel.value,
                "panel_cost": KERNEL_WEIGHTS[panel],
                "update": update.value,
                "update_cost": KERNEL_WEIGHTS[update],
            }
        )
    return rows


# --------------------------------------------------------------------------- #
# Section IV: critical paths and crossover
# --------------------------------------------------------------------------- #
def critical_path_table(shapes: Iterable[tuple] = ((4, 4), (8, 8), (16, 8), (32, 8), (16, 16))) -> List[Row]:
    """Measured (DAG) vs closed-form critical paths for BIDIAG and R-BIDIAG."""
    rows: List[Row] = []
    trees = {
        "flatts": (FlatTSTree(), bidiag_flatts_cp),
        "flattt": (FlatTTTree(), bidiag_flattt_cp),
        "greedy": (GreedyTree(), bidiag_greedy_cp),
    }
    for p, q in shapes:
        for name, (tree, formula) in trees.items():
            measured = critical_path_length(trace_bidiag(p, q, tree))
            rows.append(
                {
                    "p": p,
                    "q": q,
                    "algorithm": "bidiag",
                    "tree": name,
                    "cp_measured": measured,
                    "cp_formula": formula(p, q),
                }
            )
            measured_r = critical_path_length(trace_rbidiag(p, q, tree))
            rows.append(
                {
                    "p": p,
                    "q": q,
                    "algorithm": "rbidiag",
                    "tree": name,
                    "cp_measured": measured_r,
                    "cp_formula": rbidiag_cp(p, q, name),
                }
            )
    return rows


def crossover_study(q_values: Sequence[int] = (4, 6, 8, 10, 12, 16)) -> List[Row]:
    """The BIDIAG / R-BIDIAG crossover ratio ``delta_s(q)`` (Section IV-C)."""
    rows: List[Row] = []
    for point in crossover_table(list(q_values)):
        rows.append(
            {"q": point.q, "delta_s": point.delta_s, "p_at_crossover": point.p_at_crossover}
        )
    return rows


# --------------------------------------------------------------------------- #
# Figure 2: shared memory
# --------------------------------------------------------------------------- #
TREES = ("flatts", "flattt", "greedy", "auto")


def _default_machine(n_nodes: int = 1, cores: int = 24, nb: int = 160) -> Machine:
    return Machine(n_nodes=n_nodes, cores_per_node=cores, tile_size=nb)


def fig2_ge2bnd_square(
    sizes: Optional[Sequence[int]] = None,
    trees: Sequence[str] = TREES,
    machine: Optional[Machine] = None,
) -> List[Row]:
    """Figure 2 (top-left): shared-memory GE2BND on square matrices."""
    if machine is None:
        machine = _default_machine()
    if sizes is None:
        sizes = (
            (2500, 5000, 10000, 15000, 20000, 25000, 30000)
            if full_scale()
            else (2000, 4000, 6000, 8000, 10000)
        )
    rows: List[Row] = []
    for mn in sizes:
        for tree in trees:
            sim = simulate_ge2bnd(mn, mn, machine, tree=tree, algorithm="bidiag")
            rows.append({"m": mn, "n": mn, "tree": tree, "gflops": sim.gflops})
    return rows


def fig2_ge2bnd_tall_skinny(
    n: int = 2000,
    m_values: Optional[Sequence[int]] = None,
    trees: Sequence[str] = TREES,
    machine: Optional[Machine] = None,
) -> List[Row]:
    """Figure 2 (top-middle / top-right): GE2BND on tall-skinny matrices,
    BIDIAG vs R-BIDIAG for every tree."""
    if machine is None:
        machine = _default_machine()
    if m_values is None:
        if n <= 2000:
            m_values = (
                (5000, 10000, 20000, 30000, 40000) if full_scale() else (4000, 8000, 16000, 32000)
            )
        else:
            m_values = (
                (20000, 40000, 60000, 80000, 100000) if full_scale() else (20000, 30000, 40000)
            )
    rows: List[Row] = []
    for m in m_values:
        for tree in trees:
            for alg in ("bidiag", "rbidiag"):
                sim = simulate_ge2bnd(m, n, machine, tree=tree, algorithm=alg)
                rows.append(
                    {"m": m, "n": n, "tree": tree, "algorithm": alg, "gflops": sim.gflops}
                )
    return rows


def fig2_ge2val_comparison(
    shapes: Optional[Sequence[tuple]] = None,
    machine: Optional[Machine] = None,
) -> List[Row]:
    """Figure 2 (bottom row): GE2VAL, DPLASMA (best tree) vs competitors."""
    if machine is None:
        machine = _default_machine()
    if shapes is None:
        if full_scale():
            shapes = [(10000, 10000), (20000, 20000), (30000, 30000), (20000, 2000), (40000, 2000)]
        else:
            shapes = [(4000, 4000), (8000, 8000), (16000, 2000), (30000, 2000)]
    rows: List[Row] = []
    for m, n in shapes:
        dplasma = simulate_ge2val(m, n, machine, tree="auto")
        rows.append({"m": m, "n": n, "library": "DPLASMA", "gflops": dplasma.gflops})
        for name, model in COMPETITORS.items():
            rows.append({"m": m, "n": n, "library": name, "gflops": model.gflops(m, n, machine)})
    return rows


# --------------------------------------------------------------------------- #
# Figure 3: distributed strong scaling
# --------------------------------------------------------------------------- #
def fig3_strong_scaling_ge2bnd(
    m: int = 10000,
    n: int = 10000,
    node_counts: Sequence[int] = (1, 4, 9, 16, 25),
    trees: Sequence[str] = TREES,
    algorithm: str = "bidiag",
    nb: int = 160,
) -> List[Row]:
    """Figure 3 (top row): distributed GE2BND strong scaling."""
    rows: List[Row] = []
    for nodes in node_counts:
        machine = _default_machine(n_nodes=nodes, cores=23 if m == n else 24, nb=nb)
        for tree in trees:
            sim = simulate_ge2bnd(m, n, machine, tree=tree, algorithm=algorithm)
            rows.append(
                {
                    "nodes": nodes,
                    "m": m,
                    "n": n,
                    "tree": tree,
                    "algorithm": algorithm,
                    "gflops": sim.gflops,
                    "messages": sim.messages,
                }
            )
    return rows


def fig3_strong_scaling_ge2val(
    m: int = 10000,
    n: int = 10000,
    node_counts: Sequence[int] = (1, 4, 9, 16, 25),
    nb: int = 160,
) -> List[Row]:
    """Figure 3 (bottom row): distributed GE2VAL vs Elemental / ScaLAPACK."""
    rows: List[Row] = []
    for nodes in node_counts:
        machine = _default_machine(n_nodes=nodes, cores=23 if m == n else 24, nb=nb)
        dplasma = simulate_ge2val(m, n, machine, tree="auto")
        rows.append({"nodes": nodes, "library": "DPLASMA", "gflops": dplasma.gflops})
        for name in ("Elemental", "ScaLAPACK"):
            rows.append(
                {
                    "nodes": nodes,
                    "library": name,
                    "gflops": COMPETITORS[name].gflops(m, n, machine),
                }
            )
    return rows


# --------------------------------------------------------------------------- #
# Figure 4: weak scaling
# --------------------------------------------------------------------------- #
def fig4_weak_scaling(
    n: int = 2000,
    rows_per_node: Optional[int] = None,
    node_counts: Sequence[int] = (1, 2, 4, 8, 16, 25),
    trees: Sequence[str] = TREES,
    nb: int = 160,
) -> List[Row]:
    """Figure 4: weak scaling on tall-skinny matrices.

    The paper grows the matrix as ``m = rows_per_node * nodes`` with
    ``rows_per_node = 80,000`` for ``n = 2000`` and ``100,000`` for
    ``n = 10,000``.  The scaled-down default divides those by 10.
    """
    if rows_per_node is None:
        base = 80000 if n <= 2000 else 100000
        rows_per_node = base if full_scale() else base // 10
    rows: List[Row] = []
    for nodes in node_counts:
        m = rows_per_node * nodes
        machine = _default_machine(n_nodes=nodes, cores=24, nb=nb)
        for tree in trees:
            sim = simulate_ge2bnd(m, n, machine, tree=tree, algorithm="rbidiag")
            rows.append(
                {
                    "nodes": nodes,
                    "m": m,
                    "n": n,
                    "tree": tree,
                    "stage": "ge2bnd",
                    "gflops": sim.gflops,
                }
            )
        ge2val = simulate_ge2val(m, n, machine, tree="auto")
        rows.append(
            {
                "nodes": nodes,
                "m": m,
                "n": n,
                "tree": "auto",
                "stage": "ge2val",
                "gflops": ge2val.gflops,
                "efficiency": ge2val.gflops / (machine.peak_gflops),
            }
        )
        for name in ("Elemental", "ScaLAPACK"):
            g = COMPETITORS[name].gflops(m, n, machine)
            rows.append(
                {
                    "nodes": nodes,
                    "m": m,
                    "n": n,
                    "tree": name,
                    "stage": "ge2val",
                    "gflops": g,
                    "efficiency": g / machine.peak_gflops,
                }
            )
    return rows


# --------------------------------------------------------------------------- #
# Plan-API sweeps (the surface future batching / sharding layers run against)
# --------------------------------------------------------------------------- #
def plan_tree_sweep(
    m: int = 4000,
    n: int = 4000,
    tile_size: int = 250,
    n_cores: int = 24,
    trees: Sequence[str] = ("flatts", "flattt", "greedy", "auto"),
) -> List[Row]:
    """Simulated GE2BND GFlop/s for each reduction tree, via a plan sweep.

    Same quantity as the Figure-2 panels, but expressed as a
    :meth:`~repro.api.SvdPlan.sweep` over the unified plan API instead of
    hand-rolled loops.
    """
    from repro.api import SvdPlan, execute_sweep

    if full_scale():
        m = n = 20000
        tile_size = 160
    base = SvdPlan(
        m=m, n=n, stage="ge2bnd", tile_size=tile_size, n_cores=n_cores
    )
    return execute_sweep(base.sweep(tree=list(trees)), backend="simulate")


def policy_sweep(
    m: int = 4000,
    n: int = 4000,
    tile_size: int = 250,
    n_cores: int = 24,
    n_nodes: int = 4,
    tree: str = "greedy",
    policies: Sequence[str] = ("list", "critical-path", "locality", "random"),
) -> List[Row]:
    """Simulated GE2BND makespan per scheduling policy, via a plan sweep.

    The experiment axis the engine refactor opened: every policy replays
    the *same* compiled :class:`~repro.ir.program.Program` (one trace,
    shared through the in-process program cache), so the rows isolate pure
    scheduling effects.
    """
    from repro.api import SvdPlan, execute_sweep

    if full_scale():
        m = n = 20000
        tile_size = 160
    base = SvdPlan(
        m=m, n=n, stage="ge2bnd", tile_size=tile_size,
        n_cores=n_cores, n_nodes=n_nodes, tree=tree,
    )
    return execute_sweep(base.sweep(policy=list(policies)), backend="simulate")


def network_sweep(
    m: int = 4000,
    n: int = 4000,
    tile_size: int = 250,
    n_cores: int = 8,
    n_nodes: int = 4,
    trees: Sequence[str] = ("flatts", "greedy"),
    networks: Sequence[str] = ("uniform", "alpha-beta"),
) -> List[Row]:
    """Distributed GE2BND under both network models, flat vs greedy top tree.

    The Section VI-D axis the network subsystem opened: the same compiled
    program per tree is replayed under the legacy ``uniform`` model and the
    message-level ``alpha-beta`` model.  Message counts are identical by
    construction (both deduplicate per producer and destination node — the
    rows double as a regression check); what changes is the *time* the
    messages cost, which is where the greedy top tree's extra traffic
    becomes visible.
    """
    from repro.api import SvdPlan, execute_sweep

    if full_scale():
        m = n = 20000
        tile_size = 160
        n_cores = 24
        n_nodes = 16
    base = SvdPlan(
        m=m, n=n, stage="ge2bnd", tile_size=tile_size,
        n_cores=n_cores, n_nodes=n_nodes,
    )
    return execute_sweep(
        base.sweep(tree=list(trees), network=list(networks)), backend="simulate"
    )


def scenario_sweep(
    m: int = 2000,
    n: int = 2000,
    tile_size: int = 250,
    n_cores: int = 8,
    n_nodes: int = 4,
    tree: str = "greedy",
    scenarios: Sequence[str] = ("none", "hetero", "fail-stop", "straggler", "noisy-net"),
    draws: int = 32,
    seed: int = 0,
) -> List[Row]:
    """Simulated GE2BND under the machine-realism scenarios, side by side.

    The axis the scenario subsystem opened: the same compiled program is
    replayed on the ideal machine (``none``), under static heterogeneity
    (``hetero``) and under the stochastic fault/noise models, so the rows
    show how far the paper's nominal makespan degrades per failure mode.
    Stochastic rows carry the Monte-Carlo columns (``mc_mean`` /
    ``mc_p50`` / ``mc_p95``); deterministic rows only the nominal time —
    the ``none`` row is bit-identical to the default simulate path.
    """
    from repro.api import SvdPlan, execute_sweep

    if full_scale():
        m = n = 20000
        tile_size = 160
        n_cores = 24
        draws = 128
    base = SvdPlan(
        m=m, n=n, stage="ge2bnd", tile_size=tile_size,
        n_cores=n_cores, n_nodes=n_nodes, tree=tree,
        draws=draws, seed=seed,
    )
    return execute_sweep(base.sweep(scenario=list(scenarios)), backend="simulate")


def plan_backend_matrix(
    m: int = 60,
    n: int = 40,
    tile_size: int = 10,
    tree: str = "greedy",
) -> List[Row]:
    """One small plan run through all three backends, side by side.

    Demonstrates (and regression-checks) that the numeric, DAG and
    simulation lenses of the paper agree on one problem description.
    """
    from repro.api import BACKENDS, SvdPlan, execute

    plan = SvdPlan(m=m, n=n, stage="ge2val", tile_size=tile_size, tree=tree)
    return [execute(plan, backend=backend).to_row() for backend in BACKENDS]


def tuning_sweep(
    shapes: Sequence[tuple] = ((2000, 2000), (6000, 1200), (1200, 1200)),
    objective: str = "makespan",
    n_cores: int = 24,
    workers: int = 1,
    tile_sizes: Optional[Sequence[int]] = None,
    use_cache: bool = False,
) -> List[Row]:
    """Autotune each shape and tabulate the winning configuration.

    The registry's answer to Section VI-B: instead of quoting the paper's
    tuned ``nb = 160``, let the :mod:`repro.tuning` subsystem find the best
    (tile size, tree, variant) per shape.  Caching is off by default so the
    experiment is self-contained; pass ``use_cache=True`` to go through the
    persistent plan cache.
    """
    from repro.api import SvdPlan
    from repro.tuning import SearchSpace, tune

    if full_scale():
        shapes = ((20000, 20000), (30000, 30000), (100000, 10000))
    rows: List[Row] = []
    for m, n in shapes:
        plan = SvdPlan(m=m, n=n, stage="ge2val", n_cores=n_cores)
        result = tune(
            plan,
            space=SearchSpace(tile_sizes=tile_sizes),
            objective=objective,
            workers=workers,
            cache=use_cache,
        )
        best = result.best_plan
        rows.append(
            {
                "m": m,
                "n": n,
                "objective": result.objective,
                "best_score": result.best_score,
                "tile_size": best.tile_size,
                "tree": best.tree,
                "variant": best.variant,
                "candidates": result.n_candidates,
                "evaluated": result.n_evaluated,
                "pruned": result.n_pruned,
                "from_cache": result.from_cache,
            }
        )
    return rows


def campaign_demo(
    m: int = 1000,
    n: int = 800,
    tile_size: int = 100,
    n_cores: int = 4,
    workers: int = 2,
    chunk_size: int = 1,
    trees: Sequence[str] = ("flatts", "flattt", "greedy", "binary"),
    policies: Sequence[str] = ("list", "fifo"),
) -> List[Row]:
    """Run a small sweep through the fault-tolerant campaign runner.

    The registry's face of :mod:`repro.campaign`: the (tree, policy)
    product executes as a resumable campaign — process-pool fan-out,
    bounded retries, crash-consistent sqlite store — and the completed
    result rows come back annotated with the campaign's bookkeeping
    (candidate id, attempts charged).  Fault injection still applies when
    ``REPRO_CAMPAIGN_FAULTS`` is set, so this doubles as a demo of a sweep
    surviving injected crashes.
    """
    import tempfile
    from pathlib import Path

    from repro.campaign import CampaignSpec, CampaignRunner

    if full_scale():
        m, n, tile_size, n_cores = 20000, 20000, 160, 24
    spec = CampaignSpec(
        name="campaign-demo",
        base={"m": m, "n": n, "tile_size": tile_size, "n_cores": n_cores},
        axes={"tree": list(trees), "policy": list(policies)},
        workers=workers,
        chunk_size=chunk_size,
        backoff_seconds=0.05,
    )
    with tempfile.TemporaryDirectory(prefix="repro-campaign-") as tmp:
        runner = CampaignRunner(spec, Path(tmp) / "store.sqlite")
        try:
            runner.run()
            records = runner.store.records()
        finally:
            runner.store.close()
    rows: List[Row] = []
    for rec in records:
        row: Row = dict(rec.row) if rec.row else {"error": rec.error}
        row["candidate"] = rec.candidate_id
        row["status"] = rec.status
        row["attempts"] = rec.attempts
        rows.append(row)
    return rows
