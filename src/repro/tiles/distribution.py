"""Process grids and the 2D block-cyclic data distribution.

The paper's distributed experiments (Section VI-D) map tiles to nodes with
the ScaLAPACK-style 2D block-cyclic distribution over an ``R x C`` process
grid: tile ``(i, j)`` lives on process ``(i mod R, j mod C)``.  The paper
uses ``sqrt(nodes) x sqrt(nodes)`` grids for square matrices and
``nodes x 1`` grids for tall-and-skinny matrices.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterator, List, Sequence, Tuple, Union

import numpy as np


@dataclass(frozen=True)
class ProcessGrid:
    """An ``R x C`` grid of processes (one process per node in the paper)."""

    rows: int
    cols: int

    def __post_init__(self) -> None:
        if self.rows < 1 or self.cols < 1:
            raise ValueError(f"process grid must be at least 1x1, got {self.rows}x{self.cols}")

    @property
    def size(self) -> int:
        """Total number of processes."""
        return self.rows * self.cols

    def rank_of(self, grid_row: int, grid_col: int) -> int:
        """Linear rank of grid position ``(grid_row, grid_col)`` (row-major)."""
        if not (0 <= grid_row < self.rows and 0 <= grid_col < self.cols):
            raise IndexError(
                f"grid position ({grid_row}, {grid_col}) outside {self.rows}x{self.cols} grid"
            )
        return grid_row * self.cols + grid_col

    def position_of(self, rank: int) -> Tuple[int, int]:
        """Grid position of linear rank ``rank``."""
        if not (0 <= rank < self.size):
            raise IndexError(f"rank {rank} out of range [0, {self.size})")
        return divmod(rank, self.cols)

    def ranks(self) -> Iterator[int]:
        """Iterate over all linear ranks."""
        return iter(range(self.size))

    @classmethod
    def for_square_matrix(cls, n_nodes: int) -> "ProcessGrid":
        """The near-square grid used by the paper for square matrices.

        Chooses the largest ``R <= sqrt(n_nodes)`` dividing ``n_nodes`` so
        that all nodes are used (``sqrt(n) x sqrt(n)`` when ``n_nodes`` is a
        perfect square).
        """
        if n_nodes < 1:
            raise ValueError(f"n_nodes must be >= 1, got {n_nodes}")
        r = int(math.isqrt(n_nodes))
        while r > 1 and n_nodes % r != 0:
            r -= 1
        return cls(r, n_nodes // r)

    @classmethod
    def for_tall_skinny_matrix(cls, n_nodes: int) -> "ProcessGrid":
        """The ``n_nodes x 1`` grid used by the paper for tall-skinny matrices."""
        if n_nodes < 1:
            raise ValueError(f"n_nodes must be >= 1, got {n_nodes}")
        return cls(n_nodes, 1)


@dataclass(frozen=True)
class BlockCyclicDistribution:
    """2D block-cyclic mapping of a ``p x q`` tile grid onto a process grid.

    Tile ``(i, j)`` is owned by the process at grid position
    ``(i mod R, j mod C)``.  The *owner-computes* rule of DPLASMA maps each
    task that writes tile ``(i, j)`` onto that tile's owner.
    """

    grid: ProcessGrid

    def owner(self, i: int, j: int) -> int:
        """Linear rank of the process owning tile ``(i, j)``."""
        if i < 0 or j < 0:
            raise IndexError(f"tile indices must be non-negative, got ({i}, {j})")
        return self.grid.rank_of(i % self.grid.rows, j % self.grid.cols)

    def owner_array(
        self,
        rows: Union[np.ndarray, Sequence[int]],
        cols: Union[np.ndarray, Sequence[int]],
    ) -> np.ndarray:
        """Vectorized :meth:`owner` over parallel tile-coordinate arrays.

        One modular-arithmetic pass instead of a Python call per tile —
        this is how the simulation engine's structure-of-arrays path maps
        a whole program onto nodes at once.  Same values (and the same
        ``IndexError`` on negative coordinates) as :meth:`owner`.
        """
        rows = np.ascontiguousarray(rows, dtype=np.int64)
        cols = np.ascontiguousarray(cols, dtype=np.int64)
        if rows.shape != cols.shape:
            raise ValueError(
                f"rows and cols must align, got {rows.shape} vs {cols.shape}"
            )
        if rows.size and (int(rows.min()) < 0 or int(cols.min()) < 0):
            raise IndexError("tile indices must be non-negative")
        return (rows % self.grid.rows) * self.grid.cols + (cols % self.grid.cols)

    def local_tiles(self, rank: int, p: int, q: int) -> List[Tuple[int, int]]:
        """All tiles of a ``p x q`` tile matrix owned by ``rank``."""
        gr, gc = self.grid.position_of(rank)
        return [
            (i, j)
            for i in range(gr, p, self.grid.rows)
            for j in range(gc, q, self.grid.cols)
        ]

    def local_tile_count(self, rank: int, p: int, q: int) -> int:
        """Number of tiles of a ``p x q`` tile matrix owned by ``rank``."""
        gr, gc = self.grid.position_of(rank)
        rows = len(range(gr, p, self.grid.rows))
        cols = len(range(gc, q, self.grid.cols))
        return rows * cols

    def is_balanced(self, p: int, q: int, tolerance: float = 0.5) -> bool:
        """Whether the tile counts per process are within ``tolerance``
        (relative) of each other.  Useful sanity check in tests and examples.
        """
        counts = [self.local_tile_count(r, p, q) for r in self.grid.ranks()]
        lo, hi = min(counts), max(counts)
        if hi == 0:
            return True
        return (hi - lo) / hi <= tolerance
