"""Tiled matrix container.

:class:`TiledMatrix` stores an ``m x n`` matrix as a ``p x q`` grid of
independent NumPy tiles, matching the storage used by PLASMA / DPLASMA.
Tile ``(i, j)`` can be read and written independently of every other tile,
which is what allows the tiled algorithms to expose task parallelism.
"""

from __future__ import annotations

from typing import Dict, Iterator, Optional, Tuple

import numpy as np

from repro.tiles.layout import TileLayout


class TiledMatrix:
    """An ``m x n`` matrix stored as ``nb x nb`` tiles.

    Parameters
    ----------
    layout:
        The tile geometry (matrix size and tile size).
    dtype:
        NumPy dtype of the tiles (default ``float64``).
    tiles:
        Optional pre-existing tile dictionary; used internally by
        :meth:`copy` — normal users should start from :meth:`from_dense`
        or :meth:`zeros`.
    """

    def __init__(
        self,
        layout: TileLayout,
        dtype: np.dtype = np.float64,
        tiles: Optional[Dict[Tuple[int, int], np.ndarray]] = None,
    ) -> None:
        self.layout = layout
        self.dtype = np.dtype(dtype)
        if tiles is None:
            tiles = {
                (i, j): np.zeros(layout.tile_size_of(i, j), dtype=self.dtype)
                for i, j in layout.tiles()
            }
        self._tiles = tiles

    # ------------------------------------------------------------------ #
    # Constructors
    # ------------------------------------------------------------------ #
    @classmethod
    def from_dense(cls, a: np.ndarray, tile_size: int) -> "TiledMatrix":
        """Cut a dense 2-D array into tiles of size ``tile_size``."""
        a = np.asarray(a)
        if a.ndim != 2:
            raise ValueError(f"expected a 2-D array, got ndim={a.ndim}")
        layout = TileLayout(a.shape[0], a.shape[1], tile_size)
        mat = cls(layout, dtype=a.dtype if a.dtype.kind == "f" else np.float64)
        for i, j in layout.tiles():
            r0, r1 = layout.row_range(i)
            c0, c1 = layout.col_range(j)
            mat._tiles[(i, j)] = np.array(a[r0:r1, c0:c1], dtype=mat.dtype, copy=True)
        return mat

    @classmethod
    def zeros(cls, m: int, n: int, tile_size: int, dtype=np.float64) -> "TiledMatrix":
        """An all-zero tiled matrix of size ``m x n``."""
        return cls(TileLayout(m, n, tile_size), dtype=dtype)

    # ------------------------------------------------------------------ #
    # Geometry shortcuts
    # ------------------------------------------------------------------ #
    @property
    def m(self) -> int:
        return self.layout.m

    @property
    def n(self) -> int:
        return self.layout.n

    @property
    def p(self) -> int:
        return self.layout.p

    @property
    def q(self) -> int:
        return self.layout.q

    @property
    def nb(self) -> int:
        return self.layout.nb

    @property
    def shape(self) -> Tuple[int, int]:
        return self.layout.shape

    @property
    def tile_shape(self) -> Tuple[int, int]:
        return self.layout.tile_shape

    # ------------------------------------------------------------------ #
    # Tile access
    # ------------------------------------------------------------------ #
    def __getitem__(self, key: Tuple[int, int]) -> np.ndarray:
        """Return tile ``(i, j)`` (a live view of the stored array)."""
        return self._tiles[self._normalize_key(key)]

    def __setitem__(self, key: Tuple[int, int], value: np.ndarray) -> None:
        """Replace tile ``(i, j)``; the shape must match the layout."""
        i, j = self._normalize_key(key)
        expected = self.layout.tile_size_of(i, j)
        value = np.asarray(value, dtype=self.dtype)
        if value.shape != expected:
            raise ValueError(
                f"tile ({i}, {j}) must have shape {expected}, got {value.shape}"
            )
        self._tiles[(i, j)] = value

    def _normalize_key(self, key: Tuple[int, int]) -> Tuple[int, int]:
        if not (isinstance(key, tuple) and len(key) == 2):
            raise TypeError("tile index must be an (i, j) tuple")
        i, j = key
        self.layout._check_tile_index(i, self.p, "row")
        self.layout._check_tile_index(j, self.q, "column")
        return (i, j)

    def tiles(self) -> Iterator[Tuple[Tuple[int, int], np.ndarray]]:
        """Iterate over ``((i, j), tile)`` pairs in row-major order."""
        for ij in self.layout.tiles():
            yield ij, self._tiles[ij]

    # ------------------------------------------------------------------ #
    # Conversions & utilities
    # ------------------------------------------------------------------ #
    def to_dense(self) -> np.ndarray:
        """Assemble the tiles back into a dense 2-D array."""
        out = np.zeros(self.shape, dtype=self.dtype)
        for (i, j), tile in self.tiles():
            r0, r1 = self.layout.row_range(i)
            c0, c1 = self.layout.col_range(j)
            out[r0:r1, c0:c1] = tile
        return out

    def copy(self) -> "TiledMatrix":
        """Deep copy of the matrix."""
        tiles = {ij: tile.copy() for ij, tile in self._tiles.items()}
        return TiledMatrix(self.layout, dtype=self.dtype, tiles=tiles)

    def norm_fro(self) -> float:
        """Frobenius norm, computed tile by tile."""
        acc = 0.0
        for _, tile in self.tiles():
            acc += float(np.sum(tile * tile))
        return float(np.sqrt(acc))

    def submatrix(self, rows: int, cols: int) -> "TiledMatrix":
        """Return a copy of the top-left ``rows x cols`` *tile* block.

        Used by R-BIDIAG to extract the upper ``q x q`` tile block (the R
        factor) after the preliminary QR factorization.
        """
        if not (1 <= rows <= self.p and 1 <= cols <= self.q):
            raise ValueError(
                f"requested {rows}x{cols} tile block from a {self.p}x{self.q} tile matrix"
            )
        r1 = self.layout.row_range(rows - 1)[1]
        c1 = self.layout.col_range(cols - 1)[1]
        dense = self.to_dense()[:r1, :c1]
        return TiledMatrix.from_dense(dense, self.nb)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"TiledMatrix(m={self.m}, n={self.n}, nb={self.nb}, "
            f"tiles={self.p}x{self.q}, dtype={self.dtype})"
        )
