"""Tile layout arithmetic.

A :class:`TileLayout` describes how an ``m x n`` dense matrix is cut into a
``p x q`` grid of tiles of nominal size ``nb x nb``.  Tiles in the last tile
row / column may be smaller when ``m`` or ``n`` is not a multiple of ``nb``
(as in PLASMA's tile layout).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Tuple


def ceil_div(a: int, b: int) -> int:
    """Integer ceiling division ``ceil(a / b)`` for non-negative ``a``."""
    if b <= 0:
        raise ValueError(f"divisor must be positive, got {b}")
    return -(-a // b)


@dataclass(frozen=True)
class TileLayout:
    """Geometry of a tiled ``m x n`` matrix with tile size ``nb``.

    Attributes
    ----------
    m, n:
        Element-wise matrix dimensions.
    nb:
        Nominal tile size.
    """

    m: int
    n: int
    nb: int

    def __post_init__(self) -> None:
        if self.m < 1 or self.n < 1:
            raise ValueError(f"matrix dimensions must be >= 1, got {self.m}x{self.n}")
        if self.nb < 1:
            raise ValueError(f"tile size must be >= 1, got {self.nb}")

    @property
    def p(self) -> int:
        """Number of tile rows."""
        return ceil_div(self.m, self.nb)

    @property
    def q(self) -> int:
        """Number of tile columns."""
        return ceil_div(self.n, self.nb)

    @property
    def shape(self) -> Tuple[int, int]:
        """Element-wise shape ``(m, n)``."""
        return (self.m, self.n)

    @property
    def tile_shape(self) -> Tuple[int, int]:
        """Tile-wise shape ``(p, q)``."""
        return (self.p, self.q)

    def tile_rows(self, i: int) -> int:
        """Number of element rows of tile row ``i``."""
        self._check_tile_index(i, self.p, "row")
        if i == self.p - 1:
            return self.m - i * self.nb
        return self.nb

    def tile_cols(self, j: int) -> int:
        """Number of element columns of tile column ``j``."""
        self._check_tile_index(j, self.q, "column")
        if j == self.q - 1:
            return self.n - j * self.nb
        return self.nb

    def tile_size_of(self, i: int, j: int) -> Tuple[int, int]:
        """Element-wise shape of tile ``(i, j)``."""
        return (self.tile_rows(i), self.tile_cols(j))

    def row_range(self, i: int) -> Tuple[int, int]:
        """Half-open element row range ``[start, stop)`` of tile row ``i``."""
        self._check_tile_index(i, self.p, "row")
        start = i * self.nb
        return (start, start + self.tile_rows(i))

    def col_range(self, j: int) -> Tuple[int, int]:
        """Half-open element column range ``[start, stop)`` of tile column ``j``."""
        self._check_tile_index(j, self.q, "column")
        start = j * self.nb
        return (start, start + self.tile_cols(j))

    def tiles(self) -> Iterator[Tuple[int, int]]:
        """Iterate over all tile coordinates in row-major order."""
        for i in range(self.p):
            for j in range(self.q):
                yield (i, j)

    def tile_of_element(self, row: int, col: int) -> Tuple[int, int]:
        """Tile coordinate containing element ``(row, col)``."""
        if not (0 <= row < self.m and 0 <= col < self.n):
            raise IndexError(f"element ({row}, {col}) outside {self.m}x{self.n} matrix")
        return (row // self.nb, col // self.nb)

    @staticmethod
    def _check_tile_index(idx: int, bound: int, what: str) -> None:
        if not (0 <= idx < bound):
            raise IndexError(f"tile {what} index {idx} out of range [0, {bound})")
