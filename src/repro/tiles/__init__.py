"""Tiled-matrix storage, tile layout arithmetic and data distributions."""

from repro.tiles.layout import TileLayout
from repro.tiles.matrix import TiledMatrix
from repro.tiles.distribution import BlockCyclicDistribution, ProcessGrid

__all__ = ["TileLayout", "TiledMatrix", "BlockCyclicDistribution", "ProcessGrid"]
