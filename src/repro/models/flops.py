"""Operation counts (Section III-C and Section VI-B of the paper).

All counts are in floating-point operations for a real ``m x n`` matrix
with ``m >= n``:

* direct bidiagonalization (GE2BD / GE2BND): ``4 n^2 (m - n/3)``;
* R-bidiagonalization (QR first):            ``2 n^2 (m + n)``;
* the crossover (Chan): R-BIDIAG is cheaper whenever ``m >= 5n/3``.

For *performance reporting* the paper always divides by the direct
bidiagonalization count, even when R-BIDIAG is used ("we use the same
number of flops as for BIDIAG"), so that GFlop/s of the two variants are
directly comparable; :func:`ge2bnd_reported_flops` implements that
convention.
"""

from __future__ import annotations


def _check_mn(m: int, n: int) -> None:
    if m < 1 or n < 1:
        raise ValueError(f"matrix dimensions must be >= 1, got {m}x{n}")
    if m < n:
        raise ValueError(f"expected m >= n, got {m}x{n}")


def ge2bd_flops(m: int, n: int) -> float:
    """Flops of the direct (one-stage or tiled) bidiagonalization: ``4n^2(m - n/3)``."""
    _check_mn(m, n)
    return 4.0 * n * n * (m - n / 3.0)


def rbidiag_flops(m: int, n: int) -> float:
    """Flops of R-bidiagonalization (QR + square bidiagonalization): ``2n^2(m + n)``."""
    _check_mn(m, n)
    return 2.0 * n * n * (m + n)


def chan_crossover_m(n: int) -> float:
    """The row count above which R-BIDIAG performs fewer flops: ``m = 5n/3``."""
    if n < 1:
        raise ValueError("n must be >= 1")
    return 5.0 * n / 3.0


def ge2bnd_reported_flops(m: int, n: int) -> float:
    """Operation count used to report GE2BND GFlop/s (paper convention).

    Both BIDIAG and R-BIDIAG runs are normalised by the direct
    bidiagonalization count so their GFlop/s are comparable.
    """
    return ge2bd_flops(m, n)


def bnd2bd_flops(n: int, nb: int) -> float:
    """Approximate flops of the band-to-bidiagonal bulge chasing.

    Each of the ``O(n^2 / 2)`` annihilated band entries triggers a chase of
    ``O(n / nb)`` steps, each applying two Givens rotations over ``O(nb)``
    elements — about ``6 n^2 nb`` flops in total (the classical estimate for
    the one-stage band reduction).  The constant only matters for the
    performance model of the second stage, which the paper keeps on a
    single node.
    """
    if n < 1 or nb < 1:
        raise ValueError("n and nb must be >= 1")
    return 6.0 * n * n * nb


def bd2val_flops(n: int) -> float:
    """Approximate flops of the bidiagonal QR iteration (singular values only).

    About 2–3 sweeps per singular value, each sweep costing ``O(n)`` — the
    paper treats this cost as negligible ``O(n^2)``.
    """
    if n < 1:
        raise ValueError("n must be >= 1")
    return 30.0 * n * n


def ge2val_reported_flops(m: int, n: int) -> float:
    """Operation count used to report GE2VAL GFlop/s (paper convention).

    The BND2BD and BD2VAL stages add only lower-order terms, so GE2VAL is
    normalised with the same count as GE2BND.
    """
    return ge2bd_flops(m, n)
