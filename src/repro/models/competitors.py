"""Performance models of the competing GE2VAL implementations (Section VI-B).

The paper compares its DPLASMA implementation against four competitors.
None of them can be run here (closed-source or require the original
testbed), so each is replaced by a model that encodes its *algorithmic
structure* — which is what determines the shape of the figures:

* **PLASMA** — the same two-stage tiled algorithm but restricted to the
  FLATTS tree and a single node.  Modelled by actually simulating our
  BIDIAG-FLATTS task graph on one node and adding the shared-memory
  BND2BD + BD2VAL stages.
* **Intel MKL** — a shared-memory multi-stage solver (since version 11.2).
  Modelled as the two-stage flop count executed at a fraction of the node
  GEMM peak that ramps up with the amount of work per core (it saturates on
  small or very skinny problems), plus the memory-bound second stage.
* **ScaLAPACK** — the one-stage ``PxGEBRD``: half of the flops in Level-2
  BLAS (memory bound), half in Level-3 (compute bound), with a modest
  per-node parallel efficiency.  This is what produces the ~50 GFlop/s
  plateau of the paper.
* **Elemental** — same one-stage algorithm but automatically switches to
  Chan's algorithm (QR first) when ``m >= 1.2 n``; the QR phase runs at a
  good Level-3 rate but its scalability saturates beyond ~10 nodes (the
  plateau observed in the paper).

All models expose ``gflops(m, n, machine)`` returning the GE2VAL rate with
the paper's reporting convention (direct bidiagonalization flop count).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Dict

from repro.models.flops import ge2bd_flops, ge2val_reported_flops
from repro.runtime.machine import Machine


class CompetitorModel(ABC):
    """Base class: a named model producing a GE2VAL time and rate."""

    name: str = "competitor"

    @abstractmethod
    def time_seconds(self, m: int, n: int, machine: Machine) -> float:
        """Predicted GE2VAL wall-clock time in seconds."""

    def gflops(self, m: int, n: int, machine: Machine) -> float:
        """Predicted GE2VAL rate (paper reporting convention)."""
        t = self.time_seconds(m, n, machine)
        if t <= 0:
            return 0.0
        return ge2val_reported_flops(m, n) / t / 1e9


def _memory_bound_rate(machine: Machine) -> float:
    """Flops/s sustainable by a node running Level-2 BLAS (2 flops / 8 bytes)."""
    return machine.preset.memory_bandwidth_gbs * 1e9 / 4.0


def _second_stage_seconds(n: int, machine: Machine) -> float:
    """Shared-memory BND2BD + BD2VAL time (same model as the simulator)."""
    from repro.runtime.simulator import post_processing_seconds

    return post_processing_seconds(n, machine)


@dataclass
class PlasmaModel(CompetitorModel):
    """PLASMA: tiled two-stage GE2VAL, FLATTS tree, single node."""

    name: str = "PLASMA"
    #: QUARK (PLASMA's runtime) reaches slightly lower efficiency than
    #: PaRSEC on the same DAG; the paper's Figure 2 shows a small but
    #: consistent gap.
    runtime_efficiency: float = 0.95

    def time_seconds(self, m: int, n: int, machine: Machine) -> float:
        from repro.runtime.simulator import simulate_ge2bnd

        single_node = machine.with_nodes(1)
        sim = simulate_ge2bnd(m, n, single_node, tree="flatts", algorithm="bidiag")
        return sim.time_seconds / self.runtime_efficiency + _second_stage_seconds(
            n, single_node
        )


@dataclass
class MklModel(CompetitorModel):
    """Intel MKL: shared-memory multi-stage solver (version >= 11.2)."""

    name: str = "MKL"
    #: Peak fraction of the node GEMM rate MKL's first stage reaches on
    #: large, square problems.
    peak_fraction: float = 0.55
    #: Work per core (in GFlop) needed to reach half of that peak fraction —
    #: below it the first stage is starved for parallelism (the saturation
    #: visible on the paper's n = 2000 tall-and-skinny case).
    half_saturation_gflop_per_core: float = 4.0

    def time_seconds(self, m: int, n: int, machine: Machine) -> float:
        single_node = machine.with_nodes(1)
        flops = ge2bd_flops(m, n)
        work_per_core = flops / 1e9 / single_node.cores_per_node
        ramp = work_per_core / (work_per_core + self.half_saturation_gflop_per_core)
        rate = self.peak_fraction * ramp * single_node.node_peak_gflops * 1e9
        return flops / rate + _second_stage_seconds(n, single_node)


@dataclass
class ScalapackModel(CompetitorModel):
    """ScaLAPACK PxGEBRD: one-stage, half Level-2 / half Level-3 BLAS."""

    name: str = "ScaLAPACK"
    #: Fraction of the flops executed in Level-3 BLAS (Großer & Lang report
    #: roughly a 50/50 split for the blocked one-stage algorithm).
    level3_fraction: float = 0.5
    #: Efficiency of the Level-3 half relative to the GEMM peak.
    level3_efficiency: float = 0.8
    #: Parallel efficiency per node for the distributed run.  PxGEBRD is
    #: dominated by distributed matrix-vector products whose efficiency is
    #: poor (the paper's Figures 3 and 4 show ScaLAPACK barely scaling).
    node_parallel_efficiency: float = 0.35
    #: Per-column synchronisation cost: every one of the ``2n`` panel columns
    #: requires two all-reduces of the trailing-matrix products.  This is the
    #: latency term that prevents PxGEBRD from scaling with node count.
    panel_sync_us: float = 10.0

    def _scaled_nodes(self, machine: Machine) -> float:
        if machine.n_nodes == 1:
            return 1.0
        return 1.0 + (machine.n_nodes - 1) * self.node_parallel_efficiency

    def _sync_seconds(self, n: int, machine: Machine) -> float:
        """Latency of the per-column all-reduces of the distributed run."""
        if machine.n_nodes == 1:
            return 0.0
        import math

        hops = math.ceil(math.log2(machine.n_nodes))
        return 4.0 * n * self.panel_sync_us * 1e-6 * hops

    def time_seconds(self, m: int, n: int, machine: Machine) -> float:
        flops = ge2bd_flops(m, n)
        nodes = self._scaled_nodes(machine)
        l3_rate = self.level3_efficiency * machine.node_peak_gflops * 1e9 * nodes
        l2_rate = _memory_bound_rate(machine) * nodes
        t = (
            self.level3_fraction * flops / l3_rate
            + (1.0 - self.level3_fraction) * flops / l2_rate
            + self._sync_seconds(n, machine)
        )
        # The final bidiagonal solve is negligible and shared memory.
        return t


@dataclass
class ElementalModel(CompetitorModel):
    """Elemental: ScaLAPACK-like GEBRD with an automatic switch to Chan's
    algorithm (QR first) when ``m >= 1.2 n``."""

    name: str = "Elemental"
    chan_threshold: float = 1.2
    #: Rate of the QR phase relative to GEMM peak on one fully-loaded node.
    qr_efficiency: float = 0.6
    #: Parallel efficiency per extra node of Elemental's 2D QR (the paper
    #: points at "the lack of scalability of the Elemental QR factorization
    #: compared to the HQR implementation").
    qr_node_efficiency: float = 0.5
    #: Elemental's QR stops scaling beyond this node count (the plateau after
    #: ~10 nodes in Figures 3 and 4).
    qr_scaling_cap_nodes: int = 10
    #: Work per core (GFlop) at which the QR phase reaches half its peak
    #: rate; tall-and-skinny panels starve the 2D algorithm for parallelism.
    half_saturation_gflop_per_core: float = 4.0
    gebrd: ScalapackModel = None  # type: ignore[assignment]

    def __post_init__(self) -> None:
        if self.gebrd is None:
            self.gebrd = ScalapackModel(name="Elemental-GEBRD")

    def time_seconds(self, m: int, n: int, machine: Machine) -> float:
        if m < self.chan_threshold * n:
            return self.gebrd.time_seconds(m, n, machine)
        # Chan's algorithm: QR(m, n) + GEBRD(n, n).
        qr_flops = 2.0 * n * n * (m - n / 3.0)
        effective_nodes = min(machine.n_nodes, self.qr_scaling_cap_nodes)
        node_scaling = 1.0 + (effective_nodes - 1) * self.qr_node_efficiency
        work_per_core = qr_flops / 1e9 / machine.total_cores
        ramp = work_per_core / (work_per_core + self.half_saturation_gflop_per_core)
        qr_rate = (
            self.qr_efficiency * ramp * machine.node_peak_gflops * 1e9 * node_scaling
        )
        qr_time = qr_flops / qr_rate
        gebrd_time = self.gebrd.time_seconds(n, n, machine)
        return qr_time + gebrd_time


#: Registry used by the benchmark harness.
COMPETITORS: Dict[str, CompetitorModel] = {
    "PLASMA": PlasmaModel(),
    "MKL": MklModel(),
    "ScaLAPACK": ScalapackModel(),
    "Elemental": ElementalModel(),
}
