"""Operation counts and competitor performance models."""

from repro.models.flops import (
    ge2bd_flops,
    rbidiag_flops,
    ge2bnd_reported_flops,
    ge2val_reported_flops,
    bnd2bd_flops,
    bd2val_flops,
    chan_crossover_m,
)
from repro.models.competitors import (
    CompetitorModel,
    PlasmaModel,
    MklModel,
    ScalapackModel,
    ElementalModel,
    COMPETITORS,
)

__all__ = [
    "ge2bd_flops",
    "rbidiag_flops",
    "ge2bnd_reported_flops",
    "ge2val_reported_flops",
    "bnd2bd_flops",
    "bd2val_flops",
    "chan_crossover_m",
    "CompetitorModel",
    "PlasmaModel",
    "MklModel",
    "ScalapackModel",
    "ElementalModel",
    "COMPETITORS",
]
