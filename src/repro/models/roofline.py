"""Roofline model of the machine's kernels and stages.

The paper's performance arguments are roofline arguments in disguise:

* tile GEMM-like kernels (TSMQR) have arithmetic intensity ``O(nb)`` and sit
  on the compute roof;
* the one-stage GEBRD spends half of its flops in matrix-vector products of
  intensity ~1/4 flop/byte, pinned to the memory roof — the ~50 GFlop/s
  plateau of ScaLAPACK in Figure 2;
* the BND2BD bulge chasing streams the band with intensity ``O(1)`` and is
  also memory bound, which is why the paper keeps it shared-memory and why
  it caps the distributed GE2VAL scaling.

These helpers make those statements quantitative for a given
:class:`~repro.runtime.machine.Machine` preset.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.config import MIRIEL, MachinePreset


@dataclass(frozen=True)
class RooflinePoint:
    """One kernel/stage placed on the roofline.

    Attributes
    ----------
    name:
        Kernel or stage name.
    arithmetic_intensity:
        Flops per byte of DRAM traffic.
    attainable_gflops:
        ``min(compute peak, intensity * memory bandwidth)`` for the node.
    memory_bound:
        Whether the memory roof is the binding constraint.
    """

    name: str
    arithmetic_intensity: float
    attainable_gflops: float
    memory_bound: bool


def attainable_gflops(intensity: float, preset: MachinePreset = MIRIEL) -> float:
    """Attainable node rate for a given arithmetic intensity (flops/byte)."""
    if intensity <= 0:
        raise ValueError("arithmetic intensity must be positive")
    memory_roof = preset.memory_bandwidth_gbs * intensity
    return min(preset.node_gemm_gflops, memory_roof)


def ridge_intensity(preset: MachinePreset = MIRIEL) -> float:
    """Intensity at which the compute and memory roofs meet (flops/byte)."""
    return preset.node_gemm_gflops / preset.memory_bandwidth_gbs


def tile_kernel_intensity(nb: int, dtype_bytes: int = 8) -> float:
    """Arithmetic intensity of a TS update kernel on ``nb x nb`` tiles.

    A TSMQR reads/writes three tiles (~``3 nb^2`` words) and performs
    ``4 nb^3`` flops, so the intensity grows linearly with ``nb`` — large
    tiles are compute bound, tiny tiles are not, which is the GE2BND side of
    the tile-size trade-off.
    """
    if nb < 1:
        raise ValueError("nb must be >= 1")
    flops = 4.0 * nb**3
    bytes_moved = 3.0 * nb * nb * dtype_bytes
    return flops / bytes_moved


def gemv_intensity(dtype_bytes: int = 8) -> float:
    """Arithmetic intensity of a large matrix-vector product (2 flops / word)."""
    return 2.0 / dtype_bytes


def bnd2bd_intensity(dtype_bytes: int = 8) -> float:
    """Arithmetic intensity of the band bulge chasing (~3 flops / word).

    Each Givens rotation applies 6 flops per updated pair of entries that
    must be read and written once (2 words in, 2 words out when the band
    does not fit in cache).
    """
    return 6.0 / (2.0 * dtype_bytes)


def roofline_summary(nb: int = 160, preset: MachinePreset = MIRIEL) -> Dict[str, RooflinePoint]:
    """Roofline placement of the pipeline's main kernels and stages."""
    points = {}
    for name, intensity in (
        ("TSMQR tile update", tile_kernel_intensity(nb)),
        ("GEBRD BLAS-2 half", gemv_intensity()),
        ("BND2BD bulge chasing", bnd2bd_intensity()),
    ):
        rate = attainable_gflops(intensity, preset)
        points[name] = RooflinePoint(
            name=name,
            arithmetic_intensity=intensity,
            attainable_gflops=rate,
            memory_bound=rate < preset.node_gemm_gflops - 1e-9,
        )
    return points
