"""repro — Tiled bidiagonalization and R-bidiagonalization.

Reproduction of *"Bidiagonalization and R-Bidiagonalization: Parallel Tiled
Algorithms, Critical Paths and Distributed-Memory Implementation"*
(Faverge, Langou, Robert, Dongarra — IPDPS 2017).

The package provides, from the bottom up:

* ``repro.tiles`` — tiled-matrix storage and 2D block-cyclic distribution;
* ``repro.kernels`` — numerically exact Householder tile kernels
  (GEQRT / TSQRT / TTQRT / UNMQR / TSMQR / TTMQR and their LQ counterparts)
  together with the Table-I cost model;
* ``repro.trees`` — QR/LQ reduction trees (FlatTS, FlatTT, Greedy,
  Fibonacci, Binary, Auto, hierarchical distributed trees);
* ``repro.algorithms`` — tiled QR/LQ, BIDIAG (GE2BND), R-BIDIAG, BND2BD,
  BD2VAL and the GE2VAL / GESVD drivers (including the singular-vector
  pipeline :func:`~repro.algorithms.gesvd_pipeline.gesvd_two_stage`);
* ``repro.lapack`` — classical one-stage baselines (GEBD2, GEBRD, GEQRF,
  Chan's algorithm) used as numerical references and competitor models;
* ``repro.ir`` — the compiled op-stream Program IR: algorithm drivers are
  captured once per DAG shape (op stream + CSR dependencies, shared
  in-process cache) and replayed by every consumer below;
* ``repro.dag`` — legacy task-graph front-end and critical-path analyses;
* ``repro.runtime`` — a PaRSEC-like event-driven runtime engine with
  pluggable scheduling policies (bounded cores, nodes, network) used for
  the performance studies;
* ``repro.models`` — operation counts and competitor models
  (PLASMA, MKL, ScaLAPACK, Elemental);
* ``repro.analysis`` — closed-form critical-path formulas and the
  BIDIAG / R-BIDIAG crossover study;
* ``repro.experiments`` — harness helpers used by ``benchmarks/`` to
  regenerate each figure and table of the paper;
* ``repro.api`` — the unified plan API: one declarative
  :class:`~repro.api.plan.SvdPlan` resolved once and executed through the
  numeric, DAG or simulation backend, all returning a
  :class:`~repro.api.result.RunResult`.

Quickstart
----------

One plan, three lenses:

>>> from repro import SvdPlan, execute
>>> plan = SvdPlan(m=48, n=32, tile_size=8, stage="ge2val")
>>> execute(plan, backend="numeric").max_rel_error < 1e-12
True
>>> execute(plan, backend="dag").n_tasks == execute(plan, backend="simulate").n_tasks
True

The classic function-style drivers remain available:

>>> import numpy as np
>>> from repro import ge2val
>>> rng = np.random.default_rng(0)
>>> a = rng.standard_normal((40, 24))
>>> sv = ge2val(a, tile_size=8)
>>> np.allclose(np.sort(sv)[::-1], np.linalg.svd(a, compute_uv=False))
True
"""

from repro.config import Config, default_config
from repro.tiles.matrix import TiledMatrix
from repro.tiles.layout import TileLayout
from repro.tiles.distribution import BlockCyclicDistribution
from repro.trees import (
    FlatTSTree,
    FlatTTTree,
    GreedyTree,
    FibonacciTree,
    BinaryTree,
    AutoTree,
    make_tree,
)
from repro.algorithms.tiled_qr import tiled_qr
from repro.algorithms.tiled_lq import tiled_lq
from repro.algorithms.bidiag import bidiag_ge2bnd
from repro.algorithms.rbidiag import rbidiag_ge2bnd
from repro.algorithms.bnd2bd import band_to_bidiagonal
from repro.algorithms.bnd2bd_uv import band_to_bidiagonal_uv
from repro.algorithms.bd2val import bidiagonal_singular_values
from repro.algorithms.bdsqr import bdsqr
from repro.algorithms.gesvd_pipeline import gesvd_two_stage
from repro.algorithms.svd import ge2val, gesvd, ge2bnd
from repro.api import ResolvedPlan, RunResult, SvdPlan, execute, execute_sweep, resolve
from repro.ir import Program, get_program, replay
from repro.dag.critical_path import critical_path_length
from repro.analysis.formulas import (
    bidiag_flatts_cp,
    bidiag_flattt_cp,
    bidiag_greedy_cp,
    rbidiag_greedy_cp,
)

__version__ = "1.3.0"

__all__ = [
    "SvdPlan",
    "ResolvedPlan",
    "RunResult",
    "resolve",
    "execute",
    "execute_sweep",
    "Config",
    "default_config",
    "TiledMatrix",
    "TileLayout",
    "BlockCyclicDistribution",
    "FlatTSTree",
    "FlatTTTree",
    "GreedyTree",
    "FibonacciTree",
    "BinaryTree",
    "AutoTree",
    "make_tree",
    "tiled_qr",
    "tiled_lq",
    "bidiag_ge2bnd",
    "rbidiag_ge2bnd",
    "band_to_bidiagonal",
    "band_to_bidiagonal_uv",
    "bidiagonal_singular_values",
    "bdsqr",
    "gesvd_two_stage",
    "ge2val",
    "gesvd",
    "ge2bnd",
    "Program",
    "get_program",
    "replay",
    "critical_path_length",
    "bidiag_flatts_cp",
    "bidiag_flattt_cp",
    "bidiag_greedy_cp",
    "rbidiag_greedy_cp",
    "__version__",
]
