"""The dataflow verifier: an independent oracle over a Program's op stream.

:func:`verify_program` abstractly interprets a compiled
:class:`~repro.ir.program.Program` against the per-kernel read/write-set
semantics of :mod:`repro.verify.semantics` — a second, independent
statement of the tile-half access rules, sharing no code with
:class:`~repro.ir.program.DependencyAnalyzer` or
:func:`~repro.ir.program.analyze_coded_stream` — and recomputes the full
superscalar RAW/WAR edge set from scratch.  It then diffs that oracle
against the Program's stored CSR structure and reports:

* ``P-ACCESS-SET`` — an op's recorded read/write sets disagree with the
  kernel semantics (a recorder bug: wrong tile halves traced);
* ``P-OWNER-TILE`` — an op's owner-tile column disagrees with the
  owner-computes rule (tasks would be mapped to the wrong node);
* ``P-MISSING-EDGE`` — a RAW/WAR dependency the oracle derives is absent
  from the CSR: a **data race** — some schedule may run the two ops out
  of order and corrupt every downstream result;
* ``P-SPURIOUS-EDGE`` — a CSR edge the oracle cannot justify
  (over-synchronization: correct results but fake critical paths);
* ``P-USE-BEFORE-WRITE`` — an op reads a tile half no earlier op produced
  (the tiled algorithms only ever read reflectors/factors written by a
  previous kernel, so this always indicates a malformed stream);
* ``P-TOPOLOGY`` — CSR malformations: edges violating the insertion-order
  topology (``src >= dst``), unsorted or duplicated predecessor rows, or
  a successor CSR that is not the exact transpose of the predecessor CSR
  (the engine's event loop consumes the successor side);
* ``P-LEVELS`` — the cached topological level column disagrees with the
  levels recomputed from the CSR (the vectorized critical-path and
  bottom-level sweeps group ops by this column).

The verifier is O(ops + edges) pure Python; it is meant for the ``repro
verify`` CLI, the test suite and the opt-in ``REPRO_VERIFY=1`` hook, not
for the simulation hot path.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.dag.task import DataItem
from repro.ir.program import Program
from repro.verify.findings import (
    P_ACCESS_SET,
    P_LEVELS,
    P_MISSING_EDGE,
    P_OWNER_TILE,
    P_SPURIOUS_EDGE,
    P_TOPOLOGY,
    P_USE_BEFORE_WRITE,
    VerificationReport,
)
from repro.verify.semantics import kernel_access_sets, kernel_owner_tile


def _item_str(item: DataItem) -> str:
    half, i, j = item
    return f"{half}({i},{j})"


def verify_program(program: Program) -> VerificationReport:
    """Statically verify one compiled program; returns the finding report.

    Never raises on a defective program — every defect becomes a finding —
    so a mutated artifact reports its complete damage in one pass.
    """
    report = VerificationReport(subject=f"program[{program.key!r}]")
    n = len(program)
    ops = program.ops

    # ------------------------------------------------------------------ #
    # Pass 1: per-op access sets + owner tiles against the oracle, and the
    # oracle's own superscalar RAW/WAR edge recomputation.
    # ------------------------------------------------------------------ #
    oracle_preds: List[List[int]] = []
    last_writer: Dict[DataItem, int] = {}
    readers_since_write: Dict[DataItem, List[int]] = {}
    for op in ops:
        tid = op.index
        try:
            exp_reads, exp_writes = kernel_access_sets(op.kernel, op.params)
            exp_owner = kernel_owner_tile(op.kernel, op.params)
        except ValueError as exc:
            report.add(P_ACCESS_SET, str(exc), op=tid)
            oracle_preds.append([])
            continue
        report.checked += 2
        if op.reads != exp_reads or op.writes != exp_writes:
            report.add(
                P_ACCESS_SET,
                f"{op.kernel.value}{op.params} recorded "
                f"reads={{{', '.join(map(_item_str, sorted(op.reads)))}}} "
                f"writes={{{', '.join(map(_item_str, sorted(op.writes)))}}}, "
                f"semantics give "
                f"reads={{{', '.join(map(_item_str, sorted(exp_reads)))}}} "
                f"writes={{{', '.join(map(_item_str, sorted(exp_writes)))}}}",
                op=tid,
            )
        if op.owner_tile != exp_owner:
            report.add(
                P_OWNER_TILE,
                f"{op.kernel.value}{op.params} recorded owner tile "
                f"{op.owner_tile}, owner-computes rule gives {exp_owner}",
                op=tid,
            )
        # Use-before-write: a *pure* read of an item nothing produced yet.
        # (An initial write is fine — it consumes original matrix data.)
        for item in sorted(exp_reads):
            report.checked += 1
            if item not in last_writer:
                report.add(
                    P_USE_BEFORE_WRITE,
                    f"{op.kernel.value}{op.params} reads {_item_str(item)} "
                    "before any op writes it",
                    op=tid,
                )
        # The superscalar rules, restated from scratch: an op depends on
        # the last writer of everything it touches (RAW/WAW) and on every
        # reader-since-last-write of everything it writes (WAR).
        preds = set()
        for item in exp_reads | exp_writes:
            writer = last_writer.get(item)
            if writer is not None:
                preds.add(writer)
        for item in sorted(exp_writes):
            preds.update(readers_since_write.get(item, ()))
            last_writer[item] = tid
            readers_since_write[item] = []
        for item in sorted(exp_reads - exp_writes):
            readers_since_write.setdefault(item, []).append(tid)
        preds.discard(tid)
        oracle_preds.append(sorted(preds))

    # ------------------------------------------------------------------ #
    # Pass 2: diff the oracle edge set against the stored predecessor CSR.
    # ------------------------------------------------------------------ #
    for dst in range(n):
        row = list(program.predecessors(dst))
        report.checked += 1
        for pos, src in enumerate(row):
            if not (0 <= src < dst):
                report.add(
                    P_TOPOLOGY,
                    f"edge {src} -> {dst} violates insertion-order topology",
                    op=dst,
                    other=src,
                )
            if pos > 0 and row[pos - 1] >= src:
                report.add(
                    P_TOPOLOGY,
                    f"predecessor row of op {dst} is not strictly ascending "
                    f"at position {pos}: {row[pos - 1]} >= {src}",
                    op=dst,
                    other=src,
                )
        have = set(row)
        want = set(oracle_preds[dst])
        for src in sorted(want - have):
            report.add(
                P_MISSING_EDGE,
                f"data race: RAW/WAR dependency {src} -> {dst} "
                f"({ops[src].kernel.value}{ops[src].params} -> "
                f"{ops[dst].kernel.value}{ops[dst].params}) is missing "
                "from the CSR",
                op=dst,
                other=src,
            )
        for src in sorted(have - want):
            report.add(
                P_SPURIOUS_EDGE,
                f"CSR edge {src} -> {dst} has no RAW/WAR justification",
                op=dst,
                other=src,
            )

    # ------------------------------------------------------------------ #
    # Pass 3: successor CSR must be the exact transpose of the pred CSR
    # (the engine's release loop walks the successor side).
    # ------------------------------------------------------------------ #
    succ_from_pred: List[List[int]] = [[] for _ in range(n)]
    for dst in range(n):
        for src in program.predecessors(dst):
            if 0 <= src < n:
                succ_from_pred[src].append(dst)
    for src in range(n):
        report.checked += 1
        stored = list(program.successors(src))
        if stored != succ_from_pred[src]:
            report.add(
                P_TOPOLOGY,
                f"successor row of op {src} is {stored}, transpose of the "
                f"predecessor CSR gives {succ_from_pred[src]}",
                op=src,
            )

    # ------------------------------------------------------------------ #
    # Pass 4: the cached level column must match a recomputation from the
    # stored CSR (the vectorized sweeps trust this grouping).
    # ------------------------------------------------------------------ #
    level = [0] * n
    for i in range(n):
        best = -1
        for src in program.predecessors(i):
            if 0 <= src < i and level[src] > best:
                best = level[src]
        level[i] = best + 1
    stored_levels = program.levels_np.tolist()
    report.checked += 1
    if stored_levels != level:
        bad = next(
            i for i in range(n) if stored_levels[i] != level[i]
        )
        report.add(
            P_LEVELS,
            f"cached topological level of op {bad} is {stored_levels[bad]}, "
            f"CSR recomputation gives {level[bad]}",
            op=bad,
        )
    return report
