"""The schedule sanitizer: static feasibility checking of engine output.

:func:`verify_schedule` takes a :class:`~repro.runtime.scheduler.Schedule`
produced by the :class:`~repro.runtime.engine.SimulationEngine` (any policy,
any network model, any process grid, fast or legacy path) together with the
program / machine / network it was simulated under, and statically verifies
every invariant a feasible distributed execution must satisfy:

* ``S-SHAPE`` — per-task and per-node vectors have the right lengths;
* ``S-TIME-RANGE`` — no negative start times;
* ``S-DURATION`` — ``finish == start + kernel duration`` for every task
  (bitwise: the engine computes exactly this IEEE sum);
* ``S-OWNER`` — every task ran on the node the owner-computes rule maps its
  owner tile to under the block-cyclic distribution;
* ``S-PRECEDENCE`` — every task starts at or after each predecessor's
  finish time **plus the network transfer arrival** for cross-node edges:
  the flat per-edge transfer under the ``uniform`` model, and the
  ``finish + handshake + wire`` lower bound under event-driven models
  (NIC queueing can only delay arrivals further, and IEEE addition is
  monotone, so the bound is exact — no epsilon);
* ``S-CORE-RANGE`` / ``S-CORE-OVERLAP`` — core indices are valid and no
  core executes two overlapping tasks;
* ``S-MAKESPAN`` — the recorded makespan is exactly ``max(finish)``;
* ``S-COMM-COUNT`` / ``S-COMM-BYTES`` — message and byte counters equal
  the deduplicated (producer op, destination node) cross-edge transfer
  set, globally and per sender node (the dedup set is a pure function of
  the edge set and the owner mapping, so it is dispatch-order free);
* ``S-COMM-TIME`` / ``S-BUSY-TIME`` — per-node sending/compute seconds
  match recomputation (``math.isclose``: these are float accumulations
  whose summation order the engine does not pin down);
* ``S-NIC-OVERLOAD`` — under event-driven networks, per-node NIC
  serialization is respected: each deduplicated message occupies the
  sender's NIC for its injection time inside the window
  ``[producer finish + handshake, earliest consumer start - wire]``, and
  for every such window-interval the total injection demand must fit.
  This is the preemptive-relaxation feasibility test (a necessary
  condition for the engine's non-preemptive NIC), so real engine output
  always passes and an impossible injection pile-up is always flagged.

All exact-equality checks are safe because the sanitizer recomputes the
very same IEEE expressions the engine evaluates (``t_start + d``,
``t_finish + transfer``, ``(t_finish + handshake) + wire``); only the
order-dependent accumulations use a tolerance.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.ir.program import Program
from repro.runtime.machine import Machine
from repro.runtime.network import (
    NetworkModel,
    get_network_model,
    resolved_message_bytes_vector,
)
from repro.runtime.scheduler import Schedule
from repro.tiles.distribution import BlockCyclicDistribution, ProcessGrid
from repro.verify.findings import (
    S_BUSY_TIME,
    S_COMM_BYTES,
    S_COMM_COUNT,
    S_COMM_TIME,
    S_CORE_OVERLAP,
    S_CORE_RANGE,
    S_DURATION,
    S_MAKESPAN,
    S_NIC_OVERLOAD,
    S_OWNER,
    S_PRECEDENCE,
    S_SHAPE,
    S_TIME_RANGE,
    VerificationReport,
)


def _isclose(a: float, b: float) -> bool:
    return math.isclose(a, b, rel_tol=1e-9, abs_tol=1e-12)


def verify_schedule(
    schedule: Schedule,
    program: Program,
    machine: Machine,
    *,
    distribution: Optional[BlockCyclicDistribution] = None,
    network: Union[str, NetworkModel] = "uniform",
    node_of_op: Optional[Sequence[int]] = None,
    durations: Optional[Sequence[float]] = None,
) -> VerificationReport:
    """Statically verify one engine schedule; returns the finding report.

    ``distribution`` / ``network`` / ``node_of_op`` must name the same
    configuration the engine ran under (same defaulting rules as
    :class:`~repro.runtime.engine.SimulationEngine`).  ``durations``
    overrides the per-op durations the bitwise ``S-DURATION`` and
    ``S-BUSY-TIME`` checks expect — scenario replays pass the realized
    (fault-perturbed) durations of a draw; by default the nominal kernel
    table is used, priced with the machine's heterogeneity factors when
    present.  Never raises on a defective schedule — every violated
    invariant becomes a finding.
    """
    net = get_network_model(network)
    n = len(program)
    n_nodes = machine.n_nodes
    report = VerificationReport(
        subject=f"schedule[n={n}, nodes={n_nodes}, network={net.name}]"
    )

    # ------------------------------------------------------------------ #
    # S-SHAPE: vector lengths.  Everything after this indexes per-task
    # vectors, so a shape violation short-circuits the rest.
    # ------------------------------------------------------------------ #
    report.checked += 1
    per_task = {
        "start": schedule.start,
        "finish": schedule.finish,
        "node_of_task": schedule.node_of_task,
    }
    if schedule.core_of_task is not None:
        per_task["core_of_task"] = schedule.core_of_task
    for name, vec in per_task.items():
        if len(vec) != n:
            report.add(
                S_SHAPE,
                f"{name} has {len(vec)} entries, program has {n} ops",
            )
    per_node = {"busy_time_per_node": schedule.busy_time_per_node}
    if schedule.comm_time_per_node is not None:
        per_node["comm_time_per_node"] = schedule.comm_time_per_node
    if schedule.messages_per_node is not None:
        per_node["messages_per_node"] = schedule.messages_per_node
    for name, vec in per_node.items():
        if len(vec) != n_nodes:
            report.add(
                S_SHAPE,
                f"{name} has {len(vec)} entries, machine has {n_nodes} nodes",
            )
    if not report.ok:
        return report

    start = schedule.start
    finish = schedule.finish
    node_of = schedule.node_of_task

    # ------------------------------------------------------------------ #
    # Expected owner mapping (the engine's defaulting rules, restated).
    # ------------------------------------------------------------------ #
    if node_of_op is not None:
        expected_node = [int(x) for x in node_of_op]
        if len(expected_node) != n:
            report.add(
                S_SHAPE,
                f"node_of_op has {len(expected_node)} entries, program has "
                f"{n} ops",
            )
            return report
    elif n_nodes == 1:
        expected_node = [0] * n
    else:
        if distribution is None:
            distribution = BlockCyclicDistribution(
                ProcessGrid.for_square_matrix(n_nodes)
            )
        rows = program.owner_rows_np.tolist()
        cols = program.owner_cols_np.tolist()
        expected_node = [distribution.owner(i, j) for i, j in zip(rows, cols)]

    if durations is None:
        dur_np = machine.kernel_duration_table()[program.kernel_codes_np]
        if machine.heterogeneous:
            # Reprice with the slowdown factors in the scenario replay's
            # exact multiplication order — (nominal * node factor) * core
            # factor — so the bitwise S-DURATION check still holds.
            import numpy as np

            nf = machine.node_factors()
            if nf is not None:
                nf_np = np.asarray(nf, dtype=np.float64)
                dur_np = dur_np * nf_np[
                    np.asarray(schedule.node_of_task, dtype=np.int64)
                ]
            cf = machine.core_factors()
            if cf is not None and schedule.core_of_task is not None:
                cf_np = np.asarray(cf, dtype=np.float64)
                dur_np = dur_np * cf_np[
                    np.asarray(schedule.core_of_task, dtype=np.int64)
                ]
        durations = dur_np.tolist()
    else:
        durations = [float(d) for d in durations]
        if len(durations) != n:
            report.add(
                S_SHAPE,
                f"durations override has {len(durations)} entries, program "
                f"has {n} ops",
            )
            return report

    # ------------------------------------------------------------------ #
    # Per-task checks: time range, exact duration, owner mapping, cores.
    # ------------------------------------------------------------------ #
    cores = machine.cores_per_node
    core_of = schedule.core_of_task
    for i in range(n):
        report.checked += 3
        if start[i] < 0.0:
            report.add(
                S_TIME_RANGE, f"task starts at {start[i]} < 0", op=i
            )
        if finish[i] != start[i] + durations[i]:
            report.add(
                S_DURATION,
                f"finish {finish[i]!r} != start {start[i]!r} + kernel "
                f"duration {durations[i]!r}",
                op=i,
            )
        if node_of[i] != expected_node[i]:
            report.add(
                S_OWNER,
                f"task ran on node {node_of[i]}, owner-computes maps its "
                f"owner tile to node {expected_node[i]}",
                op=i,
            )
        if core_of is not None:
            report.checked += 1
            if not (0 <= core_of[i] < cores):
                report.add(
                    S_CORE_RANGE,
                    f"core index {core_of[i]} outside [0, {cores})",
                    op=i,
                )

    # ------------------------------------------------------------------ #
    # S-PRECEDENCE: start >= predecessor finish + transfer arrival.
    # ------------------------------------------------------------------ #
    event_driven = net.event_driven
    transfer = machine.transfer_time()
    handshake = net.handshake_seconds(machine)
    msg_bytes: Optional[List[int]] = None
    wire_cache: Dict[int, float] = {}
    if event_driven:
        msg_bytes = resolved_message_bytes_vector(net, program, machine).tolist()

    def wire_of(src: int) -> float:
        n_bytes = msg_bytes[src]
        wire = wire_cache.get(n_bytes)
        if wire is None:
            wire = net.message_seconds(n_bytes, machine)
            wire_cache[n_bytes] = wire
        return wire

    for dst in range(n):
        for src in program.predecessors(dst):
            report.checked += 1
            if node_of[src] == node_of[dst]:
                bound = finish[src]
                how = "predecessor finish"
            elif event_driven:
                bound = (finish[src] + handshake) + wire_of(src)
                how = "predecessor finish + handshake + wire"
            else:
                bound = finish[src] + transfer
                how = "predecessor finish + transfer"
            if start[dst] < bound:
                report.add(
                    S_PRECEDENCE,
                    f"task starts at {start[dst]!r}, before {how} "
                    f"{bound!r} of op {src}",
                    op=dst,
                    other=src,
                )

    # ------------------------------------------------------------------ #
    # S-CORE-OVERLAP: no (node, core) runs two tasks at once.
    # ------------------------------------------------------------------ #
    if core_of is not None:
        by_core: Dict[Tuple[int, int], List[int]] = {}
        for i in range(n):
            by_core.setdefault((node_of[i], core_of[i]), []).append(i)
        for (node, core), tasks in sorted(by_core.items()):
            tasks.sort(key=lambda i: (start[i], finish[i], i))
            report.checked += 1
            for prev, cur in zip(tasks, tasks[1:]):
                if start[cur] < finish[prev]:
                    report.add(
                        S_CORE_OVERLAP,
                        f"node {node} core {core}: task starts at "
                        f"{start[cur]!r} while op {prev} runs until "
                        f"{finish[prev]!r}",
                        op=cur,
                        other=prev,
                    )

    # ------------------------------------------------------------------ #
    # S-MAKESPAN: exactly max(finish) (0.0 for an empty program).
    # ------------------------------------------------------------------ #
    report.checked += 1
    true_makespan = max(finish) if n else 0.0
    if schedule.makespan != true_makespan:
        report.add(
            S_MAKESPAN,
            f"recorded makespan {schedule.makespan!r} != max finish time "
            f"{true_makespan!r}",
        )

    # ------------------------------------------------------------------ #
    # Communication accounting: the deduplicated (producer, destination
    # node) transfer set is a pure function of edges + owners, so message
    # and byte counters are exactly recomputable without replaying the
    # dispatch order.
    # ------------------------------------------------------------------ #
    pairs: List[Tuple[int, int]] = []
    seen = set()
    # earliest consumer start per transfer, for the NIC window test
    earliest_consumer: Dict[Tuple[int, int], float] = {}
    for dst in range(n):
        for src in program.predecessors(dst):
            dst_node = node_of[dst]
            if node_of[src] == dst_node:
                continue
            key = (src, dst_node)
            if key not in seen:
                seen.add(key)
                pairs.append(key)
                earliest_consumer[key] = start[dst]
            elif start[dst] < earliest_consumer[key]:
                earliest_consumer[key] = start[dst]

    exp_messages = len(pairs)
    exp_sent = [0] * n_nodes
    exp_bytes = 0
    exp_comm_time = [0.0] * n_nodes
    for src, _dst_node in pairs:
        sender = node_of[src]
        exp_sent[sender] += 1
        if event_driven:
            n_bytes = msg_bytes[src]
            exp_bytes += n_bytes
            exp_comm_time[sender] += machine.injection_seconds(n_bytes)
        else:
            exp_bytes += machine.tile_bytes
            exp_comm_time[sender] += transfer

    report.checked += 2
    if schedule.messages != exp_messages:
        report.add(
            S_COMM_COUNT,
            f"recorded {schedule.messages} messages, the deduplicated "
            f"cross-edge transfer set has {exp_messages}",
        )
    if schedule.comm_bytes != exp_bytes:
        report.add(
            S_COMM_BYTES,
            f"recorded {schedule.comm_bytes} bytes, transfer set totals "
            f"{exp_bytes}",
        )
    if schedule.messages_per_node is not None:
        report.checked += 1
        if schedule.messages_per_node != exp_sent:
            report.add(
                S_COMM_COUNT,
                f"messages_per_node {schedule.messages_per_node} != "
                f"per-sender recount {exp_sent}",
            )
    if schedule.comm_time_per_node is not None:
        for node in range(n_nodes):
            report.checked += 1
            if not _isclose(schedule.comm_time_per_node[node], exp_comm_time[node]):
                report.add(
                    S_COMM_TIME,
                    f"node {node} sending time "
                    f"{schedule.comm_time_per_node[node]!r} != recomputed "
                    f"{exp_comm_time[node]!r}",
                )

    # ------------------------------------------------------------------ #
    # S-BUSY-TIME: per-node compute seconds.
    # ------------------------------------------------------------------ #
    exp_busy = [0.0] * n_nodes
    for i in range(n):
        exp_busy[node_of[i]] += durations[i]
    for node in range(n_nodes):
        report.checked += 1
        if not _isclose(schedule.busy_time_per_node[node], exp_busy[node]):
            report.add(
                S_BUSY_TIME,
                f"node {node} busy time "
                f"{schedule.busy_time_per_node[node]!r} != summed kernel "
                f"durations {exp_busy[node]!r}",
            )

    # ------------------------------------------------------------------ #
    # S-NIC-OVERLOAD: event-driven NIC serialization.  Each message must
    # *start* injecting somewhere in [producer finish + handshake,
    # earliest consumer start - wire] and occupies the sender's NIC for
    # its injection time.  For messages confined to a window, serialized
    # starts force the sum of all injection lengths but the last-started
    # one to fit inside the window — a necessary condition every real
    # engine run satisfies (interleaved other messages only widen the
    # gaps), so a violation is a definite injection pile-up.
    # ------------------------------------------------------------------ #
    if event_driven and pairs:
        eps = 1e-9 * max(1.0, schedule.makespan)
        jobs_per_node: Dict[int, List[Tuple[float, float, float]]] = {}
        for key in pairs:
            src, _dst_node = key
            n_bytes = msg_bytes[src]
            release = finish[src] + handshake
            deadline = earliest_consumer[key] - wire_of(src)
            length = machine.injection_seconds(n_bytes)
            jobs_per_node.setdefault(node_of[src], []).append(
                (release, deadline, length)
            )
        for node, jobs in sorted(jobs_per_node.items()):
            report.checked += 1
            jobs.sort(key=lambda j: j[1])  # by start-deadline
            releases = sorted({r for r, _d, _l in jobs})
            overloaded = False
            for r in releases:
                demand = 0.0
                longest = 0.0
                for rel, dl, length in jobs:
                    if rel >= r:
                        demand += length
                        if length > longest:
                            longest = length
                        if demand - longest > (dl - r) + eps:
                            report.add(
                                S_NIC_OVERLOAD,
                                f"node {node} NIC: messages confined to "
                                f"[{r!r}, {dl!r}] need {demand!r}s of "
                                f"serialized injection, window holds "
                                f"{dl - r!r}s",
                            )
                            overloaded = True
                            break
                if overloaded:
                    break
    return report
