"""Opt-in always-on verification hooks (``REPRO_VERIFY=1``).

With ``REPRO_VERIFY=1`` in the environment, the compiler and the engine
self-check every artifact they produce:

* :class:`~repro.ir.compiler.ProgramCache` verifies each Program with the
  dataflow oracle (:func:`repro.verify.dataflow.verify_program`) before
  inserting it into the cache;
* :class:`~repro.runtime.engine.SimulationEngine` verifies each Schedule
  with the sanitizer (:func:`repro.verify.schedule.verify_schedule`)
  before returning it.

A failed check raises :class:`~repro.verify.findings.VerificationError`
(an :class:`AssertionError` carrying the full report).  The hook call
sites live on the producer side (compiler / engine) behind a cheap
environment test and a lazy import, so the default path pays one string
comparison and no import cost.
"""

from __future__ import annotations

import os
from typing import Optional, Sequence, Union

#: Environment variable gating the hooks.
ENV_VAR = "REPRO_VERIFY"


def verify_enabled() -> bool:
    """True when ``REPRO_VERIFY`` is set to a non-empty, non-"0" value."""
    return os.environ.get(ENV_VAR, "0") not in ("", "0")


def check_program(program) -> None:
    """Verify one compiled Program; raise ``VerificationError`` on findings.

    Called by :meth:`repro.ir.compiler.ProgramCache.get_or_compile` on
    cache insertion when :func:`verify_enabled`.
    """
    from repro.verify.dataflow import verify_program

    verify_program(program).raise_if_failed()


def check_schedule(
    schedule,
    program,
    machine,
    *,
    distribution=None,
    network: Union[str, object] = "uniform",
    node_of_op: Optional[Sequence[int]] = None,
    durations: Optional[Sequence[float]] = None,
) -> None:
    """Verify one engine Schedule; raise ``VerificationError`` on findings.

    Called by :meth:`repro.runtime.engine.SimulationEngine.run` on exit
    when :func:`verify_enabled`; scenario replays pass ``durations`` (the
    realized per-op durations of a perturbed draw).
    """
    from repro.verify.schedule import verify_schedule

    verify_schedule(
        schedule,
        program,
        machine,
        distribution=distribution,
        network=network,
        node_of_op=node_of_op,
        durations=durations,
    ).raise_if_failed()
