"""Structured findings shared by the program verifier and schedule sanitizer.

A verification pass never raises on the first defect: it walks the whole
artifact and returns a :class:`VerificationReport` holding every
:class:`Finding`, so a mutated program reports *all* its missing edges and
the CLI / CI can print one structured table.  Callers that want an
exception (the ``REPRO_VERIFY=1`` hooks) use
:meth:`VerificationReport.raise_if_failed`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

# Program (dataflow) finding codes.
P_ACCESS_SET = "P-ACCESS-SET"
P_OWNER_TILE = "P-OWNER-TILE"
P_MISSING_EDGE = "P-MISSING-EDGE"
P_SPURIOUS_EDGE = "P-SPURIOUS-EDGE"
P_USE_BEFORE_WRITE = "P-USE-BEFORE-WRITE"
P_TOPOLOGY = "P-TOPOLOGY"
P_LEVELS = "P-LEVELS"

# Schedule (sanitizer) finding codes.
S_SHAPE = "S-SHAPE"
S_TIME_RANGE = "S-TIME-RANGE"
S_DURATION = "S-DURATION"
S_PRECEDENCE = "S-PRECEDENCE"
S_CORE_OVERLAP = "S-CORE-OVERLAP"
S_CORE_RANGE = "S-CORE-RANGE"
S_OWNER = "S-OWNER"
S_MAKESPAN = "S-MAKESPAN"
S_COMM_COUNT = "S-COMM-COUNT"
S_COMM_BYTES = "S-COMM-BYTES"
S_COMM_TIME = "S-COMM-TIME"
S_BUSY_TIME = "S-BUSY-TIME"
S_NIC_OVERLOAD = "S-NIC-OVERLOAD"


@dataclass(frozen=True)
class Finding:
    """One defect found by a verification pass.

    ``code`` is one of the ``P-*`` (program) / ``S-*`` (schedule) constants
    of this module; ``op`` and ``other`` are op ids when the finding is
    about one op or one edge (``-1`` when not applicable).
    """

    code: str
    message: str
    op: int = -1
    other: int = -1

    def __str__(self) -> str:
        loc = ""
        if self.op >= 0:
            loc = f" [op {self.op}" + (
                f" <- {self.other}]" if self.other >= 0 else "]"
            )
        return f"{self.code}{loc}: {self.message}"

    def to_row(self) -> Dict[str, object]:
        """Flat dict form for JSON / table output."""
        return {
            "code": self.code,
            "op": self.op,
            "other": self.other,
            "message": self.message,
        }


class VerificationError(AssertionError):
    """Raised by :meth:`VerificationReport.raise_if_failed` on any finding.

    Subclasses :class:`AssertionError`: a failed verification means an
    internal invariant of the compiled artifact is broken, not that the
    caller passed bad input.
    """

    def __init__(self, report: "VerificationReport") -> None:
        super().__init__(report.summary())
        self.report = report


@dataclass
class VerificationReport:
    """All findings of one verification pass over one artifact.

    ``subject`` names what was verified (e.g. ``"program"`` or
    ``"schedule[policy=list, network=uniform]"``); ``checked`` counts the
    individual assertions evaluated, so "0 findings" is distinguishable
    from "0 checks ran".
    """

    subject: str
    findings: List[Finding] = field(default_factory=list)
    checked: int = 0

    @property
    def ok(self) -> bool:
        return not self.findings

    def add(self, code: str, message: str, op: int = -1, other: int = -1) -> None:
        self.findings.append(Finding(code, message, op=op, other=other))

    def count(self, code: str) -> int:
        """Number of findings with the given code."""
        return sum(1 for f in self.findings if f.code == code)

    def codes(self) -> Dict[str, int]:
        """Histogram of finding codes (sorted by code for stable output)."""
        counts: Dict[str, int] = {}
        for f in self.findings:
            counts[f.code] = counts.get(f.code, 0) + 1
        return dict(sorted(counts.items()))

    def extend(self, other: "VerificationReport") -> None:
        """Fold another report's findings and check count into this one."""
        self.findings.extend(other.findings)
        self.checked += other.checked

    def summary(self, limit: Optional[int] = 10) -> str:
        """Human-readable multi-line summary (first ``limit`` findings)."""
        head = (
            f"{self.subject}: "
            + ("OK" if self.ok else f"{len(self.findings)} finding(s)")
            + f" ({self.checked} checks)"
        )
        if self.ok:
            return head
        lines = [head]
        shown = self.findings if limit is None else self.findings[:limit]
        lines.extend(f"  {f}" for f in shown)
        if limit is not None and len(self.findings) > limit:
            lines.append(f"  ... and {len(self.findings) - limit} more")
        return "\n".join(lines)

    def to_rows(self) -> List[Dict[str, object]]:
        """Finding rows for JSON output, each stamped with the subject."""
        return [{"subject": self.subject, **f.to_row()} for f in self.findings]

    def raise_if_failed(self) -> None:
        """Raise :class:`VerificationError` if any finding was recorded."""
        if not self.ok:
            raise VerificationError(self)
