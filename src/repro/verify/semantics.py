"""Independent per-kernel read/write-set semantics (the dataflow oracle).

This module re-derives, from the *mathematical definition* of each tile
kernel, which tile halves the kernel reads and which it read-modify-writes.
It deliberately shares no code with the compiler front-ends
(:class:`~repro.ir.recorder.ProgramRecorder`, :mod:`repro.dag.tracer`) or
the dependency analyzers: the whole point is that
:func:`repro.verify.dataflow.verify_program` checks the compiled artifact
against a second, independent statement of the semantics, so a bug in the
recorder's coded access sets cannot silently vouch for itself.

Conventions (see :mod:`repro.dag.task`): a data item is one *half* of a
tile — ``("U", i, j)`` the upper (R/L-factor) part, ``("L", i, j)`` the
lower (reflector) part.  "Writes" are read-modify-writes (a kernel that
factorizes a tile in place both consumes and produces it), which is exactly
how the superscalar RAW/WAR rules interpret them.

The per-kernel semantics:

* ``GEQRT(i, k)`` — QR-factorize tile ``(i, k)`` in place: the R factor
  replaces the upper half, the Householder reflectors fill the lower half.
  Writes ``U(i,k)`` and ``L(i,k)``.
* ``UNMQR(i, k, j)`` — apply the reflectors of panel ``(i, k)`` to tile
  ``(i, j)``: reads ``L(i,k)``, rewrites both halves of ``(i, j)``.
* ``TSQRT(piv, i, k)`` — triangle-on-top-of-square factorization of the
  pivot's R factor and square tile ``(i, k)``: rewrites ``U(piv,k)`` and
  both halves of ``(i, k)`` (the TS reflectors fill the killed tile).
* ``TSMQR(piv, i, k, j)`` — apply the TS reflectors: reads both halves of
  ``(i, k)``, rewrites both halves of ``(piv, j)`` and ``(i, j)``.
* ``TTQRT(piv, i, k)`` — triangle-on-triangle factorization: rewrites
  ``U(piv,k)`` and ``U(i,k)`` only.  The TT reflectors are stored in the
  *upper* (triangular) part of the killed tile; its lower half still holds
  the GEQRT reflectors, which is why TTQRT does not conflict with the
  UNMQR updates of row ``i``.
* ``TTMQR(piv, i, k, j)`` — apply the TT reflectors: reads ``U(i,k)``,
  rewrites both halves of ``(piv, j)`` and ``(i, j)``.

The LQ family mirrors the QR family across the diagonal: reflectors of a
row panel live in the *upper* halves of its tiles, TT-LQ reflectors in the
*lower* half of the killed tile (the mirror of TTQRT's convention):

* ``GELQT(k, j)`` — LQ-factorize tile ``(k, j)``: writes both halves.
* ``UNMLQ(k, j, i)`` — apply: reads ``U(k,j)``, rewrites ``(i, j)``.
* ``TSLQT(piv, j, k)`` — rewrites ``L(k,piv)`` and both halves of ``(k,j)``.
* ``TSMLQ(piv, j, k, i)`` — reads both halves of ``(k, j)``, rewrites both
  halves of ``(i, piv)`` and ``(i, j)``.
* ``TTLQT(piv, j, k)`` — rewrites ``L(k,piv)`` and ``L(k,j)`` only.
* ``TTMLQ(piv, j, k, i)`` — reads ``L(k,j)``, rewrites both halves of
  ``(i, piv)`` and ``(i, j)``.

The *owner tile* (the tile whose block-cyclic owner runs the kernel under
owner-computes) is the updated tile for update kernels and the killed /
factorized tile for panel kernels; :func:`kernel_owner_tile` restates it
here so the verifier can also check the compiled owner columns.
"""

from __future__ import annotations

from typing import Callable, Dict, FrozenSet, Tuple

from repro.dag.task import DataItem
from repro.kernels.costs import KernelName

AccessSets = Tuple[FrozenSet[DataItem], FrozenSet[DataItem]]

#: Number of tile-index parameters each kernel takes.
KERNEL_ARITY: Dict[KernelName, int] = {
    KernelName.GEQRT: 2,
    KernelName.UNMQR: 3,
    KernelName.TSQRT: 3,
    KernelName.TSMQR: 4,
    KernelName.TTQRT: 3,
    KernelName.TTMQR: 4,
    KernelName.GELQT: 2,
    KernelName.UNMLQ: 3,
    KernelName.TSLQT: 3,
    KernelName.TSMLQ: 4,
    KernelName.TTLQT: 3,
    KernelName.TTMLQ: 4,
}


def _u(i: int, j: int) -> DataItem:
    return ("U", i, j)


def _l(i: int, j: int) -> DataItem:
    return ("L", i, j)


def _fs(*items: DataItem) -> FrozenSet[DataItem]:
    return frozenset(items)


def _geqrt(i: int, k: int) -> AccessSets:
    return _fs(), _fs(_u(i, k), _l(i, k))


def _unmqr(i: int, k: int, j: int) -> AccessSets:
    return _fs(_l(i, k)), _fs(_u(i, j), _l(i, j))


def _tsqrt(piv: int, i: int, k: int) -> AccessSets:
    return _fs(), _fs(_u(piv, k), _u(i, k), _l(i, k))


def _tsmqr(piv: int, i: int, k: int, j: int) -> AccessSets:
    return (
        _fs(_u(i, k), _l(i, k)),
        _fs(_u(piv, j), _l(piv, j), _u(i, j), _l(i, j)),
    )


def _ttqrt(piv: int, i: int, k: int) -> AccessSets:
    return _fs(), _fs(_u(piv, k), _u(i, k))


def _ttmqr(piv: int, i: int, k: int, j: int) -> AccessSets:
    return (
        _fs(_u(i, k)),
        _fs(_u(piv, j), _l(piv, j), _u(i, j), _l(i, j)),
    )


def _gelqt(k: int, j: int) -> AccessSets:
    return _fs(), _fs(_u(k, j), _l(k, j))


def _unmlq(k: int, j: int, i: int) -> AccessSets:
    return _fs(_u(k, j)), _fs(_u(i, j), _l(i, j))


def _tslqt(piv: int, j: int, k: int) -> AccessSets:
    return _fs(), _fs(_l(k, piv), _u(k, j), _l(k, j))


def _tsmlq(piv: int, j: int, k: int, i: int) -> AccessSets:
    return (
        _fs(_u(k, j), _l(k, j)),
        _fs(_u(i, piv), _l(i, piv), _u(i, j), _l(i, j)),
    )


def _ttlqt(piv: int, j: int, k: int) -> AccessSets:
    return _fs(), _fs(_l(k, piv), _l(k, j))


def _ttmlq(piv: int, j: int, k: int, i: int) -> AccessSets:
    return (
        _fs(_l(k, j)),
        _fs(_u(i, piv), _l(i, piv), _u(i, j), _l(i, j)),
    )


_SEMANTICS: Dict[KernelName, Callable[..., AccessSets]] = {
    KernelName.GEQRT: _geqrt,
    KernelName.UNMQR: _unmqr,
    KernelName.TSQRT: _tsqrt,
    KernelName.TSMQR: _tsmqr,
    KernelName.TTQRT: _ttqrt,
    KernelName.TTMQR: _ttmqr,
    KernelName.GELQT: _gelqt,
    KernelName.UNMLQ: _unmlq,
    KernelName.TSLQT: _tslqt,
    KernelName.TSMLQ: _tsmlq,
    KernelName.TTLQT: _ttlqt,
    KernelName.TTMLQ: _ttmlq,
}


def kernel_access_sets(
    kernel: KernelName, params: Tuple[int, ...]
) -> AccessSets:
    """``(reads, writes)`` of one kernel instance, per the oracle semantics.

    Raises :class:`ValueError` on an unknown kernel or wrong parameter
    arity — a malformed op is itself a verification failure, reported by
    the caller.
    """
    fn = _SEMANTICS.get(KernelName(kernel))
    if fn is None:  # pragma: no cover - KernelName() already rejects
        raise ValueError(f"unknown kernel {kernel!r}")
    expected = KERNEL_ARITY[KernelName(kernel)]
    if len(params) != expected:
        raise ValueError(
            f"{KernelName(kernel).value} takes {expected} tile indices, "
            f"got {len(params)}: {params!r}"
        )
    return fn(*params)


def kernel_owner_tile(
    kernel: KernelName, params: Tuple[int, ...]
) -> Tuple[int, int]:
    """Owner tile of one kernel instance under the owner-computes rule.

    Panel kernels run on the owner of the factorized / killed tile; update
    kernels on the owner of the updated tile.
    """
    k = KernelName(kernel)
    expected = KERNEL_ARITY[k]
    if len(params) != expected:
        raise ValueError(
            f"{k.value} takes {expected} tile indices, got {len(params)}: "
            f"{params!r}"
        )
    if k is KernelName.GEQRT:
        i, col = params
        return (i, col)
    if k is KernelName.UNMQR:
        i, _k, j = params
        return (i, j)
    if k in (KernelName.TSQRT, KernelName.TTQRT):
        _piv, i, col = params
        return (i, col)
    if k in (KernelName.TSMQR, KernelName.TTMQR):
        _piv, i, _k, j = params
        return (i, j)
    if k is KernelName.GELQT:
        row, j = params
        return (row, j)
    if k is KernelName.UNMLQ:
        _k, j, i = params
        return (i, j)
    if k in (KernelName.TSLQT, KernelName.TTLQT):
        _piv, j, row = params
        return (row, j)
    # TSMLQ / TTMLQ
    _piv, j, _k, i = params
    return (i, j)
