"""Static verification of compiled Programs and simulated Schedules.

Everything downstream of the compiler — three backends, six scheduling
policies, two network models, the structure-of-arrays fast path — interprets
the same cached op-stream :class:`~repro.ir.program.Program`, so a single
missing RAW/WAR edge or an infeasible schedule silently corrupts every
result.  This package provides the *static* correctness oracles the dynamic
golden pins and hash-seed subprocess tests cannot give:

* :func:`verify_program` (:mod:`repro.verify.dataflow`) — an independent
  abstract interpretation of a Program's op stream against per-kernel
  read/write-set semantics (:mod:`repro.verify.semantics`, reimplemented
  from the kernel definitions, not from the compiler), recomputing the full
  RAW/WAR edge set and diffing it against the Program's CSR: missing edges
  (data races), spurious edges, use-before-write reads, access-set and
  owner-tile mismatches, topology and level violations;
* :func:`verify_schedule` (:mod:`repro.verify.schedule`) — static
  feasibility checking of a :class:`~repro.runtime.scheduler.Schedule`:
  precedence with network transfer arrivals, core exclusivity, NIC
  injection accounting, owner-computes mapping, makespan consistency —
  valid under every policy x network x grid combination;
* :mod:`repro.verify.lint` — an AST-based determinism lint
  (``python -m repro.verify.lint src/``) that statically forbids the
  nondeterminism classes the subprocess tests catch only dynamically:
  iteration over unsorted sets in the deterministic core (``ir/``,
  ``runtime/``, ``dag/``), ``id()``-based ordering, wall-clock calls
  inside the engine;
* :mod:`repro.verify.hooks` — the opt-in ``REPRO_VERIFY=1`` hook that
  validates Programs on :class:`~repro.ir.compiler.ProgramCache` insertion
  and Schedules on engine exit.

Surfaced on the command line as ``repro verify`` (plan -> compile ->
verify -> simulate -> sanitize, ``--all-policies`` / ``--all-networks``).
"""

from repro.verify.dataflow import verify_program
from repro.verify.findings import (
    Finding,
    VerificationError,
    VerificationReport,
)
from repro.verify.hooks import verify_enabled
from repro.verify.schedule import verify_schedule
from repro.verify.semantics import kernel_access_sets

__all__ = [
    "Finding",
    "VerificationError",
    "VerificationReport",
    "kernel_access_sets",
    "verify_enabled",
    "verify_program",
    "verify_schedule",
]
