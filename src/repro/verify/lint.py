"""AST-based determinism lint for the simulator's deterministic core.

The repository promises bit-reproducible schedules across runs and Python
hash seeds; the subprocess golden-pin tests catch violations *dynamically*
(and only on the shapes they run).  This lint forbids the offending
constructs *statically*:

``DTM001`` — iteration over a ``set`` / ``frozenset`` in the deterministic
    core (``ir/``, ``runtime/``, ``dag/``).  Set iteration order depends on
    the process hash seed for ``str``-keyed items, so any set-ordered loop
    there can leak hash randomness into op numbering, ready-queue
    tie-breaks and ultimately makespans.  Iterate ``sorted(the_set)``
    instead, or mark a provably order-insensitive loop with
    ``# dtm: allow``.  (Plain ``dict`` iteration is *not* flagged:
    dictionaries preserve insertion order, which is deterministic whenever
    the insertions are.)

``DTM002`` — ``id()``-based ordering anywhere in the scanned tree: ``id()``
    used inside ``sorted`` / ``min`` / ``max`` calls, as a ``key=``
    function, or in an ordering comparison.  CPython object addresses vary
    run to run, so such orderings are never reproducible.

``DTM003`` — wall-clock reads (``time.time``, ``time.monotonic``,
    ``time.perf_counter``, ``datetime.now`` …) inside the engine paths
    (``runtime/``).  Simulated time must come from the machine model only;
    wall-clock reads belong to benchmarks and CLI layers.

Scope rules are path-based: ``DTM001`` and ``DTM003`` apply only inside
the deterministic-core package paths above; ``DTM002`` applies to every
scanned file.  A finding on a line containing ``# dtm: allow`` is
suppressed.

Run as ``python -m repro.verify.lint src/`` (also wired into CI); exits 1
if any finding is reported.  Set-ness of a name is inferred from literal
/ constructor / comprehension assignments, ``set`` annotations (including
parameters and ``self`` attributes), and set-algebra expressions — a
deliberately simple, local inference that has no false positives on
``sorted(...)``-wrapped iteration.
"""

from __future__ import annotations

import ast
import sys
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

#: Annotation / constructor names that denote an unordered hash container.
_SET_TYPE_NAMES = {
    "set",
    "frozenset",
    "Set",
    "FrozenSet",
    "MutableSet",
    "AbstractSet",
}

#: (module, attr) pairs that read the wall clock.
_WALL_CLOCK = {
    ("time", "time"),
    ("time", "time_ns"),
    ("time", "monotonic"),
    ("time", "monotonic_ns"),
    ("time", "perf_counter"),
    ("time", "perf_counter_ns"),
    ("time", "process_time"),
    ("time", "process_time_ns"),
    ("datetime", "now"),
    ("datetime", "utcnow"),
    ("datetime", "today"),
}

#: Set methods that return another set.
_SET_RETURNING_METHODS = {
    "union",
    "intersection",
    "difference",
    "symmetric_difference",
    "copy",
}

#: Directory names (package path components) forming the deterministic core.
CORE_DIRS = ("ir", "runtime", "dag", "obs")
#: Directory names forming the engine paths (wall-clock ban).
ENGINE_DIRS = ("runtime",)

SUPPRESS_MARK = "dtm: allow"


@dataclass(frozen=True)
class LintFinding:
    """One determinism-lint finding."""

    path: str
    line: int
    col: int
    code: str
    message: str

    def __str__(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.code} {self.message}"


def _annotation_is_set(node: Optional[ast.expr]) -> bool:
    """True if an annotation expression names an unordered set type.

    Looks through ``Optional``/``Union`` wrappers and subscripts by walking
    the whole annotation tree for a set-type name in *type position* (the
    value of a subscript or a bare name), which is precise enough for this
    codebase's annotations.
    """
    if node is None:
        return False
    for sub in ast.walk(node):
        if isinstance(sub, ast.Name) and sub.id in _SET_TYPE_NAMES:
            return True
        if isinstance(sub, ast.Attribute) and sub.attr in _SET_TYPE_NAMES:
            return True
        if isinstance(sub, ast.Constant) and isinstance(sub.value, str):
            # String annotation: parse and recurse.
            try:
                parsed = ast.parse(sub.value, mode="eval")
            except SyntaxError:
                continue
            if _annotation_is_set(parsed.body):
                return True
    return False


class _Scope:
    """One lexical scope's set-typed local names."""

    def __init__(self) -> None:
        self.set_names: Set[str] = set()


class _Linter(ast.NodeVisitor):
    def __init__(
        self,
        path: str,
        source_lines: Sequence[str],
        *,
        check_set_iter: bool,
        check_wall_clock: bool,
    ) -> None:
        self.path = path
        self.lines = source_lines
        self.check_set_iter = check_set_iter
        self.check_wall_clock = check_wall_clock
        self.findings: List[LintFinding] = []
        self.scopes: List[_Scope] = [_Scope()]
        #: ``self.<attr>`` names with set types in the enclosing class.
        self.class_set_attrs: List[Set[str]] = []
        #: local alias -> (module, attr) for ``from time import time`` style.
        self.clock_aliases: Dict[str, Tuple[str, str]] = {}

    # ------------------------------------------------------------------ #
    # Reporting
    # ------------------------------------------------------------------ #
    def _suppressed(self, line: int) -> bool:
        if 1 <= line <= len(self.lines):
            return SUPPRESS_MARK in self.lines[line - 1]
        return False

    def _report(self, node: ast.AST, code: str, message: str) -> None:
        line = getattr(node, "lineno", 1)
        if self._suppressed(line):
            return
        self.findings.append(
            LintFinding(self.path, line, getattr(node, "col_offset", 0), code, message)
        )

    # ------------------------------------------------------------------ #
    # Set-ness inference
    # ------------------------------------------------------------------ #
    def _is_set_expr(self, node: ast.expr) -> bool:
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        if isinstance(node, ast.Call):
            func = node.func
            if isinstance(func, ast.Name) and func.id in ("set", "frozenset"):
                return True
            if (
                isinstance(func, ast.Attribute)
                and func.attr in _SET_RETURNING_METHODS
                and self._is_set_expr(func.value)
            ):
                return True
            return False
        if isinstance(node, ast.BinOp) and isinstance(
            node.op, (ast.BitOr, ast.BitAnd, ast.BitXor, ast.Sub)
        ):
            return self._is_set_expr(node.left) or self._is_set_expr(node.right)
        if isinstance(node, ast.Name):
            return any(node.id in s.set_names for s in reversed(self.scopes))
        if (
            isinstance(node, ast.Attribute)
            and isinstance(node.value, ast.Name)
            and node.value.id == "self"
            and self.class_set_attrs
        ):
            return node.attr in self.class_set_attrs[-1]
        if isinstance(node, ast.IfExp):
            return self._is_set_expr(node.body) or self._is_set_expr(node.orelse)
        return False

    def _collect_locals(self, body: Iterable[ast.stmt], scope: _Scope) -> None:
        """Pre-scan a function body for set-typed local assignments."""
        for stmt in body:
            for node in ast.walk(stmt):
                if isinstance(node, ast.AnnAssign):
                    if isinstance(node.target, ast.Name) and _annotation_is_set(
                        node.annotation
                    ):
                        scope.set_names.add(node.target.id)
                elif isinstance(node, ast.Assign):
                    if self._is_set_expr(node.value):
                        for target in node.targets:
                            if isinstance(target, ast.Name):
                                scope.set_names.add(target.id)

    # ------------------------------------------------------------------ #
    # Scope handling
    # ------------------------------------------------------------------ #
    def _visit_function(self, node) -> None:
        scope = _Scope()
        args = node.args
        for arg in (
            list(args.posonlyargs)
            + list(args.args)
            + list(args.kwonlyargs)
            + ([args.vararg] if args.vararg else [])
            + ([args.kwarg] if args.kwarg else [])
        ):
            if _annotation_is_set(arg.annotation):
                scope.set_names.add(arg.arg)
        self.scopes.append(scope)
        self._collect_locals(node.body, scope)
        self.generic_visit(node)
        self.scopes.pop()

    visit_FunctionDef = _visit_function
    visit_AsyncFunctionDef = _visit_function

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        attrs: Set[str] = set()
        for sub in ast.walk(node):
            if isinstance(sub, ast.AnnAssign):
                target = sub.target
                if (
                    isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id == "self"
                    and _annotation_is_set(sub.annotation)
                ):
                    attrs.add(target.attr)
            elif isinstance(sub, ast.Assign) and self._is_set_expr(sub.value):
                for target in sub.targets:
                    if (
                        isinstance(target, ast.Attribute)
                        and isinstance(target.value, ast.Name)
                        and target.value.id == "self"
                    ):
                        attrs.add(target.attr)
        self.class_set_attrs.append(attrs)
        self.generic_visit(node)
        self.class_set_attrs.pop()

    # ------------------------------------------------------------------ #
    # Imports (for wall-clock aliases)
    # ------------------------------------------------------------------ #
    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if node.module in ("time", "datetime"):
            for alias in node.names:
                key = (node.module, alias.name)
                if key in _WALL_CLOCK:
                    self.clock_aliases[alias.asname or alias.name] = key
                if node.module == "datetime" and alias.name == "datetime":
                    # ``from datetime import datetime`` -> datetime.now()
                    self.clock_aliases[alias.asname or alias.name] = (
                        "datetime",
                        "",
                    )
        self.generic_visit(node)

    # ------------------------------------------------------------------ #
    # DTM001: set iteration
    # ------------------------------------------------------------------ #
    def _check_iteration(self, iter_node: ast.expr) -> None:
        if self.check_set_iter and self._is_set_expr(iter_node):
            self._report(
                iter_node,
                "DTM001",
                "iteration over an unsorted set in the deterministic core; "
                "iterate sorted(...) or mark '# dtm: allow' if provably "
                "order-insensitive",
            )

    def visit_For(self, node: ast.For) -> None:
        self._check_iteration(node.iter)
        self.generic_visit(node)

    def visit_AsyncFor(self, node: ast.AsyncFor) -> None:
        self._check_iteration(node.iter)
        self.generic_visit(node)

    def _visit_comprehension(self, node) -> None:
        for gen in node.generators:
            self._check_iteration(gen.iter)
        self.generic_visit(node)

    visit_ListComp = _visit_comprehension
    visit_SetComp = _visit_comprehension
    visit_DictComp = _visit_comprehension
    visit_GeneratorExp = _visit_comprehension

    # ------------------------------------------------------------------ #
    # DTM002 (id ordering) + DTM003 (wall clock)
    # ------------------------------------------------------------------ #
    @staticmethod
    def _contains_id_call(node: ast.AST) -> bool:
        return any(
            isinstance(sub, ast.Call)
            and isinstance(sub.func, ast.Name)
            and sub.func.id == "id"
            for sub in ast.walk(node)
        )

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        # DTM002: id() inside an ordering construct.
        if isinstance(func, ast.Name) and func.id in ("sorted", "min", "max"):
            for arg in list(node.args) + [kw.value for kw in node.keywords]:
                if self._contains_id_call(arg) or (
                    isinstance(arg, ast.Name) and arg.id == "id"
                ):
                    self._report(
                        node,
                        "DTM002",
                        f"id()-based ordering in {func.id}(): object "
                        "addresses vary between runs",
                    )
                    break
        # DTM003: wall-clock reads in the engine paths.
        if self.check_wall_clock:
            if isinstance(func, ast.Attribute) and isinstance(
                func.value, ast.Name
            ):
                base, attr = func.value.id, func.attr
                if (base, attr) in _WALL_CLOCK or (
                    self.clock_aliases.get(base) == ("datetime", "")
                    and attr in ("now", "utcnow", "today")
                ):
                    self._report(
                        node,
                        "DTM003",
                        f"wall-clock call {base}.{attr}() inside the engine; "
                        "simulated time must come from the machine model",
                    )
            elif isinstance(func, ast.Name) and func.id in self.clock_aliases:
                mod, attr = self.clock_aliases[func.id]
                if attr:
                    self._report(
                        node,
                        "DTM003",
                        f"wall-clock call {func.id}() (= {mod}.{attr}) inside "
                        "the engine; simulated time must come from the "
                        "machine model",
                    )
        self.generic_visit(node)

    def visit_Compare(self, node: ast.Compare) -> None:
        # DTM002: id() used in an ordering comparison.
        if any(
            isinstance(op, (ast.Lt, ast.LtE, ast.Gt, ast.GtE))
            for op in node.ops
        ):
            operands = [node.left] + list(node.comparators)
            if any(self._contains_id_call(operand) for operand in operands):
                self._report(
                    node,
                    "DTM002",
                    "id()-based ordering comparison: object addresses vary "
                    "between runs",
                )
        self.generic_visit(node)


def _path_in_dirs(path: str, dirs: Tuple[str, ...]) -> bool:
    parts = path.replace("\\", "/").split("/")
    return any(d in parts for d in dirs)


def lint_source(path: str, source: str) -> List[LintFinding]:
    """Lint one file's source text; returns its findings."""
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        return [
            LintFinding(
                path,
                exc.lineno or 1,
                exc.offset or 0,
                "DTM000",
                f"syntax error: {exc.msg}",
            )
        ]
    linter = _Linter(
        path,
        source.splitlines(),
        check_set_iter=_path_in_dirs(path, CORE_DIRS),
        check_wall_clock=_path_in_dirs(path, ENGINE_DIRS),
    )
    linter.visit(tree)
    return linter.findings


def lint_paths(paths: Sequence[str]) -> List[LintFinding]:
    """Lint every ``.py`` file under the given files/directories."""
    import os

    files: List[str] = []
    for root in paths:
        if os.path.isfile(root):
            files.append(root)
            continue
        for dirpath, dirnames, filenames in os.walk(root):
            dirnames.sort()
            for name in sorted(filenames):
                if name.endswith(".py"):
                    files.append(os.path.join(dirpath, name))
    findings: List[LintFinding] = []
    for path in files:
        with open(path, "r", encoding="utf-8") as fh:
            findings.extend(lint_source(path, fh.read()))
    return findings


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point: ``python -m repro.verify.lint <paths...>``."""
    args = list(sys.argv[1:] if argv is None else argv)
    if not args:
        print("usage: python -m repro.verify.lint <file-or-dir> ...")
        return 2
    findings = lint_paths(args)
    for finding in findings:
        print(finding)
    if findings:
        print(f"{len(findings)} determinism finding(s)")
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
