"""Numerical verification of the asymptotic results of Section IV.

Theorem 1 of the paper states that for ``p = beta * q^(1+alpha)`` tiles with
``0 <= alpha < 1``:

* ``BIDIAG(p, q) / ((12 + 6 alpha) q log2 q)  ->  1``  as ``q -> inf``;
* ``BIDIAG(p, q) / R-BIDIAG(p, q)            ->  1 + alpha / 2``.

These helpers evaluate the closed-form critical paths on geometric sweeps
of ``q`` and report how the measured ratios approach their limits, which is
what ``benchmarks/bench_sec4_asymptotics.py`` prints.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Sequence

from repro.analysis.formulas import bidiag_greedy_cp, rbidiag_greedy_asymptotic_cp


@dataclass(frozen=True)
class AsymptoticPoint:
    """One point of an asymptotic sweep.

    Attributes
    ----------
    q, p:
        Tile shape of the point (``p = round(beta * q^(1+alpha))``).
    bidiag_cp:
        Closed-form BIDIAG-GREEDY critical path.
    rbidiag_cp:
        Asymptotic R-BIDIAG-GREEDY critical path of Section IV-B
        (``12 q log2 q + (42 - 12 log2 e) q``, valid for ``p = o(q^2)``).
    normalized_bidiag:
        ``bidiag_cp / ((12 + 6 alpha) q log2 q)`` — tends to 1.
    ratio:
        ``bidiag_cp / rbidiag_cp`` — tends to ``1 + alpha / 2``.
    """

    q: int
    p: int
    bidiag_cp: float
    rbidiag_cp: float
    normalized_bidiag: float
    ratio: float


def shape_for(q: int, alpha: float, beta: float = 1.0) -> int:
    """Tile row count ``p = max(q, round(beta * q^(1+alpha)))``."""
    if q < 2:
        raise ValueError("q must be >= 2")
    if alpha < 0:
        raise ValueError("alpha must be >= 0")
    if beta <= 0:
        raise ValueError("beta must be > 0")
    return max(q, int(round(beta * q ** (1.0 + alpha))))


def asymptotic_sweep(
    q_values: Sequence[int],
    alpha: float,
    beta: float = 1.0,
) -> List[AsymptoticPoint]:
    """Evaluate the Theorem-1 ratios on a sweep of ``q`` values."""
    points: List[AsymptoticPoint] = []
    for q in q_values:
        p = shape_for(q, alpha, beta)
        b = float(bidiag_greedy_cp(p, q))
        r = float(rbidiag_greedy_asymptotic_cp(q))
        denom = (12.0 + 6.0 * alpha) * q * math.log2(q)
        points.append(
            AsymptoticPoint(
                q=q,
                p=p,
                bidiag_cp=b,
                rbidiag_cp=r,
                normalized_bidiag=b / denom if denom > 0 else float("nan"),
                ratio=b / r if r > 0 else float("nan"),
            )
        )
    return points


def theorem1_limit_ratio(alpha: float) -> float:
    """The limit of ``BIDIAG / R-BIDIAG`` for ``p = beta q^(1+alpha)``: ``1 + alpha/2``."""
    if not (0.0 <= alpha < 1.0):
        raise ValueError("Theorem 1 requires 0 <= alpha < 1")
    return 1.0 + alpha / 2.0


def convergence_trend(points: Sequence[AsymptoticPoint], attr: str) -> float:
    """Signed change of ``attr`` between the first and last sweep point.

    A negative value means the quantity is decreasing along the sweep.
    Benchmarks use it to assert that the normalized critical path is
    actually converging toward its limit.
    """
    if len(points) < 2:
        raise ValueError("need at least two sweep points")
    first = getattr(points[0], attr)
    last = getattr(points[-1], attr)
    return last - first
