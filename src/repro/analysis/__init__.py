"""Closed-form critical paths (Section IV) and the BIDIAG / R-BIDIAG crossover."""

from repro.analysis.formulas import (
    qr_step_cp,
    lq_step_cp,
    bidiag_flatts_cp,
    bidiag_flattt_cp,
    bidiag_greedy_cp,
    bidiag_cp,
    rbidiag_cp,
    rbidiag_greedy_cp,
    greedy_asymptotic_cp,
)
from repro.analysis.crossover import crossover_ratio, crossover_table

__all__ = [
    "qr_step_cp",
    "lq_step_cp",
    "bidiag_flatts_cp",
    "bidiag_flattt_cp",
    "bidiag_greedy_cp",
    "bidiag_cp",
    "rbidiag_cp",
    "rbidiag_greedy_cp",
    "greedy_asymptotic_cp",
    "crossover_ratio",
    "crossover_table",
]
