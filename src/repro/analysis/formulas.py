"""Closed-form critical-path lengths (Section IV of the paper).

All lengths are in units of ``nb^3 / 3`` flops, matching Table I.

Per-step critical paths for a ``(u, v)`` tile matrix (Section IV-A):

* FLATTS: ``4 + 6(u-1)`` if ``v = 1`` else ``4 + 6 + 12(u-1)``
* FLATTT: ``4 + 2(u-1)`` if ``v = 1`` else ``4 + 6 + 6(u-1)``
* GREEDY: ``4 + 2*ceil(log2 u)`` if ``v = 1`` else ``4 + 6 + 6*ceil(log2 u)``

BIDIAG totals (sum over the interleaved QR/LQ steps, which cannot overlap):

* ``BIDIAG_FLATTS(p, q) = 12pq - 6p + 2q - 4``
* ``BIDIAG_FLATTT(p, q) = 6pq - 4p + 12q - 10``
* ``BIDIAG_GREEDY(p, q)`` — the explicit sum of the per-step formulas.

R-BIDIAG totals are computed, as in the paper, as the critical path of the
full QR factorization plus the critical path of the square ``q x q``
bidiagonalization minus the first QR step (which overlaps with the QR
factorization).
"""

from __future__ import annotations

import math
from typing import Callable, Dict


def _ceil_log2(x: int) -> int:
    """``ceil(log2(x))`` for ``x >= 1`` (0 for ``x = 1``)."""
    if x < 1:
        raise ValueError(f"x must be >= 1, got {x}")
    return int(math.ceil(math.log2(x))) if x > 1 else 0


# --------------------------------------------------------------------------- #
# Per-step critical paths
# --------------------------------------------------------------------------- #
def qr_step_cp(u: int, v: int, tree: str) -> int:
    """Critical path of one QR step on a ``(u, v)`` tile matrix."""
    if u < 1 or v < 1:
        raise ValueError(f"step size must be >= 1, got ({u}, {v})")
    tree = tree.lower()
    if tree == "flatts":
        return 4 + 6 * (u - 1) if v == 1 else 4 + 6 + 12 * (u - 1)
    if tree == "flattt":
        return 4 + 2 * (u - 1) if v == 1 else 4 + 6 + 6 * (u - 1)
    if tree == "greedy":
        return 4 + 2 * _ceil_log2(u) if v == 1 else 4 + 6 + 6 * _ceil_log2(u)
    raise ValueError(f"unknown tree {tree!r} (use 'flatts', 'flattt' or 'greedy')")


def lq_step_cp(u: int, v: int, tree: str) -> int:
    """Critical path of one LQ step on a ``(u, v)`` tile matrix.

    ``LQ1step(u, v) = QR1step(v, u)`` by symmetry.
    """
    return qr_step_cp(v, u, tree)


# --------------------------------------------------------------------------- #
# BIDIAG
# --------------------------------------------------------------------------- #
def bidiag_cp(p: int, q: int, tree: str) -> int:
    """Critical path of BIDIAG(p, q) with the given tree (exact sum).

    In the BIDIAG algorithm the size of the matrix for step ``QR(k)`` is
    ``(p - k + 1, q - k + 1)`` and for step ``LQ(k)`` it is
    ``(p - k + 1, q - k)`` (1-based ``k``); consecutive steps cannot
    overlap, so the total is the sum of the per-step critical paths.
    """
    if p < q:
        raise ValueError(f"BIDIAG expects p >= q, got ({p}, {q})")
    if q < 1:
        raise ValueError("q must be >= 1")
    total = 0
    for k in range(1, q + 1):
        total += qr_step_cp(p - k + 1, q - k + 1, tree)
        if k <= q - 1:
            total += lq_step_cp(p - k + 1, q - k, tree)
    return total


def bidiag_flatts_cp(p: int, q: int) -> int:
    """``BIDIAG_FLATTS(p, q) = 12pq - 6p + 2q - 4`` (closed form)."""
    if p < q or q < 1:
        raise ValueError(f"expected p >= q >= 1, got ({p}, {q})")
    return 12 * p * q - 6 * p + 2 * q - 4


def bidiag_flattt_cp(p: int, q: int) -> int:
    """``BIDIAG_FLATTT(p, q) = 6pq - 4p + 12q - 10`` (closed form)."""
    if p < q or q < 1:
        raise ValueError(f"expected p >= q >= 1, got ({p}, {q})")
    return 6 * p * q - 4 * p + 12 * q - 10


def bidiag_greedy_cp(p: int, q: int) -> int:
    """``BIDIAG_GREEDY(p, q)``: explicit sum of the per-step GREEDY formulas.

    Matches the expression of Section IV-A:
    ``sum_{k=1}^{q-1} (10 + 6 ceil(log2(p+1-k)))
    + sum_{k=1}^{q-1} (10 + 6 ceil(log2(q-k)))
    + (4 + 2 ceil(log2(p+1-q)))``.
    """
    if p < q or q < 1:
        raise ValueError(f"expected p >= q >= 1, got ({p}, {q})")
    total = 4 + 2 * _ceil_log2(p + 1 - q)
    for k in range(1, q):
        total += 10 + 6 * _ceil_log2(p + 1 - k)
        total += 10 + 6 * _ceil_log2(q - k)
    return total


#: Dispatch table used by the crossover study and the benchmarks.
BIDIAG_CP_FORMULAS: Dict[str, Callable[[int, int], int]] = {
    "flatts": bidiag_flatts_cp,
    "flattt": bidiag_flattt_cp,
    "greedy": bidiag_greedy_cp,
}


def greedy_asymptotic_cp(q: int, alpha: float = 0.0) -> float:
    """Asymptotic BIDIAG-GREEDY critical path ``(12 + 6*alpha) q log2(q)``.

    For ``p = beta * q^(1+alpha)`` (Equation (1) of the paper).
    """
    if q < 2:
        raise ValueError("q must be >= 2 for the asymptotic expression")
    return (12.0 + 6.0 * alpha) * q * math.log2(q)


# --------------------------------------------------------------------------- #
# R-BIDIAG
# --------------------------------------------------------------------------- #
def qr_factorization_cp(p: int, q: int, tree: str) -> int:
    """Critical path of the full tiled QR factorization QR(p, q).

    Computed as the sum of the per-step critical paths (no overlap), which
    is an upper bound on the pipelined critical path; the paper uses the
    same simplification for the R-BIDIAG analysis since the difference does
    not affect the higher-order terms.
    """
    if p < q or q < 1:
        raise ValueError(f"expected p >= q >= 1, got ({p}, {q})")
    return sum(qr_step_cp(p - k + 1, q - k + 1, tree) for k in range(1, q + 1))


def rbidiag_cp(p: int, q: int, tree: str) -> int:
    """Critical path of R-BIDIAG(p, q): ``QR(p, q) + BIDIAG(q, q) - QR(1)``.

    The first QR step of the square bidiagonalization overlaps with the end
    of the preliminary QR factorization (Section IV-B), hence the
    subtraction; finer overlaps are ignored, as in the paper.
    """
    if p < q or q < 1:
        raise ValueError(f"expected p >= q >= 1, got ({p}, {q})")
    return (
        qr_factorization_cp(p, q, tree)
        + bidiag_cp(q, q, tree)
        - qr_step_cp(q, q, tree)
    )


def rbidiag_greedy_cp(p: int, q: int) -> int:
    """R-BIDIAG critical path with the GREEDY tree."""
    return rbidiag_cp(p, q, "greedy")


def rbidiag_greedy_asymptotic_cp(q: int) -> float:
    """Asymptotic R-BIDIAG-GREEDY critical path (Section IV-B).

    Combining [5, Theorem 3.5] with [11, Theorem 3], the pipelined GREEDY QR
    factorization costs ``22q + o(q)`` whenever ``p = o(q^2)``, so

    ``R-BIDIAG_GREEDY(p, q) <= 12 q log2(q) + (42 - 12 log2 e) q + o(q)``.

    This is the expression the paper uses to derive the ``1 + alpha/2``
    ratio of Theorem 1; the plain :func:`rbidiag_greedy_cp` closed form sums
    the per-step critical paths of the preliminary QR factorization without
    pipelining and is therefore only an upper bound unsuitable for the
    asymptotic comparison.
    """
    if q < 2:
        raise ValueError("q must be >= 2 for the asymptotic expression")
    return 12.0 * q * math.log2(q) + (42.0 - 12.0 * math.log2(math.e)) * q
