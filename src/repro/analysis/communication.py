"""Communication-volume analysis for distributed runs.

Section VI-D of the paper observes that the choice of the *top-level*
(inter-node) reduction tree changes the communication volume: the greedy
top tree "doubles the number of communications on square cases" compared to
the flat tree, which is why the flat tree can win despite exposing less
parallelism.  These tools quantify that trade-off:

* :func:`communication_volume` counts, from a traced task graph and a
  block-cyclic distribution, the inter-node messages the owner-computes
  rule induces (one message per produced data item and destination node,
  matching the runtime simulator's accounting);
* :func:`communication_matrix` breaks the same count down by
  (source node, destination node) pair;
* :func:`panel_messages_estimate` gives the closed-form per-panel message
  counts of the flat and binomial top trees used in the discussion.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Tuple

from repro.dag.task import TaskGraph
from repro.tiles.distribution import BlockCyclicDistribution


@dataclass(frozen=True)
class CommunicationStats:
    """Inter-node communication induced by a task graph on a distribution.

    Attributes
    ----------
    messages:
        Number of distinct (producer task, destination node) transfers.
    tile_transfers:
        Same count — kept as an explicit alias because each message carries
        exactly one tile in this model.
    bytes_moved:
        Total bytes moved for a given tile size (``messages * nb^2 * 8``).
    per_node_sent:
        Messages sent by each node (indexed by rank).
    per_node_received:
        Messages received by each node.
    """

    messages: int
    tile_transfers: int
    bytes_moved: int
    per_node_sent: List[int]
    per_node_received: List[int]


def communication_volume(
    graph: TaskGraph,
    distribution: BlockCyclicDistribution,
    *,
    tile_size: int = 160,
) -> CommunicationStats:
    """Count the inter-node transfers of ``graph`` under ``distribution``.

    A transfer happens when a task's output is consumed by a task mapped to
    a different node; transfers of the same output to the same node are
    counted once (the runtime caches remote tiles), mirroring the
    accounting of :class:`repro.runtime.scheduler.ListScheduler`.
    """
    n_nodes = distribution.grid.size
    owner = [distribution.owner(*t.owner_tile) for t in graph.tasks]
    seen: set[Tuple[int, int]] = set()
    sent = [0] * n_nodes
    received = [0] * n_nodes
    messages = 0
    for src_id, dsts in graph.successors.items():
        src_node = owner[src_id]
        for dst_id in dsts:
            dst_node = owner[dst_id]
            if dst_node == src_node:
                continue
            key = (src_id, dst_node)
            if key in seen:
                continue
            seen.add(key)
            messages += 1
            sent[src_node] += 1
            received[dst_node] += 1
    tile_bytes = tile_size * tile_size * 8
    return CommunicationStats(
        messages=messages,
        tile_transfers=messages,
        bytes_moved=messages * tile_bytes,
        per_node_sent=sent,
        per_node_received=received,
    )


def communication_matrix(
    graph: TaskGraph,
    distribution: BlockCyclicDistribution,
) -> List[List[int]]:
    """Message counts per (source node, destination node) pair."""
    n_nodes = distribution.grid.size
    owner = [distribution.owner(*t.owner_tile) for t in graph.tasks]
    matrix = [[0] * n_nodes for _ in range(n_nodes)]
    seen: set[Tuple[int, int]] = set()
    for src_id, dsts in graph.successors.items():
        src_node = owner[src_id]
        for dst_id in dsts:
            dst_node = owner[dst_id]
            if dst_node == src_node:
                continue
            key = (src_id, dst_node)
            if key in seen:
                continue
            seen.add(key)
            matrix[src_node][dst_node] += 1
    return matrix


def panel_messages_estimate(grid_rows: int, top: str) -> int:
    """Closed-form number of inter-node eliminations of one panel step.

    With ``R`` process-grid rows, the top-level tree combines ``R`` per-node
    heads; every top-level elimination moves (at least) one tile across the
    network.

    * flat top tree: ``R - 1`` eliminations, all into the head row —
      sequential, but the minimum possible volume;
    * greedy/binomial top tree: also ``R - 1`` eliminations, but each round
      sends its tiles concurrently *and* the trailing-matrix updates of
      every elimination pair cross the network too, which is what doubles
      the observed communication volume on square matrices (Section VI-D).
      The estimate returned for ``"greedy"`` therefore counts
      ``2 (R - 1)`` tile movements per panel.
    """
    if grid_rows < 1:
        raise ValueError("grid_rows must be >= 1")
    top = top.strip().lower()
    if top == "flat":
        return max(grid_rows - 1, 0)
    if top in ("greedy", "binomial", "fibonacci"):
        return 2 * max(grid_rows - 1, 0)
    raise ValueError(f"unknown top tree {top!r}")


def communication_ratio(
    graph_a: TaskGraph,
    graph_b: TaskGraph,
    distribution: BlockCyclicDistribution,
) -> float:
    """Ratio of message counts of two task graphs under the same distribution.

    Used by the ablation benchmarks to verify the paper's "greedy doubles
    the communications of flat" observation at the DAG level.
    """
    a = communication_volume(graph_a, distribution).messages
    b = communication_volume(graph_b, distribution).messages
    if b == 0:
        return math.inf if a > 0 else 1.0
    return a / b
