"""Communication-volume analysis for distributed runs.

Section VI-D of the paper observes that the choice of the *top-level*
(inter-node) reduction tree changes the communication volume: the greedy
top tree "doubles the number of communications on square cases" compared to
the flat tree, which is why the flat tree can win despite exposing less
parallelism.  These tools quantify that trade-off:

* :func:`communication_volume` counts, from a compiled
  :class:`~repro.ir.program.Program` (or a legacy traced task graph) and a
  block-cyclic distribution, the inter-node messages the owner-computes
  rule induces (one message per produced data item and destination node,
  matching the runtime simulator's accounting);
* :func:`communication_matrix` breaks the same count down by
  (source node, destination node) pair;
* :func:`panel_messages_estimate` gives the closed-form per-panel message
  counts of the flat and binomial top trees used in the discussion — the
  level at which the paper's factor-of-two statement holds exactly;
* :func:`engine_communication_check` cross-checks a simulated
  :class:`~repro.runtime.scheduler.Schedule`'s message accounting against
  these static counts: both deduplicate transfers per (producer,
  destination node), so engine and analysis must agree *exactly*, under
  every scheduling policy and network model.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterator, List, Sequence, Tuple, Union

import numpy as np

from repro.dag.task import TaskGraph
from repro.ir.program import Program
from repro.tiles.distribution import BlockCyclicDistribution

GraphLike = Union[TaskGraph, Program]


def _owner_tiles(graph: GraphLike) -> List[Tuple[int, int]]:
    """Owner tile of every task/op, indexed by dense id."""
    if isinstance(graph, Program):
        return list(
            zip(graph.owner_rows_np.tolist(), graph.owner_cols_np.tolist())
        )
    return [t.owner_tile for t in graph.tasks]


def _cross_edge_pairs(
    graph: Program, distribution: BlockCyclicDistribution
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Deduplicated cross-node transfers of a compiled program, vectorized.

    Returns ``(src op, src node, dst node)`` for every distinct
    (producer op, destination node) pair — the same dedup rule the
    per-edge set-based walk applies, computed as whole-array passes over
    the successor CSR: map every op to its node with one block-cyclic
    vector op, compare the two sides of every dependency edge, and unique
    the surviving (producer, destination) keys.
    """
    owner = distribution.owner_array(graph.owner_rows_np, graph.owner_cols_np)
    n = len(graph)
    src = np.repeat(
        np.arange(n, dtype=np.int64), np.diff(graph.succ_indptr_np)
    )
    dst_node = owner[graph.succ_ids_np]
    src_node = owner[src]
    cross = src_node != dst_node
    n_nodes = distribution.grid.size
    pair = np.unique(src[cross] * n_nodes + dst_node[cross])
    src_u = pair // n_nodes
    return src_u, owner[src_u], pair % n_nodes


def _successor_lists(graph: GraphLike) -> Iterator[Tuple[int, Sequence[int]]]:
    """``(task id, successor ids)`` pairs for either DAG container."""
    if isinstance(graph, Program):
        for src_id in range(len(graph)):
            yield src_id, graph.successors(src_id)
    else:
        for src_id, dsts in graph.successors.items():
            yield src_id, dsts


@dataclass(frozen=True)
class CommunicationStats:
    """Inter-node communication induced by a task graph on a distribution.

    Attributes
    ----------
    messages:
        Number of distinct (producer task, destination node) transfers.
    tile_transfers:
        Same count — kept as an explicit alias because each message carries
        exactly one tile in this model.
    bytes_moved:
        Total bytes moved at the legacy full-tile-per-message accounting
        (``messages * nb^2 * 8``, the ``uniform`` network model's pricing;
        the ``alpha-beta`` model derives smaller per-message payloads from
        the producing op's written tile halves, so only message *counts* —
        not byte totals — are comparable across network models).
    per_node_sent:
        Messages sent by each node (indexed by rank).
    per_node_received:
        Messages received by each node.
    """

    messages: int
    tile_transfers: int
    bytes_moved: int
    per_node_sent: List[int]
    per_node_received: List[int]


def communication_volume(
    graph: GraphLike,
    distribution: BlockCyclicDistribution,
    *,
    tile_size: int = 160,
) -> CommunicationStats:
    """Count the inter-node transfers of ``graph`` under ``distribution``.

    ``graph`` may be a compiled :class:`~repro.ir.program.Program` or a
    legacy :class:`~repro.dag.task.TaskGraph`.  A transfer happens when a
    task's output is consumed by a task mapped to a different node;
    transfers of the same output to the same node are counted once (the
    runtime caches remote tiles), mirroring the *message-count* accounting
    of :class:`repro.runtime.engine.SimulationEngine` under every network
    model.  Byte totals use the legacy full-tile pricing and match the
    engine's ``comm_bytes`` only under ``network="uniform"``.
    """
    n_nodes = distribution.grid.size
    if isinstance(graph, Program) and type(distribution) is BlockCyclicDistribution:
        # Vectorized static count (same dedup rule, whole-array passes).
        _, src_nodes, dst_nodes = _cross_edge_pairs(graph, distribution)
        messages = int(src_nodes.size)
        sent = np.bincount(src_nodes, minlength=n_nodes).tolist()
        received = np.bincount(dst_nodes, minlength=n_nodes).tolist()
    else:
        owner = [distribution.owner(*tile) for tile in _owner_tiles(graph)]
        seen: set[Tuple[int, int]] = set()
        sent = [0] * n_nodes
        received = [0] * n_nodes
        messages = 0
        for src_id, dsts in _successor_lists(graph):
            src_node = owner[src_id]
            for dst_id in dsts:
                dst_node = owner[dst_id]
                if dst_node == src_node:
                    continue
                key = (src_id, dst_node)
                if key in seen:
                    continue
                seen.add(key)
                messages += 1
                sent[src_node] += 1
                received[dst_node] += 1
    tile_bytes = tile_size * tile_size * 8
    return CommunicationStats(
        messages=messages,
        tile_transfers=messages,
        bytes_moved=messages * tile_bytes,
        per_node_sent=sent,
        per_node_received=received,
    )


def communication_matrix(
    graph: GraphLike,
    distribution: BlockCyclicDistribution,
) -> List[List[int]]:
    """Message counts per (source node, destination node) pair."""
    n_nodes = distribution.grid.size
    if isinstance(graph, Program) and type(distribution) is BlockCyclicDistribution:
        _, src_nodes, dst_nodes = _cross_edge_pairs(graph, distribution)
        flat = np.bincount(
            src_nodes * n_nodes + dst_nodes, minlength=n_nodes * n_nodes
        )
        return flat.reshape(n_nodes, n_nodes).tolist()
    owner = [distribution.owner(*tile) for tile in _owner_tiles(graph)]
    matrix = [[0] * n_nodes for _ in range(n_nodes)]
    seen: set[Tuple[int, int]] = set()
    for src_id, dsts in _successor_lists(graph):
        src_node = owner[src_id]
        for dst_id in dsts:
            dst_node = owner[dst_id]
            if dst_node == src_node:
                continue
            key = (src_id, dst_node)
            if key in seen:
                continue
            seen.add(key)
            matrix[src_node][dst_node] += 1
    return matrix


def panel_messages_estimate(grid_rows: int, top: str) -> int:
    """Closed-form number of inter-node eliminations of one panel step.

    With ``R`` process-grid rows, the top-level tree combines ``R`` per-node
    heads; every top-level elimination moves (at least) one tile across the
    network.

    * flat top tree: ``R - 1`` eliminations, all into the head row —
      sequential, but the minimum possible volume;
    * greedy/binomial top tree: also ``R - 1`` eliminations, but each round
      sends its tiles concurrently *and* the trailing-matrix updates of
      every elimination pair cross the network too, which is what doubles
      the observed communication volume on square matrices (Section VI-D).
      The estimate returned for ``"greedy"`` therefore counts
      ``2 (R - 1)`` tile movements per panel.
    """
    if grid_rows < 1:
        raise ValueError("grid_rows must be >= 1")
    top = top.strip().lower()
    if top == "flat":
        return max(grid_rows - 1, 0)
    if top in ("greedy", "binomial", "fibonacci"):
        return 2 * max(grid_rows - 1, 0)
    raise ValueError(f"unknown top tree {top!r}")


def engine_communication_check(
    schedule,
    graph: GraphLike,
    distribution: BlockCyclicDistribution,
    *,
    tile_size: int = 160,
) -> CommunicationStats:
    """Cross-check a schedule's message accounting against the static counts.

    The :class:`~repro.runtime.engine.SimulationEngine` deduplicates
    transfers per (producer op, destination node) exactly like
    :func:`communication_volume`, so the two counts must agree *exactly* —
    for every scheduling policy and every network model.  Byte totals are
    deliberately *not* compared: the alpha-beta model prices per-message
    payloads from the producing op's written tile halves, while the static
    analysis charges the legacy full tile.  Raises ``ValueError`` on any
    mismatch (total or per-node sent counts) and returns the static
    :class:`CommunicationStats` on success.
    """
    stats = communication_volume(graph, distribution, tile_size=tile_size)
    if schedule.messages != stats.messages:
        raise ValueError(
            f"engine counted {schedule.messages} messages but the static "
            f"analysis counts {stats.messages}"
        )
    if schedule.messages_per_node is not None and (
        list(schedule.messages_per_node) != list(stats.per_node_sent)
    ):
        raise ValueError(
            f"engine per-node sent counts {list(schedule.messages_per_node)} "
            f"disagree with the static analysis {stats.per_node_sent}"
        )
    return stats


def communication_ratio(
    graph_a: GraphLike,
    graph_b: GraphLike,
    distribution: BlockCyclicDistribution,
) -> float:
    """Ratio of message counts of two task graphs under the same distribution.

    Used by the ablation benchmarks to verify the paper's "greedy doubles
    the communications of flat" observation at the DAG level.
    """
    a = communication_volume(graph_a, distribution).messages
    b = communication_volume(graph_b, distribution).messages
    if b == 0:
        return math.inf if a > 0 else 1.0
    return a / b
