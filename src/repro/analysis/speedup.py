"""Speedup bounds and scaling projections.

Classical work/span bounds applied to the traced task graphs and the
simulated schedules:

* ``T_1`` — sequential time (total work at the machine's kernel rates);
* ``T_inf`` — span (critical path at the same rates);
* Brent's bound — any greedy schedule on ``P`` cores finishes within
  ``T_1 / P + T_inf``;
* Amdahl-style projection of GE2VAL — the distributed GE2BND part scales,
  the single-node BND2BD + BD2VAL part does not, which is what caps the
  strong scaling of Figure 3 (the "upper bound" line of the paper).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.dag.critical_path import critical_path_length
from repro.dag.task import TaskGraph
from repro.runtime.machine import Machine
from repro.runtime.scheduler import Schedule


@dataclass(frozen=True)
class SpeedupBounds:
    """Work/span bounds for one task graph on one machine.

    All times are in seconds at the machine's kernel rates.
    """

    t1_seconds: float
    tinf_seconds: float
    brent_bound_seconds: float
    max_useful_cores: float
    measured_makespan: Optional[float] = None

    @property
    def measured_speedup(self) -> Optional[float]:
        """Speedup of the measured makespan over the sequential time."""
        if self.measured_makespan is None or self.measured_makespan <= 0:
            return None
        return self.t1_seconds / self.measured_makespan

    @property
    def brent_gap(self) -> Optional[float]:
        """``measured / brent_bound`` — 1.0 means the schedule meets the bound."""
        if self.measured_makespan is None or self.brent_bound_seconds <= 0:
            return None
        return self.measured_makespan / self.brent_bound_seconds


def speedup_bounds(
    graph: TaskGraph,
    machine: Machine,
    schedule: Optional[Schedule] = None,
) -> SpeedupBounds:
    """Compute :class:`SpeedupBounds` for ``graph`` on ``machine``.

    ``T_1`` and ``T_inf`` use the machine's per-kernel durations (so TS and
    TT kernels have different rates, unlike the pure Table-I weights used in
    Section IV).  When a simulated ``schedule`` is given, its makespan is
    attached for comparison against Brent's bound.
    """
    durations = {t.id: machine.kernel_duration(t.kernel) for t in graph.tasks}
    t1 = sum(durations.values())
    tinf = critical_path_length(graph, weight_fn=lambda task: durations[task.id])
    cores = machine.total_cores
    brent = t1 / cores + tinf if cores > 0 else float("inf")
    return SpeedupBounds(
        t1_seconds=t1,
        tinf_seconds=tinf,
        brent_bound_seconds=brent,
        max_useful_cores=t1 / tinf if tinf > 0 else float("inf"),
        measured_makespan=schedule.makespan if schedule is not None else None,
    )


def amdahl_ge2val_bound(
    ge2bnd_seconds_single_node: float,
    post_seconds: float,
    n_nodes: int,
) -> float:
    """Best-case GE2VAL time on ``n_nodes`` nodes (Amdahl-style).

    The GE2BND stage is assumed to scale perfectly with the node count while
    the BND2BD + BD2VAL stage stays on one node — the "upper bound
    (BND2VAL)" line the paper draws on Figure 3.
    """
    if n_nodes < 1:
        raise ValueError("n_nodes must be >= 1")
    if ge2bnd_seconds_single_node < 0 or post_seconds < 0:
        raise ValueError("stage times must be non-negative")
    return ge2bnd_seconds_single_node / n_nodes + post_seconds


def strong_scaling_efficiency(times: Dict[int, float]) -> Dict[int, float]:
    """Parallel efficiency of a strong-scaling sweep ``{nodes: seconds}``.

    Efficiency at ``n`` nodes is ``t(1) / (n * t(n))`` relative to the
    smallest node count present in the sweep.
    """
    if not times:
        return {}
    base_nodes = min(times)
    base = times[base_nodes] * base_nodes
    out: Dict[int, float] = {}
    for nodes, t in times.items():
        out[nodes] = base / (nodes * t) if t > 0 else 0.0
    return out


def weak_scaling_efficiency(rates: Dict[int, float]) -> Dict[int, float]:
    """Weak-scaling efficiency of a sweep ``{nodes: gflops}``.

    Perfect weak scaling keeps GFlop/s per node constant; efficiency at
    ``n`` nodes is ``rate(n) / (n * rate(1) / 1)`` relative to the smallest
    node count of the sweep.
    """
    if not rates:
        return {}
    base_nodes = min(rates)
    per_node_base = rates[base_nodes] / base_nodes
    out: Dict[int, float] = {}
    for nodes, rate in rates.items():
        denom = per_node_base * nodes
        out[nodes] = rate / denom if denom > 0 else 0.0
    return out
