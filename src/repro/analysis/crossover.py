"""BIDIAG vs R-BIDIAG crossover study (Section IV-C of the paper).

For square matrices BIDIAG has the shorter critical path; for sufficiently
tall-and-skinny matrices R-BIDIAG wins.  The crossover ratio
``delta_s = p / q`` at which the two GREEDY variants meet is "a complicated
function of q, oscillating between 5 and 8" (paper).  Because the paper's
result relies on the *pipelined* critical path of the greedy QR
factorization (successive panels overlap), the crossover here is computed
from the measured critical paths of the actual task DAGs, not from the
non-overlapping closed forms (which would never cross).

Chan's flop-count crossover (``m >= 5n/3``) is also exposed for comparison.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import List

from repro.dag.critical_path import critical_path_length
from repro.dag.tracer import trace_bidiag, trace_rbidiag
from repro.trees import FlatTSTree, FlatTTTree, GreedyTree

#: Chan's crossover: R-bidiagonalization performs fewer flops than direct
#: bidiagonalization as soon as m >= 5n/3.
CHAN_FLOP_CROSSOVER = 5.0 / 3.0

_TREES = {
    "flatts": FlatTSTree,
    "flattt": FlatTTTree,
    "greedy": GreedyTree,
}


@lru_cache(maxsize=4096)
def measured_bidiag_cp(p: int, q: int, tree: str = "greedy") -> float:
    """Critical path of the BIDIAG task DAG (cached)."""
    return critical_path_length(trace_bidiag(p, q, _TREES[tree]()))


@lru_cache(maxsize=4096)
def measured_rbidiag_cp(p: int, q: int, tree: str = "greedy") -> float:
    """Critical path of the R-BIDIAG task DAG, with panel pipelining (cached)."""
    return critical_path_length(trace_rbidiag(p, q, _TREES[tree]()))


def crossover_ratio(q: int, tree: str = "greedy", p_max_factor: int = 16) -> float:
    """Smallest ratio ``delta = p/q`` at which R-BIDIAG's measured critical
    path becomes shorter than BIDIAG's, for a fixed tile width ``q``.

    Uses a binary search on ``p`` (the sign of the difference is monotone in
    practice); returns ``float('inf')`` if no crossover exists below
    ``p_max_factor * q``.
    """
    if q < 2:
        raise ValueError("q must be >= 2 for a meaningful crossover")
    if tree not in _TREES:
        raise ValueError(f"unknown tree {tree!r}; choose from {sorted(_TREES)}")
    lo, hi = q, p_max_factor * q
    if measured_rbidiag_cp(hi, q, tree) >= measured_bidiag_cp(hi, q, tree):
        return float("inf")
    while lo < hi:
        mid = (lo + hi) // 2
        if measured_rbidiag_cp(mid, q, tree) < measured_bidiag_cp(mid, q, tree):
            hi = mid
        else:
            lo = mid + 1
    return lo / q


@dataclass(frozen=True)
class CrossoverPoint:
    """Crossover data for one tile width ``q``."""

    q: int
    delta_s: float
    p_at_crossover: int


def crossover_table(
    q_values: List[int], tree: str = "greedy", p_max_factor: int = 16
) -> List[CrossoverPoint]:
    """Crossover ratio ``delta_s(q)`` for a list of tile widths.

    The paper reports that for GREEDY the ratio oscillates between 5 and 8
    (for the tile widths it plots); at the small widths practical to sweep
    here the measured ratio sits a little lower and grows with ``q``.
    """
    points: List[CrossoverPoint] = []
    for q in q_values:
        delta = crossover_ratio(q, tree=tree, p_max_factor=p_max_factor)
        p_at = int(round(delta * q)) if delta != float("inf") else -1
        points.append(CrossoverPoint(q=q, delta_s=delta, p_at_crossover=p_at))
    return points


def flop_crossover_ratio() -> float:
    """Chan's operation-count crossover ``m/n = 5/3`` (for reference)."""
    return CHAN_FLOP_CROSSOVER


def asymptotic_ratio(alpha: float) -> float:
    """Asymptotic ratio BIDIAG / R-BIDIAG = ``1 + alpha/2`` (Theorem 1).

    For tile shapes ``p = beta * q^(1+alpha)`` with ``0 <= alpha < 1``.
    """
    if not (0.0 <= alpha < 1.0):
        raise ValueError(f"alpha must be in [0, 1), got {alpha}")
    return 1.0 + alpha / 2.0
