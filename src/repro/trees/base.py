"""Common interfaces for reduction trees.

The tiled algorithms never manipulate trees directly; they ask a tree for a
:class:`PanelPlan` describing one panel reduction in terms of *local* row
indices ``0 .. u-1`` (``0`` is the panel head that ends up holding the
triangular factor).  The plan is a pure description — the same plan drives
the numeric executor, the DAG tracer and the runtime simulator, which is
what guarantees that the critical paths we analyse belong to the DAGs we
actually execute.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import List


@dataclass(frozen=True)
class Elimination:
    """One elimination ``elim(killed, killer, k)`` of Algorithm 1.

    Attributes
    ----------
    killed:
        Local index of the row whose panel tile is zeroed.
    killer:
        Local index of the surviving (pivot) row.
    use_tt:
        ``True`` for a TT elimination (both tiles triangular, TTQRT/TTMQR),
        ``False`` for a TS elimination (square tile zeroed by the triangle
        on top, TSQRT/TSMQR).
    round:
        Reduction round the elimination belongs to; eliminations of the same
        round are mutually independent.  Purely informational — the real
        dependencies are recovered from data accesses by the DAG tracer.
    """

    killed: int
    killer: int
    use_tt: bool
    round: int = 0


@dataclass(frozen=True)
class PanelContext:
    """Everything a tree may need to know to plan one panel reduction.

    Attributes
    ----------
    rows:
        Number of tile rows in the panel, ``u >= 1`` (local indices
        ``0 .. u-1``).
    cols_remaining:
        Number of tile columns that will be updated by this panel
        (the trailing-matrix width ``v``); the AUTO tree uses it to estimate
        the available parallelism.
    row_offset:
        Global tile index of local row ``0``; hierarchical trees use it to
        compute which process-grid row owns each tile row.
    n_cores:
        Number of cores of the target (shared-memory) node.
    grid_rows:
        Number of process-grid rows ``R`` for distributed runs (``1`` for a
        single node).
    """

    rows: int
    cols_remaining: int = 0
    row_offset: int = 0
    n_cores: int = 1
    grid_rows: int = 1

    def __post_init__(self) -> None:
        if self.rows < 1:
            raise ValueError(f"a panel needs at least one row, got {self.rows}")
        if self.cols_remaining < 0:
            raise ValueError("cols_remaining cannot be negative")
        if self.n_cores < 1:
            raise ValueError("n_cores must be >= 1")
        if self.grid_rows < 1:
            raise ValueError("grid_rows must be >= 1")


@dataclass(frozen=True)
class PanelPlan:
    """The reduction plan for one panel.

    Attributes
    ----------
    geqrt_rows:
        Local rows whose panel tile is triangularized with GEQRT (and whose
        trailing row is updated with UNMQR) *before* the eliminations.
        Row ``0`` (the panel head) is always included.
    eliminations:
        Ordered eliminations; the list order is a valid topological order of
        the reduction tree.
    """

    geqrt_rows: List[int]
    eliminations: List[Elimination]

    @property
    def n_rows(self) -> int:
        """Number of rows the plan covers (killed rows + the survivor)."""
        return len(self.eliminations) + 1


class ReductionTree(ABC):
    """Abstract reduction tree."""

    #: Human-readable tree name used in reports and benchmark tables.
    name: str = "abstract"

    @abstractmethod
    def plan(self, ctx: PanelContext) -> PanelPlan:
        """Return the reduction plan for the panel described by ``ctx``."""

    def plan_rows(self, rows: int, **kwargs) -> PanelPlan:
        """Convenience wrapper building the :class:`PanelContext` inline."""
        return self.plan(PanelContext(rows=rows, **kwargs))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}()"


def validate_plan(plan: PanelPlan, rows: int) -> None:
    """Check that ``plan`` is a valid reduction of ``rows`` tile rows.

    Raises ``ValueError`` if any invariant is violated:

    * every row except the survivor (row 0) is killed exactly once;
    * a row never kills after having been killed, and never kills itself;
    * eliminations appear in an order consistent with liveness;
    * TT eliminations only involve triangularized rows, TS eliminations only
      kill non-triangularized rows;
    * row 0 is triangularized (it must hold a triangle at the end).
    """
    if rows < 1:
        raise ValueError("rows must be >= 1")
    if plan.n_rows != rows:
        raise ValueError(f"plan covers {plan.n_rows} rows, expected {rows}")
    geqrt = set(plan.geqrt_rows)
    if 0 not in geqrt:
        raise ValueError("the panel head (row 0) must be triangularized")
    for r in geqrt:
        if not (0 <= r < rows):
            raise ValueError(f"GEQRT row {r} out of range [0, {rows})")
    killed = set()
    for e in plan.eliminations:
        if e.killed == e.killer:
            raise ValueError(f"row {e.killed} cannot kill itself")
        if not (0 <= e.killed < rows and 0 <= e.killer < rows):
            raise ValueError(f"elimination {e} out of range [0, {rows})")
        if e.killed == 0:
            raise ValueError("row 0 is the survivor and cannot be killed")
        if e.killed in killed:
            raise ValueError(f"row {e.killed} killed twice")
        if e.killer in killed:
            raise ValueError(f"row {e.killer} kills after having been killed")
        if e.use_tt:
            if e.killed not in geqrt or e.killer not in geqrt:
                raise ValueError(
                    f"TT elimination {e} involves a row that was never triangularized"
                )
        else:
            if e.killed in geqrt:
                raise ValueError(
                    f"TS elimination {e} kills row {e.killed} which was triangularized"
                )
            if e.killer not in geqrt:
                raise ValueError(
                    f"TS elimination {e} uses killer row {e.killer} which holds no triangle"
                )
        killed.add(e.killed)
    expected_killed = set(range(1, rows))
    if killed != expected_killed:
        missing = sorted(expected_killed - killed)
        raise ValueError(f"rows never killed: {missing}")
