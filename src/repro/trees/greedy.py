"""Greedy reduction trees.

Two situations must be distinguished (and the paper does):

* **Inside BIDIAG**, consecutive QR and LQ steps cannot overlap
  (Section IV-A), so every panel starts with all its rows simultaneously
  available and the GREEDY tree is simply a *binomial* tree: the panel is
  reduced in ``ceil(log2(u))`` rounds, the minimum possible.

* **Inside a full QR factorization** (the ``preQR`` phase of R-BIDIAG),
  successive panels *can* overlap, and the pairing chosen inside panel ``k``
  determines how early panel ``k+1`` can start.  The GREEDY algorithm of
  Bouwmeester et al. pairs, at every instant, the rows that became available
  the earliest, which is what achieves the ``22q + o(q)`` critical path the
  paper relies on.  :meth:`GreedyTree.plan_factorization` implements that
  readiness-driven pairing for a whole factorization.

All eliminations use TT kernels, hence every row is triangularized first.
"""

from __future__ import annotations

import heapq
from typing import List

from repro.trees.base import Elimination, PanelContext, PanelPlan, ReductionTree


def binomial_eliminations(rows: int) -> List[Elimination]:
    """Binomial-tree eliminations of ``rows`` rows into row 0.

    Round ``r`` pairs rows that are ``2^r`` apart: row ``i + 2^r`` is killed
    by row ``i`` for every ``i`` that is a multiple of ``2^(r+1)``.
    """
    eliminations: List[Elimination] = []
    stride = 1
    rnd = 0
    while stride < rows:
        for killer in range(0, rows, 2 * stride):
            killed = killer + stride
            if killed < rows:
                eliminations.append(
                    Elimination(killed=killed, killer=killer, use_tt=True, round=rnd)
                )
        stride *= 2
        rnd += 1
    return eliminations


def greedy_factorization_plans(p: int, q: int) -> List[PanelPlan]:
    """Readiness-driven GREEDY elimination plans for a full QR factorization.

    The pairing inside each panel is chosen by simulating logical readiness
    times: an elimination combines the two alive rows that became available
    the earliest; the lower-indexed row survives (so the panel head is the
    final survivor), and the killed row becomes available for the *next*
    panel one logical step later.  This is the cross-panel GREEDY scheme of
    the HQR framework; traced into a DAG it pipelines successive panels and
    reaches the asymptotically optimal critical path.

    Returns one :class:`PanelPlan` per panel ``k = 0 .. min(p, q) - 1``,
    expressed (like every plan) in panel-local row indices.
    """
    if p < 1 or q < 1:
        raise ValueError(f"tile shape must be at least 1x1, got {p}x{q}")
    plans: List[PanelPlan] = []
    # Logical time at which each row is ready to start the *current* panel.
    ready = [0] * p
    for k in range(min(p, q)):
        rows = list(range(k, p))
        heap = [(ready[i], i) for i in rows]
        heapq.heapify(heap)
        eliminations: List[Elimination] = []
        while len(heap) > 1:
            a_time, a_row = heapq.heappop(heap)
            b_time, b_row = heapq.heappop(heap)
            t = max(a_time, b_time) + 1
            killer, killed = min(a_row, b_row), max(a_row, b_row)
            eliminations.append(
                Elimination(
                    killed=killed - k, killer=killer - k, use_tt=True, round=t - 1
                )
            )
            heapq.heappush(heap, (t, killer))
            ready[killed] = t  # available for the next panel after its update
        if heap:
            ready[heap[0][1]] = heap[0][0]
        # The list must be a valid topological order: sort by elimination time.
        eliminations.sort(key=lambda e: e.round)
        plans.append(
            PanelPlan(geqrt_rows=list(range(p - k)), eliminations=eliminations)
        )
    return plans


class GreedyTree(ReductionTree):
    """The GREEDY tree of the paper (TT kernels).

    For a single panel the plan is a binomial tree (minimum depth when all
    rows are available at once — the BIDIAG situation).  For a full QR
    factorization, :meth:`plan_factorization` provides the readiness-driven
    cross-panel pairing that pipelines successive panels.
    """

    name = "Greedy"

    def plan(self, ctx: PanelContext) -> PanelPlan:
        return PanelPlan(
            geqrt_rows=list(range(ctx.rows)),
            eliminations=binomial_eliminations(ctx.rows),
        )

    def plan_factorization(self, p: int, q: int) -> List[PanelPlan]:
        """Cross-panel GREEDY plans for the QR factorization of ``p x q`` tiles."""
        return greedy_factorization_plans(p, q)


class BinaryTree(ReductionTree):
    """Alias of the binomial reduction kept as a distinct class.

    The HQR framework distinguishes a *binary* tree (pairing neighbouring
    rows) from the *greedy* tree (which adapts across panels); for a single
    panel with all rows available they coincide.  Having both names lets the
    hierarchical tree express its configuration in the HQR vocabulary.
    """

    name = "Binary"

    def plan(self, ctx: PanelContext) -> PanelPlan:
        return PanelPlan(
            geqrt_rows=list(range(ctx.rows)),
            eliminations=binomial_eliminations(ctx.rows),
        )
