"""Flat reduction trees: FLATTS and FLATTT.

* **FLATTS** is the reference tree of the original tiled-QR papers
  (Buttari et al.): the panel head (row 0) is factored once with GEQRT and
  every other row is annihilated *in sequence* with TS kernels.  Highly
  efficient kernels, but a completely sequential reduction —
  the critical path of one panel grows linearly in the number of rows.

* **FLATTT** performs exactly the same eliminations, but every row is first
  triangularized (GEQRT) so that the eliminations use the cheaper TT
  kernels.  The eliminations remain sequential, but each one is three times
  cheaper on the critical path (2 + 6 instead of 6 + 12, Table I).
"""

from __future__ import annotations

from repro.trees.base import Elimination, PanelContext, PanelPlan, ReductionTree


class FlatTSTree(ReductionTree):
    """Flat tree with TS kernels (the PLASMA default)."""

    name = "FlatTS"

    def plan(self, ctx: PanelContext) -> PanelPlan:
        eliminations = [
            Elimination(killed=i, killer=0, use_tt=False, round=i - 1)
            for i in range(1, ctx.rows)
        ]
        return PanelPlan(geqrt_rows=[0], eliminations=eliminations)


class FlatTTTree(ReductionTree):
    """Flat tree with TT kernels."""

    name = "FlatTT"

    def plan(self, ctx: PanelContext) -> PanelPlan:
        geqrt_rows = list(range(ctx.rows))
        eliminations = [
            Elimination(killed=i, killer=0, use_tt=True, round=i - 1)
            for i in range(1, ctx.rows)
        ]
        return PanelPlan(geqrt_rows=geqrt_rows, eliminations=eliminations)
