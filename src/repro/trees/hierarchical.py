"""Hierarchical (multi-level) reduction trees for distributed memory.

In the DPLASMA implementation (Section V), distributed runs use the HQR
multi-level trees:

* the *highest* level is a tree of size ``R`` (the number of process-grid
  rows) combining one representative tile row per grid row — a flat tree by
  default when ``p >= 2q``, a Fibonacci/greedy tree otherwise;
* the *lowest* levels work on the tile rows local to one node; the paper's
  default is FlatTS domains connected by a Greedy tree, i.e. exactly the
  AUTO tree for the adaptive configuration.

:class:`HierarchicalTree` composes any local tree with any top-level tree.
Rows are assigned to grid rows with the 2D block-cyclic rule
``owner = global_row mod R``; all intra-node eliminations stay local, and
only the final combination of the per-node heads crosses the network —
which is what makes the communication volume of the distributed algorithm
proportional to ``R`` per panel instead of ``u``.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.trees.base import Elimination, PanelContext, PanelPlan, ReductionTree
from repro.trees.flat import FlatTSTree
from repro.trees.greedy import binomial_eliminations
from repro.trees.fibonacci import FibonacciTree


def _flat_head_eliminations(n_heads: int) -> List[Elimination]:
    """Sequential TT eliminations of all heads into head 0 (flat top tree)."""
    return [
        Elimination(killed=i, killer=0, use_tt=True, round=i - 1)
        for i in range(1, n_heads)
    ]


class HierarchicalTree(ReductionTree):
    """Two-level tree: a local tree per process-grid row + a top tree across rows.

    Parameters
    ----------
    local_tree:
        Reduction tree used for the tile rows owned by one grid row
        (default: :class:`AutoTree`-like behaviour via :class:`FlatTSTree`
        when ``local_tree`` is omitted — pass an :class:`AutoTree` instance
        to reproduce the paper's AUTO distributed configuration).
    top:
        ``"flat"``, ``"greedy"`` or ``"fibonacci"`` — the tree combining the
        per-grid-row heads (the paper's default is flat for ``p >= 2q`` and
        Fibonacci otherwise; use :meth:`default_for_shape`).
    grid_rows:
        Number of process-grid rows ``R``; if ``None`` the value carried by
        the :class:`PanelContext` is used.
    """

    name = "Hierarchical"

    def __init__(
        self,
        local_tree: Optional[ReductionTree] = None,
        top: str = "flat",
        grid_rows: Optional[int] = None,
    ) -> None:
        top = top.strip().lower()
        if top not in {"flat", "greedy", "fibonacci"}:
            raise ValueError(f"unknown top-level tree {top!r}")
        if grid_rows is not None and grid_rows < 1:
            raise ValueError("grid_rows must be >= 1")
        self.local_tree = local_tree if local_tree is not None else FlatTSTree()
        self.top = top
        self.grid_rows = grid_rows

    @classmethod
    def default_for_shape(
        cls, p: int, q: int, grid_rows: int, local_tree: Optional[ReductionTree] = None
    ) -> "HierarchicalTree":
        """The HQR default configuration for a ``p x q`` tile matrix.

        Flat top tree when ``p >= 2q`` (tall matrices, lower communication
        volume), Fibonacci otherwise (squarish matrices, more top-level
        parallelism).
        """
        top = "flat" if p >= 2 * q else "fibonacci"
        return cls(local_tree=local_tree, top=top, grid_rows=grid_rows)

    def _top_eliminations(self, n_heads: int) -> List[Elimination]:
        if self.top == "flat":
            return _flat_head_eliminations(n_heads)
        if self.top == "greedy":
            return binomial_eliminations(n_heads)
        # Fibonacci: reuse the FibonacciTree plan on the head count.
        plan = FibonacciTree().plan(PanelContext(rows=n_heads))
        return list(plan.eliminations)

    def plan(self, ctx: PanelContext) -> PanelPlan:
        rows = ctx.rows
        grid_rows = self.grid_rows if self.grid_rows is not None else ctx.grid_rows
        if grid_rows <= 1 or rows == 1:
            return self.local_tree.plan(ctx)

        # Group local rows by owning process-grid row.
        groups: Dict[int, List[int]] = {}
        for local in range(rows):
            owner = (ctx.row_offset + local) % grid_rows
            groups.setdefault(owner, []).append(local)

        geqrt_rows: List[int] = []
        eliminations: List[Elimination] = []
        heads: List[int] = []
        for owner in sorted(groups, key=lambda o: groups[o][0]):
            members = groups[owner]
            sub_ctx = PanelContext(
                rows=len(members),
                cols_remaining=ctx.cols_remaining,
                row_offset=ctx.row_offset + members[0],
                n_cores=ctx.n_cores,
                grid_rows=1,
            )
            sub_plan = self.local_tree.plan(sub_ctx)
            geqrt_rows.extend(members[r] for r in sub_plan.geqrt_rows)
            eliminations.extend(
                Elimination(
                    killed=members[e.killed],
                    killer=members[e.killer],
                    use_tt=e.use_tt,
                    round=e.round,
                )
                for e in sub_plan.eliminations
            )
            heads.append(members[0])

        # Top-level reduction of the per-grid-row heads (always TT kernels;
        # the heads hold triangles after their local reduction).
        heads.sort()
        geqrt_set = set(geqrt_rows)
        base_round = max((e.round for e in eliminations), default=-1) + 1
        for e in self._top_eliminations(len(heads)):
            killed, killer = heads[e.killed], heads[e.killer]
            for head in (killed, killer):
                if head not in geqrt_set:
                    geqrt_rows.append(head)
                    geqrt_set.add(head)
            eliminations.append(
                Elimination(
                    killed=killed, killer=killer, use_tt=True, round=base_round + e.round
                )
            )
        return PanelPlan(geqrt_rows=sorted(set(geqrt_rows)), eliminations=eliminations)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"HierarchicalTree(local_tree={self.local_tree!r}, top={self.top!r}, "
            f"grid_rows={self.grid_rows})"
        )
