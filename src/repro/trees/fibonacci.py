"""Fibonacci reduction tree (Modi & Clarke scheme).

The Fibonacci tree is one of the trees offered by the HQR framework [12]
for the *distributed* (highest) level; the paper's DPLASMA implementation
uses it as the default top-level tree when ``p < 2q``.  It assigns to each
row an annihilation *time step* so that the number of rows annihilated at
consecutive steps follows a staircase pattern; a row killed at step ``t``
is killed by the closest surviving row above it.

For a panel whose rows are all simultaneously available the Fibonacci tree
has the same ``O(log u)`` depth as the binomial tree (it is marginally
deeper), but it pipelines better across successive panels of a full QR
factorization, which is why HQR exposes both.
"""

from __future__ import annotations

from typing import List

from repro.trees.base import Elimination, PanelContext, PanelPlan, ReductionTree


def fibonacci_schedule(rows: int) -> List[int]:
    """Annihilation time step of each local row for the Fibonacci scheme.

    Returns a list ``steps`` of length ``rows`` where ``steps[i]`` is the
    round at which row ``i`` is annihilated (``steps[0] = 0`` by convention;
    row 0 is never annihilated).  Row ``i`` can be annihilated at round
    ``t`` only if its killer has finished all its earlier kills, which the
    staircase construction guarantees.
    """
    if rows < 1:
        raise ValueError("rows must be >= 1")
    steps = [0] * rows
    # Build the schedule from the bottom: the last rows are killed first.
    # At round t (t = 1, 2, ...) we can kill `count(t)` additional rows,
    # where count follows the Fibonacci-like growth of surviving killers.
    remaining = rows - 1
    killable = 1  # number of rows that can be killed in the current round
    rnd = 1
    idx = rows - 1
    while remaining > 0:
        kills = min(killable, remaining)
        for _ in range(kills):
            steps[idx] = rnd
            idx -= 1
            remaining -= 1
        killable += kills  # every survivor can kill again next round
        rnd += 1
    return steps


class FibonacciTree(ReductionTree):
    """Fibonacci tree with TT kernels."""

    name = "Fibonacci"

    def plan(self, ctx: PanelContext) -> PanelPlan:
        rows = ctx.rows
        steps = fibonacci_schedule(rows)
        max_round = max(steps) if rows > 1 else 0
        alive = list(range(rows))
        eliminations: List[Elimination] = []
        for rnd in range(1, max_round + 1):
            victims = [i for i in alive if i != 0 and steps[i] == rnd]
            used_killers: set[int] = set()
            for killed in sorted(victims):
                # Killer: the closest surviving row above the victim that is
                # not itself killed this round and has not already been used
                # as a killer this round (a tile can only serve one TTQRT at
                # a time).
                candidates = [
                    i
                    for i in alive
                    if i < killed and i not in victims and i not in used_killers
                ]
                if not candidates:
                    candidates = [i for i in alive if i < killed and i not in victims]
                killer = max(candidates)
                used_killers.add(killer)
                eliminations.append(
                    Elimination(killed=killed, killer=killer, use_tt=True, round=rnd - 1)
                )
            alive = [i for i in alive if i not in victims]
        return PanelPlan(geqrt_rows=list(range(rows)), eliminations=eliminations)
