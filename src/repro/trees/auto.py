"""The AUTO adaptive reduction tree (Section V of the paper).

AUTO combines the strengths of FLATTS and GREEDY:

* the panel rows are split into consecutive *domains* of ``a`` rows; inside
  a domain the reduction is a FlatTS tree (efficient TS kernels, one GEQRT
  per domain head);
* the domain heads are then combined with a GREEDY (binomial) tree of TT
  eliminations, which keeps the panel depth logarithmic in the number of
  domains.

The domain size ``a`` is chosen *per panel step* so that the number of
independent tasks, ``ceil(u / a) * v`` (``u`` panel rows, ``v`` trailing
columns), stays above ``gamma * n_cores``; the paper uses ``gamma = 2``.
Large panels therefore get large domains (more TS kernels, higher kernel
efficiency) while small panels get many small domains (more parallelism).
"""

from __future__ import annotations

import math
from typing import List, Optional

from repro.trees.base import Elimination, PanelContext, PanelPlan, ReductionTree
from repro.trees.greedy import binomial_eliminations


def auto_domain_size(
    rows: int, cols_remaining: int, n_cores: int, gamma: float = 2.0
) -> int:
    """Domain size ``a`` chosen by the AUTO tree for one panel step.

    Picks the largest ``a`` such that ``ceil(rows / a) * max(cols, 1)`` —
    the number of simultaneously available update tasks — is at least
    ``gamma * n_cores``; falls back to ``a = 1`` (pure GREEDY behaviour)
    when even single-row domains cannot provide that much parallelism.
    """
    if rows < 1:
        raise ValueError("rows must be >= 1")
    cols = max(cols_remaining, 1)
    target = gamma * max(n_cores, 1)
    # Number of domains needed to reach the parallelism target.
    needed_domains = math.ceil(target / cols)
    if needed_domains >= rows:
        return 1
    if needed_domains <= 1:
        return rows
    return math.ceil(rows / needed_domains)


class AutoTree(ReductionTree):
    """Adaptive FlatTS-within-Greedy tree.

    Parameters
    ----------
    n_cores:
        Number of cores of the target node; if ``None`` the value carried by
        the :class:`PanelContext` is used.
    gamma:
        Parallelism safety factor (the paper uses 2).
    fixed_domain_size:
        Force a constant domain size instead of the adaptive choice; used by
        ablation studies (``a = 4`` reproduces the HQR default low-level
        tree).
    """

    name = "Auto"

    def __init__(
        self,
        n_cores: Optional[int] = None,
        gamma: float = 2.0,
        fixed_domain_size: Optional[int] = None,
    ) -> None:
        if n_cores is not None and n_cores < 1:
            raise ValueError("n_cores must be >= 1")
        if gamma <= 0:
            raise ValueError("gamma must be > 0")
        if fixed_domain_size is not None and fixed_domain_size < 1:
            raise ValueError("fixed_domain_size must be >= 1")
        self.n_cores = n_cores
        self.gamma = gamma
        self.fixed_domain_size = fixed_domain_size

    def domain_size(self, ctx: PanelContext) -> int:
        """The domain size ``a`` used for the panel described by ``ctx``."""
        if self.fixed_domain_size is not None:
            return min(self.fixed_domain_size, ctx.rows)
        cores = self.n_cores if self.n_cores is not None else ctx.n_cores
        return auto_domain_size(ctx.rows, ctx.cols_remaining, cores, self.gamma)

    def plan(self, ctx: PanelContext) -> PanelPlan:
        rows = ctx.rows
        a = self.domain_size(ctx)
        heads = list(range(0, rows, a))
        geqrt_rows = list(heads)
        eliminations: List[Elimination] = []
        # FlatTS reduction inside each domain.
        for head in heads:
            domain_end = min(head + a, rows)
            for offset, row in enumerate(range(head + 1, domain_end)):
                eliminations.append(
                    Elimination(killed=row, killer=head, use_tt=False, round=offset)
                )
        # Greedy (binomial) reduction of the domain heads with TT kernels.
        base_round = a  # informational only; real dependencies come from the tracer
        for e in binomial_eliminations(len(heads)):
            eliminations.append(
                Elimination(
                    killed=heads[e.killed],
                    killer=heads[e.killer],
                    use_tt=True,
                    round=base_round + e.round,
                )
            )
        return PanelPlan(geqrt_rows=geqrt_rows, eliminations=eliminations)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"AutoTree(n_cores={self.n_cores}, gamma={self.gamma}, "
            f"fixed_domain_size={self.fixed_domain_size})"
        )
