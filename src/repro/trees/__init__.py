"""Reduction trees for the QR / LQ panel steps.

A reduction tree decides, for one panel of ``u`` tile rows, in which order
and with which kernels (TS or TT) the ``u - 1`` tiles below the panel head
are annihilated.  The paper studies four shared-memory trees —
FLATTS, FLATTT, GREEDY and the adaptive AUTO tree — plus hierarchical
(multi-level) trees for distributed memory.
"""

from repro.trees.base import (
    Elimination,
    PanelContext,
    PanelPlan,
    ReductionTree,
    validate_plan,
)
from repro.trees.flat import FlatTSTree, FlatTTTree
from repro.trees.greedy import GreedyTree, BinaryTree
from repro.trees.fibonacci import FibonacciTree
from repro.trees.auto import AutoTree
from repro.trees.hierarchical import HierarchicalTree

__all__ = [
    "Elimination",
    "PanelContext",
    "PanelPlan",
    "ReductionTree",
    "validate_plan",
    "FlatTSTree",
    "FlatTTTree",
    "GreedyTree",
    "BinaryTree",
    "FibonacciTree",
    "AutoTree",
    "HierarchicalTree",
    "make_tree",
    "TREE_REGISTRY",
]


TREE_REGISTRY = {
    "flatts": FlatTSTree,
    "flattt": FlatTTTree,
    "greedy": GreedyTree,
    "binary": BinaryTree,
    "fibonacci": FibonacciTree,
    "auto": AutoTree,
}


def make_tree(name: str, **kwargs) -> ReductionTree:
    """Instantiate a reduction tree by name.

    Recognised names: ``flatts``, ``flattt``, ``greedy``, ``binary``,
    ``fibonacci`` and ``auto`` (case-insensitive).  Keyword arguments are
    forwarded to the tree constructor (e.g. ``n_cores=24, gamma=2.0`` for
    the AUTO tree).
    """
    key = name.strip().lower()
    try:
        cls = TREE_REGISTRY[key]
    except KeyError:
        raise ValueError(
            f"unknown reduction tree {name!r}; available: {sorted(TREE_REGISTRY)}"
        ) from None
    return cls(**kwargs)
