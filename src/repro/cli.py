"""Command-line interface.

``python -m repro <command>`` exposes the library's main entry points
without writing any Python:

* ``list``            — list the registered paper experiments;
* ``run <key>``       — run one experiment and print / save its rows;
* ``critical-path``   — closed-form and DAG-measured critical paths;
* ``simulate``        — one runtime simulation (GE2BND or GE2VAL);
* ``svd``             — compute singular values of a random or ``.npy`` matrix
  with the numeric tiled pipeline and compare against ``numpy.linalg.svd``.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional, Sequence

import numpy as np


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Tiled bidiagonalization / R-bidiagonalization reproduction toolkit",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list the registered paper experiments")

    run = sub.add_parser("run", help="run a registered experiment")
    run.add_argument("experiment", help="experiment key (see 'repro list')")
    run.add_argument("--csv", help="write the result rows to this CSV file")
    run.add_argument("--json", help="write the result rows to this JSON file")
    run.add_argument("--markdown", action="store_true", help="print a markdown table")

    cp = sub.add_parser("critical-path", help="critical paths of BIDIAG / R-BIDIAG")
    cp.add_argument("p", type=int, help="tile rows")
    cp.add_argument("q", type=int, help="tile columns")
    cp.add_argument("--tree", default="greedy", choices=["flatts", "flattt", "greedy"])
    cp.add_argument("--algorithm", default="bidiag", choices=["bidiag", "rbidiag"])

    sim = sub.add_parser("simulate", help="simulate one GE2BND / GE2VAL run")
    sim.add_argument("m", type=int, help="matrix rows")
    sim.add_argument("n", type=int, help="matrix columns")
    sim.add_argument("--nodes", type=int, default=1)
    sim.add_argument("--cores", type=int, default=24)
    sim.add_argument("--nb", type=int, default=160)
    sim.add_argument("--tree", default="auto", choices=["flatts", "flattt", "greedy", "auto"])
    sim.add_argument("--algorithm", default="auto", choices=["auto", "bidiag", "rbidiag"])
    sim.add_argument("--ge2val", action="store_true", help="include BND2BD + BD2VAL stages")

    svd = sub.add_parser("svd", help="singular values via the numeric tiled pipeline")
    svd.add_argument("--input", help=".npy file holding the matrix (random if omitted)")
    svd.add_argument("--m", type=int, default=120)
    svd.add_argument("--n", type=int, default=80)
    svd.add_argument("--tile-size", type=int, default=20)
    svd.add_argument("--tree", default="greedy")
    svd.add_argument("--variant", default="auto", choices=["auto", "bidiag", "rbidiag"])
    svd.add_argument("--seed", type=int, default=0)

    return parser


def _cmd_list() -> int:
    from repro.experiments.registry import list_experiments

    for exp in list_experiments():
        print(f"{exp.key:22s}  {exp.paper_ref:24s}  {exp.description}")
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    from repro.experiments.figures import format_rows
    from repro.experiments.registry import run_experiment
    from repro.utils.io import rows_to_markdown, save_rows_csv, save_rows_json

    try:
        rows = run_experiment(args.experiment)
    except KeyError as exc:
        print(exc.args[0], file=sys.stderr)
        return 2
    if args.markdown:
        print(rows_to_markdown(rows))
    else:
        print(format_rows(rows))
    if args.csv:
        save_rows_csv(rows, args.csv)
        print(f"wrote {len(rows)} rows to {args.csv}")
    if args.json:
        save_rows_json(rows, args.json)
        print(f"wrote {len(rows)} rows to {args.json}")
    return 0


def _cmd_critical_path(args: argparse.Namespace) -> int:
    from repro.analysis.formulas import bidiag_cp, rbidiag_cp
    from repro.dag.critical_path import critical_path_length
    from repro.dag.tracer import trace_bidiag, trace_rbidiag
    from repro.trees import make_tree

    tree = make_tree(args.tree)
    if args.algorithm == "bidiag":
        formula = bidiag_cp(args.p, args.q, args.tree)
        measured = critical_path_length(trace_bidiag(args.p, args.q, tree))
    else:
        formula = rbidiag_cp(args.p, args.q, args.tree)
        measured = critical_path_length(trace_rbidiag(args.p, args.q, tree))
    print(f"algorithm      : {args.algorithm}")
    print(f"tree           : {args.tree}")
    print(f"tiles          : {args.p} x {args.q}")
    print(f"closed form    : {formula}")
    print(f"measured (DAG) : {measured:.0f}")
    return 0


def _cmd_simulate(args: argparse.Namespace) -> int:
    from repro.runtime.machine import Machine
    from repro.runtime.simulator import simulate_ge2bnd, simulate_ge2val

    machine = Machine(n_nodes=args.nodes, cores_per_node=args.cores, tile_size=args.nb)
    if args.ge2val:
        result = simulate_ge2val(args.m, args.n, machine, tree=args.tree, algorithm=args.algorithm)
    else:
        algorithm = args.algorithm if args.algorithm != "auto" else (
            "rbidiag" if 3 * args.m >= 5 * args.n else "bidiag"
        )
        result = simulate_ge2bnd(args.m, args.n, machine, tree=args.tree, algorithm=algorithm)
    print(result)
    print(f"tasks          : {result.n_tasks}")
    print(f"messages       : {result.messages}")
    print(f"time (s)       : {result.time_seconds:.4f}")
    print(f"GFlop/s        : {result.gflops:.1f}")
    return 0


def _cmd_svd(args: argparse.Namespace) -> int:
    from repro.algorithms.svd import ge2val

    if args.input:
        a = np.load(args.input)
    else:
        rng = np.random.default_rng(args.seed)
        a = rng.standard_normal((args.m, args.n))
    sv = ge2val(a, tile_size=args.tile_size, tree=args.tree, variant=args.variant)
    ref = np.linalg.svd(a, compute_uv=False)
    err = float(np.max(np.abs(sv - ref)) / ref[0])
    print(f"matrix          : {a.shape[0]} x {a.shape[1]}")
    print(f"largest sigma   : {sv[0]:.6e}")
    print(f"smallest sigma  : {sv[-1]:.6e}")
    print(f"max rel error   : {err:.3e} (vs numpy.linalg.svd)")
    return 0 if err < 1e-8 else 1


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = _build_parser().parse_args(argv)
    if args.command == "list":
        return _cmd_list()
    if args.command == "run":
        return _cmd_run(args)
    if args.command == "critical-path":
        return _cmd_critical_path(args)
    if args.command == "simulate":
        return _cmd_simulate(args)
    if args.command == "svd":
        return _cmd_svd(args)
    raise AssertionError(f"unhandled command {args.command!r}")  # pragma: no cover


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
