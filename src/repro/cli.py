"""Command-line interface.

``python -m repro <command>`` exposes the library's main entry points
without writing any Python:

* ``list``            — list the registered paper experiments;
* ``run <key>``       — run one experiment and print / save its rows;
* ``plan``            — build one :class:`~repro.api.plan.SvdPlan` and run
  it through any backend (``numeric`` / ``dag`` / ``simulate`` / ``all``);
* ``tune``            — autotune a plan (tile size, tree, variant, grid)
  with the :mod:`repro.tuning` subsystem and its persistent plan cache;
* ``critical-path``   — closed-form and DAG-measured critical paths;
* ``simulate``        — one runtime simulation (GE2BND or GE2VAL) under any
  scheduling policy (``--policy``) and network model (``--network``);
* ``trace``           — a traced simulation exporting a Chrome/Perfetto
  trace-event JSON (plus optional ASCII/SVG Gantt charts; see
  :mod:`repro.obs`);
* ``stats``           — a simulation reporting its observability metrics
  (cache hit/miss, per-node utilization, ready-queue depth), optionally
  as JSON;
* ``policies``        — list the simulation engine's scheduling policies;
* ``networks``        — list the simulation engine's network models;
* ``scenarios``       — list the machine-realism scenarios (heterogeneity,
  fault and network-noise models; see :mod:`repro.runtime.scenario`);
* ``verify``          — statically verify a compiled Program (dataflow
  oracle) and its engine Schedules (feasibility sanitizer) for one plan,
  optionally across every policy / network (see :mod:`repro.verify`);
* ``campaign``        — fault-tolerant, resumable sweep campaigns
  (``run`` / ``resume`` / ``status`` / ``report``) over a crash-consistent
  result store (see :mod:`repro.campaign`); ``run`` exits 0 when complete,
  1 with quarantined candidates, 3 when interrupted-but-resumable;
* ``svd``             — compute singular values of a random or ``.npy`` matrix
  with the numeric tiled pipeline and compare against ``numpy.linalg.svd``.

The ``plan``, ``simulate``, ``critical-path`` and ``svd`` commands are all
thin shells over the unified plan API (:mod:`repro.api`).
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional, Sequence

import numpy as np

from repro.api import BACKENDS, STAGES, VARIANTS
from repro.config import PRESETS
from repro.runtime.network import NETWORK_MODELS
from repro.runtime.policies import POLICIES
from repro.runtime.scenario import SCENARIOS
from repro.trees import TREE_REGISTRY

_TREE_CHOICES = sorted(TREE_REGISTRY)
_VARIANT_CHOICES = list(VARIANTS)
_POLICY_CHOICES = sorted(POLICIES)
_NETWORK_CHOICES = sorted(NETWORK_MODELS)
_SCENARIO_CHOICES = sorted(SCENARIOS)


def _add_plan_arguments(parser: argparse.ArgumentParser) -> None:
    """Arguments shared by every plan-backed command."""
    parser.add_argument("--tree", default=None, choices=_TREE_CHOICES,
                        help="reduction tree (default: greedy)")
    parser.add_argument("--variant", default="auto", choices=_VARIANT_CHOICES,
                        help="BIDIAG / R-BIDIAG / Chan auto-crossover")
    parser.add_argument("--n-cores", type=int, default=1,
                        help="cores per node (AUTO-tree hint / simulator cores)")
    parser.add_argument("--nodes", type=int, default=1, help="node count")
    parser.add_argument("--machine", default="miriel", choices=sorted(PRESETS),
                        help="machine preset")
    parser.add_argument("--seed", type=int, default=0,
                        help="seed of the generated input matrix")


def _add_sim_arguments(parser: argparse.ArgumentParser) -> None:
    """Arguments shared by the simulation-backed commands
    (``simulate`` / ``trace`` / ``stats``)."""
    parser.add_argument("m", type=int, help="matrix rows")
    parser.add_argument("n", type=int, help="matrix columns")
    parser.add_argument("--nodes", type=int, default=1)
    parser.add_argument("--cores", type=int, default=24)
    parser.add_argument("--nb", type=int, default=160)
    parser.add_argument("--tree", default="auto", choices=_TREE_CHOICES)
    parser.add_argument("--algorithm", default="auto", choices=_VARIANT_CHOICES)
    parser.add_argument("--policy", default="list", choices=_POLICY_CHOICES,
                        help="scheduling policy of the simulation engine")
    parser.add_argument("--network", default="uniform", choices=_NETWORK_CHOICES,
                        help="communication model of the simulation engine")
    parser.add_argument("--scenario", default=None, choices=_SCENARIO_CHOICES,
                        help="machine-realism scenario (heterogeneity / faults / "
                             "noise; see 'repro scenarios')")
    parser.add_argument("--draws", type=int, default=None,
                        help="Monte-Carlo draw count for stochastic scenarios "
                             "(default: the scenario's own)")
    parser.add_argument("--seed", type=int, default=0,
                        help="seed of the Monte-Carlo scenario draws")
    parser.add_argument("--ge2val", action="store_true",
                        help="include BND2BD + BD2VAL stages")


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Tiled bidiagonalization / R-bidiagonalization reproduction toolkit",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list the registered paper experiments")

    sub.add_parser(
        "policies", help="list the simulation engine's scheduling policies"
    )

    sub.add_parser(
        "networks", help="list the simulation engine's network models"
    )

    sub.add_parser(
        "scenarios",
        help="list the machine-realism scenarios and their fault/noise models",
    )

    run = sub.add_parser("run", help="run a registered experiment")
    run.add_argument("experiment", help="experiment key (see 'repro list')")
    run.add_argument("--csv", help="write the result rows to this CSV file")
    run.add_argument("--json", help="write the result rows to this JSON file")
    run.add_argument("--markdown", action="store_true", help="print a markdown table")
    run.add_argument(
        "--param",
        action="append",
        default=[],
        metavar="KEY=VALUE",
        help="override one experiment parameter (repeatable)",
    )

    plan = sub.add_parser(
        "plan", help="run one SvdPlan through the numeric / dag / simulate backends"
    )
    plan.add_argument("--m", type=int, required=True, help="matrix rows")
    plan.add_argument("--n", type=int, required=True, help="matrix columns")
    plan.add_argument("--stage", default="ge2val", choices=list(STAGES))
    plan.add_argument("--backend", default="numeric",
                      choices=[*BACKENDS, "all"])
    plan.add_argument("--tile-size", type=int, default=None,
                      help="tile size nb (default: config-driven)")
    plan.add_argument("--policy", default="list", choices=_POLICY_CHOICES,
                      help="scheduling policy (simulate backend)")
    plan.add_argument("--network", default="uniform", choices=_NETWORK_CHOICES,
                      help="communication model (simulate backend)")
    plan.add_argument("--json", help="write the result row(s) to this JSON file")
    _add_plan_arguments(plan)

    tune = sub.add_parser(
        "tune", help="autotune tile size / tree / variant / grid for one problem"
    )
    tune.add_argument("--m", type=int, required=True, help="matrix rows")
    tune.add_argument("--n", type=int, required=True, help="matrix columns")
    tune.add_argument("--stage", default="ge2val",
                      choices=[s for s in STAGES if s != "gesvd"])
    tune.add_argument("--objective", default="makespan",
                      help="scoring objective (see repro.tuning.OBJECTIVES)")
    tune.add_argument("--strategy", default="grid", choices=["grid", "halving"])
    tune.add_argument("--workers", type=int, default=1,
                      help="parallel candidate evaluations (concurrent.futures)")
    tune.add_argument("--tile-sizes", default=None,
                      help="comma-separated nb candidates (default: problem-derived)")
    tune.add_argument("--inner-blocks", default=None,
                      help="comma-separated ib candidates (default: config value)")
    tune.add_argument("--trees", default=None,
                      help="comma-separated tree names (default: flatts,flattt,greedy,auto)")
    tune.add_argument("--variants", default=None,
                      help="comma-separated variants (default: bidiag,rbidiag)")
    tune.add_argument("--no-prune", action="store_true",
                      help="disable analytic-model pruning (exhaustive evaluation)")
    tune.add_argument("--no-cache", action="store_true",
                      help="do not read or write the persistent plan cache")
    tune.add_argument("--force", action="store_true",
                      help="re-tune even on a plan-cache hit (refreshes the entry)")
    tune.add_argument("--clear-cache", action="store_true",
                      help="clear the plan cache and exit")
    tune.add_argument("--cache-file", default=None,
                      help="plan cache location (default: $REPRO_TUNE_CACHE or "
                           "~/.cache/repro/plan_cache.json)")
    tune.add_argument("--policy", default="list", choices=_POLICY_CHOICES,
                      help="scheduling policy scoring simulated candidates")
    tune.add_argument("--network", default="uniform", choices=_NETWORK_CHOICES,
                      help="communication model scoring simulated candidates")
    tune.add_argument("--scenario", default=None, choices=_SCENARIO_CHOICES,
                      help="machine-realism scenario the candidates run under "
                           "(pair with --objective robust-makespan)")
    tune.add_argument("--draws", type=int, default=None,
                      help="Monte-Carlo draw count for stochastic scenarios")
    tune.add_argument("--seed", type=int, default=0,
                      help="seed of the Monte-Carlo scenario draws")
    tune.add_argument("--json", help="write the evaluation rows to this JSON file")
    tune.add_argument("--n-cores", type=int, default=24,
                      help="cores per node (default: 24, the paper's miriel node)")
    tune.add_argument("--nodes", type=int, default=1, help="node count")
    tune.add_argument("--machine", default="miriel", choices=sorted(PRESETS),
                      help="machine preset")

    cp = sub.add_parser("critical-path", help="critical paths of BIDIAG / R-BIDIAG")
    cp.add_argument("p", type=int, help="tile rows")
    cp.add_argument("q", type=int, help="tile columns")
    cp.add_argument("--tree", default="greedy", choices=["flatts", "flattt", "greedy"])
    cp.add_argument("--algorithm", default="bidiag", choices=["bidiag", "rbidiag"])

    sim = sub.add_parser("simulate", help="simulate one GE2BND / GE2VAL run")
    _add_sim_arguments(sim)

    trace = sub.add_parser(
        "trace",
        help="simulate one run with execution tracing and export the "
             "timeline (Chrome/Perfetto trace JSON, optional Gantt)",
    )
    _add_sim_arguments(trace)
    trace.add_argument("--out", default="trace.json",
                       help="trace-event JSON output path (default: trace.json; "
                            "load in ui.perfetto.dev or chrome://tracing)")
    trace.add_argument("--gantt", default=None, metavar="PATH",
                       help="also write an ASCII Gantt chart ('-' = stdout)")
    trace.add_argument("--svg", default=None, metavar="PATH",
                       help="also write an SVG Gantt timeline")

    stats = sub.add_parser(
        "stats",
        help="simulate one run and report its observability metrics "
             "(cache hit/miss, utilization, communication)",
    )
    _add_sim_arguments(stats)
    stats.add_argument("--json", default=None, metavar="PATH",
                       help="write the metrics as JSON ('-' = stdout) instead "
                            "of the human-readable report")

    ver = sub.add_parser(
        "verify",
        help="statically verify the compiled Program and engine Schedules "
             "for one plan (dataflow oracle + feasibility sanitizer)",
    )
    ver.add_argument("m", type=int, help="matrix rows")
    ver.add_argument("n", type=int, help="matrix columns")
    ver.add_argument("--nodes", type=int, default=1)
    ver.add_argument("--cores", type=int, default=24)
    ver.add_argument("--nb", type=int, default=160)
    ver.add_argument("--tree", default="auto", choices=_TREE_CHOICES)
    ver.add_argument("--algorithm", default="auto", choices=_VARIANT_CHOICES)
    ver.add_argument("--machine", default="miriel", choices=sorted(PRESETS),
                     help="machine preset")
    ver.add_argument("--policy", default="list", choices=_POLICY_CHOICES,
                     help="scheduling policy to sanitize (unless --all-policies)")
    ver.add_argument("--network", default="uniform", choices=_NETWORK_CHOICES,
                     help="network model to sanitize (unless --all-networks)")
    ver.add_argument("--all-policies", action="store_true",
                     help="sanitize schedules under every scheduling policy")
    ver.add_argument("--all-networks", action="store_true",
                     help="sanitize schedules under every network model")
    ver.add_argument("--json", help="write the structured finding report "
                                    "to this JSON file")
    ver.add_argument("--inject-defect", default=None,
                     choices=["drop-edge", "perturb-start", "swap-owner"],
                     help="inject one synthetic defect before verifying "
                          "(self-test: the command must exit nonzero)")

    camp = sub.add_parser(
        "campaign",
        help="fault-tolerant, resumable sweep campaigns (see repro.campaign)",
    )
    csub = camp.add_subparsers(dest="campaign_command", required=True)
    for name, chelp in (
        ("run", "run a campaign from a spec file (resumes automatically)"),
        ("resume", "resume an interrupted campaign (alias of run)"),
    ):
        crun = csub.add_parser(name, help=chelp)
        crun.add_argument("spec", help="campaign spec file (.json or .toml)")
        crun.add_argument(
            "--store", help="result store path (default: campaign_<name>.sqlite)"
        )
        crun.add_argument("--workers", type=int, help="process fan-out width")
        crun.add_argument(
            "--max-attempts", type=int, help="retries before quarantine"
        )
        crun.add_argument(
            "--timeout", type=float, help="per-candidate timeout in seconds"
        )
        crun.add_argument(
            "--backoff", type=float, help="base retry backoff in seconds"
        )
        crun.add_argument(
            "--chunk-size", type=int, help="candidates per worker task"
        )
        crun.add_argument(
            "--requeue-quarantined",
            action="store_true",
            help="give quarantined candidates a fresh retry budget first",
        )
    cstatus = csub.add_parser("status", help="progress summary of a campaign store")
    cstatus.add_argument("store", help="result store path")
    creport = csub.add_parser(
        "report", help="result table / quarantine report of a campaign store"
    )
    creport.add_argument("store", help="result store path")
    creport.add_argument("--csv", help="write the result rows to this CSV file")
    creport.add_argument("--json", help="write the result rows to this JSON file")
    creport.add_argument(
        "--all-columns", action="store_true", help="show every result column"
    )
    creport.add_argument(
        "--quarantine", action="store_true", help="list quarantined candidates"
    )

    svd = sub.add_parser("svd", help="singular values via the numeric tiled pipeline")
    svd.add_argument("--input", help=".npy file holding the matrix (random if omitted)")
    svd.add_argument("--m", type=int, default=120)
    svd.add_argument("--n", type=int, default=80)
    svd.add_argument("--tile-size", type=int, default=20)
    svd.add_argument("--tree", default="greedy", choices=_TREE_CHOICES)
    svd.add_argument("--variant", default="auto", choices=_VARIANT_CHOICES)
    svd.add_argument("--n-cores", type=int, default=1,
                     help="AUTO-tree parallelism hint")
    svd.add_argument("--seed", type=int, default=0)

    return parser


def _cmd_list() -> int:
    from repro.experiments.registry import list_experiments

    for exp in list_experiments():
        print(f"{exp.key:22s}  {exp.paper_ref:24s}  {exp.description}")
    return 0


def _cmd_policies() -> int:
    from repro.runtime.policies import available_policies

    for name, description in available_policies():
        print(f"{name:14s}  {description}")
    return 0


def _cmd_networks() -> int:
    from repro.runtime.network import available_networks

    for name, description in available_networks():
        print(f"{name:12s}  {description}")
    return 0


def _cmd_scenarios() -> int:
    from repro.runtime.faults import available_fault_models, available_noise_models
    from repro.runtime.scenario import available_scenarios

    print("scenarios:")
    for name, description in available_scenarios():
        print(f"  {name:12s}  {description}")
    print("fault models:")
    for name, description in available_fault_models():
        print(f"  {name:12s}  {description}")
    print("noise models:")
    for name, description in available_noise_models():
        print(f"  {name:12s}  {description}")
    return 0


def _parse_params(pairs: Sequence[str]) -> dict:
    """Parse repeated ``KEY=VALUE`` overrides, with literal values."""
    import ast

    params = {}
    for pair in pairs:
        key, sep, raw = pair.partition("=")
        if not sep or not key:
            raise SystemExit(f"--param expects KEY=VALUE, got {pair!r}")
        try:
            params[key.replace("-", "_")] = ast.literal_eval(raw)
        except (SyntaxError, ValueError):
            params[key.replace("-", "_")] = raw
    return params


def _cmd_run(args: argparse.Namespace) -> int:
    from repro.experiments.figures import format_rows
    from repro.experiments.registry import run_experiment
    from repro.utils.io import rows_to_markdown, save_rows_csv, save_rows_json

    try:
        rows = run_experiment(args.experiment, **_parse_params(args.param))
    except KeyError as exc:
        print(exc.args[0], file=sys.stderr)
        return 2
    except TypeError as exc:
        # Bad --param name/value for this experiment's runner signature.
        return _user_error("run", exc)
    if args.markdown:
        print(rows_to_markdown(rows))
    else:
        print(format_rows(rows))
    if args.csv:
        save_rows_csv(rows, args.csv)
        print(f"wrote {len(rows)} rows to {args.csv}")
    if args.json:
        save_rows_json(rows, args.json)
        print(f"wrote {len(rows)} rows to {args.json}")
    return 0


def _user_error(command: str, exc: Exception) -> int:
    print(f"repro {command}: error: {exc}", file=sys.stderr)
    return 2


def _cmd_plan(args: argparse.Namespace) -> int:
    from repro.api import SvdPlan, execute

    try:
        plan = SvdPlan(
            m=args.m,
            n=args.n,
            stage=args.stage,
            variant=args.variant,
            tree=args.tree,
            tile_size=args.tile_size,
            n_cores=args.n_cores,
            n_nodes=args.nodes,
            machine=args.machine,
            policy=args.policy,
            network=args.network,
            seed=args.seed,
        )
    except ValueError as exc:
        return _user_error("plan", exc)
    backends = list(BACKENDS) if args.backend == "all" else [args.backend]
    rows = []
    for backend in backends:
        try:
            result = execute(plan, backend=backend)
        except ValueError as exc:
            if args.backend == "all":
                # A backend that cannot model this stage (e.g. gesvd under
                # the simulator) is skipped, not fatal, when sweeping all.
                print(f"(skipped {backend}: {exc})")
                continue
            return _user_error("plan", exc)
        if rows:
            print()
        print(result.summary())
        rows.append(result.to_row())
    if args.json:
        from repro.utils.io import save_rows_json

        save_rows_json(rows, args.json)
        print(f"wrote {len(rows)} rows to {args.json}")
    return 0


def _parse_int_list(raw: Optional[str]) -> Optional[List[int]]:
    if raw is None:
        return None
    return [int(v) for v in raw.split(",") if v.strip()]


def _parse_name_list(raw: Optional[str]) -> Optional[List[str]]:
    if raw is None:
        return None
    return [v.strip().lower() for v in raw.split(",") if v.strip()]


def _cmd_tune(args: argparse.Namespace) -> int:
    from repro.api import SvdPlan
    from repro.experiments.figures import format_rows
    from repro.tuning import (
        GridSearch,
        PlanCache,
        SearchSpace,
        SuccessiveHalving,
        tune,
    )

    cache = PlanCache(args.cache_file) if args.cache_file else PlanCache()
    if args.clear_cache:
        removed = cache.clear()
        print(f"cleared {removed} cached plan(s) from {cache.path}")
        return 0
    try:
        plan = SvdPlan(
            m=args.m,
            n=args.n,
            stage=args.stage,
            n_cores=args.n_cores,
            n_nodes=args.nodes,
            machine=args.machine,
            policy=args.policy,
            network=args.network,
            scenario=args.scenario,
            draws=args.draws,
            seed=args.seed,
        )
        space = SearchSpace(
            tile_sizes=_parse_int_list(args.tile_sizes),
            inner_blocks=_parse_int_list(args.inner_blocks),
            trees=_parse_name_list(args.trees) or SearchSpace().trees,
            variants=_parse_name_list(args.variants) or SearchSpace().variants,
        )
        if args.strategy == "grid":
            strategy = GridSearch(prune=not args.no_prune)
        else:
            strategy = SuccessiveHalving(prune=not args.no_prune)
        result = tune(
            plan,
            space=space,
            objective=args.objective,
            strategy=strategy,
            workers=args.workers,
            cache=False if args.no_cache else cache,
            force=args.force,
        )
    except ValueError as exc:
        return _user_error("tune", exc)
    rows = result.rows()
    if rows:
        # format_rows prints floats at fixed .1f; scores can be milliseconds.
        display = [
            {**r, "score": f"{r['score']:.4g}" if isinstance(r["score"], float) else "-"}
            for r in rows
        ]
        print(format_rows(display))
        print()
    print(result.summary())
    if args.json:
        from repro.utils.io import save_rows_json

        save_rows_json(rows, args.json)
        print(f"wrote {len(rows)} rows to {args.json}")
    return 0


def _cmd_critical_path(args: argparse.Namespace) -> int:
    from repro.analysis.formulas import bidiag_cp, rbidiag_cp
    from repro.api import SvdPlan, execute

    # tile_size=1 makes the element shape equal the tile shape, so one DAG
    # plan covers the (p, q) tile-level studies of Section IV.
    try:
        plan = SvdPlan(
            m=args.p,
            n=args.q,
            tile_size=1,
            tree=args.tree,
            variant=args.algorithm,
            stage="ge2bnd",
        )
        result = execute(plan, backend="dag")
    except ValueError as exc:
        return _user_error("critical-path", exc)
    if args.algorithm == "bidiag":
        formula = bidiag_cp(args.p, args.q, args.tree)
    else:
        formula = rbidiag_cp(args.p, args.q, args.tree)
    print(f"algorithm      : {args.algorithm}")
    print(f"tree           : {args.tree}")
    print(f"tiles          : {args.p} x {args.q}")
    print(f"closed form    : {formula}")
    print(f"measured (DAG) : {result.critical_path:.0f}")
    return 0


def _cmd_simulate(args: argparse.Namespace) -> int:
    from repro.api import execute

    try:
        result = execute(_sim_plan_from_args(args), backend="simulate")
    except ValueError as exc:
        return _user_error("simulate", exc)
    print(result.summary())
    if result.trace is not None:
        # REPRO_TRACE=1 turns any simulate into a trace run; the file
        # lands at REPRO_TRACE_FILE (default trace.json).
        from repro.obs.tracer import default_trace_path

        path = result.trace.write(default_trace_path())
        print(f"trace written to {path}")
    return 0


def _sim_plan_from_args(args: argparse.Namespace, *, trace: bool = False):
    """Build the :class:`SvdPlan` shared by simulate / trace / stats."""
    from repro.api import SvdPlan

    return SvdPlan(
        m=args.m,
        n=args.n,
        stage="ge2val" if args.ge2val else "ge2bnd",
        variant=args.algorithm,
        tree=args.tree,
        tile_size=args.nb,
        n_cores=args.cores,
        n_nodes=args.nodes,
        policy=args.policy,
        network=args.network,
        scenario=args.scenario,
        draws=args.draws,
        seed=args.seed,
        trace=trace,
    )


def _cmd_trace(args: argparse.Namespace) -> int:
    from repro.api import execute

    try:
        result = execute(_sim_plan_from_args(args, trace=True), backend="simulate")
    except ValueError as exc:
        return _user_error("trace", exc)
    tracer = result.trace
    path = tracer.write(args.out)
    print(result.summary())
    print(f"trace written to {path} (load in ui.perfetto.dev or chrome://tracing)")
    if args.gantt is not None:
        chart = tracer.gantt()
        if args.gantt == "-":
            print(chart)
        else:
            with open(args.gantt, "w", encoding="utf-8") as fh:
                fh.write(chart + "\n")
            print(f"gantt written to {args.gantt}")
    if args.svg is not None:
        with open(args.svg, "w", encoding="utf-8") as fh:
            fh.write(tracer.gantt_svg() + "\n")
        print(f"svg written to {args.svg}")
    return 0


def _cmd_stats(args: argparse.Namespace) -> int:
    import json

    from repro.api import execute

    try:
        # Tracing on: the metrics then include ready-queue depth and
        # message-size histograms on top of cache/utilization figures.
        result = execute(_sim_plan_from_args(args, trace=True), backend="simulate")
    except ValueError as exc:
        return _user_error("stats", exc)
    metrics = result.metrics or {}
    if args.json is not None:
        payload = {"plan": result.plan.describe(), "metrics": metrics}
        text = json.dumps(payload, indent=2, sort_keys=True)
        if args.json == "-":
            print(text)
        else:
            with open(args.json, "w", encoding="utf-8") as fh:
                fh.write(text + "\n")
            print(f"stats written to {args.json}")
        return 0
    print(result.summary())
    util = metrics.get("utilization", {})
    if util:
        print(f"overall busy   : {util.get('overall_busy_fraction', 0.0):.1%}")
        fractions = util.get("busy_fraction_per_node", [])
        per_node = "  ".join(f"n{i}={f:.1%}" for i, f in enumerate(fractions))
        print(f"per-node busy  : {per_node}")
        print(f"idle (core-s)  : {util.get('total_idle_seconds', 0.0):.4f}")
    ready = metrics.get("ready_queue")
    if ready:
        print(
            f"ready queue    : peak={ready['peak']} "
            f"mean={ready['time_weighted_mean']:.2f} "
            f"waited={ready['ops_that_waited']}"
        )
    cache = metrics.get("cache", {})
    if cache:
        print("cache counters :")
        for name, value in sorted(cache.items()):
            print(f"  {name:32s} {value:g}")
    return 0


def _cmd_verify(args: argparse.Namespace) -> int:
    from repro.api import SvdPlan
    from repro.api.resolver import resolve
    from repro.ir.compiler import get_program
    from repro.ir.program import Program
    from repro.runtime.engine import SimulationEngine
    from repro.tiles.distribution import BlockCyclicDistribution
    from repro.verify import verify_program, verify_schedule

    try:
        plan = SvdPlan(
            m=args.m,
            n=args.n,
            stage="ge2bnd",
            variant=args.algorithm,
            tree=args.tree,
            tile_size=args.nb,
            n_cores=args.cores,
            n_nodes=args.nodes,
            machine=args.machine,
            policy=args.policy,
            network=args.network,
        )
        resolved = resolve(plan)
    except ValueError as exc:
        return _user_error("verify", exc)
    program = get_program(
        resolved.variant,
        resolved.p,
        resolved.q,
        resolved.tree,
        n_cores=resolved.machine.cores_per_node,
        grid_rows=resolved.grid.rows,
    )
    if args.inject_defect == "drop-edge":
        # Self-test: remove the last predecessor edge of the last op that
        # has one — the dataflow oracle must flag the resulting data race.
        pred_lists = [
            list(program.predecessors(i)) for i in range(len(program))
        ]
        victim = max(
            (i for i in range(len(program)) if pred_lists[i]), default=None
        )
        if victim is None:
            return _user_error(
                "verify", ValueError("program has no edges to drop")
            )
        pred_lists[victim].pop()
        program = Program(list(program.ops), pred_lists, key=program.key)

    reports = []
    prog_report = verify_program(program)
    prog_report.subject = (
        f"program[{resolved.variant}, p={resolved.p}, q={resolved.q}, "
        f"tree={resolved.tree_name}]"
    )
    reports.append(prog_report)
    print(prog_report.summary())

    policies = (
        _POLICY_CHOICES if args.all_policies else [args.policy]
    )
    networks = (
        _NETWORK_CHOICES if args.all_networks else [args.network]
    )
    distribution = BlockCyclicDistribution(resolved.grid)
    for policy in policies:
        for network in networks:
            engine = SimulationEngine(
                resolved.machine, distribution, policy=policy, network=network
            )
            schedule = engine.run(program)
            if args.inject_defect == "perturb-start":
                from dataclasses import replace

                mid = len(schedule.start) // 2
                start = list(schedule.start)
                start[mid] += 0.5 * (schedule.makespan or 1.0)
                schedule = replace(schedule, start=start)
            elif args.inject_defect == "swap-owner":
                from dataclasses import replace

                mid = len(schedule.node_of_task) // 2
                nodes = list(schedule.node_of_task)
                nodes[mid] = (nodes[mid] + 1) % resolved.machine.n_nodes
                schedule = replace(schedule, node_of_task=nodes)
            report = verify_schedule(
                schedule,
                program,
                resolved.machine,
                distribution=distribution,
                network=network,
            )
            report.subject = f"schedule[policy={policy}, network={network}]"
            reports.append(report)
            print(report.summary())

    ok = all(r.ok for r in reports)
    findings = sum(len(r.findings) for r in reports)
    checks = sum(r.checked for r in reports)
    print(
        f"verify: {'PASS' if ok else 'FAIL'} — {findings} finding(s) over "
        f"{checks} checks in {len(reports)} report(s)"
    )
    if args.json:
        import json

        payload = {
            "ok": ok,
            "checks": checks,
            "reports": [
                {
                    "subject": r.subject,
                    "ok": r.ok,
                    "checked": r.checked,
                    "findings": [f.to_row() for f in r.findings],
                }
                for r in reports
            ],
        }
        with open(args.json, "w", encoding="utf-8") as fh:
            json.dump(payload, fh, indent=2)
        print(f"wrote report to {args.json}")
    return 0 if ok else 1


def _cmd_campaign(args: argparse.Namespace) -> int:
    from repro.campaign import (
        CampaignRunner,
        CampaignSpec,
        campaign_rows,
        campaign_table,
        quarantine_report,
        status_summary,
    )

    command = args.campaign_command
    if command == "status":
        print(status_summary(args.store))
        return 0
    if command == "report":
        if args.quarantine:
            print(quarantine_report(args.store))
            return 0
        if args.all_columns:
            print(campaign_table(args.store, columns=None))
        else:
            print(campaign_table(args.store))
        rows = campaign_rows(args.store)
        if args.csv:
            from repro.utils.io import save_rows_csv

            save_rows_csv(rows, args.csv)
            print(f"wrote {len(rows)} rows to {args.csv}")
        if args.json:
            from repro.utils.io import save_rows_json

            save_rows_json(rows, args.json)
            print(f"wrote {len(rows)} rows to {args.json}")
        return 0
    # run / resume
    try:
        spec = CampaignSpec.from_file(args.spec)
    except (OSError, ValueError) as exc:
        return _user_error(f"campaign {command}", exc)
    runner = CampaignRunner(
        spec,
        args.store,
        workers=args.workers,
        max_attempts=args.max_attempts,
        timeout_seconds=args.timeout,
        backoff_seconds=args.backoff,
        chunk_size=args.chunk_size,
        requeue_quarantined=args.requeue_quarantined,
    )
    try:
        report = runner.run()
    except ValueError as exc:  # e.g. spec fingerprint mismatch on the store
        return _user_error(f"campaign {command}", exc)
    finally:
        runner.store.close()
    print(report.summary())
    if report.interrupted:
        print("interrupted; resume with: repro campaign resume "
              f"{args.spec}" + (f" --store {args.store}" if args.store else ""))
        return 3
    return 0 if report.complete else 1


def _cmd_svd(args: argparse.Namespace) -> int:
    from repro.api import SvdPlan, execute

    try:
        if args.input:
            plan = SvdPlan(
                matrix=np.load(args.input),
                stage="ge2val",
                variant=args.variant,
                tree=args.tree,
                tile_size=args.tile_size,
                n_cores=args.n_cores,
            )
        else:
            plan = SvdPlan(
                m=args.m,
                n=args.n,
                seed=args.seed,
                stage="ge2val",
                variant=args.variant,
                tree=args.tree,
                tile_size=args.tile_size,
                n_cores=args.n_cores,
            )
        result = execute(plan, backend="numeric")
    except ValueError as exc:
        return _user_error("svd", exc)
    print(result.summary())
    return 0 if result.max_rel_error < 1e-8 else 1


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = _build_parser().parse_args(argv)
    if args.command == "list":
        return _cmd_list()
    if args.command == "policies":
        return _cmd_policies()
    if args.command == "networks":
        return _cmd_networks()
    if args.command == "scenarios":
        return _cmd_scenarios()
    if args.command == "run":
        return _cmd_run(args)
    if args.command == "plan":
        return _cmd_plan(args)
    if args.command == "tune":
        return _cmd_tune(args)
    if args.command == "critical-path":
        return _cmd_critical_path(args)
    if args.command == "simulate":
        return _cmd_simulate(args)
    if args.command == "trace":
        return _cmd_trace(args)
    if args.command == "stats":
        return _cmd_stats(args)
    if args.command == "verify":
        return _cmd_verify(args)
    if args.command == "campaign":
        return _cmd_campaign(args)
    if args.command == "svd":
        return _cmd_svd(args)
    raise AssertionError(f"unhandled command {args.command!r}")  # pragma: no cover


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
