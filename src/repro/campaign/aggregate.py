"""Aggregate a campaign store into tables and summaries.

Thin, read-only views over :class:`~repro.campaign.store.ResultStore`:
the completed result rows (already in the pinned
:meth:`~repro.api.result.RunResult.to_row` schema) rendered through the
existing :func:`repro.experiments.figures.format_rows` table writer, a
per-status progress summary for ``repro campaign status``, and a
quarantine report listing what failed beyond saving and why.
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, List, Optional, Sequence, Union

from repro.campaign.store import CandidateRecord, ResultStore

PathLike = Union[str, Path]

#: Default columns of the campaign result table (a stable, readable
#: subset of the full row schema; pass ``columns=None`` for everything).
DEFAULT_COLUMNS = (
    "m", "n", "tile_size", "variant", "tree", "grid", "n_cores",
    "policy", "backend", "time_seconds", "gflops", "n_tasks",
)


def _open(store: Union[ResultStore, PathLike]) -> ResultStore:
    return store if isinstance(store, ResultStore) else ResultStore(store)


def campaign_rows(store: Union[ResultStore, PathLike]) -> List[Dict[str, object]]:
    """The completed candidates' result rows, in expansion order."""
    return _open(store).result_rows()


def campaign_table(
    store: Union[ResultStore, PathLike],
    columns: Optional[Sequence[str]] = DEFAULT_COLUMNS,
) -> str:
    """The completed results as an aligned text table."""
    from repro.experiments.figures import format_rows

    rows = campaign_rows(store)
    if not rows:
        return "(no completed candidates)"
    if columns is not None:
        present = [c for c in columns if any(c in row for row in rows)]
        columns = present or None
    return format_rows(rows, columns=columns)


def quarantine_report(store: Union[ResultStore, PathLike]) -> str:
    """One line per quarantined candidate: id, attempts, last error."""
    records: List[CandidateRecord] = _open(store).records("quarantined")
    if not records:
        return "(no quarantined candidates)"
    lines = []
    for rec in records:
        error = (rec.error or "unknown error").splitlines()[0]
        lines.append(
            f"{rec.candidate_id}  attempts={rec.attempts}  {error}"
        )
    return "\n".join(lines)


def status_summary(store: Union[ResultStore, PathLike]) -> str:
    """Progress summary for ``repro campaign status``."""
    st = _open(store)
    counts = st.counts()
    total = sum(counts.values())
    done = counts.get("done", 0)
    parts = [
        f"{counts.get(key, 0)} {key}"
        for key in ("pending", "running", "failed", "done", "quarantined")
        if counts.get(key)
    ]
    pct = (100.0 * done / total) if total else 0.0
    lines = [
        f"store      : {st.path}",
        f"candidates : {total} ({', '.join(parts) if parts else 'empty'})",
        f"progress   : {done}/{total} done ({pct:.1f}%)",
    ]
    fingerprint = st.get_meta("spec_fingerprint")
    if fingerprint:
        lines.append(f"spec       : {fingerprint}")
    last_run = st.get_meta("last_run")
    if last_run:
        lines.append(f"last run   : {last_run}")
    return "\n".join(lines)
